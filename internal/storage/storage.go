// Package storage provides a versioned binary snapshot format for
// databases: all relations with their tuples, written compactly with
// varints and restored with symbols re-interned. It backs the CLI's
// -load/-save flags and gives library users cheap persistence between
// runs (the module is stdlib-only, so this replaces an external
// storage engine).
//
// Format (all integers are uvarint unless noted):
//
//	magic "IDLOGDB2"
//	relationCount
//	per relation:
//	  nameLen, name
//	  arity
//	  tupleCount
//	  per tuple, per column:
//	    tag byte 'u' or 'i'
//	    'u': strLen, str (the constant's name; re-interned on load)
//	    'i': zigzag varint (int64)
//	  crc32 (IEEE, 4 bytes big-endian, over the relation block above)
//	end of file (trailing bytes are rejected)
//
// The per-relation CRC-32 turns silent corruption — bit rot, torn
// writes, truncation — into a typed ErrCorruptSnapshot instead of
// garbage data. Snapshots in the previous "IDLOGDB1" format (identical
// but without the checksums) are still readable.
package storage

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"idlog/internal/core"
	"idlog/internal/relation"
	"idlog/internal/symbol"
	"idlog/internal/value"
)

const (
	magic = "IDLOGDB2"
	// magicV1 is the checksum-less legacy format, still accepted on
	// read.
	magicV1 = "IDLOGDB1"
)

// maxStringLen bounds decoded string lengths as a corruption guard.
const maxStringLen = 1 << 20

// maxRelations and maxSnapshotTuples clamp the counts a snapshot
// header can claim; a hostile or bit-rotted header must produce a
// typed error, not an attempted allocation or an unbounded loop.
const (
	maxRelations      = 1 << 24
	maxSnapshotTuples = 1<<31 - 2
)

// ErrCorruptSnapshot reports a snapshot that is corrupted, truncated,
// or not a snapshot at all. Every decode failure wraps it, so callers
// test with errors.Is(err, storage.ErrCorruptSnapshot).
var ErrCorruptSnapshot = errors.New("corrupt or truncated snapshot")

// corruptf builds a decode error wrapping ErrCorruptSnapshot.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("storage: %s: %w", fmt.Sprintf(format, args...), ErrCorruptSnapshot)
}

// crcWriter tees everything written through it into a running CRC-32.
type crcWriter struct {
	w   *bufio.Writer
	crc uint32
}

func (cw *crcWriter) reset() { cw.crc = 0 }

func (cw *crcWriter) Write(p []byte) (int, error) {
	cw.crc = crc32.Update(cw.crc, crc32.IEEETable, p)
	return cw.w.Write(p)
}

func (cw *crcWriter) WriteByte(b byte) error {
	cw.crc = crc32.Update(cw.crc, crc32.IEEETable, []byte{b})
	return cw.w.WriteByte(b)
}

func (cw *crcWriter) WriteString(s string) (int, error) {
	cw.crc = crc32.Update(cw.crc, crc32.IEEETable, []byte(s))
	return cw.w.WriteString(s)
}

// writeSum appends the block checksum (uncksummed itself) and resets.
func (cw *crcWriter) writeSum() error {
	var buf [4]byte
	binary.BigEndian.PutUint32(buf[:], cw.crc)
	_, err := cw.w.Write(buf[:])
	cw.crc = 0
	return err
}

// crcReader mirrors crcWriter on the read side.
type crcReader struct {
	r   *bufio.Reader
	crc uint32
}

func (cr *crcReader) reset() { cr.crc = 0 }

func (cr *crcReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.crc = crc32.Update(cr.crc, crc32.IEEETable, p[:n])
	return n, err
}

func (cr *crcReader) ReadByte() (byte, error) {
	b, err := cr.r.ReadByte()
	if err == nil {
		cr.crc = crc32.Update(cr.crc, crc32.IEEETable, []byte{b})
	}
	return b, err
}

// checkSum reads the stored block checksum (not itself checksummed)
// and compares it with the running one.
func (cr *crcReader) checkSum(block string) error {
	want := cr.crc
	var buf [4]byte
	if _, err := io.ReadFull(cr.r, buf[:]); err != nil {
		return corruptf("%s: reading checksum: %v", block, err)
	}
	cr.crc = 0
	if got := binary.BigEndian.Uint32(buf[:]); got != want {
		return corruptf("%s: checksum mismatch (stored %08x, computed %08x)", block, got, want)
	}
	return nil
}

// Write serializes db to w.
func Write(w io.Writer, db *core.Database) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	cw := &crcWriter{w: bw}
	names := db.Names()
	writeUvarint(bw, uint64(len(names)))
	for _, name := range names {
		rel := db.Relation(name)
		cw.reset()
		writeStringCRC(cw, name)
		writeUvarintCRC(cw, uint64(rel.Arity()))
		tuples := rel.Sorted()
		writeUvarintCRC(cw, uint64(len(tuples)))
		for _, t := range tuples {
			for _, v := range t {
				if v.IsInt() {
					if err := cw.WriteByte('i'); err != nil {
						return err
					}
					writeVarintCRC(cw, v.Num)
				} else {
					if err := cw.WriteByte('u'); err != nil {
						return err
					}
					writeStringCRC(cw, symbol.Name(v.Sym))
				}
			}
		}
		if err := cw.writeSum(); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read deserializes a database from r, verifying the per-relation
// checksums (current format) and rejecting trailing garbage.
func Read(r io.Reader) (*core.Database, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, corruptf("reading header: %v", err)
	}
	checksummed := true
	switch string(head) {
	case magic:
	case magicV1:
		checksummed = false
	default:
		return nil, corruptf("bad magic %q (not an IDLOG snapshot)", head)
	}
	nRels, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, corruptf("relation count: %v", err)
	}
	if nRels > maxRelations {
		return nil, corruptf("implausible relation count %d", nRels)
	}
	cr := &crcReader{r: br}
	db := core.NewDatabase()
	for ri := uint64(0); ri < nRels; ri++ {
		cr.reset()
		name, err := readString(cr)
		if err != nil {
			return nil, corruptf("relation name: %v", err)
		}
		arity, err := binary.ReadUvarint(cr)
		if err != nil {
			return nil, corruptf("%s arity: %v", name, err)
		}
		if arity > 1<<16 {
			return nil, corruptf("%s: implausible arity %d", name, arity)
		}
		nTuples, err := binary.ReadUvarint(cr)
		if err != nil {
			return nil, corruptf("%s tuple count: %v", name, err)
		}
		if nTuples > maxSnapshotTuples {
			return nil, corruptf("%s: implausible tuple count %d", name, nTuples)
		}
		rel := relation.New(name, int(arity))
		for ti := uint64(0); ti < nTuples; ti++ {
			t := make(value.Tuple, arity)
			for c := uint64(0); c < arity; c++ {
				tag, err := cr.ReadByte()
				if err != nil {
					return nil, corruptf("%s tuple %d: %v", name, ti, err)
				}
				switch tag {
				case 'i':
					n, err := binary.ReadVarint(cr)
					if err != nil {
						return nil, corruptf("%s tuple %d: %v", name, ti, err)
					}
					t[c] = value.Int(n)
				case 'u':
					s, err := readString(cr)
					if err != nil {
						return nil, corruptf("%s tuple %d: %v", name, ti, err)
					}
					t[c] = value.Str(s)
				default:
					return nil, corruptf("%s tuple %d: bad tag %q", name, ti, tag)
				}
			}
			if _, err := rel.Insert(t); err != nil {
				return nil, corruptf("%s tuple %d: %v", name, ti, err)
			}
		}
		if checksummed {
			if err := cr.checkSum("relation " + name); err != nil {
				return nil, err
			}
		}
		db.SetRelation(name, rel)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, corruptf("%d trailing bytes after the last relation", br.Buffered()+1)
	}
	return db, nil
}

// SaveFile writes db to path (atomically via a temp file + rename).
func SaveFile(path string, db *core.Database) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := Write(f, db); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadFile reads a database from path.
func LoadFile(path string) (*core.Database, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

func writeUvarint(w *bufio.Writer, n uint64) {
	var buf [binary.MaxVarintLen64]byte
	k := binary.PutUvarint(buf[:], n)
	_, _ = w.Write(buf[:k])
}

func writeUvarintCRC(w *crcWriter, n uint64) {
	var buf [binary.MaxVarintLen64]byte
	k := binary.PutUvarint(buf[:], n)
	_, _ = w.Write(buf[:k])
}

func writeVarintCRC(w *crcWriter, n int64) {
	var buf [binary.MaxVarintLen64]byte
	k := binary.PutVarint(buf[:], n)
	_, _ = w.Write(buf[:k])
}

func writeStringCRC(w *crcWriter, s string) {
	writeUvarintCRC(w, uint64(len(s)))
	_, _ = w.WriteString(s)
}

func readString(r *crcReader) (string, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", err
	}
	if n > maxStringLen {
		return "", fmt.Errorf("implausible string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
