// Package storage provides a versioned binary snapshot format for
// databases: all relations with their tuples, written compactly with
// varints and restored with symbols re-interned. It backs the CLI's
// -load/-save flags and gives library users cheap persistence between
// runs (the module is stdlib-only, so this replaces an external
// storage engine).
//
// Format (all integers are uvarint unless noted):
//
//	magic "IDLOGDB1"
//	relationCount
//	per relation:
//	  nameLen, name
//	  arity
//	  tupleCount
//	  per tuple, per column:
//	    tag byte 'u' or 'i'
//	    'u': strLen, str (the constant's name; re-interned on load)
//	    'i': zigzag varint (int64)
package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"idlog/internal/core"
	"idlog/internal/relation"
	"idlog/internal/symbol"
	"idlog/internal/value"
)

const magic = "IDLOGDB1"

// maxStringLen bounds decoded string lengths as a corruption guard.
const maxStringLen = 1 << 20

// Write serializes db to w.
func Write(w io.Writer, db *core.Database) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(magic); err != nil {
		return err
	}
	names := db.Names()
	writeUvarint(bw, uint64(len(names)))
	for _, name := range names {
		rel := db.Relation(name)
		writeString(bw, name)
		writeUvarint(bw, uint64(rel.Arity()))
		tuples := rel.Sorted()
		writeUvarint(bw, uint64(len(tuples)))
		for _, t := range tuples {
			for _, v := range t {
				if v.IsInt() {
					if err := bw.WriteByte('i'); err != nil {
						return err
					}
					writeVarint(bw, v.Num)
				} else {
					if err := bw.WriteByte('u'); err != nil {
						return err
					}
					writeString(bw, symbol.Name(v.Sym))
				}
			}
		}
	}
	return bw.Flush()
}

// Read deserializes a database from r.
func Read(r io.Reader) (*core.Database, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("storage: reading header: %w", err)
	}
	if string(head) != magic {
		return nil, fmt.Errorf("storage: bad magic %q (not an IDLOG snapshot)", head)
	}
	nRels, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("storage: relation count: %w", err)
	}
	db := core.NewDatabase()
	for ri := uint64(0); ri < nRels; ri++ {
		name, err := readString(br)
		if err != nil {
			return nil, fmt.Errorf("storage: relation name: %w", err)
		}
		arity, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("storage: %s arity: %w", name, err)
		}
		if arity > 1<<16 {
			return nil, fmt.Errorf("storage: %s: implausible arity %d", name, arity)
		}
		nTuples, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("storage: %s tuple count: %w", name, err)
		}
		rel := relation.New(name, int(arity))
		for ti := uint64(0); ti < nTuples; ti++ {
			t := make(value.Tuple, arity)
			for c := uint64(0); c < arity; c++ {
				tag, err := br.ReadByte()
				if err != nil {
					return nil, fmt.Errorf("storage: %s tuple %d: %w", name, ti, err)
				}
				switch tag {
				case 'i':
					n, err := binary.ReadVarint(br)
					if err != nil {
						return nil, fmt.Errorf("storage: %s tuple %d: %w", name, ti, err)
					}
					t[c] = value.Int(n)
				case 'u':
					s, err := readString(br)
					if err != nil {
						return nil, fmt.Errorf("storage: %s tuple %d: %w", name, ti, err)
					}
					t[c] = value.Str(s)
				default:
					return nil, fmt.Errorf("storage: %s tuple %d: bad tag %q", name, ti, tag)
				}
			}
			if _, err := rel.Insert(t); err != nil {
				return nil, err
			}
		}
		db.SetRelation(name, rel)
	}
	return db, nil
}

// SaveFile writes db to path (atomically via a temp file + rename).
func SaveFile(path string, db *core.Database) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := Write(f, db); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// LoadFile reads a database from path.
func LoadFile(path string) (*core.Database, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

func writeUvarint(w *bufio.Writer, n uint64) {
	var buf [binary.MaxVarintLen64]byte
	k := binary.PutUvarint(buf[:], n)
	_, _ = w.Write(buf[:k])
}

func writeVarint(w *bufio.Writer, n int64) {
	var buf [binary.MaxVarintLen64]byte
	k := binary.PutVarint(buf[:], n)
	_, _ = w.Write(buf[:k])
}

func writeString(w *bufio.Writer, s string) {
	writeUvarint(w, uint64(len(s)))
	_, _ = w.WriteString(s)
}

func readString(r *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", err
	}
	if n > maxStringLen {
		return "", fmt.Errorf("implausible string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
