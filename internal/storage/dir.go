package storage

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"idlog/internal/core"
	"idlog/internal/relation"
	"idlog/internal/segment"
	"idlog/internal/value"
)

// Disk-engine data directory layout:
//
//	<dir>/MANIFEST            — text index, written last (tmp+rename)
//	<dir>/g000001-r0000.seg   — one segment file per relation
//
// The manifest's first line is the format tag; each further line names
// one segment: file, quoted relation name, arity, tuple count. Segment
// files are generation-numbered: a checkpoint writes a complete new
// generation, atomically swings the manifest to it, and only then
// removes older generations — a crash at any point leaves the previous
// manifest pointing at intact files. Already-open segments of the old
// generation keep working after removal (POSIX unlink semantics), and
// their file descriptors release when the old database is garbage
// collected (os.File finalizers).
const manifestName = "MANIFEST"

const manifestMagic = "IDLOGDIR1"

// segFileName names relation index i of generation gen.
func segFileName(gen, i int) string {
	return fmt.Sprintf("g%06d-r%04d.seg", gen, i)
}

// nextGen scans dir for existing segment generations and returns the
// next unused one.
func nextGen(dir string) int {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return 1
	}
	max := 0
	for _, ent := range ents {
		name := ent.Name()
		if !strings.HasPrefix(name, "g") || !strings.Contains(name, "-r") {
			continue
		}
		if n, err := strconv.Atoi(name[1:strings.Index(name, "-r")]); err == nil && n > max {
			max = n
		}
	}
	return max + 1
}

// WriteDir checkpoints db into dir as a fresh segment generation,
// streaming each relation through a segment writer (memory stays
// bounded by per-tuple metadata, never the decoded relation), then
// atomically replaces the manifest and removes older generations.
func WriteDir(dir string, db *core.Database) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	gen := nextGen(dir)
	names := db.Names()
	sort.Strings(names)
	type entry struct {
		file  string
		name  string
		arity int
		count int
	}
	entries := make([]entry, 0, len(names))
	for i, name := range names {
		rel := db.Relation(name)
		file := segFileName(gen, i)
		tmp := filepath.Join(dir, file+".tmp")
		w, err := segment.Create(tmp, name, rel.Arity())
		if err != nil {
			return err
		}
		var werr error
		rel.Scan(0, -1, func(_ int, t value.Tuple) bool {
			werr = w.AddUnique(t)
			return werr == nil
		})
		if werr != nil {
			w.Abort()
			return werr
		}
		if err := w.Finish(); err != nil {
			return err
		}
		if err := os.Rename(tmp, filepath.Join(dir, file)); err != nil {
			return err
		}
		entries = append(entries, entry{file: file, name: name, arity: rel.Arity(), count: rel.Len()})
	}
	var b strings.Builder
	fmt.Fprintln(&b, manifestMagic)
	for _, e := range entries {
		fmt.Fprintf(&b, "%s %q %d %d\n", e.file, e.name, e.arity, e.count)
	}
	mtmp := filepath.Join(dir, manifestName+".tmp")
	if err := os.WriteFile(mtmp, []byte(b.String()), 0o644); err != nil {
		return err
	}
	if err := os.Rename(mtmp, filepath.Join(dir, manifestName)); err != nil {
		return err
	}
	// The new generation is live; sweep older ones (and stray temp
	// files from interrupted checkpoints).
	if ents, err := os.ReadDir(dir); err == nil {
		prefix := fmt.Sprintf("g%06d-", gen)
		for _, ent := range ents {
			name := ent.Name()
			stale := (strings.HasSuffix(name, ".seg") || strings.HasSuffix(name, ".tmp")) &&
				strings.HasPrefix(name, "g") && !strings.HasPrefix(name, prefix)
			if stale {
				os.Remove(filepath.Join(dir, name))
			}
		}
	}
	return nil
}

// OpenDir opens the segment generation the manifest points at and
// returns a database of disk-backed relations (unfrozen, so a WAL tail
// can replay on top; callers freeze before sharing, as with any load
// path). Segments share cache; a nil cache uses the process default.
// A missing manifest returns an error satisfying os.IsNotExist.
func OpenDir(dir string, cache *segment.Cache) (*core.Database, error) {
	f, err := os.Open(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	if !sc.Scan() || sc.Text() != manifestMagic {
		return nil, corruptf("%s: bad manifest header", dir)
	}
	db := core.NewDatabase()
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var file, qname string
		var arity, count int
		if _, err := fmt.Sscanf(line, "%s %q %d %d", &file, &qname, &arity, &count); err != nil {
			return nil, corruptf("%s: manifest line %q: %v", dir, line, err)
		}
		seg, err := segment.Open(filepath.Join(dir, file), cache)
		if err != nil {
			return nil, fmt.Errorf("storage: %s: %w", dir, err)
		}
		if seg.Name() != qname || seg.Arity() != arity || seg.Len() != count {
			seg.Close()
			return nil, corruptf("%s: segment %s is %s/%d (%d tuples), manifest says %s/%d (%d)",
				dir, file, seg.Name(), seg.Arity(), seg.Len(), qname, arity, count)
		}
		db.SetRelation(qname, relation.NewStored(qname, arity, seg))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return db, nil
}

// DirExists reports whether dir holds a storage manifest.
func DirExists(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, manifestName))
	return err == nil
}
