package storage

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"idlog/internal/ast"
	"idlog/internal/parser"
	"idlog/internal/segment"
	"idlog/internal/value"
)

// BulkStats summarizes a bulk load.
type BulkStats struct {
	// Relations is the number of distinct predicates loaded.
	Relations int
	// Tuples is the number of distinct facts written.
	Tuples int64
	// Duplicates counts facts that repeated an earlier one.
	Duplicates int64
}

// BulkLoad streams ground facts in concrete syntax ("edge(a, b).")
// from src directly into segment files under dir, producing a
// disk-engine data directory ready for OpenDir. The whole pipeline is
// streaming: statements are split and parsed one at a time and tuples
// go straight to the per-predicate segment writers, so resident memory
// is bounded by per-tuple metadata (dedup hashes), never the decoded
// relations — this is the path for EDBs that do not fit in RAM.
//
// dir must not already contain a manifest (bulk load creates a
// database, it does not merge into one). Facts may arrive in any
// predicate order; %-comments and quoted constants are handled as in
// the regular parser, and non-fact clauses are rejected.
func BulkLoad(dir string, src io.Reader) (BulkStats, error) {
	var stats BulkStats
	if DirExists(dir) {
		return stats, fmt.Errorf("storage: %s already holds a database (bulk load needs a fresh directory)", dir)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return stats, err
	}
	type wstate struct {
		w    *segment.Writer
		file string
	}
	writers := make(map[string]*wstate)
	fail := func(err error) (BulkStats, error) {
		for _, ws := range writers {
			ws.w.Abort()
		}
		return stats, err
	}
	gen := nextGen(dir)
	tuple := make(value.Tuple, 0, 8)
	err := splitStatements(src, func(stmt string) error {
		c, err := parser.Clause(stmt)
		if err != nil {
			return err
		}
		if !c.IsFact() {
			return fmt.Errorf("bulk load accepts only ground facts, got %q", strings.TrimSpace(stmt))
		}
		tuple = tuple[:0]
		for _, a := range c.Head.Args {
			cst, ok := a.(ast.Const)
			if !ok {
				return fmt.Errorf("fact %s has non-constant argument %s", c.Head.Pred, a)
			}
			tuple = append(tuple, cst.Val)
		}
		ws := writers[c.Head.Pred]
		if ws == nil {
			file := segFileName(gen, len(writers))
			w, err := segment.Create(filepath.Join(dir, file+".tmp"), c.Head.Pred, len(tuple))
			if err != nil {
				return err
			}
			ws = &wstate{w: w, file: file}
			writers[c.Head.Pred] = ws
		}
		added, err := ws.w.Add(tuple)
		if err != nil {
			return err
		}
		if added {
			stats.Tuples++
		} else {
			stats.Duplicates++
		}
		return nil
	})
	if err != nil {
		return fail(err)
	}
	names := make([]string, 0, len(writers))
	for name := range writers {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	fmt.Fprintln(&b, manifestMagic)
	for _, name := range names {
		ws := writers[name]
		arity, count := wsMeta(ws.w)
		if err := ws.w.Finish(); err != nil {
			return fail(err)
		}
		if err := os.Rename(filepath.Join(dir, ws.file+".tmp"), filepath.Join(dir, ws.file)); err != nil {
			return fail(err)
		}
		fmt.Fprintf(&b, "%s %q %d %d\n", ws.file, name, arity, count)
	}
	stats.Relations = len(writers)
	mtmp := filepath.Join(dir, manifestName+".tmp")
	if err := os.WriteFile(mtmp, []byte(b.String()), 0o644); err != nil {
		return stats, err
	}
	return stats, os.Rename(mtmp, filepath.Join(dir, manifestName))
}

// wsMeta snapshots a writer's arity and count before Finish seals it.
func wsMeta(w *segment.Writer) (arity, count int) {
	return w.Arity(), w.Len()
}

// BulkLoadFile is BulkLoad over a facts file.
func BulkLoadFile(dir, factsPath string) (BulkStats, error) {
	f, err := os.Open(factsPath)
	if err != nil {
		return BulkStats{}, err
	}
	defer f.Close()
	return BulkLoad(dir, bufio.NewReaderSize(f, 1<<20))
}

// splitStatements streams src statement by statement, calling fn with
// each "…." chunk (terminator included). It honors the lexer's surface
// syntax — '%' starts a line comment, single quotes delimit constants
// with '' as the escaped quote — so dots inside comments or quoted
// constants never split a statement. Memory is one statement at a time.
func splitStatements(src io.Reader, fn func(stmt string) error) error {
	br := bufio.NewReaderSize(src, 1<<20)
	var stmt []byte
	inComment, inQuote := false, false
	flush := func() error {
		s := strings.TrimSpace(string(stmt))
		stmt = stmt[:0]
		if s == "" {
			return nil
		}
		return fn(s)
	}
	for {
		b, err := br.ReadByte()
		if err == io.EOF {
			if strings.TrimSpace(string(stmt)) != "" {
				return fmt.Errorf("storage: bulk load: trailing input without '.': %q", strings.TrimSpace(string(stmt)))
			}
			return nil
		}
		if err != nil {
			return err
		}
		switch {
		case inComment:
			if b == '\n' {
				inComment = false
				stmt = append(stmt, b)
			}
			continue
		case inQuote:
			stmt = append(stmt, b)
			if b == '\'' {
				// A doubled quote stays inside the constant.
				if next, err := br.Peek(1); err == nil && next[0] == '\'' {
					br.ReadByte()
					stmt = append(stmt, '\'')
				} else {
					inQuote = false
				}
			}
			continue
		case b == '%':
			inComment = true
			continue
		case b == '\'':
			inQuote = true
			stmt = append(stmt, b)
			continue
		case b == '.':
			stmt = append(stmt, b)
			if err := flush(); err != nil {
				return err
			}
			continue
		default:
			stmt = append(stmt, b)
		}
	}
}
