package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"idlog/internal/core"
	"idlog/internal/relation"
	"idlog/internal/segment"
	"idlog/internal/value"
)

func testDB(t *testing.T, n int) *core.Database {
	t.Helper()
	db := core.NewDatabase()
	edge := relation.New("edge", 2)
	label := relation.New("label", 1)
	for i := 0; i < n; i++ {
		edge.MustInsert(value.Tuple{value.Int(int64(i)), value.Int(int64((i + 1) % n))})
		label.MustInsert(value.Tuple{value.Str(fmt.Sprintf("n%d", i))})
	}
	db.SetRelation("edge", edge)
	db.SetRelation("label", label)
	return db
}

func TestWriteDirOpenDirRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db := testDB(t, 5000)
	if err := WriteDir(dir, db); err != nil {
		t.Fatal(err)
	}
	got, err := OpenDir(dir, segment.NewCache(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range db.Names() {
		want, have := db.Relation(name), got.Relation(name)
		if have == nil {
			t.Fatalf("relation %s missing after reopen", name)
		}
		if have.SourceLen() != want.Len() {
			t.Fatalf("%s: SourceLen=%d, want all %d tuples disk-resident", name, have.SourceLen(), want.Len())
		}
		if have.Fingerprint() != want.Fingerprint() {
			t.Fatalf("%s: fingerprint mismatch after reopen", name)
		}
	}
}

func TestWriteDirSweepsOldGenerations(t *testing.T) {
	dir := t.TempDir()
	db := testDB(t, 100)
	if err := WriteDir(dir, db); err != nil {
		t.Fatal(err)
	}
	// A second checkpoint (with a mutation) must supersede and remove
	// the first generation's files.
	db2 := db.Clone()
	edge := db2.Relation("edge").Clone()
	edge.MustInsert(value.Ints(500, 501))
	db2.SetRelation("edge", edge)
	if err := WriteDir(dir, db2); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	segs := 0
	for _, ent := range ents {
		if strings.HasSuffix(ent.Name(), ".seg") {
			segs++
			if !strings.HasPrefix(ent.Name(), "g000002-") {
				t.Fatalf("stale generation file %s survived the sweep", ent.Name())
			}
		}
	}
	if segs != 2 {
		t.Fatalf("%d segment files after second checkpoint, want 2", segs)
	}
	got, err := OpenDir(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Relation("edge").Len() != 101 {
		t.Fatalf("edge has %d tuples after reopen, want 101", got.Relation("edge").Len())
	}
}

func TestBulkLoad(t *testing.T) {
	facts := `
% transitive closure input
edge(a, b). edge(b, c).
edge(c, 'weird . name'). % dot inside a quoted constant
edge(a, b).  % duplicate
weight(a, 10).
weight(b, 20).
`
	dir := filepath.Join(t.TempDir(), "data")
	stats, err := BulkLoad(dir, strings.NewReader(facts))
	if err != nil {
		t.Fatal(err)
	}
	if stats.Relations != 2 || stats.Tuples != 5 || stats.Duplicates != 1 {
		t.Fatalf("stats = %+v, want 2 relations, 5 tuples, 1 duplicate", stats)
	}
	db, err := OpenDir(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	edge := db.Relation("edge")
	if edge == nil || edge.Len() != 3 {
		t.Fatalf("edge = %v, want 3 tuples", edge)
	}
	if !edge.Contains(value.Tuple{value.Str("c"), value.Str("weird . name")}) {
		t.Fatal("quoted constant with a dot did not survive bulk load")
	}
	if db.Relation("weight").Len() != 2 {
		t.Fatalf("weight has %d tuples, want 2", db.Relation("weight").Len())
	}

	// A second bulk load into the same directory must refuse.
	if _, err := BulkLoad(dir, strings.NewReader("p(a).")); err == nil {
		t.Fatal("BulkLoad into an existing database did not fail")
	}
}

func TestBulkLoadRejectsNonFacts(t *testing.T) {
	for _, src := range []string{
		"tc(X, Y) :- edge(X, Y).", // rule
		"p(X).",                   // non-ground fact
		"p(a)",                    // missing terminator
	} {
		dir := filepath.Join(t.TempDir(), "data")
		if _, err := BulkLoad(dir, strings.NewReader(src)); err == nil {
			t.Fatalf("BulkLoad(%q) succeeded, want error", src)
		}
	}
}

func TestOpenDirMissing(t *testing.T) {
	if _, err := OpenDir(filepath.Join(t.TempDir(), "nope"), nil); !os.IsNotExist(err) {
		t.Fatalf("OpenDir on missing dir = %v, want IsNotExist", err)
	}
}
