package storage

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"idlog/internal/core"
	"idlog/internal/relation"
	"idlog/internal/value"
)

func sampleDB() *core.Database {
	db := core.NewDatabase()
	_ = db.AddAll("emp",
		value.Strs("joe", "toys"), value.Strs("sue", "shoes"))
	_ = db.AddAll("level",
		value.Tuple{value.Str("joe"), value.Int(3)},
		value.Tuple{value.Str("sue"), value.Int(-7)})
	_ = db.Add("weird", value.Tuple{value.Str("with space 'n quote"), value.Int(1 << 40)})
	return db
}

func roundTrip(t *testing.T, db *core.Database) *core.Database {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, db); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return back
}

func TestRoundTrip(t *testing.T) {
	db := sampleDB()
	back := roundTrip(t, db)
	for _, name := range db.Names() {
		orig, got := db.Relation(name), back.Relation(name)
		if got == nil || !orig.Equal(got) {
			t.Fatalf("relation %s: got %v, want %v", name, got, orig)
		}
	}
	if len(back.Names()) != len(db.Names()) {
		t.Fatalf("names = %v", back.Names())
	}
}

func TestEmptyDatabase(t *testing.T) {
	back := roundTrip(t, core.NewDatabase())
	if len(back.Names()) != 0 {
		t.Fatalf("empty DB round-trip gained relations: %v", back.Names())
	}
}

func TestEmptyRelationPreserved(t *testing.T) {
	db := core.NewDatabase()
	db.SetRelation("empty", relation.New("empty", 3))
	back := roundTrip(t, db)
	r := back.Relation("empty")
	if r == nil || r.Arity() != 3 || r.Len() != 0 {
		t.Fatalf("empty relation lost: %v", r)
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := Read(strings.NewReader("NOTADB00xxxx")); err == nil {
		t.Fatalf("bad magic accepted")
	}
}

// TestTruncatedData checks EVERY possible truncation point: any proper
// prefix of a snapshot must be rejected with ErrCorruptSnapshot.
func TestTruncatedData(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sampleDB()); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut++ {
		_, err := Read(bytes.NewReader(full[:cut]))
		if err == nil {
			t.Fatalf("truncation at %d/%d accepted", cut, len(full))
		}
		if !errors.Is(err, ErrCorruptSnapshot) {
			t.Fatalf("truncation at %d: error %v does not wrap ErrCorruptSnapshot", cut, err)
		}
	}
}

// TestBitFlips flips every single bit of a snapshot, one at a time, and
// asserts each flip yields a clean typed error — never garbage data or
// a silently different database.
func TestBitFlips(t *testing.T) {
	db := sampleDB()
	var buf bytes.Buffer
	if err := Write(&buf, db); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for pos := 0; pos < len(full); pos++ {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), full...)
			mut[pos] ^= 1 << bit
			back, err := Read(bytes.NewReader(mut))
			if err == nil {
				// The only acceptable silent outcome is a byte the
				// format genuinely does not cover — there is none, so
				// the decoded DB must at least be identical.
				if !sameDB(db, back) {
					t.Fatalf("flip at byte %d bit %d: silently decoded a DIFFERENT database", pos, bit)
				}
				t.Fatalf("flip at byte %d bit %d: corrupted snapshot accepted", pos, bit)
			}
			if !errors.Is(err, ErrCorruptSnapshot) {
				t.Fatalf("flip at byte %d bit %d: error %v does not wrap ErrCorruptSnapshot", pos, bit, err)
			}
		}
	}
}

func sameDB(a, b *core.Database) bool {
	if len(a.Names()) != len(b.Names()) {
		return false
	}
	for _, name := range a.Names() {
		br := b.Relation(name)
		if br == nil || !a.Relation(name).Equal(br) {
			return false
		}
	}
	return true
}

// writeV1 hand-encodes a database in the legacy checksum-less
// "IDLOGDB1" format (string columns only, as the fixtures need).
func writeV1(t *testing.T, rels map[string][][]string) []byte {
	t.Helper()
	var buf bytes.Buffer
	uv := func(n uint64) {
		var b [binary.MaxVarintLen64]byte
		buf.Write(b[:binary.PutUvarint(b[:], n)])
	}
	str := func(s string) {
		uv(uint64(len(s)))
		buf.WriteString(s)
	}
	buf.WriteString(magicV1)
	uv(uint64(len(rels)))
	for name, tuples := range rels {
		str(name)
		uv(uint64(len(tuples[0])))
		uv(uint64(len(tuples)))
		for _, tuple := range tuples {
			for _, col := range tuple {
				buf.WriteByte('u')
				str(col)
			}
		}
	}
	return buf.Bytes()
}

// TestLegacyV1Read verifies snapshots from before the CRC change still
// load.
func TestLegacyV1Read(t *testing.T) {
	data := writeV1(t, map[string][][]string{
		"emp": {{"joe", "toys"}, {"sue", "shoes"}},
	})
	db, err := Read(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("legacy v1 snapshot rejected: %v", err)
	}
	emp := db.Relation("emp")
	if emp == nil || emp.Len() != 2 || !emp.Contains(value.Strs("sue", "shoes")) {
		t.Fatalf("legacy v1 snapshot decoded wrong: %v", emp)
	}
	// v1 files are still subject to the trailing-garbage check.
	if _, err := Read(bytes.NewReader(append(data, 0x00))); !errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("trailing garbage on v1 accepted: %v", err)
	}
}

func TestTrailingGarbage(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sampleDB()); err != nil {
		t.Fatal(err)
	}
	buf.WriteByte(0x7f)
	if _, err := Read(&buf); !errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("trailing garbage accepted: %v", err)
	}
}

func TestCorruptTag(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sampleDB()); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip a tag byte somewhere after the header.
	for i := len(magic) + 4; i < len(data); i++ {
		if data[i] == 'u' || data[i] == 'i' {
			data[i] = 'z'
			break
		}
	}
	if _, err := Read(bytes.NewReader(data)); err == nil {
		t.Fatalf("corrupt tag accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.idb")
	db := sampleDB()
	if err := SaveFile(path, db); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Relation("emp").Equal(db.Relation("emp")) {
		t.Fatalf("file round-trip lost data")
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.idb")); err == nil {
		t.Fatalf("missing file accepted")
	}
}

func TestRandomRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 30; trial++ {
		db := core.NewDatabase()
		for r := 0; r < rng.Intn(4); r++ {
			name := string(rune('a' + r))
			arity := 1 + rng.Intn(3)
			for i := 0; i < rng.Intn(20); i++ {
				t1 := make(value.Tuple, arity)
				for c := range t1 {
					if rng.Intn(2) == 0 {
						t1[c] = value.Int(rng.Int63() - (1 << 62))
					} else {
						t1[c] = value.Str(randString(rng))
					}
				}
				_ = db.Add(name, t1)
			}
		}
		back := roundTrip(t, db)
		for _, name := range db.Names() {
			if !db.Relation(name).Equal(back.Relation(name)) {
				t.Fatalf("trial %d: relation %s differs", trial, name)
			}
		}
	}
}

func randString(rng *rand.Rand) string {
	n := rng.Intn(12)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteRune(rune(' ' + rng.Intn(90)))
	}
	return b.String()
}
