package storage

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"idlog/internal/core"
	"idlog/internal/relation"
	"idlog/internal/value"
)

func sampleDB() *core.Database {
	db := core.NewDatabase()
	_ = db.AddAll("emp",
		value.Strs("joe", "toys"), value.Strs("sue", "shoes"))
	_ = db.AddAll("level",
		value.Tuple{value.Str("joe"), value.Int(3)},
		value.Tuple{value.Str("sue"), value.Int(-7)})
	_ = db.Add("weird", value.Tuple{value.Str("with space 'n quote"), value.Int(1 << 40)})
	return db
}

func roundTrip(t *testing.T, db *core.Database) *core.Database {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, db); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return back
}

func TestRoundTrip(t *testing.T) {
	db := sampleDB()
	back := roundTrip(t, db)
	for _, name := range db.Names() {
		orig, got := db.Relation(name), back.Relation(name)
		if got == nil || !orig.Equal(got) {
			t.Fatalf("relation %s: got %v, want %v", name, got, orig)
		}
	}
	if len(back.Names()) != len(db.Names()) {
		t.Fatalf("names = %v", back.Names())
	}
}

func TestEmptyDatabase(t *testing.T) {
	back := roundTrip(t, core.NewDatabase())
	if len(back.Names()) != 0 {
		t.Fatalf("empty DB round-trip gained relations: %v", back.Names())
	}
}

func TestEmptyRelationPreserved(t *testing.T) {
	db := core.NewDatabase()
	db.SetRelation("empty", relation.New("empty", 3))
	back := roundTrip(t, db)
	r := back.Relation("empty")
	if r == nil || r.Arity() != 3 || r.Len() != 0 {
		t.Fatalf("empty relation lost: %v", r)
	}
}

func TestBadMagic(t *testing.T) {
	if _, err := Read(strings.NewReader("NOTADB00xxxx")); err == nil {
		t.Fatalf("bad magic accepted")
	}
}

func TestTruncatedData(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sampleDB()); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{len(magic), len(full) / 2, len(full) - 1} {
		if _, err := Read(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestCorruptTag(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sampleDB()); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip a tag byte somewhere after the header.
	for i := len(magic) + 4; i < len(data); i++ {
		if data[i] == 'u' || data[i] == 'i' {
			data[i] = 'z'
			break
		}
	}
	if _, err := Read(bytes.NewReader(data)); err == nil {
		t.Fatalf("corrupt tag accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.idb")
	db := sampleDB()
	if err := SaveFile(path, db); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Relation("emp").Equal(db.Relation("emp")) {
		t.Fatalf("file round-trip lost data")
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.idb")); err == nil {
		t.Fatalf("missing file accepted")
	}
}

func TestRandomRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 30; trial++ {
		db := core.NewDatabase()
		for r := 0; r < rng.Intn(4); r++ {
			name := string(rune('a' + r))
			arity := 1 + rng.Intn(3)
			for i := 0; i < rng.Intn(20); i++ {
				t1 := make(value.Tuple, arity)
				for c := range t1 {
					if rng.Intn(2) == 0 {
						t1[c] = value.Int(rng.Int63() - (1 << 62))
					} else {
						t1[c] = value.Str(randString(rng))
					}
				}
				_ = db.Add(name, t1)
			}
		}
		back := roundTrip(t, db)
		for _, name := range db.Names() {
			if !db.Relation(name).Equal(back.Relation(name)) {
				t.Fatalf("trial %d: relation %s differs", trial, name)
			}
		}
	}
}

func randString(rng *rand.Rand) string {
	n := rng.Intn(12)
	var b strings.Builder
	for i := 0; i < n; i++ {
		b.WriteRune(rune(' ' + rng.Intn(90)))
	}
	return b.String()
}
