package storage

import (
	"fmt"
	"os"
	"strconv"

	"idlog/internal/segment"
)

// EngineKind selects where EDB relations live.
type EngineKind string

const (
	// EngineMem is the default: relations are in-memory hash tables,
	// snapshots use the IDLOGDB2 single-file format.
	EngineMem EngineKind = "mem"
	// EngineDisk stores frozen relations in block-indexed segment
	// files under a data directory (see internal/segment and WriteDir);
	// queries stream blocks through a byte-budgeted cache, so EDBs
	// larger than RAM evaluate within a bounded resident set.
	EngineDisk EngineKind = "disk"
)

// ParseEngineKind validates an -engine flag value.
func ParseEngineKind(s string) (EngineKind, error) {
	switch EngineKind(s) {
	case EngineMem, EngineDisk, "":
		if s == "" {
			return EngineMem, nil
		}
		return EngineKind(s), nil
	default:
		return "", fmt.Errorf("storage: unknown engine %q (want mem or disk)", s)
	}
}

// Engine is the resolved storage-engine selection shared by the CLI,
// REPL, and idlogd: which backend, where its files live, and how much
// memory its block cache may use.
type Engine struct {
	Kind EngineKind
	// Dir is the data directory for the disk engine (segment files +
	// MANIFEST).
	Dir string
	// CacheBytes bounds the decoded-block LRU cache; 0 means the
	// segment package default (64 MiB).
	CacheBytes int64

	cache *segment.Cache
}

// Disk reports whether the disk engine is selected.
func (e *Engine) Disk() bool { return e.Kind == EngineDisk }

// Cache returns the engine's block cache, creating it on first use
// (the process default when CacheBytes is 0). All segments opened
// through this Engine share it, so CacheBytes bounds total decoded
// memory.
func (e *Engine) Cache() *segment.Cache {
	if e.cache == nil {
		if e.CacheBytes > 0 {
			e.cache = segment.NewCache(e.CacheBytes)
		} else {
			e.cache = segment.DefaultCache()
		}
	}
	return e.cache
}

// EngineFromEnv resolves the engine selection from the environment:
// IDLOG_ENGINE (mem|disk), IDLOG_DATA_DIR, and IDLOG_CACHE_MB. Unset
// or invalid variables fall back to the in-memory engine; this is the
// test seam that lets the whole suite run against the disk engine
// (IDLOG_ENGINE=disk go test ./...) without threading options through
// every call site.
func EngineFromEnv() Engine {
	e := Engine{Kind: EngineMem, Dir: os.Getenv("IDLOG_DATA_DIR")}
	if k, err := ParseEngineKind(os.Getenv("IDLOG_ENGINE")); err == nil {
		e.Kind = k
	}
	if mb, err := strconv.ParseInt(os.Getenv("IDLOG_CACHE_MB"), 10, 64); err == nil && mb > 0 {
		e.CacheBytes = mb << 20
	}
	return e
}
