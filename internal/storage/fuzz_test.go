package storage

import (
	"bytes"
	"errors"
	"testing"

	"idlog/internal/core"
	"idlog/internal/relation"
	"idlog/internal/value"
)

// FuzzLoadSnapshot throws hostile bytes at the snapshot reader. The
// loader trusts counts from the file header only up to typed clamps;
// whatever the input, it must return cleanly — a database or an
// ErrCorruptSnapshot — never panic, hang, or attempt an absurd
// allocation.
func FuzzLoadSnapshot(f *testing.F) {
	// Seed with a valid snapshot and truncations/mutations of it.
	db := core.NewDatabase()
	r := relation.New("edge", 2)
	r.MustInsert(value.Tuple{value.Str("a"), value.Int(1)})
	r.MustInsert(value.Tuple{value.Str("b"), value.Int(2)})
	db.SetRelation("edge", r)
	var buf bytes.Buffer
	if err := Write(&buf, db); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("IDLOGDB2"))
	f.Add([]byte("IDLOGDB1garbage"))
	// A header claiming 2^40 relations must fail fast on the clamp.
	f.Add(append([]byte("IDLOGDB2"), 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x20))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Read(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrCorruptSnapshot) {
				t.Fatalf("Read returned a non-typed error: %v", err)
			}
			return
		}
		// Accepted inputs must round-trip: what we decoded is a real
		// database whose re-serialization decodes to an equal one.
		var out bytes.Buffer
		if err := Write(&out, got); err != nil {
			t.Fatalf("re-serializing accepted snapshot: %v", err)
		}
		again, err := Read(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-reading re-serialized snapshot: %v", err)
		}
		for _, name := range got.Names() {
			a, b := got.Relation(name), again.Relation(name)
			if b == nil || !a.Equal(b) {
				t.Fatalf("relation %s did not survive the round trip", name)
			}
		}
	})
}
