// Package lexer tokenizes the concrete IDLOG syntax described in
// DESIGN.md §3: Prolog-flavoured clauses with ID-predicates p[1,2],
// infix comparisons, stratified "not", and DATALOG^C "choice" literals.
package lexer

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// Kind enumerates token kinds.
type Kind int

// Token kinds.
const (
	EOF Kind = iota
	Ident
	Variable
	Number
	LParen
	RParen
	LBracket
	RBracket
	Comma
	Period
	Implies // :-
	Lt      // <
	Le      // <=
	Gt      // >
	Ge      // >=
	Eq      // =
	Neq     // !=
	Invalid
)

// String names the kind for diagnostics.
func (k Kind) String() string {
	switch k {
	case EOF:
		return "end of input"
	case Ident:
		return "identifier"
	case Variable:
		return "variable"
	case Number:
		return "number"
	case LParen:
		return "'('"
	case RParen:
		return "')'"
	case LBracket:
		return "'['"
	case RBracket:
		return "']'"
	case Comma:
		return "','"
	case Period:
		return "'.'"
	case Implies:
		return "':-'"
	case Lt:
		return "'<'"
	case Le:
		return "'<='"
	case Gt:
		return "'>'"
	case Ge:
		return "'>='"
	case Eq:
		return "'='"
	case Neq:
		return "'!='"
	default:
		return "invalid token"
	}
}

// Pos is a source position.
type Pos struct {
	Line, Col int
}

// String renders "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexeme with its source position. Quoted marks Ident
// tokens written as quoted constants ('like this'); they are valid
// constants but not predicate names or keywords.
type Token struct {
	Kind   Kind
	Text   string
	Pos    Pos
	Quoted bool
}

// Lexer scans an input string into tokens.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// New returns a lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

func (lx *Lexer) peek() (rune, int) {
	if lx.off >= len(lx.src) {
		return 0, 0
	}
	r, w := utf8.DecodeRuneInString(lx.src[lx.off:])
	return r, w
}

func (lx *Lexer) advance(w int, r rune) {
	lx.off += w
	if r == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
}

func (lx *Lexer) skipSpaceAndComments() {
	for {
		r, w := lx.peek()
		switch {
		case w == 0:
			return
		case unicode.IsSpace(r):
			lx.advance(w, r)
		case r == '%':
			lx.skipLine()
		case r == '/' && strings.HasPrefix(lx.src[lx.off:], "//"):
			lx.skipLine()
		default:
			return
		}
	}
}

func (lx *Lexer) skipLine() {
	for {
		r, w := lx.peek()
		if w == 0 || r == '\n' {
			return
		}
		lx.advance(w, r)
	}
}

// Next scans and returns the next token.
func (lx *Lexer) Next() Token {
	lx.skipSpaceAndComments()
	pos := Pos{lx.line, lx.col}
	r, w := lx.peek()
	if w == 0 {
		return Token{Kind: EOF, Pos: pos}
	}
	switch {
	case r == '(':
		lx.advance(w, r)
		return Token{Kind: LParen, Text: "(", Pos: pos}
	case r == ')':
		lx.advance(w, r)
		return Token{Kind: RParen, Text: ")", Pos: pos}
	case r == '[':
		lx.advance(w, r)
		return Token{Kind: LBracket, Text: "[", Pos: pos}
	case r == ']':
		lx.advance(w, r)
		return Token{Kind: RBracket, Text: "]", Pos: pos}
	case r == ',':
		lx.advance(w, r)
		return Token{Kind: Comma, Text: ",", Pos: pos}
	case r == '.':
		lx.advance(w, r)
		return Token{Kind: Period, Text: ".", Pos: pos}
	case r == ':':
		lx.advance(w, r)
		if r2, w2 := lx.peek(); r2 == '-' {
			lx.advance(w2, r2)
			return Token{Kind: Implies, Text: ":-", Pos: pos}
		}
		return Token{Kind: Invalid, Text: ":", Pos: pos}
	case r == '<':
		lx.advance(w, r)
		if r2, w2 := lx.peek(); r2 == '=' {
			lx.advance(w2, r2)
			return Token{Kind: Le, Text: "<=", Pos: pos}
		}
		return Token{Kind: Lt, Text: "<", Pos: pos}
	case r == '>':
		lx.advance(w, r)
		if r2, w2 := lx.peek(); r2 == '=' {
			lx.advance(w2, r2)
			return Token{Kind: Ge, Text: ">=", Pos: pos}
		}
		return Token{Kind: Gt, Text: ">", Pos: pos}
	case r == '=':
		lx.advance(w, r)
		return Token{Kind: Eq, Text: "=", Pos: pos}
	case r == '!':
		lx.advance(w, r)
		if r2, w2 := lx.peek(); r2 == '=' {
			lx.advance(w2, r2)
			return Token{Kind: Neq, Text: "!=", Pos: pos}
		}
		return Token{Kind: Invalid, Text: "!", Pos: pos}
	case r == '\'':
		return lx.quoted(pos)
	case unicode.IsDigit(r):
		return lx.number(pos)
	case r == '_' || unicode.IsUpper(r):
		return lx.name(pos, Variable)
	case unicode.IsLower(r):
		return lx.name(pos, Ident)
	default:
		lx.advance(w, r)
		return Token{Kind: Invalid, Text: string(r), Pos: pos}
	}
}

func (lx *Lexer) number(pos Pos) Token {
	start := lx.off
	for {
		r, w := lx.peek()
		if w == 0 || !unicode.IsDigit(r) {
			break
		}
		lx.advance(w, r)
	}
	return Token{Kind: Number, Text: lx.src[start:lx.off], Pos: pos}
}

func isNameRune(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func (lx *Lexer) name(pos Pos, kind Kind) Token {
	start := lx.off
	for {
		r, w := lx.peek()
		if w == 0 || !isNameRune(r) {
			break
		}
		lx.advance(w, r)
	}
	return Token{Kind: kind, Text: lx.src[start:lx.off], Pos: pos}
}

// quoted scans a single-quoted constant; ” inside quotes is an escaped
// quote. Quoted constants are Ident tokens, allowing arbitrary content.
func (lx *Lexer) quoted(pos Pos) Token {
	r, w := lx.peek() // opening quote
	lx.advance(w, r)
	var b strings.Builder
	for {
		r, w := lx.peek()
		if w == 0 || r == '\n' {
			return Token{Kind: Invalid, Text: "unterminated quoted constant", Pos: pos}
		}
		lx.advance(w, r)
		if r == '\'' {
			if r2, w2 := lx.peek(); r2 == '\'' {
				lx.advance(w2, r2)
				b.WriteByte('\'')
				continue
			}
			return Token{Kind: Ident, Text: b.String(), Pos: pos, Quoted: true}
		}
		b.WriteRune(r)
	}
}

// All scans the entire input, returning every token up to and including
// the EOF token. Used by tests.
func All(src string) []Token {
	lx := New(src)
	var out []Token
	for {
		t := lx.Next()
		out = append(out, t)
		if t.Kind == EOF || t.Kind == Invalid {
			return out
		}
	}
}
