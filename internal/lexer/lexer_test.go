package lexer

import "testing"

func kinds(toks []Token) []Kind {
	out := make([]Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestBasicClause(t *testing.T) {
	toks := All("p(X) :- q(X, a), X < 2.")
	want := []Kind{
		Ident, LParen, Variable, RParen, Implies,
		Ident, LParen, Variable, Comma, Ident, RParen, Comma,
		Variable, Lt, Number, Period, EOF,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("token count %d, want %d: %v", len(got), len(want), toks)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d: got %s, want %s", i, got[i], want[i])
		}
	}
}

func TestIDPredicateBrackets(t *testing.T) {
	toks := All("emp[2](N, D, T)")
	want := []Kind{Ident, LBracket, Number, RBracket, LParen, Variable, Comma, Variable, Comma, Variable, RParen, EOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d: got %s, want %s (%v)", i, got[i], want[i], toks)
		}
	}
}

func TestOperators(t *testing.T) {
	toks := All("< <= > >= = != :-")
	want := []Kind{Lt, Le, Gt, Ge, Eq, Neq, Implies, EOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("token %d: got %s, want %s", i, got[i], want[i])
		}
	}
}

func TestCommentsAreSkipped(t *testing.T) {
	src := "% line comment\np(a). // another\nq(b).\n"
	toks := All(src)
	var idents []string
	for _, tk := range toks {
		if tk.Kind == Ident {
			idents = append(idents, tk.Text)
		}
	}
	if len(idents) != 4 || idents[0] != "p" || idents[2] != "q" {
		t.Fatalf("idents = %v", idents)
	}
}

func TestPositions(t *testing.T) {
	toks := All("p(a).\nq(b).")
	// q is the 6th token (p ( a ) . q ...)
	q := toks[5]
	if q.Text != "q" || q.Pos.Line != 2 || q.Pos.Col != 1 {
		t.Fatalf("q token position = %v (%q)", q.Pos, q.Text)
	}
}

func TestVariablesAndUnderscore(t *testing.T) {
	toks := All("X _ _Foo Xyz")
	for i := 0; i < 4; i++ {
		if toks[i].Kind != Variable {
			t.Fatalf("token %d %q: got %s, want variable", i, toks[i].Text, toks[i].Kind)
		}
	}
}

func TestQuotedConstants(t *testing.T) {
	toks := All("'Blvd. St. Germain' 'it''s'")
	if toks[0].Kind != Ident || toks[0].Text != "Blvd. St. Germain" {
		t.Fatalf("quoted constant: %v %q", toks[0].Kind, toks[0].Text)
	}
	if toks[1].Kind != Ident || toks[1].Text != "it's" {
		t.Fatalf("escaped quote: %v %q", toks[1].Kind, toks[1].Text)
	}
}

func TestUnterminatedQuote(t *testing.T) {
	toks := All("'never ends")
	last := toks[len(toks)-1]
	if last.Kind != Invalid {
		t.Fatalf("unterminated quote should be Invalid, got %s", last.Kind)
	}
}

func TestInvalidRunes(t *testing.T) {
	toks := All("p(a) & q(b)")
	sawInvalid := false
	for _, tk := range toks {
		if tk.Kind == Invalid {
			sawInvalid = true
			if tk.Text != "&" {
				t.Fatalf("invalid token text %q", tk.Text)
			}
		}
	}
	if !sawInvalid {
		t.Fatalf("'&' not reported as invalid")
	}
}

func TestLoneColonAndBangAreInvalid(t *testing.T) {
	if toks := All(": p"); toks[0].Kind != Invalid {
		t.Fatalf("lone ':' should be invalid")
	}
	if toks := All("! p"); toks[0].Kind != Invalid {
		t.Fatalf("lone '!' should be invalid")
	}
}

func TestNumbers(t *testing.T) {
	toks := All("0 42 007")
	for i, want := range []string{"0", "42", "007"} {
		if toks[i].Kind != Number || toks[i].Text != want {
			t.Fatalf("number token %d = %v %q", i, toks[i].Kind, toks[i].Text)
		}
	}
}

func TestUnicodeIdentifiers(t *testing.T) {
	toks := All("p(département)")
	if toks[2].Kind != Ident || toks[2].Text != "département" {
		t.Fatalf("unicode ident = %v %q", toks[2].Kind, toks[2].Text)
	}
}

func TestKindStringsAreTotal(t *testing.T) {
	for k := EOF; k <= Invalid; k++ {
		if k.String() == "" {
			t.Fatalf("Kind(%d).String is empty", k)
		}
	}
}
