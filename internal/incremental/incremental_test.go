package incremental

import (
	"fmt"
	"math/rand"
	"testing"

	"idlog/internal/adorn"
	"idlog/internal/analysis"
	"idlog/internal/choice"
	"idlog/internal/core"
	"idlog/internal/guard"
	"idlog/internal/parser"
	"idlog/internal/relation"
	"idlog/internal/value"
)

func mustInfo(t *testing.T, src string) *analysis.Info {
	t.Helper()
	prog, err := parser.Program(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	prog, err = choice.Translate(prog)
	if err != nil {
		t.Fatalf("choice: %v", err)
	}
	info, err := analysis.Analyze(prog)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return info
}

// checkEquiv asserts the view equals a from-scratch recompute over its
// current snapshot under the same options.
func checkEquiv(t *testing.T, label string, v *View, opts core.Options) {
	t.Helper()
	res, err := core.Eval(v.info, v.Database(), opts)
	if err != nil {
		t.Fatalf("%s: recompute: %v", label, err)
	}
	if ok, diff := v.Equal(res); !ok {
		t.Fatalf("%s: view diverged from recompute: %s", label, diff)
	}
}

func facts(pred string, tuples ...value.Tuple) []core.Fact {
	out := make([]core.Fact, len(tuples))
	for i, tp := range tuples {
		out[i] = core.Fact{Pred: pred, Tuple: tp}
	}
	return out
}

// TestIncrementalTransitiveClosure exercises the pure-delta and DRed
// paths on the classic recursive workload, asserting tuple-for-tuple
// equivalence with recompute after every step.
func TestIncrementalTransitiveClosure(t *testing.T) {
	info := mustInfo(t, `
		tc(X, Y) :- e(X, Y).
		tc(X, Y) :- e(X, Z), tc(Z, Y).
	`)
	db := core.NewDatabase()
	for i := 0; i < 20; i++ {
		_ = db.Add("e", value.Tuple{value.Int(int64(i)), value.Int(int64(i + 1))})
	}
	db.Freeze()
	opts := core.Options{}
	v, err := NewView(info, db, opts)
	if err != nil {
		t.Fatal(err)
	}

	steps := []struct {
		label    string
		ins, del []core.Fact
	}{
		{"insert shortcut edge", facts("e", value.Tuple{value.Int(3), value.Int(10)}), nil},
		{"insert branch", facts("e", value.Tuple{value.Int(5), value.Int(30)}), nil},
		{"delete chain edge", nil, facts("e", value.Tuple{value.Int(7), value.Int(8)})},
		{"delete shortcut", nil, facts("e", value.Tuple{value.Int(3), value.Int(10)})},
		{"mixed batch", facts("e", value.Tuple{value.Int(7), value.Int(8)}),
			facts("e", value.Tuple{value.Int(0), value.Int(1)})},
		{"no-op delete", nil, facts("e", value.Tuple{value.Int(99), value.Int(100)})},
	}
	for _, s := range steps {
		up, err := func() (UpdateStats, error) {
			_, up, err := v.ApplyFacts(s.ins, s.del, nil)
			return up, err
		}()
		if err != nil {
			t.Fatalf("%s: %v", s.label, err)
		}
		if up.FallbackFrom != -1 {
			t.Fatalf("%s: unexpected fallback from stratum %d", s.label, up.FallbackFrom)
		}
		checkEquiv(t, s.label, v, opts)
	}
}

// TestIncrementalRederivation forces the DRed rederive path: a tuple
// loses one derivation but keeps another.
func TestIncrementalRederivation(t *testing.T) {
	info := mustInfo(t, `
		tc(X, Y) :- e(X, Y).
		tc(X, Y) :- e(X, Z), tc(Z, Y).
	`)
	db := core.NewDatabase()
	// Diamond: a->b->d and a->c->d, so tc(a,d) has two derivations.
	for _, e := range [][2]string{{"a", "b"}, {"b", "d"}, {"a", "c"}, {"c", "d"}, {"d", "e"}} {
		_ = db.Add("e", value.Strs(e[0], e[1]))
	}
	db.Freeze()
	opts := core.Options{}
	v, err := NewView(info, db, opts)
	if err != nil {
		t.Fatal(err)
	}
	_, up, err := v.ApplyFacts(nil, facts("e", value.Strs("b", "d")), nil)
	if err != nil {
		t.Fatal(err)
	}
	if up.Rederived == 0 {
		t.Fatalf("expected rederivations, got stats %+v", up)
	}
	if !v.Relation("tc").Contains(value.Strs("a", "d")) {
		t.Fatal("tc(a,d) lost despite surviving derivation via c")
	}
	checkEquiv(t, "diamond delete", v, opts)
}

// TestFallbackBoundary checks the documented incremental/fallback rule:
// negation or ID-literals over a CHANGED predicate force recomputation
// of that stratum and above; over unchanged predicates the update stays
// incremental.
func TestFallbackBoundary(t *testing.T) {
	src := `
		reach(X) :- start(X).
		reach(Y) :- reach(X), e(X, Y).
		unreached(X) :- node(X), not reach(X).
	`
	info := mustInfo(t, src)
	db := core.NewDatabase()
	for i := 0; i < 10; i++ {
		_ = db.Add("e", value.Strs(fmt.Sprintf("n%d", i), fmt.Sprintf("n%d", i+1)))
		_ = db.Add("node", value.Strs(fmt.Sprintf("n%d", i)))
	}
	_ = db.Add("node", value.Strs("n10"))
	_ = db.Add("node", value.Strs("island"))
	_ = db.Add("start", value.Strs("n0"))
	db.Freeze()
	opts := core.Options{}
	v, err := NewView(info, db, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Changing e changes reach, which the unreached stratum negates:
	// fallback from that stratum.
	_, up, err := v.ApplyFacts(facts("e", value.Strs("n3", "island")), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if up.FallbackFrom < 0 {
		t.Fatalf("negation over changed reach must fall back, got %+v", up)
	}
	checkEquiv(t, "neg fallback", v, opts)
	if v.Relation("unreached").Contains(value.Strs("island")) {
		t.Fatal("island still unreached after adding edge to it")
	}

	// Changing only node (read positively by the top stratum, never
	// negated; reach does not change) stays incremental.
	_, up, err = v.ApplyFacts(facts("node", value.Strs("lonely")), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if up.FallbackFrom != -1 {
		t.Fatalf("node-only change should be incremental, got fallback from %d", up.FallbackFrom)
	}
	if !v.Relation("unreached").Contains(value.Strs("lonely")) {
		t.Fatal("new unreachable node not derived")
	}
	checkEquiv(t, "node insert incremental", v, opts)

	// Deleting a node tuple exercises DRed through the negation stratum
	// (still incremental: the negated predicate reach is unchanged).
	_, up, err = v.ApplyFacts(nil, facts("node", value.Strs("lonely")), nil)
	if err != nil {
		t.Fatal(err)
	}
	if up.FallbackFrom != -1 {
		t.Fatalf("node-only delete should be incremental, got fallback from %d", up.FallbackFrom)
	}
	checkEquiv(t, "node delete incremental", v, opts)
}

// paperExamples mirrors the Example 1–8 suite used across the repo
// (Examples 7–8 are derived from 6 via the §4 optimize chain below).
var paperExamples = []struct {
	name string
	src  string
}{
	{"ex1-man", `
		sex_guess(X, male) :- person(X).
		sex_guess(X, female) :- person(X).
		man(X) :- sex_guess[1](X, male, 1).
	`},
	{"ex2-man-woman", `
		sex_guess(X, male) :- person(X).
		sex_guess(X, female) :- person(X).
		man(X) :- sex_guess[1](X, male, 1).
		woman(X) :- sex_guess[1](X, female, 1).
	`},
	{"ex3-dl-contrast", `
		guess(X, in) :- person(X).
		guess(X, out) :- person(X).
		chosen(X) :- guess[1](X, in, 1).
	`},
	{"ex4-choice", `
		pick(N, D) :- emp(N, D), choice((D), (N)).
	`},
	{"ex5-sampling", `
		select_two_emp(Name) :- emp[2](Name, Dept, N), N < 2.
	`},
	{"ex6-reach-source", `
		q(X) :- a(X, Y).
		a(X, Y) :- p(X, Z), a(Z, Y).
		a(X, Y) :- p(X, Y).
	`},
}

func paperDB() *core.Database {
	db := core.NewDatabase()
	for i := 0; i < 6; i++ {
		_ = db.Add("person", value.Strs(fmt.Sprintf("p%02d", i)))
	}
	for d := 0; d < 4; d++ {
		for e := 0; e < 5; e++ {
			_ = db.Add("emp", value.Strs(fmt.Sprintf("e%d_%d", d, e), fmt.Sprintf("dept%d", d)))
		}
	}
	for i := 0; i < 30; i++ {
		_ = db.Add("p", value.Strs(fmt.Sprintf("v%03d", i), fmt.Sprintf("v%03d", i+1)))
		if i%5 == 0 {
			_ = db.Add("p", value.Strs(fmt.Sprintf("v%03d", i), fmt.Sprintf("w%03d", i)))
		}
	}
	return db
}

// TestIncrementalEquivalencePaperExamples runs insert/delete sequences
// through views of the paper's Examples 1–8 and asserts equivalence
// with recompute after every step. The ID-bearing examples exercise
// the fallback path (their strata read changed predicates through
// ID-literals); Example 6 and its optimized form exercise the
// incremental path. The shared oracle seed makes recompute and
// fallback draw identical ID assignments.
func TestIncrementalEquivalencePaperExamples(t *testing.T) {
	var infos []struct {
		name string
		info *analysis.Info
	}
	for _, ex := range paperExamples {
		infos = append(infos, struct {
			name string
			info *analysis.Info
		}{ex.name, mustInfo(t, ex.src)})
	}
	// Examples 7–8: the §4 rewrite of Example 6, derived as the paper
	// derives it.
	prog, err := parser.Program(paperExamples[5].src)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := adorn.Optimize(prog, "q")
	if err != nil {
		t.Fatal(err)
	}
	optInfo, err := analysis.Analyze(opt)
	if err != nil {
		t.Fatal(err)
	}
	infos = append(infos, struct {
		name string
		info *analysis.Info
	}{"ex7-8-optimized", optInfo})

	steps := []struct {
		label    string
		ins, del []core.Fact
	}{
		{"ins person+emp+edge", append(append(
			facts("person", value.Strs("p99")),
			facts("emp", value.Strs("e9_9", "dept2"))...),
			facts("p", value.Strs("v005", "v020"))...), nil},
		{"del person", nil, facts("person", value.Strs("p02"))},
		{"del emp", nil, facts("emp", value.Strs("e1_1", "dept1"))},
		{"del edge", nil, facts("p", value.Strs("v010", "v011"))},
		{"mixed", facts("p", value.Strs("v010", "v011")),
			facts("p", value.Strs("v000", "v001"))},
	}

	for _, ex := range infos {
		opts := core.Options{Oracle: relation.RandomOracle{Seed: 42}}
		v, err := NewView(ex.info, paperDB().Freeze(), opts)
		if err != nil {
			t.Fatalf("%s: %v", ex.name, err)
		}
		for _, s := range steps {
			// Drop mutations to predicates this program doesn't read:
			// Database.Apply would accept them, but the step labels are
			// about the program's own EDB.
			var ins, del []core.Fact
			for _, f := range s.ins {
				if ex.info.EDB[f.Pred] {
					ins = append(ins, f)
				}
			}
			for _, f := range s.del {
				if ex.info.EDB[f.Pred] {
					del = append(del, f)
				}
			}
			if len(ins) == 0 && len(del) == 0 {
				continue
			}
			if _, _, err := v.ApplyFacts(ins, del, nil); err != nil {
				t.Fatalf("%s %s: %v", ex.name, s.label, err)
			}
			checkEquiv(t, ex.name+" "+s.label, v, opts)
		}
	}
}

// TestIncrementalPropertyRandom is the fuzz/property test: random
// insert/delete interleavings over stratified programs, the view must
// stay tuple-for-tuple identical to recompute. Recomputes run with
// WithParallelism-style options so the parallel evaluator is part of
// the equivalence obligation (run under -race).
func TestIncrementalPropertyRandom(t *testing.T) {
	programs := []struct {
		name string
		src  string
	}{
		{"tc", `
			tc(X, Y) :- e(X, Y).
			tc(X, Y) :- e(X, Z), tc(Z, Y).
		`},
		{"reach-neg", `
			reach(X) :- start(X).
			reach(Y) :- reach(X), e(X, Y).
			unreached(X) :- node(X), not reach(X).
		`},
		{"two-hop-builtin", `
			hop2(X, Y, S) :- e(X, Z), e(Z, Y), add(X, Y, S).
		`},
	}
	const nodes = 12
	for _, pr := range programs {
		pr := pr
		t.Run(pr.name, func(t *testing.T) {
			info := mustInfo(t, pr.src)
			rng := rand.New(rand.NewSource(int64(len(pr.name)) * 7919))
			db := core.NewDatabase()
			for i := 0; i < nodes; i++ {
				_ = db.Add("e", value.Tuple{value.Int(int64(i)), value.Int(int64((i + 1) % nodes))})
				if info.EDB["node"] {
					_ = db.Add("node", value.Tuple{value.Int(int64(i))})
				}
			}
			if info.EDB["start"] {
				_ = db.Add("start", value.Tuple{value.Int(0)})
			}
			db.Freeze()

			for _, par := range []int{0, 4} {
				opts := core.Options{Parallelism: par}
				v, err := NewView(info, db, opts)
				if err != nil {
					t.Fatal(err)
				}
				for step := 0; step < 40; step++ {
					var ins, del []core.Fact
					for n := rng.Intn(3) + 1; n > 0; n-- {
						tup := value.Tuple{value.Int(int64(rng.Intn(nodes))), value.Int(int64(rng.Intn(nodes)))}
						if rng.Intn(2) == 0 {
							ins = append(ins, core.Fact{Pred: "e", Tuple: tup})
						} else {
							del = append(del, core.Fact{Pred: "e", Tuple: tup})
						}
					}
					if info.EDB["node"] && rng.Intn(4) == 0 {
						tup := value.Tuple{value.Int(int64(rng.Intn(nodes * 2)))}
						if rng.Intn(2) == 0 {
							ins = append(ins, core.Fact{Pred: "node", Tuple: tup})
						} else {
							del = append(del, core.Fact{Pred: "node", Tuple: tup})
						}
					}
					if _, _, err := v.ApplyFacts(ins, del, nil); err != nil {
						t.Fatalf("step %d (par=%d): %v", step, par, err)
					}
					checkEquiv(t, fmt.Sprintf("%s step %d par=%d", pr.name, step, par), v, opts)
				}
			}
		})
	}
}

// TestViewGuardBudgetAndRebuild: a budget-tripped Apply leaves the view
// stale; Rebuild restores consistency.
func TestViewGuardBudgetAndRebuild(t *testing.T) {
	info := mustInfo(t, `
		tc(X, Y) :- e(X, Y).
		tc(X, Y) :- e(X, Z), tc(Z, Y).
	`)
	db := core.NewDatabase()
	for i := 0; i < 40; i++ {
		_ = db.Add("e", value.Tuple{value.Int(int64(i)), value.Int(int64(i + 1))})
	}
	db.Freeze()
	opts := core.Options{}
	v, err := NewView(info, db, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Closing the chain into a cycle derives ~n^2 new tuples: far past
	// the budget.
	g := guard.New(nil, guard.Limits{MaxDerivations: 5})
	_, _, err = v.ApplyFacts(facts("e", value.Tuple{value.Int(40), value.Int(0)}), nil, g)
	if err == nil {
		t.Fatal("budgeted apply succeeded against a 5-derivation limit")
	}
	if !v.Stale() {
		t.Fatal("failed apply did not mark the view stale")
	}
	if _, _, err := v.ApplyFacts(nil, nil, nil); err == nil {
		t.Fatal("stale view accepted another apply")
	}
	if err := v.Rebuild(v.Database()); err != nil {
		t.Fatal(err)
	}
	if v.Stale() {
		t.Fatal("rebuild left the view stale")
	}
	checkEquiv(t, "after rebuild", v, opts)
	// And the view works again.
	if _, _, err := v.ApplyFacts(facts("e", value.Tuple{value.Int(5), value.Int(25)}), nil, nil); err != nil {
		t.Fatal(err)
	}
	checkEquiv(t, "post-rebuild apply", v, opts)
}

// TestMutateDerivedRelationRejected: IDB predicates are not mutable.
func TestMutateDerivedRelationRejected(t *testing.T) {
	info := mustInfo(t, `tc(X, Y) :- e(X, Y).`)
	db := core.NewDatabase()
	_ = db.Add("e", value.Strs("a", "b"))
	db.Freeze()
	v, err := NewView(info, db, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := v.ApplyFacts(facts("tc", value.Strs("x", "y")), nil, nil); err == nil {
		t.Fatal("mutating derived relation tc accepted")
	}
}

// TestIncrementalPlannerOnOffInterleaved drives two views — one with
// the join planner, one with it disabled — through the same random
// interleaving of insertions and deletions, asserting after every step
// that each view equals a from-scratch recompute under its own options
// and that the two views hold identical relations. This pins the
// planner's delta-first variants (used by Overdelete and Propagate) to
// the analysis-order baseline across DRed and propagation paths.
func TestIncrementalPlannerOnOffInterleaved(t *testing.T) {
	info := mustInfo(t, `
		tc(X, Y) :- e(X, Y).
		tc(X, Y) :- e(X, Z), tc(Z, Y).
		blocked(X) :- node(X), not tc(X, X).
		pair(X, S) :- tc(X, Y), node(Y), add(X, Y, S).
	`)
	const nodes = 10
	rng := rand.New(rand.NewSource(42))
	db := core.NewDatabase()
	for i := 0; i < nodes; i++ {
		_ = db.Add("e", value.Tuple{value.Int(int64(i)), value.Int(int64((i + 3) % nodes))})
		_ = db.Add("node", value.Tuple{value.Int(int64(i))})
	}
	db.Freeze()

	on := core.Options{}
	off := core.Options{NoPlanner: true}
	vOn, err := NewView(info, db, on)
	if err != nil {
		t.Fatal(err)
	}
	vOff, err := NewView(info, db, off)
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 60; step++ {
		var ins, del []core.Fact
		for n := rng.Intn(3) + 1; n > 0; n-- {
			tup := value.Tuple{value.Int(int64(rng.Intn(nodes))), value.Int(int64(rng.Intn(nodes)))}
			if rng.Intn(2) == 0 {
				ins = append(ins, core.Fact{Pred: "e", Tuple: tup})
			} else {
				del = append(del, core.Fact{Pred: "e", Tuple: tup})
			}
		}
		if _, _, err := vOn.ApplyFacts(ins, del, nil); err != nil {
			t.Fatalf("step %d planner-on: %v", step, err)
		}
		if _, _, err := vOff.ApplyFacts(ins, del, nil); err != nil {
			t.Fatalf("step %d planner-off: %v", step, err)
		}
		checkEquiv(t, fmt.Sprintf("planner-on step %d", step), vOn, on)
		checkEquiv(t, fmt.Sprintf("planner-off step %d", step), vOff, off)
		for _, p := range []string{"tc", "blocked", "pair"} {
			a, b := vOn.Relation(p), vOff.Relation(p)
			if !a.Equal(b) {
				t.Fatalf("step %d: planner on/off diverged on %s:\non:  %s\noff: %s", step, p, a, b)
			}
			if a.Fingerprint() != b.Fingerprint() {
				t.Fatalf("step %d: planner on/off fingerprints differ on %s", step, p)
			}
		}
	}
}
