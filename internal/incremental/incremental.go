// Package incremental maintains materialized IDLOG models under live
// EDB mutations. Insertions propagate with delta-driven semi-naive
// evaluation; deletions use DRed (overdelete against the old state,
// remove, rederive survivors, propagate); both run stratum by stratum,
// reusing the compiled-clause operators exported by internal/core.
//
// Not every stratum can be maintained incrementally. The precise
// boundary, computed bottom-up per update: a stratum is AFFECTED when
// any predicate read by its clause bodies is possibly changed (EDB
// predicates touched by the update, plus IDB predicates of already
// processed affected strata). An affected stratum falls back to full
// recomputation when it reads a possibly-changed predicate through a
// non-monotonic literal — an ID-literal whose base predicate changed,
// or a negated literal over a changed predicate. Choice constructs are
// translated to ID-literals before analysis, so they inherit the
// ID-literal rule. From the first such stratum F upward, everything is
// recomputed by the ordinary engine; ID-relations of strata below F are
// never re-materialized, and re-materialization above F uses the same
// oracle, whose assignment is keyed on group content — so untouched
// derivations keep their tuple-IDs and previously returned answers
// remain valid within a session.
package incremental

import (
	"fmt"

	"idlog/internal/analysis"
	"idlog/internal/core"
	"idlog/internal/guard"
	"idlog/internal/relation"
)

// UpdateStats summarizes one Apply.
type UpdateStats struct {
	// Inserted / Deleted count net tuple changes across EDB and IDB
	// relations (what a from-scratch diff would report).
	Inserted int `json:"inserted"`
	Deleted  int `json:"deleted"`
	// Overdeleted counts DRed phase-1 candidates, Rederived the
	// survivors restored in phase 3.
	Overdeleted int `json:"overdeleted"`
	Rederived   int `json:"rederived"`
	// FallbackFrom is the first recomputed stratum, -1 for a fully
	// incremental update; StrataRecomputed counts recomputed strata.
	FallbackFrom     int `json:"fallback_from"`
	StrataRecomputed int `json:"strata_recomputed"`
}

func (u *UpdateStats) add(o UpdateStats) {
	u.Inserted += o.Inserted
	u.Deleted += o.Deleted
	u.Overdeleted += o.Overdeleted
	u.Rederived += o.Rederived
	u.StrataRecomputed += o.StrataRecomputed
}

// View is a materialized model of one analyzed program over an EDB
// snapshot, maintained under Apply. A View is not safe for concurrent
// use; callers serialize Apply and reads (idlogd wraps each view in an
// RWMutex).
type View struct {
	info *analysis.Info
	opts core.Options
	db   *core.Database

	rels   map[string]*relation.Relation
	idrels map[string]*relation.Relation
	plans  []*core.CompiledStratum

	// bodyPreds / negPreds / idBase cache, per stratum, the predicates
	// its clause bodies read — all of them, the negated ones, and the
	// base predicates of ID-literals — for the affected/fallback
	// decision.
	bodyPreds []map[string]bool
	negPreds  []map[string]bool
	idBase    []map[string]bool

	stats core.Stats
	last  UpdateStats
	total UpdateStats
	stale bool
}

// NewView materializes the model of info over db (which the view keeps
// as its EDB snapshot) and returns the maintained view. opts applies to
// the initial evaluation and to every fallback recomputation; its
// Oracle pins the ID assignment.
func NewView(info *analysis.Info, db *core.Database, opts core.Options) (*View, error) {
	v := &View{info: info, opts: opts, db: db, last: UpdateStats{FallbackFrom: -1}}
	v.indexBodies()
	if err := v.rebuild(db); err != nil {
		return nil, err
	}
	// The construction guard is one-shot: its budgets and deadline are
	// (partially) consumed by the initial evaluation. Later rebuilds and
	// fallbacks run under the guard passed to Apply, or ungoverned.
	v.opts.Guard = nil
	return v, nil
}

func (v *View) indexBodies() {
	n := len(v.info.Strata)
	v.plans = make([]*core.CompiledStratum, n)
	v.bodyPreds = make([]map[string]bool, n)
	v.negPreds = make([]map[string]bool, n)
	v.idBase = make([]map[string]bool, n)
	for i, s := range v.info.Strata {
		body, neg, id := map[string]bool{}, map[string]bool{}, map[string]bool{}
		for _, oc := range s.Clauses {
			for _, l := range oc.Clause.Body {
				body[l.Atom.Pred] = true
				if l.Neg {
					neg[l.Atom.Pred] = true
				}
				if l.Atom.IsID {
					id[l.Atom.Pred] = true
				}
			}
		}
		v.bodyPreds[i], v.negPreds[i], v.idBase[i] = body, neg, id
	}
}

// rebuild recomputes the whole model from scratch against db.
func (v *View) rebuild(db *core.Database) error {
	res, err := core.Eval(v.info, db, v.opts)
	if err != nil {
		return err
	}
	v.rels = map[string]*relation.Relation{}
	for _, name := range res.Relations() {
		v.rels[name] = res.Relation(name)
	}
	v.idrels = map[string]*relation.Relation{}
	for _, s := range v.info.Strata {
		for _, need := range s.IDNeeds {
			if r := res.IDRelation(need.Key()); r != nil {
				v.idrels[need.Key()] = r
			}
		}
	}
	v.stats.Add(res.Stats)
	v.db = db
	v.stale = false
	return nil
}

// Rebuild discards the materialized state and recomputes it over db,
// clearing staleness. Used after a failed Apply.
func (v *View) Rebuild(db *core.Database) error { return v.rebuild(db) }

// Stale reports whether a failed Apply left the view inconsistent.
func (v *View) Stale() bool { return v.stale }

// Database returns the EDB snapshot the view currently reflects.
func (v *View) Database() *core.Database { return v.db }

// Relation returns the materialized relation for a program predicate,
// or nil when the program does not define or read it.
func (v *View) Relation(name string) *relation.Relation { return v.rels[name] }

// LastUpdate returns the statistics of the most recent Apply.
func (v *View) LastUpdate() UpdateStats { return v.last }

// TotalUpdates returns cumulative Apply statistics.
func (v *View) TotalUpdates() UpdateStats { return v.total }

// EvalStats returns cumulative engine counters (initial evaluation,
// incremental passes, fallback recomputations).
func (v *View) EvalStats() core.Stats { return v.stats }

func (v *View) plan(si int) (*core.CompiledStratum, error) {
	if v.plans[si] == nil {
		// Plans compile lazily, so the materialized relations are a live
		// cardinality snapshot for the join planner.
		cs, err := core.CompileStratum(v.info, si, core.CompileOptions{
			NoPlanner:   !v.opts.PlannerEnabled(),
			NoStreaming: !v.opts.StreamingEnabled(),
			Rels:        v.rels,
			IDRels:      v.idrels,
		})
		if err != nil {
			return nil, err
		}
		v.plans[si] = cs
	}
	return v.plans[si], nil
}

// Apply advances the view from its current EDB snapshot to db, whose
// effective difference is delta (as returned by Database.Apply on the
// view's current snapshot). g, when non-nil, governs the maintenance
// work (budgets, deadlines, cancellation). On error the view is marked
// stale and must be Rebuilt before further use.
func (v *View) Apply(db *core.Database, delta *core.Delta, g *guard.Guard) (UpdateStats, error) {
	if v.stale {
		return UpdateStats{}, fmt.Errorf("incremental: view is stale; rebuild first")
	}
	up := UpdateStats{FallbackFrom: -1}
	for _, p := range delta.Preds() {
		if v.info.IDB[p] {
			return UpdateStats{}, fmt.Errorf("incremental: cannot mutate derived relation %s", p)
		}
	}

	// Global effective-change sets, per predicate, growing as strata are
	// processed. EDB changes seed them; mutations to predicates the
	// program never reads are ignored (the snapshot swap below still
	// picks them up if the program's EDB set includes them).
	ins := map[string]*relation.Relation{}
	dels := map[string]*relation.Relation{}
	for p, ts := range delta.Inserts {
		if !v.info.EDB[p] {
			continue
		}
		ins[p] = relation.FromTuples(p, v.info.Arity[p], ts...)
		up.Inserted += len(ts)
	}
	for p, ts := range delta.Deletes {
		if !v.info.EDB[p] {
			continue
		}
		dels[p] = relation.FromTuples(p, v.info.Arity[p], ts...)
		up.Deleted += len(ts)
	}

	// Swap the EDB to the new snapshot. IDB relations are mutated in
	// place below.
	for p := range v.info.EDB {
		r := db.Relation(p)
		if r == nil {
			r = relation.New(p, v.info.Arity[p])
		}
		v.rels[p] = r
	}
	v.db = db

	if len(ins) == 0 && len(dels) == 0 {
		v.last = up
		v.total.add(up)
		return up, nil
	}

	// oldViews materializes, per changed predicate and at most once per
	// Apply, the pre-update relation: current content minus this
	// update's insertions plus its deletions. Unchanged predicates
	// resolve to their current relation. Lower strata are final when a
	// stratum reads them, so a materialized old view stays valid for
	// the rest of the Apply.
	oldViews := map[string]*relation.Relation{}
	oldOf := func(p string) *relation.Relation {
		if r, ok := oldViews[p]; ok {
			return r
		}
		cur := v.rels[p]
		i, d := ins[p], dels[p]
		if (i == nil || i.Len() == 0) && (d == nil || d.Len() == 0) {
			return cur
		}
		old := cur.Clone()
		if i != nil {
			for _, t := range i.Tuples() {
				if _, err := old.Remove(t); err != nil {
					return cur // unreachable: old is an unfrozen clone
				}
			}
		}
		if d != nil {
			for _, t := range d.Tuples() {
				old.MustInsert(t)
			}
		}
		oldViews[p] = old
		return old
	}

	changed := func(preds map[string]bool) bool {
		for p := range preds {
			if i := ins[p]; i != nil && i.Len() > 0 {
				return true
			}
			if d := dels[p]; d != nil && d.Len() > 0 {
				return true
			}
		}
		return false
	}

	st := &core.IncrState{Rels: v.rels, IDRels: v.idrels, Guard: g, Stats: &v.stats}
	fail := func(err error) (UpdateStats, error) {
		v.stale = true
		return UpdateStats{}, err
	}
	fallback := -1
	for si := range v.info.Strata {
		if !changed(v.bodyPreds[si]) {
			continue
		}
		// Fallback test: the stratum reads a changed predicate through a
		// non-monotonic literal.
		unsafe := false
		for p := range v.idBase[si] {
			if changed(map[string]bool{p: true}) {
				unsafe = true
			}
		}
		for p := range v.negPreds[si] {
			if changed(map[string]bool{p: true}) {
				unsafe = true
			}
		}
		if unsafe {
			fallback = si
			break
		}

		plan, err := v.plan(si)
		if err != nil {
			return fail(err)
		}
		// DRed phase 1: overestimate lost tuples against the old state.
		overdel, err := plan.Overdelete(st, dels, oldOf)
		if err != nil {
			return fail(err)
		}
		// Phase 2: physical removal, so rederivation cannot self-support.
		for p, od := range overdel {
			for _, t := range od.Tuples() {
				if _, err := v.rels[p].Remove(t); err != nil {
					return fail(err)
				}
			}
			up.Overdeleted += od.Len()
		}
		// Phase 3: restore tuples with surviving derivations.
		redone, err := plan.Rederive(st, overdel)
		if err != nil {
			return fail(err)
		}
		for _, rd := range redone {
			up.Rederived += rd.Len()
		}
		// Phase 4: semi-naive insertion propagation. Deltas: everything
		// inserted below plus this stratum's rederived tuples (chains
		// through rederived support resurface here).
		propIns := map[string]*relation.Relation{}
		for p, r := range ins {
			propIns[p] = r
		}
		for p, r := range redone {
			propIns[p] = r
		}
		added, err := plan.Propagate(st, propIns)
		if err != nil {
			return fail(err)
		}
		// Fold this stratum's net changes into the global sets: net
		// deletions are overdeleted minus rederived minus re-added, net
		// insertions are added minus overdeleted (a tuple that was
		// removed and came back is no change at all).
		for _, p := range plan.Preds {
			od, rd, ad := overdel[p], redone[p], added[p]
			var netDel, netIns *relation.Relation
			if od != nil {
				for _, t := range od.Tuples() {
					if rd != nil && rd.Contains(t) {
						continue
					}
					if ad != nil && ad.Contains(t) {
						continue
					}
					if netDel == nil {
						netDel = relation.New(p, od.Arity())
					}
					netDel.MustInsert(t)
				}
			}
			if ad != nil {
				for _, t := range ad.Tuples() {
					if od != nil && od.Contains(t) {
						continue
					}
					if netIns == nil {
						netIns = relation.New(p, ad.Arity())
					}
					netIns.MustInsert(t)
				}
			}
			if netDel != nil {
				dels[p] = netDel
				up.Deleted += netDel.Len()
			}
			if netIns != nil {
				ins[p] = netIns
				up.Inserted += netIns.Len()
			}
		}
	}

	if fallback >= 0 {
		// Count what the recomputed strata currently hold, recompute,
		// and diff sizes for the stats (tuple-exact diffs would cost as
		// much as the recompute).
		before := 0
		for si := fallback; si < len(v.info.Strata); si++ {
			for _, p := range v.info.Strata[si].Preds {
				if r := v.rels[p]; r != nil {
					before += r.Len()
				}
			}
		}
		if err := core.EvalStrata(v.info, st, fallback, v.opts); err != nil {
			return fail(err)
		}
		after := 0
		for si := fallback; si < len(v.info.Strata); si++ {
			for _, p := range v.info.Strata[si].Preds {
				if r := v.rels[p]; r != nil {
					after += r.Len()
				}
			}
		}
		if after > before {
			up.Inserted += after - before
		} else {
			up.Deleted += before - after
		}
		up.FallbackFrom = fallback
		up.StrataRecomputed = len(v.info.Strata) - fallback
	}

	v.last = up
	v.total.add(up)
	return up, nil
}

// ApplyFacts is the convenience path used by idlogd and the REPL: it
// runs Database.Apply on the view's current snapshot and advances the
// view with the effective delta, returning the new snapshot.
func (v *View) ApplyFacts(inserts, deletes []core.Fact, g *guard.Guard) (*core.Database, UpdateStats, error) {
	db, delta, err := v.db.Apply(inserts, deletes)
	if err != nil {
		return nil, UpdateStats{}, err
	}
	up, err := v.Apply(db, delta, g)
	if err != nil {
		return nil, UpdateStats{}, err
	}
	return db, up, nil
}

// Equal reports whether the view's materialized relations are
// tuple-for-tuple identical to res (a from-scratch evaluation); the
// first difference is described in detail. Used by the equivalence
// tests.
func (v *View) Equal(res *core.Result) (bool, string) {
	names := res.Relations()
	seen := map[string]bool{}
	for _, name := range names {
		seen[name] = true
		want := res.Relation(name)
		got := v.rels[name]
		if got == nil {
			return false, fmt.Sprintf("relation %s missing from view", name)
		}
		if !got.Equal(want) {
			return false, fmt.Sprintf("relation %s differs: view=%s recompute=%s", name, got, want)
		}
	}
	for name := range v.rels {
		if !seen[name] {
			return false, fmt.Sprintf("view has extra relation %s", name)
		}
	}
	return true, ""
}
