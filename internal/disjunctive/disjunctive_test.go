package disjunctive

import (
	"strings"
	"testing"

	"idlog/internal/analysis"
	"idlog/internal/core"
	"idlog/internal/parser"
	"idlog/internal/value"
)

func mustParse(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestExample2DisjunctiveClause(t *testing.T) {
	// man(X) ∨ woman(X) :- person(X): the minimal models are exactly
	// the 2^n partitions of persons.
	p := mustParse(t, `man(X), woman(X) :- person(X).`)
	db := core.NewDatabase()
	_ = db.AddAll("person", value.Strs("a"), value.Strs("b"))
	models, err := p.MinimalModels(db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 4 {
		t.Fatalf("minimal models = %d, want 4", len(models))
	}
	for _, m := range models {
		man := m.Relation("man", 1)
		woman := m.Relation("woman", 1)
		if man.Len()+woman.Len() != 2 {
			t.Fatalf("non-partition minimal model: man=%v woman=%v", man, woman)
		}
		for _, tup := range man.Tuples() {
			if woman.Contains(tup) {
				t.Fatalf("minimal model has %v both ways", tup)
			}
		}
	}
}

func TestFamilyMatchesIDLOGExample2(t *testing.T) {
	// §3.2: the DATALOG∨ clause defines the same man-answer family as
	// the IDLOG program of Example 2.
	p := mustParse(t, `man(X), woman(X) :- person(X).`)
	db := core.NewDatabase()
	_ = db.AddAll("person", value.Strs("a"), value.Strs("b"), value.Strs("c"))
	models, err := p.MinimalModels(db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	disjFPs := map[string]bool{}
	for _, m := range models {
		disjFPs[m.Relation("man", 1).Fingerprint()] = true
	}

	prog, err := parser.Program(`
		sex_guess(X, male) :- person(X).
		sex_guess(X, female) :- person(X).
		man(X) :- sex_guess[1](X, male, 1).
	`)
	if err != nil {
		t.Fatal(err)
	}
	info, err := analysis.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	answers, err := core.Enumerate(info, db, []string{"man"}, core.EnumerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != len(models) {
		t.Fatalf("IDLOG %d answers vs %d minimal models", len(answers), len(models))
	}
	for _, a := range answers {
		if !disjFPs[a.Relations["man"].Fingerprint()] {
			t.Fatalf("IDLOG answer %v missing from minimal models", a.Relations["man"])
		}
	}
}

func TestDefiniteProgramHasUniqueMinimalModel(t *testing.T) {
	p := mustParse(t, `
		r(X) :- s(X).
		t(X) :- r(X).
	`)
	db := core.NewDatabase()
	_ = db.AddAll("s", value.Strs("a"), value.Strs("b"))
	models, err := p.MinimalModels(db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 1 {
		t.Fatalf("models = %d, want 1", len(models))
	}
	if models[0].Relation("t", 1).Len() != 2 {
		t.Fatalf("t = %v", models[0].Relation("t", 1))
	}
}

func TestMinimalityFiltersSupersets(t *testing.T) {
	// a ∨ b. (propositional): models {a}, {b}, {a,b}; minimal: {a},{b}.
	p := mustParse(t, `a, b.`)
	models, err := p.MinimalModels(core.NewDatabase(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 2 {
		t.Fatalf("models = %d, want 2", len(models))
	}
	for _, m := range models {
		if len(m.Atoms) != 1 {
			t.Fatalf("non-minimal model %v", m.Atoms)
		}
	}
}

func TestNegationRejected(t *testing.T) {
	if _, err := Parse(`p(X) :- q(X), not r(X).`); err == nil {
		t.Fatalf("negation accepted")
	}
	if _, err := Parse(`not p(X) :- q(X).`); err == nil {
		t.Fatalf("negated head accepted")
	}
}

func TestAtomBudget(t *testing.T) {
	p := mustParse(t, `a(X), b(X) :- d(X).`)
	db := core.NewDatabase()
	for i := 0; i < 15; i++ {
		_ = db.Add("d", value.Ints(int64(i)))
	}
	_, err := p.MinimalModels(db, Options{MaxAtoms: 8})
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("err = %v", err)
	}
}

func TestBuiltinsInBodies(t *testing.T) {
	p := mustParse(t, `low(X), high(X) :- d(X), X < 5.`)
	db := core.NewDatabase()
	_ = db.AddAll("d", value.Ints(1), value.Ints(9))
	models, err := p.MinimalModels(db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Only d(1) passes the comparison: two minimal models.
	if len(models) != 2 {
		t.Fatalf("models = %d, want 2", len(models))
	}
}
