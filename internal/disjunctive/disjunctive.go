// Package disjunctive implements DATALOG∨ — DATALOG with disjunctive
// clause heads under minimal-model semantics — the first alternative
// non-deterministic language §3.2 of the paper surveys ([Prz88b]).
// "A fairly direct way to have a non-deterministic database language is
// to allow disjunctions in clause heads"; the paper's Example 2 clause
// is
//
//	man(X) ∨ woman(X) :- person(X)
//
// whose minimal models are exactly the man/woman partitions — the same
// answer family the IDLOG program of Example 2 defines. The tests check
// that coincidence.
//
// The implementation grounds the program over the active domain and
// enumerates minimal Herbrand models by subset search (a semantic
// reference implementation; budget-bounded).
package disjunctive

import (
	"fmt"
	"sort"

	"idlog/internal/ast"
	"idlog/internal/core"
	"idlog/internal/ground"
	"idlog/internal/parser"
	"idlog/internal/relation"
)

// Program is a DATALOG∨ program: positive bodies, disjunctive heads.
type Program struct {
	rules []ground.Rule
	idb   map[string]bool
}

// Parse reads rules in the generalized syntax where the comma-separated
// head literals are interpreted as a DISJUNCTION:
//
//	man(X), woman(X) :- person(X).   % man(X) ∨ woman(X) ← person(X)
//
// Negation is not permitted (minimal-model semantics is defined for
// positive disjunctive programs here).
func Parse(src string) (*Program, error) {
	p := &Program{idb: map[string]bool{}}
	for _, chunk := range splitRules(src) {
		head, body, err := parser.RuleParts(chunk)
		if err != nil {
			return nil, err
		}
		var heads []*ast.Atom
		for _, h := range head {
			if h.Neg || h.IsChoice() || h.Atom.IsID {
				return nil, fmt.Errorf("disjunctive: invalid head literal %s", h)
			}
			heads = append(heads, h.Atom)
			p.idb[h.Atom.Pred] = true
		}
		for _, l := range body {
			if l.Neg {
				return nil, fmt.Errorf("disjunctive: negation not supported (literal %s)", l)
			}
			if l.IsChoice() || l.Atom.IsID {
				return nil, fmt.Errorf("disjunctive: invalid body literal %s", l)
			}
		}
		p.rules = append(p.rules, ground.Rule{Head: heads, Body: body})
	}
	return p, nil
}

func splitRules(src string) []string {
	var out []string
	cur := ""
	for i := 0; i < len(src); i++ {
		cur += string(src[i])
		if src[i] == '.' && (i+1 == len(src) || src[i+1] == ' ' || src[i+1] == '\n' || src[i+1] == '\t' || src[i+1] == '\r') {
			if nonEmpty(cur) {
				out = append(out, cur)
			}
			cur = ""
		}
	}
	if nonEmpty(cur) {
		out = append(out, cur)
	}
	return out
}

func nonEmpty(s string) bool {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case ' ', '\t', '\n', '\r':
		default:
			return true
		}
	}
	return false
}

// Options bounds the search.
type Options struct {
	// MaxAtoms caps the candidate atoms (default 20).
	MaxAtoms int
	// Ground bounds grounding.
	Ground ground.Options
}

// Model is one minimal model.
type Model struct {
	Atoms []ground.Atom
}

// Relation projects the model onto a predicate.
func (m *Model) Relation(pred string, arity int) *relation.Relation {
	out := relation.New(pred, arity)
	for _, a := range m.Atoms {
		if a.Pred == pred {
			out.MustInsert(a.Tuple)
		}
	}
	return out
}

// Fingerprint canonically identifies the model.
func (m *Model) Fingerprint() string {
	keys := make([]string, len(m.Atoms))
	for i, a := range m.Atoms {
		keys[i] = a.Key()
	}
	sort.Strings(keys)
	s := ""
	for _, k := range keys {
		s += k + ";"
	}
	return s
}

// MinimalModels enumerates the minimal Herbrand models of the program
// over db, sorted by fingerprint.
func (p *Program) MinimalModels(db *core.Database, opts Options) ([]*Model, error) {
	maxAtoms := opts.MaxAtoms
	if maxAtoms == 0 {
		maxAtoms = 20
	}
	g, err := ground.Ground(p.rules, db, p.idb, opts.Ground)
	if err != nil {
		return nil, err
	}
	n := len(g.Atoms)
	if n > maxAtoms {
		return nil, fmt.Errorf("disjunctive: %d candidate atoms exceed the budget of %d", n, maxAtoms)
	}
	// Collect all models, then filter minimal ones.
	var masks []uint64
	for mask := uint64(0); mask < 1<<uint(n); mask++ {
		if satisfies(g, mask) {
			masks = append(masks, mask)
		}
	}
	var minimal []uint64
	for _, m := range masks {
		isMin := true
		for _, o := range masks {
			if o != m && o&m == o { // o ⊆ m and o ≠ m
				isMin = false
				break
			}
		}
		if isMin {
			minimal = append(minimal, m)
		}
	}
	var out []*Model
	for _, mask := range minimal {
		mm := &Model{}
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				mm.Atoms = append(mm.Atoms, g.Atoms[i])
			}
		}
		out = append(out, mm)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Fingerprint() < out[j].Fingerprint() })
	return out, nil
}

// satisfies checks that the interpretation given by mask satisfies
// every ground clause: if the (positive) body holds, some head atom
// must hold.
func satisfies(g *ground.Program, mask uint64) bool {
	idx := map[string]int{}
	for i, a := range g.Atoms {
		idx[a.Key()] = i
	}
	holds := func(a ground.Atom) bool {
		i, ok := idx[a.Key()]
		if !ok {
			return false
		}
		return mask&(1<<uint(i)) != 0
	}
	for _, c := range g.Clauses {
		bodyOK := true
		for _, p := range c.Pos {
			if !holds(p) {
				bodyOK = false
				break
			}
		}
		if !bodyOK {
			continue
		}
		headOK := false
		for _, h := range c.Head {
			if holds(h) {
				headOK = true
				break
			}
		}
		if !headOK {
			return false
		}
	}
	return true
}
