package symbol

import (
	"fmt"
	"sync"
	"testing"
)

func TestInternIsIdempotent(t *testing.T) {
	tb := NewTable()
	a := tb.Intern("alpha")
	b := tb.Intern("beta")
	if a == b {
		t.Fatalf("distinct names interned to same ID %d", a)
	}
	if again := tb.Intern("alpha"); again != a {
		t.Fatalf("re-interning alpha: got %d want %d", again, a)
	}
	if tb.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tb.Len())
	}
}

func TestNameRoundTrip(t *testing.T) {
	tb := NewTable()
	names := []string{"a", "b", "", "with space", "日本語", "a"}
	for _, n := range names {
		id := tb.Intern(n)
		if got := tb.Name(id); got != n {
			t.Errorf("Name(Intern(%q)) = %q", n, got)
		}
	}
}

func TestZeroIDIsNeverIssued(t *testing.T) {
	tb := NewTable()
	for i := 0; i < 100; i++ {
		if id := tb.Intern(fmt.Sprintf("s%d", i)); id == None {
			t.Fatalf("Intern returned the reserved None ID")
		}
	}
}

func TestNameOfUnknownIDIsDiagnostic(t *testing.T) {
	tb := NewTable()
	if got := tb.Name(None); got == "" {
		t.Errorf("Name(None) should be a diagnostic placeholder, got empty string")
	}
	if got := tb.Name(ID(9999)); got == "" {
		t.Errorf("Name(out-of-range) should be a diagnostic placeholder, got empty string")
	}
}

func TestLookupDoesNotIntern(t *testing.T) {
	tb := NewTable()
	if _, ok := tb.Lookup("ghost"); ok {
		t.Fatalf("Lookup found a never-interned name")
	}
	if tb.Len() != 0 {
		t.Fatalf("Lookup interned a name: Len = %d", tb.Len())
	}
	id := tb.Intern("ghost")
	got, ok := tb.Lookup("ghost")
	if !ok || got != id {
		t.Fatalf("Lookup(ghost) = %d,%v want %d,true", got, ok, id)
	}
}

func TestFreshAvoidsCollisions(t *testing.T) {
	tb := NewTable()
	tb.Intern("v#1")
	seen := make(map[string]bool)
	for i := 0; i < 50; i++ {
		id, name := tb.Fresh("v")
		if seen[name] {
			t.Fatalf("Fresh returned duplicate name %q", name)
		}
		seen[name] = true
		if tb.Name(id) != name {
			t.Fatalf("Fresh ID %d resolves to %q, want %q", id, tb.Name(id), name)
		}
	}
	if seen["v#1"] {
		t.Fatalf("Fresh reused the pre-interned name v#1")
	}
}

func TestConcurrentIntern(t *testing.T) {
	tb := NewTable()
	const goroutines = 16
	const perG = 200
	var wg sync.WaitGroup
	ids := make([][]ID, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ids[g] = make([]ID, perG)
			for i := 0; i < perG; i++ {
				ids[g][i] = tb.Intern(fmt.Sprintf("name-%d", i))
			}
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		for i := 0; i < perG; i++ {
			if ids[g][i] != ids[0][i] {
				t.Fatalf("goroutine %d interned name-%d to %d, goroutine 0 got %d", g, i, ids[g][i], ids[0][i])
			}
		}
	}
	if tb.Len() != perG {
		t.Fatalf("Len = %d, want %d", tb.Len(), perG)
	}
}

func TestDefaultTable(t *testing.T) {
	id := Intern("default-table-probe")
	if Name(id) != "default-table-probe" {
		t.Fatalf("default table round trip failed")
	}
	if Default() == nil {
		t.Fatalf("Default() returned nil")
	}
}
