// Package symbol provides an interned symbol table for the uninterpreted
// constants (sort u) of IDLOG's two-sorted universe.
//
// The paper (§2.1) draws u-constants from a countably infinite universal
// domain U; at runtime every distinct constant name is interned once and
// referenced by a dense integer ID, so tuples store fixed-size words and
// comparisons are integer comparisons.
//
// A process-wide default table serves the common case; independent Table
// values can be created for isolation (e.g. fuzzing).
package symbol

import (
	"fmt"
	"sync"
)

// ID is a dense handle for an interned u-constant. The zero ID is reserved
// and never returned by Intern, so a zero Value is detectably invalid.
type ID uint32

// None is the reserved invalid symbol ID.
const None ID = 0

// Table interns strings to dense IDs. It is safe for concurrent use.
type Table struct {
	mu    sync.RWMutex
	ids   map[string]ID
	names []string // names[0] is the reserved empty slot
}

// NewTable returns an empty symbol table.
func NewTable() *Table {
	return &Table{
		ids:   make(map[string]ID),
		names: []string{""},
	}
}

// Intern returns the ID for name, creating it if necessary.
func (t *Table) Intern(name string) ID {
	t.mu.RLock()
	id, ok := t.ids[name]
	t.mu.RUnlock()
	if ok {
		return id
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok := t.ids[name]; ok {
		return id
	}
	id = ID(len(t.names))
	t.names = append(t.names, name)
	t.ids[name] = id
	return id
}

// Lookup returns the ID for name without interning. ok is false if the
// name has never been interned.
func (t *Table) Lookup(name string) (id ID, ok bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	id, ok = t.ids[name]
	return id, ok
}

// Name returns the string for id. Unknown or reserved IDs yield a
// diagnostic placeholder rather than panicking, so printers stay total.
func (t *Table) Name(id ID) string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if id == None || int(id) >= len(t.names) {
		return fmt.Sprintf("<sym:%d>", uint32(id))
	}
	return t.names[id]
}

// Len reports the number of interned symbols (excluding the reserved slot).
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.names) - 1
}

// Fresh interns a name of the form prefix#n that is not yet present and
// returns it. It is used for invented values (DL semantics) and for
// gensym'd predicates in program transformations.
func (t *Table) Fresh(prefix string) (ID, string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for n := len(t.names); ; n++ {
		name := fmt.Sprintf("%s#%d", prefix, n)
		if _, ok := t.ids[name]; ok {
			continue
		}
		id := ID(len(t.names))
		t.names = append(t.names, name)
		t.ids[name] = id
		return id, name
	}
}

var defaultTable = NewTable()

// Default returns the process-wide symbol table.
func Default() *Table { return defaultTable }

// Intern interns name in the default table.
func Intern(name string) ID { return defaultTable.Intern(name) }

// Name resolves id in the default table.
func Name(id ID) string { return defaultTable.Name(id) }
