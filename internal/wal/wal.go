// Package wal is idlogd's append-only write-ahead log for EDB
// mutations. Every acknowledged mutation is appended and fsynced
// BEFORE the in-memory snapshot advances, so a crash loses nothing
// that was acknowledged; on restart the daemon replays the log over
// the last checkpoint snapshot.
//
// Format (integers are uvarint unless noted):
//
//	magic "IDLOGWAL1"
//	per entry:
//	  payloadLen
//	  payload:
//	    sessionLen, session
//	    insertCount, then per fact:
//	      predLen, pred
//	      arity, then per column: tag 'u' (strLen, str) or 'i' (zigzag)
//	    deleteCount, facts as above
//	  crc32 of payload (IEEE, 4 bytes big-endian)
//
// The trailing entry of a crashed process may be torn. Open detects
// that — short length, short payload, or checksum mismatch — and
// truncates the file back to the last intact entry, mirroring the
// corruption discipline of internal/storage: a torn entry is dropped
// whole, never half-applied. Corruption BEFORE the tail (a bad entry
// followed by readable ones) is not recoverable and fails Open.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"idlog/internal/core"
	"idlog/internal/guard"
	"idlog/internal/symbol"
	"idlog/internal/value"
)

const magic = "IDLOGWAL1"

// maxStringLen and maxCount bound decoded lengths as corruption guards.
const (
	maxStringLen = 1 << 20
	maxCount     = 1 << 24
	maxPayload   = 1 << 28
)

// ErrCorruptWAL reports a log that is not a WAL at all, or whose body
// (not tail) is damaged. Every such failure wraps it.
var ErrCorruptWAL = errors.New("corrupt write-ahead log")

func corruptf(format string, args ...any) error {
	return fmt.Errorf("wal: %s: %w", fmt.Sprintf(format, args...), ErrCorruptWAL)
}

// ErrSimulatedCrash is returned by Append when an injected torn-write
// fault fires: part of the record reached the file, the process is
// presumed dead. Crash-recovery tests reopen the log afterwards.
var ErrSimulatedCrash = errors.New("wal: simulated crash during append")

// Record is one durable mutation batch. Session addresses the idlogd
// session the batch applied to ("" for the base session).
type Record struct {
	Session string
	Inserts []core.Fact
	Deletes []core.Fact
}

// Log is an open write-ahead log. Not safe for concurrent use; idlogd
// serializes appends behind its mutation lock.
type Log struct {
	path    string
	f       *os.File
	size    int64
	entries int
	fault   *guard.Guard
}

// Open opens (or creates) the log at path, replays every intact entry,
// truncates a torn tail, and returns the log positioned for appends
// together with the replayed records.
func Open(path string) (*Log, []Record, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	l := &Log{path: path, f: f}
	if st.Size() == 0 {
		if _, err := f.WriteString(magic); err != nil {
			f.Close()
			return nil, nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, err
		}
		l.size = int64(len(magic))
		return l, nil, nil
	}

	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if len(data) < len(magic) || string(data[:len(magic)]) != string(magic) {
		f.Close()
		return nil, nil, corruptf("bad magic (not an IDLOG WAL)")
	}
	var recs []Record
	off := len(magic)
	valid := off
	for off < len(data) {
		rec, next, ok := decodeEntry(data, off)
		if !ok {
			// Torn tail: drop the partial entry and everything after it
			// (a crash can only tear the last write; anything beyond it
			// was never acknowledged).
			break
		}
		recs = append(recs, rec)
		off = next
		valid = next
		l.entries++
	}
	if int64(valid) != st.Size() {
		if err := f.Truncate(int64(valid)); err != nil {
			f.Close()
			return nil, nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	if _, err := f.Seek(int64(valid), io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	l.size = int64(valid)
	return l, recs, nil
}

// decodeEntry parses one entry at off; ok is false when the entry is
// torn or damaged (the caller truncates there).
func decodeEntry(data []byte, off int) (Record, int, bool) {
	plen, n := binary.Uvarint(data[off:])
	if n <= 0 || plen > maxPayload {
		return Record{}, 0, false
	}
	start := off + n
	end := start + int(plen)
	if end+4 > len(data) {
		return Record{}, 0, false
	}
	payload := data[start:end]
	want := binary.BigEndian.Uint32(data[end : end+4])
	if crc32.ChecksumIEEE(payload) != want {
		return Record{}, 0, false
	}
	rec, err := decodePayload(payload)
	if err != nil {
		// The checksum matched but the payload does not parse: that is
		// body corruption (or a format bug), not a torn tail, yet the
		// recovery contract is the same — the entry is dropped whole.
		return Record{}, 0, false
	}
	return rec, end + 4, true
}

type payloadReader struct {
	b   []byte
	off int
}

func (p *payloadReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(p.b[p.off:])
	if n <= 0 {
		return 0, corruptf("truncated varint")
	}
	p.off += n
	return v, nil
}

func (p *payloadReader) varint() (int64, error) {
	v, n := binary.Varint(p.b[p.off:])
	if n <= 0 {
		return 0, corruptf("truncated varint")
	}
	p.off += n
	return v, nil
}

func (p *payloadReader) str() (string, error) {
	n, err := p.uvarint()
	if err != nil {
		return "", err
	}
	if n > maxStringLen || p.off+int(n) > len(p.b) {
		return "", corruptf("implausible string length %d", n)
	}
	s := string(p.b[p.off : p.off+int(n)])
	p.off += int(n)
	return s, nil
}

func (p *payloadReader) byte() (byte, error) {
	if p.off >= len(p.b) {
		return 0, corruptf("truncated payload")
	}
	b := p.b[p.off]
	p.off++
	return b, nil
}

func (p *payloadReader) facts() ([]core.Fact, error) {
	n, err := p.uvarint()
	if err != nil {
		return nil, err
	}
	if n > maxCount {
		return nil, corruptf("implausible fact count %d", n)
	}
	if n == 0 {
		return nil, nil
	}
	facts := make([]core.Fact, 0, n)
	for i := uint64(0); i < n; i++ {
		pred, err := p.str()
		if err != nil {
			return nil, err
		}
		arity, err := p.uvarint()
		if err != nil {
			return nil, err
		}
		if arity > 1<<16 {
			return nil, corruptf("implausible arity %d", arity)
		}
		t := make(value.Tuple, arity)
		for c := uint64(0); c < arity; c++ {
			tag, err := p.byte()
			if err != nil {
				return nil, err
			}
			switch tag {
			case 'i':
				v, err := p.varint()
				if err != nil {
					return nil, err
				}
				t[c] = value.Int(v)
			case 'u':
				s, err := p.str()
				if err != nil {
					return nil, err
				}
				t[c] = value.Str(s)
			default:
				return nil, corruptf("bad value tag %q", tag)
			}
		}
		facts = append(facts, core.Fact{Pred: pred, Tuple: t})
	}
	return facts, nil
}

func decodePayload(b []byte) (Record, error) {
	p := &payloadReader{b: b}
	var rec Record
	var err error
	if rec.Session, err = p.str(); err != nil {
		return rec, err
	}
	if rec.Inserts, err = p.facts(); err != nil {
		return rec, err
	}
	if rec.Deletes, err = p.facts(); err != nil {
		return rec, err
	}
	if p.off != len(b) {
		return rec, corruptf("%d trailing payload bytes", len(b)-p.off)
	}
	return rec, nil
}

func appendUvarint(b []byte, v uint64) []byte {
	var buf [binary.MaxVarintLen64]byte
	return append(b, buf[:binary.PutUvarint(buf[:], v)]...)
}

func appendVarint(b []byte, v int64) []byte {
	var buf [binary.MaxVarintLen64]byte
	return append(b, buf[:binary.PutVarint(buf[:], v)]...)
}

func appendString(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendFacts(b []byte, facts []core.Fact) []byte {
	b = appendUvarint(b, uint64(len(facts)))
	for _, f := range facts {
		b = appendString(b, f.Pred)
		b = appendUvarint(b, uint64(len(f.Tuple)))
		for _, v := range f.Tuple {
			if v.IsInt() {
				b = append(b, 'i')
				b = appendVarint(b, v.Num)
			} else {
				b = append(b, 'u')
				b = appendString(b, symbol.Name(v.Sym))
			}
		}
	}
	return b
}

// InjectFault arms guard-driven fault injection (torn appends) on the
// log. Nil disarms.
func (l *Log) InjectFault(g *guard.Guard) { l.fault = g }

// Append encodes rec, writes it, and fsyncs before returning: when
// Append returns nil the record survives any crash. The caller must
// only acknowledge (and apply) the mutation after Append succeeds.
func (l *Log) Append(rec Record) error {
	payload := appendString(nil, rec.Session)
	payload = appendFacts(payload, rec.Inserts)
	payload = appendFacts(payload, rec.Deletes)
	entry := appendUvarint(nil, uint64(len(payload)))
	entry = append(entry, payload...)
	var sum [4]byte
	binary.BigEndian.PutUint32(sum[:], crc32.ChecksumIEEE(payload))
	entry = append(entry, sum[:]...)

	if l.fault != nil && l.fault.TakeTornWrite() {
		// Simulated crash: persist only a prefix of the entry, as a real
		// crash mid-write would, and report the process dead.
		torn := entry[:len(entry)/2]
		if _, err := l.f.Write(torn); err != nil {
			return err
		}
		if err := l.f.Sync(); err != nil {
			return err
		}
		l.size += int64(len(torn))
		return ErrSimulatedCrash
	}

	if _, err := l.f.Write(entry); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.size += int64(len(entry))
	l.entries++
	return nil
}

// Reset truncates the log to empty (just the magic). Called after a
// checkpoint snapshot has been durably written: the snapshot now covers
// everything the log held.
func (l *Log) Reset() error {
	if err := l.f.Truncate(int64(len(magic))); err != nil {
		return err
	}
	if _, err := l.f.Seek(int64(len(magic)), io.SeekStart); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.size = int64(len(magic))
	l.entries = 0
	return nil
}

// Size returns the current file size in bytes.
func (l *Log) Size() int64 { return l.size }

// Entries returns the number of intact entries appended or replayed
// since open (or the last Reset).
func (l *Log) Entries() int { return l.entries }

// Path returns the log's file path.
func (l *Log) Path() string { return l.path }

// Close closes the underlying file.
func (l *Log) Close() error { return l.f.Close() }
