// Package wal is idlogd's append-only write-ahead log for EDB
// mutations. Every acknowledged mutation is appended and fsynced
// BEFORE the in-memory snapshot advances, so a crash loses nothing
// that was acknowledged; on restart the daemon replays the log over
// the last checkpoint snapshot. Entries carry log sequence numbers
// (LSNs) that order every mutation globally, which is what hot-standby
// replication ships to followers (see stream.go for the wire framing).
//
// Format v2 (integers are uvarint unless noted):
//
//	magic "IDLOGWAL2"
//	baseLSN (LSN as of the checkpoint snapshot the log sits on; 0 on a
//	         fresh log)
//	per entry:
//	  payloadLen
//	  payload:
//	    lsn (strictly increasing, first > baseLSN)
//	    sessionLen, session
//	    insertCount, then per fact:
//	      predLen, pred
//	      arity, then per column: tag 'u' (strLen, str) or 'i' (zigzag)
//	    deleteCount, facts as above
//	  crc32 of payload (IEEE, 4 bytes big-endian)
//
// v1 logs ("IDLOGWAL1", no LSNs) are migrated in place on Open:
// entries are assigned LSNs 1..n and the file is atomically rewritten
// in v2 format.
//
// The trailing entry of a crashed process may be torn. Open detects
// that — short length, short payload, or checksum mismatch — and
// truncates the file back to the last intact entry, mirroring the
// corruption discipline of internal/storage: a torn entry is dropped
// whole, never half-applied. Corruption BEFORE the tail (a bad entry
// followed by readable ones) is not recoverable and fails Open.
//
// Error discipline: the first append that fails — a short write, a
// failed fsync, or an injected ENOSPC/EIO fault — POISONS the log.
// The entry was never acknowledged, the tail of the file is in an
// unknown state (fsync failure means the kernel may have dropped the
// page and cleared the error), so no further appends are accepted
// until the process restarts and Open re-establishes the durable
// prefix. Callers surface this as read-only degraded mode.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"

	"idlog/internal/core"
	"idlog/internal/fault"
	"idlog/internal/guard"
	"idlog/internal/symbol"
	"idlog/internal/value"
)

const (
	magicV1 = "IDLOGWAL1"
	magicV2 = "IDLOGWAL2"
)

// maxStringLen and maxCount bound decoded lengths as corruption guards.
const (
	maxStringLen = 1 << 20
	maxCount     = 1 << 24
	maxPayload   = 1 << 28
)

// ErrCorruptWAL reports a log that is not a WAL at all, or whose body
// (not tail) is damaged. Every such failure wraps it.
var ErrCorruptWAL = errors.New("corrupt write-ahead log")

func corruptf(format string, args ...any) error {
	return fmt.Errorf("wal: %s: %w", fmt.Sprintf(format, args...), ErrCorruptWAL)
}

// ErrSimulatedCrash is returned by Append when an injected torn-write
// fault fires: part of the record reached the file, the process is
// presumed dead. Crash-recovery tests reopen the log afterwards.
var ErrSimulatedCrash = errors.New("wal: simulated crash during append")

// ErrPoisoned is returned by Append after any earlier append failed:
// the durable tail is in an unknown state and only a restart (Open)
// re-establishes it. The first failure's cause is wrapped alongside.
var ErrPoisoned = errors.New("wal: log poisoned by an earlier append failure")

// Record is one durable mutation batch. Session addresses the idlogd
// session the batch applied to ("" for the base session). LSN is the
// global mutation sequence number: assigned by Append on the primary,
// carried through replication, preserved by a follower's own log.
type Record struct {
	LSN     uint64
	Session string
	Inserts []core.Fact
	Deletes []core.Fact
}

// Log is an open write-ahead log. Safe for concurrent use: appends on
// behalf of different idlogd sessions may race, and the internal lock
// makes the (LSN assignment, file append) pair atomic so LSN order
// always equals file order.
type Log struct {
	mu       sync.Mutex
	path     string
	f        *os.File
	size     int64
	header   int64 // size of the magic+baseLSN header
	entries  int
	baseLSN  uint64 // LSN covered by the snapshot under this log
	nextLSN  uint64
	poisoned error // first append failure; sticky until reopen
	fault    *guard.Guard
	faults   *fault.Registry
}

// Open opens (or creates) the log at path, replays every intact entry,
// truncates a torn tail, and returns the log positioned for appends
// together with the replayed records (LSNs populated). v1 logs are
// migrated to v2 in place.
func Open(path string) (*Log, []Record, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	l := &Log{path: path, f: f, nextLSN: 1}
	if st.Size() == 0 {
		hdr := appendHeader(nil, 0)
		if _, err := f.Write(hdr); err != nil {
			f.Close()
			return nil, nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, err
		}
		l.size = int64(len(hdr))
		l.header = l.size
		return l, nil, nil
	}

	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if len(data) >= len(magicV1) && string(data[:len(magicV1)]) == magicV1 {
		// v1 log: decode without LSNs, then migrate the file to v2.
		recs, _ := scanEntries(data, len(magicV1), 1, 0)
		for i := range recs {
			recs[i].LSN = uint64(i + 1)
		}
		f.Close()
		l.f = nil
		if err := l.resetWithLocked(0, recs); err != nil {
			return nil, nil, fmt.Errorf("wal: migrate v1 log: %w", err)
		}
		return l, recs, nil
	}
	if len(data) < len(magicV2) || string(data[:len(magicV2)]) != magicV2 {
		f.Close()
		return nil, nil, corruptf("bad magic (not an IDLOG WAL)")
	}
	base, n := binary.Uvarint(data[len(magicV2):])
	if n <= 0 {
		f.Close()
		return nil, nil, corruptf("truncated header")
	}
	l.header = int64(len(magicV2) + n)
	l.baseLSN = base
	l.nextLSN = base + 1

	recs, valid := scanEntries(data, int(l.header), 2, base)
	if len(recs) > 0 {
		l.nextLSN = recs[len(recs)-1].LSN + 1
	}
	l.entries = len(recs)
	if int64(valid) != st.Size() {
		if err := f.Truncate(int64(valid)); err != nil {
			f.Close()
			return nil, nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	if _, err := f.Seek(int64(valid), io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	l.size = int64(valid)
	return l, recs, nil
}

// scanEntries decodes entries from off until the data ends or an entry
// fails to decode (torn tail). version selects the payload layout;
// prevLSN seeds the monotonicity check for v2.
func scanEntries(data []byte, off, version int, prevLSN uint64) (recs []Record, valid int) {
	valid = off
	for off < len(data) {
		rec, next, ok := decodeEntry(data, off, version)
		if !ok {
			break
		}
		if version == 2 && rec.LSN <= prevLSN {
			// An LSN regression behind a valid checksum is a format
			// violation; recovery drops the entry (and its successors)
			// whole, like any other undecodable tail.
			break
		}
		prevLSN = rec.LSN
		recs = append(recs, rec)
		off = next
		valid = next
	}
	return recs, valid
}

// decodeEntry parses one entry at off; ok is false when the entry is
// torn or damaged (the caller truncates there).
func decodeEntry(data []byte, off, version int) (Record, int, bool) {
	plen, n := binary.Uvarint(data[off:])
	if n <= 0 || plen > maxPayload {
		return Record{}, 0, false
	}
	start := off + n
	end := start + int(plen)
	if end+4 > len(data) {
		return Record{}, 0, false
	}
	payload := data[start:end]
	want := binary.BigEndian.Uint32(data[end : end+4])
	if crc32.ChecksumIEEE(payload) != want {
		return Record{}, 0, false
	}
	rec, err := decodePayload(payload, version)
	if err != nil {
		// The checksum matched but the payload does not parse: that is
		// body corruption (or a format bug), not a torn tail, yet the
		// recovery contract is the same — the entry is dropped whole.
		return Record{}, 0, false
	}
	return rec, end + 4, true
}

type payloadReader struct {
	b   []byte
	off int
}

func (p *payloadReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(p.b[p.off:])
	if n <= 0 {
		return 0, corruptf("truncated varint")
	}
	p.off += n
	return v, nil
}

func (p *payloadReader) varint() (int64, error) {
	v, n := binary.Varint(p.b[p.off:])
	if n <= 0 {
		return 0, corruptf("truncated varint")
	}
	p.off += n
	return v, nil
}

func (p *payloadReader) str() (string, error) {
	n, err := p.uvarint()
	if err != nil {
		return "", err
	}
	if n > maxStringLen || p.off+int(n) > len(p.b) {
		return "", corruptf("implausible string length %d", n)
	}
	s := string(p.b[p.off : p.off+int(n)])
	p.off += int(n)
	return s, nil
}

func (p *payloadReader) byte() (byte, error) {
	if p.off >= len(p.b) {
		return 0, corruptf("truncated payload")
	}
	b := p.b[p.off]
	p.off++
	return b, nil
}

func (p *payloadReader) facts() ([]core.Fact, error) {
	n, err := p.uvarint()
	if err != nil {
		return nil, err
	}
	if n > maxCount {
		return nil, corruptf("implausible fact count %d", n)
	}
	if n == 0 {
		return nil, nil
	}
	facts := make([]core.Fact, 0, n)
	for i := uint64(0); i < n; i++ {
		pred, err := p.str()
		if err != nil {
			return nil, err
		}
		arity, err := p.uvarint()
		if err != nil {
			return nil, err
		}
		if arity > 1<<16 {
			return nil, corruptf("implausible arity %d", arity)
		}
		t := make(value.Tuple, arity)
		for c := uint64(0); c < arity; c++ {
			tag, err := p.byte()
			if err != nil {
				return nil, err
			}
			switch tag {
			case 'i':
				v, err := p.varint()
				if err != nil {
					return nil, err
				}
				t[c] = value.Int(v)
			case 'u':
				s, err := p.str()
				if err != nil {
					return nil, err
				}
				t[c] = value.Str(s)
			default:
				return nil, corruptf("bad value tag %q", tag)
			}
		}
		facts = append(facts, core.Fact{Pred: pred, Tuple: t})
	}
	return facts, nil
}

func decodePayload(b []byte, version int) (Record, error) {
	p := &payloadReader{b: b}
	var rec Record
	var err error
	if version >= 2 {
		if rec.LSN, err = p.uvarint(); err != nil {
			return rec, err
		}
	}
	if rec.Session, err = p.str(); err != nil {
		return rec, err
	}
	if rec.Inserts, err = p.facts(); err != nil {
		return rec, err
	}
	if rec.Deletes, err = p.facts(); err != nil {
		return rec, err
	}
	if p.off != len(b) {
		return rec, corruptf("%d trailing payload bytes", len(b)-p.off)
	}
	return rec, nil
}

func appendUvarint(b []byte, v uint64) []byte {
	var buf [binary.MaxVarintLen64]byte
	return append(b, buf[:binary.PutUvarint(buf[:], v)]...)
}

func appendVarint(b []byte, v int64) []byte {
	var buf [binary.MaxVarintLen64]byte
	return append(b, buf[:binary.PutVarint(buf[:], v)]...)
}

func appendString(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendFacts(b []byte, facts []core.Fact) []byte {
	b = appendUvarint(b, uint64(len(facts)))
	for _, f := range facts {
		b = appendString(b, f.Pred)
		b = appendUvarint(b, uint64(len(f.Tuple)))
		for _, v := range f.Tuple {
			if v.IsInt() {
				b = append(b, 'i')
				b = appendVarint(b, v.Num)
			} else {
				b = append(b, 'u')
				b = appendString(b, symbol.Name(v.Sym))
			}
		}
	}
	return b
}

// appendHeader renders the v2 file header.
func appendHeader(b []byte, baseLSN uint64) []byte {
	b = append(b, magicV2...)
	return appendUvarint(b, baseLSN)
}

// EncodeEntry renders rec (including rec.LSN) as one v2 log entry —
// length, payload, checksum. The same bytes frame replication stream
// entries, so a follower decodes the stream with the code that decodes
// its own log.
func EncodeEntry(rec Record) []byte {
	payload := appendUvarint(nil, rec.LSN)
	payload = appendString(payload, rec.Session)
	payload = appendFacts(payload, rec.Inserts)
	payload = appendFacts(payload, rec.Deletes)
	entry := appendUvarint(nil, uint64(len(payload)))
	entry = append(entry, payload...)
	var sum [4]byte
	binary.BigEndian.PutUint32(sum[:], crc32.ChecksumIEEE(payload))
	return append(entry, sum[:]...)
}

// InjectFault arms guard-driven fault injection (torn appends) on the
// log. Nil disarms.
func (l *Log) InjectFault(g *guard.Guard) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.fault = g
}

// SetFaults arms registry-driven fault injection (write and fsync
// failures at the fault.WALAppend* points). Nil disarms.
func (l *Log) SetFaults(r *fault.Registry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.faults = r
}

// Append assigns rec the next LSN (or honors a pre-assigned rec.LSN —
// the follower path, which preserves the primary's numbering), encodes
// it, writes it, and fsyncs before returning: when Append returns a
// nil error the record survives any crash. The caller must only
// acknowledge (and apply) the mutation after Append succeeds. Any
// failure poisons the log — see ErrPoisoned.
func (l *Log) Append(rec Record) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.poisoned != nil {
		return 0, fmt.Errorf("%w (first failure: %v)", ErrPoisoned, l.poisoned)
	}
	if rec.LSN == 0 {
		rec.LSN = l.nextLSN
	} else if rec.LSN < l.nextLSN {
		return 0, fmt.Errorf("wal: append LSN %d behind log position %d", rec.LSN, l.nextLSN)
	}
	entry := EncodeEntry(rec)

	if err := l.faults.Hit(fault.WALAppendWrite); err != nil {
		// Injected ENOSPC/EIO mid-write: a prefix reaches the file, the
		// write call errors, the log is poisoned.
		torn := entry[:len(entry)/2]
		if _, werr := l.f.Write(torn); werr == nil {
			_ = l.f.Sync()
			l.size += int64(len(torn))
		}
		l.poisoned = err
		return 0, err
	}

	if l.fault != nil && l.fault.TakeTornWrite() {
		// Simulated crash: persist only a prefix of the entry, as a real
		// crash mid-write would, and report the process dead.
		torn := entry[:len(entry)/2]
		if _, err := l.f.Write(torn); err != nil {
			l.poisoned = err
			return 0, err
		}
		if err := l.f.Sync(); err != nil {
			l.poisoned = err
			return 0, err
		}
		l.size += int64(len(torn))
		l.poisoned = ErrSimulatedCrash
		return 0, ErrSimulatedCrash
	}

	if _, err := l.f.Write(entry); err != nil {
		l.poisoned = err
		return 0, err
	}
	if err := l.faults.Hit(fault.WALAppendSync); err != nil {
		// Injected fsync failure: the bytes may or may not be durable —
		// exactly the ambiguity real fsync errors leave — so the entry
		// is not acknowledged and the log is poisoned. If the bytes did
		// survive, restart replays an unacknowledged mutation, which the
		// durability contract permits (acked entries always survive;
		// unacked ones may).
		l.size += int64(len(entry))
		l.poisoned = err
		return 0, err
	}
	if err := l.f.Sync(); err != nil {
		l.poisoned = err
		return 0, err
	}
	l.size += int64(len(entry))
	l.entries++
	l.nextLSN = rec.LSN + 1
	return rec.LSN, nil
}

// Reset truncates the log to empty entries while advancing the base
// LSN to cover everything the log held: equivalent to
// ResetWith(LastLSN(), nil). Retained for callers that checkpoint
// without consolidation entries.
func (l *Log) Reset() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.resetWithLocked(l.nextLSN-1, nil)
}

// ResetWith atomically replaces the log with a fresh one sitting on a
// checkpoint at baseLSN, pre-populated with recs (assigned LSNs
// baseLSN+1..baseLSN+len(recs), returned with those LSNs set). The
// replacement is write-to-temp + fsync + rename + directory fsync, so
// a crash at ANY point leaves either the old complete log or the new
// complete log — never a truncated-but-unconsolidated state (the
// failure mode of truncate-then-append checkpointing, which could lose
// acknowledged session facts).
func (l *Log) ResetWith(baseLSN uint64, recs []Record) ([]Record, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Record, len(recs))
	copy(out, recs)
	for i := range out {
		out[i].LSN = baseLSN + uint64(i) + 1
	}
	if err := l.resetWithLocked(baseLSN, out); err != nil {
		return nil, err
	}
	return out, nil
}

// resetWithLocked rewrites the log file; recs must carry their LSNs.
// Callers hold l.mu (or own the log exclusively during Open
// migration).
func (l *Log) resetWithLocked(baseLSN uint64, recs []Record) error {
	data := appendHeader(nil, baseLSN)
	header := int64(len(data))
	for _, rec := range recs {
		data = append(data, EncodeEntry(rec)...)
	}
	tmp := l.path + ".tmp"
	tf, err := os.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := tf.Write(data); err != nil {
		tf.Close()
		os.Remove(tmp)
		return err
	}
	if err := tf.Sync(); err != nil {
		tf.Close()
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, l.path); err != nil {
		tf.Close()
		os.Remove(tmp)
		return err
	}
	// Fsync the directory so the rename itself is durable.
	if d, err := os.Open(filepath.Dir(l.path)); err == nil {
		_ = d.Sync()
		d.Close()
	}
	if l.f != nil {
		_ = l.f.Close()
	}
	l.f = tf
	if _, err := tf.Seek(int64(len(data)), io.SeekStart); err != nil {
		return err
	}
	l.size = int64(len(data))
	l.header = header
	l.entries = len(recs)
	l.baseLSN = baseLSN
	if len(recs) > 0 {
		l.nextLSN = recs[len(recs)-1].LSN + 1
	} else {
		l.nextLSN = baseLSN + 1
	}
	l.poisoned = nil
	return nil
}

// Size returns the current file size in bytes.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// HeaderSize returns the size of the file header (an empty log's
// Size).
func (l *Log) HeaderSize() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.header
}

// Entries returns the number of intact entries appended or replayed
// since open (or the last Reset/ResetWith).
func (l *Log) Entries() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.entries
}

// BaseLSN returns the LSN covered by the checkpoint snapshot this log
// sits on (0 for a never-checkpointed log).
func (l *Log) BaseLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.baseLSN
}

// LastLSN returns the LSN of the last durable entry (or the base LSN
// when the log is empty of entries).
func (l *Log) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN - 1
}

// Poisoned reports the first append failure, or nil while the log is
// healthy.
func (l *Log) Poisoned() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.poisoned
}

// Path returns the log's file path.
func (l *Log) Path() string { return l.path }

// Close closes the underlying file.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.f.Close()
}
