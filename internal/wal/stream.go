package wal

// Replication stream framing. A primary ships its log to followers as
// a byte stream of typed frames; entry frames reuse the exact on-disk
// entry encoding (length, payload-with-LSN, CRC-32), so the stream
// inherits the log's integrity checking — a frame torn by a dying
// connection fails its checksum or length read and surfaces as
// ErrTornStream, never as a half-applied mutation.
//
//	'E' <entry bytes>      one replicated mutation (EncodeEntry)
//	'H' <uvarint lastLSN>  heartbeat: primary is alive at lastLSN
//	'S' <uvarint lastLSN>  end of stream: primary is shutting down
//	                       cleanly; resume later from your applied LSN
//	'R' <uvarint startLSN> resync: the primary no longer has the
//	                       follower's position (log truncated by a
//	                       checkpoint); take a snapshot and re-stream

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Frame types.
const (
	FrameEntry     byte = 'E'
	FrameHeartbeat byte = 'H'
	FrameEOS       byte = 'S'
	FrameResync    byte = 'R'
)

// ErrTornStream reports a replication stream that died mid-frame: a
// short read or a checksum mismatch. The follower drops the partial
// frame whole and reconnects from its last applied LSN.
var ErrTornStream = errors.New("wal: torn replication stream")

// AppendEntryFrame appends an 'E' frame carrying rec (rec.LSN
// included) to b.
func AppendEntryFrame(b []byte, rec Record) []byte {
	b = append(b, FrameEntry)
	return append(b, EncodeEntry(rec)...)
}

// AppendControlFrame appends an 'H'/'S'/'R' frame carrying lsn to b.
func AppendControlFrame(b []byte, typ byte, lsn uint64) []byte {
	b = append(b, typ)
	return appendUvarint(b, lsn)
}

// Frame is one decoded stream frame. Entry frames carry Rec (with
// Rec.LSN set and mirrored in LSN); control frames carry only LSN.
type Frame struct {
	Type byte
	LSN  uint64
	Rec  Record
}

// StreamReader decodes frames from a replication stream.
type StreamReader struct {
	br *bufio.Reader
}

// NewStreamReader wraps r for frame decoding.
func NewStreamReader(r io.Reader) *StreamReader {
	return &StreamReader{br: bufio.NewReader(r)}
}

// Next reads one frame. io.EOF means the stream closed cleanly BETWEEN
// frames; a stream dying inside a frame returns ErrTornStream.
func (s *StreamReader) Next() (Frame, error) {
	typ, err := s.br.ReadByte()
	if err != nil {
		if err == io.EOF {
			return Frame{}, io.EOF
		}
		return Frame{}, fmt.Errorf("%w: %v", ErrTornStream, err)
	}
	switch typ {
	case FrameHeartbeat, FrameEOS, FrameResync:
		lsn, err := binary.ReadUvarint(s.br)
		if err != nil {
			return Frame{}, fmt.Errorf("%w: truncated control frame: %v", ErrTornStream, err)
		}
		return Frame{Type: typ, LSN: lsn}, nil
	case FrameEntry:
		plen, err := binary.ReadUvarint(s.br)
		if err != nil {
			return Frame{}, fmt.Errorf("%w: truncated entry length: %v", ErrTornStream, err)
		}
		if plen > maxPayload {
			return Frame{}, fmt.Errorf("%w: implausible entry length %d", ErrTornStream, plen)
		}
		buf := make([]byte, int(plen)+4)
		if _, err := io.ReadFull(s.br, buf); err != nil {
			return Frame{}, fmt.Errorf("%w: truncated entry: %v", ErrTornStream, err)
		}
		payload := buf[:plen]
		want := binary.BigEndian.Uint32(buf[plen:])
		if crc32.ChecksumIEEE(payload) != want {
			return Frame{}, fmt.Errorf("%w: entry checksum mismatch", ErrTornStream)
		}
		rec, err := decodePayload(payload, 2)
		if err != nil {
			return Frame{}, fmt.Errorf("%w: %v", ErrTornStream, err)
		}
		return Frame{Type: FrameEntry, LSN: rec.LSN, Rec: rec}, nil
	default:
		return Frame{}, fmt.Errorf("%w: unknown frame type %q", ErrTornStream, typ)
	}
}
