package wal

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"idlog/internal/core"
	"idlog/internal/guard"
	"idlog/internal/value"
)

func testRecords() []Record {
	return []Record{
		{Session: "", Inserts: []core.Fact{
			{Pred: "e", Tuple: value.Strs("a", "b")},
			{Pred: "n", Tuple: value.Tuple{value.Int(7)}},
		}},
		{Session: "s1", Deletes: []core.Fact{
			{Pred: "e", Tuple: value.Strs("a", "b")},
		}},
		{Session: "s2", Inserts: []core.Fact{
			{Pred: "mixed", Tuple: value.Tuple{value.Str("x"), value.Int(-42), value.Str("")}},
		}, Deletes: []core.Fact{
			{Pred: "empty", Tuple: value.Tuple{}},
		}},
	}
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.wal")
	l, recs, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh log replayed %d records", len(recs))
	}
	want := testRecords()
	for _, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if l.Entries() != len(want) {
		t.Fatalf("entries = %d, want %d", l.Entries(), len(want))
	}
	l.Close()

	l2, got, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replay mismatch:\ngot  %+v\nwant %+v", got, want)
	}
	// Appends continue after a replayed open.
	extra := Record{Session: "s3", Inserts: []core.Fact{{Pred: "p", Tuple: value.Strs("z")}}}
	if err := l2.Append(extra); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	_, got, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want)+1 || !reflect.DeepEqual(got[len(got)-1], extra) {
		t.Fatalf("post-replay append lost: %+v", got)
	}
}

// TestTornTailSweep truncates a valid log at EVERY byte offset inside
// its final entry and checks recovery: the intact prefix replays, the
// torn entry is dropped whole, and the file is truncated back so new
// appends start clean.
func TestTornTailSweep(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "full.wal")
	l, _, err := Open(base)
	if err != nil {
		t.Fatal(err)
	}
	want := testRecords()
	var sizes []int64
	for _, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, l.Size())
	}
	l.Close()
	full, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}

	lastStart := sizes[len(sizes)-2]
	for cut := lastStart; cut < int64(len(full)); cut++ {
		path := filepath.Join(dir, "torn.wal")
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l, got, err := Open(path)
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		if !reflect.DeepEqual(got, want[:len(want)-1]) {
			t.Fatalf("cut at %d: replayed %d records, want the %d intact ones", cut, len(got), len(want)-1)
		}
		if l.Size() != lastStart {
			t.Fatalf("cut at %d: size %d after recovery, want truncation to %d", cut, l.Size(), lastStart)
		}
		// The recovered log accepts appends and round-trips them.
		extra := Record{Inserts: []core.Fact{{Pred: "q", Tuple: value.Strs("k")}}}
		if err := l.Append(extra); err != nil {
			t.Fatalf("cut at %d: append after recovery: %v", cut, err)
		}
		l.Close()
		_, got, err = Open(path)
		if err != nil {
			t.Fatalf("cut at %d: reopen: %v", cut, err)
		}
		if len(got) != len(want) || !reflect.DeepEqual(got[len(got)-1], extra) {
			t.Fatalf("cut at %d: post-recovery append did not survive", cut)
		}
	}
}

// TestCorruptBody flips a byte in the FIRST entry: that is body
// corruption, and replay must stop there rather than resynchronize on
// later garbage. (Recovery keeps the intact prefix, which is empty.)
func TestCorruptBody(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.wal")
	l, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range testRecords() {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	data, _ := os.ReadFile(path)
	data[len(magic)+3] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l, recs, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if len(recs) != 0 {
		t.Fatalf("replayed %d records past a corrupt first entry", len(recs))
	}
}

func TestBadMagic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.wal")
	if err := os.WriteFile(path, []byte("NOTAWALFILE"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(path); !errors.Is(err, ErrCorruptWAL) {
		t.Fatalf("err = %v, want ErrCorruptWAL", err)
	}
}

// TestTornWriteFault drives the guard fault-injection hook: the torn
// append reports a simulated crash, and recovery after "restart" keeps
// exactly the acknowledged prefix.
func TestTornWriteFault(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.wal")
	l, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	g := guard.New(nil, guard.Limits{})
	g.Inject(guard.TornWrite(3))
	l.InjectFault(g)
	recs := testRecords()
	if err := l.Append(recs[0]); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(recs[1]); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(recs[2]); !errors.Is(err, ErrSimulatedCrash) {
		t.Fatalf("third append: err = %v, want ErrSimulatedCrash", err)
	}
	l.Close()

	_, got, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, recs[:2]) {
		t.Fatalf("after crash recovery: %+v, want the two acknowledged records", got)
	}
}

func TestReset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.wal")
	l, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range testRecords() {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Reset(); err != nil {
		t.Fatal(err)
	}
	if l.Entries() != 0 || l.Size() != int64(len(magic)) {
		t.Fatalf("after reset: entries=%d size=%d", l.Entries(), l.Size())
	}
	extra := Record{Inserts: []core.Fact{{Pred: "p", Tuple: value.Strs("a")}}}
	if err := l.Append(extra); err != nil {
		t.Fatal(err)
	}
	l.Close()
	_, got, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !reflect.DeepEqual(got[0], extra) {
		t.Fatalf("after reset+append: %+v", got)
	}
}
