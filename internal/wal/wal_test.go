package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"idlog/internal/core"
	"idlog/internal/fault"
	"idlog/internal/guard"
	"idlog/internal/value"
)

func testRecords() []Record {
	return []Record{
		{Session: "", Inserts: []core.Fact{
			{Pred: "e", Tuple: value.Strs("a", "b")},
			{Pred: "n", Tuple: value.Tuple{value.Int(7)}},
		}},
		{Session: "s1", Deletes: []core.Fact{
			{Pred: "e", Tuple: value.Strs("a", "b")},
		}},
		{Session: "s2", Inserts: []core.Fact{
			{Pred: "mixed", Tuple: value.Tuple{value.Str("x"), value.Int(-42), value.Str("")}},
		}, Deletes: []core.Fact{
			{Pred: "empty", Tuple: value.Tuple{}},
		}},
	}
}

// withLSNs returns recs with LSNs assigned from first upward, as Append
// does.
func withLSNs(recs []Record, first uint64) []Record {
	out := make([]Record, len(recs))
	copy(out, recs)
	for i := range out {
		out[i].LSN = first + uint64(i)
	}
	return out
}

func mustAppend(t *testing.T, l *Log, recs ...Record) []uint64 {
	t.Helper()
	lsns := make([]uint64, len(recs))
	for i, r := range recs {
		lsn, err := l.Append(r)
		if err != nil {
			t.Fatal(err)
		}
		lsns[i] = lsn
	}
	return lsns
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.wal")
	l, recs, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh log replayed %d records", len(recs))
	}
	want := testRecords()
	lsns := mustAppend(t, l, want...)
	for i, lsn := range lsns {
		if lsn != uint64(i+1) {
			t.Fatalf("lsns = %v, want 1..%d", lsns, len(want))
		}
	}
	if l.Entries() != len(want) {
		t.Fatalf("entries = %d, want %d", l.Entries(), len(want))
	}
	if l.LastLSN() != uint64(len(want)) {
		t.Fatalf("last lsn = %d, want %d", l.LastLSN(), len(want))
	}
	l.Close()

	l2, got, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if !reflect.DeepEqual(got, withLSNs(want, 1)) {
		t.Fatalf("replay mismatch:\ngot  %+v\nwant %+v", got, withLSNs(want, 1))
	}
	// Appends continue after a replayed open, and LSNs keep counting.
	extra := Record{Session: "s3", Inserts: []core.Fact{{Pred: "p", Tuple: value.Strs("z")}}}
	lsn, err := l2.Append(extra)
	if err != nil {
		t.Fatal(err)
	}
	if lsn != uint64(len(want)+1) {
		t.Fatalf("post-replay lsn = %d, want %d", lsn, len(want)+1)
	}
	l2.Close()
	_, got, err = Open(path)
	if err != nil {
		t.Fatal(err)
	}
	extra.LSN = lsn
	if len(got) != len(want)+1 || !reflect.DeepEqual(got[len(got)-1], extra) {
		t.Fatalf("post-replay append lost: %+v", got)
	}
}

// TestTornTailSweep truncates a valid log at EVERY byte offset inside
// its final entry and checks recovery: the intact prefix replays, the
// torn entry is dropped whole, and the file is truncated back so new
// appends start clean.
func TestTornTailSweep(t *testing.T) {
	dir := t.TempDir()
	base := filepath.Join(dir, "full.wal")
	l, _, err := Open(base)
	if err != nil {
		t.Fatal(err)
	}
	want := testRecords()
	var sizes []int64
	for _, r := range want {
		mustAppend(t, l, r)
		sizes = append(sizes, l.Size())
	}
	l.Close()
	full, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}

	lastStart := sizes[len(sizes)-2]
	for cut := lastStart; cut < int64(len(full)); cut++ {
		path := filepath.Join(dir, "torn.wal")
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l, got, err := Open(path)
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		if !reflect.DeepEqual(got, withLSNs(want[:len(want)-1], 1)) {
			t.Fatalf("cut at %d: replayed %d records, want the %d intact ones", cut, len(got), len(want)-1)
		}
		if l.Size() != lastStart {
			t.Fatalf("cut at %d: size %d after recovery, want truncation to %d", cut, l.Size(), lastStart)
		}
		// The recovered log accepts appends and round-trips them; the
		// torn entry's LSN is reused because it was never acknowledged.
		extra := Record{Inserts: []core.Fact{{Pred: "q", Tuple: value.Strs("k")}}}
		lsn, err := l.Append(extra)
		if err != nil {
			t.Fatalf("cut at %d: append after recovery: %v", cut, err)
		}
		if lsn != uint64(len(want)) {
			t.Fatalf("cut at %d: recovered lsn = %d, want %d", cut, lsn, len(want))
		}
		l.Close()
		_, got, err = Open(path)
		if err != nil {
			t.Fatalf("cut at %d: reopen: %v", cut, err)
		}
		extra.LSN = lsn
		if len(got) != len(want) || !reflect.DeepEqual(got[len(got)-1], extra) {
			t.Fatalf("cut at %d: post-recovery append did not survive", cut)
		}
	}
}

// TestCorruptBody flips a byte in the FIRST entry: that is body
// corruption, and replay must stop there rather than resynchronize on
// later garbage. (Recovery keeps the intact prefix, which is empty.)
func TestCorruptBody(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.wal")
	l, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	header := l.HeaderSize()
	for _, r := range testRecords() {
		mustAppend(t, l, r)
	}
	l.Close()
	data, _ := os.ReadFile(path)
	data[header+3] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l, recs, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if len(recs) != 0 {
		t.Fatalf("replayed %d records past a corrupt first entry", len(recs))
	}
}

func TestBadMagic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.wal")
	if err := os.WriteFile(path, []byte("NOTAWALFILE"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(path); !errors.Is(err, ErrCorruptWAL) {
		t.Fatalf("err = %v, want ErrCorruptWAL", err)
	}
}

// TestV1Migration writes a v1-format log by hand and checks Open
// migrates it: records replay with assigned LSNs, the file is
// rewritten as v2, and appends continue the sequence.
func TestV1Migration(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.wal")
	want := testRecords()
	var data []byte
	data = append(data, magicV1...)
	for _, rec := range want {
		// v1 entry: payload without LSN.
		payload := appendString(nil, rec.Session)
		payload = appendFacts(payload, rec.Inserts)
		payload = appendFacts(payload, rec.Deletes)
		entry := appendUvarint(nil, uint64(len(payload)))
		entry = append(entry, payload...)
		var sum [4]byte
		binary.BigEndian.PutUint32(sum[:], crc32.ChecksumIEEE(payload))
		data = append(data, append(entry, sum[:]...)...)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l, got, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, withLSNs(want, 1)) {
		t.Fatalf("migrated replay mismatch:\ngot  %+v\nwant %+v", got, withLSNs(want, 1))
	}
	extra := Record{Inserts: []core.Fact{{Pred: "p", Tuple: value.Strs("a")}}}
	lsn, err := l.Append(extra)
	if err != nil {
		t.Fatal(err)
	}
	if lsn != uint64(len(want)+1) {
		t.Fatalf("post-migration lsn = %d, want %d", lsn, len(want)+1)
	}
	l.Close()
	// The file on disk is now v2.
	head := make([]byte, len(magicV2))
	f, _ := os.Open(path)
	_, _ = io.ReadFull(f, head)
	f.Close()
	if string(head) != magicV2 {
		t.Fatalf("migrated file magic %q, want %q", head, magicV2)
	}
}

// TestTornWriteFault drives the guard fault-injection hook: the torn
// append reports a simulated crash, and recovery after "restart" keeps
// exactly the acknowledged prefix.
func TestTornWriteFault(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.wal")
	l, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	g := guard.New(nil, guard.Limits{})
	g.Inject(guard.TornWrite(3))
	l.InjectFault(g)
	recs := testRecords()
	mustAppend(t, l, recs[0], recs[1])
	if _, err := l.Append(recs[2]); !errors.Is(err, ErrSimulatedCrash) {
		t.Fatalf("third append: err = %v, want ErrSimulatedCrash", err)
	}
	// The crash poisons the log: no further appends until reopen.
	if _, err := l.Append(recs[0]); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("append after crash: err = %v, want ErrPoisoned", err)
	}
	l.Close()

	_, got, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, withLSNs(recs[:2], 1)) {
		t.Fatalf("after crash recovery: %+v, want the two acknowledged records", got)
	}
}

// TestAppendFaultPoisonsLog covers the injected write- and fsync-error
// paths: the failing append never acknowledges, the log refuses
// further appends (ErrPoisoned), and reopening recovers at least the
// acknowledged prefix.
func TestAppendFaultPoisonsLog(t *testing.T) {
	for _, point := range []string{fault.WALAppendWrite, fault.WALAppendSync} {
		t.Run(point, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "w.wal")
			l, _, err := Open(path)
			if err != nil {
				t.Fatal(err)
			}
			faults := fault.New()
			l.SetFaults(faults)
			recs := testRecords()
			mustAppend(t, l, recs[0])
			faults.Arm(point, fault.Fault{Err: errors.New("no space left on device")})
			if _, err := l.Append(recs[1]); err == nil {
				t.Fatal("faulted append succeeded")
			}
			if l.Poisoned() == nil {
				t.Fatal("log not poisoned after append failure")
			}
			faults.DisarmAll()
			if _, err := l.Append(recs[2]); !errors.Is(err, ErrPoisoned) {
				t.Fatalf("append on poisoned log: err = %v, want ErrPoisoned", err)
			}
			l.Close()

			_, got, err := Open(path)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) < 1 || !reflect.DeepEqual(got[0], withLSNs(recs[:1], 1)[0]) {
				t.Fatalf("acknowledged record lost after %s: %+v", point, got)
			}
			// The sync-fault path may leave the unacknowledged entry on
			// disk (real fsync failure is exactly this ambiguous); the
			// write-fault path must not.
			if point == fault.WALAppendWrite && len(got) != 1 {
				t.Fatalf("unacknowledged record survived a write fault: %+v", got)
			}
		})
	}
}

func TestReset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.wal")
	l, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range testRecords() {
		mustAppend(t, l, r)
	}
	last := l.LastLSN()
	if err := l.Reset(); err != nil {
		t.Fatal(err)
	}
	if l.Entries() != 0 || l.Size() != l.HeaderSize() {
		t.Fatalf("after reset: entries=%d size=%d header=%d", l.Entries(), l.Size(), l.HeaderSize())
	}
	if l.BaseLSN() != last {
		t.Fatalf("after reset: base lsn %d, want %d", l.BaseLSN(), last)
	}
	extra := Record{Inserts: []core.Fact{{Pred: "p", Tuple: value.Strs("a")}}}
	lsn, err := l.Append(extra)
	if err != nil {
		t.Fatal(err)
	}
	if lsn != last+1 {
		t.Fatalf("post-reset lsn = %d, want %d (LSNs must survive truncation)", lsn, last+1)
	}
	l.Close()
	_, got, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	extra.LSN = lsn
	if len(got) != 1 || !reflect.DeepEqual(got[0], extra) {
		t.Fatalf("after reset+append: %+v", got)
	}
}

// TestResetWith checks the atomic checkpoint rewrite: consolidation
// records land with fresh LSNs continuing the sequence, the base LSN
// advances, and a reopen replays exactly the consolidated state.
func TestResetWith(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.wal")
	l, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range testRecords() {
		mustAppend(t, l, r)
	}
	last := l.LastLSN()
	cons := []Record{
		{Session: "s1", Inserts: []core.Fact{{Pred: "k", Tuple: value.Strs("v")}}},
		{Session: "s2", Inserts: []core.Fact{{Pred: "k", Tuple: value.Strs("w")}}},
	}
	out, err := l.ResetWith(last, cons)
	if err != nil {
		t.Fatal(err)
	}
	if out[0].LSN != last+1 || out[1].LSN != last+2 {
		t.Fatalf("consolidation lsns %d,%d, want %d,%d", out[0].LSN, out[1].LSN, last+1, last+2)
	}
	if l.BaseLSN() != last || l.Entries() != 2 || l.LastLSN() != last+2 {
		t.Fatalf("after ResetWith: base=%d entries=%d last=%d", l.BaseLSN(), l.Entries(), l.LastLSN())
	}
	l.Close()
	_, got, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, out) {
		t.Fatalf("reopen after ResetWith:\ngot  %+v\nwant %+v", got, out)
	}
}

// TestConcurrentAppends races appends from many goroutines (as idlogd
// sessions do) and checks every record survives with a unique LSN in
// file order.
func TestConcurrentAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.wal")
	l, _, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 8, 10
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				rec := Record{Session: "s", Inserts: []core.Fact{{Pred: "p", Tuple: value.Ints(int64(w*per + i))}}}
				if _, err := l.Append(rec); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	l.Close()
	_, got, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != workers*per {
		t.Fatalf("replayed %d records, want %d", len(got), workers*per)
	}
	for i, r := range got {
		if r.LSN != uint64(i+1) {
			t.Fatalf("record %d has LSN %d: file order must equal LSN order", i, r.LSN)
		}
	}
}

// TestStreamCodecRoundTrip frames records and controls, then decodes
// them back.
func TestStreamCodecRoundTrip(t *testing.T) {
	recs := withLSNs(testRecords(), 7)
	var b []byte
	b = AppendControlFrame(b, FrameHeartbeat, 6)
	for _, r := range recs {
		b = AppendEntryFrame(b, r)
	}
	b = AppendControlFrame(b, FrameEOS, 9)

	sr := NewStreamReader(bytes.NewReader(b))
	f, err := sr.Next()
	if err != nil || f.Type != FrameHeartbeat || f.LSN != 6 {
		t.Fatalf("heartbeat: %+v %v", f, err)
	}
	for i, want := range recs {
		f, err := sr.Next()
		if err != nil {
			t.Fatalf("entry %d: %v", i, err)
		}
		if f.Type != FrameEntry || f.LSN != want.LSN || !reflect.DeepEqual(f.Rec, want) {
			t.Fatalf("entry %d: %+v, want %+v", i, f.Rec, want)
		}
	}
	if f, err = sr.Next(); err != nil || f.Type != FrameEOS || f.LSN != 9 {
		t.Fatalf("eos: %+v %v", f, err)
	}
	if _, err := sr.Next(); err != io.EOF {
		t.Fatalf("after eos: %v, want io.EOF", err)
	}
}

// TestStreamTornAtEveryByte cuts a framed stream at every byte offset:
// decoding must yield only whole frames and then either a clean EOF (a
// cut between frames) or ErrTornStream — never a corrupt record.
func TestStreamTornAtEveryByte(t *testing.T) {
	recs := withLSNs(testRecords(), 1)
	var b []byte
	for _, r := range recs {
		b = AppendEntryFrame(b, r)
	}
	for cut := 0; cut <= len(b); cut++ {
		sr := NewStreamReader(bytes.NewReader(b[:cut]))
		n := 0
		for {
			f, err := sr.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				if !errors.Is(err, ErrTornStream) {
					t.Fatalf("cut %d: err = %v, want ErrTornStream", cut, err)
				}
				break
			}
			if !reflect.DeepEqual(f.Rec, recs[n]) {
				t.Fatalf("cut %d: frame %d decoded wrong", cut, n)
			}
			n++
		}
	}
}
