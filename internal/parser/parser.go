// Package parser turns concrete IDLOG syntax into the AST of
// internal/ast. The grammar (see DESIGN.md §3):
//
//	program  := clause* EOF
//	clause   := atom ( ":-" literal ("," literal)* )? "."
//	literal  := "not"? (atom | comparison | choiceLit)
//	atom     := ident idspec? "(" term ("," term)* ")" | ident
//	idspec   := "[" (number ("," number)*)? "]"
//	choiceLit:= "choice" "(" "(" terms? ")" "," "(" terms? ")" ")"
//	comparison := term ("<"|"<="|">"|">="|"="|"!=") term
//	term     := variable | ident | number
//
// Grouping positions inside [..] are 1-based in source (as in the paper)
// and 0-based in the AST.
package parser

import (
	"fmt"
	"strconv"

	"idlog/internal/ast"
	"idlog/internal/lexer"
)

// Error is a parse error with a source position.
type Error struct {
	Pos lexer.Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("parse error at %s: %s", e.Pos, e.Msg) }

type parser struct {
	lx   *lexer.Lexer
	tok  lexer.Token
	next lexer.Token
}

func newParser(src string) *parser {
	p := &parser{lx: lexer.New(src)}
	p.tok = p.lx.Next()
	p.next = p.lx.Next()
	return p
}

func (p *parser) advance() {
	p.tok = p.next
	p.next = p.lx.Next()
}

func (p *parser) errf(format string, args ...any) *Error {
	return &Error{Pos: p.tok.Pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expect(k lexer.Kind) (lexer.Token, error) {
	if p.tok.Kind != k {
		return lexer.Token{}, p.errf("expected %s, found %s %q", k, p.tok.Kind, p.tok.Text)
	}
	t := p.tok
	p.advance()
	return t, nil
}

// Program parses a whole program.
func Program(src string) (*ast.Program, error) {
	p := newParser(src)
	prog := &ast.Program{}
	for p.tok.Kind != lexer.EOF {
		c, err := p.clause()
		if err != nil {
			return nil, err
		}
		prog.Clauses = append(prog.Clauses, c)
	}
	return prog, nil
}

// Clause parses a single clause (for REPL-style use).
func Clause(src string) (*ast.Clause, error) {
	p := newParser(src)
	c, err := p.clause()
	if err != nil {
		return nil, err
	}
	if p.tok.Kind != lexer.EOF {
		return nil, p.errf("trailing input after clause")
	}
	return c, nil
}

func (p *parser) clause() (*ast.Clause, error) {
	head, err := p.atom()
	if err != nil {
		return nil, err
	}
	if head.IsID {
		return nil, p.errf("clause head %s may not be an ID-atom", head.Pred)
	}
	c := &ast.Clause{Head: head}
	switch p.tok.Kind {
	case lexer.Period:
		p.advance()
		return c, nil
	case lexer.Implies:
		p.advance()
	default:
		return nil, p.errf("expected ':-' or '.' after clause head, found %s %q", p.tok.Kind, p.tok.Text)
	}
	for {
		l, err := p.literal()
		if err != nil {
			return nil, err
		}
		c.Body = append(c.Body, l)
		switch p.tok.Kind {
		case lexer.Comma:
			p.advance()
		case lexer.Period:
			p.advance()
			return c, nil
		default:
			return nil, p.errf("expected ',' or '.' in clause body, found %s %q", p.tok.Kind, p.tok.Text)
		}
	}
}

func (p *parser) literal() (*ast.Literal, error) {
	neg := false
	if p.tok.Kind == lexer.Ident && !p.tok.Quoted && p.tok.Text == "not" {
		neg = true
		p.advance()
	}
	if p.tok.Kind == lexer.Ident && !p.tok.Quoted && p.tok.Text == "choice" && p.next.Kind == lexer.LParen {
		if neg {
			return nil, p.errf("choice literals may not be negated")
		}
		ch, err := p.choice()
		if err != nil {
			return nil, err
		}
		return &ast.Literal{Choice: ch}, nil
	}
	// A literal is either an atom or an infix comparison. Distinguish by
	// lookahead: an atom starts with Ident followed by '(' or '['; any
	// other shape beginning with a term must be a comparison.
	if p.tok.Kind == lexer.Ident && (p.next.Kind == lexer.LParen || p.next.Kind == lexer.LBracket) {
		a, err := p.atom()
		if err != nil {
			return nil, err
		}
		return &ast.Literal{Neg: neg, Atom: a}, nil
	}
	if isTermStart(p.tok.Kind) && isCompOp(p.next.Kind) {
		a, err := p.comparison()
		if err != nil {
			return nil, err
		}
		return &ast.Literal{Neg: neg, Atom: a}, nil
	}
	if p.tok.Kind == lexer.Ident && !p.tok.Quoted {
		// Propositional atom (zero arguments).
		a := &ast.Atom{Pred: p.tok.Text}
		p.advance()
		return &ast.Literal{Neg: neg, Atom: a}, nil
	}
	return nil, p.errf("expected a literal, found %s %q", p.tok.Kind, p.tok.Text)
}

func isTermStart(k lexer.Kind) bool {
	return k == lexer.Ident || k == lexer.Variable || k == lexer.Number
}

func isCompOp(k lexer.Kind) bool {
	switch k {
	case lexer.Lt, lexer.Le, lexer.Gt, lexer.Ge, lexer.Eq, lexer.Neq:
		return true
	}
	return false
}

var compPred = map[lexer.Kind]string{
	lexer.Lt:  "lt",
	lexer.Le:  "le",
	lexer.Gt:  "gt",
	lexer.Ge:  "ge",
	lexer.Eq:  "eq",
	lexer.Neq: "neq",
}

func (p *parser) comparison() (*ast.Atom, error) {
	left, err := p.term()
	if err != nil {
		return nil, err
	}
	op, ok := compPred[p.tok.Kind]
	if !ok {
		return nil, p.errf("expected comparison operator, found %s %q", p.tok.Kind, p.tok.Text)
	}
	p.advance()
	right, err := p.term()
	if err != nil {
		return nil, err
	}
	return &ast.Atom{Pred: op, Args: []ast.Term{left, right}}, nil
}

func (p *parser) atom() (*ast.Atom, error) {
	if p.tok.Kind == lexer.Ident && p.tok.Quoted {
		return nil, p.errf("quoted constant %q cannot be used as a predicate name", p.tok.Text)
	}
	name, err := p.expect(lexer.Ident)
	if err != nil {
		return nil, err
	}
	a := &ast.Atom{Pred: name.Text}
	if p.tok.Kind == lexer.LBracket {
		p.advance()
		a.IsID = true
		a.Group = []int{}
		for p.tok.Kind != lexer.RBracket {
			n, err := p.expect(lexer.Number)
			if err != nil {
				return nil, err
			}
			v, err := strconv.Atoi(n.Text)
			if err != nil || v < 1 {
				return nil, &Error{Pos: n.Pos, Msg: fmt.Sprintf("grouping position %q must be a positive integer", n.Text)}
			}
			a.Group = append(a.Group, v-1)
			if p.tok.Kind == lexer.Comma {
				p.advance()
			} else if p.tok.Kind != lexer.RBracket {
				return nil, p.errf("expected ',' or ']' in grouping spec, found %s %q", p.tok.Kind, p.tok.Text)
			}
		}
		p.advance() // ']'
	}
	if p.tok.Kind != lexer.LParen {
		if a.IsID {
			return nil, p.errf("ID-atom %s[..] requires an argument list", a.Pred)
		}
		return a, nil // propositional
	}
	p.advance()
	if p.tok.Kind == lexer.RParen {
		if a.IsID {
			return nil, p.errf("ID-atom %s[..] needs at least the tuple-identifier argument", a.Pred)
		}
		p.advance()
		return a, nil
	}
	for {
		t, err := p.term()
		if err != nil {
			return nil, err
		}
		a.Args = append(a.Args, t)
		switch p.tok.Kind {
		case lexer.Comma:
			p.advance()
		case lexer.RParen:
			p.advance()
			if a.IsID {
				base := len(a.Args) - 1
				for _, g := range a.Group {
					if g >= base {
						return nil, p.errf("grouping position %d exceeds base arity %d of %s", g+1, base, a.Pred)
					}
				}
			}
			return a, nil
		default:
			return nil, p.errf("expected ',' or ')' in argument list, found %s %q", p.tok.Kind, p.tok.Text)
		}
	}
}

func (p *parser) choice() (*ast.Choice, error) {
	p.advance() // "choice"
	if _, err := p.expect(lexer.LParen); err != nil {
		return nil, err
	}
	dom, err := p.termTuple()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(lexer.Comma); err != nil {
		return nil, err
	}
	rng, err := p.termTuple()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(lexer.RParen); err != nil {
		return nil, err
	}
	if len(rng) == 0 {
		return nil, p.errf("choice range must not be empty")
	}
	return &ast.Choice{Domain: dom, Range: rng}, nil
}

func (p *parser) termTuple() ([]ast.Term, error) {
	if _, err := p.expect(lexer.LParen); err != nil {
		return nil, err
	}
	var ts []ast.Term
	for p.tok.Kind != lexer.RParen {
		t, err := p.term()
		if err != nil {
			return nil, err
		}
		ts = append(ts, t)
		if p.tok.Kind == lexer.Comma {
			p.advance()
		} else if p.tok.Kind != lexer.RParen {
			return nil, p.errf("expected ',' or ')' in term tuple, found %s %q", p.tok.Kind, p.tok.Text)
		}
	}
	p.advance()
	return ts, nil
}

func (p *parser) term() (ast.Term, error) {
	switch p.tok.Kind {
	case lexer.Variable:
		v := ast.V(p.tok.Text)
		p.advance()
		return v, nil
	case lexer.Ident:
		c := ast.S(p.tok.Text)
		p.advance()
		return c, nil
	case lexer.Number:
		n, err := strconv.ParseInt(p.tok.Text, 10, 64)
		if err != nil {
			return nil, p.errf("number %q out of range", p.tok.Text)
		}
		p.advance()
		return ast.N(n), nil
	default:
		return nil, p.errf("expected a term, found %s %q", p.tok.Kind, p.tok.Text)
	}
}
