package parser

import (
	"testing"

	"idlog/internal/analysis"
)

// FuzzProgram checks two robustness properties of the front end on
// arbitrary byte strings: the parser never panics, and whenever it
// accepts an input, printing and re-parsing is a fixpoint
// (print ∘ parse ∘ print = print).
func FuzzProgram(f *testing.F) {
	seeds := []string{
		"p(a).",
		"select_two_emp(Name) :- emp[2](Name, Dept, N), N < 2.",
		"all_depts(D) :- emp(N, D), choice((D), (N)).",
		"tc(X, Y) :- e(X, Y).\ntc(X, Y) :- e(X, Z), tc(Z, Y).",
		"man(X) :- sex_guess[1](X, male, 1).",
		"p(X) :- q(X, Z), not r(Z), add(Z, 1, W), W <= 9.",
		"p(X) :- q[](X, T), T = 0.",
		"q1 :- x(c).",
		"p('quoted konst', 42).",
		"% comment\np(a). // trailing",
		"p(£).",
		"p(X :- q(X).",
		"[[[",
		"p(X) :- choice((X), ()).",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Program(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		printed := prog.String()
		re, err := Program(printed)
		if err != nil {
			t.Fatalf("reparse of printed program failed: %v\nsource: %q\nprinted: %q", err, src, printed)
		}
		if re.String() != printed {
			t.Fatalf("print/parse not a fixpoint:\nsource: %q\nfirst:  %q\nsecond: %q", src, printed, re.String())
		}
	})
}

// FuzzAnalyze additionally pushes accepted programs through the static
// analyzer, which must error or succeed but never panic.
func FuzzAnalyze(f *testing.F) {
	seeds := []string{
		"p(X) :- q(X).",
		"p(X) :- p[](X, T), T = 0.",
		"win(X) :- move(X, Y), not win(Y).",
		"p1(X, N) :- q(X, N), add(N, L, M).",
		"s(N) :- emp[2](N, D, T), T < 2.",
		"a:-b[]().", // regression: empty-argument ID-atom
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Program(src)
		if err != nil {
			return
		}
		hasChoice := false
		for _, c := range prog.Clauses {
			for _, l := range c.Body {
				if l.IsChoice() {
					hasChoice = true
				}
			}
		}
		if hasChoice {
			return // analyzer rejects choice by design
		}
		_, _ = analysis.Analyze(prog) // must not panic
	})
}
