package parser

import (
	"idlog/internal/ast"
	"idlog/internal/lexer"
)

// RuleParts parses the generalized rule syntax used by the inflationary
// languages of §3.2.1 (DL and N-DATALOG):
//
//	literal ("," literal)* (":-" literal ("," literal)*)? "."
//
// Heads may contain several literals (DL conjunctive heads) and, for
// N-DATALOG, negated literals (interpreted as deletions). The head may
// not contain choice literals.
func RuleParts(src string) (head, body []*ast.Literal, err error) {
	p := newParser(src)
	for {
		l, err := p.literal()
		if err != nil {
			return nil, nil, err
		}
		if l.IsChoice() {
			return nil, nil, p.errf("choice literal not allowed in a rule head")
		}
		head = append(head, l)
		if p.tok.Kind == lexer.Comma {
			p.advance()
			continue
		}
		break
	}
	switch p.tok.Kind {
	case lexer.Period:
		p.advance()
	case lexer.Implies:
		p.advance()
		for {
			l, err := p.literal()
			if err != nil {
				return nil, nil, err
			}
			body = append(body, l)
			if p.tok.Kind == lexer.Comma {
				p.advance()
				continue
			}
			break
		}
		if _, err := p.expect(lexer.Period); err != nil {
			return nil, nil, err
		}
	default:
		return nil, nil, p.errf("expected ':-' or '.' after rule head, found %s %q", p.tok.Kind, p.tok.Text)
	}
	if p.tok.Kind != lexer.EOF {
		return nil, nil, p.errf("trailing input after rule")
	}
	return head, body, nil
}
