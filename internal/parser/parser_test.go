package parser

import (
	"strings"
	"testing"

	"idlog/internal/ast"
)

func mustParse(t *testing.T, src string) *ast.Program {
	t.Helper()
	p, err := Program(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return p
}

func TestFact(t *testing.T) {
	p := mustParse(t, "emp(joe, toys).")
	if len(p.Clauses) != 1 || !p.Clauses[0].IsFact() {
		t.Fatalf("expected one fact, got %v", p)
	}
	h := p.Clauses[0].Head
	if h.Pred != "emp" || len(h.Args) != 2 {
		t.Fatalf("head = %v", h)
	}
}

func TestPaperSamplingClause(t *testing.T) {
	// The paper's flagship example (§1):
	//   select_two_emp(Name) :- emp[2](Name, Dept, N), N < 2.
	p := mustParse(t, "select_two_emp(Name) :- emp[2](Name, Dept, N), N < 2.")
	c := p.Clauses[0]
	if c.Head.Pred != "select_two_emp" {
		t.Fatalf("head = %v", c.Head)
	}
	if len(c.Body) != 2 {
		t.Fatalf("body length %d", len(c.Body))
	}
	idAtom := c.Body[0].Atom
	if !idAtom.IsID || idAtom.Pred != "emp" {
		t.Fatalf("first literal should be ID-atom emp[2], got %v", idAtom)
	}
	if len(idAtom.Group) != 1 || idAtom.Group[0] != 1 {
		t.Fatalf("group positions = %v, want [1] (0-based for source position 2)", idAtom.Group)
	}
	if idAtom.BaseArity() != 2 {
		t.Fatalf("base arity = %d, want 2", idAtom.BaseArity())
	}
	cmp := c.Body[1].Atom
	if cmp.Pred != "lt" || len(cmp.Args) != 2 {
		t.Fatalf("comparison literal = %v", cmp)
	}
}

func TestChoiceLiteral(t *testing.T) {
	p := mustParse(t, "all_depts(Dept) :- emp(Name, Dept), choice((Dept), (Name)).")
	c := p.Clauses[0]
	if len(c.Body) != 2 || !c.Body[1].IsChoice() {
		t.Fatalf("choice literal not parsed: %v", c)
	}
	ch := c.Body[1].Choice
	if len(ch.Domain) != 1 || len(ch.Range) != 1 {
		t.Fatalf("choice = %v", ch)
	}
	if !p.HasChoice() {
		t.Fatalf("HasChoice() = false")
	}
}

func TestEmptyChoiceDomain(t *testing.T) {
	// choice((),(Y)) chooses a single Y globally, as in the paper's
	// sex(X, Y) :- sex_guess(X, Y), choice((X), (Y)) family.
	p := mustParse(t, "one(Y) :- p(Y), choice((), (Y)).")
	ch := p.Clauses[0].Body[1].Choice
	if len(ch.Domain) != 0 || len(ch.Range) != 1 {
		t.Fatalf("choice = %v", ch)
	}
}

func TestNegation(t *testing.T) {
	p := mustParse(t, "man(X) :- person(X), not woman(X).")
	if !p.Clauses[0].Body[1].Neg {
		t.Fatalf("negation not parsed")
	}
}

func TestUngroupedIDAtom(t *testing.T) {
	p := mustParse(t, "p(X) :- q[](X, T).")
	a := p.Clauses[0].Body[0].Atom
	if !a.IsID || len(a.Group) != 0 {
		t.Fatalf("q[] atom = %+v", a)
	}
}

func TestMultiColumnGroup(t *testing.T) {
	p := mustParse(t, "p(X) :- q[1,3](X, Y, Z, T).")
	a := p.Clauses[0].Body[0].Atom
	if len(a.Group) != 2 || a.Group[0] != 0 || a.Group[1] != 2 {
		t.Fatalf("group = %v", a.Group)
	}
}

func TestPropositionalAtoms(t *testing.T) {
	p := mustParse(t, "q1 :- x(c).\nq2 :- x(a).\nrain.")
	if p.Clauses[0].Head.Pred != "q1" || len(p.Clauses[0].Head.Args) != 0 {
		t.Fatalf("propositional head = %v", p.Clauses[0].Head)
	}
	if !p.Clauses[2].IsFact() {
		t.Fatalf("rain should be a fact")
	}
}

func TestComparisonsAllOps(t *testing.T) {
	src := "p(X) :- q(X), X < 1, X <= 2, X > 0, X >= 0, X = 1, X != 3."
	p := mustParse(t, src)
	preds := []string{"q", "lt", "le", "gt", "ge", "eq", "neq"}
	for i, want := range preds {
		if got := p.Clauses[0].Body[i].Atom.Pred; got != want {
			t.Fatalf("literal %d pred = %q, want %q", i, got, want)
		}
	}
}

func TestNumbersAndConstants(t *testing.T) {
	p := mustParse(t, "p(42, foo, Bar, 'Quoted Konst').")
	args := p.Clauses[0].Head.Args
	if _, ok := args[0].(ast.Const); !ok {
		t.Fatalf("42 not a constant")
	}
	if v, ok := args[2].(ast.Var); !ok || v.Name != "Bar" {
		t.Fatalf("Bar not a variable: %v", args[2])
	}
	if c, ok := args[3].(ast.Const); !ok || c.Val.String() != "Quoted Konst" {
		t.Fatalf("quoted constant = %v", args[3])
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"p(X)",                         // missing period
		"p(X) :- .",                    // empty body
		"p(X) :- q(X),.",               // dangling comma
		"p[1](X, T) :- q(X).",          // ID-atom in head
		"p(X) :- q[0](X, T).",          // grouping position < 1
		"p(X) :- q[3](X, T).",          // grouping exceeds base arity
		"p(X) :- q[1].",                // ID-atom without args
		"p(X) :- not choice((X),(X)).", // negated choice
		"p(X) :- choice((X), ()).",     // empty choice range
		"p(X :- q(X).",                 // mangled parens
		":- q(X).",                     // missing head
		"p(X) :- q(X) r(X).",           // missing comma
		"p(£).",                        // invalid rune
	}
	for _, src := range bad {
		if _, err := Program(src); err == nil {
			t.Errorf("no error for %q", src)
		}
	}
}

func TestErrorsCarryPositions(t *testing.T) {
	_, err := Program("p(a).\nq(b) :- !r(b).")
	if err == nil {
		t.Fatalf("expected error")
	}
	perr, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if perr.Pos.Line != 2 {
		t.Fatalf("error line = %d, want 2 (%v)", perr.Pos.Line, err)
	}
	if !strings.Contains(err.Error(), "parse error at 2:") {
		t.Fatalf("error text %q lacks position", err)
	}
}

func TestClauseEntryPoint(t *testing.T) {
	c, err := Clause("p(X) :- q(X).")
	if err != nil || c.Head.Pred != "p" {
		t.Fatalf("Clause: %v %v", c, err)
	}
	if _, err := Clause("p(X) :- q(X). extra"); err == nil {
		t.Fatalf("trailing input not rejected")
	}
}

func TestPrintParseRoundTrip(t *testing.T) {
	srcs := []string{
		"emp(joe, toys).",
		"select_two_emp(Name) :- emp[2](Name, Dept, N), N < 2.",
		"all_depts(Dept) :- emp(Name, Dept), choice((Dept), (Name)).",
		"man(X) :- sex_guess[1](X, male, 1).",
		"p(X) :- q(X, Z), not r(Z), Z >= 0.",
		"p(X) :- q[](X, T), T = 0.",
		"t(X, Y) :- e(X, Y).\nt(X, Y) :- e(X, Z), t(Z, Y).",
		"q1 :- x(c).",
	}
	for _, src := range srcs {
		p1 := mustParse(t, src)
		printed := p1.String()
		p2, err := Program(printed)
		if err != nil {
			t.Fatalf("reparse of %q failed: %v\nprinted: %s", src, err, printed)
		}
		if p2.String() != printed {
			t.Fatalf("print/parse not a fixpoint for %q:\nfirst:  %s\nsecond: %s", src, printed, p2.String())
		}
	}
}

func TestInputAndHeadPreds(t *testing.T) {
	p := mustParse(t, `
		select(N) :- emp[2](N, D, T), T < 2.
		big(D) :- dept(D), size(D, S), S > 10.
	`)
	isBuiltin := func(name string) bool {
		switch name {
		case "lt", "le", "gt", "ge", "eq", "neq":
			return true
		}
		return false
	}
	inputs := p.InputPreds(isBuiltin)
	if len(inputs) != 3 {
		t.Fatalf("inputs = %v, want emp, dept, size", inputs)
	}
	heads := p.HeadPreds()
	if len(heads) != 2 || heads[0].Name != "big" || heads[1].Name != "select" {
		t.Fatalf("heads = %v", heads)
	}
}

func TestQuotedConstantRejectedAsPredicate(t *testing.T) {
	for _, src := range []string{"''.", "'foo bar'(x).", "p(X) :- 'q'(X)."} {
		if _, err := Program(src); err == nil {
			t.Errorf("quoted predicate accepted: %q", src)
		}
	}
	// Quoted keywords must act as constants, not keywords.
	p := mustParse(t, "p(X) :- q(X, 'not'), r('choice').")
	if p.Clauses[0].Body[0].Neg {
		t.Fatalf("quoted 'not' treated as negation")
	}
}

func TestEmptyArgIDAtomRejected(t *testing.T) {
	if _, err := Program("a :- b[]()."); err == nil {
		t.Fatalf("ID-atom with no arguments accepted")
	}
}

func TestQuotedConstantRoundTrip(t *testing.T) {
	srcs := []string{
		"p('quoted konst', 42).",
		"p('it''s').",
		"p('').",
		"p('Not', 'CHOICE').",
	}
	for _, src := range srcs {
		p1 := mustParse(t, src)
		printed := p1.String()
		p2, err := Program(printed)
		if err != nil {
			t.Fatalf("reparse of %q failed: %v (printed %q)", src, err, printed)
		}
		if p2.String() != printed {
			t.Fatalf("not a fixpoint: %q -> %q -> %q", src, printed, p2.String())
		}
	}
}

func TestRulePartsDirect(t *testing.T) {
	head, body, err := RuleParts("a(X), not b(X) :- c(X), X < 3.")
	if err != nil {
		t.Fatal(err)
	}
	if len(head) != 2 || !head[1].Neg || len(body) != 2 {
		t.Fatalf("head=%v body=%v", head, body)
	}
	// Fact form.
	head, body, err = RuleParts("a(1).")
	if err != nil || len(head) != 1 || len(body) != 0 {
		t.Fatalf("fact: %v %v %v", head, body, err)
	}
	// Errors.
	for _, bad := range []string{
		"choice((X),(Y)) :- p(X, Y).",
		"a(X) :- b(X)",
		"a(X) :- b(X). trailing",
		"a(X) :-",
		":- b(X).",
	} {
		if _, _, err := RuleParts(bad); err == nil {
			t.Errorf("RuleParts accepted %q", bad)
		}
	}
}
