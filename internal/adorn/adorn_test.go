package adorn

import (
	"math/rand"
	"strings"
	"testing"

	"idlog/internal/analysis"
	"idlog/internal/ast"
	"idlog/internal/core"
	"idlog/internal/parser"
	"idlog/internal/value"
)

func mustParse(t *testing.T, src string) *ast.Program {
	t.Helper()
	p, err := parser.Program(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return p
}

// example6 is the program of Example 6 / Example 8.
const example6 = `
	q(X) :- a(X, Y).
	a(X, Y) :- p(X, Z), a(Z, Y).
	a(X, Y) :- p(X, Y).
`

func TestExample6Adornment(t *testing.T) {
	res, err := Analyze(mustParse(t, example6), "q")
	if err != nil {
		t.Fatal(err)
	}
	// Only a's second argument is ∀-existential at the predicate level
	// (p.2 is blocked by the occurrence p(X, Z) whose Z joins with a).
	if got := res.Positions(); got != "a.2" {
		t.Fatalf("existential positions = %q, want \"a.2\"", got)
	}
	if pos := res.ExistentialPositions("a"); len(pos) != 1 || pos[0] != 1 {
		t.Fatalf("ExistentialPositions(a) = %v", pos)
	}
}

func TestExample6PushProjections(t *testing.T) {
	prog := mustParse(t, example6)
	res, err := Analyze(prog, "q")
	if err != nil {
		t.Fatal(err)
	}
	pushed := PushProjections(prog, res)
	want := mustParse(t, `
		q(X) :- a(X).
		a(X) :- p(X, Z), a(Z).
		a(X) :- p(X, Y).
	`)
	if pushed.String() != want.String() {
		t.Fatalf("pushed =\n%s\nwant\n%s", pushed, want)
	}
}

func TestExample8FullRewrite(t *testing.T) {
	// The paper's Example 8: after projection pushing, the p-literal of
	// the non-recursive clause becomes p[1](X, Y, 0).
	opt, err := Optimize(mustParse(t, example6), "q")
	if err != nil {
		t.Fatal(err)
	}
	want := mustParse(t, `
		q(X) :- a(X).
		a(X) :- p(X, Z), a(Z).
		a(X) :- p[1](X, Y, 0).
	`)
	if opt.String() != want.String() {
		t.Fatalf("optimized =\n%s\nwant\n%s", opt, want)
	}
}

func TestSection4OpeningProgram(t *testing.T) {
	// p(X) :- q(X, Z), z(Z, Y), y(W)  becomes
	// p(X) :- q(X, Z), z[1](Z, Y, 0), y[](W, 0).
	src := `p(X) :- q(X, Z), zz(Z, Y), y(W).`
	opt, err := Optimize(mustParse(t, src), "p")
	if err != nil {
		t.Fatal(err)
	}
	want := mustParse(t, `p(X) :- q(X, Z), zz[1](Z, Y, 0), y[](W, 0).`)
	if opt.String() != want.String() {
		t.Fatalf("optimized = %s, want %s", opt, want)
	}
}

func TestExample7SufficientTestIsConservative(t *testing.T) {
	// In Example 7, the Y in x(Y) :- p(Y) is ∀-existential w.r.t. q1 but
	// NOT ∃-existential; the adornment algorithm must not identify it
	// (the constant in q1 :- x(c) blocks x.1, hence p.1).
	src := `
		q1 :- x(c).
		q2 :- x(a).
		x(Y) :- p(Y).
		p(b) :- u(W).
		p(c) :- y(W).
	`
	res, err := Analyze(mustParse(t, src), "q1")
	if err != nil {
		t.Fatal(err)
	}
	if flags := res.Existential["p"]; len(flags) > 0 && flags[0] {
		t.Fatalf("p.1 wrongly identified as existential: %v", res.Positions())
	}
	if flags := res.Existential["x"]; len(flags) > 0 && flags[0] {
		t.Fatalf("x.1 wrongly identified as existential")
	}
	// u.1 and y.1 are fine: their variables appear nowhere else.
	if got := res.Positions(); got != "u.1 y.1" {
		t.Fatalf("positions = %q, want \"u.1 y.1\"", got)
	}
}

func TestOutputPredicateNeverExistential(t *testing.T) {
	src := `q(X, Y) :- e(X, Y).`
	res, err := Analyze(mustParse(t, src), "q")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Existential["q"]) != 0 {
		t.Fatalf("output predicate marked existential: %v", res.Positions())
	}
}

func TestUnknownOutputRejected(t *testing.T) {
	_, err := Analyze(mustParse(t, "p(X) :- q(X)."), "nope")
	if err == nil || !strings.Contains(err.Error(), "nope") {
		t.Fatalf("err = %v", err)
	}
}

func TestChoiceRejected(t *testing.T) {
	_, err := Analyze(mustParse(t, "p(X) :- q(X, Y), choice((X), (Y))."), "p")
	if err == nil {
		t.Fatalf("choice literal should be rejected")
	}
}

func TestUnrelatedClausesUntouched(t *testing.T) {
	src := `
		q(X) :- a(X, Y).
		a(X, Y) :- p(X, Y).
		other(X, Y) :- stuff(X, Y, Z).
	`
	prog := mustParse(t, src)
	opt, err := Optimize(prog, "q")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(opt.String(), "other(X, Y) :- stuff(X, Y, Z).") {
		t.Fatalf("unrelated clause modified:\n%s", opt)
	}
}

func TestNegatedLiteralsNotRewritten(t *testing.T) {
	// A negated input literal must not become an ID-literal even if a
	// variable looks existential (negation has different semantics).
	src := `p(X) :- q(X), not r(X).`
	opt, err := Optimize(mustParse(t, src), "p")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(opt.String(), "r[") {
		t.Fatalf("negated literal rewritten:\n%s", opt)
	}
}

// chainGraph builds p-edges forming a chain with extra fan-out leaves.
func chainGraph(n, fan int) *core.Database {
	db := core.NewDatabase()
	for i := 0; i < n; i++ {
		_ = db.Add("p", value.Ints(int64(i), int64(i+1)))
		for f := 0; f < fan; f++ {
			_ = db.Add("p", value.Ints(int64(i), int64(1000+int64(i*fan+f))))
		}
	}
	return db
}

func TestExample8EquivalenceOnGraphs(t *testing.T) {
	// ∃-existential rewriting must preserve the query: every enumerated
	// answer of the optimized (non-deterministic) program equals the
	// original deterministic answer.
	prog := mustParse(t, example6)
	opt, err := Optimize(prog, "q")
	if err != nil {
		t.Fatal(err)
	}
	origInfo, err := analysis.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	optInfo, err := analysis.Analyze(opt)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 15; trial++ {
		db := core.NewDatabase()
		n := 2 + rng.Intn(5)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if rng.Intn(3) == 0 {
					_ = db.Add("p", value.Ints(int64(i), int64(j)))
				}
			}
		}
		orig, err := core.Eval(origInfo, db, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		answers, err := core.Enumerate(optInfo, db, []string{"q"}, core.EnumerateOptions{MaxRuns: 50000})
		if err != nil {
			t.Fatal(err)
		}
		if len(answers) != 1 {
			t.Fatalf("trial %d: optimized program has %d distinct answers, want 1 (deterministic query)", trial, len(answers))
		}
		if !answers[0].Relations["q"].Equal(orig.Relation("q")) {
			t.Fatalf("trial %d: optimized answer differs:\norig %v\nopt  %v",
				trial, orig.Relation("q"), answers[0].Relations["q"])
		}
	}
}

func TestOptimizationReducesWork(t *testing.T) {
	// all_depts(D) :- emp(N, D): the optimizer should derive once per
	// department instead of once per employee.
	src := `all_depts(D) :- emp(N, D).`
	prog := mustParse(t, src)
	opt, err := Optimize(prog, "all_depts")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(opt.String(), "emp[2](N, D, 0)") {
		t.Fatalf("expected ID-literal rewrite, got:\n%s", opt)
	}
	db := core.NewDatabase()
	const depts, perDept = 5, 40
	for d := 0; d < depts; d++ {
		for e := 0; e < perDept; e++ {
			_ = db.Add("emp", value.Ints(int64(d*perDept+e), int64(d)))
		}
	}
	origInfo, _ := analysis.Analyze(prog)
	optInfo, _ := analysis.Analyze(opt)
	orig, err := core.Eval(origInfo, db, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := core.Eval(optInfo, db, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !orig.Relation("all_depts").Equal(fast.Relation("all_depts")) {
		t.Fatalf("optimized result differs")
	}
	if orig.Stats.Derivations != depts*perDept || fast.Stats.Derivations != depts {
		t.Fatalf("derivations: orig=%d (want %d), opt=%d (want %d)",
			orig.Stats.Derivations, depts*perDept, fast.Stats.Derivations, depts)
	}
}

func TestTheorem4PropertyOnRandomPrograms(t *testing.T) {
	// Theorem 4: every ∀-existential argument found by the adornment
	// algorithm is ∃-existential. We check the consequence: the
	// ID-rewritten program is query-equivalent on random inputs.
	programs := []string{
		`out(X) :- e(X, Y).`,
		`out(X) :- e(X, Y), f(Y).`, // Y joins: no rewrite of e, f.1 blocked too
		`out(X) :- e(X, Y), f(Z).`,
		`out(X) :- mid(X).
		 mid(X) :- e(X, Y).`,
	}
	rng := rand.New(rand.NewSource(5))
	for pi, src := range programs {
		prog := mustParse(t, src)
		opt, err := Optimize(prog, "out")
		if err != nil {
			t.Fatalf("program %d: %v", pi, err)
		}
		origInfo, err := analysis.Analyze(prog)
		if err != nil {
			t.Fatal(err)
		}
		optInfo, err := analysis.Analyze(opt)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 10; trial++ {
			db := core.NewDatabase()
			for i := 0; i < 4+rng.Intn(5); i++ {
				_ = db.Add("e", value.Ints(int64(rng.Intn(4)), int64(rng.Intn(4))))
			}
			for i := 0; i < rng.Intn(5); i++ {
				_ = db.Add("f", value.Ints(int64(rng.Intn(4))))
			}
			orig, err := core.Eval(origInfo, db, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			answers, err := core.Enumerate(optInfo, db, []string{"out"}, core.EnumerateOptions{MaxRuns: 50000})
			if err != nil {
				t.Fatal(err)
			}
			for _, a := range answers {
				if !a.Relations["out"].Equal(orig.Relation("out")) {
					t.Fatalf("program %d trial %d: answer differs\nprogram:\n%s\noptimized:\n%s", pi, trial, src, opt)
				}
			}
		}
	}
}

func TestIDLiteralBasePositionsNotExistential(t *testing.T) {
	// Positions of a predicate referenced through an ID-literal must not
	// be eliminated: the tid couples all of them.
	src := `
		q(X) :- a(X, Y).
		a(X, Y) :- p[1](X, Y, 0).
	`
	res, err := Analyze(mustParse(t, src), "q")
	if err != nil {
		t.Fatal(err)
	}
	if flags := res.Existential["p"]; len(flags) > 0 && (flags[0] || flags[1]) {
		t.Fatalf("ID-literal base positions marked existential: %v", res.Positions())
	}
}
