// Package adorn implements §4 of the paper: optimization of DATALOG
// programs through existential arguments.
//
// It provides the adornment algorithm of Ramakrishnan, Beeri &
// Krishnamurthy [RBK88] — the sufficient test for ∀-existential argument
// positions ("a variable that appears in a body literal and nowhere else
// in the clause, except possibly in an existential argument of the
// head") — and the two rewrites of the paper's optimization strategy:
//
//	step 1–2  PushProjections: eliminate the existential arguments of
//	          derived (IDB) predicates, pushing projections (Example 6);
//	step 3    RewriteIDLiterals: replace each input-predicate literal
//	          whose existential positions are X1..Xn by the ID-literal
//	          p[s](..., 0) with s the remaining positions (Example 8).
//
// By Theorem 4, every position the adornment algorithm identifies is
// also ∃-existential, so the ID-literal rewrite preserves the query
// while letting the evaluator consider one tuple per group. (Detecting
// all ∃-existential arguments is undecidable, Theorem 3; the tests
// include Example 7's witness separating the two notions.)
package adorn

import (
	"fmt"
	"sort"

	"idlog/internal/arith"
	"idlog/internal/ast"
)

// posKey identifies a predicate argument position.
type posKey struct {
	pred string
	pos  int
}

// Result reports the adornment analysis for one output predicate.
type Result struct {
	// Output is the predicate the analysis is relative to.
	Output string
	// Related is the set of predicates of P/q (reachable from Output
	// through clause bodies, including Output itself).
	Related map[string]bool
	// Existential maps each predicate in P/q to its per-position
	// ∀-existential flags (nil for predicates with no identified
	// positions). The output predicate itself is never marked.
	Existential map[string][]bool
	// arity records predicate arities within P/q.
	arity map[string]int
	// idb marks predicates defined by clauses.
	idb map[string]bool
}

// ExistentialPositions returns the sorted 0-based existential positions
// of pred, or nil.
func (r *Result) ExistentialPositions(pred string) []int {
	flags := r.Existential[pred]
	var out []int
	for i, f := range flags {
		if f {
			out = append(out, i)
		}
	}
	return out
}

// Analyze runs the adornment algorithm on prog w.r.t. the output
// predicate q. The program must be plain DATALOG (no choice literals;
// ID-literals are permitted and treated as opaque relational literals
// whose positions are never existential).
func Analyze(prog *ast.Program, q string) (*Result, error) {
	res := &Result{
		Output:      q,
		Related:     map[string]bool{},
		Existential: map[string][]bool{},
		arity:       map[string]int{},
		idb:         map[string]bool{},
	}
	defined := map[string]bool{}
	for _, c := range prog.Clauses {
		defined[c.Head.Pred] = true
	}
	if !defined[q] {
		return nil, fmt.Errorf("adorn: output predicate %s is not defined by the program", q)
	}
	// P/q: predicates reachable from q through bodies.
	res.Related[q] = true
	queue := []string{q}
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		for _, c := range prog.Clauses {
			if c.Head.Pred != p {
				continue
			}
			res.arity[p] = len(c.Head.Args)
			res.idb[p] = true
			for _, l := range c.Body {
				if l.IsChoice() {
					return nil, fmt.Errorf("adorn: choice literal in %q; translate first", c)
				}
				a := l.Atom
				if arith.IsBuiltin(a.Pred) {
					continue
				}
				if _, ok := res.arity[a.Pred]; !ok {
					res.arity[a.Pred] = a.BaseArity()
				}
				if !res.Related[a.Pred] {
					res.Related[a.Pred] = true
					if defined[a.Pred] {
						queue = append(queue, a.Pred)
					}
				}
			}
		}
	}
	for p := range res.Related {
		if defined[p] {
			res.idb[p] = true
		}
	}

	// Greatest fixpoint: start with every position of every related
	// predicate (except the output) marked, then strike positions whose
	// body occurrences are not existentially adorned.
	exist := map[posKey]bool{}
	for p := range res.Related {
		if p == q {
			continue
		}
		for i := 0; i < res.arity[p]; i++ {
			exist[posKey{p, i}] = true
		}
	}
	clauses := relatedClauses(prog, res.Related)
	for changed := true; changed; {
		changed = false
		for _, c := range clauses {
			for _, l := range c.Body {
				a := l.Atom
				if arith.IsBuiltin(a.Pred) || a.IsID {
					continue
				}
				for pos := range a.Args {
					k := posKey{a.Pred, pos}
					if !exist[k] {
						continue
					}
					if !occurrenceAdorned(c, l, pos, exist) {
						delete(exist, k)
						changed = true
					}
				}
			}
		}
		// Positions of ID-literal base predicates are never existential:
		// the tid column couples every position.
		for _, c := range clauses {
			for _, l := range c.Body {
				a := l.Atom
				if a != nil && a.IsID {
					for pos := 0; pos < a.BaseArity(); pos++ {
						k := posKey{a.Pred, pos}
						if exist[k] {
							delete(exist, k)
							changed = true
						}
					}
				}
			}
		}
	}
	for k := range exist {
		flags := res.Existential[k.pred]
		if flags == nil {
			flags = make([]bool, res.arity[k.pred])
			res.Existential[k.pred] = flags
		}
		flags[k.pos] = true
	}
	return res, nil
}

// occurrenceAdorned reports whether the term at position pos of body
// literal l in clause c satisfies the RBK88 condition: it is a variable
// whose every other occurrence in the clause is at a head position
// currently marked existential.
func occurrenceAdorned(c *ast.Clause, l *ast.Literal, pos int, exist map[posKey]bool) bool {
	v, ok := l.Atom.Args[pos].(ast.Var)
	if !ok {
		return false
	}
	// Other occurrences in the head.
	for hp, t := range c.Head.Args {
		if hv, ok := t.(ast.Var); ok && hv.Name == v.Name {
			if !exist[posKey{c.Head.Pred, hp}] {
				return false
			}
		}
	}
	// Other occurrences in the body.
	for _, bl := range c.Body {
		if bl.Atom == nil {
			continue
		}
		for bp, t := range bl.Atom.Args {
			if bl == l && bp == pos {
				continue
			}
			if bv, ok := t.(ast.Var); ok && bv.Name == v.Name {
				return false
			}
		}
	}
	return true
}

func relatedClauses(prog *ast.Program, related map[string]bool) []*ast.Clause {
	var out []*ast.Clause
	for _, c := range prog.Clauses {
		if related[c.Head.Pred] {
			out = append(out, c)
		}
	}
	return out
}

// PushProjections performs steps 1–2 of the optimization strategy: the
// existential argument positions of every derived predicate in P/q are
// eliminated, pushing projections through the program (Example 6). The
// output predicate and input predicates are untouched. Unrelated clauses
// are preserved verbatim.
func PushProjections(prog *ast.Program, res *Result) *ast.Program {
	drop := map[string][]bool{}
	for p, flags := range res.Existential {
		if res.idb[p] && p != res.Output {
			drop[p] = flags
		}
	}
	out := &ast.Program{}
	for _, c := range prog.Clauses {
		if !res.Related[c.Head.Pred] {
			out.Clauses = append(out.Clauses, c.Clone())
			continue
		}
		nc := c.Clone()
		nc.Head = projectAtom(nc.Head, drop[nc.Head.Pred])
		for i, l := range nc.Body {
			a := l.Atom
			if a == nil || a.IsID || arith.IsBuiltin(a.Pred) {
				continue
			}
			if flags, ok := drop[a.Pred]; ok {
				nc.Body[i] = &ast.Literal{Neg: l.Neg, Atom: projectAtom(a, flags)}
			}
		}
		out.Clauses = append(out.Clauses, nc)
	}
	return out
}

func projectAtom(a *ast.Atom, dropFlags []bool) *ast.Atom {
	if dropFlags == nil {
		return a
	}
	n := &ast.Atom{Pred: a.Pred}
	for i, t := range a.Args {
		if i < len(dropFlags) && dropFlags[i] {
			continue
		}
		n.Args = append(n.Args, t)
	}
	return n
}

// RewriteIDLiterals performs step 3: every positive literal over an
// *input* predicate that has occurrence-existential positions X1..Xn is
// replaced by the ID-literal p[s](..., 0), where s holds the remaining
// positions. Only clauses in P/q are rewritten. The adornment result
// must come from the same program.
func RewriteIDLiterals(prog *ast.Program, res *Result) *ast.Program {
	out := &ast.Program{}
	for _, c := range prog.Clauses {
		if !res.Related[c.Head.Pred] {
			out.Clauses = append(out.Clauses, c.Clone())
			continue
		}
		nc := c.Clone()
		for i, l := range nc.Body {
			a := l.Atom
			if a == nil || a.IsID || l.Neg || arith.IsBuiltin(a.Pred) || res.idb[a.Pred] {
				continue
			}
			// Occurrence-existential positions at the fixpoint.
			exist := map[posKey]bool{}
			for p, flags := range res.Existential {
				for pos, f := range flags {
					if f {
						exist[posKey{p, pos}] = true
					}
				}
			}
			var group []int
			anyExistential := false
			for pos := range a.Args {
				if occurrenceAdorned(c, c.Body[i], pos, exist) {
					anyExistential = true
				} else {
					group = append(group, pos)
				}
			}
			if !anyExistential {
				continue
			}
			idArgs := append(append([]ast.Term{}, a.Args...), ast.N(0))
			if group == nil {
				group = []int{}
			}
			nc.Body[i] = &ast.Literal{Atom: &ast.Atom{Pred: a.Pred, IsID: true, Group: group, Args: idArgs}}
		}
		out.Clauses = append(out.Clauses, nc)
	}
	return out
}

// Optimize chains Analyze, PushProjections, a re-analysis, and
// RewriteIDLiterals: the full strategy of §4 (steps 1–3). It returns the
// optimized program; the input program is not modified.
func Optimize(prog *ast.Program, q string) (*ast.Program, error) {
	res, err := Analyze(prog, q)
	if err != nil {
		return nil, err
	}
	pushed := PushProjections(prog, res)
	res2, err := Analyze(pushed, q)
	if err != nil {
		return nil, err
	}
	return RewriteIDLiterals(pushed, res2), nil
}

// Positions renders a predicate's existential positions 1-based, as the
// paper writes them; a debugging aid.
func (r *Result) Positions() string {
	preds := make([]string, 0, len(r.Existential))
	for p := range r.Existential {
		preds = append(preds, p)
	}
	sort.Strings(preds)
	s := ""
	for _, p := range preds {
		for pos, f := range r.Existential[p] {
			if f {
				if s != "" {
					s += " "
				}
				s += fmt.Sprintf("%s.%d", p, pos+1)
			}
		}
	}
	return s
}
