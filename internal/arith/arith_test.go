package arith

import (
	"testing"
	"testing/quick"

	"idlog/internal/value"
)

func iv(ns ...int64) []value.Value {
	out := make([]value.Value, len(ns))
	for i, n := range ns {
		out[i] = value.Int(n)
	}
	return out
}

func mask(s string) []bool {
	out := make([]bool, len(s))
	for i := range s {
		out[i] = s[i] == 'b'
	}
	return out
}

func solve(t *testing.T, name string, args []value.Value, pattern string) [][]value.Value {
	t.Helper()
	b, ok := Lookup(name)
	if !ok {
		t.Fatalf("unknown builtin %s", name)
	}
	sols, err := b.Solve(args, mask(pattern))
	if err != nil {
		t.Fatalf("%s%v/%s: %v", name, args, pattern, err)
	}
	return sols
}

func TestRegistryNames(t *testing.T) {
	for _, n := range []string{"succ", "add", "sub", "mul", "div", "mod", "lt", "le", "gt", "ge", "eq", "neq"} {
		if !IsBuiltin(n) {
			t.Errorf("missing builtin %s", n)
		}
	}
	if IsBuiltin("emp") {
		t.Errorf("emp should not be a builtin")
	}
	if len(Names()) != 12 {
		t.Errorf("Names() = %v", Names())
	}
}

func TestSucc(t *testing.T) {
	if got := solve(t, "succ", iv(3, 4), "bb"); len(got) != 1 {
		t.Fatalf("succ(3,4) failed")
	}
	if got := solve(t, "succ", iv(3, 5), "bb"); len(got) != 0 {
		t.Fatalf("succ(3,5) should fail")
	}
	got := solve(t, "succ", iv(3, 0), "bn")
	if len(got) != 1 || got[0][1].Num != 4 {
		t.Fatalf("succ(3,N) = %v", got)
	}
	got = solve(t, "succ", iv(0, 4), "nb")
	if len(got) != 1 || got[0][0].Num != 3 {
		t.Fatalf("succ(N,4) = %v", got)
	}
	if got := solve(t, "succ", iv(0, 0), "nb"); len(got) != 0 {
		t.Fatalf("succ(N,0) should have no natural solution, got %v", got)
	}
}

func TestAddPatterns(t *testing.T) {
	if got := solve(t, "add", iv(2, 3, 5), "bbb"); len(got) != 1 {
		t.Fatalf("add(2,3,5) failed")
	}
	if got := solve(t, "add", iv(2, 3, 6), "bbb"); len(got) != 0 {
		t.Fatalf("add(2,3,6) should fail")
	}
	if got := solve(t, "add", iv(2, 3, 0), "bbn"); got[0][2].Num != 5 {
		t.Fatalf("add(2,3,C) = %v", got)
	}
	if got := solve(t, "add", iv(2, 0, 5), "bnb"); got[0][1].Num != 3 {
		t.Fatalf("add(2,B,5) = %v", got)
	}
	if got := solve(t, "add", iv(7, 0, 5), "bnb"); len(got) != 0 {
		t.Fatalf("add(7,B,5) should have no natural solution")
	}
	if got := solve(t, "add", iv(0, 3, 5), "nbb"); got[0][0].Num != 2 {
		t.Fatalf("add(A,3,5) = %v", got)
	}
}

func TestAddEnumerationNNB(t *testing.T) {
	// The paper's example: L + M = 1 has exactly the solutions (0,1),(1,0).
	got := solve(t, "add", iv(0, 0, 1), "nnb")
	if len(got) != 2 {
		t.Fatalf("add(L,M,1) enumerated %d solutions, want 2: %v", len(got), got)
	}
	for _, s := range got {
		if s[0].Num+s[1].Num != 1 {
			t.Fatalf("bad solution %v", s)
		}
	}
	// Unsafe pattern: first occurrence of + in the paper's example,
	// 1 + L = M, is pattern bnn and must be rejected.
	b, _ := Lookup("add")
	if _, err := b.Solve(iv(1, 0, 0), mask("bnn")); err == nil {
		t.Fatalf("add with pattern bnn should be rejected as unsafe")
	}
}

func TestSub(t *testing.T) {
	if got := solve(t, "sub", iv(5, 3, 2), "bbb"); len(got) != 1 {
		t.Fatalf("sub(5,3,2) failed")
	}
	if got := solve(t, "sub", iv(3, 5, 0), "bbn"); len(got) != 0 {
		t.Fatalf("natural sub(3,5,C) should fail, got %v", got)
	}
	if got := solve(t, "sub", iv(0, 3, 2), "nbb"); got[0][0].Num != 5 {
		t.Fatalf("sub(A,3,2) = %v", got)
	}
	if got := solve(t, "sub", iv(5, 0, 2), "bnb"); got[0][1].Num != 3 {
		t.Fatalf("sub(5,B,2) = %v", got)
	}
}

func TestMul(t *testing.T) {
	if got := solve(t, "mul", iv(3, 4, 12), "bbb"); len(got) != 1 {
		t.Fatalf("mul(3,4,12) failed")
	}
	if got := solve(t, "mul", iv(3, 0, 12), "bnb"); got[0][1].Num != 4 {
		t.Fatalf("mul(3,B,12) = %v", got)
	}
	if got := solve(t, "mul", iv(3, 0, 13), "bnb"); len(got) != 0 {
		t.Fatalf("mul(3,B,13) should fail (not divisible)")
	}
	got := solve(t, "mul", iv(0, 0, 12), "nnb")
	if len(got) != 6 { // (1,12),(12,1),(2,6),(6,2),(3,4),(4,3)
		t.Fatalf("mul(A,B,12) enumerated %d solutions, want 6: %v", len(got), got)
	}
	// Perfect square: divisors counted once.
	got = solve(t, "mul", iv(0, 0, 9), "nnb")
	if len(got) != 3 { // (1,9),(9,1),(3,3)
		t.Fatalf("mul(A,B,9) enumerated %d solutions, want 3: %v", len(got), got)
	}
}

func TestMulUnboundedZeroCases(t *testing.T) {
	b, _ := Lookup("mul")
	if _, err := b.Solve(iv(0, 0, 0), mask("nnb")); err == nil {
		t.Fatalf("mul(A,B,0) must be reported unbounded")
	}
	if _, err := b.Solve(iv(0, 0, 0), mask("bnb")); err == nil {
		t.Fatalf("mul(0,B,0) must be reported unbounded")
	}
	// mul(0,B,5) has no solutions but is bounded.
	if got, err := b.Solve(iv(0, 0, 5), mask("bnb")); err != nil || len(got) != 0 {
		t.Fatalf("mul(0,B,5): %v %v", got, err)
	}
}

func TestDiv(t *testing.T) {
	if got := solve(t, "div", iv(7, 2, 3), "bbb"); len(got) != 1 {
		t.Fatalf("div(7,2,3) failed")
	}
	if got := solve(t, "div", iv(7, 2, 0), "bbn"); got[0][2].Num != 3 {
		t.Fatalf("div(7,2,C) = %v", got)
	}
	// nbb: A div 3 = 2 ⇒ A ∈ {6,7,8}.
	got := solve(t, "div", iv(0, 3, 2), "nbb")
	if len(got) != 3 {
		t.Fatalf("div(A,3,2) = %v, want 3 solutions", got)
	}
	if got := solve(t, "div", iv(7, 0, 3), "bbb"); len(got) != 0 {
		t.Fatalf("division by zero should fail, got %v", got)
	}
}

func TestMod(t *testing.T) {
	if got := solve(t, "mod", iv(7, 3, 1), "bbb"); len(got) != 1 {
		t.Fatalf("mod(7,3,1) failed")
	}
	if got := solve(t, "mod", iv(7, 3, 0), "bbn"); got[0][2].Num != 1 {
		t.Fatalf("mod(7,3,C) = %v", got)
	}
}

func TestComparisons(t *testing.T) {
	cases := []struct {
		name  string
		a, b  int64
		holds bool
	}{
		{"lt", 1, 2, true}, {"lt", 2, 2, false},
		{"le", 2, 2, true}, {"le", 3, 2, false},
		{"gt", 3, 2, true}, {"gt", 2, 2, false},
		{"ge", 2, 2, true}, {"ge", 1, 2, false},
	}
	for _, c := range cases {
		got := solve(t, c.name, iv(c.a, c.b), "bb")
		if (len(got) == 1) != c.holds {
			t.Errorf("%s(%d,%d) = %v, want holds=%v", c.name, c.a, c.b, got, c.holds)
		}
	}
}

func TestEqPolymorphic(t *testing.T) {
	u := []value.Value{value.Str("a"), value.Str("a")}
	if got := solve(t, "eq", u, "bb"); len(got) != 1 {
		t.Fatalf("eq(a,a) failed on sort u")
	}
	cross := []value.Value{value.Str("a"), value.Int(1)}
	if got := solve(t, "eq", cross, "bb"); len(got) != 0 {
		t.Fatalf("eq across sorts should fail")
	}
	got := solve(t, "eq", []value.Value{value.Str("a"), {}}, "bn")
	if len(got) != 1 || !got[0][1].Equal(value.Str("a")) {
		t.Fatalf("eq(a,X) = %v", got)
	}
	if got := solve(t, "neq", []value.Value{value.Str("a"), value.Int(1)}, "bb"); len(got) != 1 {
		t.Fatalf("neq across sorts should hold")
	}
}

func TestSortUArgsFailArithmetic(t *testing.T) {
	b, _ := Lookup("add")
	got, err := b.Solve([]value.Value{value.Str("a"), value.Int(1), value.Int(2)}, mask("bbb"))
	if err != nil || len(got) != 0 {
		t.Fatalf("add with u-constant: got %v, %v; want silent failure", got, err)
	}
}

func TestArityMismatchRejected(t *testing.T) {
	b, _ := Lookup("add")
	if _, err := b.Solve(iv(1, 2), []bool{true, true}); err == nil {
		t.Fatalf("wrong arity not rejected")
	}
}

func TestPatternHelper(t *testing.T) {
	if Pattern([]bool{true, false, true}) != "bnb" {
		t.Fatalf("Pattern = %q", Pattern([]bool{true, false, true}))
	}
}

// Property: for every (a,b) the functional patterns agree with the
// checking pattern.
func TestAddConsistencyQuick(t *testing.T) {
	add, _ := Lookup("add")
	f := func(a, b uint8) bool {
		x, y := int64(a), int64(b)
		sols, err := add.Solve(iv(x, y, 0), mask("bbn"))
		if err != nil || len(sols) != 1 {
			return false
		}
		c := sols[0][2].Num
		chk, err := add.Solve(iv(x, y, c), mask("bbb"))
		return err == nil && len(chk) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMulEnumerationSoundCompleteQuick(t *testing.T) {
	mul, _ := Lookup("mul")
	f := func(cRaw uint8) bool {
		c := int64(cRaw%50) + 1
		sols, err := mul.Solve(iv(0, 0, c), mask("nnb"))
		if err != nil {
			return false
		}
		// Soundness + count completeness by brute force.
		want := 0
		for a := int64(1); a <= c; a++ {
			if c%a == 0 {
				want++
			}
		}
		if len(sols) != want {
			return false
		}
		for _, s := range sols {
			if s[0].Num*s[1].Num != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDivIntervalPropertyQuick(t *testing.T) {
	div, _ := Lookup("div")
	f := func(bRaw, cRaw uint8) bool {
		b := int64(bRaw%9) + 1
		c := int64(cRaw % 20)
		sols, err := div.Solve(iv(0, b, c), mask("nbb"))
		if err != nil || int64(len(sols)) != b {
			return false
		}
		for _, s := range sols {
			if s[0].Num/b != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
