// Package arith implements IDLOG's interpreted predicates over the
// natural numbers (§2.2 of the paper): succ, the arithmetic relations
// add/sub/mul/div/mod, the comparisons, and sort-polymorphic equality.
//
// Each predicate declares its admissible binding patterns — strings of
// 'b' (bound) and 'n' (not bound) — following the paper's sufficient
// safety condition. For add (the paper's "+", read add(A,B,C) as A+B=C)
// the allowed patterns are bbb, bbn, bnb, nbb and nnb: the equation
// A+B=C has finitely many solutions whenever C is bound, even with both
// A and B free. The analyzer consults these tables when ordering clause
// bodies; the evaluator calls Solve to enumerate solutions at run time.
package arith

import (
	"fmt"
	"sort"

	"idlog/internal/value"
)

// Builtin describes one interpreted predicate.
type Builtin struct {
	// Name is the predicate name as written in programs.
	Name string
	// Arity is the number of arguments.
	Arity int
	// Patterns is the set of admissible binding patterns, each of length
	// Arity over the alphabet {b, n}.
	Patterns map[string]bool
	// Polymorphic marks predicates (eq, neq) that accept either sort;
	// all other built-ins require every bound argument to be of sort i.
	Polymorphic bool
	// solve enumerates the full-arity solutions consistent with the bound
	// arguments. bound[i] reports whether args[i] is meaningful.
	solve func(args []value.Value, bound []bool) ([][]value.Value, error)
}

// Lookup returns the builtin for name.
func Lookup(name string) (*Builtin, bool) {
	b, ok := registry[name]
	return b, ok
}

// IsBuiltin reports whether name denotes an interpreted predicate.
func IsBuiltin(name string) bool {
	_, ok := registry[name]
	return ok
}

// Names returns all builtin names, sorted; useful for documentation and
// tests.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Pattern builds the binding-pattern string for the given mask.
func Pattern(bound []bool) string {
	buf := make([]byte, len(bound))
	for i, b := range bound {
		if b {
			buf[i] = 'b'
		} else {
			buf[i] = 'n'
		}
	}
	return string(buf)
}

// Allowed reports whether the builtin admits the binding pattern.
func (b *Builtin) Allowed(pattern string) bool { return b.Patterns[pattern] }

// Solve enumerates solutions. It validates the binding pattern and the
// sorts of bound arguments, then delegates to the predicate's solver.
// The returned tuples have the builtin's full arity with every position
// filled.
func (b *Builtin) Solve(args []value.Value, bound []bool) ([][]value.Value, error) {
	if len(args) != b.Arity || len(bound) != b.Arity {
		return nil, fmt.Errorf("%s/%d: called with %d args", b.Name, b.Arity, len(args))
	}
	pat := Pattern(bound)
	if !b.Patterns[pat] {
		return nil, fmt.Errorf("%s: binding pattern %s is unsafe (allowed: %s)", b.Name, pat, b.patternList())
	}
	if !b.Polymorphic {
		for i, bd := range bound {
			if bd && !args[i].IsInt() {
				// A u-constant can never satisfy an arithmetic relation;
				// this is a failed match, not an error.
				return nil, nil
			}
		}
	}
	return b.solve(args, bound)
}

func (b *Builtin) patternList() string {
	pats := make([]string, 0, len(b.Patterns))
	for p := range b.Patterns {
		pats = append(pats, p)
	}
	sort.Strings(pats)
	s := ""
	for i, p := range pats {
		if i > 0 {
			s += ","
		}
		s += p
	}
	return s
}

func pats(ps ...string) map[string]bool {
	m := make(map[string]bool, len(ps))
	for _, p := range ps {
		m[p] = true
	}
	return m
}

func one(vals ...value.Value) [][]value.Value {
	return [][]value.Value{vals}
}

var registry = map[string]*Builtin{}

func register(b *Builtin) { registry[b.Name] = b }

func init() {
	register(&Builtin{
		Name: "succ", Arity: 2,
		Patterns: pats("bb", "bn", "nb"),
		solve:    solveSucc,
	})
	register(&Builtin{
		Name: "add", Arity: 3,
		Patterns: pats("bbb", "bbn", "bnb", "nbb", "nnb"),
		solve:    solveAdd,
	})
	register(&Builtin{
		Name: "sub", Arity: 3,
		Patterns: pats("bbb", "bbn", "bnb", "nbb"),
		solve:    solveSub,
	})
	register(&Builtin{
		Name: "mul", Arity: 3,
		Patterns: pats("bbb", "bbn", "bnb", "nbb", "nnb"),
		solve:    solveMul,
	})
	register(&Builtin{
		Name: "div", Arity: 3,
		Patterns: pats("bbb", "bbn", "nbb"),
		solve:    solveDiv,
	})
	register(&Builtin{
		Name: "mod", Arity: 3,
		Patterns: pats("bbb", "bbn"),
		solve:    solveMod,
	})
	for _, cmp := range []struct {
		name string
		ok   func(int) bool
	}{
		{"lt", func(c int) bool { return c < 0 }},
		{"le", func(c int) bool { return c <= 0 }},
		{"gt", func(c int) bool { return c > 0 }},
		{"ge", func(c int) bool { return c >= 0 }},
	} {
		ok := cmp.ok
		register(&Builtin{
			Name: cmp.name, Arity: 2,
			Patterns: pats("bb"),
			solve: func(args []value.Value, bound []bool) ([][]value.Value, error) {
				if !args[0].IsInt() || !args[1].IsInt() {
					return nil, nil
				}
				if ok(args[0].Compare(args[1])) {
					return one(args[0], args[1]), nil
				}
				return nil, nil
			},
		})
	}
	register(&Builtin{
		Name: "eq", Arity: 2,
		Patterns:    pats("bb", "bn", "nb"),
		Polymorphic: true,
		solve:       solveEq,
	})
	register(&Builtin{
		Name: "neq", Arity: 2,
		Patterns:    pats("bb"),
		Polymorphic: true,
		solve: func(args []value.Value, bound []bool) ([][]value.Value, error) {
			if !args[0].Equal(args[1]) {
				return one(args[0], args[1]), nil
			}
			return nil, nil
		},
	})
}

func solveSucc(args []value.Value, bound []bool) ([][]value.Value, error) {
	switch {
	case bound[0] && bound[1]:
		if args[0].Num+1 == args[1].Num {
			return one(args[0], args[1]), nil
		}
	case bound[0]:
		return one(args[0], value.Int(args[0].Num+1)), nil
	case bound[1]:
		if args[1].Num >= 1 {
			return one(value.Int(args[1].Num-1), args[1]), nil
		}
	}
	return nil, nil
}

func solveAdd(args []value.Value, bound []bool) ([][]value.Value, error) {
	a, b, c := args[0], args[1], args[2]
	switch Pattern(bound) {
	case "bbb":
		if a.Num+b.Num == c.Num {
			return one(a, b, c), nil
		}
	case "bbn":
		return one(a, b, value.Int(a.Num+b.Num)), nil
	case "bnb":
		if d := c.Num - a.Num; d >= 0 {
			return one(a, value.Int(d), c), nil
		}
	case "nbb":
		if d := c.Num - b.Num; d >= 0 {
			return one(value.Int(d), b, c), nil
		}
	case "nnb":
		// A + B = C with C bound: the paper's motivating finite case
		// (equation L + M = 1 has two solutions).
		if c.Num < 0 {
			return nil, nil
		}
		sols := make([][]value.Value, 0, c.Num+1)
		for x := int64(0); x <= c.Num; x++ {
			sols = append(sols, []value.Value{value.Int(x), value.Int(c.Num - x), c})
		}
		return sols, nil
	}
	return nil, nil
}

func solveSub(args []value.Value, bound []bool) ([][]value.Value, error) {
	// sub(A,B,C) holds iff A - B = C over the naturals (A >= B).
	a, b, c := args[0], args[1], args[2]
	switch Pattern(bound) {
	case "bbb":
		if a.Num-b.Num == c.Num && c.Num >= 0 {
			return one(a, b, c), nil
		}
	case "bbn":
		if d := a.Num - b.Num; d >= 0 {
			return one(a, b, value.Int(d)), nil
		}
	case "bnb":
		if d := a.Num - c.Num; d >= 0 {
			return one(a, value.Int(d), c), nil
		}
	case "nbb":
		return one(value.Int(b.Num+c.Num), b, c), nil
	}
	return nil, nil
}

func solveMul(args []value.Value, bound []bool) ([][]value.Value, error) {
	a, b, c := args[0], args[1], args[2]
	switch Pattern(bound) {
	case "bbb":
		if a.Num*b.Num == c.Num {
			return one(a, b, c), nil
		}
	case "bbn":
		return one(a, b, value.Int(a.Num*b.Num)), nil
	case "bnb":
		if a.Num == 0 {
			if c.Num == 0 {
				return nil, fmt.Errorf("mul: 0 * B = 0 has unboundedly many solutions")
			}
			return nil, nil
		}
		if c.Num%a.Num == 0 && c.Num/a.Num >= 0 {
			return one(a, value.Int(c.Num/a.Num), c), nil
		}
	case "nbb":
		if b.Num == 0 {
			if c.Num == 0 {
				return nil, fmt.Errorf("mul: A * 0 = 0 has unboundedly many solutions")
			}
			return nil, nil
		}
		if c.Num%b.Num == 0 && c.Num/b.Num >= 0 {
			return one(value.Int(c.Num/b.Num), b, c), nil
		}
	case "nnb":
		if c.Num == 0 {
			return nil, fmt.Errorf("mul: A * B = 0 has unboundedly many solutions")
		}
		if c.Num < 0 {
			return nil, nil
		}
		var sols [][]value.Value
		for x := int64(1); x*x <= c.Num; x++ {
			if c.Num%x != 0 {
				continue
			}
			y := c.Num / x
			sols = append(sols, []value.Value{value.Int(x), value.Int(y), c})
			if x != y {
				sols = append(sols, []value.Value{value.Int(y), value.Int(x), c})
			}
		}
		return sols, nil
	}
	return nil, nil
}

func solveDiv(args []value.Value, bound []bool) ([][]value.Value, error) {
	// div(A,B,C) holds iff B > 0 and A div B = C (floor division).
	a, b, c := args[0], args[1], args[2]
	switch Pattern(bound) {
	case "bbb":
		if b.Num > 0 && a.Num >= 0 && a.Num/b.Num == c.Num {
			return one(a, b, c), nil
		}
	case "bbn":
		if b.Num > 0 && a.Num >= 0 {
			return one(a, b, value.Int(a.Num/b.Num)), nil
		}
	case "nbb":
		// A ranges over the finite interval [B*C, B*C+B-1].
		if b.Num <= 0 || c.Num < 0 {
			return nil, nil
		}
		sols := make([][]value.Value, 0, b.Num)
		for x := b.Num * c.Num; x < b.Num*(c.Num+1); x++ {
			sols = append(sols, []value.Value{value.Int(x), b, c})
		}
		return sols, nil
	}
	return nil, nil
}

func solveMod(args []value.Value, bound []bool) ([][]value.Value, error) {
	// mod(A,B,C) holds iff B > 0 and A mod B = C.
	a, b, c := args[0], args[1], args[2]
	switch Pattern(bound) {
	case "bbb":
		if b.Num > 0 && a.Num >= 0 && a.Num%b.Num == c.Num {
			return one(a, b, c), nil
		}
	case "bbn":
		if b.Num > 0 && a.Num >= 0 {
			return one(a, b, value.Int(a.Num%b.Num)), nil
		}
	}
	return nil, nil
}

func solveEq(args []value.Value, bound []bool) ([][]value.Value, error) {
	switch Pattern(bound) {
	case "bb":
		if args[0].Equal(args[1]) {
			return one(args[0], args[1]), nil
		}
	case "bn":
		return one(args[0], args[0]), nil
	case "nb":
		return one(args[1], args[1]), nil
	}
	return nil, nil
}
