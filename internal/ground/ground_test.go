package ground

import (
	"strings"
	"testing"

	"idlog/internal/ast"
	"idlog/internal/core"
	"idlog/internal/parser"
	"idlog/internal/value"
)

func rulesOf(t *testing.T, src string) ([]Rule, map[string]bool) {
	t.Helper()
	prog, err := parser.Program(src)
	if err != nil {
		t.Fatal(err)
	}
	idb := map[string]bool{}
	var rules []Rule
	for _, c := range prog.Clauses {
		idb[c.Head.Pred] = true
		rules = append(rules, Rule{Head: []*ast.Atom{c.Head}, Body: c.Body})
	}
	return rules, idb
}

func TestGroundResolvesEDB(t *testing.T) {
	rules, idb := rulesOf(t, `win(X) :- move(X, Y), not win(Y).`)
	db := core.NewDatabase()
	_ = db.AddAll("move", value.Strs("a", "b"), value.Strs("b", "a"))
	g, err := Ground(rules, db, idb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Only instances whose move-literal holds survive: (a,b) and (b,a).
	if len(g.Clauses) != 2 {
		t.Fatalf("clauses = %d, want 2: %+v", len(g.Clauses), g.Clauses)
	}
	for _, c := range g.Clauses {
		if len(c.Pos) != 0 || len(c.Neg) != 1 || len(c.Head) != 1 {
			t.Fatalf("clause shape wrong: %+v", c)
		}
	}
	// Candidate atoms: win(a), win(b).
	if len(g.Atoms) != 2 {
		t.Fatalf("atoms = %v", g.Atoms)
	}
}

func TestGroundFiltersBuiltins(t *testing.T) {
	rules, idb := rulesOf(t, `small(X) :- num(X), X < 2.`)
	db := core.NewDatabase()
	_ = db.AddAll("num", value.Ints(0), value.Ints(1), value.Ints(5))
	g, err := Ground(rules, db, idb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Clauses) != 2 {
		t.Fatalf("clauses = %d, want 2 (0 and 1)", len(g.Clauses))
	}
}

func TestGroundNegatedEDB(t *testing.T) {
	rules, idb := rulesOf(t, `out(X) :- node(X), not bad(X).`)
	db := core.NewDatabase()
	_ = db.AddAll("node", value.Strs("a"), value.Strs("b"))
	_ = db.Add("bad", value.Strs("b"))
	g, err := Ground(rules, db, idb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Clauses) != 1 || g.Clauses[0].Head[0].String() != "out(a)" {
		t.Fatalf("clauses = %+v", g.Clauses)
	}
}

func TestGroundBudget(t *testing.T) {
	rules, idb := rulesOf(t, `p(X, Y, Z) :- d(X), d(Y), d(Z).`)
	db := core.NewDatabase()
	for i := 0; i < 10; i++ {
		_ = db.Add("d", value.Ints(int64(i)))
	}
	_, err := Ground(rules, db, idb, Options{MaxClauses: 50})
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("err = %v", err)
	}
}

func TestLeastModel(t *testing.T) {
	// a. b :- a. c :- b, a. d :- e.
	at := func(n string) Atom { return Atom{Pred: n} }
	clauses := []Clause{
		{Head: []Atom{at("a")}},
		{Head: []Atom{at("b")}, Pos: []Atom{at("a")}},
		{Head: []Atom{at("c")}, Pos: []Atom{at("b"), at("a")}},
		{Head: []Atom{at("d")}, Pos: []Atom{at("e")}},
	}
	m := LeastModel(clauses)
	if !m[at("a").Key()] || !m[at("b").Key()] || !m[at("c").Key()] || m[at("d").Key()] {
		t.Fatalf("least model = %v", m)
	}
}

func TestAtomString(t *testing.T) {
	a := Atom{Pred: "p", Tuple: value.Strs("x")}
	if a.String() != "p(x)" {
		t.Fatalf("String = %q", a.String())
	}
	prop := Atom{Pred: "q1"}
	if prop.String() != "q1" {
		t.Fatalf("propositional String = %q", prop.String())
	}
}

func TestActiveDomainIncludesProgramConstants(t *testing.T) {
	rules, idb := rulesOf(t, `p(c) :- not q(c).`)
	g, err := Ground(rules, core.NewDatabase(), idb, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// q is EDB (empty), so not q(c) holds; head p(c) survives.
	if len(g.Clauses) != 1 || g.Clauses[0].Head[0].String() != "p(c)" {
		t.Fatalf("clauses = %+v", g.Clauses)
	}
}
