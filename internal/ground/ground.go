// Package ground instantiates DATALOG¬ clauses over the active domain.
// It is the substrate for the alternative non-deterministic semantics
// that §3.2 of the paper surveys — stable models (internal/stable) and
// disjunctive minimal models (internal/disjunctive) — both of which are
// defined on ground programs.
//
// Grounding is active-domain: clause variables range over the constants
// of the input database and the program. Interpreted literals act as
// filters (they must be fully instantiated by the assignment), and
// literals over input (EDB) predicates are resolved immediately against
// the database, so the ground clauses mention only derived atoms.
package ground

import (
	"fmt"
	"sort"

	"idlog/internal/arith"
	"idlog/internal/ast"
	"idlog/internal/core"
	"idlog/internal/value"
)

// Atom is a ground atom.
type Atom struct {
	Pred  string
	Tuple value.Tuple
}

// Key returns a canonical map key.
func (a Atom) Key() string { return a.Pred + "(" + a.Tuple.Key() + ")" }

// String renders the atom.
func (a Atom) String() string {
	s := a.Pred
	if len(a.Tuple) > 0 {
		s += a.Tuple.String()
	}
	return s
}

// Clause is a ground clause: disjunctive/conjunctive head atoms and a
// body of positive and negated derived atoms (EDB and interpreted
// literals have been resolved away).
type Clause struct {
	Head []Atom
	Neg  []Atom // negated body atoms (over derived predicates)
	Pos  []Atom // positive body atoms (over derived predicates)
}

// Program is the grounding result.
type Program struct {
	Clauses []Clause
	// Atoms is the set of derivable ground atoms (head occurrences),
	// sorted by key: the candidate space for model search.
	Atoms []Atom
}

// AtomKeys returns the candidate atom keys, sorted.
func (p *Program) AtomKeys() []string {
	out := make([]string, len(p.Atoms))
	for i, a := range p.Atoms {
		out[i] = a.Key()
	}
	return out
}

// Options bounds the grounding.
type Options struct {
	// MaxClauses aborts when more ground clauses are produced (default
	// 200000): active-domain grounding is exponential in clause width.
	MaxClauses int
}

// Rule pairs a (possibly multi-atom) head with a body, the generalized
// clause shape shared by stable (single head) and disjunctive
// (multi-head) programs.
type Rule struct {
	Head []*ast.Atom
	Body []*ast.Literal
}

// Ground instantiates the rules over db's active domain. idb must hold
// the derived predicate names (head predicates); every other relational
// literal is resolved against db.
func Ground(rules []Rule, db *core.Database, idb map[string]bool, opts Options) (*Program, error) {
	maxClauses := opts.MaxClauses
	if maxClauses == 0 {
		maxClauses = 200000
	}
	domain := activeDomain(rules, db)
	prog := &Program{}
	atomSet := map[string]Atom{}

	for _, r := range rules {
		vars := ruleVars(r)
		assignment := map[string]value.Value{}
		var walk func(i int) error
		walk = func(i int) error {
			if i == len(vars) {
				gc, ok, err := instantiate(r, assignment, db, idb)
				if err != nil {
					return err
				}
				if !ok {
					return nil
				}
				if len(prog.Clauses) >= maxClauses {
					return fmt.Errorf("ground: clause budget %d exceeded", maxClauses)
				}
				prog.Clauses = append(prog.Clauses, gc)
				for _, a := range gc.Head {
					atomSet[a.Key()] = a
				}
				return nil
			}
			for _, d := range domain {
				assignment[vars[i]] = d
				if err := walk(i + 1); err != nil {
					return err
				}
			}
			return nil
		}
		if err := walk(0); err != nil {
			return nil, err
		}
	}
	keys := make([]string, 0, len(atomSet))
	for k := range atomSet {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		prog.Atoms = append(prog.Atoms, atomSet[k])
	}
	return prog, nil
}

// instantiate evaluates one total assignment: EDB and interpreted
// literals are checked now; derived literals become the ground body.
// ok is false when a check fails (the instance is vacuous).
func instantiate(r Rule, env map[string]value.Value, db *core.Database, idb map[string]bool) (Clause, bool, error) {
	var gc Clause
	groundTuple := func(args []ast.Term) (value.Tuple, error) {
		t := make(value.Tuple, len(args))
		for i, a := range args {
			switch a := a.(type) {
			case ast.Const:
				t[i] = a.Val
			case ast.Var:
				v, ok := env[a.Name]
				if !ok {
					return nil, fmt.Errorf("ground: unbound variable %s", a.Name)
				}
				t[i] = v
			}
		}
		return t, nil
	}
	for _, l := range r.Body {
		a := l.Atom
		if b, ok := arith.Lookup(a.Pred); ok {
			t, err := groundTuple(a.Args)
			if err != nil {
				return gc, false, err
			}
			mask := make([]bool, len(t))
			for i := range mask {
				mask[i] = true
			}
			sols, err := b.Solve(t, mask)
			if err != nil {
				return gc, false, err
			}
			holds := len(sols) > 0
			if holds == l.Neg {
				return gc, false, nil
			}
			continue
		}
		t, err := groundTuple(a.Args)
		if err != nil {
			return gc, false, err
		}
		if !idb[a.Pred] {
			rel := db.Relation(a.Pred)
			holds := rel != nil && rel.Contains(t)
			if holds == l.Neg {
				return gc, false, nil
			}
			continue
		}
		ga := Atom{Pred: a.Pred, Tuple: t}
		if l.Neg {
			gc.Neg = append(gc.Neg, ga)
		} else {
			gc.Pos = append(gc.Pos, ga)
		}
	}
	for _, h := range r.Head {
		t, err := groundTuple(h.Args)
		if err != nil {
			return gc, false, err
		}
		gc.Head = append(gc.Head, Atom{Pred: h.Pred, Tuple: t})
	}
	return gc, true, nil
}

// ruleVars returns the distinct variable names of a rule.
func ruleVars(r Rule) []string {
	seen := map[string]bool{}
	var out []string
	add := func(args []ast.Term) {
		for _, t := range args {
			if v, ok := t.(ast.Var); ok && !seen[v.Name] {
				seen[v.Name] = true
				out = append(out, v.Name)
			}
		}
	}
	for _, h := range r.Head {
		add(h.Args)
	}
	for _, l := range r.Body {
		add(l.Atom.Args)
	}
	return out
}

// activeDomain collects the constants of the database and the rules,
// sorted canonically.
func activeDomain(rules []Rule, db *core.Database) []value.Value {
	set := map[string]value.Value{}
	addVal := func(v value.Value) { set[value.Tuple{v}.Key()] = v }
	for _, name := range db.Names() {
		for _, t := range db.Relation(name).Tuples() {
			for _, v := range t {
				addVal(v)
			}
		}
	}
	for _, r := range rules {
		for _, h := range r.Head {
			for _, t := range h.Args {
				if c, ok := t.(ast.Const); ok {
					addVal(c.Val)
				}
			}
		}
		for _, l := range r.Body {
			for _, t := range l.Atom.Args {
				if c, ok := t.(ast.Const); ok {
					addVal(c.Val)
				}
			}
		}
	}
	out := make([]value.Value, 0, len(set))
	for _, v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// LeastModel computes the least model of the positive part of the
// ground clauses (treating every clause as definite: first head atom;
// callers pass reducts whose heads are singletons). given holds the
// atoms assumed true from the start.
func LeastModel(clauses []Clause) map[string]bool {
	model := map[string]bool{}
	for changed := true; changed; {
		changed = false
		for _, c := range clauses {
			if len(c.Head) != 1 || len(c.Neg) != 0 {
				continue // not definite; caller should have reduced
			}
			ok := true
			for _, p := range c.Pos {
				if !model[p.Key()] {
					ok = false
					break
				}
			}
			if ok && !model[c.Head[0].Key()] {
				model[c.Head[0].Key()] = true
				changed = true
			}
		}
	}
	return model
}
