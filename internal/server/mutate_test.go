package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"io"
	"os"

	"idlog"
	"idlog/internal/fault"
	"idlog/internal/guard"
	"idlog/internal/storage"
	"idlog/internal/wal"
)

func TestBaseFactsMutation(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// The base database starts empty: a sessionless query sees nothing.
	var qr queryResponse
	code := post(t, ts.URL+"/v1/query", queryRequest{Source: tcProgram, Goal: "tc(a, X)"}, &qr)
	if code != 200 || len(qr.Rows) != 0 {
		t.Fatalf("empty base: status %d rows %d", code, len(qr.Rows))
	}

	var mr mutateResponse
	code = post(t, ts.URL+"/v1/facts", factsRequest{Inserts: tcFacts}, &mr)
	if code != 200 || mr.Inserted != 3 || mr.Deleted != 0 {
		t.Fatalf("base insert: status %d resp %+v", code, mr)
	}
	qr = queryResponse{}
	post(t, ts.URL+"/v1/query", queryRequest{Source: tcProgram, Goal: "tc(a, X)"}, &qr)
	if len(qr.Rows) != 3 {
		t.Fatalf("after base insert: %d rows, want 3", len(qr.Rows))
	}

	// Deletes apply before inserts; no-ops are excluded from the counts.
	mr = mutateResponse{}
	code = post(t, ts.URL+"/v1/facts", factsRequest{
		Inserts: "edge(c, d).", Deletes: "edge(a, b). edge(zz, zz)."}, &mr)
	if code != 200 || mr.Inserted != 0 || mr.Deleted != 1 {
		t.Fatalf("base mixed: status %d resp %+v", code, mr)
	}
	qr = queryResponse{}
	post(t, ts.URL+"/v1/query", queryRequest{Source: tcProgram, Goal: "tc(a, X)"}, &qr)
	if len(qr.Rows) != 0 {
		t.Fatalf("after deleting edge(a,b): %d rows, want 0", len(qr.Rows))
	}

	// Typed rejection: an empty mutation and a non-fact body.
	var eb errorBody
	if code := post(t, ts.URL+"/v1/facts", factsRequest{}, &eb); code != 400 {
		t.Fatalf("empty mutation: status %d", code)
	}
	if code := post(t, ts.URL+"/v1/facts", factsRequest{Inserts: "p(X) :- q(X)."}, &eb); code != 400 {
		t.Fatalf("rule as fact: status %d", code)
	}
}

func TestLiveViewLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	if code := post(t, ts.URL+"/v1/sessions", sessionRequest{Name: "s1", Facts: tcFacts}, nil); code != 200 {
		t.Fatalf("create session: status %d", code)
	}
	var vi viewInfo
	code := post(t, ts.URL+"/v1/sessions/s1/views", viewRequest{Name: "v1", Source: tcProgram}, &vi)
	if code != 200 || vi.Relations["tc"] != 6 {
		t.Fatalf("create view: status %d info %+v", code, vi)
	}

	// Query the view: relations served from the maintained model.
	var qr queryResponse
	code = post(t, ts.URL+"/v1/query", queryRequest{Session: "s1", View: "v1", Predicates: []string{"tc"}}, &qr)
	if code != 200 || len(qr.Relations["tc"].Tuples) != 6 {
		t.Fatalf("view query: status %d relations %+v", code, qr.Relations)
	}

	// A mutation maintains the view incrementally and reports per-view
	// stats in the acknowledgment.
	var mr mutateResponse
	code = post(t, ts.URL+"/v1/sessions/s1/facts", factsRequest{
		Inserts: "edge(d, e).", Deletes: "edge(a, b)."}, &mr)
	if code != 200 || len(mr.Views) != 1 {
		t.Fatalf("mutate: status %d resp %+v", code, mr)
	}
	vu := mr.Views[0]
	if vu.Name != "v1" || vu.Rebuilt || vu.Dropped || vu.FallbackFrom != -1 {
		t.Fatalf("view update: %+v", vu)
	}
	qr = queryResponse{}
	post(t, ts.URL+"/v1/query", queryRequest{Session: "s1", View: "v1", Predicates: []string{"tc"}}, &qr)
	got := qr.Relations["tc"].Text
	want := "{(b, c), (b, d), (b, e), (c, d), (c, e), (d, e)}"
	if !strings.Contains(got, "(b, e)") || strings.Contains(got, "(a,") {
		t.Fatalf("view after mutation: %s, want %s", got, want)
	}

	// The listing carries cumulative update stats.
	var listing struct {
		Views []viewInfo `json:"views"`
	}
	if code := get(t, ts.URL+"/v1/sessions/s1/views", &listing); code != 200 || len(listing.Views) != 1 {
		t.Fatalf("list views: status %d %+v", code, listing.Views)
	}
	if listing.Views[0].Updates.Deleted == 0 {
		t.Fatalf("cumulative stats missing deletions: %+v", listing.Views[0].Updates)
	}

	// Duplicate view names conflict; unknown view queries 404.
	if code := post(t, ts.URL+"/v1/sessions/s1/views", viewRequest{Name: "v1", Source: tcProgram}, nil); code != 409 {
		t.Fatalf("duplicate view: status %d", code)
	}
	if code := post(t, ts.URL+"/v1/query", queryRequest{Session: "s1", View: "nope", Predicates: []string{"tc"}}, nil); code != 404 {
		t.Fatalf("unknown view: status %d", code)
	}
}

// TestWALReplayRoundTrip: mutations to the base and to a session are
// durable across a restart — the replayed server answers identically.
func TestWALReplayRoundTrip(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "idlogd.wal")

	s1 := New(Config{})
	if err := s1.OpenWAL(walPath); err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	if code := post(t, ts1.URL+"/v1/facts", factsRequest{Inserts: tcFacts}, nil); code != 200 {
		t.Fatalf("base insert: status %d", code)
	}
	post(t, ts1.URL+"/v1/sessions", sessionRequest{Name: "s1"}, nil)
	if code := post(t, ts1.URL+"/v1/sessions/s1/facts", factsRequest{Inserts: "edge(x, y)."}, nil); code != 200 {
		t.Fatalf("session insert: status %d", code)
	}
	if code := post(t, ts1.URL+"/v1/facts", factsRequest{Deletes: "edge(b, c)."}, nil); code != 200 {
		t.Fatalf("base delete: status %d", code)
	}
	ts1.Close()
	s1.Close() // closes the WAL

	// "Restart": a fresh server over the same WAL path.
	s2 := New(Config{})
	if err := s2.OpenWAL(walPath); err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	t.Cleanup(func() { ts2.Close(); s2.Close() })

	var qr queryResponse
	post(t, ts2.URL+"/v1/query", queryRequest{Source: tcProgram, Predicates: []string{"edge"}}, &qr)
	if qr.Relations["edge"].Text != "edge{(a, b), (c, d)}" {
		t.Fatalf("replayed base edge = %s", qr.Relations["edge"].Text)
	}
	qr = queryResponse{}
	code := post(t, ts2.URL+"/v1/query", queryRequest{Source: tcProgram, Session: "s1", Predicates: []string{"edge"}}, &qr)
	if code != 200 || qr.Relations["edge"].Text != "edge{(x, y)}" {
		t.Fatalf("replayed session edge: status %d rel %s", code, qr.Relations["edge"].Text)
	}
}

// TestWALCrashRecovery is the crash-consistency contract: a mutation
// torn mid-append (guard fault injection) is never acknowledged and
// never survives; every acknowledged mutation survives; the torn tail
// is rejected by CRC on restart and truncated away.
func TestWALCrashRecovery(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "idlogd.wal")

	s1 := New(Config{})
	if err := s1.OpenWAL(walPath); err != nil {
		t.Fatal(err)
	}
	// Arm the fault: the third append dies halfway through its write.
	g := guard.New(nil, guard.Limits{})
	g.Inject(guard.TornWrite(3))
	s1.WAL().InjectFault(g)

	ts1 := httptest.NewServer(s1.Handler())
	if code := post(t, ts1.URL+"/v1/facts", factsRequest{Inserts: "edge(a, b)."}, nil); code != 200 {
		t.Fatalf("first mutation: status %d", code)
	}
	if code := post(t, ts1.URL+"/v1/facts", factsRequest{Inserts: "edge(b, c)."}, nil); code != 200 {
		t.Fatalf("second mutation: status %d", code)
	}
	// The third mutation crashes mid-append: a typed 503 with
	// Retry-After, no acknowledgment, and the in-memory snapshot must
	// NOT advance past the WAL.
	var eb errorBody
	if code := post(t, ts1.URL+"/v1/facts", factsRequest{Inserts: "edge(c, d)."}, &eb); code != 503 || eb.Error.Code != "wal_degraded" {
		t.Fatalf("torn mutation: status %d body %+v", code, eb)
	}
	var qr queryResponse
	post(t, ts1.URL+"/v1/query", queryRequest{Source: tcProgram, Predicates: []string{"edge"}}, &qr)
	if qr.Relations["edge"].Text != "edge{(a, b), (b, c)}" {
		t.Fatalf("unacknowledged mutation applied: %s", qr.Relations["edge"].Text)
	}
	// Degraded mode is sticky: the next mutation is refused up front
	// (503, same code) even though the fault fired only once, and reads
	// keep serving.
	eb = errorBody{}
	if code := post(t, ts1.URL+"/v1/facts", factsRequest{Inserts: "edge(d, e)."}, &eb); code != 503 || eb.Error.Code != "wal_degraded" {
		t.Fatalf("post-degrade mutation: status %d body %+v", code, eb)
	}
	if !s1.walDegraded.Load() {
		t.Fatal("server not marked degraded after WAL append failure")
	}
	var rz map[string]any
	if code := get(t, ts1.URL+"/readyz", &rz); code != 503 || rz["reason"] != "wal_degraded" {
		t.Fatalf("readyz while degraded: %d %+v", code, rz)
	}
	ts1.Close()
	s1.Close()

	// Restart: the torn entry must be truncated, the two acknowledged
	// mutations replayed — zero lost acknowledgments, zero partial
	// applications.
	l, recs, err := wal.Open(walPath)
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if len(recs) != 2 {
		t.Fatalf("replayed %d records, want the 2 acknowledged", len(recs))
	}
	s2 := New(Config{})
	if err := s2.OpenWAL(walPath); err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	t.Cleanup(func() { ts2.Close(); s2.Close() })
	qr = queryResponse{}
	post(t, ts2.URL+"/v1/query", queryRequest{Source: tcProgram, Predicates: []string{"edge"}}, &qr)
	if qr.Relations["edge"].Text != "edge{(a, b), (b, c)}" {
		t.Fatalf("recovered state: %s", qr.Relations["edge"].Text)
	}
}

// TestWALCheckpoint: once the WAL passes the entry threshold it is
// truncated behind a durable snapshot plus consolidated session
// entries, and a restart reproduces the exact pre-checkpoint state.
func TestWALCheckpoint(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "idlogd.wal")

	s1 := New(Config{WALCheckpointEntries: 3})
	if err := s1.OpenWAL(walPath); err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	post(t, ts1.URL+"/v1/sessions", sessionRequest{Name: "s1"}, nil)
	for _, f := range []string{"edge(a, b).", "edge(b, c).", "edge(c, d)."} {
		if code := post(t, ts1.URL+"/v1/facts", factsRequest{Inserts: f}, nil); code != 200 {
			t.Fatalf("mutation %q failed", f)
		}
	}
	if code := post(t, ts1.URL+"/v1/sessions/s1/facts", factsRequest{Inserts: "edge(s, t)."}, nil); code != 200 {
		t.Fatal("session mutation failed")
	}
	// The third base mutation crossed the threshold: the WAL now holds
	// only the post-checkpoint entries (session consolidation + the
	// session insert), not the three base mutations.
	if got := s1.WAL().Entries(); got >= 3 {
		t.Fatalf("WAL holds %d entries after checkpoint, want < 3", got)
	}
	if db, err := idlog.LoadSnapshot(walPath + ".snapshot"); err != nil {
		t.Fatalf("checkpoint snapshot: %v", err)
	} else if db.Relation("edge").Len() != 3 {
		t.Fatalf("snapshot edge count = %d", db.Relation("edge").Len())
	}
	ts1.Close()
	s1.Close()

	s2 := New(Config{})
	if err := s2.OpenWAL(walPath); err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	t.Cleanup(func() { ts2.Close(); s2.Close() })
	var qr queryResponse
	post(t, ts2.URL+"/v1/query", queryRequest{Source: tcProgram, Predicates: []string{"edge"}}, &qr)
	if qr.Relations["edge"].Text != "edge{(a, b), (b, c), (c, d)}" {
		t.Fatalf("base after checkpoint restart: %s", qr.Relations["edge"].Text)
	}
	qr = queryResponse{}
	code := post(t, ts2.URL+"/v1/query", queryRequest{Source: tcProgram, Session: "s1", Predicates: []string{"edge"}}, &qr)
	if code != 200 || qr.Relations["edge"].Text != "edge{(s, t)}" {
		t.Fatalf("session after checkpoint restart: status %d rel %s", code, qr.Relations["edge"].Text)
	}
}

// TestWALFsyncErrorDegrades is the fsyncgate regression: an fsync error
// on append is a durability failure, so the mutation is NOT
// acknowledged, the server flips sticky read-only (503 + Retry-After on
// every further mutation), and readiness drops — while reads keep
// serving. After a restart, every acknowledged mutation is present; the
// un-acknowledged one may or may not survive (the entry bytes reached
// the file, the fsync promise did not), and either outcome is legal.
func TestWALFsyncErrorDegrades(t *testing.T) {
	walPath := filepath.Join(t.TempDir(), "idlogd.wal")
	reg := fault.New()
	s1 := New(Config{Faults: reg})
	if err := s1.OpenWAL(walPath); err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())

	if code := post(t, ts1.URL+"/v1/facts", factsRequest{Inserts: "edge(a, b)."}, nil); code != 200 {
		t.Fatalf("first mutation: status %d", code)
	}
	reg.Arm(fault.WALAppendSync, fault.Fault{Err: errors.New("fsync: disk I/O error")})

	var eb errorBody
	req, _ := json.Marshal(factsRequest{Inserts: "edge(b, c)."})
	resp, err := http.Post(ts1.URL+"/v1/facts", "application/json", bytes.NewReader(req))
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(resp.Body).Decode(&eb)
	resp.Body.Close()
	if resp.StatusCode != 503 || eb.Error.Code != "wal_degraded" {
		t.Fatalf("fsync-failed mutation: status %d body %+v", resp.StatusCode, eb)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("degraded 503 carries no Retry-After")
	}
	// The failed mutation must not be visible.
	var qr queryResponse
	post(t, ts1.URL+"/v1/query", queryRequest{Source: tcProgram, Predicates: []string{"edge"}}, &qr)
	if qr.Relations["edge"].Text != "edge{(a, b)}" {
		t.Fatalf("un-acked mutation visible: %s", qr.Relations["edge"].Text)
	}
	// Sticky: disarming the fault does not un-degrade a poisoned log.
	reg.DisarmAll()
	eb = errorBody{}
	if code := post(t, ts1.URL+"/v1/facts", factsRequest{Inserts: "edge(c, d)."}, &eb); code != 503 || eb.Error.Code != "wal_degraded" {
		t.Fatalf("mutation after disarm: status %d body %+v", code, eb)
	}
	var rz map[string]any
	if code := get(t, ts1.URL+"/readyz", &rz); code != 503 || rz["reason"] != "wal_degraded" {
		t.Fatalf("readyz while degraded: %d %+v", code, rz)
	}
	ts1.Close()
	s1.Close()

	// Restart re-validates the log: the acknowledged mutation is there.
	s2 := New(Config{})
	if err := s2.OpenWAL(walPath); err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	t.Cleanup(func() { ts2.Close(); s2.Close() })
	qr = queryResponse{}
	post(t, ts2.URL+"/v1/query", queryRequest{Source: tcProgram, Predicates: []string{"edge"}}, &qr)
	if !strings.Contains(qr.Relations["edge"].Text, "(a, b)") {
		t.Fatalf("acknowledged mutation lost after restart: %s", qr.Relations["edge"].Text)
	}
	if code := post(t, ts2.URL+"/v1/facts", factsRequest{Inserts: "edge(x, y)."}, nil); code != 200 {
		t.Fatalf("mutation after restart: status %d", code)
	}
}

// TestDiskEngineCheckpointRestart is TestWALCheckpoint for the disk
// engine: the checkpoint writes a segment-file generation into the data
// directory instead of a .snapshot file, a restart loads the base EDB
// disk-resident (WAL tail replayed on top), and /metrics exposes the
// storage gauges.
func TestDiskEngineCheckpointRestart(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(dir, "idlogd.wal")
	dataDir := filepath.Join(dir, "data")
	cfg := Config{
		WALCheckpointEntries: 3,
		Engine:               storage.Engine{Kind: storage.EngineDisk, Dir: dataDir, CacheBytes: 1 << 20},
	}

	s1 := New(cfg)
	if err := s1.OpenWAL(walPath); err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	for _, f := range []string{"edge(a, b).", "edge(b, c).", "edge(c, d)."} {
		if code := post(t, ts1.URL+"/v1/facts", factsRequest{Inserts: f}, nil); code != 200 {
			t.Fatalf("mutation %q failed", f)
		}
	}
	// The third mutation crossed the threshold: the checkpoint must have
	// written a manifest into the data dir, and no .snapshot file.
	if !storage.DirExists(dataDir) {
		t.Fatal("checkpoint left no segment manifest in the data dir")
	}
	if _, err := os.Stat(walPath + ".snapshot"); err == nil {
		t.Fatal("disk engine wrote a .snapshot file")
	}
	// A post-checkpoint mutation lands only in the WAL tail.
	if code := post(t, ts1.URL+"/v1/facts", factsRequest{Inserts: "edge(d, e)."}, nil); code != 200 {
		t.Fatal("post-checkpoint mutation failed")
	}
	ts1.Close()
	s1.Close()

	// Restart: checkpointed facts come back disk-resident; the tail
	// replays on top of them.
	s2 := New(cfg)
	if err := s2.OpenWAL(walPath); err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	t.Cleanup(func() { ts2.Close(); s2.Close() })
	var qr queryResponse
	post(t, ts2.URL+"/v1/query", queryRequest{Source: tcProgram, Predicates: []string{"edge"}}, &qr)
	if qr.Relations["edge"].Text != "edge{(a, b), (b, c), (c, d), (d, e)}" {
		t.Fatalf("base after disk restart: %s", qr.Relations["edge"].Text)
	}
	// Queries ran against segment files: the storage metrics must show
	// cache traffic and the EDB gauge the restored tuple count.
	resp, err := http.Get(ts2.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		"idlogd_edb_tuples 4",
		"idlogd_storage_cache_hits_total",
		"idlogd_storage_cache_misses_total",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, text)
		}
	}
}
