package server

// Hot-standby replication, primary side. The primary keeps an
// in-memory, LSN-contiguous tail of recent WAL records (replState) and
// serves three endpoints:
//
//	GET /v1/replication/status    JSON: primary id, LSN positions,
//	                              state fingerprint
//	GET /v1/replication/snapshot  binary frame stream: one consolidated
//	                              entry per database (base + sessions)
//	                              at a consistent LSN, then EOS —
//	                              catch-up bootstrap for a follower the
//	                              log no longer covers
//	GET /v1/replication/stream?from=N
//	                              binary frame stream: entries from LSN
//	                              N onward, then live tailing with
//	                              heartbeats; ends with an EOS frame
//	                              (resumable) on drain, or a RESYNC
//	                              frame when a checkpoint truncated the
//	                              follower's position away
//
// The follower side lives in internal/replica; both share the frame
// codec in internal/wal (stream.go), so stream integrity gets the same
// CRC discipline as the on-disk log.
//
// LSN semantics: every acknowledged mutation carries one LSN, assigned
// under replState.mu in the same critical section as the WAL append,
// so LSN order == WAL file order == publication order. A follower that
// has applied LSN L holds exactly the primary's state at L (evaluation
// is deterministic, so equal EDBs mean equal models). Checkpoints
// rewrite the log as consolidation entries with fresh LSNs; state is
// preserved because consolidation entries are idempotent re-inserts.

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"hash/fnv"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"idlog"
	"idlog/internal/fault"
	"idlog/internal/wal"
)

// replState is the primary's replication tail: a contiguous run of
// records [startLSN, lastLSN] kept in memory for streaming, plus the
// subscriber registry that wakes tailing streams on publication.
type replState struct {
	mu       sync.Mutex
	id       string
	startLSN uint64 // LSN of buf[0]; followers behind this must resync
	lastLSN  uint64
	buf      []wal.Record
	maxBuf   int
	subs     map[chan struct{}]struct{}
}

func newReplState(id string, maxBuf int) *replState {
	if id == "" {
		var b [8]byte
		_, _ = rand.Read(b[:])
		id = hex.EncodeToString(b[:])
	}
	return &replState{
		id:       id,
		startLSN: 1,
		subs:     map[chan struct{}]struct{}{},
		maxBuf:   maxBuf,
	}
}

// init seeds the tail after WAL replay: recs are the replayed records
// sitting on a checkpoint at baseLSN.
func (r *replState) init(baseLSN uint64, recs []wal.Record) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.startLSN = baseLSN + 1
	r.buf = append([]wal.Record(nil), recs...)
	r.lastLSN = baseLSN
	if len(recs) > 0 {
		r.lastLSN = recs[len(recs)-1].LSN
	}
	r.trimLocked()
}

// publishLocked appends rec (LSN already assigned) to the tail and
// wakes subscribers. Callers hold r.mu.
func (r *replState) publishLocked(rec wal.Record) {
	r.buf = append(r.buf, rec)
	r.lastLSN = rec.LSN
	r.trimLocked()
	for ch := range r.subs {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// trimLocked bounds the in-memory tail; followers that fall behind the
// trimmed range take the snapshot path.
func (r *replState) trimLocked() {
	if r.maxBuf > 0 && len(r.buf) > r.maxBuf {
		drop := len(r.buf) - r.maxBuf
		r.startLSN = r.buf[drop].LSN
		r.buf = append([]wal.Record(nil), r.buf[drop:]...)
	}
}

// reset replaces the tail after a checkpoint at lsn with the
// consolidation records (already LSN-assigned, contiguous from lsn+1).
func (r *replState) reset(lsn uint64, recs []wal.Record) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.startLSN = lsn + 1
	r.buf = append([]wal.Record(nil), recs...)
	r.lastLSN = lsn
	if len(recs) > 0 {
		r.lastLSN = recs[len(recs)-1].LSN
	}
	for ch := range r.subs {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// entriesFrom returns a copy of the tail at or after LSN from. ok is
// false when the tail no longer reaches back to from (snapshot
// needed).
func (r *replState) entriesFrom(from uint64) (recs []wal.Record, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if from < r.startLSN {
		return nil, false
	}
	for _, rec := range r.buf {
		if rec.LSN >= from {
			recs = append(recs, rec)
		}
	}
	return recs, true
}

// positions reports (startLSN, lastLSN) atomically.
func (r *replState) positions() (uint64, uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.startLSN, r.lastLSN
}

func (r *replState) subscribe() (chan struct{}, func()) {
	ch := make(chan struct{}, 1)
	r.mu.Lock()
	r.subs[ch] = struct{}{}
	r.mu.Unlock()
	return ch, func() {
		r.mu.Lock()
		delete(r.subs, ch)
		r.mu.Unlock()
	}
}

// FollowerStatus is what a replication follower publishes into its
// local server: readiness inputs for /readyz and gauges for /metrics.
type FollowerStatus struct {
	Ready         bool
	Reason        string
	Connected     bool
	PrimaryID     string
	AppliedLSN    uint64
	PrimaryLSN    uint64
	LagEntries    uint64
	LastHeartbeat time.Time
	Resyncs       uint64
	Reconnects    uint64
}

// SetFollowerProbe registers the follower's status callback. The
// server consults it on /readyz (a follower is ready only within its
// lag/lease bounds) and /metrics (replication lag gauge).
func (s *Server) SetFollowerProbe(p func() FollowerStatus) {
	s.followerProbe.Store(&p)
}

func (s *Server) followerStatus() (FollowerStatus, bool) {
	p := s.followerProbe.Load()
	if p == nil {
		return FollowerStatus{}, false
	}
	return (*p)(), true
}

// PrimaryID returns this server's replication incarnation id. A
// follower that observes the id change knows the primary lost its
// in-memory history (restart without WAL) and resyncs from a snapshot.
func (s *Server) PrimaryID() string { return s.repl.id }

// LastLSN returns the LSN of the last acknowledged (or replicated)
// mutation.
func (s *Server) LastLSN() uint64 {
	_, last := s.repl.positions()
	return last
}

// logAndPublish assigns rec its LSN, makes it durable (when a WAL is
// armed), and publishes it to the replication tail — atomically with
// respect to other mutations, so LSN order, WAL order, and publication
// order coincide. Callers hold walMu.RLock (checkpoint exclusion).
func (s *Server) logAndPublish(rec wal.Record) (uint64, error) {
	s.repl.mu.Lock()
	defer s.repl.mu.Unlock()
	if s.wal != nil {
		lsn, err := s.wal.Append(rec)
		if err != nil {
			return 0, err
		}
		rec.LSN = lsn
	} else if rec.LSN == 0 {
		rec.LSN = s.repl.lastLSN + 1
	}
	s.repl.publishLocked(rec)
	return rec.LSN, nil
}

// StateFingerprint canonically fingerprints the full replicated state:
// the base database plus every session, every relation. Two servers
// with equal fingerprints hold byte-identical EDBs — and therefore,
// by deterministic evaluation, identical perfect models for any
// program. Callers should quiesce mutations for a stable answer.
func (s *Server) StateFingerprint() string {
	h := fnv.New64a()
	line := func(scope, pred, fp string) {
		fmt.Fprintf(h, "%s/%s=%s\n", scope, pred, fp)
	}
	dump := func(scope string, db *idlog.Database) {
		names := db.Names()
		sort.Strings(names)
		for _, n := range names {
			line(scope, n, db.Relation(n).Fingerprint())
		}
	}
	dump("", s.base.db.Load())
	for _, sess := range s.sessions.list() {
		dump(sess.name, sess.db.Load())
	}
	return hex.EncodeToString(h.Sum(nil))
}

// ApplyReplicated applies one replicated record to this server's state
// (the follower's apply path): the addressed session is created when
// missing, the mutation runs through Database.Apply and the session's
// live views are maintained incrementally, the record lands in the
// follower's own WAL when one is armed (preserving the primary's LSN),
// and the follower's replication tail is advanced — so a follower can
// itself be streamed from (chained standbys).
func (s *Server) ApplyReplicated(rec wal.Record) error {
	sess := s.base
	if rec.Session != "" {
		got, ok := s.sessions.get(rec.Session)
		if !ok {
			created, err := s.sessions.create(rec.Session, idlog.NewDatabase())
			if err != nil {
				return fmt.Errorf("replicate: create session %q: %w", rec.Session, err)
			}
			got = created
		}
		sess = got
	}
	sess.mutMu.Lock()
	defer sess.mutMu.Unlock()

	cur := sess.db.Load()
	next, delta, err := cur.Apply(rec.Inserts, rec.Deletes)
	if err != nil {
		return fmt.Errorf("replicate: apply LSN %d: %w", rec.LSN, err)
	}

	s.walMu.RLock()
	if _, err := s.logAndPublish(rec); err != nil {
		s.walMu.RUnlock()
		s.degradeWAL(err)
		return fmt.Errorf("replicate: wal append LSN %d: %w", rec.LSN, err)
	}
	sess.db.Store(next)
	sess.snapshot.Add(1)
	sess.touch()
	s.walMu.RUnlock()

	s.metrics.replApplied.Add(1)
	s.metrics.factsInserted.Add(uint64(delta.InsertCount()))
	s.metrics.factsDeleted.Add(uint64(delta.DeleteCount()))
	s.maintainViews(sess, next, delta, budget{})
	s.maybeCheckpoint()
	return nil
}

// ResetReplicatedState discards ALL local state (base and sessions)
// and installs the snapshot records as-of lsn: the follower's
// snapshot+replay bootstrap. Incremental catch-up cannot be trusted
// across a snapshot boundary — deletions that happened before the
// checkpoint are not in the log any more — so the reset is wholesale.
// When a WAL is armed the new state is immediately checkpointed, so a
// follower restart recovers to lsn without re-fetching the snapshot.
func (s *Server) ResetReplicatedState(lsn uint64, recs []wal.Record) error {
	// Build the new state off to the side first; a half-applied
	// snapshot must never become visible.
	var order []string
	byName := map[string]*idlog.Database{}
	base := idlog.NewDatabase()
	for _, rec := range recs {
		db := base
		if rec.Session != "" {
			var ok bool
			if db, ok = byName[rec.Session]; !ok {
				db = idlog.NewDatabase()
				order = append(order, rec.Session)
			}
		}
		next, _, err := db.Apply(rec.Inserts, rec.Deletes)
		if err != nil {
			return fmt.Errorf("replicate: snapshot load (session %q): %w", rec.Session, err)
		}
		if rec.Session == "" {
			base = next
		} else {
			byName[rec.Session] = next
		}
	}

	s.walMu.RLock()
	for _, sess := range s.sessions.list() {
		s.sessions.drop(sess.name)
	}
	base.Freeze()
	s.base.db.Store(base)
	s.base.snapshot.Add(1)
	for _, name := range order {
		if err := s.CreateSessionDB(name, byName[name]); err != nil {
			s.walMu.RUnlock()
			return fmt.Errorf("replicate: snapshot session %q: %w", name, err)
		}
	}
	s.repl.reset(lsn, nil)
	s.walMu.RUnlock()

	s.metrics.replResyncs.Add(1)
	if s.wal != nil {
		if err := s.Checkpoint(); err != nil {
			return fmt.Errorf("replicate: checkpoint after snapshot: %w", err)
		}
	}
	return nil
}

// snapshotRecords captures the full state as consolidation records at
// a consistent LSN: mutations are excluded by the walMu write lock for
// the duration of the (in-memory) capture, not for the send.
func (s *Server) snapshotRecords() (uint64, []wal.Record) {
	s.walMu.Lock()
	defer s.walMu.Unlock()
	_, lsn := s.repl.positions()
	var recs []wal.Record
	collect := func(name string, db *idlog.Database) {
		var facts []idlog.Fact
		names := db.Names()
		sort.Strings(names)
		for _, rn := range names {
			for _, t := range db.Relation(rn).Sorted() {
				facts = append(facts, idlog.Fact{Pred: rn, Tuple: t})
			}
		}
		// Empty sessions still emit a record so the receiver learns
		// they exist; an empty base emits nothing (it always exists).
		if len(facts) > 0 || name != "" {
			recs = append(recs, wal.Record{LSN: lsn, Session: name, Inserts: facts})
		}
	}
	collect("", s.base.db.Load())
	for _, sess := range s.sessions.list() {
		collect(sess.name, sess.db.Load())
	}
	return lsn, recs
}

// --- handlers ---

// replHeaders stamps the identity headers every replication response
// carries.
func (s *Server) replHeaders(w http.ResponseWriter, lsn uint64) {
	w.Header().Set("X-Idlog-Primary-Id", s.repl.id)
	w.Header().Set("X-Idlog-Lsn", strconv.FormatUint(lsn, 10))
}

func (s *Server) handleReplStatus(w http.ResponseWriter, r *http.Request) {
	start, last := s.repl.positions()
	s.replHeaders(w, last)
	resp := map[string]any{
		"primary_id":  s.repl.id,
		"last_lsn":    last,
		"start_lsn":   start,
		"read_only":   s.cfg.ReadOnly,
		"degraded":    s.walDegraded.Load(),
		"wal":         s.wal != nil,
		"fingerprint": s.StateFingerprint(),
	}
	if fs, ok := s.followerStatus(); ok {
		resp["follower"] = map[string]any{
			"ready":       fs.Ready,
			"reason":      fs.Reason,
			"connected":   fs.Connected,
			"applied_lsn": fs.AppliedLSN,
			"primary_lsn": fs.PrimaryLSN,
			"lag_entries": fs.LagEntries,
			"resyncs":     fs.Resyncs,
			"reconnects":  fs.Reconnects,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleReplSnapshot(w http.ResponseWriter, r *http.Request) {
	lsn, recs := s.snapshotRecords()
	s.replHeaders(w, lsn)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	var buf []byte
	for _, rec := range recs {
		buf = wal.AppendEntryFrame(buf[:0], rec)
		if err := s.sendFrames(w, fl, buf); err != nil {
			return
		}
	}
	buf = wal.AppendControlFrame(buf[:0], wal.FrameEOS, lsn)
	_ = s.sendFrames(w, fl, buf)
	s.metrics.replSnapshots.Add(1)
}

// sendFrames writes framed bytes through the fault points that model a
// slow primary (repl.stream.delay) and a torn connection
// (repl.stream.send — half the bytes go out, then the "connection"
// dies).
func (s *Server) sendFrames(w http.ResponseWriter, fl http.Flusher, b []byte) error {
	faults := s.cfg.Faults
	if err := faults.Hit(fault.ReplStreamDelay); err != nil {
		return err
	}
	if err := faults.Hit(fault.ReplStreamSend); err != nil {
		if len(b) > 1 {
			_, _ = w.Write(b[:len(b)/2])
			if fl != nil {
				fl.Flush()
			}
		}
		return err
	}
	if _, err := w.Write(b); err != nil {
		return err
	}
	if fl != nil {
		fl.Flush()
	}
	return nil
}

func (s *Server) handleReplStream(w http.ResponseWriter, r *http.Request) {
	fromStr := r.URL.Query().Get("from")
	from, err := strconv.ParseUint(fromStr, 10, 64)
	if err != nil || from == 0 {
		writeError(w, apiErrorf(http.StatusBadRequest, "invalid_argument", "bad from LSN %q", fromStr))
		return
	}
	start, last := s.repl.positions()
	if from < start {
		e := apiErrorf(http.StatusConflict, "snapshot_required",
			"LSN %d predates the replication tail (starts at %d); take /v1/replication/snapshot", from, start)
		s.replHeaders(w, last)
		writeError(w, e)
		return
	}

	sub, unsub := s.repl.subscribe()
	defer unsub()

	s.replHeaders(w, last)
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	if fl != nil {
		fl.Flush()
	}
	s.metrics.replStreams.Add(1)
	defer s.metrics.replStreams.Add(-1)

	hb := s.cfg.ReplHeartbeat
	ticker := time.NewTicker(hb)
	defer ticker.Stop()

	next := from
	var buf []byte
	for {
		recs, ok := s.repl.entriesFrom(next)
		if !ok {
			// A checkpoint truncated the follower's position away while
			// it streamed: tell it to resync and end cleanly.
			st, _ := s.repl.positions()
			buf = wal.AppendControlFrame(buf[:0], wal.FrameResync, st)
			_ = s.sendFrames(w, fl, buf)
			return
		}
		for _, rec := range recs {
			buf = wal.AppendEntryFrame(buf[:0], rec)
			if err := s.sendFrames(w, fl, buf); err != nil {
				return
			}
			next = rec.LSN + 1
			s.metrics.replShipped.Add(1)
		}
		select {
		case <-sub:
		case <-ticker.C:
			_, lastNow := s.repl.positions()
			buf = wal.AppendControlFrame(buf[:0], wal.FrameHeartbeat, lastNow)
			if err := s.sendFrames(w, fl, buf); err != nil {
				return
			}
		case <-s.drainCh:
			// Graceful drain: end the stream with a resumable position
			// instead of hanging http.Server.Shutdown until the timeout.
			_, lastNow := s.repl.positions()
			buf = wal.AppendControlFrame(buf[:0], wal.FrameEOS, lastNow)
			_ = s.sendFrames(w, fl, buf)
			return
		case <-r.Context().Done():
			return
		}
	}
}
