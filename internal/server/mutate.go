package server

import (
	"errors"
	"fmt"
	"net/http"
	"os"
	"sort"
	"time"

	"idlog"
	"idlog/internal/storage"
	"idlog/internal/wal"
)

// This file is the durable-mutation path: Database.Apply on a session's
// snapshot, write-ahead logging with fsync-before-acknowledge,
// incremental maintenance of the session's live views, periodic
// checkpoint-and-truncate, and WAL replay on restart.
//
// Ordering invariant: a mutation is (1) validated and applied into a
// NEW snapshot (invisible), (2) appended to the WAL and fsynced,
// (3) swapped in and acknowledged. A crash before (2) loses an
// unacknowledged request; a crash after (2) replays the mutation on
// restart. Steps (2)+(3) run under the checkpoint read-lock so a
// concurrent checkpoint can never persist a snapshot that misses a
// logged-but-unswapped mutation.

// SetWAL arms write-ahead logging: every acknowledged mutation is
// appended (and fsynced) before its snapshot becomes visible. Call
// before serving traffic, after replaying the log.
func (s *Server) SetWAL(l *wal.Log) { s.wal = l }

// OpenWAL is the full durable-startup recipe used by cmd/idlogd: load
// the checkpoint state into the base database when it exists
// (superseding any -load seed installed earlier), open the log at path
// — creating it, or truncating a torn tail left by a crash — replay
// every intact entry, and arm logging for new mutations.
//
// The checkpoint lives in <path>.snapshot with the in-memory engine, or
// in the disk engine's segment data directory (Config.Engine.Dir) —
// where the base EDB then stays disk-resident behind the block cache,
// with only the replayed WAL tail held in memory.
func (s *Server) OpenWAL(path string) error {
	db, err := s.loadCheckpoint(path)
	switch {
	case err == nil:
		s.SetBaseDB(db)
	case errors.Is(err, os.ErrNotExist):
		// First boot (or never checkpointed): replay starts from the
		// current base.
	default:
		return fmt.Errorf("wal snapshot: %w", err)
	}
	l, recs, err := wal.Open(path)
	if err != nil {
		return err
	}
	if err := s.Replay(recs); err != nil {
		l.Close()
		return err
	}
	l.SetFaults(s.cfg.Faults)
	s.SetWAL(l)
	s.repl.init(l.BaseLSN(), recs)
	return nil
}

// LoadDiskBase installs the disk engine's data directory as the base
// database; a missing directory (first boot, nothing bulk-loaded yet)
// is not an error. cmd/idlogd calls it when the disk engine runs
// without a WAL; with one, OpenWAL performs the same load plus tail
// replay.
func (s *Server) LoadDiskBase() error {
	if !s.cfg.Engine.Disk() {
		return nil
	}
	db, err := storage.OpenDir(s.cfg.Engine.Dir, s.cfg.Engine.Cache())
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil
		}
		return err
	}
	s.SetBaseDB(db)
	return nil
}

// loadCheckpoint reads the last checkpoint for the configured engine.
func (s *Server) loadCheckpoint(walPath string) (*idlog.Database, error) {
	if s.cfg.Engine.Disk() {
		return storage.OpenDir(s.cfg.Engine.Dir, s.cfg.Engine.Cache())
	}
	return idlog.LoadSnapshot(walPath + ".snapshot")
}

// saveCheckpoint durably writes the base snapshot for the configured
// engine: a new segment-file generation in the data directory (disk),
// or a single <wal>.snapshot file (mem). Both are atomic at the
// manifest/rename level, so a crash mid-checkpoint keeps the previous
// one intact.
func (s *Server) saveCheckpoint(db *idlog.Database) error {
	if s.cfg.Engine.Disk() {
		return storage.WriteDir(s.cfg.Engine.Dir, db)
	}
	return idlog.SaveSnapshot(s.wal.Path()+".snapshot", db)
}

// ErrWALDegraded marks a server whose WAL refused an append (fsync
// failure, disk full): it can no longer back acknowledgments with
// durability, so it acknowledges nothing — mutations get 503 until the
// operator repairs storage and restarts.
var ErrWALDegraded = errors.New("wal degraded: mutations refused until restart")

// degradeWAL flips the server into degraded (read-only) mode after a
// WAL append failure. The flip is sticky: a log that failed one fsync
// may hold torn state, and only a reopen (restart) re-validates it.
func (s *Server) degradeWAL(err error) {
	msg := err.Error()
	s.walDegradedMsg.Store(&msg)
	if !s.walDegraded.Swap(true) {
		s.metrics.walDegradedEvents.Add(1)
	}
}

// degradedError is the uniform 503 for mutations refused in degraded
// mode; Retry-After tells well-behaved clients to back off.
func degradedError(err error) *apiError {
	e := apiErrorf(http.StatusServiceUnavailable, "wal_degraded",
		"%v: %v", ErrWALDegraded, err)
	e.retryAfter = 5
	return e
}

// mutable reports whether this server may accept client mutations:
// followers are read-only by configuration, degraded primaries by
// storage failure.
func (s *Server) mutable() *apiError {
	if s.cfg.ReadOnly {
		return apiErrorf(http.StatusForbidden, "read_only",
			"server is a read-only replica; mutate the primary")
	}
	if s.walDegraded.Load() {
		msg := "wal append failed"
		if m := s.walDegradedMsg.Load(); m != nil {
			msg = *m
		}
		return degradedError(errors.New(msg))
	}
	return nil
}

// WAL returns the armed log, if any.
func (s *Server) WAL() *wal.Log { return s.wal }

// SetBaseDB installs db (frozen) as the base database served to
// queries that name no session and mutated by POST /v1/facts.
func (s *Server) SetBaseDB(db *idlog.Database) {
	db.Freeze()
	s.base.db.Store(db)
}

// BaseDB returns the current base snapshot.
func (s *Server) BaseDB() *idlog.Database { return s.base.db.Load() }

// Replay applies WAL records (as returned by wal.Open) to the server's
// state: records with an empty session address the base database,
// others their named session, which is created when missing. Called on
// startup before SetWAL and before serving.
func (s *Server) Replay(recs []wal.Record) error {
	for i, rec := range recs {
		sess := s.base
		if rec.Session != "" {
			got, ok := s.sessions.get(rec.Session)
			if !ok {
				created, err := s.sessions.create(rec.Session, idlog.NewDatabase())
				if err != nil {
					return fmt.Errorf("wal replay: recreate session %q: %w", rec.Session, err)
				}
				got = created
			}
			sess = got
		}
		cur := sess.db.Load()
		next, _, err := cur.Apply(rec.Inserts, rec.Deletes)
		if err != nil {
			return fmt.Errorf("wal replay: entry %d (session %q): %w", i, rec.Session, err)
		}
		sess.db.Store(next)
		sess.snapshot.Add(1)
	}
	return nil
}

// applyMutation runs one mutation batch against sess under the
// session's mutation lock. bud bounds the incremental view maintenance.
func (s *Server) applyMutation(sess *session, inserts, deletes []idlog.Fact, bud budget) (*mutateResponse, *apiError) {
	start := time.Now()
	sess.mutMu.Lock()
	defer sess.mutMu.Unlock()

	cur := sess.db.Load()
	next, delta, err := cur.Apply(inserts, deletes)
	if err != nil {
		return nil, apiErrorf(http.StatusBadRequest, "invalid_argument", "%v", err)
	}

	// Durability before visibility: fsync the WAL entry, then swap. The
	// read-lock spans both so a checkpoint (write-lock) sees either
	// neither or both of {WAL entry, snapshot}. A failed append is NEVER
	// acknowledged: the snapshot is discarded, the server flips degraded
	// (sticky read-only), and the client gets a typed 503 — an ack the
	// log cannot back would be a durability lie.
	s.walMu.RLock()
	if _, err := s.logAndPublish(wal.Record{Session: sess.name, Inserts: inserts, Deletes: deletes}); err != nil {
		s.walMu.RUnlock()
		s.degradeWAL(err)
		return nil, degradedError(err)
	}
	if s.wal != nil {
		s.metrics.walAppends.Add(1)
	}
	sess.db.Store(next)
	sess.snapshot.Add(1)
	sess.touch()
	s.walMu.RUnlock()

	s.metrics.factsInserted.Add(uint64(delta.InsertCount()))
	s.metrics.factsDeleted.Add(uint64(delta.DeleteCount()))

	resp := &mutateResponse{
		Session:  sess.name,
		Snapshot: sess.snapshot.Load(),
		Inserted: delta.InsertCount(),
		Deleted:  delta.DeleteCount(),
		Views:    s.maintainViews(sess, next, delta, bud),
	}
	s.maybeCheckpoint()
	resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	return resp, nil
}

// maintainViews advances every live view of sess to the new snapshot.
// A view whose incremental update fails (budget, staleness) is rebuilt
// from scratch; a view whose rebuild also fails is dropped. Mutations
// hold the views write-lock, so queries never observe a half-updated
// view.
func (s *Server) maintainViews(sess *session, db *idlog.Database, delta *idlog.Delta, bud budget) []viewUpdateJSON {
	sess.viewsMu.Lock()
	defer sess.viewsMu.Unlock()
	if len(sess.views) == 0 {
		return nil
	}
	names := make([]string, 0, len(sess.views))
	for name := range sess.views {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]viewUpdateJSON, 0, len(names))
	for _, name := range names {
		v := sess.views[name]
		up, err := v.lv.Advance(db, delta, bud.options()...)
		vu := viewUpdateJSON{Name: name, UpdateStats: up}
		if err != nil {
			vu.Error = err.Error()
			if rerr := v.lv.Rebuild(db); rerr != nil {
				delete(sess.views, name)
				vu.Dropped = true
				vu.Error = fmt.Sprintf("%v; rebuild: %v", err, rerr)
			} else {
				v.rebuilds++
				vu.Rebuilt = true
				s.metrics.viewRebuilds.Add(1)
			}
		}
		s.metrics.factsRederived.Add(uint64(up.Rederived))
		out = append(out, vu)
	}
	return out
}

// maybeCheckpoint triggers a checkpoint when the WAL has grown past the
// configured entry threshold. Failures are counted and retried on the
// next mutation; the WAL keeps accumulating until one succeeds, so no
// durability is lost.
func (s *Server) maybeCheckpoint() {
	if s.wal == nil || s.cfg.WALCheckpointEntries <= 0 {
		return
	}
	if s.wal.Entries() < s.cfg.WALCheckpointEntries {
		return
	}
	if err := s.Checkpoint(); err != nil {
		s.metrics.walCheckpointErrors.Add(1)
	}
}

// Checkpoint makes the WAL short again without losing durability: the
// base snapshot is durably written to <wal>.snapshot (write-to-temp,
// rename), and the log is atomically REWRITTEN (temp + fsync + rename)
// to hold one consolidated entry per live session. The rewrite replaces
// the old truncate-then-reappend sequence, which had a crash window
// between the truncate and the re-appends where acknowledged session
// facts existed nowhere durable. On restart the snapshot plus the
// rewritten log reproduce exactly the pre-checkpoint state.
//
// The new log starts at the pre-checkpoint last LSN, so consolidation
// entries get fresh, larger LSNs and the replication tail stays
// monotonic; followers mid-stream are told to resync (their position
// predates the rewritten tail), and the consolidation entries they then
// apply are idempotent re-inserts.
func (s *Server) Checkpoint() error {
	if s.wal == nil {
		return nil
	}
	s.walMu.Lock()
	defer s.walMu.Unlock()
	if err := s.saveCheckpoint(s.base.db.Load()); err != nil {
		return fmt.Errorf("checkpoint: snapshot: %w", err)
	}
	var recs []wal.Record
	for _, sess := range s.sessions.list() {
		db := sess.db.Load()
		var facts []idlog.Fact
		names := db.Names()
		sort.Strings(names)
		for _, name := range names {
			for _, t := range db.Relation(name).Sorted() {
				facts = append(facts, idlog.Fact{Pred: name, Tuple: t})
			}
		}
		// A factless session still gets a record: its existence must
		// survive the rewrite, or a restart would lose the session.
		recs = append(recs, wal.Record{Session: sess.name, Inserts: facts})
	}
	last := s.wal.LastLSN()
	if _, replLast := s.repl.positions(); replLast > last {
		last = replLast
	}
	if s.cfg.ReadOnly {
		// Follower: the primary owns the LSN space, so a local
		// checkpoint must NOT mint LSNs above the applied position —
		// they would overtake the primary and make the follower skip
		// real entries after a restart. Rebase the consolidation BELOW
		// the position instead: entries get (last-k, last], the log's
		// last LSN stays equal to the applied position, and restart
		// replay recovers both state and position exactly.
		k := uint64(len(recs))
		if k > last {
			return nil // degenerate; keep the log as is
		}
		if _, err := s.wal.ResetWith(last-k, recs); err != nil {
			return fmt.Errorf("checkpoint: rewrite log: %w", err)
		}
		s.repl.reset(last, nil)
	} else {
		out, err := s.wal.ResetWith(last, recs)
		if err != nil {
			return fmt.Errorf("checkpoint: rewrite log: %w", err)
		}
		s.repl.reset(last, out)
	}
	s.metrics.walCheckpoints.Add(1)
	return nil
}

// parseMutation decodes the textual insert/delete fact lists of a
// factsRequest (Facts is a legacy alias for Inserts).
func parseMutation(req *factsRequest) (ins, dels []idlog.Fact, e *apiError) {
	if req.Facts != "" {
		fs, err := idlog.ParseFacts(req.Facts)
		if err != nil {
			return nil, nil, fromEngineError(err)
		}
		ins = append(ins, fs...)
	}
	if req.Inserts != "" {
		fs, err := idlog.ParseFacts(req.Inserts)
		if err != nil {
			return nil, nil, fromEngineError(err)
		}
		ins = append(ins, fs...)
	}
	if req.Deletes != "" {
		fs, err := idlog.ParseFacts(req.Deletes)
		if err != nil {
			return nil, nil, fromEngineError(err)
		}
		dels = append(dels, fs...)
	}
	if len(ins) == 0 && len(dels) == 0 {
		return nil, nil, apiErrorf(http.StatusBadRequest, "invalid_argument", "no facts to insert or delete")
	}
	return ins, dels, nil
}

// handleBaseFacts mutates the base database: POST /v1/facts.
func (s *Server) handleBaseFacts(w http.ResponseWriter, r *http.Request) {
	var req factsRequest
	if e := decode(r, &req); e != nil {
		writeError(w, e)
		return
	}
	s.mutateAndRespond(w, r, s.base, &req)
}

// handleSessionFacts mutates a named session: POST
// /v1/sessions/{name}/facts. Insert-only bodies using the legacy
// {"facts": "..."} shape keep working.
func (s *Server) handleSessionFacts(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req factsRequest
	if e := decode(r, &req); e != nil {
		writeError(w, e)
		return
	}
	sess, ok := s.sessions.get(name)
	if !ok {
		writeError(w, apiErrorf(http.StatusNotFound, "not_found", "session %q not found", name))
		return
	}
	sess.pin()
	defer sess.unpin()
	s.mutateAndRespond(w, r, sess, &req)
}

// mutateAndRespond is the shared tail of the two facts endpoints:
// parse, budget, admit, apply, respond. Followers (ReadOnly) and
// degraded primaries refuse up front.
func (s *Server) mutateAndRespond(w http.ResponseWriter, r *http.Request, sess *session, req *factsRequest) {
	if e := s.mutable(); e != nil {
		writeError(w, e)
		return
	}
	ins, dels, e := parseMutation(req)
	if e != nil {
		writeError(w, e)
		return
	}
	bud, e := s.parseBudget(req.budgetFields)
	if e != nil {
		writeError(w, e)
		return
	}
	release, e := s.admit(r)
	if e != nil {
		writeError(w, e)
		return
	}
	defer release()
	resp, e := s.applyMutation(sess, ins, dels, bud)
	if e != nil {
		writeError(w, e)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleViewCreate registers a live view on a session: POST
// /v1/sessions/{name}/views.
func (s *Server) handleViewCreate(w http.ResponseWriter, r *http.Request) {
	sessName := r.PathValue("name")
	var req viewRequest
	if e := decode(r, &req); e != nil {
		writeError(w, e)
		return
	}
	if req.Name == "" {
		writeError(w, apiErrorf(http.StatusBadRequest, "invalid_argument", "name is required"))
		return
	}
	if (req.Program == "") == (req.Source == "") {
		writeError(w, apiErrorf(http.StatusBadRequest, "invalid_argument", "exactly one of program or source is required"))
		return
	}
	bud, e := s.parseBudget(req.budgetFields)
	if e != nil {
		writeError(w, e)
		return
	}
	var prog *idlog.Program
	progName := "(inline)"
	if req.Program != "" {
		p, e := s.lookupProgram(req.Program)
		if e != nil {
			writeError(w, e)
			return
		}
		prog, progName = p.prog, p.name
	} else {
		parsed, err := idlog.Parse(req.Source)
		if err != nil {
			writeError(w, fromEngineError(err))
			return
		}
		prog = parsed
	}
	sess, ok := s.sessions.get(sessName)
	if !ok {
		writeError(w, apiErrorf(http.StatusNotFound, "not_found", "session %q not found", sessName))
		return
	}
	sess.pin()
	defer sess.unpin()

	release, e := s.admit(r)
	if e != nil {
		writeError(w, e)
		return
	}
	defer release()

	opts := bud.options()
	if req.Seed != nil {
		opts = append(opts, idlog.WithSeed(*req.Seed))
	}
	// Serialize against mutations so the view's initial model matches a
	// definite snapshot generation.
	sess.mutMu.Lock()
	defer sess.mutMu.Unlock()
	sess.viewsMu.Lock()
	defer sess.viewsMu.Unlock()
	if _, dup := sess.views[req.Name]; dup {
		writeError(w, apiErrorf(http.StatusConflict, "already_exists", "view %q already exists on session %q", req.Name, sessName))
		return
	}
	if len(sess.views) >= s.cfg.MaxViews {
		writeError(w, apiErrorf(http.StatusTooManyRequests, "resource_exhausted", "view table full (%d views)", s.cfg.MaxViews))
		return
	}
	lv, err := prog.NewLiveView(sess.db.Load(), opts...)
	if err != nil {
		writeError(w, fromEngineError(err))
		return
	}
	v := &liveView{name: req.Name, program: progName, lv: lv}
	sess.views[req.Name] = v
	writeJSON(w, http.StatusOK, describeView(v))
}

// handleViewList lists a session's live views: GET
// /v1/sessions/{name}/views.
func (s *Server) handleViewList(w http.ResponseWriter, r *http.Request) {
	sess, ok := s.sessions.get(r.PathValue("name"))
	if !ok {
		writeError(w, apiErrorf(http.StatusNotFound, "not_found", "session %q not found", r.PathValue("name")))
		return
	}
	sess.viewsMu.RLock()
	infos := make([]viewInfo, 0, len(sess.views))
	for _, v := range sess.views {
		infos = append(infos, describeView(v))
	}
	sess.viewsMu.RUnlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	writeJSON(w, http.StatusOK, map[string]any{"views": infos})
}

// describeView renders one view's info; callers hold viewsMu.
func describeView(v *liveView) viewInfo {
	rels := map[string]int{}
	for _, name := range v.lv.Relations() {
		rels[name] = v.lv.Relation(name).Len()
	}
	return viewInfo{
		Name:      v.name,
		Program:   v.program,
		Relations: rels,
		Updates:   v.lv.TotalUpdates(),
		Rebuilds:  v.rebuilds,
	}
}

// serveViewQuery answers a query addressed at a live view: relations
// come straight from the maintained model, no evaluation runs.
func (s *Server) serveViewQuery(w http.ResponseWriter, req *queryRequest) {
	if req.Session == "" || len(req.Predicates) == 0 {
		writeError(w, apiErrorf(http.StatusBadRequest, "invalid_argument", "view queries require session and predicates"))
		return
	}
	if req.Program != "" || req.Source != "" || req.Goal != "" || req.Facts != "" {
		writeError(w, apiErrorf(http.StatusBadRequest, "invalid_argument", "view queries take no program, source, goal, or facts"))
		return
	}
	sess, ok := s.sessions.get(req.Session)
	if !ok {
		writeError(w, apiErrorf(http.StatusNotFound, "not_found", "session %q not found", req.Session))
		return
	}
	sess.pin()
	defer sess.unpin()
	v, ok := sess.getView(req.View)
	if !ok {
		writeError(w, apiErrorf(http.StatusNotFound, "not_found", "view %q not found on session %q", req.View, req.Session))
		return
	}
	start := time.Now()
	sess.viewsMu.RLock()
	defer sess.viewsMu.RUnlock()
	resp := &queryResponse{Relations: map[string]relationJSON{}}
	for _, p := range req.Predicates {
		rel := v.lv.Relation(p)
		if rel == nil {
			writeError(w, apiErrorf(http.StatusBadRequest, "invalid_argument", "unknown predicate %q", p))
			return
		}
		resp.Relations[p] = relationBody(rel)
		s.metrics.observePredicate(p, rel.Len())
	}
	resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	writeJSON(w, http.StatusOK, resp)
}
