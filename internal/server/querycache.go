package server

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"sync"

	"idlog"
)

// queryCache is the server's prepared-query machinery: an LRU of parsed
// ad-hoc source programs (so POST /v1/query with an inline source does
// not re-parse and re-analyze on every request) and an LRU of
// PreparedQuery values keyed by (program identity, goal) — each of
// which carries its own engine plan cache, so a repeated goal against
// an unchanged database skips parse, compile, and stratum planning
// entirely. Disabled by Config.NoPlanCache (idlogd -plan-cache=false),
// which restores the per-request parse+compile+plan path byte-for-byte.
type queryCache struct {
	programs *lru[string, *idlog.Program]
	prepared *lru[preparedKey, *idlog.PreparedQuery]
}

type preparedKey struct {
	prog string // "p:<name>" for registered programs, "s:<hash>" for ad-hoc sources
	goal string
}

const (
	maxCachedPrograms = 64
	maxCachedPrepared = 256
)

func newQueryCache() *queryCache {
	return &queryCache{
		programs: newLRU[string, *idlog.Program](maxCachedPrograms),
		prepared: newLRU[preparedKey, *idlog.PreparedQuery](maxCachedPrepared),
	}
}

// sourceKey identifies an ad-hoc program text.
func sourceKey(src string) string {
	h := sha256.Sum256([]byte(src))
	return "s:" + hex.EncodeToString(h[:16])
}

// parsedProgram resolves src through the program LRU (nil cache parses
// fresh). The key is returned for prepared-query lookups downstream.
func (s *Server) parsedProgram(src string) (*idlog.Program, string, error) {
	if s.queries == nil {
		p, err := idlog.Parse(src)
		return p, "", err
	}
	key := sourceKey(src)
	if p, ok := s.queries.programs.get(key); ok {
		return p, key, nil
	}
	p, err := idlog.Parse(src)
	if err != nil {
		return nil, "", err
	}
	s.queries.programs.put(key, p)
	return p, key, nil
}

// preparedQuery resolves (progKey, goal) through the prepared LRU,
// preparing and caching on miss. progKey "" (caching disabled upstream)
// is never passed here.
func (s *Server) preparedQuery(progKey string, prog *idlog.Program, goal string) (*idlog.PreparedQuery, error) {
	key := preparedKey{prog: progKey, goal: goal}
	if pq, ok := s.queries.prepared.get(key); ok {
		s.metrics.planCacheHits.Add(1)
		return pq, nil
	}
	s.metrics.planCacheMisses.Add(1)
	pq, err := prog.Prepare(goal)
	if err != nil {
		return nil, err
	}
	s.queries.prepared.put(key, pq)
	return pq, nil
}

// lru is a minimal mutex-guarded LRU map used for the server's program
// and prepared-query caches. Values must be immutable or internally
// synchronized (both cached types are safe for concurrent use).
type lru[K comparable, V any] struct {
	mu    sync.Mutex
	cap   int
	items map[K]*list.Element
	order *list.List // front = most recently used
}

type lruEntry[K comparable, V any] struct {
	key K
	val V
}

func newLRU[K comparable, V any](capacity int) *lru[K, V] {
	return &lru[K, V]{cap: capacity, items: map[K]*list.Element{}, order: list.New()}
}

func (l *lru[K, V]) get(k K) (V, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	el, ok := l.items[k]
	if !ok {
		var zero V
		return zero, false
	}
	l.order.MoveToFront(el)
	return el.Value.(*lruEntry[K, V]).val, true
}

func (l *lru[K, V]) put(k K, v V) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if el, ok := l.items[k]; ok {
		el.Value.(*lruEntry[K, V]).val = v
		l.order.MoveToFront(el)
		return
	}
	l.items[k] = l.order.PushFront(&lruEntry[K, V]{key: k, val: v})
	for l.order.Len() > l.cap {
		last := l.order.Back()
		l.order.Remove(last)
		delete(l.items, last.Value.(*lruEntry[K, V]).key)
	}
}

func (l *lru[K, V]) len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.order.Len()
}
