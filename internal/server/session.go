package server

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"idlog"
)

// session pins a named, snapshot-isolated database for a client across
// queries. The live snapshot is a frozen *idlog.Database behind an
// atomic pointer: queries load the pointer once and keep that snapshot
// for their whole run, while fact loads build the next snapshot off to
// the side (thaw, add, freeze) and swap it in. Readers never see a
// half-loaded database.
type session struct {
	name     string
	db       atomic.Pointer[idlog.Database]
	snapshot atomic.Uint64 // generation counter, bumps on every swap
	lastUsed atomic.Int64  // unix nanos of the last touch
	pins     atomic.Int64  // in-flight requests holding this session

	// mutMu serializes mutations (Apply + WAL append + swap) on this
	// session; mutations on different sessions proceed concurrently.
	mutMu sync.Mutex
	// viewsMu guards views: queries hold it shared while rendering view
	// relations, mutations hold it exclusively while maintaining them
	// (a view's relations are updated in place).
	viewsMu sync.RWMutex
	views   map[string]*liveView
}

// liveView is one incrementally maintained model registered on a
// session. Access is guarded by the owning session's viewsMu.
type liveView struct {
	name     string
	program  string // registered program name, or "(inline)"
	lv       *idlog.LiveView
	rebuilds uint64
}

// getView returns the named view under shared lock.
func (s *session) getView(name string) (*liveView, bool) {
	s.viewsMu.RLock()
	defer s.viewsMu.RUnlock()
	v, ok := s.views[name]
	return v, ok
}

func (s *session) touch() { s.lastUsed.Store(time.Now().UnixNano()) }

// pin marks the session as held by an in-flight request: the janitor
// will not evict it however long the request runs. unpin releases the
// hold and re-touches, so the idle clock restarts only after the last
// holder finishes.
func (s *session) pin() { s.pins.Add(1) }

func (s *session) unpin() {
	s.touch()
	s.pins.Add(-1)
}

// sessionTable is the registry of live sessions plus the idle-eviction
// janitor's bookkeeping.
type sessionTable struct {
	mu       sync.Mutex
	sessions map[string]*session
	max      int
}

func newSessionTable(max int) *sessionTable {
	return &sessionTable{sessions: make(map[string]*session), max: max}
}

// create registers a new session holding db (which it freezes).
func (t *sessionTable) create(name string, db *idlog.Database) (*session, error) {
	db.Freeze()
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.sessions[name]; ok {
		return nil, fmt.Errorf("session %q already exists", name)
	}
	if len(t.sessions) >= t.max {
		return nil, fmt.Errorf("session table full (%d sessions)", t.max)
	}
	s := newSession(name, db)
	t.sessions[name] = s
	return s, nil
}

// newSession builds a session around db without registering it (the
// base database is a session outside the table: unnamed, never
// evicted).
func newSession(name string, db *idlog.Database) *session {
	s := &session{name: name, views: map[string]*liveView{}}
	s.db.Store(db)
	s.snapshot.Store(1)
	s.touch()
	return s
}

// get returns the named session, touching it.
func (t *sessionTable) get(name string) (*session, bool) {
	t.mu.Lock()
	s, ok := t.sessions[name]
	t.mu.Unlock()
	if ok {
		s.touch()
	}
	return s, ok
}

// drop removes the named session.
func (t *sessionTable) drop(name string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.sessions[name]; !ok {
		return false
	}
	delete(t.sessions, name)
	return true
}

// len reports the number of live sessions.
func (t *sessionTable) len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.sessions)
}

// list snapshots the table for the sessions listing, sorted by name.
func (t *sessionTable) list() []*session {
	t.mu.Lock()
	out := make([]*session, 0, len(t.sessions))
	for _, s := range t.sessions {
		out = append(out, s)
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// evictIdle drops sessions idle longer than ttl and reports how many.
// Pinned sessions — ones a request is still evaluating against — are
// never reaped, however stale their last touch: a query that outlives
// the TTL would otherwise lose its session (and its snapshot history)
// mid-flight.
func (t *sessionTable) evictIdle(ttl time.Duration) int {
	cutoff := time.Now().Add(-ttl).UnixNano()
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for name, s := range t.sessions {
		if s.pins.Load() > 0 {
			continue
		}
		if s.lastUsed.Load() < cutoff {
			delete(t.sessions, name)
			n++
		}
	}
	return n
}

// info renders one session for the listing.
func (s *session) info() sessionInfo {
	db := s.db.Load()
	rels := map[string]int{}
	for _, n := range db.Names() {
		rels[n] = db.Relation(n).Len()
	}
	return sessionInfo{
		Name:      s.name,
		Relations: rels,
		IdleS:     time.Since(time.Unix(0, s.lastUsed.Load())).Seconds(),
		Snapshot:  s.snapshot.Load(),
	}
}
