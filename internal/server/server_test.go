package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// newTestServer spins up a server + httptest listener.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// post sends a JSON body and decodes the JSON response.
func post(t *testing.T, url string, body any, out any) int {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding response: %v", err)
		}
	}
	return resp.StatusCode
}

func get(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding response: %v", err)
		}
	}
	return resp.StatusCode
}

const tcProgram = `tc(X, Y) :- edge(X, Y).
tc(X, Z) :- tc(X, Y), edge(Y, Z).`

const tcFacts = `edge(a, b). edge(b, c). edge(c, d).`

func TestProgramRegisterAndQuery(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	var pinfo programInfo
	if code := post(t, ts.URL+"/v1/programs", programRequest{Name: "tc", Source: tcProgram}, &pinfo); code != 200 {
		t.Fatalf("register: status %d", code)
	}
	if pinfo.Name != "tc" || len(pinfo.Outputs) != 1 || pinfo.Outputs[0] != "tc" {
		t.Fatalf("program info = %+v", pinfo)
	}

	// Duplicate registration conflicts.
	var eb errorBody
	if code := post(t, ts.URL+"/v1/programs", programRequest{Name: "tc", Source: tcProgram}, &eb); code != 409 {
		t.Fatalf("duplicate register: status %d", code)
	}

	// Goal query with bindings.
	var qr queryResponse
	code := post(t, ts.URL+"/v1/query", queryRequest{
		Program: "tc", Facts: tcFacts, Goal: "tc(a, X)",
	}, &qr)
	if code != 200 {
		t.Fatalf("query: status %d", code)
	}
	if len(qr.Rows) != 3 {
		t.Fatalf("tc(a, X) returned %d rows, want 3: %+v", len(qr.Rows), qr.Rows)
	}

	// Predicate dump matches the CLI's canonical rendering.
	qr = queryResponse{}
	code = post(t, ts.URL+"/v1/query", queryRequest{
		Program: "tc", Facts: tcFacts, Predicates: []string{"tc"},
	}, &qr)
	if code != 200 {
		t.Fatalf("predicates query: status %d", code)
	}
	want := "tc{(a, b), (a, c), (a, d), (b, c), (b, d), (c, d)}"
	if got := qr.Relations["tc"].Text; got != want {
		t.Fatalf("canonical text = %q, want %q", got, want)
	}
	if qr.Stats == nil || qr.Stats.Derivations == 0 {
		t.Fatalf("missing stats: %+v", qr.Stats)
	}
}

func TestQueryValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name string
		req  queryRequest
		code int
	}{
		{"no program", queryRequest{Goal: "p(X)"}, 400},
		{"both program and source", queryRequest{Program: "a", Source: "p(x).", Goal: "p(X)"}, 400},
		{"no goal or predicates", queryRequest{Source: "p(x)."}, 400},
		{"unknown program", queryRequest{Program: "nope", Goal: "p(X)"}, 404},
		{"parse error", queryRequest{Source: "p(x", Goal: "p(X)"}, 400},
		{"unknown session", queryRequest{Source: "p(x).", Goal: "p(X)", Session: "nope"}, 404},
		{"bad timeout", queryRequest{Source: "p(x).", Goal: "p(X)",
			budgetFields: budgetFields{Timeout: "banana"}}, 400},
	}
	for _, c := range cases {
		var eb errorBody
		if code := post(t, ts.URL+"/v1/query", c.req, &eb); code != c.code {
			t.Errorf("%s: status %d, want %d (%+v)", c.name, code, c.code, eb)
		} else if eb.Error.Code == "" {
			t.Errorf("%s: missing typed error code", c.name)
		}
	}
}

// TestBudgetTrippedResponses checks the guard-budget → HTTP mapping
// and optional partial results.
func TestBudgetTrippedResponses(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// Derivation budget → 429 resource_exhausted.
	var eb errorBody
	code := post(t, ts.URL+"/v1/query", queryRequest{
		Source: tcProgram, Facts: tcFacts, Predicates: []string{"tc"},
		budgetFields: budgetFields{MaxDerivations: 2, Partial: true},
	}, &eb)
	if code != 429 {
		t.Fatalf("derivation budget: status %d, want 429 (%+v)", code, eb)
	}
	if eb.Error.Code != "resource_exhausted" {
		t.Fatalf("error code %q, want resource_exhausted", eb.Error.Code)
	}
	if eb.Partial == nil || !eb.Partial.Incomplete {
		t.Fatalf("expected partial results, got %+v", eb.Partial)
	}

	// Without partial: just the typed error.
	eb = errorBody{}
	code = post(t, ts.URL+"/v1/query", queryRequest{
		Source: tcProgram, Facts: tcFacts, Predicates: []string{"tc"},
		budgetFields: budgetFields{MaxTuples: 1},
	}, &eb)
	if code != 429 || eb.Partial != nil {
		t.Fatalf("tuple budget: status %d partial %+v", code, eb.Partial)
	}

	// Timeout → 504 deadline_exceeded. The chain program is sized so a
	// 1ns budget trips before the first checkpoint completes.
	eb = errorBody{}
	code = post(t, ts.URL+"/v1/query", queryRequest{
		Source: tcProgram, Facts: tcFacts, Predicates: []string{"tc"},
		budgetFields: budgetFields{Timeout: "1ns"},
	}, &eb)
	if code != 504 || eb.Error.Code != "deadline_exceeded" {
		t.Fatalf("timeout: status %d code %q, want 504 deadline_exceeded", code, eb.Error.Code)
	}
}

func TestSampleEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	facts := `emp(joe, toys). emp(sue, toys). emp(bob, shoes). emp(eve, shoes).`
	var sr sampleResponse
	code := post(t, ts.URL+"/v1/sample", sampleRequest{
		Relation: "emp", Arity: 2, GroupBy: []int{2}, K: 1, Seed: 42, Facts: facts,
	}, &sr)
	if code != 200 {
		t.Fatalf("sample: status %d", code)
	}
	if len(sr.Rows) != 2 {
		t.Fatalf("sample returned %d rows, want 2 (one per dept): %v", len(sr.Rows), sr.Rows)
	}
	// Reproducibility: same seed, same sample.
	var sr2 sampleResponse
	post(t, ts.URL+"/v1/sample", sampleRequest{
		Relation: "emp", Arity: 2, GroupBy: []int{2}, K: 1, Seed: 42, Facts: facts,
	}, &sr2)
	if sr.Text != sr2.Text {
		t.Fatalf("same seed produced different samples: %q vs %q", sr.Text, sr2.Text)
	}
}

func TestSessionLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	var si sessionInfo
	if code := post(t, ts.URL+"/v1/sessions", sessionRequest{Name: "s1", Facts: tcFacts}, &si); code != 200 {
		t.Fatalf("create session: status %d", code)
	}
	// Initial facts arrive as a durable mutation now, so creation with
	// facts lands on snapshot generation 2 (create, then apply).
	if si.Relations["edge"] != 3 || si.Snapshot != 2 {
		t.Fatalf("session info = %+v", si)
	}

	// Query against the session.
	var qr queryResponse
	code := post(t, ts.URL+"/v1/query", queryRequest{
		Source: tcProgram, Session: "s1", Goal: "tc(a, X)",
	}, &qr)
	if code != 200 || len(qr.Rows) != 3 {
		t.Fatalf("session query: status %d rows %d", code, len(qr.Rows))
	}

	// Advance the snapshot with one more edge; generation bumps.
	var mr mutateResponse
	code = post(t, ts.URL+"/v1/sessions/s1/facts", factsRequest{Facts: "edge(d, e)."}, &mr)
	if code != 200 || mr.Inserted != 1 || mr.Snapshot != 3 {
		t.Fatalf("advance: status %d resp %+v", code, mr)
	}
	qr = queryResponse{}
	post(t, ts.URL+"/v1/query", queryRequest{Source: tcProgram, Session: "s1", Goal: "tc(a, X)"}, &qr)
	if len(qr.Rows) != 4 {
		t.Fatalf("after advance: %d rows, want 4", len(qr.Rows))
	}

	// Ad-hoc facts extend a request-private copy, not the session.
	qr = queryResponse{}
	post(t, ts.URL+"/v1/query", queryRequest{
		Source: tcProgram, Session: "s1", Facts: "edge(e, f).", Goal: "tc(a, X)",
	}, &qr)
	if len(qr.Rows) != 5 {
		t.Fatalf("session+facts: %d rows, want 5", len(qr.Rows))
	}
	var si2 sessionInfo
	code = post(t, ts.URL+"/v1/sessions/s1/facts", factsRequest{Facts: ""}, &si2)
	if code == 200 && si2.Relations["edge"] != 4 {
		t.Fatalf("ad-hoc facts leaked into session: %+v", si2)
	}

	// List + delete.
	var listing struct {
		Sessions []sessionInfo `json:"sessions"`
	}
	if code := get(t, ts.URL+"/v1/sessions", &listing); code != 200 || len(listing.Sessions) != 1 {
		t.Fatalf("list: status %d sessions %+v", code, listing.Sessions)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/sessions/s1", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("delete: status %d", resp.StatusCode)
	}
	var eb errorBody
	if code := post(t, ts.URL+"/v1/query", queryRequest{Source: tcProgram, Session: "s1", Goal: "tc(a, X)"}, &eb); code != 404 {
		t.Fatalf("query on deleted session: status %d", code)
	}
}

func TestSessionIdleEviction(t *testing.T) {
	s, _ := newTestServer(t, Config{SessionTTL: 10 * time.Millisecond})
	if err := s.CreateSession("idle", tcFacts); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.sessions.len() > 0 && time.Now().Before(deadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if n := s.sessions.len(); n != 0 {
		t.Fatalf("session not evicted after TTL: %d live", n)
	}
	if s.metrics.sessionsEvicted.Load() == 0 {
		t.Error("eviction metric not incremented")
	}
}

// TestAdmissionControl pins the single worker slot and checks that
// excess requests are rejected with a typed 429.
func TestAdmissionControl(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 1, MaxQueue: 1, QueueWait: 50 * time.Millisecond})

	holding := make(chan struct{})
	releaseHold := make(chan struct{})
	var once sync.Once
	hold := func() {
		once.Do(func() { close(holding) })
		<-releaseHold
	}
	s.testHold.Store(&hold)

	// Occupy the only slot. The second request never reaches the hold:
	// it is rejected at admission, before the slot is acquired.
	done := make(chan int, 1)
	go func() {
		var qr queryResponse
		done <- post(t, ts.URL+"/v1/query", queryRequest{
			Source: tcProgram, Facts: tcFacts, Goal: "tc(a, X)",
		}, &qr)
	}()
	<-holding

	// Slot busy, queue wait 50ms → the next request exhausts the queue
	// wait and is rejected 429 with the taxonomy code.
	var eb errorBody
	code := post(t, ts.URL+"/v1/query", queryRequest{
		Source: tcProgram, Facts: tcFacts, Goal: "tc(a, X)",
	}, &eb)
	if code != 429 || eb.Error.Code != "resource_exhausted" {
		t.Fatalf("queued request: status %d code %q, want 429 resource_exhausted", code, eb.Error.Code)
	}

	close(releaseHold)
	if code := <-done; code != 200 {
		t.Fatalf("held request finished with %d", code)
	}

	// Metrics recorded the rejection.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if !strings.Contains(buf.String(), "idlogd_admission_rejected_total 1") {
		t.Errorf("admission rejection not in metrics:\n%s", buf.String())
	}
}

// TestConcurrentQueries is the acceptance check: 64 concurrent
// in-flight queries against one shared program and session, every
// response byte-identical to the single-shot answer.
func TestConcurrentQueries(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrent: 64, MaxQueue: 256, QueueWait: 30 * time.Second})
	if err := s.RegisterProgram("tc", tcProgram); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateSession("shared", tcFacts); err != nil {
		t.Fatal(err)
	}

	// Reference answer from one single-shot request.
	var ref queryResponse
	if code := post(t, ts.URL+"/v1/query", queryRequest{
		Program: "tc", Session: "shared", Predicates: []string{"tc"},
	}, &ref); code != 200 {
		t.Fatalf("reference query: status %d", code)
	}
	refText := ref.Relations["tc"].Text

	// Hold every request at the barrier until all 64 are in flight, so
	// the test exercises genuine concurrency, not accidental serialism.
	const n = 64
	var entered sync.WaitGroup
	entered.Add(n)
	release := make(chan struct{})
	hold := func() {
		entered.Done()
		<-release
	}
	s.testHold.Store(&hold)
	go func() {
		entered.Wait()
		if got := s.inflight.Load(); got < n {
			t.Errorf("only %d requests in flight at the barrier, want %d", got, n)
		}
		close(release)
	}()

	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var qr queryResponse
			code := post(t, ts.URL+"/v1/query", queryRequest{
				Program: "tc", Session: "shared", Predicates: []string{"tc"},
			}, &qr)
			if code != 200 {
				errs <- fmt.Errorf("request %d: status %d", i, code)
				return
			}
			if got := qr.Relations["tc"].Text; got != refText {
				errs <- fmt.Errorf("request %d: answer %q != reference %q", i, got, refText)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestHealthzAndDrain(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	var hz map[string]any
	if code := get(t, ts.URL+"/healthz", &hz); code != 200 || hz["status"] != "ok" {
		t.Fatalf("healthz: %d %+v", code, hz)
	}
	if code := get(t, ts.URL+"/readyz", &hz); code != 200 || hz["status"] != "ready" {
		t.Fatalf("readyz: %d %+v", code, hz)
	}
	s.Drain()
	// Liveness stays up while draining (the process is alive and
	// finishing in-flight work); readiness flips to 503 so load
	// balancers stop routing here.
	if code := get(t, ts.URL+"/healthz", &hz); code != 200 || hz["status"] != "draining" {
		t.Fatalf("healthz draining: %d %+v", code, hz)
	}
	if code := get(t, ts.URL+"/readyz", &hz); code != 503 || hz["reason"] != "draining" {
		t.Fatalf("readyz draining: %d %+v", code, hz)
	}
	var eb errorBody
	if code := post(t, ts.URL+"/v1/query", queryRequest{
		Source: tcProgram, Facts: tcFacts, Goal: "tc(a, X)",
	}, &eb); code != 503 {
		t.Fatalf("query while draining: status %d", code)
	}
}

func TestMetricsExposition(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	if err := s.RegisterProgram("tc", tcProgram); err != nil {
		t.Fatal(err)
	}
	var qr queryResponse
	post(t, ts.URL+"/v1/query", queryRequest{Program: "tc", Facts: tcFacts, Predicates: []string{"tc"}}, &qr)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	text := buf.String()
	for _, want := range []string{
		`idlogd_requests_total{endpoint="query",code="200"} 1`,
		`idlogd_request_duration_seconds_count{endpoint="query"} 1`,
		`idlogd_predicate_queries_total{predicate="tc"} 1`,
		`idlogd_predicate_tuples_total{predicate="tc"} 6`,
		"idlogd_derivations_total",
		"idlogd_tuples_total",
		"idlogd_uptime_seconds",
		"idlogd_worker_slots",
		"idlogd_plan_reorders_total",
		"idlogd_tuple_store_primary_collisions_total",
		"idlogd_tuple_store_secondary_collisions_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestNotFoundRoute(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	var eb errorBody
	if code := get(t, ts.URL+"/v1/nonsense", &eb); code != 404 || eb.Error.Code != "not_found" {
		t.Fatalf("unknown route: %d %+v", code, eb)
	}
}
