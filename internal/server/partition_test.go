package server

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestPartitionsWireField drives the per-request "partitions" knob end
// to end: answers are byte-identical to the unpartitioned run at every
// fan-out, bad values are rejected, oversized ones are clamped, the
// partition stats surface in the response, and the counter and skew
// gauge surface on /metrics.
func TestPartitionsWireField(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxParallelism: 4, MaxPartitions: 8})

	run := func(partitions, parallelism int) queryResponse {
		t.Helper()
		var qr queryResponse
		code := post(t, ts.URL+"/v1/query", queryRequest{
			Source: tcProgram, Facts: tcFacts, Predicates: []string{"tc"},
			budgetFields: budgetFields{Partitions: partitions, Parallelism: parallelism},
		}, &qr)
		if code != 200 {
			t.Fatalf("partitions=%d: status %d", partitions, code)
		}
		return qr
	}
	base := run(1, 1)
	for _, p := range []int{2, 8, 64} { // 64 exceeds the clamp, still fine
		got := run(p, 2)
		if got.Relations["tc"].Text != base.Relations["tc"].Text {
			t.Fatalf("partitions=%d diverged from unpartitioned", p)
		}
		if got.Stats == nil || got.Stats.Partitions == 0 || got.Stats.PartitionedRounds == 0 {
			t.Fatalf("partitions=%d: partition stats missing from response: %+v", p, got.Stats)
		}
	}
	if base.Stats == nil || base.Stats.Partitions != 0 {
		t.Fatalf("unpartitioned run reported partition stats: %+v", base.Stats)
	}

	var eb errorBody
	if code := post(t, ts.URL+"/v1/query", queryRequest{
		Source: tcProgram, Facts: tcFacts, Predicates: []string{"tc"},
		budgetFields: budgetFields{Partitions: -1},
	}, &eb); code != 400 {
		t.Fatalf("partitions=-1: status %d, want 400", code)
	}

	if got := s.metrics.partitionedQueries.Load(); got != 3 {
		t.Fatalf("partitioned query counter = %d, want 3", got)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		"idlogd_partitioned_queries_total 3",
		"idlogd_partition_skew_ratio ",
		"idlogd_max_partitions 8",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, text)
		}
	}
}
