package server

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"idlog"
)

// TestEvictIdleSkipsPinned is the table-level regression test for the
// janitor/in-flight race: a pinned session must survive any sweep, and
// become evictable again only after the last unpin.
func TestEvictIdleSkipsPinned(t *testing.T) {
	tbl := newSessionTable(4)
	sess, err := tbl.create("held", idlog.NewDatabase())
	if err != nil {
		t.Fatal(err)
	}
	sess.pin()
	time.Sleep(time.Millisecond)
	if n := tbl.evictIdle(time.Nanosecond); n != 0 {
		t.Fatalf("sweep reaped %d pinned sessions", n)
	}
	if _, ok := tbl.get("held"); !ok {
		t.Fatal("pinned session gone")
	}
	sess.unpin()
	time.Sleep(time.Millisecond)
	if n := tbl.evictIdle(time.Nanosecond); n != 1 {
		t.Fatalf("post-unpin sweep evicted %d sessions, want 1", n)
	}
}

// TestSessionPinnedDuringQuery drives the race end to end: the idle
// sweep fires (zero TTL, so every unpinned session is stale) while a
// query is evaluating against the session, and must not reap it.
func TestSessionPinnedDuringQuery(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	if err := s.CreateSession("live", tcFacts); err != nil {
		t.Fatal(err)
	}
	hold := func() {
		if n := s.sessions.evictIdle(0); n != 0 {
			t.Errorf("sweep reaped %d sessions out from under an in-flight query", n)
		}
	}
	s.testHold.Store(&hold)
	defer s.testHold.Store(nil)

	var qr queryResponse
	code := post(t, ts.URL+"/v1/query", queryRequest{
		Source: tcProgram, Session: "live", Goal: "tc(a, X)",
	}, &qr)
	if code != 200 {
		t.Fatalf("query: status %d", code)
	}
	if len(qr.Rows) != 3 {
		t.Fatalf("tc(a, X) returned %d rows, want 3", len(qr.Rows))
	}
	if _, ok := s.sessions.get("live"); !ok {
		t.Fatal("session gone after the query finished")
	}
}

// TestParallelismWireField checks the request knob end to end: answers
// are byte-identical to sequential, bad values are rejected, oversized
// ones are clamped, and the gauge/counter surface on /metrics.
func TestParallelismWireField(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxParallelism: 4})

	run := func(parallelism int) queryResponse {
		t.Helper()
		var qr queryResponse
		code := post(t, ts.URL+"/v1/query", queryRequest{
			Source: tcProgram, Facts: tcFacts, Predicates: []string{"tc"},
			budgetFields: budgetFields{Parallelism: parallelism},
		}, &qr)
		if code != 200 {
			t.Fatalf("parallelism=%d: status %d", parallelism, code)
		}
		return qr
	}
	seq := run(1)
	for _, p := range []int{2, 4, 64} { // 64 exceeds the clamp, still fine
		if got := run(p); got.Relations["tc"].Text != seq.Relations["tc"].Text {
			t.Fatalf("parallelism=%d diverged from sequential", p)
		}
	}

	var eb errorBody
	if code := post(t, ts.URL+"/v1/query", queryRequest{
		Source: tcProgram, Facts: tcFacts, Predicates: []string{"tc"},
		budgetFields: budgetFields{Parallelism: -1},
	}, &eb); code != 400 {
		t.Fatalf("parallelism=-1: status %d, want 400", code)
	}

	if got := s.metrics.parallelQueries.Load(); got != 3 {
		t.Fatalf("parallel query counter = %d, want 3", got)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"idlogd_max_parallelism 4", "idlogd_parallel_queries_total 3"} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}
}
