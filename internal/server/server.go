package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"idlog"
	"idlog/internal/fault"
	"idlog/internal/storage"
	"idlog/internal/wal"
)

// Config tunes the server. Zero values take the documented defaults.
type Config struct {
	// MaxConcurrent is the worker-pool size: the number of evaluations
	// allowed in flight at once (default: GOMAXPROCS).
	MaxConcurrent int
	// MaxQueue bounds how many admitted requests may wait for a worker
	// slot beyond the pool (default 64). Requests beyond it are
	// rejected immediately with 429.
	MaxQueue int
	// QueueWait bounds how long a queued request waits for a slot
	// before a 429 (default 5s).
	QueueWait time.Duration
	// DefaultTimeout applies to requests that set no timeout
	// (default 10s); MaxTimeout clamps requested ones (default 60s).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// DefaultMaxTuples / DefaultMaxDerivations apply to requests that
	// set no budget (default 0 = unlimited).
	DefaultMaxTuples      int
	DefaultMaxDerivations int
	// MaxParallelism clamps per-request parallelism (the wire field
	// "parallelism"): requests may fan each fixpoint round out over up
	// to this many worker goroutines (default: GOMAXPROCS). Requests
	// that set no parallelism take the engine auto default (GOMAXPROCS
	// clamped to 8), then this clamp. Answers do not depend on the
	// value; only latency does.
	MaxParallelism int
	// MaxPartitions clamps per-request hash-partition fan-out (the wire
	// field "partitions"; default 64, the engine ceiling). Requests
	// that set no fan-out follow their resolved parallelism. Answers do
	// not depend on the value.
	MaxPartitions int
	// SessionTTL evicts sessions idle longer than this (default 15m).
	SessionTTL time.Duration
	// MaxPrograms / MaxSessions bound the registries (default 256 each).
	MaxPrograms int
	MaxSessions int
	// MaxViews bounds the live views per session (default 32).
	MaxViews int
	// MaxBodyBytes bounds request bodies (default 4 MiB).
	MaxBodyBytes int64
	// WALCheckpointEntries triggers a checkpoint-and-truncate once the
	// WAL holds this many entries (default 1024; negative disables
	// automatic checkpoints).
	WALCheckpointEntries int
	// ReadOnly refuses all client mutations (403): the follower mode of
	// a hot standby, whose state changes arrive only via replication.
	ReadOnly bool
	// ReplHeartbeat is the heartbeat cadence on replication streams
	// (default 3s). Followers treat a stream silent past their lease as
	// a stalled primary.
	ReplHeartbeat time.Duration
	// MaxReplLogEntries bounds the in-memory replication tail (default
	// 8192). Followers that fall behind the trimmed range catch up via
	// snapshot+replay.
	MaxReplLogEntries int
	// PrimaryID overrides the random replication incarnation id
	// (tests).
	PrimaryID string
	// Faults, when set, arms chaos fault injection on the replication
	// send path (see internal/fault). Nil means no injection.
	Faults *fault.Registry
	// Engine selects the storage engine for the base database. The zero
	// value is the in-memory engine; with EngineDisk, OpenWAL loads the
	// base EDB from segment files in Engine.Dir and Checkpoint writes a
	// new segment generation there instead of a <wal>.snapshot file.
	Engine storage.Engine
	// NoPlanCache disables the prepared-query and plan caches (the
	// default is enabled): every goal query then re-parses, re-compiles,
	// and re-plans per request exactly as before. The escape hatch
	// behind idlogd's -plan-cache flag; answers are identical either
	// way.
	NoPlanCache bool
	// NoMagic disables the magic-sets demand rewrite for goal queries
	// (the default is enabled): every goal then evaluates the full
	// program. The escape hatch behind idlogd's -magic flag; per-request
	// opt-out is the wire field "magic": false. Answers are identical
	// either way.
	NoMagic bool
}

func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 64
	}
	if c.QueueWait <= 0 {
		c.QueueWait = 5 * time.Second
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 10 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 60 * time.Second
	}
	if c.MaxParallelism <= 0 {
		c.MaxParallelism = runtime.GOMAXPROCS(0)
	}
	if c.MaxPartitions <= 0 {
		c.MaxPartitions = 64
	}
	if c.SessionTTL <= 0 {
		c.SessionTTL = 15 * time.Minute
	}
	if c.MaxPrograms <= 0 {
		c.MaxPrograms = 256
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 256
	}
	if c.MaxViews <= 0 {
		c.MaxViews = 32
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 4 << 20
	}
	if c.WALCheckpointEntries == 0 {
		c.WALCheckpointEntries = 1024
	}
	if c.ReplHeartbeat <= 0 {
		c.ReplHeartbeat = 3 * time.Second
	}
	if c.MaxReplLogEntries <= 0 {
		c.MaxReplLogEntries = 8192
	}
	return c
}

// program is one registered, immutable compiled program.
type program struct {
	name string
	src  string
	prog *idlog.Program
}

// Server is the idlogd HTTP server state. Create with New, expose with
// Handler, stop background work with Close.
type Server struct {
	cfg      Config
	mux      *http.ServeMux
	metrics  *metrics
	sessions *sessionTable

	// base is the unnamed, never-evicted database behind sessionless
	// queries and POST /v1/facts; wal, when armed, makes every
	// acknowledged mutation durable. walMu orders mutations
	// (read-locked around append+swap) against checkpoints and
	// replication snapshots (write-locked).
	base  *session
	wal   *wal.Log
	walMu sync.RWMutex

	// repl is the replication tail (LSN assignment, stream fan-out);
	// walDegraded flips once a WAL append fails — from then on the
	// server is read-only and mutations get 503 + Retry-After rather
	// than acknowledgments durability cannot back.
	repl           *replState
	walDegraded    atomic.Bool
	walDegradedMsg atomic.Pointer[string]
	followerProbe  atomic.Pointer[func() FollowerStatus]

	programsMu sync.RWMutex
	programs   map[string]*program

	// queries caches parsed ad-hoc programs and prepared goal queries
	// (nil when Config.NoPlanCache).
	queries *queryCache

	slots    chan struct{}
	queued   atomic.Int64
	inflight atomic.Int64
	draining atomic.Bool
	// drainCh closes when the server starts draining: long-lived
	// replication streams end with a resumable EOS frame instead of
	// hanging the HTTP shutdown.
	drainCh   chan struct{}
	drainOnce sync.Once

	janitorStop chan struct{}
	janitorDone chan struct{}

	// testHold, when set (tests only), runs while a worker slot is
	// held, letting tests pin the pool in a known-busy state.
	testHold atomic.Pointer[func()]
}

// New builds a server with cfg (zero values defaulted).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:         cfg,
		metrics:     newMetrics(),
		sessions:    newSessionTable(cfg.MaxSessions),
		programs:    map[string]*program{},
		slots:       make(chan struct{}, cfg.MaxConcurrent),
		repl:        newReplState(cfg.PrimaryID, cfg.MaxReplLogEntries),
		drainCh:     make(chan struct{}),
		janitorStop: make(chan struct{}),
		janitorDone: make(chan struct{}),
	}
	if !cfg.NoPlanCache {
		s.queries = newQueryCache()
	}
	base := idlog.NewDatabase()
	base.Freeze()
	s.base = newSession("", base)
	s.mux = http.NewServeMux()
	s.route("POST /v1/programs", "programs", s.handleProgramCreate)
	s.route("GET /v1/programs", "programs", s.handleProgramList)
	s.route("POST /v1/query", "query", s.handleQuery)
	s.route("POST /v1/sample", "sample", s.handleSample)
	s.route("POST /v1/sessions", "sessions", s.handleSessionCreate)
	s.route("GET /v1/sessions", "sessions", s.handleSessionList)
	s.route("DELETE /v1/sessions/{name}", "sessions", s.handleSessionDelete)
	s.route("POST /v1/facts", "facts", s.handleBaseFacts)
	s.route("POST /v1/sessions/{name}/facts", "facts", s.handleSessionFacts)
	s.route("POST /v1/sessions/{name}/views", "views", s.handleViewCreate)
	s.route("GET /v1/sessions/{name}/views", "views", s.handleViewList)
	s.route("GET /v1/replication/status", "replication", s.handleReplStatus)
	s.route("GET /v1/replication/snapshot", "replication", s.handleReplSnapshot)
	s.route("GET /v1/replication/stream", "replication", s.handleReplStream)
	s.route("GET /healthz", "healthz", s.handleHealthz)
	s.route("GET /readyz", "readyz", s.handleReadyz)
	s.route("GET /metrics", "metrics", s.handleMetrics)
	s.route("/", "other", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, apiErrorf(http.StatusNotFound, "not_found", "no route for %s %s", r.Method, r.URL.Path))
	})
	go s.janitor()
	return s
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Close stops the session janitor and closes the WAL, if armed. It
// does not wait for in-flight requests; use http.Server.Shutdown for
// that.
func (s *Server) Close() {
	s.Drain()
	close(s.janitorStop)
	<-s.janitorDone
	if s.wal != nil {
		_ = s.wal.Close()
	}
}

// Drain flips the server into draining mode: readiness fails so load
// balancers stop routing here, new evaluations are refused with 503
// while in-flight ones finish, and open replication streams terminate
// with a clean EOS frame carrying a resumable LSN.
func (s *Server) Drain() {
	s.draining.Store(true)
	s.drainOnce.Do(func() { close(s.drainCh) })
}

// RegisterProgram compiles and registers src under name (used by
// cmd/idlogd to preload programs before listening).
func (s *Server) RegisterProgram(name, src string) error {
	prog, err := idlog.Parse(src)
	if err != nil {
		return err
	}
	s.programsMu.Lock()
	defer s.programsMu.Unlock()
	if _, ok := s.programs[name]; ok {
		return fmt.Errorf("program %q already registered", name)
	}
	if len(s.programs) >= s.cfg.MaxPrograms {
		return fmt.Errorf("program registry full (%d programs)", s.cfg.MaxPrograms)
	}
	s.programs[name] = &program{name: name, src: src, prog: prog}
	return nil
}

// CreateSession registers a session from facts text (used by
// cmd/idlogd to preload a database; also reachable over the wire).
func (s *Server) CreateSession(name, facts string) error {
	db := idlog.NewDatabase()
	if facts != "" {
		if err := idlog.AddFactsText(db, facts); err != nil {
			return err
		}
	}
	_, err := s.sessions.create(name, db)
	return err
}

// CreateSessionDB registers a session around an existing database
// (e.g. a loaded snapshot). The database is frozen.
func (s *Server) CreateSessionDB(name string, db *idlog.Database) error {
	_, err := s.sessions.create(name, db)
	return err
}

// janitor evicts idle sessions until Close.
func (s *Server) janitor() {
	defer close(s.janitorDone)
	period := s.cfg.SessionTTL / 4
	if period < time.Second {
		period = time.Second
	}
	t := time.NewTicker(period)
	defer t.Stop()
	for {
		select {
		case <-s.janitorStop:
			return
		case <-t.C:
			if n := s.sessions.evictIdle(s.cfg.SessionTTL); n > 0 {
				s.metrics.sessionsEvicted.Add(uint64(n))
			}
		}
	}
}

// statusRecorder captures the written status for instrumentation.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying writer so streaming handlers
// (replication) can push frames through the instrumentation wrapper.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// route registers an instrumented handler: inflight gauge, request
// counter and latency histogram per endpoint, body-size limiting.
func (s *Server) route(pattern, endpoint string, h http.HandlerFunc) {
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.inflight.Add(1)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
		h(rec, r)
		s.inflight.Add(-1)
		s.metrics.observe(endpoint, rec.status, time.Since(start))
	})
}

// decode reads a JSON request body into v.
func decode(r *http.Request, v any) *apiError {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		if err == io.EOF {
			return apiErrorf(http.StatusBadRequest, "invalid_argument", "empty request body")
		}
		return apiErrorf(http.StatusBadRequest, "invalid_argument", "bad request body: %v", err)
	}
	return nil
}

// admit acquires a worker slot under admission control, returning a
// release func, or a typed rejection when the pool and queue are full,
// the queue wait expires, the client goes away, or the server drains.
func (s *Server) admit(r *http.Request) (func(), *apiError) {
	if s.draining.Load() {
		return nil, apiErrorf(http.StatusServiceUnavailable, "unavailable", "server is draining")
	}
	release := func() { <-s.slots }
	select {
	case s.slots <- struct{}{}:
		return release, nil
	default:
	}
	if s.queued.Add(1) > int64(s.cfg.MaxQueue) {
		s.queued.Add(-1)
		s.metrics.admissionRejected.Add(1)
		return nil, apiErrorf(http.StatusTooManyRequests, "resource_exhausted",
			"admission queue full (%d waiting, %d in flight)", s.cfg.MaxQueue, s.cfg.MaxConcurrent)
	}
	defer s.queued.Add(-1)
	timer := time.NewTimer(s.cfg.QueueWait)
	defer timer.Stop()
	select {
	case s.slots <- struct{}{}:
		return release, nil
	case <-timer.C:
		s.metrics.admissionRejected.Add(1)
		return nil, apiErrorf(http.StatusTooManyRequests, "resource_exhausted",
			"no worker slot within %s", s.cfg.QueueWait)
	case <-r.Context().Done():
		return nil, apiErrorf(statusClientClosed, "canceled", "client closed request while queued")
	}
}

// lookupProgram resolves a registered program by name.
func (s *Server) lookupProgram(name string) (*program, *apiError) {
	s.programsMu.RLock()
	p, ok := s.programs[name]
	s.programsMu.RUnlock()
	if !ok {
		return nil, apiErrorf(http.StatusNotFound, "not_found", "program %q not registered", name)
	}
	return p, nil
}

// resolveDB builds the request's database view: the session's frozen
// snapshot, optionally extended by ad-hoc facts into a request-private
// copy, or a fresh database from the facts alone. The returned release
// func MUST be called when the request finishes — it unpins the session
// so the idle janitor may evict it again (sessions are pinned for the
// request lifetime so a long evaluation cannot have its session reaped
// out from under it).
func (s *Server) resolveDB(sessionName, facts string) (*idlog.Database, func(), *apiError) {
	noop := func() {}
	if sessionName == "" {
		// Sessionless requests read the base database — empty until the
		// first POST /v1/facts (or a -load/-wal preload), so a server
		// nobody has mutated behaves exactly as before.
		db := s.base.db.Load()
		if facts != "" {
			db = db.Thaw()
			if err := idlog.AddFactsText(db, facts); err != nil {
				return nil, nil, fromEngineError(err)
			}
		}
		return db, noop, nil
	}
	sess, ok := s.sessions.get(sessionName)
	if !ok {
		return nil, nil, apiErrorf(http.StatusNotFound, "not_found", "session %q not found", sessionName)
	}
	sess.pin()
	db := sess.db.Load()
	if facts != "" {
		db = db.Thaw()
		if err := idlog.AddFactsText(db, facts); err != nil {
			sess.unpin()
			return nil, nil, fromEngineError(err)
		}
	}
	return db, sess.unpin, nil
}

// --- handlers ---

func (s *Server) handleProgramCreate(w http.ResponseWriter, r *http.Request) {
	var req programRequest
	if e := decode(r, &req); e != nil {
		writeError(w, e)
		return
	}
	if req.Name == "" || req.Source == "" {
		writeError(w, apiErrorf(http.StatusBadRequest, "invalid_argument", "name and source are required"))
		return
	}
	if err := s.RegisterProgram(req.Name, req.Source); err != nil {
		var ie *idlog.Error
		if errors.As(err, &ie) {
			writeError(w, fromEngineError(err))
			return
		}
		writeError(w, apiErrorf(http.StatusConflict, "already_exists", "%v", err))
		return
	}
	p, _ := s.lookupProgram(req.Name)
	writeJSON(w, http.StatusOK, describeProgram(p))
}

func (s *Server) handleProgramList(w http.ResponseWriter, r *http.Request) {
	s.programsMu.RLock()
	infos := make([]programInfo, 0, len(s.programs))
	for _, p := range s.programs {
		infos = append(infos, describeProgram(p))
	}
	s.programsMu.RUnlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	writeJSON(w, http.StatusOK, map[string]any{"programs": infos})
}

func describeProgram(p *program) programInfo {
	return programInfo{
		Name:    p.name,
		Strata:  p.prog.Strata(),
		Inputs:  p.prog.InputPredicates(),
		Outputs: p.prog.OutputPredicates(),
	}
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if e := decode(r, &req); e != nil {
		writeError(w, e)
		return
	}
	if req.View != "" {
		s.serveViewQuery(w, &req)
		return
	}
	if (req.Program == "") == (req.Source == "") {
		writeError(w, apiErrorf(http.StatusBadRequest, "invalid_argument", "exactly one of program or source is required"))
		return
	}
	if (req.Goal == "") == (len(req.Predicates) == 0) {
		writeError(w, apiErrorf(http.StatusBadRequest, "invalid_argument", "exactly one of goal or predicates is required"))
		return
	}
	bud, e := s.parseBudget(req.budgetFields)
	if e != nil {
		writeError(w, e)
		return
	}

	var prog *idlog.Program
	var progKey string
	if req.Program != "" {
		p, e := s.lookupProgram(req.Program)
		if e != nil {
			writeError(w, e)
			return
		}
		prog, progKey = p.prog, "p:"+p.name
	} else {
		parsed, key, err := s.parsedProgram(req.Source)
		if err != nil {
			writeError(w, fromEngineError(err))
			return
		}
		prog, progKey = parsed, key
	}
	db, unpin, e := s.resolveDB(req.Session, req.Facts)
	if e != nil {
		writeError(w, e)
		return
	}
	defer unpin()

	release, e := s.admit(r)
	if e != nil {
		writeError(w, e)
		return
	}
	defer release()
	if h := s.testHold.Load(); h != nil {
		(*h)()
	}

	opts := bud.options()
	if bud.parallelism > 1 {
		s.metrics.parallelQueries.Add(1)
	}
	if req.Seed != nil {
		opts = append(opts, idlog.WithSeed(*req.Seed))
	}
	if s.cfg.NoMagic || (req.Magic != nil && !*req.Magic) {
		opts = append(opts, idlog.WithMagic(false))
	}
	start := time.Now()
	if req.Goal != "" {
		var qr *idlog.QueryResult
		var err error
		if s.queries != nil {
			// Prepared path: goal parse, wrapper compile, and (per
			// database version) stratum planning are all cached.
			pq, perr := s.preparedQuery(progKey, prog, req.Goal)
			if perr != nil {
				writeError(w, fromEngineError(perr))
				return
			}
			qr, err = pq.QueryContext(r.Context(), db, opts...)
		} else {
			qr, err = prog.QueryContext(r.Context(), db, req.Goal, opts...)
		}
		if qr != nil && qr.UsedMagic {
			s.metrics.magicQueries.Add(1)
		}
		if qr != nil {
			s.metrics.observePartitions(qr.Stats)
		}
		resp := goalResponse(qr, time.Since(start))
		if err != nil {
			ae := fromEngineError(err)
			if req.Partial && qr != nil {
				resp.Incomplete = true
				ae.partial = resp
			}
			writeError(w, ae)
			return
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}

	res, err := prog.EvalContext(r.Context(), db, opts...)
	if res != nil {
		s.metrics.observeEval(res.Stats.Derivations, res.Stats.Inserted, res.Stats.TuplesScanned)
		s.metrics.observePartitions(res.Stats)
	}
	if err != nil {
		ae := fromEngineError(err)
		if req.Partial && res != nil && res.Incomplete {
			resp := predicatesResponse(res, req.Predicates, time.Since(start), nil)
			resp.Incomplete = true
			ae.partial = resp
		}
		writeError(w, ae)
		return
	}
	for _, p := range req.Predicates {
		if res.Relation(p) == nil {
			writeError(w, apiErrorf(http.StatusBadRequest, "invalid_argument", "unknown predicate %q", p))
			return
		}
	}
	writeJSON(w, http.StatusOK, predicatesResponse(res, req.Predicates, time.Since(start), s.metrics))
}

// goalResponse renders a goal query's bindings.
func goalResponse(qr *idlog.QueryResult, elapsed time.Duration) *queryResponse {
	resp := &queryResponse{ElapsedMS: float64(elapsed.Microseconds()) / 1000}
	if qr == nil {
		return resp
	}
	resp.Vars = qr.Vars
	holds := qr.Holds()
	resp.Holds = &holds
	resp.Rows = make([][]any, len(qr.Rows))
	for i, t := range qr.Rows {
		resp.Rows[i] = tupleJSON(t)
	}
	return resp
}

// predicatesResponse renders whole relations of a computed model. A
// nil metrics skips per-predicate accounting (partial responses).
func predicatesResponse(res *idlog.Result, preds []string, elapsed time.Duration, m *metrics) *queryResponse {
	resp := &queryResponse{
		Relations: map[string]relationJSON{},
		Stats:     statsOf(res.Stats),
		ElapsedMS: float64(elapsed.Microseconds()) / 1000,
	}
	for _, p := range preds {
		rel := res.Relation(p)
		if rel == nil {
			continue
		}
		resp.Relations[p] = relationBody(rel)
		if m != nil {
			m.observePredicate(p, rel.Len())
		}
	}
	return resp
}

func (s *Server) handleSample(w http.ResponseWriter, r *http.Request) {
	var req sampleRequest
	if e := decode(r, &req); e != nil {
		writeError(w, e)
		return
	}
	bud, e := s.parseBudget(req.budgetFields)
	if e != nil {
		writeError(w, e)
		return
	}
	db, unpin, e := s.resolveDB(req.Session, req.Facts)
	if e != nil {
		writeError(w, e)
		return
	}
	defer unpin()
	release, e := s.admit(r)
	if e != nil {
		writeError(w, e)
		return
	}
	defer release()
	if h := s.testHold.Load(); h != nil {
		(*h)()
	}
	if bud.parallelism > 1 {
		s.metrics.parallelQueries.Add(1)
	}

	spec := idlog.SampleSpec{Relation: req.Relation, Arity: req.Arity, GroupBy: req.GroupBy, K: req.K}
	start := time.Now()
	rel, err := idlog.SampleContext(r.Context(), spec, db, req.Seed, bud.options()...)
	if err != nil {
		writeError(w, fromEngineError(err))
		return
	}
	s.metrics.observePredicate(req.Relation, rel.Len())
	sorted := rel.Sorted()
	rows := make([][]any, len(sorted))
	for i, t := range sorted {
		rows[i] = tupleJSON(t)
	}
	writeJSON(w, http.StatusOK, sampleResponse{
		Rows:      rows,
		Text:      rel.String(),
		ElapsedMS: float64(time.Since(start).Microseconds()) / 1000,
	})
}

func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	if e := s.mutable(); e != nil {
		writeError(w, e)
		return
	}
	var req sessionRequest
	if e := decode(r, &req); e != nil {
		writeError(w, e)
		return
	}
	if req.Name == "" {
		writeError(w, apiErrorf(http.StatusBadRequest, "invalid_argument", "name is required"))
		return
	}
	var ins []idlog.Fact
	if req.Facts != "" {
		fs, err := idlog.ParseFacts(req.Facts)
		if err != nil {
			writeError(w, fromEngineError(err))
			return
		}
		ins = fs
	}
	sess, err := s.sessions.create(req.Name, idlog.NewDatabase())
	if err != nil {
		writeError(w, apiErrorf(http.StatusConflict, "already_exists", "%v", err))
		return
	}
	// Initial facts run through the durable mutation path — previously
	// they went straight into the session database, so they were neither
	// in the WAL (lost on restart) nor published to followers.
	if len(ins) > 0 {
		if _, e := s.applyMutation(sess, ins, nil, budget{}); e != nil {
			s.sessions.drop(req.Name)
			writeError(w, e)
			return
		}
	} else {
		// An empty create still writes a (factless) record: without it
		// the session's existence would vanish on restart and followers
		// would never learn the session exists.
		s.walMu.RLock()
		_, err := s.logAndPublish(wal.Record{Session: req.Name})
		s.walMu.RUnlock()
		if err != nil {
			s.sessions.drop(req.Name)
			s.degradeWAL(err)
			writeError(w, degradedError(err))
			return
		}
	}
	writeJSON(w, http.StatusOK, sess.info())
}

func (s *Server) handleSessionList(w http.ResponseWriter, r *http.Request) {
	sessions := s.sessions.list()
	infos := make([]sessionInfo, len(sessions))
	for i, sess := range sessions {
		infos[i] = sess.info()
	}
	writeJSON(w, http.StatusOK, map[string]any{"sessions": infos})
}

func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	if e := s.mutable(); e != nil {
		writeError(w, e)
		return
	}
	name := r.PathValue("name")
	if !s.sessions.drop(name) {
		writeError(w, apiErrorf(http.StatusNotFound, "not_found", "session %q not found", name))
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"deleted": name})
}

// handleHealthz is pure liveness: the process is up and serving HTTP.
// It stays 200 while draining or degraded — restarting a process that
// is alive but not ready only makes things worse. Routability belongs
// to /readyz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	s.programsMu.RLock()
	nprogs := len(s.programs)
	s.programsMu.RUnlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   status,
		"uptime_s": time.Since(s.metrics.start).Seconds(),
		"inflight": s.inflight.Load(),
		"queued":   s.queued.Load(),
		"programs": nprogs,
		"sessions": s.sessions.len(),
	})
}

// handleReadyz is readiness: should traffic be routed here? 503 while
// draining, while the WAL is degraded (writes would be refused), or —
// on a follower — while replication is disconnected, the lease is
// stale, or the applied LSN lags the primary beyond the bound.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	type notReady struct {
		reason string
		detail map[string]any
	}
	var nr *notReady
	switch {
	case s.draining.Load():
		nr = &notReady{reason: "draining"}
	case s.walDegraded.Load():
		detail := map[string]any{}
		if msg := s.walDegradedMsg.Load(); msg != nil {
			detail["wal_error"] = *msg
		}
		nr = &notReady{reason: "wal_degraded", detail: detail}
	default:
		if p := s.followerProbe.Load(); p != nil {
			st := (*p)()
			if !st.Ready {
				nr = &notReady{reason: st.Reason, detail: map[string]any{
					"applied_lsn": st.AppliedLSN,
					"primary_lsn": st.PrimaryLSN,
					"lag_entries": st.LagEntries,
				}}
			}
		}
	}
	if nr == nil {
		writeJSON(w, http.StatusOK, map[string]any{"status": "ready"})
		return
	}
	body := map[string]any{"status": "not_ready", "reason": nr.reason}
	for k, v := range nr.detail {
		body[k] = v
	}
	writeJSON(w, http.StatusServiceUnavailable, body)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	gauges := map[string]float64{
		"idlogd_inflight_requests":   float64(s.inflight.Load()),
		"idlogd_queued_requests":     float64(s.queued.Load()),
		"idlogd_sessions_active":     float64(s.sessions.len()),
		"idlogd_worker_slots":        float64(s.cfg.MaxConcurrent),
		"idlogd_max_parallelism":     float64(s.cfg.MaxParallelism),
		"idlogd_max_partitions":      float64(s.cfg.MaxPartitions),
		"idlogd_replication_streams": float64(s.metrics.replStreams.Load()),
	}
	if s.walDegraded.Load() {
		gauges["idlogd_wal_degraded"] = 1
	} else {
		gauges["idlogd_wal_degraded"] = 0
	}
	if st, ok := s.followerStatus(); ok {
		gauges["idlogd_replication_lag_entries"] = float64(st.LagEntries)
		if st.Ready {
			gauges["idlogd_replication_ready"] = 1
		} else {
			gauges["idlogd_replication_ready"] = 0
		}
	}
	edb := 0
	base := s.base.db.Load()
	for _, name := range base.Names() {
		edb += base.Relation(name).Len()
	}
	gauges["idlogd_edb_tuples"] = float64(edb)
	s.metrics.render(&b, gauges)
	if s.cfg.Engine.Disk() {
		hits, misses := s.cfg.Engine.Cache().Stats()
		writeCounter := func(name, help string, v uint64) {
			fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
		}
		writeCounter("idlogd_storage_cache_hits_total", "Segment block reads served from the decoded-block cache.", hits)
		writeCounter("idlogd_storage_cache_misses_total", "Segment block reads that decoded from disk.", misses)
		fmt.Fprintf(&b, "# HELP idlogd_storage_cache_bytes Decoded segment blocks resident in the cache.\n# TYPE idlogd_storage_cache_bytes gauge\nidlogd_storage_cache_bytes %d\n",
			s.cfg.Engine.Cache().Bytes())
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = io.WriteString(w, b.String())
}
