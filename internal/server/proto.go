// Package server implements idlogd, the long-lived IDLOG query server:
// programs are compiled once and held immutable, databases are frozen
// snapshots shared by any number of concurrent evaluations, and every
// request runs under an internal/guard budget mapped from the wire.
//
// The wire protocol is JSON over HTTP:
//
//	POST   /v1/programs            register {name, source}
//	GET    /v1/programs            list registered programs
//	POST   /v1/query               evaluate a goal or dump predicates
//	POST   /v1/sample              run a §3.3 sampling query
//	POST   /v1/sessions            create a named database snapshot
//	GET    /v1/sessions            list sessions
//	DELETE /v1/sessions/{name}     drop a session
//	POST   /v1/facts               mutate the base database (inserts+deletes)
//	POST   /v1/sessions/{name}/facts  mutate a session (inserts+deletes)
//	POST   /v1/sessions/{name}/views  register a live incremental view
//	GET    /v1/sessions/{name}/views  list a session's live views
//	GET    /healthz                liveness + drain state
//	GET    /metrics                Prometheus text exposition
//
// Mutations run through Database.Apply (deletes before inserts,
// whole-batch validation, copy-on-write snapshots) and, when idlogd
// runs with -wal, are appended to a write-ahead log and fsynced before
// they are acknowledged; on restart the daemon replays the log over the
// last checkpoint snapshot. Live views are materialized models kept
// consistent under mutations by delta/DRed propagation (see
// internal/incremental), so querying them costs no evaluation.
//
// Concurrency model: the compiled *idlog.Program and the frozen
// *idlog.Database are shared immutably across request goroutines; all
// mutable evaluation state (IDB work relations, ID-relations, compiled
// clauses, guards, provenance) is private to one evaluation. Session
// fact loads never mutate a live snapshot — they thaw a copy, add the
// facts, freeze, and atomically swap the session pointer, so in-flight
// queries keep reading the snapshot they started with.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"idlog"
	"idlog/internal/relation"
	"idlog/internal/value"
)

// budgetFields are the per-request governance knobs, shared by query
// and sample requests. They map 1:1 onto internal/guard limits.
type budgetFields struct {
	// Timeout is a Go duration string ("500ms", "5s"). Empty applies
	// the server default; values above the server maximum are clamped.
	Timeout string `json:"timeout,omitempty"`
	// MaxTuples caps materialized tuples (0 = server default).
	MaxTuples int `json:"max_tuples,omitempty"`
	// MaxDerivations caps body instantiations (0 = server default).
	MaxDerivations int `json:"max_derivations,omitempty"`
	// Parallelism asks for the fixpoint to run on this many worker
	// goroutines (answers stay byte-identical to sequential runs).
	// 0 applies the server default (auto: GOMAXPROCS clamped to 8);
	// 1 forces sequential; values above the server's max_parallelism
	// are clamped.
	Parallelism int `json:"parallelism,omitempty"`
	// Partitions asks for recursive delta passes to hash-partition
	// their joins this many ways (answers stay byte-identical at any
	// setting). 0 applies the server default (follow the resolved
	// parallelism); 1 disables partitioning; values above the server's
	// max_partitions are clamped.
	Partitions int `json:"partitions,omitempty"`
	// Partial asks for the partial result alongside a budget-tripped
	// error response.
	Partial bool `json:"partial,omitempty"`
}

// programRequest registers a program.
type programRequest struct {
	Name   string `json:"name"`
	Source string `json:"source"`
}

// programInfo describes a registered program.
type programInfo struct {
	Name    string   `json:"name"`
	Strata  int      `json:"strata"`
	Inputs  []string `json:"inputs"`
	Outputs []string `json:"outputs"`
}

// queryRequest evaluates a goal (bindings) or dumps predicates
// (relations) against a program and a database.
type queryRequest struct {
	// Program names a registered program; Source supplies one inline.
	// Exactly one must be set.
	Program string `json:"program,omitempty"`
	Source  string `json:"source,omitempty"`
	// Session names a snapshot database; Facts supplies ad-hoc ground
	// facts in program syntax. Both may be set: the facts extend a
	// request-private copy of the session snapshot.
	Session string `json:"session,omitempty"`
	Facts   string `json:"facts,omitempty"`
	// View names a live view of the session: predicates are served
	// straight from the incrementally maintained model, with no
	// evaluation. Requires Session and Predicates; Program, Source,
	// Goal, and Facts must be absent.
	View string `json:"view,omitempty"`
	// Goal is a query body ("tc(a, X), X != b"); bindings come back as
	// vars/rows. Alternatively Predicates asks for whole relations of
	// the computed model. Exactly one of the two must be set.
	Goal       string   `json:"goal,omitempty"`
	Predicates []string `json:"predicates,omitempty"`
	// Seed selects the seeded random oracle; nil runs deterministic.
	Seed *uint64 `json:"seed,omitempty"`
	// Magic opts this goal query out of the magic-sets demand rewrite
	// when false; nil (and true) use the server default. Answers are
	// identical either way.
	Magic *bool `json:"magic,omitempty"`
	budgetFields
}

// relationJSON is one relation of a response.
type relationJSON struct {
	Arity  int     `json:"arity"`
	Tuples [][]any `json:"tuples"`
	// Text is the canonical rendering, byte-identical to the CLI's
	// output for the same relation.
	Text string `json:"text"`
}

// statsJSON mirrors idlog.Stats on the wire.
type statsJSON struct {
	Derivations   int `json:"derivations"`
	Inserted      int `json:"inserted"`
	TuplesScanned int `json:"tuples_scanned"`
	Iterations    int `json:"iterations"`
	IDRelations   int `json:"id_relations"`
	// Partitions is the largest hash-partition fan-out any delta pass
	// used (0 = no partitioned pass ran); PartitionedRounds counts the
	// fixpoint rounds that partitioned at least one pass, and
	// PartitionSkew the worst largest-partition-over-mean ratio.
	Partitions        int     `json:"partitions,omitempty"`
	PartitionedRounds int     `json:"partitioned_rounds,omitempty"`
	PartitionSkew     float64 `json:"partition_skew,omitempty"`
}

func statsOf(s idlog.Stats) *statsJSON {
	return &statsJSON{
		Derivations:       s.Derivations,
		Inserted:          s.Inserted,
		TuplesScanned:     s.TuplesScanned,
		Iterations:        s.Iterations,
		IDRelations:       s.IDRelations,
		Partitions:        s.Partitions,
		PartitionedRounds: s.PartitionedRounds,
		PartitionSkew:     s.PartitionSkew,
	}
}

// queryResponse carries bindings (goal queries) or relations
// (predicate queries).
type queryResponse struct {
	Vars      []string                `json:"vars,omitempty"`
	Rows      [][]any                 `json:"rows,omitempty"`
	Holds     *bool                   `json:"holds,omitempty"`
	Relations map[string]relationJSON `json:"relations,omitempty"`
	Stats     *statsJSON              `json:"stats,omitempty"`
	// Incomplete marks a partial model (only on budget-tripped
	// responses that asked for partial results).
	Incomplete bool    `json:"incomplete,omitempty"`
	ElapsedMS  float64 `json:"elapsed_ms"`
}

// sampleRequest runs the paper's sampling query (§3.3): choose K
// tuples from every group of Relation.
type sampleRequest struct {
	Relation string `json:"relation"`
	Arity    int    `json:"arity"`
	// GroupBy are 1-based grouping columns (empty = one global group).
	GroupBy []int  `json:"group_by,omitempty"`
	K       int    `json:"k"`
	Seed    uint64 `json:"seed"`
	Session string `json:"session,omitempty"`
	Facts   string `json:"facts,omitempty"`
	budgetFields
}

// sampleResponse is the chosen sample.
type sampleResponse struct {
	Rows      [][]any `json:"rows"`
	Text      string  `json:"text"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// sessionRequest creates a session from ground facts.
type sessionRequest struct {
	Name  string `json:"name,omitempty"`
	Facts string `json:"facts,omitempty"`
}

// factsRequest mutates a database: Inserts and Deletes are ground
// facts in program syntax ("e(a, b). e(b, c)."). Facts is a legacy
// alias for Inserts (insert-only loads). Deletes apply before inserts.
// The budget fields bound the incremental maintenance work on the
// session's live views.
type factsRequest struct {
	Facts   string `json:"facts,omitempty"`
	Inserts string `json:"inserts,omitempty"`
	Deletes string `json:"deletes,omitempty"`
	budgetFields
}

// viewUpdateJSON reports how one live view absorbed a mutation.
type viewUpdateJSON struct {
	Name string `json:"name"`
	idlog.UpdateStats
	// Rebuilt marks a view that failed to update incrementally and was
	// recomputed from scratch; Dropped one whose rebuild also failed and
	// which was removed.
	Rebuilt bool   `json:"rebuilt,omitempty"`
	Dropped bool   `json:"dropped,omitempty"`
	Error   string `json:"error,omitempty"`
}

// mutateResponse acknowledges a durable mutation. Inserted/Deleted are
// the effective EDB changes (no-ops excluded); the acknowledgment is
// sent only after the WAL entry (when a WAL is configured) is fsynced.
type mutateResponse struct {
	Session   string           `json:"session,omitempty"`
	Snapshot  uint64           `json:"snapshot"`
	Inserted  int              `json:"inserted"`
	Deleted   int              `json:"deleted"`
	Views     []viewUpdateJSON `json:"views,omitempty"`
	ElapsedMS float64          `json:"elapsed_ms"`
}

// viewRequest registers a live view on a session: the named program (or
// an inline source) is evaluated over the session's snapshot and then
// maintained incrementally under every subsequent mutation.
type viewRequest struct {
	Name    string  `json:"name"`
	Program string  `json:"program,omitempty"`
	Source  string  `json:"source,omitempty"`
	Seed    *uint64 `json:"seed,omitempty"`
	budgetFields
}

// viewInfo describes one live view.
type viewInfo struct {
	Name      string            `json:"name"`
	Program   string            `json:"program"`
	Relations map[string]int    `json:"relations"`
	Updates   idlog.UpdateStats `json:"updates"`
	Rebuilds  uint64            `json:"rebuilds"`
}

// sessionInfo describes one live session.
type sessionInfo struct {
	Name      string         `json:"name"`
	Relations map[string]int `json:"relations"`
	IdleS     float64        `json:"idle_s"`
	Snapshot  uint64         `json:"snapshot"`
}

// errorBody is the uniform error envelope: the idlog.Error taxonomy
// code in snake_case, the failing operation, and a human message. A
// budget-tripped query that asked for partial results additionally
// carries them.
type errorBody struct {
	Error struct {
		Code    string `json:"code"`
		Op      string `json:"op,omitempty"`
		Message string `json:"message"`
	} `json:"error"`
	Partial *queryResponse `json:"partial,omitempty"`
}

// apiError pairs an HTTP status with a typed error envelope.
// retryAfter, when nonzero, becomes a Retry-After header (seconds) —
// degraded-mode 503s use it to tell clients to back off.
type apiError struct {
	status     int
	code       string
	op         string
	message    string
	retryAfter int
	partial    *queryResponse
}

func (e *apiError) Error() string { return fmt.Sprintf("%d %s: %s", e.status, e.code, e.message) }

// statusClientClosed is nginx's non-standard 499 "client closed
// request": the caller canceled, nobody is listening for the body.
const statusClientClosed = 499

// apiErrorf builds a plain apiError.
func apiErrorf(status int, code, format string, args ...any) *apiError {
	return &apiError{status: status, code: code, message: fmt.Sprintf(format, args...)}
}

// fromEngineError maps an engine error onto HTTP semantics via the
// typed taxonomy: invalid input 400, cancellation 499, deadline 504,
// spent budget 429, engine invariant 500.
func fromEngineError(err error) *apiError {
	var ie *idlog.Error
	if errors.As(err, &ie) {
		status := http.StatusInternalServerError
		switch ie.Code {
		case idlog.CodeParseError, idlog.CodeStratificationError:
			status = http.StatusBadRequest
		case idlog.CodeCanceled:
			status = statusClientClosed
		case idlog.CodeDeadlineExceeded:
			status = http.StatusGatewayTimeout
		case idlog.CodeResourceExhausted:
			status = http.StatusTooManyRequests
		}
		return &apiError{status: status, code: ie.Code.String(), op: ie.Op, message: ie.Error()}
	}
	return &apiError{status: http.StatusBadRequest, code: "invalid_argument", message: err.Error()}
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// writeError writes the uniform error envelope.
func writeError(w http.ResponseWriter, e *apiError) {
	if e.retryAfter > 0 {
		w.Header().Set("Retry-After", fmt.Sprintf("%d", e.retryAfter))
	}
	var body errorBody
	body.Error.Code = e.code
	body.Error.Op = e.op
	body.Error.Message = e.message
	body.Partial = e.partial
	writeJSON(w, e.status, body)
}

// tupleJSON renders a tuple as a JSON array: u-constants as strings,
// i-constants as numbers.
func tupleJSON(t value.Tuple) []any {
	out := make([]any, len(t))
	for i, v := range t {
		if v.IsInt() {
			out[i] = v.Num
		} else {
			out[i] = v.String()
		}
	}
	return out
}

// relationBody renders a relation in canonical order.
func relationBody(r *relation.Relation) relationJSON {
	sorted := r.Sorted()
	tuples := make([][]any, len(sorted))
	for i, t := range sorted {
		tuples[i] = tupleJSON(t)
	}
	return relationJSON{Arity: r.Arity(), Tuples: tuples, Text: r.String()}
}

// budget is a request's resolved, clamped governance envelope.
type budget struct {
	timeout        time.Duration
	maxTuples      int
	maxDerivations int
	parallelism    int
	partitions     int
}

// parseBudget resolves the request's budget fields against the server
// defaults, clamping the timeout and the parallelism.
func (s *Server) parseBudget(b budgetFields) (budget, *apiError) {
	out := budget{timeout: s.cfg.DefaultTimeout}
	if b.Timeout != "" {
		d, perr := time.ParseDuration(b.Timeout)
		if perr != nil || d < 0 {
			return budget{}, apiErrorf(http.StatusBadRequest, "invalid_argument", "bad timeout %q", b.Timeout)
		}
		out.timeout = d
	}
	if s.cfg.MaxTimeout > 0 && (out.timeout == 0 || out.timeout > s.cfg.MaxTimeout) {
		out.timeout = s.cfg.MaxTimeout
	}
	out.maxTuples = b.MaxTuples
	if out.maxTuples == 0 {
		out.maxTuples = s.cfg.DefaultMaxTuples
	}
	if out.maxTuples < 0 {
		return budget{}, apiErrorf(http.StatusBadRequest, "invalid_argument", "bad max_tuples %d", b.MaxTuples)
	}
	out.maxDerivations = b.MaxDerivations
	if out.maxDerivations == 0 {
		out.maxDerivations = s.cfg.DefaultMaxDerivations
	}
	if out.maxDerivations < 0 {
		return budget{}, apiErrorf(http.StatusBadRequest, "invalid_argument", "bad max_derivations %d", b.MaxDerivations)
	}
	if b.Parallelism < 0 {
		return budget{}, apiErrorf(http.StatusBadRequest, "invalid_argument", "bad parallelism %d", b.Parallelism)
	}
	// Both knobs resolve to concrete values here rather than in the
	// engine so the server's clamps are authoritative: an unset request
	// takes the engine's auto default (GOMAXPROCS clamped) but never
	// exceeds -max-parallelism / -max-partitions.
	out.parallelism = b.Parallelism
	if out.parallelism == 0 {
		out.parallelism = idlog.DefaultParallelism()
	}
	if out.parallelism > s.cfg.MaxParallelism {
		out.parallelism = s.cfg.MaxParallelism
	}
	if b.Partitions < 0 {
		return budget{}, apiErrorf(http.StatusBadRequest, "invalid_argument", "bad partitions %d", b.Partitions)
	}
	out.partitions = b.Partitions
	if out.partitions == 0 {
		out.partitions = out.parallelism
	}
	if out.partitions > s.cfg.MaxPartitions {
		out.partitions = s.cfg.MaxPartitions
	}
	return out, nil
}

// options converts the resolved budget into engine options.
func (b budget) options() []idlog.Option {
	var opts []idlog.Option
	if b.timeout > 0 {
		opts = append(opts, idlog.WithTimeout(b.timeout))
	}
	if b.maxTuples > 0 {
		opts = append(opts, idlog.WithMaxTuples(b.maxTuples))
	}
	if b.maxDerivations > 0 {
		opts = append(opts, idlog.WithMaxDerivations(b.maxDerivations))
	}
	// Always emitted explicitly (1 = sequential / unpartitioned): the
	// engine's own auto defaults would bypass the server clamps.
	if b.parallelism > 0 {
		opts = append(opts, idlog.WithParallelism(b.parallelism))
	}
	if b.partitions > 0 {
		opts = append(opts, idlog.WithPartitions(b.partitions))
	}
	return opts
}
