package server

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"idlog/internal/core"
	"idlog/internal/relation"
)

// metrics is idlogd's observability state. Everything on the request
// path is an atomic add (or, for per-predicate and per-status rows, a
// lock-free sync.Map upsert), so instrumentation costs nanoseconds per
// request and nothing at all when /metrics is never scraped — text
// rendering happens only at scrape time.
type metrics struct {
	start time.Time

	endpoints map[string]*endpointMetrics

	tuplesTotal       atomic.Uint64
	derivationsTotal  atomic.Uint64
	scannedTotal      atomic.Uint64
	admissionRejected atomic.Uint64
	sessionsEvicted   atomic.Uint64
	parallelQueries   atomic.Uint64

	// Partition-parallel counters: evaluations that ran at least one
	// hash-partitioned delta pass, and the skew (largest partition over
	// mean, Float64bits-encoded) of the most recent such evaluation.
	partitionedQueries atomic.Uint64
	partitionSkew      atomic.Uint64

	// Prepared-query registry counters: goal queries served by a cached
	// PreparedQuery (skipping parse+compile+plan) vs. ones that had to
	// prepare.
	planCacheHits   atomic.Uint64
	magicQueries    atomic.Uint64
	planCacheMisses atomic.Uint64

	// Mutation-path counters: effective EDB changes acknowledged, DRed
	// rederivations across live-view maintenance, view rebuilds after
	// failed incremental updates, and WAL activity.
	factsInserted       atomic.Uint64
	factsDeleted        atomic.Uint64
	factsRederived      atomic.Uint64
	viewRebuilds        atomic.Uint64
	walAppends          atomic.Uint64
	walCheckpoints      atomic.Uint64
	walCheckpointErrors atomic.Uint64
	walDegradedEvents   atomic.Uint64

	// Replication counters: records applied on a follower, records
	// shipped out of a primary's stream, snapshots served, wholesale
	// resyncs performed, and the live stream gauge.
	replApplied   atomic.Uint64
	replShipped   atomic.Uint64
	replSnapshots atomic.Uint64
	replResyncs   atomic.Uint64
	replStreams   atomic.Int64

	// predicates maps predicate name -> *predStats.
	predicates sync.Map
}

// predStats are per-predicate evaluation counters: how often the
// predicate was asked for and how many result tuples it produced.
type predStats struct {
	queries atomic.Uint64
	tuples  atomic.Uint64
}

// latencyBuckets are the histogram upper bounds in seconds;
// numBuckets counts them.
const numBuckets = 6

var latencyBuckets = [numBuckets]float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5}

// endpointMetrics instruments one endpoint: a fixed-bucket latency
// histogram plus per-status-code request counters.
type endpointMetrics struct {
	name     string
	buckets  [numBuckets]atomic.Uint64 // observations at or under each bound
	count    atomic.Uint64
	sumNanos atomic.Uint64
	// byStatus maps int status -> *atomic.Uint64.
	byStatus sync.Map
}

// endpointNames is the fixed instrumentation universe; requests
// outside it (404 paths) land on "other".
var endpointNames = []string{"programs", "query", "sample", "sessions", "facts", "views", "replication", "healthz", "readyz", "metrics", "other"}

func newMetrics() *metrics {
	m := &metrics{start: time.Now(), endpoints: make(map[string]*endpointMetrics, len(endpointNames))}
	for _, n := range endpointNames {
		m.endpoints[n] = &endpointMetrics{name: n}
	}
	return m
}

// observe records one finished request.
func (m *metrics) observe(endpoint string, status int, elapsed time.Duration) {
	e, ok := m.endpoints[endpoint]
	if !ok {
		e = m.endpoints["other"]
	}
	secs := elapsed.Seconds()
	for i, ub := range latencyBuckets {
		if secs <= ub {
			e.buckets[i].Add(1)
			break
		}
	}
	e.count.Add(1)
	e.sumNanos.Add(uint64(elapsed.Nanoseconds()))
	c, ok := e.byStatus.Load(status)
	if !ok {
		c, _ = e.byStatus.LoadOrStore(status, new(atomic.Uint64))
	}
	c.(*atomic.Uint64).Add(1)
}

// observeEval accumulates one evaluation's engine counters.
func (m *metrics) observeEval(derivations, inserted, scanned int) {
	m.derivationsTotal.Add(uint64(derivations))
	m.tuplesTotal.Add(uint64(inserted))
	m.scannedTotal.Add(uint64(scanned))
}

// observePartitions records an evaluation's partition-parallel
// activity (no-op when no delta pass partitioned).
func (m *metrics) observePartitions(s core.Stats) {
	if s.PartitionedRounds == 0 {
		return
	}
	m.partitionedQueries.Add(1)
	if s.PartitionSkew > 0 {
		m.partitionSkew.Store(math.Float64bits(s.PartitionSkew))
	}
}

// observePredicate records that a predicate was served with n tuples.
func (m *metrics) observePredicate(pred string, n int) {
	p, ok := m.predicates.Load(pred)
	if !ok {
		p, _ = m.predicates.LoadOrStore(pred, &predStats{})
	}
	ps := p.(*predStats)
	ps.queries.Add(1)
	ps.tuples.Add(uint64(n))
}

// render writes the Prometheus text exposition format. gauges carries
// point-in-time values owned by the server (inflight, queue, session
// count).
func (m *metrics) render(b *strings.Builder, gauges map[string]float64) {
	header := func(name, help, typ string) {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	}

	header("idlogd_uptime_seconds", "Seconds since the server started.", "gauge")
	fmt.Fprintf(b, "idlogd_uptime_seconds %.3f\n", time.Since(m.start).Seconds())

	names := make([]string, 0, len(gauges))
	for n := range gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		header(n, "Point-in-time server gauge.", "gauge")
		fmt.Fprintf(b, "%s %g\n", n, gauges[n])
	}

	header("idlogd_requests_total", "Requests served, by endpoint and HTTP status.", "counter")
	for _, en := range endpointNames {
		e := m.endpoints[en]
		type row struct {
			status int
			n      uint64
		}
		var rows []row
		e.byStatus.Range(func(k, v any) bool {
			rows = append(rows, row{k.(int), v.(*atomic.Uint64).Load()})
			return true
		})
		sort.Slice(rows, func(i, j int) bool { return rows[i].status < rows[j].status })
		for _, r := range rows {
			fmt.Fprintf(b, "idlogd_requests_total{endpoint=%q,code=\"%d\"} %d\n", en, r.status, r.n)
		}
	}

	header("idlogd_request_duration_seconds", "Request latency.", "histogram")
	for _, en := range endpointNames {
		e := m.endpoints[en]
		count := e.count.Load()
		if count == 0 {
			continue
		}
		cum := uint64(0)
		for i, ub := range latencyBuckets {
			cum += e.buckets[i].Load()
			fmt.Fprintf(b, "idlogd_request_duration_seconds_bucket{endpoint=%q,le=\"%g\"} %d\n", en, ub, cum)
		}
		fmt.Fprintf(b, "idlogd_request_duration_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", en, count)
		fmt.Fprintf(b, "idlogd_request_duration_seconds_sum{endpoint=%q} %.6f\n", en, float64(e.sumNanos.Load())/1e9)
		fmt.Fprintf(b, "idlogd_request_duration_seconds_count{endpoint=%q} %d\n", en, count)
	}

	counter := func(name, help string, v uint64) {
		header(name, help, "counter")
		fmt.Fprintf(b, "%s %d\n", name, v)
	}
	counter("idlogd_derivations_total", "Body instantiations across all evaluations.", m.derivationsTotal.Load())
	counter("idlogd_tuples_total", "Tuples materialized across all evaluations.", m.tuplesTotal.Load())
	counter("idlogd_tuples_scanned_total", "Tuples scanned while matching body literals.", m.scannedTotal.Load())
	counter("idlogd_admission_rejected_total", "Requests rejected by admission control.", m.admissionRejected.Load())
	counter("idlogd_sessions_evicted_total", "Sessions evicted after idling past the TTL.", m.sessionsEvicted.Load())
	counter("idlogd_parallel_queries_total", "Evaluations that requested parallelism above 1.", m.parallelQueries.Load())
	counter("idlogd_partitioned_queries_total", "Evaluations that ran at least one hash-partitioned delta pass.", m.partitionedQueries.Load())
	header("idlogd_partition_skew_ratio", "Largest-partition-over-mean ratio of the most recent partitioned evaluation.", "gauge")
	fmt.Fprintf(b, "idlogd_partition_skew_ratio %g\n", math.Float64frombits(m.partitionSkew.Load()))
	counter("idlogd_plan_cache_hits_total", "Goal queries served by a cached prepared query (parse, compile, and planning skipped).", m.planCacheHits.Load())
	counter("idlogd_magic_queries_total", "Goal queries evaluated through the magic-sets demand rewrite.", m.magicQueries.Load())
	counter("idlogd_plan_cache_misses_total", "Goal queries that prepared (and cached) their query fresh.", m.planCacheMisses.Load())
	counter("idlogd_facts_inserted_total", "EDB tuples inserted by acknowledged mutations.", m.factsInserted.Load())
	counter("idlogd_facts_deleted_total", "EDB tuples deleted by acknowledged mutations.", m.factsDeleted.Load())
	counter("idlogd_facts_rederived_total", "Tuples rederived by DRed during live-view maintenance.", m.factsRederived.Load())
	counter("idlogd_view_rebuilds_total", "Live views rebuilt after a failed incremental update.", m.viewRebuilds.Load())
	counter("idlogd_wal_appends_total", "Mutation records appended to the write-ahead log.", m.walAppends.Load())
	counter("idlogd_wal_checkpoints_total", "Checkpoint-and-truncate cycles completed.", m.walCheckpoints.Load())
	counter("idlogd_wal_checkpoint_errors_total", "Checkpoint attempts that failed (retried on the next mutation).", m.walCheckpointErrors.Load())
	counter("idlogd_wal_degraded_events_total", "Times the WAL flipped into degraded (read-only) mode.", m.walDegradedEvents.Load())
	counter("idlogd_replication_applied_total", "Replicated records applied by this server as a follower.", m.replApplied.Load())
	counter("idlogd_replication_shipped_total", "Records shipped to followers over replication streams.", m.replShipped.Load())
	counter("idlogd_replication_snapshots_total", "Snapshot bootstraps served to followers.", m.replSnapshots.Load())
	counter("idlogd_replication_resyncs_total", "Wholesale snapshot resyncs performed by this server as a follower.", m.replResyncs.Load())

	// Process-global engine counters (not per-server): join-planner
	// activity and tuple-store hash-collision health.
	counter("idlogd_plan_reorders_total", "Clause bodies the cost-based join planner reordered away from the analysis order.", core.PlanReordersTotal())
	primCol, secCol := relation.CollisionCounts()
	counter("idlogd_tuple_store_primary_collisions_total", "64-bit hash collisions observed in relation primary tables.", primCol)
	counter("idlogd_tuple_store_secondary_collisions_total", "64-bit hash collisions observed in secondary index buckets.", secCol)

	type prow struct {
		pred            string
		queries, tuples uint64
	}
	var prows []prow
	m.predicates.Range(func(k, v any) bool {
		ps := v.(*predStats)
		prows = append(prows, prow{k.(string), ps.queries.Load(), ps.tuples.Load()})
		return true
	})
	sort.Slice(prows, func(i, j int) bool { return prows[i].pred < prows[j].pred })
	header("idlogd_predicate_queries_total", "Times each predicate was served.", "counter")
	for _, r := range prows {
		fmt.Fprintf(b, "idlogd_predicate_queries_total{predicate=%q} %d\n", r.pred, r.queries)
	}
	header("idlogd_predicate_tuples_total", "Result tuples served per predicate.", "counter")
	for _, r := range prows {
		fmt.Fprintf(b, "idlogd_predicate_tuples_total{predicate=%q} %d\n", r.pred, r.tuples)
	}
}
