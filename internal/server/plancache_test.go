package server

import (
	"bytes"
	"net/http"
	"strings"
	"testing"
)

// TestGoalParseErrorTyped pins the contract for a malformed goal on an
// otherwise valid request: 400 with the typed engine code, on both the
// registered-program and inline-source paths, with the plan cache on
// and off (the prepared path must wrap goal parse errors exactly as
// the per-request path does).
func TestGoalParseErrorTyped(t *testing.T) {
	for _, mode := range []struct {
		name string
		cfg  Config
	}{
		{"cache on", Config{}},
		{"cache off", Config{NoPlanCache: true}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			s, ts := newTestServer(t, mode.cfg)
			if err := s.RegisterProgram("tc", tcProgram); err != nil {
				t.Fatal(err)
			}
			for _, req := range []queryRequest{
				{Program: "tc", Goal: "tc(a, X"},        // registered program
				{Source: "p(x).", Goal: "p(X), q(Y, )"}, // inline source
			} {
				var eb errorBody
				code := post(t, ts.URL+"/v1/query", req, &eb)
				if code != 400 {
					t.Fatalf("goal %q: status %d, want 400 (%+v)", req.Goal, code, eb)
				}
				if eb.Error.Code != "parse_error" {
					t.Fatalf("goal %q: code %q, want parse_error", req.Goal, eb.Error.Code)
				}
				if !strings.Contains(eb.Error.Message, "goal") {
					t.Fatalf("goal %q: message %q does not name the goal", req.Goal, eb.Error.Message)
				}
			}
		})
	}
}

// TestPreparedQueryCache exercises the prepared-query path: repeated
// goal queries against a registered program and an inline source hit
// the prepared cache (metrics count one miss then hits), answers are
// identical to the cache-off server, and /metrics exposes the
// counters.
func TestPreparedQueryCache(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	_, tsOff := newTestServer(t, Config{NoPlanCache: true})

	ask := func(url string, req queryRequest) queryResponse {
		t.Helper()
		var qr queryResponse
		if code := post(t, url+"/v1/query", req, &qr); code != 200 {
			t.Fatalf("query: status %d", code)
		}
		return qr
	}

	req := queryRequest{Source: tcProgram, Facts: tcFacts, Goal: "tc(a, X)"}
	var rows [][]any
	for i := 0; i < 3; i++ {
		qr := ask(ts.URL, req)
		if i == 0 {
			rows = qr.Rows
		} else if len(qr.Rows) != len(rows) {
			t.Fatalf("run %d: %d rows, want %d", i, len(qr.Rows), len(rows))
		}
	}
	off := ask(tsOff.URL, req)
	if len(off.Rows) != len(rows) {
		t.Fatalf("cache off: %d rows, want %d", len(off.Rows), len(rows))
	}

	hits, misses := s.metrics.planCacheHits.Load(), s.metrics.planCacheMisses.Load()
	if misses != 1 || hits != 2 {
		t.Fatalf("prepared cache: hits=%d misses=%d, want 2/1", hits, misses)
	}
	if s.queries.prepared.len() != 1 || s.queries.programs.len() != 1 {
		t.Fatalf("cache sizes: prepared=%d programs=%d, want 1/1",
			s.queries.prepared.len(), s.queries.programs.len())
	}

	// The same goal against a registered program is a distinct entry.
	if err := s.RegisterProgram("tc", tcProgram); err != nil {
		t.Fatal(err)
	}
	ask(ts.URL, queryRequest{Program: "tc", Facts: tcFacts, Goal: "tc(a, X)"})
	ask(ts.URL, queryRequest{Program: "tc", Facts: tcFacts, Goal: "tc(a, X)"})
	if s.queries.prepared.len() != 2 {
		t.Fatalf("prepared entries = %d, want 2", s.queries.prepared.len())
	}

	// Metrics exposition carries the counters.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	text := buf.String()
	if !strings.Contains(text, "idlogd_plan_cache_hits_total 3") ||
		!strings.Contains(text, "idlogd_plan_cache_misses_total 2") {
		t.Fatalf("metrics missing plan cache counters")
	}
}

// TestQueryCacheLRUEviction pins the bounded-registry behavior: the
// prepared LRU never exceeds its capacity under many distinct goals.
func TestQueryCacheLRUEviction(t *testing.T) {
	c := newLRU[int, int](4)
	for i := 0; i < 100; i++ {
		c.put(i, i)
	}
	if c.len() != 4 {
		t.Fatalf("lru len = %d, want 4", c.len())
	}
	if _, ok := c.get(0); ok {
		t.Fatal("evicted entry still present")
	}
	for i := 96; i < 100; i++ {
		if v, ok := c.get(i); !ok || v != i {
			t.Fatalf("mru entry %d missing", i)
		}
	}
}
