// Package stable implements the stable-model semantics of Gelfond &
// Lifschitz for DATALOG with (possibly non-stratified) negation — one
// of the alternative non-deterministic query languages §3.2 of the
// paper surveys ([GL88], [SZ90]). The paper notes that every query
// defined by a non-stratified program under stable models is also
// definable by a stratified IDLOG program; the tests demonstrate the
// coincidence of answer families on the running examples.
//
// The implementation is the textbook one: ground the program over the
// active domain, then search candidate interpretations M over the
// derivable atoms, accepting M iff the least model of the
// Gelfond–Lifschitz reduct P^M equals M. The search space is 2^|atoms|;
// budgets keep it honest. This is a semantic reference implementation
// for cross-checking IDLOG, not a competitive ASP solver.
package stable

import (
	"fmt"
	"sort"

	"idlog/internal/ast"
	"idlog/internal/core"
	"idlog/internal/ground"
	"idlog/internal/parser"
	"idlog/internal/relation"
)

// Program is a DATALOG¬ program under stable-model semantics.
type Program struct {
	rules []ground.Rule
	idb   map[string]bool
}

// Parse builds a Program from ordinary clause syntax (single-atom
// heads; "not" in bodies; no ID-literals or choice).
func Parse(src string) (*Program, error) {
	prog, err := parser.Program(src)
	if err != nil {
		return nil, err
	}
	return FromClauses(prog.Clauses)
}

// FromClauses wraps already-parsed clauses.
func FromClauses(clauses []*ast.Clause) (*Program, error) {
	p := &Program{idb: map[string]bool{}}
	for _, c := range clauses {
		for _, l := range c.Body {
			if l.IsChoice() {
				return nil, fmt.Errorf("stable: choice literal in %q", c)
			}
			if l.Atom.IsID {
				return nil, fmt.Errorf("stable: ID-literal in %q", c)
			}
		}
		p.rules = append(p.rules, ground.Rule{Head: []*ast.Atom{c.Head}, Body: c.Body})
		p.idb[c.Head.Pred] = true
	}
	return p, nil
}

// Options bounds the model search.
type Options struct {
	// MaxAtoms caps the candidate-atom count (default 20; the search is
	// 2^MaxAtoms reduct checks).
	MaxAtoms int
	// Ground bounds the grounding phase.
	Ground ground.Options
}

// Model is one stable model, as a set of ground atoms.
type Model struct {
	Atoms []ground.Atom
}

// Relation projects the model onto one predicate.
func (m *Model) Relation(pred string, arity int) *relation.Relation {
	out := relation.New(pred, arity)
	for _, a := range m.Atoms {
		if a.Pred == pred {
			out.MustInsert(a.Tuple)
		}
	}
	return out
}

// Fingerprint canonically identifies the model.
func (m *Model) Fingerprint() string {
	keys := make([]string, len(m.Atoms))
	for i, a := range m.Atoms {
		keys[i] = a.Key()
	}
	sort.Strings(keys)
	s := ""
	for _, k := range keys {
		s += k + ";"
	}
	return s
}

// StableModels enumerates every stable model of the program over db,
// sorted by fingerprint.
func (p *Program) StableModels(db *core.Database, opts Options) ([]*Model, error) {
	maxAtoms := opts.MaxAtoms
	if maxAtoms == 0 {
		maxAtoms = 20
	}
	g, err := ground.Ground(p.rules, db, p.idb, opts.Ground)
	if err != nil {
		return nil, err
	}
	n := len(g.Atoms)
	if n > maxAtoms {
		return nil, fmt.Errorf("stable: %d candidate atoms exceed the budget of %d", n, maxAtoms)
	}
	var models []*Model
	for mask := uint64(0); mask < 1<<uint(n); mask++ {
		cand := map[string]bool{}
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				cand[g.Atoms[i].Key()] = true
			}
		}
		if isStable(g, cand) {
			m := &Model{}
			for i := 0; i < n; i++ {
				if mask&(1<<uint(i)) != 0 {
					m.Atoms = append(m.Atoms, g.Atoms[i])
				}
			}
			models = append(models, m)
		}
	}
	sort.Slice(models, func(i, j int) bool { return models[i].Fingerprint() < models[j].Fingerprint() })
	return models, nil
}

// isStable checks M = least model of the Gelfond–Lifschitz reduct P^M.
func isStable(g *ground.Program, m map[string]bool) bool {
	var reduct []ground.Clause
	for _, c := range g.Clauses {
		blocked := false
		for _, n := range c.Neg {
			if m[n.Key()] {
				blocked = true
				break
			}
		}
		if blocked {
			continue
		}
		reduct = append(reduct, ground.Clause{Head: c.Head, Pos: c.Pos})
	}
	least := ground.LeastModel(reduct)
	if len(least) != len(m) {
		return false
	}
	for k := range m {
		if !least[k] {
			return false
		}
	}
	return true
}
