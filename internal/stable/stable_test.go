package stable

import (
	"strings"
	"testing"

	"idlog/internal/analysis"
	"idlog/internal/core"
	"idlog/internal/parser"
	"idlog/internal/value"
)

func mustParse(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestWinMoveTwoCycle(t *testing.T) {
	// The classic non-stratified program: win(X) :- move(X,Y), not win(Y)
	// on a 2-cycle has exactly the two stable models {win(a)}, {win(b)}.
	p := mustParse(t, `win(X) :- move(X, Y), not win(Y).`)
	db := core.NewDatabase()
	_ = db.AddAll("move", value.Strs("a", "b"), value.Strs("b", "a"))
	models, err := p.StableModels(db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 2 {
		t.Fatalf("models = %d, want 2", len(models))
	}
	seen := map[string]bool{}
	for _, m := range models {
		if len(m.Atoms) != 1 {
			t.Fatalf("model = %v", m.Atoms)
		}
		seen[m.Atoms[0].String()] = true
	}
	if !seen["win(a)"] || !seen["win(b)"] {
		t.Fatalf("models = %v", seen)
	}
}

func TestWinMoveOddCycleHasNoStableModel(t *testing.T) {
	p := mustParse(t, `win(X) :- move(X, Y), not win(Y).`)
	db := core.NewDatabase()
	_ = db.AddAll("move",
		value.Strs("a", "b"), value.Strs("b", "c"), value.Strs("c", "a"))
	models, err := p.StableModels(db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 0 {
		t.Fatalf("odd cycle has %d stable models, want 0", len(models))
	}
}

func TestStratifiedProgramHasUniqueStableModel(t *testing.T) {
	// For stratified programs the unique stable model is the perfect
	// model; cross-check against the core engine.
	src := `
		reach(X) :- start(X).
		reach(Y) :- reach(X), e(X, Y).
		dead(X) :- node(X), not reach(X).
	`
	p := mustParse(t, src)
	db := core.NewDatabase()
	_ = db.AddAll("e", value.Strs("a", "b"), value.Strs("c", "c"))
	_ = db.AddAll("node", value.Strs("a"), value.Strs("b"), value.Strs("c"))
	_ = db.Add("start", value.Strs("a"))
	models, err := p.StableModels(db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 1 {
		t.Fatalf("stratified program has %d stable models, want 1", len(models))
	}
	prog, err := parser.Program(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := analysis.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Eval(info, db, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, pred := range []string{"reach", "dead"} {
		if !models[0].Relation(pred, 1).Equal(res.Relation(pred)) {
			t.Fatalf("stable model disagrees with perfect model on %s:\n%v\n%v",
				pred, models[0].Relation(pred, 1), res.Relation(pred))
		}
	}
}

func TestManWomanFamilyMatchesIDLOG(t *testing.T) {
	// §3.2: the stable models of the non-stratified man/woman program
	// form the same answer family as the IDLOG program of Example 2.
	p := mustParse(t, `
		man(X) :- person(X), not woman(X).
		woman(X) :- person(X), not man(X).
	`)
	db := core.NewDatabase()
	_ = db.AddAll("person", value.Strs("a"), value.Strs("b"))
	models, err := p.StableModels(db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 4 {
		t.Fatalf("stable models = %d, want 4", len(models))
	}
	stableFPs := map[string]bool{}
	for _, m := range models {
		stableFPs[m.Relation("man", 1).Fingerprint()] = true
	}

	idlogProg, err := parser.Program(`
		sex_guess(X, male) :- person(X).
		sex_guess(X, female) :- person(X).
		man(X) :- sex_guess[1](X, male, 1).
	`)
	if err != nil {
		t.Fatal(err)
	}
	info, err := analysis.Analyze(idlogProg)
	if err != nil {
		t.Fatal(err)
	}
	answers, err := core.Enumerate(info, db, []string{"man"}, core.EnumerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != len(models) {
		t.Fatalf("IDLOG answers %d vs stable models %d", len(answers), len(models))
	}
	for _, a := range answers {
		if !stableFPs[a.Relations["man"].Fingerprint()] {
			t.Fatalf("IDLOG answer %v not among stable models", a.Relations["man"])
		}
	}
}

func TestBudgets(t *testing.T) {
	p := mustParse(t, `p(X) :- d(X), not q(X). q(X) :- d(X), not p(X).`)
	db := core.NewDatabase()
	for i := 0; i < 15; i++ {
		_ = db.Add("d", value.Ints(int64(i)))
	}
	_, err := p.StableModels(db, Options{MaxAtoms: 10})
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("err = %v", err)
	}
}

func TestRejectsIDAndChoice(t *testing.T) {
	if _, err := Parse(`p(X) :- q[](X, T).`); err == nil {
		t.Fatalf("ID-literal accepted")
	}
	if _, err := Parse(`p(X) :- q(X, Y), choice((X), (Y)).`); err == nil {
		t.Fatalf("choice accepted")
	}
}

func TestFactsAreStable(t *testing.T) {
	p := mustParse(t, "p(a).\np(b).")
	models, err := p.StableModels(core.NewDatabase(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 1 || len(models[0].Atoms) != 2 {
		t.Fatalf("models = %+v", models)
	}
}
