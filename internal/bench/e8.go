package bench

import (
	"fmt"

	"idlog/internal/core"
	"idlog/internal/inflate"
	"idlog/internal/value"
)

// E8 compares the non-deterministic inflationary semantics (DL,
// §3.2.1 Example 3) with IDLOG's answer family for the same
// man/woman query, and reports the cost of each approach.
func E8(persons []int) *Table {
	t := &Table{
		ID:      "E8",
		Title:   "inflationary DL vs IDLOG on the man/woman query",
		Claim:   "(§3.2.1, Ex.3) the DL outcomes and the IDLOG answers form the same family (the powerset); IDLOG reaches each answer in one fixpoint run, DL fires one instantiation at a time",
		Columns: []string{"persons", "semantics", "answers/outcome", "time ms"},
	}
	dl, err := inflate.Parse(inflate.DL, `
		man(X) :- person(X), not woman(X).
		woman(X) :- person(X), not man(X).
	`)
	if err != nil {
		panic(err)
	}
	idlogInfo := mustAnalyze(mustParse(`
		sex_guess(X, male) :- person(X).
		sex_guess(X, female) :- person(X).
		man(X) :- sex_guess[1](X, male, 1).
	`))

	for _, n := range persons {
		db := core.NewDatabase()
		for i := 0; i < n; i++ {
			_ = db.Add("person", value.Strs(fmt.Sprintf("p%02d", i)))
		}

		var dlAnswers []*core.Answer
		dur, err := timed(func() error {
			var err error
			dlAnswers, err = dl.EnumerateOutcomes(db, []string{"man"}, inflate.EnumerateOptions{MaxStates: 2000000})
			return err
		})
		if err != nil {
			panic(err)
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(n), "DL enumerate",
			fmt.Sprint(len(dlAnswers)), ms(dur)})

		var idAnswers []*core.Answer
		dur, err = timed(func() error {
			var err error
			idAnswers, err = core.Enumerate(idlogInfo, db, []string{"man"}, core.EnumerateOptions{MaxRuns: 2000000})
			return err
		})
		if err != nil {
			panic(err)
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(n), "IDLOG enumerate",
			fmt.Sprint(len(idAnswers)), ms(dur)})

		if !sameFamily(dlAnswers, idAnswers) {
			panic("E8: DL and IDLOG answer families differ")
		}

		// Single-run cost.
		dur, err = timed(func() error {
			_, err := dl.Eval(db, inflate.Options{Seed: 7})
			return err
		})
		if err != nil {
			panic(err)
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(n), "DL single run", "1", ms(dur)})
		dur, _ = timed(func() error {
			evalOnce(idlogInfo, db, seededOpts(7))
			return nil
		})
		t.Rows = append(t.Rows, []string{fmt.Sprint(n), "IDLOG single run", "1", ms(dur)})
	}
	t.Notes = append(t.Notes, "answer families verified equal (fingerprint sets over man)")
	return t
}

func sameFamily(a, b []*core.Answer) bool {
	fa := map[string]bool{}
	for _, x := range a {
		fa[x.Relations["man"].Fingerprint()] = true
	}
	fb := map[string]bool{}
	for _, x := range b {
		fb[x.Relations["man"].Fingerprint()] = true
	}
	if len(fa) != len(fb) {
		return false
	}
	for k := range fa {
		if !fb[k] {
			return false
		}
	}
	return true
}
