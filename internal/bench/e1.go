package bench

import (
	"fmt"

	"idlog/internal/choice"
	"idlog/internal/core"
	"idlog/internal/relation"
	"idlog/internal/value"
)

// samplingIDLOG is the paper's one-clause multi-sample query (Ex. 5).
const samplingIDLOG = `select_two_emp(Name) :- emp[2](Name, Dept, N), N < 2.`

// samplingChoicePair is the defective two-independent-choices encoding
// discussed in Example 5 (plus the symmetric projection clause the
// paper elides, without which two-per-department is impossible).
const samplingChoicePair = `
	emp1(N, D) :- emp(N, D), choice((D), (N)).
	emp2(N, D) :- emp(N, D), choice((D), (N)).
	select_two_emp(N1) :- emp1(N1, D), emp2(N2, D), N1 != N2.
	select_two_emp(N2) :- emp1(N1, D), emp2(N2, D), N1 != N2.
`

// e1Complete reports whether sel holds exactly two employees from every
// department of emp.
func e1Complete(sel *core.Result, emp *core.Database) bool {
	rel := sel.Relation("select_two_emp")
	perDept := map[string]int{}
	for _, t := range emp.Relation("emp").Tuples() {
		if rel.Contains(value.Tuple{t[0]}) {
			perDept[t[1].String()]++
		}
	}
	groups := emp.Relation("emp").Groups([]int{1})
	if len(perDept) != len(groups) {
		return false
	}
	for _, n := range perDept {
		if n != 2 {
			return false
		}
	}
	return true
}

// E1 compares the IDLOG sampling query with the DATALOG^C pair
// encoding on correctness (fraction of seeded runs selecting exactly
// two employees per department) and cost.
func E1(sizes [][2]int, seeds int) *Table {
	t := &Table{
		ID:      "E1",
		Title:   "multi-sample sampling: IDLOG emp[2]+N<2 vs DATALOG^C pair encoding",
		Claim:   "(§1, §3.3, Ex.4–5) IDLOG defines k-sample queries directly and always correctly; independent choice pairs are slower and admit incomplete intended models",
		Columns: []string{"depts", "emp/dept", "variant", "ok-runs", "time/run ms", "derivations"},
	}
	idlogInfo := mustAnalyze(mustParse(samplingIDLOG))
	choiceProg := mustParse(samplingChoicePair)

	for _, sz := range sizes {
		depts, per := sz[0], sz[1]
		db := EmpDB(depts, per)

		okIDLOG, okChoice := 0, 0
		var dIDLOG, dChoice int64
		var derIDLOG, derChoice int

		for seed := 0; seed < seeds; seed++ {
			dur, err := timed(func() error {
				res := evalOnce(idlogInfo, db, seededOpts(uint64(seed)))
				derIDLOG += res.Stats.Derivations
				if e1Complete(res, db) {
					okIDLOG++
				}
				return nil
			})
			if err != nil {
				panic(err)
			}
			dIDLOG += dur.Microseconds()

			dur, err = timed(func() error {
				res, err := choice.Eval(choiceProg, db, choice.Options{Oracle: relation.RandomOracle{Seed: uint64(seed)}})
				if err != nil {
					return err
				}
				derChoice += res.Stats.Derivations
				if e1Complete(res, db) {
					okChoice++
				}
				return nil
			})
			if err != nil {
				panic(err)
			}
			dChoice += dur.Microseconds()
		}
		t.Rows = append(t.Rows,
			[]string{fmt.Sprint(depts), fmt.Sprint(per), "IDLOG emp[2]",
				fmt.Sprintf("%d/%d", okIDLOG, seeds),
				fmt.Sprintf("%.3f", float64(dIDLOG)/float64(seeds)/1000),
				fmt.Sprint(derIDLOG / seeds)},
			[]string{fmt.Sprint(depts), fmt.Sprint(per), "choice pair",
				fmt.Sprintf("%d/%d", okChoice, seeds),
				fmt.Sprintf("%.3f", float64(dChoice)/float64(seeds)/1000),
				fmt.Sprint(derChoice / seeds)},
		)
	}
	t.Notes = append(t.Notes,
		"ok-runs counts seeded runs whose answer has exactly 2 employees in every department",
		"the choice pair misses a department whenever its two independent choices coincide (probability 1/per-dept per department)")
	return t
}
