// Package bench implements the experiment harness of EXPERIMENTS.md:
// one generator per experiment (E1–E11), each returning a Table whose
// rows regenerate the corresponding claim of the paper. cmd/idlogbench
// prints the tables; the root-level bench_test.go exposes the same
// workloads as testing.B benchmarks.
package bench

import (
	"fmt"
	"os"
	"strings"
	"time"

	"idlog/internal/analysis"
	"idlog/internal/ast"
	"idlog/internal/core"
	"idlog/internal/parser"
	"idlog/internal/relation"
	"idlog/internal/value"
)

// Table is one experiment's output.
type Table struct {
	// ID is the experiment identifier (E1..E10).
	ID string
	// Title describes the experiment.
	Title string
	// Claim cites the paper's qualitative claim being checked.
	Claim string
	// Columns are the header names.
	Columns []string
	// Rows hold the measurements, already formatted.
	Rows [][]string
	// Notes carries caveats or derived observations.
	Notes []string
	// ElapsedNS is the wall-clock cost of generating the table,
	// recorded by Run for the JSON report.
	ElapsedNS int64
}

// Render formats the table for terminals.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	fmt.Fprintf(&b, "claim: %s\n", t.Claim)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, r := range t.Rows {
		for i, cell := range r {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// mustParse parses program text, panicking on error (harness-internal
// programs are constants).
func mustParse(src string) *ast.Program {
	p, err := parser.Program(src)
	if err != nil {
		panic(err)
	}
	return p
}

// mustAnalyze analyzes, panicking on error.
func mustAnalyze(p *ast.Program) *analysis.Info {
	info, err := analysis.Analyze(p)
	if err != nil {
		panic(err)
	}
	return info
}

// timed runs f once and returns its wall-clock duration.
func timed(f func() error) (time.Duration, error) {
	start := time.Now()
	err := f()
	return time.Since(start), err
}

// ms formats a duration in milliseconds with sensible precision.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.3f", float64(d.Microseconds())/1000.0)
}

// EmpDB builds the emp(Name, Dept) workload: depts × perDept.
func EmpDB(depts, perDept int) *core.Database {
	db := core.NewDatabase()
	for d := 0; d < depts; d++ {
		dept := value.Str(fmt.Sprintf("dept%03d", d))
		for e := 0; e < perDept; e++ {
			_ = db.Add("emp", value.Tuple{value.Str(fmt.Sprintf("e%03d_%04d", d, e)), dept})
		}
	}
	return db
}

// ChainFanDB builds the §4 optimization workload: a chain of length
// chain in relation p, where each chain node additionally points at fan
// distinct leaves.
func ChainFanDB(chain, fan int) *core.Database {
	db := core.NewDatabase()
	leaf := int64(1 << 20)
	for i := int64(0); i < int64(chain); i++ {
		_ = db.Add("p", value.Ints(i, i+1))
		for f := 0; f < fan; f++ {
			_ = db.Add("p", value.Ints(i, leaf))
			leaf++
		}
	}
	return db
}

// ChainDB builds e(i, i+1) for i in [0, n).
func ChainDB(n int) *core.Database {
	db := core.NewDatabase()
	for i := int64(0); i < int64(n); i++ {
		_ = db.Add("e", value.Ints(i, i+1))
	}
	return db
}

// GridDB builds a g×g grid graph in relation e (right and down edges).
func GridDB(g int) *core.Database {
	db := core.NewDatabase()
	id := func(r, c int) int64 { return int64(r*g + c) }
	for r := 0; r < g; r++ {
		for c := 0; c < g; c++ {
			if c+1 < g {
				_ = db.Add("e", value.Ints(id(r, c), id(r, c+1)))
			}
			if r+1 < g {
				_ = db.Add("e", value.Ints(id(r, c), id(r+1, c)))
			}
		}
	}
	return db
}

// noPlannerEnv disables the join planner for every harness evaluation
// when IDLOG_BENCH_NOPLANNER is set — the ablation baseline for
// comparing the E1–E14 suite with and without planning. (E15 compares
// on-vs-off within one run and ignores this knob for its "on" cells
// only in the sense that setting it collapses both cells to "off".)
var noPlannerEnv = os.Getenv("IDLOG_BENCH_NOPLANNER") != ""

// evalOnce analyzes-and-evaluates and returns the result.
func evalOnce(info *analysis.Info, db *core.Database, opts core.Options) *core.Result {
	if noPlannerEnv {
		opts.NoPlanner = true
	}
	res, err := core.Eval(info, db, opts)
	if err != nil {
		panic(err)
	}
	return res
}

// seededOpts returns options with a seeded random oracle.
func seededOpts(seed uint64) core.Options {
	return core.Options{Oracle: relation.RandomOracle{Seed: seed}}
}

// RenderMarkdown formats the table as GitHub-flavoured markdown, for
// pasting into EXPERIMENTS.md.
func (t *Table) RenderMarkdown() string {
	esc := func(cells []string) []string {
		out := make([]string, len(cells))
		for i, c := range cells {
			out[i] = strings.ReplaceAll(c, "|", "\\|")
		}
		return out
	}
	var b strings.Builder
	fmt.Fprintf(&b, "## %s — %s\n\n", t.ID, t.Title)
	fmt.Fprintf(&b, "**Claim.** %s\n\n", t.Claim)
	b.WriteString("| " + strings.Join(esc(t.Columns), " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, r := range t.Rows {
		b.WriteString("| " + strings.Join(esc(r), " | ") + " |\n")
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	return b.String()
}
