package bench

import (
	"fmt"

	"idlog/internal/adorn"
	"idlog/internal/choice"
	"idlog/internal/core"
	"idlog/internal/relation"
)

// E2 measures the §1 motivating optimization: all_depts over emp,
// evaluated as plain DATALOG, as DATALOG^C with a choice operator, and
// as the IDLOG ∃-existential rewrite (emp[2](N, D, 0)).
func E2(sizes [][2]int) *Table {
	t := &Table{
		ID:      "E2",
		Title:   "all_depts(D) :- emp(N, D): plain vs choice vs ID-literal",
		Claim:   "(§1, §4) the explicit ∃-existential construct touches one tuple per department; plain DATALOG touches every employee",
		Columns: []string{"depts", "emp/dept", "variant", "time ms", "derivations", "scanned"},
	}
	plain := mustParse(`all_depts(D) :- emp(N, D).`)
	plainInfo := mustAnalyze(plain)
	choiceProg := mustParse(`all_depts(D) :- emp(N, D), choice((D), (N)).`)
	optimized, err := adorn.Optimize(plain, "all_depts")
	if err != nil {
		panic(err)
	}
	optInfo := mustAnalyze(optimized)

	for _, sz := range sizes {
		depts, per := sz[0], sz[1]
		db := EmpDB(depts, per)
		var base *core.Result

		dur, _ := timed(func() error {
			base = evalOnce(plainInfo, db, core.Options{})
			return nil
		})
		t.Rows = append(t.Rows, []string{fmt.Sprint(depts), fmt.Sprint(per), "plain DATALOG",
			ms(dur), fmt.Sprint(base.Stats.Derivations), fmt.Sprint(base.Stats.TuplesScanned)})

		var chRes *core.Result
		dur, err := timed(func() error {
			var err error
			chRes, err = choice.Eval(choiceProg, db, choice.Options{Oracle: relation.SortedOracle{}})
			return err
		})
		if err != nil {
			panic(err)
		}
		if !chRes.Relation("all_depts").Equal(base.Relation("all_depts")) {
			panic("E2: choice variant computed a different answer")
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(depts), fmt.Sprint(per), "DATALOG^C choice",
			ms(dur), fmt.Sprint(chRes.Stats.Derivations), fmt.Sprint(chRes.Stats.TuplesScanned)})

		var optRes *core.Result
		dur, _ = timed(func() error {
			optRes = evalOnce(optInfo, db, core.Options{})
			return nil
		})
		if !optRes.Relation("all_depts").Equal(base.Relation("all_depts")) {
			panic("E2: optimized variant computed a different answer")
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(depts), fmt.Sprint(per), "IDLOG emp[2](N,D,0)",
			ms(dur), fmt.Sprint(optRes.Stats.Derivations), fmt.Sprint(optRes.Stats.TuplesScanned)})
	}
	t.Notes = append(t.Notes,
		"all three variants are verified to return the identical department set",
		"choice-variant derivations include building the choice-domain relation (its cost is the same order as plain DATALOG; the saving appears downstream of the choice)",
		"ID-materialization still makes one grouping pass over emp (tid-pruned per footnote 6), so wall time is near parity on this single-join query; the asymptotic win appears when the eliminated tuples feed further joins (see E3)")
	return t
}
