package bench

import (
	"fmt"

	"idlog/internal/core"
	"idlog/internal/value"
)

// countSrc computes |item| and its parity via an ungrouped ID-relation
// ([She90b]: tids lift DATALOG to deterministic counting).
const countSrc = `
	has_tid(T) :- item[](X, T).
	card(C)    :- has_tid(T), succ(T, C), not has_tid(C).
	even       :- card(C), mod(C, 2, 0).
`

// E10 checks the deterministic-query side of tuple-identifiers: the
// cardinality/parity program returns the correct, oracle-invariant
// answer, with cost linear in the relation.
func E10(sizes []int, seeds int) *Table {
	t := &Table{
		ID:      "E10",
		Title:   "deterministic counting via tuple-identifiers",
		Claim:   "([She90b], §1) tids extend DATALOG's deterministic power: cardinality and parity are expressible and oracle-invariant (pure DATALOG cannot count)",
		Columns: []string{"|item|", "card ok", "invariant seeds", "time/run ms"},
	}
	info := mustAnalyze(mustParse(countSrc))
	for _, n := range sizes {
		db := core.NewDatabase()
		for i := 0; i < n; i++ {
			_ = db.Add("item", value.Ints(int64(i)))
		}
		var first string
		okCard := true
		invariant := 0
		var total int64
		for seed := 0; seed < seeds; seed++ {
			var res *core.Result
			dur, _ := timed(func() error {
				res = evalOnce(info, db, seededOpts(uint64(seed)))
				return nil
			})
			total += dur.Microseconds()
			card := res.Relation("card")
			if card.Len() != 1 || !card.Contains(value.Ints(int64(n))) {
				okCard = false
			}
			evenOK := (res.Relation("even").Len() == 1) == (n%2 == 0)
			if !evenOK {
				okCard = false
			}
			fp := card.Fingerprint()
			if first == "" {
				first = fp
			}
			if fp == first {
				invariant++
			}
		}
		if !okCard {
			panic(fmt.Sprintf("E10: wrong count at n=%d", n))
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(n),
			fmt.Sprintf("%v", okCard),
			fmt.Sprintf("%d/%d", invariant, seeds),
			fmt.Sprintf("%.3f", float64(total)/float64(seeds)/1000),
		})
	}
	t.Notes = append(t.Notes,
		"card = |item| and parity verified exactly at every size and seed",
		"invariance: the answer relation is identical under every ID-function oracle (a deterministic query from a non-deterministic construct)")
	return t
}
