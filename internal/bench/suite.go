package bench

import "time"

// Suite bundles the experiment parameterizations.
type Suite struct {
	// E1Sizes are (departments, employees-per-department) pairs.
	E1Sizes [][2]int
	// E1Seeds is the number of seeded runs per E1 configuration.
	E1Seeds int
	// E2Sizes are (departments, employees-per-department) pairs.
	E2Sizes [][2]int
	// E3Workloads are (chain length, fan-out) pairs.
	E3Workloads [][2]int
	// E4Sizes are (departments, employees-per-department) pairs.
	E4Sizes [][2]int
	// E5Steps are Turing step budgets.
	E5Steps []int
	// E6Chains and E6Grids size the transitive-closure graphs.
	E6Chains []int
	E6Grids  []int
	// E7Persons and E8Persons size the enumeration inputs.
	E7Persons []int
	E8Persons []int
	// E9Persons sizes the four-semantics comparison.
	E9Persons []int
	// E10Sizes are relation sizes for the counting experiment;
	// E10Seeds is the invariance sample per size.
	E10Sizes []int
	E10Seeds int
	// E11Reps is the runs-per-cell sample for the governance-overhead
	// comparison; E11Chain/E11Grid/E11Emp size its kernels.
	E11Reps  int
	E11Chain int
	E11Grid  int
	E11Emp   [2]int
	// E12Clients are the concurrency levels for the server benchmark,
	// E12Requests the request count per level, E12Emp its employee
	// table size. Run by internal/bench/serverbench (kept out of this
	// package so the root benchmarks don't import the server).
	E12Clients  []int
	E12Requests int
	E12Emp      [2]int
	// E13Workers are the parallelism levels for the scaling experiment;
	// E13Reps is the timed-runs-per-cell sample and E13Grid/E13Chain/
	// E13Emp size its kernels.
	E13Workers []int
	E13Reps    int
	E13Grid    int
	E13Chain   int
	E13Emp     [2]int
	// E14Chain/E14Grid size the transitive-closure graphs for the
	// incremental-maintenance experiment; E14Persons/E14Emp/E14PGraph
	// size the paper-example EDBs it maintains views over.
	E14Chain   int
	E14Grid    int
	E14Persons int
	E14Emp     [2]int
	E14PGraph  int
	// E15Reps is the timed-runs-per-cell sample for the join-planner
	// experiment; E15JoinSizes are |big1| scales for the adversarially
	// ordered join and E15Chains the transitive-closure chain lengths.
	E15Reps      int
	E15JoinSizes []int
	E15Chains    []int
	// E16Sizes are EDB edge counts for the storage-engine experiment,
	// E16CacheKBs the disk-engine block-cache budgets swept per size,
	// and E16Reps the timed-runs-per-cell sample.
	E16Sizes    []int
	E16CacheKBs []int
	E16Reps     int
	// E17Reps is the timed-rounds-per-cell sample for the streaming +
	// plan-cache experiment; E17Repeats is the point-queries-per-round
	// count for its prepared kernels, E17Rules their layered-rulebase
	// sizes, and E17JoinSizes the adversarial-join scales for its
	// streaming kernels.
	E17Reps      int
	E17Repeats   int
	E17Rules     []int
	E17JoinSizes []int
	// E18Reps is the timed-runs-per-cell sample for the demand-driven
	// evaluation experiment; E18Chains are its chain lengths and
	// E18Branch the side branches per chain node.
	E18Reps   int
	E18Chains []int
	E18Branch int
	// E19Reps is the timed-runs-per-cell sample for the hash-partitioned
	// evaluation experiment; E19Grid/E19Chain size its transitive-closure
	// kernels and E19Parts are the partition fan-outs swept.
	E19Reps  int
	E19Grid  int
	E19Chain int
	E19Parts []int
}

// Quick returns a suite sized to finish in a few seconds.
func Quick() Suite {
	return Suite{
		E1Sizes:      [][2]int{{4, 8}, {8, 16}},
		E1Seeds:      20,
		E2Sizes:      [][2]int{{10, 100}, {20, 500}},
		E3Workloads:  [][2]int{{40, 10}, {60, 25}},
		E4Sizes:      [][2]int{{10, 50}, {20, 200}},
		E5Steps:      []int{4, 8, 16},
		E6Chains:     []int{64, 128},
		E6Grids:      []int{8},
		E7Persons:    []int{2, 4, 6},
		E8Persons:    []int{2, 3},
		E9Persons:    []int{2, 3},
		E10Sizes:     []int{10, 100},
		E10Seeds:     10,
		E11Reps:      7,
		E11Chain:     128,
		E11Grid:      8,
		E11Emp:       [2]int{20, 200},
		E12Clients:   []int{1, 8, 64},
		E12Requests:  192,
		E12Emp:       [2]int{10, 50},
		E13Workers:   []int{1, 2, 4, 8},
		E13Reps:      3,
		E13Grid:      12,
		E13Chain:     192,
		E13Emp:       [2]int{20, 500},
		E14Chain:     256,
		E14Grid:      12,
		E14Persons:   200,
		E14Emp:       [2]int{10, 40},
		E14PGraph:    300,
		E15Reps:      3,
		E15JoinSizes: []int{4096, 8192, 16384},
		E15Chains:    []int{64, 128, 256},
		E16Sizes:     []int{50_000, 200_000},
		E16CacheKBs:  []int{256, 4096, 65536},
		E16Reps:      3,
		E17Reps:      3,
		E17Repeats:   25,
		E17Rules:     []int{32, 64},
		E17JoinSizes: []int{4096, 8192},
		E18Reps:      3,
		E18Chains:    []int{200, 400},
		E18Branch:    3,
		E19Reps:      3,
		E19Grid:      12,
		E19Chain:     256,
		E19Parts:     []int{1, 2, 4, 8},
	}
}

// Full returns the paper-scale suite (tens of seconds).
func Full() Suite {
	return Suite{
		E1Sizes:      [][2]int{{4, 8}, {8, 16}, {16, 32}, {32, 64}},
		E1Seeds:      50,
		E2Sizes:      [][2]int{{10, 100}, {20, 500}, {50, 1000}, {100, 2000}},
		E3Workloads:  [][2]int{{40, 10}, {60, 25}, {100, 50}, {150, 80}},
		E4Sizes:      [][2]int{{10, 50}, {20, 200}, {50, 500}},
		E5Steps:      []int{4, 8, 16, 32, 64},
		E6Chains:     []int{64, 128, 256},
		E6Grids:      []int{8, 12, 16},
		E7Persons:    []int{2, 4, 6, 8, 10},
		E8Persons:    []int{2, 3, 4},
		E9Persons:    []int{2, 3, 4},
		E10Sizes:     []int{10, 100, 1000, 5000},
		E10Seeds:     20,
		E11Reps:      15,
		E11Chain:     256,
		E11Grid:      16,
		E11Emp:       [2]int{50, 1000},
		E12Clients:   []int{1, 8, 64},
		E12Requests:  960,
		E12Emp:       [2]int{20, 200},
		E13Workers:   []int{1, 2, 4, 8},
		E13Reps:      7,
		E13Grid:      20,
		E13Chain:     512,
		E13Emp:       [2]int{50, 2000},
		E14Chain:     512,
		E14Grid:      16,
		E14Persons:   1000,
		E14Emp:       [2]int{20, 100},
		E14PGraph:    1000,
		E15Reps:      7,
		E15JoinSizes: []int{16384, 32768, 65536},
		E15Chains:    []int{128, 256, 512},
		// The largest in-memory benchmark EDB is E15's 65536-key join
		// (~130k tuples); 2M edges is ~15x that, and the full-scan
		// kernel touches every one from disk.
		E16Sizes:     []int{500_000, 2_000_000},
		E16CacheKBs:  []int{256, 4096, 65536},
		E16Reps:      3,
		E17Reps:      5,
		E17Repeats:   100,
		E17Rules:     []int{64, 128},
		E17JoinSizes: []int{16384, 32768},
		E18Reps:      5,
		E18Chains:    []int{400, 800, 1200},
		E18Branch:    3,
		E19Reps:      5,
		E19Grid:      20,
		E19Chain:     512,
		E19Parts:     []int{1, 2, 4, 8},
	}
}

// Run executes the selected experiments ("" or "all" = every one),
// stamping each table with its generation cost.
func Run(s Suite, only string) []*Table {
	var out []*Table
	run := func(id string, f func() *Table) {
		if only != "" && only != "all" && only != id {
			return
		}
		start := time.Now()
		t := f()
		t.ElapsedNS = time.Since(start).Nanoseconds()
		out = append(out, t)
	}
	run("E1", func() *Table { return E1(s.E1Sizes, s.E1Seeds) })
	run("E2", func() *Table { return E2(s.E2Sizes) })
	run("E3", func() *Table { return E3(s.E3Workloads) })
	run("E4", func() *Table { return E4(s.E4Sizes) })
	run("E5", func() *Table { return E5(s.E5Steps) })
	run("E6", func() *Table { return E6(s.E6Chains, s.E6Grids) })
	run("E7", func() *Table { return E7(s.E7Persons) })
	run("E8", func() *Table { return E8(s.E8Persons) })
	run("E9", func() *Table { return E9(s.E9Persons) })
	run("E10", func() *Table { return E10(s.E10Sizes, s.E10Seeds) })
	run("E11", func() *Table { return E11(s.E11Reps, s.E11Chain, s.E11Grid, s.E11Emp[0], s.E11Emp[1]) })
	run("E13", func() *Table { return E13(s.E13Reps, s.E13Grid, s.E13Chain, s.E13Emp[0], s.E13Emp[1], s.E13Workers) })
	run("E14", func() *Table { return E14(s.E14Chain, s.E14Grid, s.E14Persons, s.E14Emp, s.E14PGraph) })
	run("E15", func() *Table { return E15(s.E15Reps, s.E15JoinSizes, s.E15Chains) })
	run("E16", func() *Table { return E16(s.E16Sizes, s.E16CacheKBs, s.E16Reps) })
	run("E17", func() *Table { return E17(s.E17Reps, s.E17Repeats, s.E17Rules, s.E17JoinSizes) })
	run("E18", func() *Table { return E18(s.E18Reps, s.E18Chains, s.E18Branch) })
	run("E19", func() *Table { return E19(s.E19Reps, s.E19Grid, s.E19Chain, s.E19Parts) })
	return out
}
