package bench

import (
	"context"
	"fmt"
	"time"

	"idlog/internal/analysis"
	"idlog/internal/core"
	"idlog/internal/guard"
)

// E11 measures the cost of resource governance: each kernel runs
// ungoverned (no guard — the engine skips all accounting) and governed
// by a guard whose limits are generous enough never to trip, so every
// per-derivation counter and batched checkpoint executes. The claim is
// that governance is effectively free (<2% on the evaluation kernels),
// which is what justifies checking it cooperatively inside the fixpoint
// instead of sandboxing evaluation in a goroutine.
func E11(reps int, chain, grid int, empDepts, empPer int) *Table {
	t := &Table{
		ID:      "E11",
		Title:   "overhead of resource governance (guarded vs unguarded evaluation)",
		Claim:   "cooperative guard checks (batched every 256 derivations) keep governed evaluation within 2% of ungoverned",
		Columns: []string{"kernel", "ungoverned ms", "governed ms", "overhead %"},
	}
	kernels := []struct {
		name string
		info *analysis.Info
		db   *core.Database
		opts core.Options
	}{
		{"E1 sampling emp[2] " + fmt.Sprintf("%dx%d", empDepts, empPer),
			mustAnalyze(mustParse(`sample(N, D) :- emp[2](N, D, T), T < 2.`)),
			EmpDB(empDepts, empPer), seededOpts(7)},
		{fmt.Sprintf("E6 tc chain-%d", chain),
			mustAnalyze(mustParse(tcSrc)), ChainDB(chain), core.Options{}},
		{fmt.Sprintf("E6 tc grid-%dx%d", grid, grid),
			mustAnalyze(mustParse(tcSrc)), GridDB(grid), core.Options{}},
		{"E3 chain-fan 60x25",
			mustAnalyze(mustParse(`q(X, Y) :- p(X, Z), p(Z, Y).`)),
			ChainFanDB(60, 25), core.Options{}},
	}
	worst := 0.0
	for _, k := range kernels {
		base, gov := comparePair(reps, k.info, k.db, k.opts)
		overhead := 100 * (float64(gov) - float64(base)) / float64(base)
		if overhead > worst {
			worst = overhead
		}
		t.Rows = append(t.Rows, []string{k.name, ms(base), ms(gov), fmt.Sprintf("%+.2f", overhead)})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("mean of >=%d interleaved, order-alternating run pairs per kernel (fast kernels get more); worst observed overhead %+.2f%%", reps, worst),
		"the governed runs carry an armed guard (deadline + tuple + derivation limits, none tripping)")
	return t
}

// generousGuard returns an active guard whose limits can never fire on
// the E11 kernels, so only the accounting cost is measured.
func generousGuard() *guard.Guard {
	return guard.New(context.Background(), guard.Limits{
		Timeout:        time.Hour,
		MaxTuples:      1 << 30,
		MaxDerivations: 1 << 30,
	})
}

// comparePair times reps interleaved (ungoverned, governed) runs of the
// kernel after one untimed warm-up of each variant, and returns the
// mean time per variant. The two variants alternate order every rep, so
// allocator/GC drift, CPU-frequency changes, and scheduler steal land
// on both sides roughly equally — the DIFFERENCE between the sums is
// what survives, which is exactly the quantity E11 reports. The warm-up
// absorbs one-off costs (symbol interning above all). The guard is
// rebuilt per run: its budgets are cumulative across an evaluation, not
// resettable.
func comparePair(reps int, info *analysis.Info, db *core.Database, opts core.Options) (base, gov time.Duration) {
	governed := opts
	governed.Guard = generousGuard()
	evalOnce(info, db, opts)
	evalOnce(info, db, governed)
	runBase := func() time.Duration {
		d, _ := timed(func() error {
			evalOnce(info, db, opts)
			return nil
		})
		return d
	}
	runGov := func() time.Duration {
		governed.Guard = generousGuard()
		d, _ := timed(func() error {
			evalOnce(info, db, governed)
			return nil
		})
		return d
	}
	// Adapt the sample size to the kernel: fast kernels get enough reps
	// to accumulate ~100ms of measured time per variant per requested
	// rep, or a 1-2% effect drowns in scheduler noise.
	if est := runBase(); est > 0 {
		target := time.Duration(reps) * 100 * time.Millisecond
		if n := int(target / est); n > reps {
			reps = n
		}
	}
	var sumBase, sumGov time.Duration
	for i := 0; i < reps; i++ {
		if i%2 == 0 {
			sumBase += runBase()
			sumGov += runGov()
		} else {
			sumGov += runGov()
			sumBase += runBase()
		}
	}
	return sumBase / time.Duration(reps), sumGov / time.Duration(reps)
}
