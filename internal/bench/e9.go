package bench

import (
	"fmt"

	"idlog/internal/core"
	"idlog/internal/disjunctive"
	"idlog/internal/inflate"
	"idlog/internal/stable"
	"idlog/internal/value"
)

// E9 surveys the §3.2 landscape: the same "guess each person's sex"
// query expressed in four non-deterministic formalisms — DATALOG∨
// minimal models, stable models, DL inflationary outcomes, and IDLOG —
// verifying that all four define the same answer family and comparing
// the cost of enumerating it.
func E9(persons []int) *Table {
	t := &Table{
		ID:      "E9",
		Title:   "one query, four semantics: DATALOG∨ / stable models / DL / IDLOG",
		Claim:   "(§3.2) disjunctive heads, stable models and the inflationary semantics all express the Example-2 query; IDLOG subsumes them while staying within perfect-model semantics",
		Columns: []string{"persons", "semantics", "answers", "time ms"},
	}
	disj, err := disjunctive.Parse(`man(X), woman(X) :- person(X).`)
	if err != nil {
		panic(err)
	}
	stab, err := stable.Parse(`
		man(X) :- person(X), not woman(X).
		woman(X) :- person(X), not man(X).
	`)
	if err != nil {
		panic(err)
	}
	dl, err := inflate.Parse(inflate.DL, `
		man(X) :- person(X), not woman(X).
		woman(X) :- person(X), not man(X).
	`)
	if err != nil {
		panic(err)
	}
	idlogInfo := mustAnalyze(mustParse(`
		sex_guess(X, male) :- person(X).
		sex_guess(X, female) :- person(X).
		man(X) :- sex_guess[1](X, male, 1).
	`))

	for _, n := range persons {
		db := core.NewDatabase()
		for i := 0; i < n; i++ {
			_ = db.Add("person", value.Strs(fmt.Sprintf("p%02d", i)))
		}
		families := map[string]map[string]bool{}
		record := func(name string, fps map[string]bool, d string) {
			families[name] = fps
			t.Rows = append(t.Rows, []string{fmt.Sprint(n), name, fmt.Sprint(len(fps)), d})
		}

		var fps map[string]bool
		dur, err := timed(func() error {
			models, err := disj.MinimalModels(db, disjunctive.Options{MaxAtoms: 24})
			if err != nil {
				return err
			}
			fps = map[string]bool{}
			for _, m := range models {
				fps[m.Relation("man", 1).Fingerprint()] = true
			}
			return nil
		})
		if err != nil {
			panic(err)
		}
		record("DATALOG∨ minimal", fps, ms(dur))

		dur, err = timed(func() error {
			models, err := stab.StableModels(db, stable.Options{MaxAtoms: 24})
			if err != nil {
				return err
			}
			fps = map[string]bool{}
			for _, m := range models {
				fps[m.Relation("man", 1).Fingerprint()] = true
			}
			return nil
		})
		if err != nil {
			panic(err)
		}
		record("stable models", fps, ms(dur))

		dur, err = timed(func() error {
			answers, err := dl.EnumerateOutcomes(db, []string{"man"}, inflate.EnumerateOptions{MaxStates: 2000000})
			if err != nil {
				return err
			}
			fps = map[string]bool{}
			for _, a := range answers {
				fps[a.Relations["man"].Fingerprint()] = true
			}
			return nil
		})
		if err != nil {
			panic(err)
		}
		record("DL inflationary", fps, ms(dur))

		dur, err = timed(func() error {
			answers, err := core.Enumerate(idlogInfo, db, []string{"man"}, core.EnumerateOptions{MaxRuns: 2000000})
			if err != nil {
				return err
			}
			fps = map[string]bool{}
			for _, a := range answers {
				fps[a.Relations["man"].Fingerprint()] = true
			}
			return nil
		})
		if err != nil {
			panic(err)
		}
		record("IDLOG", fps, ms(dur))

		// All four families must coincide.
		ref := families["IDLOG"]
		for name, f := range families {
			if len(f) != len(ref) {
				panic(fmt.Sprintf("E9: %s family size %d != IDLOG %d", name, len(f), len(ref)))
			}
			for k := range f {
				if !ref[k] {
					panic(fmt.Sprintf("E9: %s family member missing from IDLOG's", name))
				}
			}
		}
	}
	t.Notes = append(t.Notes,
		"all four answer families verified identical at every size",
		"stable/disjunctive use exponential subset search (semantic reference implementations), so their times grow as 2^(2n)")
	return t
}
