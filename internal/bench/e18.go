package bench

import (
	"fmt"
	"time"

	"idlog/internal/analysis"
	"idlog/internal/core"
	"idlog/internal/magic"
	"idlog/internal/value"
)

// demandGraphDB builds the E18 workload: a chain of length n where
// every node also points at `branch` private leaves. The full
// transitive closure is Θ(n²) tuples; the cone of a point query from
// node s is only the chain suffix past s plus its leaves.
func demandGraphDB(n, branch int) *core.Database {
	db := core.NewDatabase()
	leaf := int64(1 << 20)
	for i := int64(0); i < int64(n); i++ {
		_ = db.Add("e", value.Ints(i, i+1))
		for b := 0; b < branch; b++ {
			_ = db.Add("e", value.Ints(i, leaf))
			leaf++
		}
	}
	return db
}

// demandQuerySrc is the wrapper program Program.Prepare builds for the
// ground point query "tc(src, Y)": recursive reachability closed by an
// answer clause carrying the goal constant.
func demandQuerySrc(src int) string {
	return fmt.Sprintf(`
		tc(X, Y) :- e(X, Y).
		tc(X, Y) :- e(X, Z), tc(Z, Y).
		ans(Y) :- tc(%d, Y).
	`, src)
}

// ansFingerprint fingerprints only the answer relation: full models
// differ by design between the full and rewritten programs (that is the
// point), the answer set must not.
func ansFingerprint(res *core.Result) string {
	return res.Relation("ans").Fingerprint()
}

// E18 measures demand-driven evaluation: ground point queries over a
// large recursive EDB, full bottom-up evaluation (base) vs the
// magic-sets rewriting of the same wrapper program (opt — the path
// Program.Prepare takes for bound goals). Answer-set fingerprints are
// compared on every cell; derivation counts come from the evaluation
// guard's statistics.
func E18(reps int, chains []int, branch int) *Table {
	t := &Table{
		ID:      "E18",
		Title:   "magic sets: goal-directed point queries vs full evaluation",
		Claim:   "ground point queries over a large recursive EDB evaluate >=5x faster with the demand rewrite, with proportionally fewer derivations and identical answer sets",
		Columns: []string{"kernel", "full ms", "magic ms", "speedup", "full derivs", "magic derivs", "deriv ratio", "identical"},
	}
	allIdentical := true
	for _, n := range chains {
		db := demandGraphDB(n, branch)
		src := n * 3 / 4
		full := mustAnalyze(mustParse(demandQuerySrc(src)))
		rw, err := magic.Rewrite(full, "ans")
		if err != nil {
			panic(fmt.Sprintf("E18: rewrite inapplicable on chain %d: %v", n, err))
		}
		rewritten, err := analysis.Analyze(rw.Program)
		if err != nil {
			panic(fmt.Sprintf("E18: rewritten program does not analyze: %v", err))
		}
		cells := [2]*analysis.Info{full, rewritten}
		var prints [2]string
		var means [2]time.Duration
		var derivs [2]int
		for i, info := range cells {
			res := evalOnce(info, db, core.Options{})
			prints[i] = ansFingerprint(res)
			derivs[i] = res.Stats.Derivations
			var sum time.Duration
			for r := 0; r < reps; r++ {
				d, _ := timed(func() error {
					evalOnce(info, db, core.Options{})
					return nil
				})
				sum += d
			}
			means[i] = sum / time.Duration(reps)
		}
		identical := "yes"
		if prints[0] != prints[1] {
			identical = "NO"
			allIdentical = false
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("point query tc(%d, Y) chain=%d branch=%d", src, n, branch),
			ms(means[0]), ms(means[1]),
			fmt.Sprintf("%.2fx", float64(means[0])/float64(means[1])),
			fmt.Sprintf("%d", derivs[0]), fmt.Sprintf("%d", derivs[1]),
			fmt.Sprintf("%.1fx", float64(derivs[0])/float64(derivs[1])),
			identical,
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("mean of %d timed runs per cell after one warm-up; the warm-up run supplies the derivation counters", reps),
		"base evaluates the full wrapper program (the WithMagic(false) path); opt evaluates its magic-sets rewriting (adorned rules, magic guards, seed from the goal constant) — the program PreparedQuery runs for bound goals",
		"the query source sits at 3/4 of the chain, so the goal's cone is the last quarter plus its leaves while the full closure is quadratic in the chain length",
		"'identical' compares answer-relation fingerprints base vs opt (full models differ by design: that is the demand restriction)")
	if !allIdentical {
		t.Notes = append(t.Notes, "DIVERGENCE DETECTED: demand-rewritten answers differed from full evaluation — this is a bug")
	}
	return t
}
