package bench

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"idlog/internal/core"
)

// layeredPointSrc generates the repeated-point-query workload: a
// rulebase of `layers` stacked one-step joins over a tiny chain EDB,
// closed by an ans wrapper — the shape Program.Prepare builds for a
// goal. Each layer is its own stratum, so an unprepared query pays
// parse + stratification + per-stratum plan compilation for every
// layer on every call, while the fixpoint itself is trivial. That is
// the profile of a point query against a large registered rulebase.
func layeredPointSrc(layers int) string {
	var b strings.Builder
	b.WriteString("l0(X, Y) :- e(X, Y).\n")
	for i := 1; i < layers; i++ {
		fmt.Fprintf(&b, "l%d(X, Y) :- l%d(X, Z), e(Z, Y).\n", i, i-1)
	}
	fmt.Fprintf(&b, "ans(Y) :- l%d(0, Y).\n", layers-1)
	return b.String()
}

// E17 measures the streaming get-next executor and the prepared-query
// plan cache. Two kernel families share the table: "prepared" kernels
// run the same point query `repeats` times per round, fresh
// parse+analyze+plan every time (base) vs one analysis plus a shared
// core.PlanCache (opt — the PreparedQuery path); "streaming" kernels
// run one join-heavy fixpoint with the streaming executor off (base)
// vs on (opt). Every cell pair is fingerprint-compared.
func E17(reps, repeats int, rules, joinSizes []int) *Table {
	t := &Table{
		ID:      "E17",
		Title:   "streaming executor + plan cache: prepared point queries and join allocations",
		Claim:   "plan-cached prepared queries beat fresh parse+compile+plan by >=2x on repeated point queries, and the streaming executor cuts per-join allocations, with byte-identical answers",
		Columns: []string{"kernel", "base ms", "opt ms", "speedup", "base MB", "opt MB", "identical"},
	}
	type cell struct {
		fp    func() string // one run + full-model fingerprint (warm-up)
		round func()        // the timed unit: repeats queries or one fixpoint
	}
	type kernel struct {
		name  string
		cells [2]cell // [0]=base, [1]=opt
	}
	var kernels []kernel

	for _, nr := range rules {
		src := layeredPointSrc(nr)
		db := ChainDB(12)
		info := mustAnalyze(mustParse(src))
		pc := core.NewPlanCache(0)
		fresh := func() *core.Result {
			// A cold query re-parses the program and re-derives the
			// stratification, exactly like Program.Query on each call.
			return evalOnce(mustAnalyze(mustParse(src)), db, core.Options{})
		}
		prepared := func() *core.Result {
			return evalOnce(info, db, core.Options{PlanCache: pc})
		}
		kernels = append(kernels, kernel{
			name: fmt.Sprintf("prepared point query rules=%d x%d", nr, repeats),
			cells: [2]cell{
				{fp: func() string { return resultFingerprint(fresh(), info) },
					round: func() {
						for j := 0; j < repeats; j++ {
							fresh()
						}
					}},
				{fp: func() string { return resultFingerprint(prepared(), info) },
					round: func() {
						for j := 0; j < repeats; j++ {
							prepared()
						}
					}},
			},
		})
	}

	for _, n := range joinSizes {
		db := adversarialJoinDB(n)
		info := mustAnalyze(mustParse(adversarialJoinSrc))
		mk := func(opts core.Options) cell {
			return cell{
				fp:    func() string { return resultFingerprint(evalOnce(info, db, opts), info) },
				round: func() { evalOnce(info, db, opts) },
			}
		}
		// Analysis order on both sides: the executor is the only toggle,
		// and the |big1|*fan enumeration is where its per-binding
		// allocation profile shows (the planned order enumerates ~|big1|
		// tuples and allocates almost nothing either way).
		kernels = append(kernels, kernel{
			name: fmt.Sprintf("streaming adversarial join n=%d fan=%d (analysis order)", n, joinFan),
			cells: [2]cell{
				mk(core.Options{NoPlanner: true, NoStreaming: true}),
				mk(core.Options{NoPlanner: true}),
			},
		})
	}

	allIdentical := true
	for _, k := range kernels {
		row := []string{k.name}
		var prints [2]string
		var means [2]time.Duration
		var allocs [2]uint64
		for i, c := range k.cells {
			prints[i] = c.fp() // warm-up: interning, EDB indexes, plan cache
			runtime.GC()
			var m0, m1 runtime.MemStats
			runtime.ReadMemStats(&m0)
			var sum time.Duration
			for r := 0; r < reps; r++ {
				d, _ := timed(func() error {
					c.round()
					return nil
				})
				sum += d
			}
			runtime.ReadMemStats(&m1)
			means[i] = sum / time.Duration(reps)
			allocs[i] = (m1.TotalAlloc - m0.TotalAlloc) / uint64(reps)
		}
		identical := "yes"
		if prints[0] != prints[1] {
			identical = "NO"
			allIdentical = false
		}
		row = append(row,
			ms(means[0]), ms(means[1]),
			fmt.Sprintf("%.2fx", float64(means[0])/float64(means[1])),
			fmt.Sprintf("%.2f", float64(allocs[0])/(1<<20)),
			fmt.Sprintf("%.2f", float64(allocs[1])/(1<<20)),
			identical)
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("mean of %d timed rounds per cell after one warm-up; MB is heap allocated per round (runtime.MemStats TotalAlloc delta)", reps),
		fmt.Sprintf("prepared kernels run %d point queries per round against a chain-12 EDB: base re-parses, re-stratifies, and re-plans the layered rulebase each query, opt reuses one analysis and a shared plan cache (the PreparedQuery path)", repeats),
		"streaming kernels run the E15 adversarial join in analysis order once per round: base uses the legacy recursive walk (one match-closure allocation per binding per literal), opt the get-next iterator pipeline with pushdown",
		"'identical' compares full-model fingerprints base vs opt")
	if !allIdentical {
		t.Notes = append(t.Notes, "DIVERGENCE DETECTED: optimized answers differed from baseline — this is a bug")
	}
	return t
}
