package bench

import (
	"strings"
	"testing"
)

// TestQuickSuiteRuns executes every experiment at a tiny size and
// checks the tables are structurally sound; the experiments panic
// internally on any correctness violation (answer mismatch, incomplete
// sample family, ...), so this test also certifies the claims at small
// scale.
func TestQuickSuiteRuns(t *testing.T) {
	suite := Suite{
		E1Sizes:      [][2]int{{3, 4}},
		E1Seeds:      5,
		E2Sizes:      [][2]int{{5, 20}},
		E3Workloads:  [][2]int{{10, 4}},
		E4Sizes:      [][2]int{{4, 10}},
		E5Steps:      []int{4},
		E6Chains:     []int{16},
		E6Grids:      []int{4},
		E7Persons:    []int{3},
		E8Persons:    []int{2},
		E9Persons:    []int{2},
		E10Sizes:     []int{5},
		E10Seeds:     3,
		E11Reps:      3,
		E11Chain:     16,
		E11Grid:      4,
		E11Emp:       [2]int{3, 6},
		E13Workers:   []int{1, 2, 4},
		E13Reps:      2,
		E13Grid:      4,
		E13Chain:     16,
		E13Emp:       [2]int{3, 6},
		E14Chain:     16,
		E14Grid:      4,
		E14Persons:   8,
		E14Emp:       [2]int{2, 4},
		E14PGraph:    12,
		E15Reps:      2,
		E15JoinSizes: []int{256},
		E15Chains:    []int{16},
		E16Sizes:     []int{512},
		E16CacheKBs:  []int{16, 1024},
		E16Reps:      2,
		E17Reps:      2,
		E17Repeats:   3,
		E17Rules:     []int{8},
		E17JoinSizes: []int{256},
		E18Reps:      2,
		E18Chains:    []int{80},
		E18Branch:    2,
		E19Reps:      2,
		E19Grid:      4,
		E19Chain:     16,
		E19Parts:     []int{1, 2, 4},
	}
	tables := Run(suite, "all")
	if len(tables) != 18 {
		t.Fatalf("ran %d experiments, want 18", len(tables))
	}
	ids := map[string]bool{}
	for _, tab := range tables {
		ids[tab.ID] = true
		if len(tab.Rows) == 0 {
			t.Errorf("%s has no rows", tab.ID)
		}
		for _, r := range tab.Rows {
			if len(r) != len(tab.Columns) {
				t.Errorf("%s: row %v does not match columns %v", tab.ID, r, tab.Columns)
			}
		}
		out := tab.Render()
		if !strings.Contains(out, tab.ID) || !strings.Contains(out, "claim:") {
			t.Errorf("%s render missing header: %q", tab.ID, out[:60])
		}
	}
	for _, id := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E13", "E14", "E15", "E16", "E17", "E18", "E19"} {
		if !ids[id] {
			t.Errorf("experiment %s missing", id)
		}
	}
}

func TestRunFilter(t *testing.T) {
	suite := Suite{E6Chains: []int{8}}
	tables := Run(suite, "E6")
	if len(tables) != 1 || tables[0].ID != "E6" {
		t.Fatalf("filter returned %v", tables)
	}
	if got := Run(suite, "E99"); len(got) != 0 {
		t.Fatalf("bogus filter returned %d tables", len(got))
	}
}

func TestWorkloadGenerators(t *testing.T) {
	if db := EmpDB(3, 4); db.Relation("emp").Len() != 12 {
		t.Fatalf("EmpDB size")
	}
	if db := ChainDB(10); db.Relation("e").Len() != 10 {
		t.Fatalf("ChainDB size")
	}
	if db := ChainFanDB(5, 3); db.Relation("p").Len() != 5*4 {
		t.Fatalf("ChainFanDB size")
	}
	// grid g=3: 2*g*(g-1) edges
	if db := GridDB(3); db.Relation("e").Len() != 12 {
		t.Fatalf("GridDB size = %d", db.Relation("e").Len())
	}
}

func TestPresets(t *testing.T) {
	q, f := Quick(), Full()
	if len(q.E1Sizes) == 0 || len(f.E1Sizes) <= len(q.E1Sizes)-1 {
		t.Fatalf("presets look wrong")
	}
}

func TestRenderMarkdown(t *testing.T) {
	tab := &Table{
		ID: "EX", Title: "demo", Claim: "c",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"1", "2"}},
		Notes:   []string{"n"},
	}
	md := tab.RenderMarkdown()
	for _, want := range []string{"## EX — demo", "| a | b |", "|---|---|", "| 1 | 2 |", "*n*"} {
		if !strings.Contains(md, want) {
			t.Fatalf("markdown missing %q:\n%s", want, md)
		}
	}
}
