package bench

import (
	"encoding/json"
	"os"
	"runtime"
	"time"
)

// Report is the machine-readable form of one idlogbench invocation,
// written as BENCH_<suite>.json so CI runs and notebooks can track the
// experiment tables without scraping the rendered text.
type Report struct {
	Suite       string        `json:"suite"`
	GeneratedAt string        `json:"generated_at"`
	GoVersion   string        `json:"go_version"`
	GOOS        string        `json:"goos"`
	GOARCH      string        `json:"goarch"`
	ElapsedMS   float64       `json:"elapsed_ms"`
	Tables      []TableRecord `json:"tables"`
}

// TableRecord is one experiment table in the report.
type TableRecord struct {
	ID        string     `json:"id"`
	Title     string     `json:"title"`
	Claim     string     `json:"claim"`
	Columns   []string   `json:"columns"`
	Rows      [][]string `json:"rows"`
	Notes     []string   `json:"notes,omitempty"`
	ElapsedMS float64    `json:"elapsed_ms"`
}

// NewReport assembles a report from finished tables.
func NewReport(suite string, tables []*Table) *Report {
	r := &Report{
		Suite:       suite,
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
	}
	for _, t := range tables {
		elapsed := float64(t.ElapsedNS) / 1e6
		r.ElapsedMS += elapsed
		r.Tables = append(r.Tables, TableRecord{
			ID:        t.ID,
			Title:     t.Title,
			Claim:     t.Claim,
			Columns:   t.Columns,
			Rows:      t.Rows,
			Notes:     t.Notes,
			ElapsedMS: elapsed,
		})
	}
	return r
}

// WriteFile writes the report as indented JSON.
func (r *Report) WriteFile(path string) error {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
