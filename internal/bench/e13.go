package bench

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"time"

	"idlog/internal/analysis"
	"idlog/internal/core"
)

// E13 measures the parallel fixpoint: each kernel runs at 1, 2, 4 and
// 8 workers, reporting wall-clock speedup over the sequential engine
// and verifying the byte-identical-answers guarantee (the parallel
// evaluator's whole point is that only latency may change). Speedup is
// physically bounded by the core count — the table records GOMAXPROCS
// so a 1-core run's flat scaling reads as the hardware limit it is,
// not a regression.
func E13(reps int, grid, chain int, empDepts, empPer int, workers []int) *Table {
	t := &Table{
		ID:      "E13",
		Title:   "parallel semi-naive fixpoint scaling (workers vs wall clock)",
		Claim:   "delta rounds fan out across workers with a deterministic ordered merge; answers stay byte-identical while wall clock drops with the core count",
		Columns: []string{"kernel", "workers", "mean ms", "speedup", "identical"},
	}
	kernels := []struct {
		name string
		info *analysis.Info
		db   func() *core.Database
		opts core.Options
	}{
		{fmt.Sprintf("E6 tc grid-%dx%d", grid, grid),
			mustAnalyze(mustParse(tcSrc)), func() *core.Database { return GridDB(grid) }, core.Options{}},
		{fmt.Sprintf("E6 tc chain-%d", chain),
			mustAnalyze(mustParse(tcSrc)), func() *core.Database { return ChainDB(chain) }, core.Options{}},
		{fmt.Sprintf("E4 sampling emp[2] %dx%d", empDepts, empPer),
			mustAnalyze(mustParse(`sample(N, D) :- emp[2](N, D, T), T < 2.`)),
			func() *core.Database { return EmpDB(empDepts, empPer) }, seededOpts(7)},
	}
	allIdentical := true
	for _, k := range kernels {
		var seqMean time.Duration
		var seqPrint string
		for _, nw := range workers {
			opts := k.opts
			opts.Parallelism = nw
			db := k.db()
			// Warm up once (symbol interning, index builds on the EDB).
			res := evalOnce(k.info, db, opts)
			print := resultFingerprint(res, k.info)
			var sum time.Duration
			for i := 0; i < reps; i++ {
				d, _ := timed(func() error {
					evalOnce(k.info, k.db(), opts)
					return nil
				})
				sum += d
			}
			mean := sum / time.Duration(reps)
			speedup, identical := "1.00x", "yes"
			if nw == workers[0] {
				seqMean, seqPrint = mean, print
			} else {
				speedup = fmt.Sprintf("%.2fx", float64(seqMean)/float64(mean))
				if print != seqPrint {
					identical = "NO"
					allIdentical = false
				}
			}
			t.Rows = append(t.Rows, []string{k.name, fmt.Sprintf("%d", nw), ms(mean), speedup, identical})
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("GOMAXPROCS=%d, %d cores visible; speedup above 1 worker requires multiple cores — on a single core the parallel path measures only its coordination overhead", runtime.GOMAXPROCS(0), runtime.NumCPU()),
		fmt.Sprintf("mean of %d runs per cell after one warm-up; 'identical' compares the full model fingerprint (every output predicate, canonical order) against the sequential run", reps))
	if !allIdentical {
		t.Notes = append(t.Notes, "DIVERGENCE DETECTED: parallel answers differed from sequential — this is a bug")
	}
	return t
}

// resultFingerprint renders every output predicate canonically, in
// sorted predicate order.
func resultFingerprint(res *core.Result, info *analysis.Info) string {
	preds := make([]string, 0, len(info.IDB))
	for p := range info.IDB {
		preds = append(preds, p)
	}
	sort.Strings(preds)
	var b strings.Builder
	for _, p := range preds {
		fmt.Fprintf(&b, "%s=%s\n", p, res.Relation(p).Fingerprint())
	}
	return b.String()
}
