package bench

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"idlog/internal/analysis"
	"idlog/internal/core"
	"idlog/internal/segment"
	"idlog/internal/storage"
	"idlog/internal/value"
)

// E16 kernels: a full EDB scan (node enumeration) and a probe-heavy
// selective join whose output stays tiny, so resident memory is
// dominated by how the engine holds the EDB — the quantity under test.
const (
	e16ScanSrc  = `node(X) :- edge(X, _).`
	e16ProbeSrc = `hit(X, Z) :- sel(X), edge(X, Y), edge(Y, Z).`
)

// e16SelKeys is the number of probe seeds in sel.
const e16SelKeys = 8

// e16MemDB builds the ring-graph EDB in memory: edge(i, (i+1) mod n)
// plus e16SelKeys probe seeds.
func e16MemDB(n int) *core.Database {
	db := core.NewDatabase()
	for i := 0; i < n; i++ {
		_ = db.Add("edge", value.Ints(int64(i), int64((i+1)%n)))
	}
	for k := 0; k < e16SelKeys; k++ {
		_ = db.Add("sel", value.Ints(int64(k*(n/e16SelKeys))))
	}
	return db
}

// e16Facts renders the same EDB in concrete fact syntax for the bulk
// loader.
func e16Facts(n int) string {
	var b strings.Builder
	b.Grow(n * 16)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "edge(%d, %d).\n", i, (i+1)%n)
	}
	for k := 0; k < e16SelKeys; k++ {
		fmt.Fprintf(&b, "sel(%d).\n", k*(n/e16SelKeys))
	}
	return b.String()
}

// heapMB forces a GC and reports the resident heap in MiB.
func heapMB() float64 {
	runtime.GC()
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	return float64(m.HeapInuse) / (1 << 20)
}

// e16Eval times reps evaluations of info over db and returns the mean
// plus the fingerprint of the (first) result.
func e16Eval(info *analysis.Info, db *core.Database, reps int) (time.Duration, string) {
	res := evalOnce(info, db, core.Options{})
	print := resultFingerprint(res, info)
	var sum time.Duration
	for r := 0; r < reps; r++ {
		d, _ := timed(func() error {
			evalOnce(info, db, core.Options{})
			return nil
		})
		sum += d
	}
	return sum / time.Duration(reps), print
}

// E16 measures the disk storage engine against the in-memory engine on
// EDBs up to 10–100x the largest in-memory benchmark: streaming
// bulk-load throughput, full-scan and selective-probe evaluation, and
// the resident memory each engine needs to hold the EDB — swept across
// block-cache budgets for the disk engine. Fingerprints must match the
// in-memory engine cell for cell.
func E16(sizes, cacheKBs []int, reps int) *Table {
	t := &Table{
		ID:      "E16",
		Title:   "disk storage engine: bulk load, scan and probe, mem vs disk across cache budgets",
		Claim:   "segment-file EDBs evaluate with byte-identical answers at a resident set bounded by the block-cache budget, so databases larger than RAM remain queryable",
		Columns: []string{"n", "engine", "load ms", "scan ms", "probe ms", "edb resident MB", "cache hit%", "identical"},
	}
	scanInfo := mustAnalyze(mustParse(e16ScanSrc))
	probeInfo := mustAnalyze(mustParse(e16ProbeSrc))
	allIdentical := true
	for _, n := range sizes {
		// In-memory baseline: the EDB lives in hash tables on the heap.
		base := heapMB()
		var mem *core.Database
		buildMS, _ := timed(func() error { mem = e16MemDB(n); return nil })
		mem.Freeze()
		memResident := heapMB() - base
		scanMS, scanPrint := e16Eval(scanInfo, mem, reps)
		probeMS, probePrint := e16Eval(probeInfo, mem, reps)
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", n), "mem", ms(buildMS), ms(scanMS), ms(probeMS),
			fmt.Sprintf("%.1f", memResident), "-", "-",
		})
		mem = nil

		// Disk engine: stream the same facts through the bulk loader,
		// then evaluate through block caches of decreasing generosity.
		dir, err := os.MkdirTemp("", "idlog-e16-*")
		if err != nil {
			panic(err)
		}
		facts := e16Facts(n)
		loadMS, err := timed(func() error {
			_, err := storage.BulkLoad(dir, strings.NewReader(facts))
			return err
		})
		if err != nil {
			panic(err)
		}
		facts = "" // release the rendered text before measuring resident heap
		for _, kb := range cacheKBs {
			cache := segment.NewCache(int64(kb) << 10)
			before := heapMB()
			disk, err := storage.OpenDir(dir, cache)
			if err != nil {
				panic(err)
			}
			disk.Freeze()
			dScanMS, dScanPrint := e16Eval(scanInfo, disk, reps)
			dProbeMS, dProbePrint := e16Eval(probeInfo, disk, reps)
			resident := heapMB() - before
			if resident < 0 {
				resident = 0
			}
			hits, misses := cache.Stats()
			hitPct := "-"
			if hits+misses > 0 {
				hitPct = fmt.Sprintf("%.1f", 100*float64(hits)/float64(hits+misses))
			}
			identical := "yes"
			if dScanPrint != scanPrint || dProbePrint != probePrint {
				identical = "NO"
				allIdentical = false
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", n), fmt.Sprintf("disk cache=%dKB", kb),
				ms(loadMS), ms(dScanMS), ms(dProbeMS),
				fmt.Sprintf("%.1f", resident), hitPct, identical,
			})
		}
		os.RemoveAll(dir)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("mean of %d runs per cell after one warm-up; 'load ms' is streaming bulk-load (parse + dedup + segment encode) for disk rows, in-memory construction for mem rows", reps),
		"'edb resident MB' is the GC-settled heap growth from holding the opened EDB plus evaluation state: the mem engine pays for every tuple, the disk engine for the block cache and per-tuple hash index only",
		"'identical' compares scan and probe model fingerprints against the in-memory engine; kernels keep outputs small (scan: n unary tuples, probe: 8) so resident memory isolates EDB storage, not result materialization")
	if !allIdentical {
		t.Notes = append(t.Notes, "DIVERGENCE DETECTED: disk-engine answers differed from the in-memory engine — this is a bug")
	}
	return t
}
