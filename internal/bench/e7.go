package bench

import (
	"fmt"

	"idlog/internal/core"
	"idlog/internal/relation"
	"idlog/internal/value"
)

// E7 measures answer-set enumeration: the man/woman program of
// Example 2 over growing person sets, reporting how many distinct
// answers exist versus how many oracle assignments the walk visits.
func E7(persons []int) *Table {
	t := &Table{
		ID:      "E7",
		Title:   "perfect-model enumeration (Example 2 man/woman)",
		Claim:   "(§3.1, Ex.1–2) a query's answer set collects q over all ID-function assignments; assignments grow as Π|group|! while distinct answers grow as 2^n",
		Columns: []string{"persons", "assignments", "distinct answers", "time ms"},
	}
	info := mustAnalyze(mustParse(`
		sex_guess(X, male) :- person(X).
		sex_guess(X, female) :- person(X).
		man(X) :- sex_guess[1](X, male, 1).
	`))
	for _, n := range persons {
		db := core.NewDatabase()
		for i := 0; i < n; i++ {
			_ = db.Add("person", value.Strs(fmt.Sprintf("p%02d", i)))
		}
		// The choice space: each person's sex_guess group has 2 tuples,
		// so 2^n ID-function combinations (per grouped relation).
		assignments := uint64(1)
		for i := 0; i < n; i++ {
			assignments *= relation.Factorial(2)
		}
		var answers []*core.Answer
		dur, err := timed(func() error {
			var err error
			answers, err = core.Enumerate(info, db, []string{"man"}, core.EnumerateOptions{MaxRuns: 2000000})
			return err
		})
		if err != nil {
			panic(err)
		}
		if len(answers) != 1<<n {
			panic(fmt.Sprintf("E7: %d persons gave %d answers, want %d", n, len(answers), 1<<n))
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(n), fmt.Sprint(assignments),
			fmt.Sprint(len(answers)), ms(dur)})
	}
	t.Notes = append(t.Notes, "distinct answers verified to equal 2^persons (the powerset, as in Example 2)")
	return t
}
