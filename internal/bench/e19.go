package bench

import (
	"fmt"
	"runtime"
	"time"

	"idlog/internal/analysis"
	"idlog/internal/core"
	"idlog/internal/relation"
	"idlog/internal/value"
)

// sparseReachDB builds the demand-sparse kernel: k disjoint chains of
// length l, with the start marker at chain 0's head. Single-source
// reachability touches only chain 0's l+1 keys, so a partitioned run
// probes (and therefore indexes) only the partitions those few keys
// hash into, while the unpartitioned run indexes all k·l edges.
func sparseReachDB(k, l int) *core.Database {
	db := core.NewDatabase()
	for c := 0; c < k; c++ {
		for i := 0; i < l; i++ {
			_ = db.Add("e", value.Strs(fmt.Sprintf("c%d_%d", c, i), fmt.Sprintf("c%d_%d", c, i+1)))
		}
	}
	_ = db.Add("start", value.Strs("c0_0"))
	return db
}

const reachSrc = `reach(X) :- start(X).
reach(Y) :- reach(X), e(X, Y).`

// E19 measures hash-partitioned data-parallel evaluation: each kernel
// runs the parallel engine at a fixed worker count while the partition
// fan-out sweeps 1 (the differential twin: range-sharded, shared probe
// indexes) through the configured widths. Wall clock only improves with
// real cores, so the table also reports two hardware-independent
// effects of partitioning: secondary-index tuples built per run (radix
// pruning skips index builds on partitions the delta never reaches)
// and heap allocation per run. Fingerprints are compared against the
// sequential engine in every cell — the byte-identical contract is the
// experiment's precondition, not its subject.
func E19(reps int, grid, chain int, parts []int) *Table {
	const workers = 2
	t := &Table{
		ID:      "E19",
		Title:   "hash-partitioned joins: fan-out vs index build volume, allocation, wall clock",
		Claim:   "radix-partitioned delta passes keep answers byte-identical at every fan-out, and on demand-sparse workloads partition pruning cuts secondary-index build volume as the fan-out grows; wall-clock gains need real cores",
		Columns: []string{"kernel", "parts", "mean ms", "vs parts=1", "indexed tup/run", "alloc KB/run", "skew", "identical"},
	}
	kernels := []struct {
		name string
		info *analysis.Info
		db   func() *core.Database
	}{
		{fmt.Sprintf("E6 tc grid-%dx%d", grid, grid),
			mustAnalyze(mustParse(tcSrc)), func() *core.Database { return GridDB(grid) }},
		{fmt.Sprintf("E6 tc chain-%d", chain),
			mustAnalyze(mustParse(tcSrc)), func() *core.Database { return ChainDB(chain) }},
		{fmt.Sprintf("sparse reach %d×%d", 4000, 3),
			mustAnalyze(mustParse(reachSrc)), func() *core.Database { return sparseReachDB(4000, 3) }},
	}
	allIdentical := true
	for _, k := range kernels {
		seqPrint := resultFingerprint(evalOnce(k.info, k.db(), core.Options{Parallelism: 1}), k.info)
		var baseMean time.Duration
		for _, np := range parts {
			opts := core.Options{Parallelism: workers, Partitions: np}
			// Warm up once (symbol interning, plan compilation) and take
			// the skew + identity reading from it.
			warm := evalOnce(k.info, k.db(), opts)
			print := resultFingerprint(warm, k.info)
			identical := "yes"
			if print != seqPrint {
				identical = "NO"
				allIdentical = false
			}
			var ms0, ms1 runtime.MemStats
			runtime.ReadMemStats(&ms0)
			idx0 := relation.IndexedTuplesTotal()
			var sum time.Duration
			for i := 0; i < reps; i++ {
				d, _ := timed(func() error {
					evalOnce(k.info, k.db(), opts)
					return nil
				})
				sum += d
			}
			idxPerRun := (relation.IndexedTuplesTotal() - idx0) / uint64(reps)
			runtime.ReadMemStats(&ms1)
			allocPerRun := (ms1.TotalAlloc - ms0.TotalAlloc) / uint64(reps)
			mean := sum / time.Duration(reps)
			vsBase := "1.00x"
			if np == parts[0] {
				baseMean = mean
			} else {
				vsBase = fmt.Sprintf("%.2fx", float64(baseMean)/float64(mean))
			}
			t.Rows = append(t.Rows, []string{
				k.name, fmt.Sprintf("%d", np), ms(mean), vsBase,
				fmt.Sprintf("%d", idxPerRun),
				fmt.Sprintf("%.0f", float64(allocPerRun)/1024),
				fmt.Sprintf("%.2f", warm.Stats.PartitionSkew),
				identical,
			})
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("GOMAXPROCS=%d, %d cores visible; every cell runs the parallel engine at %d workers, so 'vs parts=1' isolates the partitioning effect — on a single core expect wall-clock parity (the honest reading) while the indexed-tuple and allocation columns still move", runtime.GOMAXPROCS(0), runtime.NumCPU(), workers),
		fmt.Sprintf("mean of %d runs per cell after one warm-up; 'indexed tup/run' is the process-wide secondary-index build counter per run (partition pruning: delta-empty partitions never build indexes), 'alloc KB/run' the heap TotalAlloc delta per run", reps),
		"'identical' compares the full model fingerprint of every cell (including the warm-up's partitioned run) against the sequential engine; skew is the worst largest-partition-over-mean ratio the run observed",
		"the dense tc kernels reach every join key, so every partition builds its index and their indexed-tuple column is flat by design; the sparse-reach kernel is where pruning bites — only the partitions its few-key frontier hashes into ever build")
	if !allIdentical {
		t.Notes = append(t.Notes, "DIVERGENCE DETECTED: partitioned answers differed from sequential — this is a bug")
	}
	return t
}
