package bench

import (
	"fmt"

	"idlog/internal/adorn"
	"idlog/internal/analysis"
	"idlog/internal/choice"
	"idlog/internal/core"
	"idlog/internal/incremental"
	"idlog/internal/value"
)

// e14Info compiles an example the way the engine front-end does:
// choice literals translate to ID-literals before analysis.
func e14Info(src string) *analysis.Info {
	prog, err := choice.Translate(mustParse(src))
	if err != nil {
		panic(err)
	}
	return mustAnalyze(prog)
}

// e14Examples are the paper's Example 1–6 programs (7–8 derive from 6
// via the §4 optimize chain). The ID-bearing ones exercise the
// fallback boundary: an ID-literal over a mutated base predicate
// forces a stratum recompute, so their "incremental" latency is the
// recompute floor plus bookkeeping — the table reports that honestly.
var e14Examples = []struct {
	name    string
	src     string
	insPred string
}{
	{"ex1-man", `
		sex_guess(X, male) :- person(X).
		sex_guess(X, female) :- person(X).
		man(X) :- sex_guess[1](X, male, 1).
	`, "person"},
	{"ex2-man-woman", `
		sex_guess(X, male) :- person(X).
		sex_guess(X, female) :- person(X).
		man(X) :- sex_guess[1](X, male, 1).
		woman(X) :- sex_guess[1](X, female, 1).
	`, "person"},
	{"ex3-dl-contrast", `
		guess(X, in) :- person(X).
		guess(X, out) :- person(X).
		chosen(X) :- guess[1](X, in, 1).
	`, "person"},
	{"ex4-choice", `
		pick(N, D) :- emp(N, D), choice((D), (N)).
	`, "emp"},
	{"ex5-sampling", `
		select_two_emp(Name) :- emp[2](Name, Dept, N), N < 2.
	`, "emp"},
	{"ex6-reach-source", `
		q(X) :- a(X, Y).
		a(X, Y) :- p(X, Z), a(Z, Y).
		a(X, Y) :- p(X, Y).
	`, "p"},
}

// e14Workload is one measured configuration: a program, its EDB, a
// generator of fresh insertable facts, and the relation deletions
// draw from.
type e14Workload struct {
	name    string
	info    *analysis.Info
	db      *core.Database
	newFact func(i int) core.Fact
	delPred string
}

// e14DB builds the shared paper-example EDB at the requested scale:
// persons, a depts×perDept employee table, and a p-chain with side
// edges (the Example 6 graph).
func e14DB(persons, depts, perDept, pgraph int) *core.Database {
	db := core.NewDatabase()
	for i := 0; i < persons; i++ {
		_ = db.Add("person", value.Strs(fmt.Sprintf("p%04d", i)))
	}
	for d := 0; d < depts; d++ {
		for e := 0; e < perDept; e++ {
			_ = db.Add("emp", value.Strs(fmt.Sprintf("e%d_%d", d, e), fmt.Sprintf("dept%d", d)))
		}
	}
	for i := 0; i < pgraph; i++ {
		_ = db.Add("p", value.Strs(fmt.Sprintf("v%04d", i), fmt.Sprintf("v%04d", i+1)))
		if i%5 == 0 {
			_ = db.Add("p", value.Strs(fmt.Sprintf("v%04d", i), fmt.Sprintf("w%04d", i)))
		}
	}
	return db
}

// e14Deletes picks n distinct existing tuples of pred at spread
// positions, so deletions hit the middle of chains rather than one
// end.
func e14Deletes(db *core.Database, pred string, n int) []core.Fact {
	tuples := db.Relation(pred).Sorted()
	if n > len(tuples) {
		n = len(tuples)
	}
	seen := make(map[int]bool, n)
	out := make([]core.Fact, 0, n)
	for i := 0; len(out) < n; i++ {
		j := (i*37 + 11) % len(tuples)
		for seen[j] {
			j = (j + 1) % len(tuples)
		}
		seen[j] = true
		out = append(out, core.Fact{Pred: pred, Tuple: tuples[j]})
	}
	return out
}

// e14EDBSize is the total tuple count across the workload's input
// relations.
func e14EDBSize(db *core.Database) int {
	n := 0
	for _, name := range db.Names() {
		n += db.Relation(name).Len()
	}
	return n
}

// E14 is the incremental-maintenance experiment: latency of applying a
// batch of EDB mutations through a live incremental view versus
// recomputing the model from scratch, over the paper's Examples 1–8
// and transitive closure, at update sizes 1, 10, and 1% of the EDB.
func E14(chain, grid, persons int, emp [2]int, pgraph int) *Table {
	t := &Table{
		ID:    "E14",
		Title: "incremental maintenance vs full recompute (live EDB mutations)",
		Claim: "delta/DRed maintenance makes small updates to a materialized model far cheaper than recomputation; ID-bearing strata fall back to stratum recompute, bounding their gain at the recompute floor",
		Columns: []string{"workload", "|EDB|", "op", "Δ", "path",
			"incr ms", "full ms", "speedup"},
	}

	var workloads []e14Workload
	workloads = append(workloads, e14Workload{
		name: fmt.Sprintf("tc-chain-%d", chain),
		info: mustAnalyze(mustParse(tcSrc)),
		db:   ChainDB(chain),
		newFact: func(i int) core.Fact {
			// A fresh leaf hung off an existing chain node: real
			// propagation work (every ancestor reaches the leaf).
			return core.Fact{Pred: "e",
				Tuple: value.Ints(int64((i*17)%chain), int64(chain+1+i))}
		},
		delPred: "e",
	})
	workloads = append(workloads, e14Workload{
		name: fmt.Sprintf("tc-grid-%dx%d", grid, grid),
		info: mustAnalyze(mustParse(tcSrc)),
		db:   GridDB(grid),
		newFact: func(i int) core.Fact {
			return core.Fact{Pred: "e",
				Tuple: value.Ints(int64((i*31)%(grid*grid)), int64(grid*grid+i))}
		},
		delPred: "e",
	})

	paperBase := e14DB(persons, emp[0], emp[1], pgraph)
	newFactFor := func(pred string) func(i int) core.Fact {
		switch pred {
		case "person":
			return func(i int) core.Fact {
				return core.Fact{Pred: "person", Tuple: value.Strs(fmt.Sprintf("x%04d", i))}
			}
		case "emp":
			return func(i int) core.Fact {
				return core.Fact{Pred: "emp",
					Tuple: value.Strs(fmt.Sprintf("x%04d", i), fmt.Sprintf("dept%d", i%emp[0]))}
			}
		default: // p
			return func(i int) core.Fact {
				return core.Fact{Pred: "p",
					Tuple: value.Strs(fmt.Sprintf("v%04d", (i*17)%pgraph), fmt.Sprintf("z%04d", i))}
			}
		}
	}
	for _, ex := range e14Examples {
		workloads = append(workloads, e14Workload{
			name:    ex.name,
			info:    e14Info(ex.src),
			db:      paperBase,
			newFact: newFactFor(ex.insPred),
			delPred: ex.insPred,
		})
	}
	// Examples 7–8: the §4 rewrite of Example 6, derived as the paper
	// derives it.
	opt, err := adorn.Optimize(mustParse(e14Examples[5].src), "q")
	if err != nil {
		panic(err)
	}
	workloads = append(workloads, e14Workload{
		name:    "ex7-8-optimized",
		info:    mustAnalyze(opt),
		db:      paperBase,
		newFact: newFactFor("p"),
		delPred: "p",
	})

	var tcSingleInsertSpeedup float64
	for _, w := range workloads {
		opts := seededOpts(42)
		edb := e14EDBSize(w.db)
		sizes := []int{1, 10, edb / 100}
		for _, u := range sizes {
			if u < 1 {
				continue
			}
			for _, op := range []string{"insert", "delete"} {
				v, err := incremental.NewView(w.info, w.db.Freeze(), opts)
				if err != nil {
					panic(fmt.Sprintf("E14 %s: %v", w.name, err))
				}
				var ins, del []core.Fact
				if op == "insert" {
					for i := 0; i < u; i++ {
						ins = append(ins, w.newFact(i))
					}
				} else {
					del = e14Deletes(w.db, w.delPred, u)
				}
				var mutated *core.Database
				var up incremental.UpdateStats
				incrDur, _ := timed(func() error {
					mutated, up, err = v.ApplyFacts(ins, del, nil)
					return err
				})
				if err != nil {
					panic(fmt.Sprintf("E14 %s %s: %v", w.name, op, err))
				}
				var full *core.Result
				fullDur, _ := timed(func() error {
					full = evalOnce(w.info, mutated, opts)
					return nil
				})
				if ok, diff := v.Equal(full); !ok {
					panic(fmt.Sprintf("E14 %s %s Δ=%d: incremental and recompute disagree: %s",
						w.name, op, u, diff))
				}
				path := "incremental"
				if up.FallbackFrom >= 0 {
					path = fmt.Sprintf("fallback@%d", up.FallbackFrom)
				}
				speedup := float64(fullDur) / float64(max64(int64(incrDur), 1))
				if w.name == workloads[0].name && op == "insert" && u == 1 {
					tcSingleInsertSpeedup = speedup
				}
				t.Rows = append(t.Rows, []string{
					w.name, fmt.Sprint(edb), op, fmt.Sprint(u), path,
					ms(incrDur), ms(fullDur), fmt.Sprintf("%.1fx", speedup)})
			}
		}
	}
	t.Notes = append(t.Notes,
		"every row verified: the maintained view is tuple-identical to a from-scratch recompute of the mutated EDB",
		fmt.Sprintf("single-fact insert on tc-chain: %.1fx vs full recompute", tcSingleInsertSpeedup),
		"ID-bearing examples (1–5) mutate the base of an ID-literal, so each update recomputes the affected strata (fallback path); the speedup shown is the honest bound for those programs",
		"DRed overdeletion is pessimistic on long chains: deleting many mid-chain edges can overdelete (and rederive) most of the closure, costing more than recompute — the win concentrates on small deltas")
	return t
}

// max64 avoids a zero denominator when a mutation is under the clock
// resolution.
func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
