// Package serverbench holds E12, the idlogd throughput experiment. It
// lives outside internal/bench so that the root package's testing.B
// benchmarks (which import internal/bench) never pull in
// internal/server and with it an import cycle back to the root.
package serverbench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"idlog/internal/bench"
	"idlog/internal/server"
)

// example4 is the paper's Example 4 sampling query: two employees per
// department, chosen by the seeded oracle.
const example4 = `select_two_emp(Name, Dept) :- emp[2](Name, Dept, N), N < 2.`

// E12 benchmarks idlogd end to end: the Example 4 sampling workload
// against one shared program and session, at increasing client
// concurrency, measuring throughput and latency percentiles. Every
// response is checked for the sampling invariant (exactly two
// employees per department), so the table doubles as a correctness
// run of the concurrent server.
func E12(clients []int, requests, depts, perDept int) *bench.Table {
	t := &bench.Table{
		ID:    "E12",
		Title: fmt.Sprintf("idlogd concurrent sampling throughput (%d×%d emps, %d requests/level)", depts, perDept, requests),
		Claim: "one frozen database and one compiled program serve concurrent §3.3 sampling queries " +
			"with zero errors and no throughput collapse as offered concurrency grows; " +
			"aggregate qps is bounded by available cores",
		Columns: []string{"clients", "requests", "errors", "qps", "p50 ms", "p95 ms", "max ms"},
	}

	srv := server.New(server.Config{
		MaxConcurrent: maxOf(clients),
		MaxQueue:      2 * requests,
		QueueWait:     time.Minute,
		MaxTimeout:    time.Minute,
	})
	defer srv.Close()
	if err := srv.RegisterProgram("example4", example4); err != nil {
		panic(err)
	}
	if err := srv.CreateSessionDB("bench", bench.EmpDB(depts, perDept)); err != nil {
		panic(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: maxOf(clients)}}

	wantTuples := 2 * depts
	for _, c := range clients {
		latencies := make([]time.Duration, requests)
		var errs atomic.Int64
		var next atomic.Int64
		start := time.Now()
		var wg sync.WaitGroup
		for w := 0; w < c; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := next.Add(1) - 1
					if i >= int64(requests) {
						return
					}
					t0 := time.Now()
					if !oneRequest(client, ts.URL, uint64(i), wantTuples) {
						errs.Add(1)
					}
					latencies[i] = time.Since(t0)
				}
			}()
		}
		wg.Wait()
		elapsed := time.Since(start)
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		pct := func(p float64) time.Duration {
			return latencies[int(p*float64(len(latencies)-1))]
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(c),
			fmt.Sprint(requests),
			fmt.Sprint(errs.Load()),
			fmt.Sprintf("%.0f", float64(requests)/elapsed.Seconds()),
			fmt.Sprintf("%.3f", float64(pct(0.50).Microseconds())/1000),
			fmt.Sprintf("%.3f", float64(pct(0.95).Microseconds())/1000),
			fmt.Sprintf("%.3f", float64(latencies[len(latencies)-1].Microseconds())/1000),
		})
	}
	t.Notes = append(t.Notes,
		"each response verified: exactly 2 employees per department (errors counts violations and non-200s)",
		"requests share one frozen session snapshot and one compiled program; seeds vary per request",
		fmt.Sprintf("GOMAXPROCS=%d on this run; evaluation is CPU-bound, so qps plateaus at core saturation", runtime.GOMAXPROCS(0)))
	return t
}

// oneRequest POSTs a seeded Example 4 query and verifies the sampling
// invariant on the answer.
func oneRequest(client *http.Client, baseURL string, seed uint64, wantTuples int) bool {
	body, _ := json.Marshal(map[string]any{
		"program":    "example4",
		"session":    "bench",
		"predicates": []string{"select_two_emp"},
		"seed":       seed,
	})
	resp, err := client.Post(baseURL+"/v1/query", "application/json", bytes.NewReader(body))
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false
	}
	var qr struct {
		Relations map[string]struct {
			Tuples [][]any `json:"tuples"`
		} `json:"relations"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		return false
	}
	return len(qr.Relations["select_two_emp"].Tuples) == wantTuples
}

func maxOf(ns []int) int {
	m := 1
	for _, n := range ns {
		if n > m {
			m = n
		}
	}
	return m
}
