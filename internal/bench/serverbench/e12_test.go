package serverbench

import (
	"testing"
)

func TestE12SmallRun(t *testing.T) {
	tbl := E12([]int{1, 2}, 8, 2, 4)
	if tbl.ID != "E12" || len(tbl.Rows) != 2 {
		t.Fatalf("table = %+v", tbl)
	}
	for _, row := range tbl.Rows {
		if row[2] != "0" {
			t.Fatalf("row %v reports errors: some responses failed the sampling invariant", row)
		}
	}
}
