package bench

import (
	"fmt"

	"idlog/internal/relation"
	"idlog/internal/turing"
)

// e5Machine returns the non-deterministic contains-a-1 machine.
func e5Machine() *turing.Machine {
	return &turing.Machine{
		Start: "g", Accept: "acc", Blank: "_",
		Rules: []turing.Rule{
			{State: "g", Read: "0", NewState: "g", Write: "0", Move: turing.Right},
			{State: "g", Read: "1", NewState: "g", Write: "1", Move: turing.Right},
			{State: "g", Read: "1", NewState: "acc", Write: "1", Move: turing.Stay},
		},
	}
}

// E5 scales the Theorem-6 construction: direct NGTM simulation versus
// the compiled IDLOG program, sweeping the step budget, plus an
// exhaustive acceptance-agreement check at a small budget.
func E5(stepBudgets []int) *Table {
	t := &Table{
		ID:      "E5",
		Title:   "Theorem 6: NGTM direct simulation vs compiled stratified IDLOG",
		Claim:   "(§5, Thm.6) stratified IDLOG expresses NGTM computation; the compiled program replays a guessed path in time polynomial in steps × tape",
		Columns: []string{"steps", "tape", "variant", "time ms", "facts derived"},
	}
	m := e5Machine()

	// Agreement check at a small budget over several inputs.
	agree := 0
	inputs := []string{"1", "01", "001", "000", "", "10"}
	for _, in := range inputs {
		tape := splitTape(in)
		c, err := turing.Compile(m, 3, 5)
		if err != nil {
			panic(err)
		}
		directOK, _ := m.Accepts(tape, 3)
		compiledOK, _, err := c.Accepts(turing.TapeDB(tape), 500000)
		if err != nil {
			panic(err)
		}
		if directOK == compiledOK {
			agree++
		}
	}
	t.Notes = append(t.Notes, fmt.Sprintf("existential-acceptance agreement at 3 steps: %d/%d inputs", agree, len(inputs)))

	for _, steps := range stepBudgets {
		tapeSize := steps + 2
		input := make([]string, 0, tapeSize-1)
		for i := 0; i < tapeSize-2; i++ {
			input = append(input, "0")
		}
		input = append(input, "1") // the 1 sits at the far end: longest path

		dur, _ := timed(func() error {
			res := m.Run(input, steps, func(step, n int) int { return 0 })
			_ = res
			return nil
		})
		t.Rows = append(t.Rows, []string{fmt.Sprint(steps), fmt.Sprint(tapeSize), "direct simulation",
			ms(dur), "-"})

		c, err := turing.Compile(m, steps, tapeSize)
		if err != nil {
			panic(err)
		}
		var derived int
		dur, err = timed(func() error {
			_, res, err := c.EvalPath(turing.TapeDB(input), relation.SortedOracle{})
			if err != nil {
				return err
			}
			derived = res.Stats.Inserted
			return nil
		})
		if err != nil {
			panic(err)
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(steps), fmt.Sprint(tapeSize), "compiled IDLOG path",
			ms(dur), fmt.Sprint(derived)})
	}
	t.Notes = append(t.Notes,
		"compiled-path cost is dominated by the frame axiom: O(steps × tape) tm_cell facts",
		"a logic-program interpreter is expected to be orders of magnitude slower than native simulation; the claim is expressibility, not speed")
	return t
}

func splitTape(s string) []string {
	out := make([]string, len(s))
	for i := range s {
		out[i] = string(s[i])
	}
	return out
}
