package bench

import (
	"fmt"

	"idlog/internal/core"
)

const tcSrc = `
	tc(X, Y) :- e(X, Y).
	tc(X, Y) :- e(X, Z), tc(Z, Y).
`

// E6 is the evaluation-strategy ablation: naive vs semi-naive fixpoint
// on transitive closure over chains and grids.
func E6(chains []int, grids []int) *Table {
	t := &Table{
		ID:      "E6",
		Title:   "ablation: naive vs semi-naive fixpoint (transitive closure)",
		Claim:   "(§2.2) IDLOG stays within minimal/perfect-model semantics, so standard evaluation strategies apply; semi-naive avoids rederiving the full relation each round",
		Columns: []string{"graph", "|tc|", "strategy", "time ms", "derivations", "iterations"},
	}
	info := mustAnalyze(mustParse(tcSrc))
	run := func(label string, db *core.Database) {
		var semi, naive *core.Result
		dur, _ := timed(func() error {
			semi = evalOnce(info, db, core.Options{})
			return nil
		})
		t.Rows = append(t.Rows, []string{label, fmt.Sprint(semi.Relation("tc").Len()), "semi-naive",
			ms(dur), fmt.Sprint(semi.Stats.Derivations), fmt.Sprint(semi.Stats.Iterations)})
		dur, _ = timed(func() error {
			naive = evalOnce(info, db, core.Options{Naive: true})
			return nil
		})
		if !naive.Relation("tc").Equal(semi.Relation("tc")) {
			panic("E6: naive and semi-naive disagree")
		}
		t.Rows = append(t.Rows, []string{label, fmt.Sprint(naive.Relation("tc").Len()), "naive",
			ms(dur), fmt.Sprint(naive.Stats.Derivations), fmt.Sprint(naive.Stats.Iterations)})
	}
	for _, n := range chains {
		run(fmt.Sprintf("chain-%d", n), ChainDB(n))
	}
	for _, g := range grids {
		run(fmt.Sprintf("grid-%dx%d", g, g), GridDB(g))
	}
	t.Notes = append(t.Notes, "both strategies verified to compute identical closures")
	return t
}
