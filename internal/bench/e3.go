package bench

import (
	"fmt"

	"idlog/internal/adorn"
	"idlog/internal/analysis"
	"idlog/internal/core"
)

// example6Src is the Example 6/8 program.
const example6Src = `
	q(X) :- a(X, Y).
	a(X, Y) :- p(X, Z), a(Z, Y).
	a(X, Y) :- p(X, Y).
`

// E3 measures the full §4 strategy (adornment + projection pushing +
// ∃-existential ID-rewrite) on the Example 6 reachability-source
// program over chain-with-fan-out graphs.
func E3(workloads [][2]int) *Table {
	t := &Table{
		ID:      "E3",
		Title:   "Example 6→8 rewrite on chain+fan graphs",
		Claim:   "(§4, Ex.6–8, Thm.4) projection pushing plus the ID-literal rewrite preserves q while collapsing the quadratic intermediate relation a(X, Y)",
		Columns: []string{"chain", "fan", "variant", "time ms", "derivations", "inserted"},
	}
	orig := mustParse(example6Src)
	origInfo := mustAnalyze(orig)
	res, err := adorn.Analyze(orig, "q")
	if err != nil {
		panic(err)
	}
	pushed := adorn.PushProjections(orig, res)
	pushedInfo := mustAnalyze(pushed)
	full, err := adorn.Optimize(orig, "q")
	if err != nil {
		panic(err)
	}
	fullInfo := mustAnalyze(full)

	for _, w := range workloads {
		chain, fan := w[0], w[1]
		db := ChainFanDB(chain, fan)
		var baseline *core.Result
		run := func(name string, info *analysis.Info) {
			var r *core.Result
			dur, _ := timed(func() error {
				r = evalOnce(info, db, core.Options{})
				return nil
			})
			if baseline == nil {
				baseline = r
			} else if !r.Relation("q").Equal(baseline.Relation("q")) {
				panic("E3: variant " + name + " differs on q")
			}
			t.Rows = append(t.Rows, []string{fmt.Sprint(chain), fmt.Sprint(fan), name,
				ms(dur), fmt.Sprint(r.Stats.Derivations), fmt.Sprint(r.Stats.Inserted)})
		}
		run("original", origInfo)
		run("projections pushed", pushedInfo)
		run("pushed + ID-literal", fullInfo)
	}
	t.Notes = append(t.Notes, "all variants verified equal on q for every workload")
	return t
}
