package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestReportRoundTrip(t *testing.T) {
	tables := []*Table{{
		ID:        "E1",
		Title:     "witness invariance",
		Claim:     "claim text",
		Columns:   []string{"n", "ms"},
		Rows:      [][]string{{"10", "0.5"}, {"20", "1.2"}},
		Notes:     []string{"a note"},
		ElapsedNS: 2_500_000,
	}}
	path := filepath.Join(t.TempDir(), "BENCH_quick.json")
	if err := NewReport("quick", tables).WriteFile(path); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got Report
	if err := json.Unmarshal(buf, &got); err != nil {
		t.Fatal(err)
	}
	if got.Suite != "quick" || got.GoVersion == "" || got.GeneratedAt == "" {
		t.Fatalf("report header = %+v", got)
	}
	if len(got.Tables) != 1 || got.Tables[0].ID != "E1" || got.Tables[0].ElapsedMS != 2.5 {
		t.Fatalf("tables = %+v", got.Tables)
	}
	if len(got.Tables[0].Rows) != 2 || got.Tables[0].Rows[1][1] != "1.2" {
		t.Fatalf("rows = %+v", got.Tables[0].Rows)
	}
}

func TestRunStampsElapsed(t *testing.T) {
	tables := Run(Suite{E6Chains: []int{8}, E6Grids: []int{2}}, "E6")
	if len(tables) != 1 {
		t.Fatalf("Run returned %d tables", len(tables))
	}
	if tables[0].ElapsedNS <= 0 {
		t.Fatalf("ElapsedNS not stamped: %d", tables[0].ElapsedNS)
	}
}
