package bench

import (
	"fmt"
	"time"

	"idlog/internal/analysis"
	"idlog/internal/core"
	"idlog/internal/value"
)

// adversarialJoinSrc writes the selective literal LAST: a planner-off
// run scans big1 and explodes through big2's fan-out before sel ever
// filters; the planner starts at sel, probes big2 on the bound Z, and
// probes big1 on the bound Y.
const adversarialJoinSrc = `hit(X, Z) :- big1(X, Y), big2(Y, Z), sel(Z).`

// joinFan is big2's per-key fan-out — the factor the analysis-order
// evaluation pays per big1 tuple and the planned order never touches.
const joinFan = 128

// adversarialJoinDB sizes the workload off n = |big1|: big1 maps n
// keys onto m join values, big2 fans each join value out joinFan ways,
// and sel keeps exactly one of the fan-out targets.
func adversarialJoinDB(n int) *core.Database {
	db := core.NewDatabase()
	m := n / joinFan
	if m < 1 {
		m = 1
	}
	for i := 0; i < n; i++ {
		_ = db.Add("big1", value.Ints(int64(i), int64(i%m)))
	}
	for j := 0; j < m; j++ {
		for k := 0; k < joinFan; k++ {
			_ = db.Add("big2", value.Ints(int64(j), int64(1_000_000+k)))
		}
	}
	_ = db.Add("sel", value.Ints(int64(1_000_000+joinFan-1)))
	return db
}

// E15 measures the cost-based join planner: the adversarially-ordered
// join above plus right-linear transitive closure (where the win is
// the delta-first rotation: each semi-naive pass enumerates the delta
// instead of rescanning e) at three EDB scales each, planner on vs
// planner off, with a full-model fingerprint diff per cell.
func E15(reps int, joinSizes, chains []int) *Table {
	t := &Table{
		ID:      "E15",
		Title:   "join planner: adversarial join + transitive closure, planner on vs off",
		Claim:   "selectivity-ordered bodies and delta-first rotation cut wall clock on adversarially-ordered joins by an order of magnitude and on recursion measurably, with byte-identical answers",
		Columns: []string{"kernel", "off ms", "on ms", "speedup", "identical"},
	}
	type kernel struct {
		name string
		info *analysis.Info
		db   func() *core.Database
	}
	var kernels []kernel
	for _, n := range joinSizes {
		n := n
		kernels = append(kernels, kernel{fmt.Sprintf("adversarial join n=%d fan=%d", n, joinFan),
			mustAnalyze(mustParse(adversarialJoinSrc)),
			func() *core.Database { return adversarialJoinDB(n) }})
	}
	for _, n := range chains {
		n := n
		kernels = append(kernels, kernel{fmt.Sprintf("E6 tc chain-%d", n),
			mustAnalyze(mustParse(tcSrc)),
			func() *core.Database { return ChainDB(n) }})
	}
	allIdentical := true
	for _, k := range kernels {
		row := []string{k.name}
		var prints [2]string
		var means [2]time.Duration
		for i, opts := range []core.Options{{NoPlanner: true}, {}} {
			db := k.db()
			res := evalOnce(k.info, db, opts) // warm-up: interning, EDB indexes
			prints[i] = resultFingerprint(res, k.info)
			var sum time.Duration
			for r := 0; r < reps; r++ {
				d, _ := timed(func() error {
					evalOnce(k.info, k.db(), opts)
					return nil
				})
				sum += d
			}
			means[i] = sum / time.Duration(reps)
			row = append(row, ms(means[i]))
		}
		identical := "yes"
		if prints[0] != prints[1] {
			identical = "NO"
			allIdentical = false
		}
		row = append(row, fmt.Sprintf("%.2fx", float64(means[0])/float64(means[1])), identical)
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("mean of %d runs per cell after one warm-up; 'identical' compares the full model fingerprint planner-off vs planner-on", reps),
		"the adversarial join writes the selective literal last, so the analysis order pays |big1|*fan probe attempts where the planned order pays ~|big1|; transitive closure isolates the delta-first rotation (delta scan vs full e rescan per pass)")
	if !allIdentical {
		t.Notes = append(t.Notes, "DIVERGENCE DETECTED: planner-on answers differed from planner-off — this is a bug")
	}
	return t
}
