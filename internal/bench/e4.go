package bench

import (
	"fmt"
	"reflect"

	"idlog/internal/choice"
	"idlog/internal/core"
	"idlog/internal/relation"
)

// E4 exercises Theorem 2: the DATALOG^C select_emp query evaluated
// under the direct KN88 semantics versus its 4-stratum IDLOG
// translation, checking answer-set equality by enumeration on a small
// instance and comparing single-run cost on larger ones.
func E4(sizes [][2]int) *Table {
	t := &Table{
		ID:      "E4",
		Title:   "Theorem 2: DATALOG^C direct semantics vs translated IDLOG",
		Claim:   "(§3.2.2, Thm.2) every (C1)+(C2) DATALOG^C program has a q-equivalent stratified IDLOG program; the translation costs one extra stratum",
		Columns: []string{"depts", "emp/dept", "variant", "time ms", "derivations"},
	}
	src := `select_emp(Name) :- emp(Name, Dept), choice((Dept), (Name)).`
	prog := mustParse(src)
	translated, err := choice.Translate(prog)
	if err != nil {
		panic(err)
	}
	transInfo := mustAnalyze(translated)

	// Equivalence by enumeration on a tiny instance.
	tiny := EmpDB(2, 3)
	direct, err := choice.Enumerate(prog, tiny, []string{"select_emp"}, choice.EnumerateOptions{})
	if err != nil {
		panic(err)
	}
	viaIDLOG, err := core.Enumerate(transInfo, tiny, []string{"select_emp"}, core.EnumerateOptions{})
	if err != nil {
		panic(err)
	}
	equal := reflect.DeepEqual(core.AnswerSetFingerprints(direct), core.AnswerSetFingerprints(viaIDLOG))
	t.Notes = append(t.Notes, fmt.Sprintf(
		"answer-set equality on 2x3 instance: direct=%d answers, translated=%d answers, equal=%v",
		len(direct), len(viaIDLOG), equal))
	if !equal {
		panic("E4: Theorem-2 translation is not answer-set equivalent")
	}

	for _, sz := range sizes {
		depts, per := sz[0], sz[1]
		db := EmpDB(depts, per)
		var dRes *core.Result
		dur, err := timed(func() error {
			var err error
			dRes, err = choice.Eval(prog, db, choice.Options{Oracle: relation.RandomOracle{Seed: 1}})
			return err
		})
		if err != nil {
			panic(err)
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(depts), fmt.Sprint(per), "KN88 direct",
			ms(dur), fmt.Sprint(dRes.Stats.Derivations)})

		var tRes *core.Result
		dur, _ = timed(func() error {
			tRes = evalOnce(transInfo, db, seededOpts(1))
			return nil
		})
		if !tRes.Relation("select_emp").Equal(dRes.Relation("select_emp")) {
			// Same seed drives the same oracle over the same grouped
			// relation, so single runs coincide as well.
			panic("E4: same-seed runs disagree")
		}
		t.Rows = append(t.Rows, []string{fmt.Sprint(depts), fmt.Sprint(per), "IDLOG translation",
			ms(dur), fmt.Sprint(tRes.Stats.Derivations)})
	}
	return t
}
