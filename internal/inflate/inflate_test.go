package inflate

import (
	"strings"
	"testing"

	"idlog/internal/core"
	"idlog/internal/value"
)

const example3 = `
	man(X) :- person(X), not woman(X).
	woman(X) :- person(X), not man(X).
`

func personDB(names ...string) *core.Database {
	db := core.NewDatabase()
	for _, n := range names {
		_ = db.Add("person", value.Strs(n))
	}
	return db
}

func TestParse(t *testing.T) {
	p, err := Parse(DL, example3)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rules) != 2 || len(p.Rules[0].Head) != 1 || len(p.Rules[0].Body) != 2 {
		t.Fatalf("parsed rules = %+v", p.Rules)
	}
}

func TestParseConjunctiveHead(t *testing.T) {
	p, err := Parse(DL, `a(X), b(X) :- c(X).`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rules[0].Head) != 2 {
		t.Fatalf("head = %v", p.Rules[0].Head)
	}
}

func TestParseNegatedHeadRequiresNDatalog(t *testing.T) {
	if _, err := Parse(DL, `not a(X) :- b(X).`); err == nil {
		t.Fatalf("negated head accepted in DL")
	}
	if _, err := Parse(NDatalog, `not a(X) :- b(X).`); err != nil {
		t.Fatalf("negated head rejected in N-DATALOG: %v", err)
	}
}

func TestNDatalogHeadVarsMustBeBound(t *testing.T) {
	if _, err := Parse(NDatalog, `a(X, V) :- b(X).`); err == nil {
		t.Fatalf("unbound N-DATALOG head variable accepted")
	}
	// In DL the same rule is fine: V is invented.
	p, err := Parse(DL, `a(X, V) :- b(X).`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rules[0].invents) != 1 || p.Rules[0].invents[0] != "V" {
		t.Fatalf("invents = %v", p.Rules[0].invents)
	}
}

func TestExample3NonDeterministicOutcomes(t *testing.T) {
	// §3.2.1 Example 3: man(r) = {∅, {a}, {b}, {a,b}} under the
	// non-deterministic inflationary semantics.
	p, err := Parse(DL, example3)
	if err != nil {
		t.Fatal(err)
	}
	answers, err := p.EnumerateOutcomes(personDB("a", "b"), []string{"man"}, EnumerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 4 {
		t.Fatalf("outcomes = %d, want 4", len(answers))
	}
	sizes := map[int]int{}
	for _, a := range answers {
		sizes[a.Relations["man"].Len()]++
	}
	if sizes[0] != 1 || sizes[1] != 2 || sizes[2] != 1 {
		t.Fatalf("size distribution = %v", sizes)
	}
}

func TestExample3EveryRunPartitionsPersons(t *testing.T) {
	p, err := Parse(DL, example3)
	if err != nil {
		t.Fatal(err)
	}
	db := personDB("a", "b", "c")
	for seed := uint64(0); seed < 25; seed++ {
		res, err := p.Eval(db, Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		man, woman := res.Relation("man"), res.Relation("woman")
		if man.Len()+woman.Len() != 3 {
			t.Fatalf("seed %d: man=%v woman=%v", seed, man, woman)
		}
		for _, tup := range man.Tuples() {
			if woman.Contains(tup) {
				t.Fatalf("seed %d: %v classified both ways", seed, tup)
			}
		}
	}
}

func TestExample3DeterministicContrast(t *testing.T) {
	// Under the deterministic inflationary semantics both rules fire in
	// round one for every person: man = woman = {(a),(b)}.
	p, err := Parse(DL, example3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Deterministic(personDB("a", "b"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Relation("man").Len() != 2 || res.Relation("woman").Len() != 2 {
		t.Fatalf("man=%v woman=%v", res.Relation("man"), res.Relation("woman"))
	}
}

func TestRunsVaryWithSeed(t *testing.T) {
	p, err := Parse(DL, example3)
	if err != nil {
		t.Fatal(err)
	}
	db := personDB("a", "b", "c", "d")
	fps := map[string]bool{}
	for seed := uint64(0); seed < 40; seed++ {
		res, err := p.Eval(db, Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		fps[res.Relation("man").Fingerprint()] = true
	}
	if len(fps) < 3 {
		t.Fatalf("40 seeds gave only %d distinct outcomes", len(fps))
	}
}

func TestNDatalogDeletion(t *testing.T) {
	// Mark exactly the non-selected tuples: move every b-fact to c.
	p, err := Parse(NDatalog, `c(X), not b(X) :- b(X).`)
	if err != nil {
		t.Fatal(err)
	}
	db := core.NewDatabase()
	_ = db.AddAll("b", value.Strs("x"), value.Strs("y"))
	res, err := p.Eval(db, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Relation("b").Len() != 0 || res.Relation("c").Len() != 2 {
		t.Fatalf("b=%v c=%v", res.Relation("b"), res.Relation("c"))
	}
}

func TestNDatalogInconsistentHeadNeverFires(t *testing.T) {
	// a(X), not a(X) is inconsistent for every instantiation: no firing.
	p, err := Parse(NDatalog, `a(X), not a(X) :- b(X).`)
	if err != nil {
		t.Fatal(err)
	}
	db := core.NewDatabase()
	_ = db.Add("b", value.Strs("x"))
	res, err := p.Eval(db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 0 {
		t.Fatalf("inconsistent head fired %d times", res.Steps)
	}
}

func TestNDatalogOscillationDetected(t *testing.T) {
	// flip/flop forever: a deleted then re-added.
	p, err := Parse(NDatalog, `
		not a(X) :- a(X), b(X).
		a(X) :- b(X), not a(X).
	`)
	if err != nil {
		t.Fatal(err)
	}
	db := core.NewDatabase()
	_ = db.Add("b", value.Strs("x"))
	_ = db.Add("a", value.Strs("x"))
	if _, err := p.Eval(db, Options{MaxSteps: 100}); err == nil {
		t.Fatalf("oscillating program reached a fixpoint?")
	}
}

func TestInventedValuesFireOncePerInstantiation(t *testing.T) {
	p, err := Parse(DL, `tagged(X, V) :- item(X).`)
	if err != nil {
		t.Fatal(err)
	}
	db := core.NewDatabase()
	_ = db.AddAll("item", value.Strs("i1"), value.Strs("i2"))
	res, err := p.Eval(db, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	tagged := res.Relation("tagged")
	if tagged.Len() != 2 {
		t.Fatalf("tagged = %v, want one invented value per item", tagged)
	}
	// Invented values must be pairwise distinct and new.
	seen := map[string]bool{}
	for _, tup := range tagged.Tuples() {
		v := tup[1].String()
		if !strings.HasPrefix(v, "@new") || seen[v] {
			t.Fatalf("bad invented value %q in %v", v, tagged)
		}
		seen[v] = true
	}
}

func TestEnumerateRejectsInventedValues(t *testing.T) {
	p, err := Parse(DL, `tagged(X, V) :- item(X).`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.EnumerateOutcomes(core.NewDatabase(), []string{"tagged"}, EnumerateOptions{}); err == nil {
		t.Fatalf("enumeration with invented values should be rejected")
	}
}

func TestDeterministicRejectsNDatalog(t *testing.T) {
	p, err := Parse(NDatalog, `not a(X) :- b(X).`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Deterministic(core.NewDatabase(), Options{}); err == nil {
		t.Fatalf("deterministic N-DATALOG should be rejected")
	}
}

func TestArithmeticInBodies(t *testing.T) {
	p, err := Parse(DL, `small(X) :- num(X), X < 3.`)
	if err != nil {
		t.Fatal(err)
	}
	db := core.NewDatabase()
	_ = db.AddAll("num", value.Ints(1), value.Ints(5), value.Ints(2))
	res, err := p.Eval(db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Relation("small").Len() != 2 {
		t.Fatalf("small = %v", res.Relation("small"))
	}
}

func TestEnumerateMatchesIDLOGAnswerFamily(t *testing.T) {
	// C6: the DL outcomes of Example 3 coincide with the IDLOG answers
	// of Example 2 (both are the powerset of persons for man).
	p, err := Parse(DL, example3)
	if err != nil {
		t.Fatal(err)
	}
	dlAnswers, err := p.EnumerateOutcomes(personDB("a", "b"), []string{"man"}, EnumerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fps := map[string]bool{}
	for _, a := range dlAnswers {
		fps[a.Relations["man"].Fingerprint()] = true
	}
	if len(fps) != 4 {
		t.Fatalf("DL answer family has %d members, want 4", len(fps))
	}
}

func TestChoiceAndIDRejected(t *testing.T) {
	if _, err := Parse(DL, `p(X) :- q(X, Y), choice((X), (Y)).`); err == nil {
		t.Fatalf("choice accepted")
	}
	if _, err := Parse(DL, `p(X) :- q[](X, T).`); err == nil {
		t.Fatalf("ID-literal accepted")
	}
}

func TestEnumerateOscillatorHasNoTerminalOutcome(t *testing.T) {
	// The flip/flop program never reaches a fixpoint: the reachable
	// state graph is a cycle with no terminal states, so the outcome
	// set is empty (and the walk terminates thanks to state dedup).
	p, err := Parse(NDatalog, `
		not a(X) :- a(X), b(X).
		a(X) :- b(X), not a(X).
	`)
	if err != nil {
		t.Fatal(err)
	}
	db := core.NewDatabase()
	_ = db.Add("b", value.Strs("x"))
	outcomes, err := p.EnumerateOutcomes(db, []string{"a"}, EnumerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != 0 {
		t.Fatalf("oscillator produced %d terminal outcomes", len(outcomes))
	}
}

func TestNDatalogEnumerateDeletionOutcomes(t *testing.T) {
	// "Move a b-tuple to c until done": a subtlety of the
	// one-instantiation-at-a-time semantics is that the guard fact done
	// RACES with the second move — after the first move both "fire
	// done" and "move the other tuple" are applicable. Hence three
	// terminal outcomes: {x moved}, {y moved}, {both moved}.
	p, err := Parse(NDatalog, `
		c(X), not b(X) :- b(X), not done.
		done :- c(X).
	`)
	if err != nil {
		t.Fatal(err)
	}
	db := core.NewDatabase()
	_ = db.AddAll("b", value.Strs("x"), value.Strs("y"))
	outcomes, err := p.EnumerateOutcomes(db, []string{"b", "c"}, EnumerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != 3 {
		t.Fatalf("outcomes = %d, want 3", len(outcomes))
	}
	sizes := map[int]int{}
	for _, o := range outcomes {
		if o.Relations["b"].Len()+o.Relations["c"].Len() != 2 {
			t.Fatalf("tuples lost: b=%v c=%v", o.Relations["b"], o.Relations["c"])
		}
		sizes[o.Relations["c"].Len()]++
	}
	if sizes[1] != 2 || sizes[2] != 1 {
		t.Fatalf("outcome shape = %v, want two one-moved and one both-moved", sizes)
	}
}
