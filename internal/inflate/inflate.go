// Package inflate implements the two non-deterministic inflationary
// database languages reviewed in §3.2.1 of the paper, as comparison
// baselines for IDLOG:
//
//   - DL [AV88]: DATALOG with negated body literals, conjunctive heads,
//     and invented values (head-only variables instantiated with fresh
//     constants). Facts are only ever added.
//   - N-DATALOG [ASV90]: additionally allows negated head literals,
//     interpreted as deletions; an instantiation fires only if its head
//     is consistent.
//
// The intended models are the outcomes of firing one instantiation at a
// time until no instantiation changes the state; the choice of which
// instantiation to fire is the source of non-determinism. Eval plays one
// run (seeded), Deterministic plays the synchronous-rounds inflationary
// fixpoint (the deterministic semantics contrasted in Example 3), and
// EnumerateOutcomes explores every reachable terminal state on small
// inputs.
package inflate

import (
	"fmt"
	"sort"
	"strings"

	"idlog/internal/arith"
	"idlog/internal/ast"
	"idlog/internal/core"
	"idlog/internal/parser"
	"idlog/internal/relation"
	"idlog/internal/value"
)

// Mode selects the language.
type Mode int

const (
	// DL is the declarative language of [AV88]: positive heads only.
	DL Mode = iota
	// NDatalog is the language of [ASV90]: negated heads delete.
	NDatalog
)

// Rule is one generalized clause.
type Rule struct {
	// Head literals; in DL they must all be positive.
	Head []*ast.Literal
	// Body literals (atoms, negations, arithmetic).
	Body []*ast.Literal
	// invents lists head-only variables (computed by Validate).
	invents []string
}

// Program is a DL or N-DATALOG program.
type Program struct {
	Mode  Mode
	Rules []*Rule
}

// Parse builds a Program from source text, one rule per clause, using
// the generalized syntax (conjunctive heads, "not" in heads for
// N-DATALOG). Rules are validated for the chosen mode.
func Parse(mode Mode, src string) (*Program, error) {
	p := &Program{Mode: mode}
	for _, chunk := range splitRules(src) {
		if strings.TrimSpace(chunk) == "" {
			continue
		}
		head, body, err := parser.RuleParts(chunk)
		if err != nil {
			return nil, err
		}
		p.Rules = append(p.Rules, &Rule{Head: head, Body: body})
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// splitRules cuts src at rule-terminating periods (a period followed by
// whitespace/EOF), keeping the period with the rule.
func splitRules(src string) []string {
	var out []string
	var cur strings.Builder
	for i := 0; i < len(src); i++ {
		c := src[i]
		cur.WriteByte(c)
		if c == '.' && (i+1 == len(src) || src[i+1] == ' ' || src[i+1] == '\n' || src[i+1] == '\t' || src[i+1] == '\r') {
			out = append(out, cur.String())
			cur.Reset()
		}
	}
	if strings.TrimSpace(cur.String()) != "" {
		out = append(out, cur.String())
	}
	return out
}

// Validate checks the mode's syntactic restrictions and computes
// invented variables.
func (p *Program) Validate() error {
	for _, r := range p.Rules {
		if len(r.Head) == 0 {
			return fmt.Errorf("inflate: rule with empty head")
		}
		bodyVars := map[string]bool{}
		for _, l := range r.Body {
			if l.IsChoice() {
				return fmt.Errorf("inflate: choice literals are not part of DL/N-DATALOG")
			}
			if l.Atom.IsID {
				return fmt.Errorf("inflate: ID-literals are not part of DL/N-DATALOG")
			}
			if !l.Neg {
				for _, t := range l.Atom.Args {
					if v, ok := t.(ast.Var); ok {
						bodyVars[v.Name] = true
					}
				}
			}
		}
		seenInvent := map[string]bool{}
		for _, l := range r.Head {
			if l.IsChoice() || l.Atom.IsID {
				return fmt.Errorf("inflate: invalid head literal %s", l)
			}
			if arith.IsBuiltin(l.Atom.Pred) {
				return fmt.Errorf("inflate: interpreted predicate %s in head", l.Atom.Pred)
			}
			if l.Neg && p.Mode == DL {
				return fmt.Errorf("inflate: negated head literal %s requires N-DATALOG", l)
			}
			for _, t := range l.Atom.Args {
				v, ok := t.(ast.Var)
				if !ok || bodyVars[v.Name] || seenInvent[v.Name] {
					continue
				}
				if p.Mode == NDatalog {
					// ASV90: every head variable must appear positively
					// bound in the body.
					return fmt.Errorf("inflate: N-DATALOG head variable %s not bound in body", v.Name)
				}
				seenInvent[v.Name] = true
				r.invents = append(r.invents, v.Name)
			}
		}
	}
	return nil
}

// state is the current instance during a run.
type state struct {
	rels map[string]*relation.Relation
}

func newState(db *core.Database) *state {
	s := &state{rels: map[string]*relation.Relation{}}
	for _, n := range db.Names() {
		s.rels[n] = db.Relation(n).Clone()
	}
	return s
}

func (s *state) rel(name string, arity int) *relation.Relation {
	r, ok := s.rels[name]
	if !ok {
		r = relation.New(name, arity)
		s.rels[name] = r
	}
	return r
}

func (s *state) clone() *state {
	c := &state{rels: map[string]*relation.Relation{}}
	for n, r := range s.rels {
		c.rels[n] = r.Clone()
	}
	return c
}

// fingerprint canonically identifies the state.
func (s *state) fingerprint() string {
	names := make([]string, 0, len(s.rels))
	for n := range s.rels {
		names = append(names, n)
	}
	sort.Strings(names)
	parts := make([]string, 0, len(names))
	for _, n := range names {
		parts = append(parts, n+"="+s.rels[n].Fingerprint())
	}
	return strings.Join(parts, ";")
}

// firing is one applicable ground instantiation.
type firing struct {
	rule *Rule
	env  map[string]value.Value
}

// key identifies the firing for the fired-once bookkeeping of rules with
// invented values.
func (f *firing) key(ri int) string {
	vars := make([]string, 0, len(f.env))
	for v := range f.env {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	var b strings.Builder
	fmt.Fprintf(&b, "r%d", ri)
	for _, v := range vars {
		fmt.Fprintf(&b, "|%s=%s", v, f.env[v])
	}
	return b.String()
}

// deltas computes the additions and deletions a firing would make,
// instantiating invented variables with fresh constants drawn from gen.
// For N-DATALOG an inconsistent head yields ok=false.
func (f *firing) deltas(gen func() value.Value) (adds, dels []groundAtom, ok bool) {
	env := f.env
	inv := map[string]value.Value{}
	for _, v := range f.rule.invents {
		inv[v] = gen()
	}
	lookup := func(t ast.Term) value.Value {
		switch t := t.(type) {
		case ast.Const:
			return t.Val
		case ast.Var:
			if val, ok := env[t.Name]; ok {
				return val
			}
			return inv[t.Name]
		}
		return value.Value{}
	}
	for _, l := range f.rule.Head {
		g := groundAtom{pred: l.Atom.Pred, tuple: make(value.Tuple, len(l.Atom.Args))}
		for i, t := range l.Atom.Args {
			g.tuple[i] = lookup(t)
		}
		if l.Neg {
			dels = append(dels, g)
		} else {
			adds = append(adds, g)
		}
	}
	// Consistency: no atom both added and deleted.
	for _, a := range adds {
		for _, d := range dels {
			if a.pred == d.pred && a.tuple.Equal(d.tuple) {
				return nil, nil, false
			}
		}
	}
	return adds, dels, true
}

type groundAtom struct {
	pred  string
	tuple value.Tuple
}
