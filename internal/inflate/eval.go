package inflate

import (
	"fmt"
	"sort"

	"idlog/internal/arith"
	"idlog/internal/ast"
	"idlog/internal/core"
	"idlog/internal/relation"
	"idlog/internal/symbol"
	"idlog/internal/value"
)

// Options configures a single inflationary run.
type Options struct {
	// Seed drives the pseudo-random choice of which applicable
	// instantiation fires next.
	Seed uint64
	// MaxSteps bounds the number of firings (0 = 1 << 20). N-DATALOG
	// programs can oscillate; exceeding the bound is an error.
	MaxSteps int
}

// Result of a run: the final state's relations.
type Result struct {
	rels map[string]*relation.Relation
	// Steps is the number of firings performed.
	Steps int
}

// Relation returns a final relation (nil if the predicate never
// appeared).
func (r *Result) Relation(name string) *relation.Relation { return r.rels[name] }

// matchBody enumerates every satisfaction of the rule body in state s,
// calling yield with the environment. Positive relational literals are
// matched first (in source order), then interpreted literals, then
// negations; DL/N-DATALOG bodies are required to be safe under this
// fixed strategy.
func matchBody(s *state, r *Rule, yield func(env map[string]value.Value) error) error {
	var pos, mid, neg []*ast.Literal
	for _, l := range r.Body {
		switch {
		case !l.Neg && !arith.IsBuiltin(l.Atom.Pred):
			pos = append(pos, l)
		case arith.IsBuiltin(l.Atom.Pred):
			mid = append(mid, l)
		default:
			neg = append(neg, l)
		}
	}
	order := append(append(pos, mid...), neg...)
	env := map[string]value.Value{}
	var rec func(i int) error
	rec = func(i int) error {
		if i == len(order) {
			// Yield a copy: callers retain environments.
			c := make(map[string]value.Value, len(env))
			for k, v := range env {
				c[k] = v
			}
			return yield(c)
		}
		l := order[i]
		a := l.Atom
		if b, ok := arith.Lookup(a.Pred); ok {
			args := make([]value.Value, len(a.Args))
			mask := make([]bool, len(a.Args))
			for j, t := range a.Args {
				switch t := t.(type) {
				case ast.Const:
					args[j], mask[j] = t.Val, true
				case ast.Var:
					if v, bound := env[t.Name]; bound {
						args[j], mask[j] = v, true
					}
				}
			}
			sols, err := b.Solve(args, mask)
			if err != nil {
				return fmt.Errorf("inflate: %w", err)
			}
			if l.Neg {
				if len(sols) == 0 {
					return rec(i + 1)
				}
				return nil
			}
			for _, sol := range sols {
				var newly []string
				ok := true
				for j, t := range a.Args {
					if v, isVar := t.(ast.Var); isVar {
						if old, bound := env[v.Name]; bound {
							if !old.Equal(sol[j]) {
								ok = false
								break
							}
						} else {
							env[v.Name] = sol[j]
							newly = append(newly, v.Name)
						}
					}
				}
				if ok {
					if err := rec(i + 1); err != nil {
						return err
					}
				}
				for _, n := range newly {
					delete(env, n)
				}
			}
			return nil
		}
		rel := s.rel(a.Pred, len(a.Args))
		if l.Neg {
			t := make(value.Tuple, len(a.Args))
			for j, term := range a.Args {
				switch term := term.(type) {
				case ast.Const:
					t[j] = term.Val
				case ast.Var:
					v, bound := env[term.Name]
					if !bound {
						return fmt.Errorf("inflate: unsafe negation %s: variable %s unbound", l, term.Name)
					}
					t[j] = v
				}
			}
			if rel.Contains(t) {
				return nil
			}
			return rec(i + 1)
		}
		for _, t := range rel.Tuples() {
			var newly []string
			ok := true
			for j, term := range a.Args {
				switch term := term.(type) {
				case ast.Const:
					if !t[j].Equal(term.Val) {
						ok = false
					}
				case ast.Var:
					if v, bound := env[term.Name]; bound {
						if !v.Equal(t[j]) {
							ok = false
						}
					} else {
						env[term.Name] = t[j]
						newly = append(newly, term.Name)
					}
				}
				if !ok {
					break
				}
			}
			if ok {
				if err := rec(i + 1); err != nil {
					return err
				}
			}
			for _, n := range newly {
				delete(env, n)
			}
		}
		return nil
	}
	return rec(0)
}

// applicable collects, in stable order, every firing that would change
// the state (or, for invented-value rules, has not fired yet).
func (p *Program) applicable(s *state, fired map[string]bool) ([]*firing, error) {
	var out []*firing
	for ri, r := range p.Rules {
		err := matchBody(s, r, func(env map[string]value.Value) error {
			f := &firing{rule: r, env: env}
			if len(r.invents) > 0 {
				if fired[f.key(ri)] {
					return nil
				}
				out = append(out, f)
				return nil
			}
			adds, dels, ok := f.deltas(nil)
			if !ok {
				return nil
			}
			changes := false
			for _, a := range adds {
				if !s.rel(a.pred, len(a.tuple)).Contains(a.tuple) {
					changes = true
				}
			}
			for _, d := range dels {
				if s.rel(d.pred, len(d.tuple)).Contains(d.tuple) {
					changes = true
				}
			}
			if changes {
				out = append(out, f)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// apply performs the firing's additions and deletions on s.
func (s *state) apply(adds, dels []groundAtom) {
	for _, d := range dels {
		r := s.rel(d.pred, len(d.tuple))
		if r.Contains(d.tuple) {
			nr := relation.New(d.pred, len(d.tuple))
			for _, t := range r.Tuples() {
				if !t.Equal(d.tuple) {
					nr.MustInsert(t)
				}
			}
			s.rels[d.pred] = nr
		}
	}
	for _, a := range adds {
		s.rel(a.pred, len(a.tuple)).MustInsert(a.tuple)
	}
}

func freshGen() func() value.Value {
	return func() value.Value {
		id, _ := symbol.Default().Fresh("@new")
		return value.Sym(id)
	}
}

// Eval plays one non-deterministic inflationary run: while some
// instantiation is applicable, a pseudo-random one (seeded) fires.
func (p *Program) Eval(db *core.Database, opts Options) (*Result, error) {
	maxSteps := opts.MaxSteps
	if maxSteps == 0 {
		maxSteps = 1 << 20
	}
	s := newState(db)
	// Ensure head predicates exist even if never derived.
	for _, r := range p.Rules {
		for _, h := range r.Head {
			s.rel(h.Atom.Pred, len(h.Atom.Args))
		}
	}
	fired := map[string]bool{}
	gen := freshGen()
	rng := opts.Seed
	steps := 0
	for {
		fs, err := p.applicable(s, fired)
		if err != nil {
			return nil, err
		}
		if len(fs) == 0 {
			return &Result{rels: s.rels, Steps: steps}, nil
		}
		if steps >= maxSteps {
			return nil, fmt.Errorf("inflate: no fixpoint within %d steps (program may oscillate)", maxSteps)
		}
		rng = splitmix(rng)
		f := fs[rng%uint64(len(fs))]
		adds, dels, ok := f.deltas(gen)
		if !ok {
			// Inconsistent heads are filtered in applicable(); firing
			// with invented values cannot be inconsistent differently.
			continue
		}
		for ri, r := range p.Rules {
			if r == f.rule && len(r.invents) > 0 {
				fired[f.key(ri)] = true
			}
		}
		s.apply(adds, dels)
		steps++
	}
}

// Deterministic computes the deterministic inflationary fixpoint (all
// applicable instantiations fire simultaneously each round, negation
// evaluated against the round-start state). Only defined for DL.
func (p *Program) Deterministic(db *core.Database, opts Options) (*Result, error) {
	if p.Mode != DL {
		return nil, fmt.Errorf("inflate: deterministic semantics is only defined for DL (no deletions)")
	}
	maxSteps := opts.MaxSteps
	if maxSteps == 0 {
		maxSteps = 1 << 20
	}
	s := newState(db)
	for _, r := range p.Rules {
		for _, h := range r.Head {
			s.rel(h.Atom.Pred, len(h.Atom.Args))
		}
	}
	fired := map[string]bool{}
	gen := freshGen()
	rounds := 0
	for {
		fs, err := p.applicable(s, fired)
		if err != nil {
			return nil, err
		}
		if len(fs) == 0 {
			return &Result{rels: s.rels, Steps: rounds}, nil
		}
		if rounds >= maxSteps {
			return nil, fmt.Errorf("inflate: no fixpoint within %d rounds", maxSteps)
		}
		var adds []groundAtom
		for _, f := range fs {
			a, _, ok := f.deltas(gen)
			if !ok {
				continue
			}
			adds = append(adds, a...)
			for ri, r := range p.Rules {
				if r == f.rule && len(r.invents) > 0 {
					fired[f.key(ri)] = true
				}
			}
		}
		s.apply(adds, nil)
		rounds++
	}
}

// EnumerateOptions bounds EnumerateOutcomes.
type EnumerateOptions struct {
	// MaxStates caps visited states (0 = 100000).
	MaxStates int
	// MaxSteps bounds the depth of any single path (0 = 10000).
	MaxSteps int
}

// EnumerateOutcomes explores every reachable terminal state of the
// non-deterministic inflationary computation and returns the distinct
// answers over the output predicates. Programs with invented values are
// rejected (their outcome space is infinite up to renaming).
func (p *Program) EnumerateOutcomes(db *core.Database, preds []string, opts EnumerateOptions) ([]*core.Answer, error) {
	for _, r := range p.Rules {
		if len(r.invents) > 0 {
			return nil, fmt.Errorf("inflate: cannot enumerate outcomes of a program with invented values")
		}
	}
	maxStates := opts.MaxStates
	if maxStates == 0 {
		maxStates = 100000
	}
	maxSteps := opts.MaxSteps
	if maxSteps == 0 {
		maxSteps = 10000
	}
	visited := map[string]bool{}
	answers := map[string]*core.Answer{}
	var walk func(s *state, depth int) error
	walk = func(s *state, depth int) error {
		fp := s.fingerprint()
		if visited[fp] {
			return nil
		}
		if len(visited) >= maxStates {
			return fmt.Errorf("inflate: state budget %d exceeded", maxStates)
		}
		visited[fp] = true
		if depth > maxSteps {
			return fmt.Errorf("inflate: path depth %d exceeded", maxSteps)
		}
		fs, err := p.applicable(s, nil)
		if err != nil {
			return err
		}
		if len(fs) == 0 {
			ans := &core.Answer{Relations: map[string]*relation.Relation{}}
			for _, q := range preds {
				r := s.rels[q]
				if r == nil {
					r = relation.New(q, 0)
				}
				ans.Relations[q] = r
			}
			answers[ans.Fingerprint()] = ans
			return nil
		}
		for _, f := range fs {
			adds, dels, ok := f.deltas(nil)
			if !ok {
				continue
			}
			next := s.clone()
			next.apply(adds, dels)
			if err := walk(next, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(newState(db), 0); err != nil {
		return nil, err
	}
	keys := make([]string, 0, len(answers))
	for k := range answers {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*core.Answer, len(keys))
	for i, k := range keys {
		out[i] = answers[k]
	}
	return out, nil
}

func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
