package segment

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"

	"idlog/internal/symbol"
	"idlog/internal/value"
)

// Writer streams one relation into a segment file. Tuples are encoded
// into fixed-tuple-count blocks that are written (and CRC-sealed) as
// they fill, so the writer's memory is one undecoded block plus the
// per-tuple metadata that ends up in the footer (8-byte hash and a
// hash→position slot per tuple) — never the relation itself. Add
// deduplicates exactly: a seen hash triggers a read-back of the stored
// tuple and a full Tuple.Equal check, so genuine 64-bit collisions
// store both tuples rather than silently dropping one.
type Writer struct {
	f           *os.File
	name        string
	arity       int
	blockTuples int

	buf []byte        // current block, encoded
	cur []value.Tuple // current block, decoded (serves read-back)

	blocks []blockMeta
	hashes []uint64
	seen   map[uint64]int32   // tuple hash → first position
	more   map[uint64][]int32 // further positions on true hash collisions

	dictIdx map[symbol.ID]uint32 // symbol → dictionary ordinal
	dictIDs []symbol.ID          // dictionary ordinal → symbol

	off      int64 // write offset of the next block
	finished bool
}

// Create opens path for writing and emits the segment header. The
// caller must call Finish (or Abort) exactly once.
func Create(path, name string, arity int) (*Writer, error) {
	if arity < 0 || arity > maxArity {
		return nil, fmt.Errorf("segment %s: arity %d out of range", name, arity)
	}
	if len(name) > maxNameLen {
		return nil, fmt.Errorf("segment: relation name of %d bytes too long", len(name))
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	w := &Writer{
		f:           f,
		name:        name,
		arity:       arity,
		blockTuples: defaultBlockTuples,
		seen:        make(map[uint64]int32),
		dictIdx:     make(map[symbol.ID]uint32),
	}
	var head []byte
	head = binary.AppendUvarint(head, uint64(len(name)))
	head = append(head, name...)
	head = binary.AppendUvarint(head, uint64(arity))
	head = binary.AppendUvarint(head, uint64(w.blockTuples))
	crc := crc32.ChecksumIEEE(head)
	head = binary.BigEndian.AppendUint32(head, crc)
	if _, err := f.WriteString(magicHead); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	if _, err := f.Write(head); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	w.off = int64(len(magicHead) + len(head))
	return w, nil
}

// Len reports the number of distinct tuples added so far.
func (w *Writer) Len() int { return len(w.hashes) }

// Arity reports the writer's column count.
func (w *Writer) Arity() int { return w.arity }

// Add appends t if it is not already in the segment, reporting whether
// it was added.
func (w *Writer) Add(t value.Tuple) (bool, error) {
	if w.finished {
		return false, fmt.Errorf("segment %s: add after Finish", w.name)
	}
	if len(t) != w.arity {
		return false, fmt.Errorf("segment %s: adding arity-%d tuple to arity-%d segment", w.name, len(t), w.arity)
	}
	if len(w.hashes) >= maxTuples {
		return false, fmt.Errorf("segment %s: more than %d tuples", w.name, maxTuples)
	}
	h := t.Hash()
	if pos, ok := w.seen[h]; ok {
		prev, err := w.tupleAt(int(pos))
		if err != nil {
			return false, err
		}
		if prev.Equal(t) {
			return false, nil
		}
		// A true 64-bit collision: check the (vanishingly rare) chain,
		// then store the new tuple alongside.
		for _, p := range w.more[h] {
			prev, err := w.tupleAt(int(p))
			if err != nil {
				return false, err
			}
			if prev.Equal(t) {
				return false, nil
			}
		}
		if w.more == nil {
			w.more = make(map[uint64][]int32)
		}
		w.more[h] = append(w.more[h], int32(len(w.hashes)))
	} else {
		w.seen[h] = int32(len(w.hashes))
	}
	for _, v := range t {
		if v.IsInt() {
			w.buf = append(w.buf, tagInt)
			w.buf = binary.AppendVarint(w.buf, v.Num)
		} else {
			idx, ok := w.dictIdx[v.Sym]
			if !ok {
				idx = uint32(len(w.dictIDs))
				w.dictIdx[v.Sym] = idx
				w.dictIDs = append(w.dictIDs, v.Sym)
			}
			w.buf = append(w.buf, tagSym)
			w.buf = binary.AppendUvarint(w.buf, uint64(idx))
		}
	}
	w.cur = append(w.cur, t.Clone())
	w.hashes = append(w.hashes, h)
	if len(w.cur) >= w.blockTuples {
		if err := w.flushBlock(); err != nil {
			return false, err
		}
	}
	return true, nil
}

// AddUnique appends t without the duplicate check, for callers whose
// input is already a set (a Relation being checkpointed). It skips the
// hash→position bookkeeping entirely, so it must not be mixed with Add
// on the same writer.
func (w *Writer) AddUnique(t value.Tuple) error {
	if w.finished {
		return fmt.Errorf("segment %s: add after Finish", w.name)
	}
	if len(t) != w.arity {
		return fmt.Errorf("segment %s: adding arity-%d tuple to arity-%d segment", w.name, len(t), w.arity)
	}
	if len(w.hashes) >= maxTuples {
		return fmt.Errorf("segment %s: more than %d tuples", w.name, maxTuples)
	}
	for _, v := range t {
		if v.IsInt() {
			w.buf = append(w.buf, tagInt)
			w.buf = binary.AppendVarint(w.buf, v.Num)
		} else {
			idx, ok := w.dictIdx[v.Sym]
			if !ok {
				idx = uint32(len(w.dictIDs))
				w.dictIdx[v.Sym] = idx
				w.dictIDs = append(w.dictIDs, v.Sym)
			}
			w.buf = append(w.buf, tagSym)
			w.buf = binary.AppendUvarint(w.buf, uint64(idx))
		}
	}
	w.cur = append(w.cur, t)
	w.hashes = append(w.hashes, t.Hash())
	if len(w.cur) >= w.blockTuples {
		return w.flushBlock()
	}
	return nil
}

// tupleAt fetches the tuple at position pos for duplicate checking:
// from the in-flight block when recent, otherwise read back from the
// file.
func (w *Writer) tupleAt(pos int) (value.Tuple, error) {
	first := len(w.hashes) - len(w.cur)
	if pos >= first {
		return w.cur[pos-first], nil
	}
	b := pos / w.blockTuples
	m := w.blocks[b]
	raw := make([]byte, m.length-4) // payload without the CRC we just wrote
	if _, err := w.f.ReadAt(raw, m.off); err != nil {
		return nil, err
	}
	tuples, err := decodeBlock(raw, w.arity, m.count, w.dictIDs)
	if err != nil {
		return nil, err
	}
	return tuples[pos-b*w.blockTuples], nil
}

// flushBlock seals the current block with its CRC and writes it out.
func (w *Writer) flushBlock() error {
	if len(w.cur) == 0 {
		return nil
	}
	crc := crc32.ChecksumIEEE(w.buf)
	w.buf = binary.BigEndian.AppendUint32(w.buf, crc)
	if _, err := w.f.WriteAt(w.buf, w.off); err != nil {
		return err
	}
	w.blocks = append(w.blocks, blockMeta{off: w.off, length: len(w.buf), count: len(w.cur)})
	w.off += int64(len(w.buf))
	w.buf = w.buf[:0]
	w.cur = w.cur[:0]
	return nil
}

// Finish flushes the last block, writes the footer (tuple count, symbol
// dictionary with write-time IDs, block index, per-tuple hash array)
// and trailer, syncs, and closes the file.
func (w *Writer) Finish() error {
	if w.finished {
		return fmt.Errorf("segment %s: Finish twice", w.name)
	}
	w.finished = true
	if err := w.flushBlock(); err != nil {
		w.f.Close()
		return err
	}
	footOff := w.off
	if _, err := w.f.Seek(footOff, 0); err != nil {
		w.f.Close()
		return err
	}
	bw := bufio.NewWriter(w.f)
	cw := &crcTee{w: bw}
	var scratch [binary.MaxVarintLen64]byte
	putUvarint := func(n uint64) {
		k := binary.PutUvarint(scratch[:], n)
		cw.Write(scratch[:k])
	}
	putUvarint(uint64(len(w.hashes)))
	putUvarint(uint64(len(w.dictIDs)))
	for _, id := range w.dictIDs {
		name := symbol.Name(id)
		putUvarint(uint64(id))
		putUvarint(uint64(len(name)))
		cw.Write([]byte(name))
	}
	putUvarint(uint64(len(w.blocks)))
	for _, m := range w.blocks {
		putUvarint(uint64(m.off))
		putUvarint(uint64(m.length))
		putUvarint(uint64(m.count))
	}
	var h8 [8]byte
	for _, h := range w.hashes {
		binary.LittleEndian.PutUint64(h8[:], h)
		cw.Write(h8[:])
	}
	binary.BigEndian.PutUint32(scratch[:4], cw.crc)
	bw.Write(scratch[:4])
	// Trailer: footer offset + tail magic, the fixed-size anchor Open
	// reads first.
	binary.LittleEndian.PutUint64(h8[:], uint64(footOff))
	bw.Write(h8[:])
	bw.WriteString(magicTail)
	if err := bw.Flush(); err != nil {
		w.f.Close()
		return err
	}
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// Abort discards the partially written file.
func (w *Writer) Abort() {
	if !w.finished {
		w.finished = true
		name := w.f.Name()
		w.f.Close()
		os.Remove(name)
	}
}

// crcTee accumulates a CRC-32 over everything written through it.
type crcTee struct {
	w   *bufio.Writer
	crc uint32
}

func (c *crcTee) Write(p []byte) (int, error) {
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p)
	return c.w.Write(p)
}
