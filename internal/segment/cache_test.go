package segment

import (
	"testing"

	"idlog/internal/value"
)

func cput(c *Cache, seg uint64, block int, bytes int64) {
	c.put(ckey{seg: seg, block: block}, []value.Tuple{}, bytes)
}

// An oversized block (larger than the entire budget) must be declined,
// not admitted-and-pinned: the old eviction loop kept the newest block
// unconditionally, so one oversized put evicted every resident block and
// left used > max indefinitely.
func TestCacheDeclinesOversizedBlock(t *testing.T) {
	c := NewCache(100)
	cput(c, 1, 0, 40)
	cput(c, 1, 1, 40)
	if got := c.Bytes(); got != 80 {
		t.Fatalf("Bytes()=%d after two fitting puts, want 80", got)
	}
	cput(c, 2, 0, 500) // oversized: must be declined
	if got := c.Bytes(); got > 100 {
		t.Fatalf("Bytes()=%d > max after oversized put", got)
	}
	if got := c.Blocks(); got != 2 {
		t.Fatalf("Blocks()=%d after oversized put, want 2 (resident blocks untouched)", got)
	}
	if _, ok := c.get(ckey{seg: 2, block: 0}); ok {
		t.Fatal("oversized block was admitted")
	}
	if _, ok := c.get(ckey{seg: 1, block: 1}); !ok {
		t.Fatal("fitting block evicted by a declined oversized put")
	}
	// A non-positive budget still caches the single newest block (scan
	// streaming), oversized or not.
	s := NewCache(0)
	cput(s, 1, 0, 500)
	if got := s.Blocks(); got != 1 {
		t.Fatalf("zero-budget cache holds %d blocks, want 1", got)
	}
	cput(s, 1, 1, 700)
	if got := s.Blocks(); got != 1 {
		t.Fatalf("zero-budget cache holds %d blocks after second put, want 1", got)
	}
	if _, ok := s.get(ckey{seg: 1, block: 1}); !ok {
		t.Fatal("zero-budget cache dropped the newest block")
	}
}

func TestCacheResize(t *testing.T) {
	c := NewCache(1000)
	for i := 0; i < 10; i++ {
		cput(c, 1, i, 100)
	}
	if got := c.Bytes(); got != 1000 {
		t.Fatalf("Bytes()=%d, want 1000", got)
	}
	c.Resize(250)
	if got := c.Bytes(); got > 250 {
		t.Fatalf("Bytes()=%d > 250 after shrink", got)
	}
	// The survivors are the most recently used blocks.
	for i := 8; i < 10; i++ {
		if _, ok := c.get(ckey{seg: 1, block: i}); !ok {
			t.Fatalf("block %d evicted by Resize, want MRU survivors kept", i)
		}
	}
	c.Resize(10_000)
	for i := 0; i < 20; i++ {
		cput(c, 2, i, 100)
	}
	if got := c.Bytes(); got != 2200 {
		t.Fatalf("Bytes()=%d after growth, want 2200", got)
	}
}
