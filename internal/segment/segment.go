// Package segment implements disk-backed relation storage: immutable,
// CRC-checksummed, block-indexed segment files that serve tuples to the
// engine through the relation.TupleSource plug point, behind a shared
// byte-budgeted LRU block cache. A frozen relation opened over a
// segment reads blocks on demand, so EDBs larger than RAM evaluate
// within a bounded resident set.
//
// File format (all integers uvarint unless noted):
//
//	magic "IDLOGSG1"
//	header: nameLen, name, arity, tuplesPerBlock; crc32 (IEEE, 4B BE)
//	data blocks, each: per tuple, per column:
//	    tag 'i': zigzag varint (int64)
//	    tag 'u': dictionary ordinal
//	  crc32 over the block payload (4B BE)
//	footer:
//	  tupleCount
//	  dictCount; per entry: write-time symbol ID, nameLen, name
//	  blockCount; per block: offset, length (incl. crc), tupleCount
//	  per tuple: 8-byte LE tuple hash
//	  crc32 over the footer (4B BE)
//	trailer: footer offset (8B LE), magic "IDLOGSGE"
//
// Symbols appear once, in the footer dictionary — the intern cache:
// Open interns each name exactly once and block decoding maps
// dictionary ordinals to interned IDs by array index, so no tuple
// decode ever touches the symbol table. The footer's hash array makes
// index construction and fingerprints metadata-only — unless interning
// diverged from write time (tuple hashes mix symbol IDs, which are
// process-assigned), in which case Open detects the mismatch via the
// stored write-time IDs and recomputes the hashes in one streaming
// pass.
package segment

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"idlog/internal/symbol"
	"idlog/internal/value"
)

const (
	magicHead = "IDLOGSG1"
	magicTail = "IDLOGSGE"

	tagInt = 'i'
	tagSym = 'u'

	// defaultBlockTuples balances decode granularity against index
	// size: ~2k tuples decode in microseconds and keep the per-block
	// footer entry negligible.
	defaultBlockTuples = 2048

	// Corruption clamps, mirroring internal/storage: reject implausible
	// header fields before allocating for them.
	maxNameLen = 1 << 20
	maxArity   = 1 << 16
	// maxTuples keeps positions (plus the table's pos+1 encoding)
	// inside int32.
	maxTuples = 1<<31 - 2

	trailerLen = 16 // 8-byte footer offset + tail magic
)

// ErrCorruptSegment reports a segment file that is corrupted,
// truncated, or not a segment at all; every decode failure wraps it.
var ErrCorruptSegment = errors.New("corrupt or truncated segment")

func corruptf(format string, args ...any) error {
	return fmt.Errorf("segment: %s: %w", fmt.Sprintf(format, args...), ErrCorruptSegment)
}

// blockMeta locates one sealed block inside the file.
type blockMeta struct {
	off    int64
	length int // encoded bytes including the trailing crc32
	count  int
}

// Segment is an open segment file: an immutable relation.TupleSource.
// All read paths are safe for concurrent use. Read errors after a
// successful Open (I/O failure, bit rot detected by a block CRC) panic
// with a descriptive error, since TupleSource accessors have no error
// channel; the evaluator's guard recovers panics into typed evaluation
// errors.
type Segment struct {
	f           *os.File
	path        string
	name        string
	arity       int
	blockTuples int
	count       int
	blocks      []blockMeta
	hashes      []uint64
	interned    []symbol.ID // dictionary ordinal → interned symbol
	cache       *Cache
	id          uint64
}

// Open maps the segment at path, verifying magics, header and footer
// CRCs, and structural bounds. Blocks are verified lazily on first
// read (or eagerly when hashes must be recomputed). A nil cache uses
// the process-wide default.
func Open(path string, cache *Cache) (*Segment, error) {
	if cache == nil {
		cache = defaultCache
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	s, err := open(f, path, cache)
	if err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

func open(f *os.File, path string, cache *Cache) (*Segment, error) {
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := st.Size()
	if size < int64(len(magicHead))+4+trailerLen {
		return nil, corruptf("%s: %d bytes is too small for a segment", path, size)
	}
	var trailer [trailerLen]byte
	if _, err := f.ReadAt(trailer[:], size-trailerLen); err != nil {
		return nil, corruptf("%s: reading trailer: %v", path, err)
	}
	if string(trailer[8:]) != magicTail {
		return nil, corruptf("%s: bad tail magic %q", path, trailer[8:])
	}
	footOff := int64(binary.LittleEndian.Uint64(trailer[:8]))
	if footOff < int64(len(magicHead)) || footOff > size-trailerLen-4 {
		return nil, corruptf("%s: footer offset %d out of range", path, footOff)
	}

	// Header.
	hr := &crcByteReader{r: io.NewSectionReader(f, 0, footOff)}
	var head [len(magicHead)]byte
	if _, err := io.ReadFull(hr, head[:]); err != nil {
		return nil, corruptf("%s: reading magic: %v", path, err)
	}
	if string(head[:]) != magicHead {
		return nil, corruptf("%s: bad magic %q (not an IDLOG segment)", path, head)
	}
	hr.crc = 0 // the header CRC covers the fields, not the magic
	name, err := readLenString(hr, maxNameLen)
	if err != nil {
		return nil, corruptf("%s: relation name: %v", path, err)
	}
	arity, err := readBoundedUvarint(hr, maxArity)
	if err != nil {
		return nil, corruptf("%s: arity: %v", path, err)
	}
	blockTuples, err := readBoundedUvarint(hr, maxTuples)
	if err != nil {
		return nil, corruptf("%s: tuples per block: %v", path, err)
	}
	if blockTuples == 0 {
		return nil, corruptf("%s: zero tuples per block", path)
	}
	wantCRC := hr.crc
	var crcBuf [4]byte
	if _, err := io.ReadFull(hr.r, crcBuf[:]); err != nil {
		return nil, corruptf("%s: header checksum: %v", path, err)
	}
	if got := binary.BigEndian.Uint32(crcBuf[:]); got != wantCRC {
		return nil, corruptf("%s: header checksum mismatch (stored %08x, computed %08x)", path, got, wantCRC)
	}

	// Footer: read whole (its size is bounded by the actual file size),
	// verify CRC, then parse out of the byte slice.
	footLen := size - trailerLen - footOff
	foot := make([]byte, footLen)
	if _, err := f.ReadAt(foot, footOff); err != nil {
		return nil, corruptf("%s: reading footer: %v", path, err)
	}
	body := foot[:footLen-4]
	if got, want := binary.BigEndian.Uint32(foot[footLen-4:]), crc32.ChecksumIEEE(body); got != want {
		return nil, corruptf("%s: footer checksum mismatch (stored %08x, computed %08x)", path, got, want)
	}
	fp := &sliceParser{data: body}
	count := fp.uvarint("tuple count", maxTuples)
	nDict := fp.uvarint("dictionary size", maxTuples)
	interned := make([]symbol.ID, 0, min(int(nDict), 1<<16))
	idsMatch := true
	for i := uint64(0); i < nDict && fp.err == nil; i++ {
		writeID := fp.uvarint("dictionary symbol id", 1<<32-1)
		symName := fp.lenString("dictionary name", maxNameLen)
		id := symbol.Intern(symName)
		if uint64(id) != writeID {
			idsMatch = false
		}
		interned = append(interned, id)
	}
	nBlocks := fp.uvarint("block count", maxTuples)
	blocks := make([]blockMeta, 0, min(int(nBlocks), 1<<20))
	var total uint64
	for i := uint64(0); i < nBlocks && fp.err == nil; i++ {
		off := fp.uvarint("block offset", uint64(footOff))
		blen := fp.uvarint("block length", uint64(footOff))
		bcount := fp.uvarint("block tuple count", blockTuples)
		if fp.err != nil {
			break
		}
		if blen < 4 || int64(off)+int64(blen) > footOff {
			fp.err = fmt.Errorf("block %d [%d,+%d) outside data area", i, off, blen)
			break
		}
		if bcount == 0 || (bcount != blockTuples && i != nBlocks-1) {
			fp.err = fmt.Errorf("block %d holds %d tuples, want %d", i, bcount, blockTuples)
			break
		}
		total += bcount
		blocks = append(blocks, blockMeta{off: int64(off), length: int(blen), count: int(bcount)})
	}
	if fp.err == nil && total != count {
		fp.err = fmt.Errorf("blocks hold %d tuples, footer says %d", total, count)
	}
	if fp.err == nil && uint64(len(fp.data)) != 8*count {
		fp.err = fmt.Errorf("hash array holds %d bytes, want %d", len(fp.data), 8*count)
	}
	if fp.err != nil {
		return nil, corruptf("%s: footer: %v", path, fp.err)
	}
	hashes := make([]uint64, count)
	for i := range hashes {
		hashes[i] = binary.LittleEndian.Uint64(fp.data[8*i:])
	}

	s := &Segment{
		f:           f,
		path:        path,
		name:        name,
		arity:       int(arity),
		blockTuples: int(blockTuples),
		count:       int(count),
		blocks:      blocks,
		hashes:      hashes,
		interned:    interned,
		cache:       cache,
		id:          segIDs.Add(1),
	}
	if !idsMatch {
		// This process interned some dictionary symbol under a
		// different ID than the writer's, so the stored hashes (which
		// mix symbol IDs) are stale for this process. One streaming
		// pass recomputes them — and verifies every block CRC up front.
		pos := 0
		for b := range s.blocks {
			tuples, err := s.readBlock(b)
			if err != nil {
				return nil, err
			}
			for _, t := range tuples {
				s.hashes[pos] = t.Hash()
				pos++
			}
		}
	}
	return s, nil
}

// Name returns the relation name recorded in the segment.
func (s *Segment) Name() string { return s.name }

// Arity returns the recorded arity.
func (s *Segment) Arity() int { return s.arity }

// Path returns the file path the segment was opened from.
func (s *Segment) Path() string { return s.path }

// Len implements relation.TupleSource.
func (s *Segment) Len() int { return s.count }

// HashAt implements relation.TupleSource from the footer's hash array.
func (s *Segment) HashAt(i int) uint64 { return s.hashes[i] }

// At implements relation.TupleSource, decoding (or fetching from the
// cache) the block containing position i.
func (s *Segment) At(i int) value.Tuple {
	b := i / s.blockTuples
	return s.block(b)[i-b*s.blockTuples]
}

// Scan implements relation.TupleSource, streaming [lo, hi)
// block-at-a-time through the cache.
func (s *Segment) Scan(lo, hi int, fn func(pos int, t value.Tuple) bool) bool {
	if hi < 0 || hi > s.count {
		hi = s.count
	}
	if lo < 0 {
		lo = 0
	}
	for pos := lo; pos < hi; {
		b := pos / s.blockTuples
		tuples := s.block(b)
		base := b * s.blockTuples
		end := base + len(tuples)
		if end > hi {
			end = hi
		}
		for ; pos < end; pos++ {
			if !fn(pos, tuples[pos-base]) {
				return false
			}
		}
	}
	return true
}

// block returns the decoded block b, consulting the shared cache.
func (s *Segment) block(b int) []value.Tuple {
	k := ckey{seg: s.id, block: b}
	if tuples, ok := s.cache.get(k); ok {
		return tuples
	}
	tuples, err := s.readBlock(b)
	if err != nil {
		// TupleSource has no error channel; the evaluator's guard
		// converts this panic into a typed evaluation error.
		panic(err)
	}
	s.cache.put(k, tuples, blockBytes(len(tuples), s.arity))
	return tuples
}

// readBlock reads and CRC-verifies block b from disk.
func (s *Segment) readBlock(b int) ([]value.Tuple, error) {
	m := s.blocks[b]
	raw := make([]byte, m.length)
	if _, err := s.f.ReadAt(raw, m.off); err != nil {
		return nil, fmt.Errorf("segment %s: block %d: %w", s.path, b, err)
	}
	body := raw[:m.length-4]
	if got, want := binary.BigEndian.Uint32(raw[m.length-4:]), crc32.ChecksumIEEE(body); got != want {
		return nil, corruptf("%s: block %d checksum mismatch (stored %08x, computed %08x)", s.path, b, got, want)
	}
	tuples, err := decodeBlock(body, s.arity, m.count, s.interned)
	if err != nil {
		return nil, corruptf("%s: block %d: %v", s.path, b, err)
	}
	return tuples, nil
}

// Close closes the file and evicts the segment's blocks from the cache.
func (s *Segment) Close() error {
	s.cache.drop(s.id)
	return s.f.Close()
}

// decodeBlock decodes count tuples of the given arity from data,
// resolving dictionary ordinals through syms. One value array backs the
// whole block.
func decodeBlock(data []byte, arity, count int, syms []symbol.ID) ([]value.Tuple, error) {
	tuples := make([]value.Tuple, count)
	vals := make([]value.Value, count*arity)
	pos := 0
	for i := range tuples {
		t := value.Tuple(vals[:arity:arity])
		vals = vals[arity:]
		for c := 0; c < arity; c++ {
			if pos >= len(data) {
				return nil, fmt.Errorf("tuple %d: truncated", i)
			}
			tag := data[pos]
			pos++
			switch tag {
			case tagInt:
				n, k := binary.Varint(data[pos:])
				if k <= 0 {
					return nil, fmt.Errorf("tuple %d: bad varint", i)
				}
				pos += k
				t[c] = value.Int(n)
			case tagSym:
				idx, k := binary.Uvarint(data[pos:])
				if k <= 0 {
					return nil, fmt.Errorf("tuple %d: bad dictionary ordinal", i)
				}
				pos += k
				if idx >= uint64(len(syms)) {
					return nil, fmt.Errorf("tuple %d: dictionary ordinal %d out of range", i, idx)
				}
				t[c] = value.Sym(syms[idx])
			default:
				return nil, fmt.Errorf("tuple %d: bad tag %q", i, tag)
			}
		}
		tuples[i] = t
	}
	if pos != len(data) {
		return nil, fmt.Errorf("%d trailing bytes after last tuple", len(data)-pos)
	}
	return tuples, nil
}

// crcByteReader reads from an io.Reader while accumulating a CRC-32 and
// satisfying io.ByteReader for varint decoding.
type crcByteReader struct {
	r   io.Reader
	crc uint32
}

func (c *crcByteReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p[:n])
	return n, err
}

func (c *crcByteReader) ReadByte() (byte, error) {
	var b [1]byte
	if _, err := io.ReadFull(c.r, b[:]); err != nil {
		return 0, err
	}
	c.crc = crc32.Update(c.crc, crc32.IEEETable, b[:])
	return b[0], nil
}

// readBoundedUvarint reads a uvarint and rejects values above bound.
func readBoundedUvarint(r io.ByteReader, bound uint64) (uint64, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, err
	}
	if n > bound {
		return 0, fmt.Errorf("implausible value %d (max %d)", n, bound)
	}
	return n, nil
}

// readLenString reads a uvarint-prefixed string with a length clamp.
func readLenString(r *crcByteReader, maxLen uint64) (string, error) {
	n, err := readBoundedUvarint(r, maxLen)
	if err != nil {
		return "", err
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// sliceParser cursors over a byte slice with sticky errors and bounds.
type sliceParser struct {
	data []byte
	err  error
}

func (p *sliceParser) uvarint(what string, bound uint64) uint64 {
	if p.err != nil {
		return 0
	}
	n, k := binary.Uvarint(p.data)
	if k <= 0 {
		p.err = fmt.Errorf("%s: bad varint", what)
		return 0
	}
	if n > bound {
		p.err = fmt.Errorf("%s: implausible value %d (max %d)", what, n, bound)
		return 0
	}
	p.data = p.data[k:]
	return n
}

func (p *sliceParser) lenString(what string, maxLen uint64) string {
	n := p.uvarint(what, maxLen)
	if p.err != nil {
		return ""
	}
	if uint64(len(p.data)) < n {
		p.err = fmt.Errorf("%s: truncated (%d of %d bytes)", what, len(p.data), n)
		return ""
	}
	s := string(p.data[:n])
	p.data = p.data[n:]
	return s
}
