package segment

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"idlog/internal/relation"
	"idlog/internal/value"
)

// testTuples builds n mixed-sort tuples (symbol, int) with some shared
// symbols so the dictionary has repeats to compress.
func testTuples(n int) []value.Tuple {
	out := make([]value.Tuple, n)
	for i := range out {
		out[i] = value.Tuple{value.Str(fmt.Sprintf("node%d", i%977)), value.Int(int64(i))}
	}
	return out
}

// writeSegment writes tuples into a fresh segment file and returns its
// path.
func writeSegment(t *testing.T, tuples []value.Tuple, arity int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "rel.seg")
	w, err := Create(path, "rel", arity)
	if err != nil {
		t.Fatal(err)
	}
	for _, tup := range tuples {
		if _, err := w.Add(tup); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRoundTrip(t *testing.T) {
	tuples := testTuples(3 * defaultBlockTuples / 2) // forces multiple blocks
	path := writeSegment(t, tuples, 2)
	s, err := Open(path, NewCache(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Name() != "rel" || s.Arity() != 2 {
		t.Fatalf("Name=%q Arity=%d, want rel/2", s.Name(), s.Arity())
	}
	if s.Len() != len(tuples) {
		t.Fatalf("Len=%d, want %d", s.Len(), len(tuples))
	}
	for i, want := range tuples {
		if got := s.At(i); !got.Equal(want) {
			t.Fatalf("At(%d)=%v, want %v", i, got, want)
		}
		if got := s.HashAt(i); got != want.Hash() {
			t.Fatalf("HashAt(%d)=%x, want %x", i, got, want.Hash())
		}
	}
	i := 0
	ok := s.Scan(0, -1, func(pos int, tup value.Tuple) bool {
		if pos != i || !tup.Equal(tuples[i]) {
			t.Fatalf("Scan pos %d got (%d, %v)", i, pos, tup)
		}
		i++
		return true
	})
	if !ok || i != len(tuples) {
		t.Fatalf("Scan visited %d tuples (ok=%v), want %d", i, ok, len(tuples))
	}
	// Partial scan with early stop.
	seen := 0
	if s.Scan(10, 20, func(pos int, tup value.Tuple) bool {
		seen++
		return seen < 5
	}) {
		t.Fatal("early-stopped Scan reported completion")
	}
	if seen != 5 {
		t.Fatalf("early-stopped Scan saw %d tuples, want 5", seen)
	}
}

func TestWriterDeduplicates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dup.seg")
	w, err := Create(path, "dup", 1)
	if err != nil {
		t.Fatal(err)
	}
	// Duplicates both inside the in-flight block and across a flushed
	// block boundary (read-back path).
	for i := 0; i < 2*defaultBlockTuples; i++ {
		added, err := w.Add(value.Ints(int64(i)))
		if err != nil || !added {
			t.Fatalf("Add(%d) = %v, %v", i, added, err)
		}
	}
	for _, n := range []int64{0, 5, int64(defaultBlockTuples), int64(2*defaultBlockTuples - 1)} {
		added, err := w.Add(value.Ints(n))
		if err != nil {
			t.Fatal(err)
		}
		if added {
			t.Fatalf("duplicate %d was added", n)
		}
	}
	if w.Len() != 2*defaultBlockTuples {
		t.Fatalf("Len=%d, want %d", w.Len(), 2*defaultBlockTuples)
	}
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	s, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Len() != 2*defaultBlockTuples {
		t.Fatalf("reopened Len=%d, want %d", s.Len(), 2*defaultBlockTuples)
	}
}

func TestStoredRelationMatchesMemory(t *testing.T) {
	tuples := testTuples(5000)
	mem := relation.New("rel", 2)
	for _, tup := range tuples {
		mem.MustInsert(tup)
	}
	path := writeSegment(t, tuples, 2)
	s, err := Open(path, NewCache(1<<18))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	disk := relation.NewStored("rel", 2, s)
	if disk.Len() != mem.Len() {
		t.Fatalf("disk Len=%d, mem Len=%d", disk.Len(), mem.Len())
	}
	if got, want := disk.Fingerprint(), mem.Fingerprint(); got != want {
		t.Fatalf("fingerprints differ: disk %s, mem %s", got, want)
	}
	if !disk.Equal(mem) || !mem.Equal(disk) {
		t.Fatal("disk and mem relations not set-equal")
	}
	for _, tup := range tuples[:100] {
		if !disk.Contains(tup) {
			t.Fatalf("disk missing %v", tup)
		}
	}
	if disk.Contains(value.Tuple{value.Str("absent"), value.Int(-1)}) {
		t.Fatal("disk contains a tuple never added")
	}
	// Probes through the shared secondary-index machinery.
	key := value.Tuple{value.Str("node7")}
	dp := disk.ProbeTuples([]int{0}, key)
	mp := mem.ProbeTuples([]int{0}, key)
	if len(dp) != len(mp) || len(dp) == 0 {
		t.Fatalf("probe sizes differ: disk %d, mem %d", len(dp), len(mp))
	}
	// Overlay inserts land on top of the disk base; fingerprints must
	// track the mem twin.
	extra := value.Tuple{value.Str("extra"), value.Int(1 << 40)}
	if _, err := disk.Insert(extra); err != nil {
		t.Fatal(err)
	}
	mem.MustInsert(extra)
	if got, want := disk.Fingerprint(), mem.Fingerprint(); got != want {
		t.Fatalf("fingerprints differ after overlay insert: disk %s, mem %s", got, want)
	}
	// Remove promotes the source and must still agree.
	victim := tuples[1234]
	if ok, err := disk.Remove(victim); err != nil || !ok {
		t.Fatalf("disk Remove = %v, %v", ok, err)
	}
	if ok, err := mem.Remove(victim); err != nil || !ok {
		t.Fatalf("mem Remove = %v, %v", ok, err)
	}
	if got, want := disk.Fingerprint(), mem.Fingerprint(); got != want {
		t.Fatalf("fingerprints differ after Remove: disk %s, mem %s", got, want)
	}
	if disk.SourceLen() != 0 {
		t.Fatalf("SourceLen=%d after Remove, want 0 (promoted)", disk.SourceLen())
	}
}

func TestOpenRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	for name, content := range map[string][]byte{
		"empty.seg": nil,
		"short.seg": []byte("IDLOGSG1"),
		"junk.seg":  []byte("this is definitely not a segment file, but it is long enough to parse"),
	} {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, content, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(path, nil); !errors.Is(err, ErrCorruptSegment) {
			t.Fatalf("%s: Open = %v, want ErrCorruptSegment", name, err)
		}
	}
}

func TestCorruptionDetected(t *testing.T) {
	tuples := testTuples(100)
	path := writeSegment(t, tuples, 2)
	orig, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Header field corruption: flip a byte inside the name length area.
	flip := func(off int) string {
		bad := append([]byte(nil), orig...)
		bad[off] ^= 0xff
		p := filepath.Join(t.TempDir(), "bad.seg")
		if err := os.WriteFile(p, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	if _, err := Open(flip(9), nil); !errors.Is(err, ErrCorruptSegment) {
		t.Fatalf("header corruption: Open = %v, want ErrCorruptSegment", err)
	}
	// Footer corruption (the trailer offset points at it; flip a byte
	// near the end of the footer body).
	if _, err := Open(flip(len(orig)-trailerLen-8), nil); !errors.Is(err, ErrCorruptSegment) {
		t.Fatalf("footer corruption: Open = %v, want ErrCorruptSegment", err)
	}
	// Data-block corruption is detected lazily, on first read of the
	// damaged block.
	blockOff := len(magicHead) + 20 // somewhere inside the first block
	s, err := Open(flip(blockOff), nil)
	if err != nil {
		t.Fatalf("Open with damaged block failed eagerly: %v", err)
	}
	defer s.Close()
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("reading a corrupted block did not panic")
			}
			err, ok := r.(error)
			if !ok || !errors.Is(err, ErrCorruptSegment) {
				t.Fatalf("panic %v, want ErrCorruptSegment", r)
			}
		}()
		s.At(0)
	}()
}

// TestHashRecompute rewrites the footer with wrong write-time symbol
// IDs, simulating a process whose intern order diverged from the
// writer's; Open must detect the mismatch and recompute correct hashes
// from tuple data.
func TestHashRecompute(t *testing.T) {
	tuples := testTuples(300)
	path := writeSegment(t, tuples, 2)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	footOff := binary.LittleEndian.Uint64(data[len(data)-trailerLen : len(data)-8])
	body := data[footOff : len(data)-trailerLen-4]

	// Re-encode the footer with every dictionary writeID shifted, which
	// is exactly what a different intern order looks like on disk.
	fp := &sliceParser{data: body}
	count := fp.uvarint("count", maxTuples)
	nDict := fp.uvarint("dict", maxTuples)
	var foot []byte
	foot = binary.AppendUvarint(foot, count)
	foot = binary.AppendUvarint(foot, nDict)
	for i := uint64(0); i < nDict; i++ {
		writeID := fp.uvarint("id", 1<<32-1)
		name := fp.lenString("name", maxNameLen)
		foot = binary.AppendUvarint(foot, writeID+1000)
		foot = binary.AppendUvarint(foot, uint64(len(name)))
		foot = append(foot, name...)
	}
	if fp.err != nil {
		t.Fatal(fp.err)
	}
	foot = append(foot, fp.data...) // block index + hashes, unchanged
	foot = binary.BigEndian.AppendUint32(foot, crc32.ChecksumIEEE(foot))
	out := append(append([]byte(nil), data[:footOff]...), foot...)
	out = binary.LittleEndian.AppendUint64(out, footOff)
	out = append(out, magicTail...)
	if err := os.WriteFile(path, out, 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i, want := range tuples {
		if got := s.HashAt(i); got != want.Hash() {
			t.Fatalf("HashAt(%d)=%x after recompute, want %x", i, got, want.Hash())
		}
	}
}

func TestCacheEvictionAndCounters(t *testing.T) {
	tuples := testTuples(4 * defaultBlockTuples)
	path := writeSegment(t, tuples, 2)
	small := NewCache(blockBytes(defaultBlockTuples, 2)) // room for ~1 block
	s, err := Open(path, small)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Scan(0, -1, func(int, value.Tuple) bool { return true })
	hits, misses := small.Stats()
	if misses != 4 {
		t.Fatalf("full scan: %d misses, want 4 (one per block)", misses)
	}
	if hits != 0 {
		t.Fatalf("full scan: %d hits, want 0", hits)
	}
	if small.Blocks() > 2 {
		t.Fatalf("%d blocks resident in a one-block cache", small.Blocks())
	}
	// A second scan through a big cache hits after the first pass.
	big := NewCache(1 << 30)
	s2, err := Open(path, big)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	s2.Scan(0, -1, func(int, value.Tuple) bool { return true })
	s2.Scan(0, -1, func(int, value.Tuple) bool { return true })
	hits, misses = big.Stats()
	if misses != 4 || hits != 4 {
		t.Fatalf("two scans: hits=%d misses=%d, want 4/4", hits, misses)
	}
	s2.Close()
	if big.Blocks() != 0 || big.Bytes() != 0 {
		t.Fatalf("cache holds %d blocks / %d bytes after Close, want 0/0", big.Blocks(), big.Bytes())
	}
}

func TestConcurrentReaders(t *testing.T) {
	tuples := testTuples(3 * defaultBlockTuples)
	path := writeSegment(t, tuples, 2)
	s, err := Open(path, NewCache(blockBytes(defaultBlockTuples, 2)))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rel := relation.NewStored("rel", 2, s).Freeze()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := g; i < len(tuples); i += 131 {
				if !rel.Contains(tuples[i]) {
					t.Errorf("goroutine %d: missing %v", g, tuples[i])
					return
				}
				key := value.Tuple{tuples[i][0]}
				if len(rel.Probe([]int{0}, key)) == 0 {
					t.Errorf("goroutine %d: empty probe for %v", g, key)
					return
				}
			}
			n := 0
			rel.Scan(0, -1, func(int, value.Tuple) bool { n++; return true })
			if n != len(tuples) {
				t.Errorf("goroutine %d: scan saw %d tuples, want %d", g, n, len(tuples))
			}
		}(g)
	}
	wg.Wait()
}
