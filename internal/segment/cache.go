package segment

import (
	"container/list"
	"sync"
	"sync/atomic"

	"idlog/internal/value"
)

// Cache is a byte-budgeted LRU over decoded segment blocks, shared by
// every segment of a database directory so the budget caps total decoded
// tuple memory, not per-file memory. It is safe for concurrent use;
// parallel evaluation probes frozen disk-backed relations from many
// goroutines at once. Concurrent misses on the same block may decode it
// twice (one copy wins the slot) — wasted work, never wrong results.
type Cache struct {
	mu    sync.Mutex
	max   int64
	used  int64
	ll    *list.List // MRU at front; values are *centry
	items map[ckey]*list.Element

	hits   atomic.Uint64
	misses atomic.Uint64
}

// ckey names one decoded block: the owning segment's process-unique id
// plus the block ordinal.
type ckey struct {
	seg   uint64
	block int
}

type centry struct {
	key    ckey
	tuples []value.Tuple
	bytes  int64
}

// NewCache returns a cache that holds at most maxBytes of decoded
// blocks (estimated; see blockBytes). A non-positive budget still
// caches the single most recent block, so scans degrade to streaming
// rather than re-decoding the same block per tuple.
func NewCache(maxBytes int64) *Cache {
	return &Cache{max: maxBytes, ll: list.New(), items: make(map[ckey]*list.Element)}
}

// get returns the decoded block for k, updating recency and the
// hit/miss counters.
func (c *Cache) get(k ckey) ([]value.Tuple, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		c.ll.MoveToFront(el)
		c.hits.Add(1)
		return el.Value.(*centry).tuples, true
	}
	c.misses.Add(1)
	return nil, false
}

// put inserts a freshly decoded block, evicting least-recently-used
// blocks until the budget holds. A block larger than the entire budget
// is declined outright: admitting it would evict every resident block
// and still pin used > max until an unrelated later eviction — the
// caller already holds the decoded tuples and streams through them
// once. Under a non-positive budget the newest block always stays, so
// scans degrade to streaming rather than re-decoding per tuple.
func (c *Cache) put(k ckey, tuples []value.Tuple, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.max > 0 && bytes > c.max {
		return
	}
	if el, ok := c.items[k]; ok {
		// Lost a concurrent decode race; keep the published copy.
		c.ll.MoveToFront(el)
		return
	}
	el := c.ll.PushFront(&centry{key: k, tuples: tuples, bytes: bytes})
	c.items[k] = el
	c.used += bytes
	c.shrink()
}

// shrink evicts LRU blocks until the budget holds, always keeping the
// most recent block. Callers must hold c.mu.
func (c *Cache) shrink() {
	for c.used > c.max && c.ll.Len() > 1 {
		back := c.ll.Back()
		e := back.Value.(*centry)
		c.ll.Remove(back)
		delete(c.items, e.key)
		c.used -= e.bytes
	}
}

// Resize changes the byte budget in place, evicting LRU blocks if the
// new budget is smaller than current residency. Resizing the shared
// DefaultCache is how the root API honors -cache-mb-style sizing for
// databases opened without an explicit cache.
func (c *Cache) Resize(maxBytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.max = maxBytes
	c.shrink()
}

// drop evicts every block of segment seg; called when a segment closes
// so a closed file's decoded blocks don't squat in the budget.
func (c *Cache) drop(seg uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		if e := el.Value.(*centry); e.key.seg == seg {
			c.ll.Remove(el)
			delete(c.items, e.key)
			c.used -= e.bytes
		}
		el = next
	}
}

// Stats returns the cumulative hit and miss counts; exported to the
// idlogd /metrics endpoint as idlogd_storage_cache_{hits,misses}_total.
func (c *Cache) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// Bytes returns the current estimated decoded bytes resident.
func (c *Cache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.used
}

// Blocks returns the number of cached blocks.
func (c *Cache) Blocks() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// blockBytes estimates the resident size of a decoded block: slice
// headers plus 16 bytes per value (the size of value.Value).
func blockBytes(n, arity int) int64 {
	return int64(n) * int64(24+16*arity)
}

// defaultCache backs segments opened without an explicit cache.
var defaultCache = NewCache(64 << 20)

// DefaultCache returns the process-wide shared block cache (64 MiB).
func DefaultCache() *Cache { return defaultCache }

// segIDs hands out process-unique segment identities for cache keys.
var segIDs atomic.Uint64
