package wellfounded

import (
	"testing"

	"idlog/internal/analysis"
	"idlog/internal/core"
	"idlog/internal/ground"
	"idlog/internal/parser"
	"idlog/internal/stable"
	"idlog/internal/value"
)

func mustParse(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestStratifiedProgramIsTotalAndMatchesPerfectModel(t *testing.T) {
	src := `
		reach(X) :- start(X).
		reach(Y) :- reach(X), e(X, Y).
		dead(X) :- node(X), not reach(X).
	`
	p := mustParse(t, src)
	db := core.NewDatabase()
	_ = db.AddAll("e", value.Strs("a", "b"), value.Strs("c", "d"))
	_ = db.AddAll("node", value.Strs("a"), value.Strs("b"), value.Strs("c"), value.Strs("d"))
	_ = db.Add("start", value.Strs("a"))
	m, err := p.WellFounded(db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Total() {
		t.Fatalf("stratified program has undefined atoms: %v", m.Atoms(Undefined))
	}
	prog, err := parser.Program(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := analysis.Analyze(prog)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Eval(info, db, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, pred := range []string{"reach", "dead"} {
		if !m.Relation(pred, True).Equal(res.Relation(pred)) {
			t.Fatalf("WFS true set differs from perfect model on %s:\n%v\n%v",
				pred, m.Relation(pred, True), res.Relation(pred))
		}
	}
}

func TestWinMoveTwoCycleIsUndefined(t *testing.T) {
	p := mustParse(t, `win(X) :- move(X, Y), not win(Y).`)
	db := core.NewDatabase()
	_ = db.AddAll("move", value.Strs("a", "b"), value.Strs("b", "a"))
	m, err := p.WellFounded(db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Total() {
		t.Fatalf("2-cycle should leave win atoms undefined")
	}
	if got := len(m.Atoms(Undefined)); got != 2 {
		t.Fatalf("undefined atoms = %d, want 2", got)
	}
}

func TestWinMoveChainIsTotal(t *testing.T) {
	// a -> b -> c: win(b) true (c loses), win(a) false, win(c) false.
	p := mustParse(t, `win(X) :- move(X, Y), not win(Y).`)
	db := core.NewDatabase()
	_ = db.AddAll("move", value.Strs("a", "b"), value.Strs("b", "c"))
	m, err := p.WellFounded(db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Total() {
		t.Fatalf("chain game should be total: undefined = %v", m.Atoms(Undefined))
	}
	winB := ground.Atom{Pred: "win", Tuple: value.Strs("b")}
	winA := ground.Atom{Pred: "win", Tuple: value.Strs("a")}
	if m.Truth(winB) != True || m.Truth(winA) != False {
		t.Fatalf("win(b)=%v win(a)=%v", m.Truth(winB), m.Truth(winA))
	}
}

func TestWFSApproximatesStableModels(t *testing.T) {
	// WFS-true atoms are in every stable model; WFS-false atoms in none.
	srcs := []string{
		`win(X) :- move(X, Y), not win(Y).`,
		`p(X) :- d(X), not q(X).
		 q(X) :- d(X), not p(X).
		 r(X) :- d(X), not r(X), p(X).`,
	}
	db := core.NewDatabase()
	_ = db.AddAll("move", value.Strs("a", "b"), value.Strs("b", "a"), value.Strs("b", "c"))
	_ = db.AddAll("d", value.Strs("u"), value.Strs("v"))
	for _, src := range srcs {
		wp := mustParse(t, src)
		m, err := wp.WellFounded(db, Options{})
		if err != nil {
			t.Fatal(err)
		}
		sp, err := stable.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		models, err := sp.StableModels(db, stable.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, sm := range models {
			inModel := map[string]bool{}
			for _, a := range sm.Atoms {
				inModel[a.Key()] = true
			}
			for _, a := range m.Atoms(True) {
				if !inModel[a.Key()] {
					t.Fatalf("%q: WFS-true %v missing from stable model", src, a)
				}
			}
			for _, a := range m.Atoms(False) {
				if inModel[a.Key()] {
					t.Fatalf("%q: WFS-false %v present in stable model", src, a)
				}
			}
		}
	}
}

func TestManWomanAllUndefined(t *testing.T) {
	// The paper's motivating non-determinism: WFS refuses to choose,
	// leaving every sex undefined — the gap the ID-construct fills.
	p := mustParse(t, `
		man(X) :- person(X), not woman(X).
		woman(X) :- person(X), not man(X).
	`)
	db := core.NewDatabase()
	_ = db.AddAll("person", value.Strs("a"), value.Strs("b"))
	m, err := p.WellFounded(db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(m.Atoms(Undefined)); got != 4 {
		t.Fatalf("undefined = %d, want 4 (every sex atom)", got)
	}
	if len(m.Atoms(True)) != 0 {
		t.Fatalf("true atoms = %v, want none", m.Atoms(True))
	}
}

func TestRejectsIDAndChoice(t *testing.T) {
	if _, err := Parse(`p(X) :- q[](X, T).`); err == nil {
		t.Fatalf("ID-literal accepted")
	}
	if _, err := Parse(`p(X) :- q(X, Y), choice((X), (Y)).`); err == nil {
		t.Fatalf("choice accepted")
	}
}

func TestTruthStrings(t *testing.T) {
	if True.String() != "true" || False.String() != "false" || Undefined.String() != "undefined" {
		t.Fatalf("Truth strings wrong")
	}
}
