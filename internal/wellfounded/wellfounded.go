// Package wellfounded implements the well-founded semantics of Van
// Gelder, Ross & Schlipf [VGRS88] — cited by the paper as one of the
// declarative semantics proposals for logic programs with negation
// (§2.2) — via the classic alternating-fixpoint construction on the
// ground program.
//
// The well-founded model is three-valued: atoms are true, false, or
// undefined. It relates to the other semantics in this repository as
// follows (verified by tests):
//
//   - on stratified programs it is total and equals the perfect model
//     computed by the core engine;
//   - every well-founded-true atom belongs to every stable model and no
//     stable model contains a well-founded-false atom;
//   - genuinely non-deterministic programs (the win/move 2-cycle, the
//     man/woman program) leave the contested atoms undefined — which is
//     precisely why the paper needs a non-deterministic construct (the
//     ID-literal) rather than a finer deterministic semantics.
package wellfounded

import (
	"fmt"
	"sort"

	"idlog/internal/ast"
	"idlog/internal/core"
	"idlog/internal/ground"
	"idlog/internal/parser"
	"idlog/internal/relation"
)

// Program is a DATALOG¬ program under well-founded semantics.
type Program struct {
	rules []ground.Rule
	idb   map[string]bool
	arity map[string]int
}

// Parse builds a Program from ordinary clause syntax.
func Parse(src string) (*Program, error) {
	prog, err := parser.Program(src)
	if err != nil {
		return nil, err
	}
	p := &Program{idb: map[string]bool{}, arity: map[string]int{}}
	for _, c := range prog.Clauses {
		for _, l := range c.Body {
			if l.IsChoice() || l.Atom.IsID {
				return nil, fmt.Errorf("wellfounded: unsupported literal in %q", c)
			}
		}
		p.rules = append(p.rules, ground.Rule{Head: []*ast.Atom{c.Head}, Body: c.Body})
		p.idb[c.Head.Pred] = true
		p.arity[c.Head.Pred] = len(c.Head.Args)
	}
	return p, nil
}

// Truth is a three-valued truth value.
type Truth int

// Truth values.
const (
	False Truth = iota
	Undefined
	True
)

// String implements fmt.Stringer.
func (t Truth) String() string {
	switch t {
	case False:
		return "false"
	case Undefined:
		return "undefined"
	case True:
		return "true"
	default:
		return fmt.Sprintf("Truth(%d)", int(t))
	}
}

// Model is the well-founded (three-valued) model.
type Model struct {
	atoms map[string]ground.Atom
	truth map[string]Truth
	prog  *Program
}

// Truth returns the truth value of a ground atom key; atoms outside the
// candidate space are False.
func (m *Model) Truth(a ground.Atom) Truth {
	return m.truth[a.Key()]
}

// Total reports whether no atom is undefined.
func (m *Model) Total() bool {
	for _, t := range m.truth {
		if t == Undefined {
			return false
		}
	}
	return true
}

// Relation projects the atoms with the given truth value onto pred.
func (m *Model) Relation(pred string, tv Truth) *relation.Relation {
	out := relation.New(pred, m.prog.arity[pred])
	for k, t := range m.truth {
		if t != tv {
			continue
		}
		a := m.atoms[k]
		if a.Pred == pred {
			out.MustInsert(a.Tuple)
		}
	}
	return out
}

// Atoms returns the atoms with the given truth value, sorted by key.
func (m *Model) Atoms(tv Truth) []ground.Atom {
	var out []ground.Atom
	for k, t := range m.truth {
		if t == tv {
			out = append(out, m.atoms[k])
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}

// Options bounds the computation.
type Options struct {
	// Ground bounds the grounding phase.
	Ground ground.Options
}

// WellFounded computes the well-founded model over db by the
// alternating fixpoint: T0 = lfp of the reduct w.r.t. ∅ under- then
// over-estimates alternate and converge monotonically.
func (p *Program) WellFounded(db *core.Database, opts Options) (*Model, error) {
	g, err := ground.Ground(p.rules, db, p.idb, opts.Ground)
	if err != nil {
		return nil, err
	}
	atoms := map[string]ground.Atom{}
	for _, a := range g.Atoms {
		atoms[a.Key()] = a
	}

	// gamma(S) = least model of the GL-reduct of the program w.r.t. S.
	gamma := func(s map[string]bool) map[string]bool {
		var reduct []ground.Clause
		for _, c := range g.Clauses {
			blocked := false
			for _, n := range c.Neg {
				if s[n.Key()] {
					blocked = true
					break
				}
			}
			if !blocked {
				reduct = append(reduct, ground.Clause{Head: c.Head, Pos: c.Pos})
			}
		}
		return ground.LeastModel(reduct)
	}

	// Alternating fixpoint: underestimates I (true atoms) grow, over-
	// estimates J (possibly-true atoms) shrink, both converge.
	underestimate := map[string]bool{}
	for {
		over := gamma(underestimate) // possible atoms
		next := gamma(over)          // atoms certain given the possible set
		if setsEqual(next, underestimate) {
			m := &Model{atoms: atoms, truth: map[string]Truth{}, prog: p}
			for k := range atoms {
				switch {
				case next[k]:
					m.truth[k] = True
				case over[k]:
					m.truth[k] = Undefined
				default:
					m.truth[k] = False
				}
			}
			return m, nil
		}
		underestimate = next
	}
}

func setsEqual(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}
