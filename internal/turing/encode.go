package turing

import (
	"fmt"
	"sort"

	"idlog/internal/core"
	"idlog/internal/relation"
	"idlog/internal/value"
)

// Database-to-tape encoding in the style of the generic Turing machines
// of [HS89] (§3.1 of the paper): each uninterpreted constant of the
// u-domain is encoded as a fixed-width binary string of 0s and 1s, each
// tuple is bracketed with '[' and ']' with ',' separating fields, each
// relation is wrapped in '(' and ')' preceded by its name's index, and
// sort-i values are encoded in binary with a leading '#'. The encoding
// deliberately fixes an *order* (sorted), which a generic TM must not
// exploit; the machine-facing contract (operation independent of the
// constant encoding and the presentation order) is a property of the
// machines, checked in tests by permuting the domain.

// Distinguished tape symbols used by the encoding.
const (
	SymZero   = "0"
	SymOne    = "1"
	SymComma  = ","
	SymLParen = "("
	SymRParen = ")"
	SymLBrack = "["
	SymRBrack = "]"
	SymHash   = "#"
)

// DomainEncoder assigns binary codewords to u-constants.
type DomainEncoder struct {
	width int
	codes map[string]string
}

// NewDomainEncoder builds an encoder for the given constants (sorted
// internally; the width is ceil(log2(n)) with a 1-bit minimum).
func NewDomainEncoder(consts []string) *DomainEncoder {
	sorted := append([]string(nil), consts...)
	sort.Strings(sorted)
	width := 1
	for (1 << width) < len(sorted) {
		width++
	}
	e := &DomainEncoder{width: width, codes: map[string]string{}}
	for i, c := range sorted {
		e.codes[c] = binString(i, width)
	}
	return e
}

func binString(n, width int) string {
	buf := make([]byte, width)
	for i := width - 1; i >= 0; i-- {
		if n&1 == 1 {
			buf[i] = '1'
		} else {
			buf[i] = '0'
		}
		n >>= 1
	}
	return string(buf)
}

// Width returns the codeword width in bits.
func (e *DomainEncoder) Width() int { return e.width }

// Encode returns the codeword for a constant; unknown constants error.
func (e *DomainEncoder) Encode(c string) (string, error) {
	s, ok := e.codes[c]
	if !ok {
		return "", fmt.Errorf("turing: constant %q not in encoded domain", c)
	}
	return s, nil
}

// appendBits writes a codeword's bits as tape symbols.
func appendBits(tape []string, bits string) []string {
	for i := 0; i < len(bits); i++ {
		tape = append(tape, string(bits[i]))
	}
	return tape
}

// EncodeValue appends the tape encoding of one value.
func (e *DomainEncoder) EncodeValue(tape []string, v value.Value) ([]string, error) {
	if v.IsInt() {
		tape = append(tape, SymHash)
		if v.Num < 0 {
			return nil, fmt.Errorf("turing: cannot encode negative number %d", v.Num)
		}
		if v.Num == 0 {
			return append(tape, SymZero), nil
		}
		var bits []byte
		for n := v.Num; n > 0; n >>= 1 {
			bits = append([]byte{byte('0' + n&1)}, bits...)
		}
		return appendBits(tape, string(bits)), nil
	}
	code, err := e.Encode(v.String())
	if err != nil {
		return nil, err
	}
	return appendBits(tape, code), nil
}

// EncodeRelation appends "( [t11,t12] [t21,t22] ... )" for the relation
// in canonical tuple order.
func (e *DomainEncoder) EncodeRelation(tape []string, r *relation.Relation) ([]string, error) {
	tape = append(tape, SymLParen)
	for _, t := range r.Sorted() {
		tape = append(tape, SymLBrack)
		for i, v := range t {
			if i > 0 {
				tape = append(tape, SymComma)
			}
			var err error
			tape, err = e.EncodeValue(tape, v)
			if err != nil {
				return nil, err
			}
		}
		tape = append(tape, SymRBrack)
	}
	return append(tape, SymRParen), nil
}

// EncodeDatabase lays a whole database onto a tape: relations in sorted
// name order. It also returns the encoder so callers can decode.
func EncodeDatabase(db *core.Database) ([]string, *DomainEncoder, error) {
	domain := map[string]bool{}
	for _, name := range db.Names() {
		for _, t := range db.Relation(name).Tuples() {
			for _, v := range t {
				if !v.IsInt() {
					domain[v.String()] = true
				}
			}
		}
	}
	consts := make([]string, 0, len(domain))
	for c := range domain {
		consts = append(consts, c)
	}
	enc := NewDomainEncoder(consts)
	var tape []string
	var err error
	for _, name := range db.Names() {
		tape, err = enc.EncodeRelation(tape, db.Relation(name))
		if err != nil {
			return nil, nil, err
		}
	}
	return tape, enc, nil
}
