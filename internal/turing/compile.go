package turing

import (
	"fmt"

	"idlog/internal/analysis"
	"idlog/internal/ast"
	"idlog/internal/core"
	"idlog/internal/relation"
	"idlog/internal/value"
)

// Compiled is a machine translated to a stratified IDLOG program.
//
// The construction mirrors the guess-and-check structure behind
// Theorem 6: a lower stratum lays out every (step, rule) pair as the
// relation tm_branch; the ID-literal tm_branch[1](T, Id, 0) guesses one
// rule per step (the whole non-deterministic choice sequence at once,
// keeping the program stratified); and a deterministic positive-
// recursion stratum replays the machine under the guessed sequence.
// A guessed rule that is inapplicable at its step simply stalls the
// simulated path, so the machine accepts an input iff *some* perfect
// model derives tm_accept — existential acceptance over the answers of
// the non-deterministic query, exactly the NGTM acceptance notion.
type Compiled struct {
	// Program is the generated IDLOG program.
	Program *ast.Program
	// Info is the analyzed form, ready for core.Eval.
	Info *analysis.Info
	// AcceptPred is the 0-ary predicate derived iff the run accepts.
	AcceptPred string
	// StatePred holds (T, Q) pairs of the simulated path.
	StatePred string
	// MaxSteps and TapeSize are the simulation budgets baked into the
	// program.
	MaxSteps, TapeSize int
}

func lit(pred string, args ...ast.Term) *ast.Literal {
	return &ast.Literal{Atom: &ast.Atom{Pred: pred, Args: args}}
}

func neglit(pred string, args ...ast.Term) *ast.Literal {
	return &ast.Literal{Neg: true, Atom: &ast.Atom{Pred: pred, Args: args}}
}

func clause(head *ast.Atom, body ...*ast.Literal) *ast.Clause {
	return &ast.Clause{Head: head, Body: body}
}

func atom(pred string, args ...ast.Term) *ast.Atom {
	return &ast.Atom{Pred: pred, Args: args}
}

// Compile translates m into IDLOG with the given step and tape budgets.
// The input tape is supplied at evaluation time as the EDB relation
// tape(Pos, Sym); see TapeDB.
func Compile(m *Machine, maxSteps, tapeSize int) (*Compiled, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if maxSteps < 1 || tapeSize < 1 {
		return nil, fmt.Errorf("turing: budgets must be positive (maxSteps=%d tapeSize=%d)", maxSteps, tapeSize)
	}
	p := &ast.Program{}
	add := func(c *ast.Clause) { p.Clauses = append(p.Clauses, c) }

	T, T2, P, P2 := ast.V("T"), ast.V("T2"), ast.V("P"), ast.V("P2")
	Q, Qn, R, W, M, S, Id := ast.V("Q"), ast.V("Qn"), ast.V("R"), ast.V("W"), ast.V("M"), ast.V("S"), ast.V("Id")

	// Counters.
	add(clause(atom("tm_time", ast.N(0))))
	add(clause(atom("tm_time", T2),
		lit("tm_time", T), lit("lt", T, ast.N(int64(maxSteps))), lit("succ", T, T2)))
	add(clause(atom("tm_pos", ast.N(0))))
	if tapeSize > 1 {
		add(clause(atom("tm_pos", P2),
			lit("tm_pos", P), lit("lt", P, ast.N(int64(tapeSize-1))), lit("succ", P, P2)))
	}

	// Transition table as facts.
	for i, r := range m.Rules {
		add(clause(atom("tm_rule",
			ast.N(int64(i)), ast.S(r.State), ast.S(r.Read),
			ast.S(r.NewState), ast.S(r.Write), ast.N(int64(r.Move)))))
	}

	// The guessed choice sequence: one rule id per step, via the
	// ID-literal grouped on the step column.
	add(clause(atom("tm_branch", T, Id),
		lit("tm_time", T), lit("lt", T, ast.N(int64(maxSteps))),
		lit("tm_rule", Id, Q, R, Qn, W, M)))
	add(clause(atom("tm_pick", T, Id),
		&ast.Literal{Atom: &ast.Atom{Pred: "tm_branch", IsID: true, Group: []int{0},
			Args: []ast.Term{T, Id, ast.N(0)}}}))

	// Initial configuration.
	add(clause(atom("tm_state", ast.N(0), ast.S(m.Start))))
	add(clause(atom("tm_head", ast.N(0), ast.N(0))))
	add(clause(atom("tm_tapedom", P), lit("tape", P, S)))
	add(clause(atom("tm_cell", ast.N(0), P, S), lit("tape", P, S), lit("tm_pos", P)))
	add(clause(atom("tm_cell", ast.N(0), P, ast.S(m.Blank)),
		lit("tm_pos", P), neglit("tm_tapedom", P)))

	// One deterministic step under the guessed rule. tm_try matches the
	// guessed rule against the current configuration; tm_fire addition-
	// ally resolves the head movement, so a move that falls off the left
	// end (succ(P2, P) unsolvable at P=0) or exceeds the tape budget
	// (tm_pos(P2) fails) derives nothing: the transition is atomic and a
	// dead move kills the path without a spurious state change.
	add(clause(atom("tm_try", T, Qn, W, M, P),
		lit("tm_state", T, Q), lit("tm_head", T, P), lit("tm_cell", T, P, R),
		lit("tm_pick", T, Id), lit("tm_rule", Id, Q, R, Qn, W, M)))
	add(clause(atom("tm_fire", T, Qn, W, P, P2),
		lit("tm_try", T, Qn, W, ast.N(0), P), lit("succ", P2, P)))
	add(clause(atom("tm_fire", T, Qn, W, P, P),
		lit("tm_try", T, Qn, W, ast.N(1), P)))
	add(clause(atom("tm_fire", T, Qn, W, P, P2),
		lit("tm_try", T, Qn, W, ast.N(2), P), lit("succ", P, P2), lit("tm_pos", P2)))
	add(clause(atom("tm_state", T2, Qn),
		lit("tm_fire", T, Qn, W, P, P2), lit("succ", T, T2)))
	add(clause(atom("tm_head", T2, P2),
		lit("tm_fire", T, Qn, W, P, P2), lit("succ", T, T2)))
	// Tape update: the written cell plus the frame axiom.
	add(clause(atom("tm_cell", T2, P, W),
		lit("tm_fire", T, Qn, W, P, P2), lit("succ", T, T2)))
	add(clause(atom("tm_cell", T2, P, S),
		lit("tm_cell", T, P, S), lit("tm_fire", T, Qn, W, ast.V("HP"), P2),
		lit("neq", P, ast.V("HP")), lit("succ", T, T2)))

	// Acceptance.
	add(clause(atom("tm_accept"), lit("tm_state", T, ast.S(m.Accept))))
	add(clause(atom("tm_accept_time", T), lit("tm_state", T, ast.S(m.Accept))))

	info, err := analysis.Analyze(p)
	if err != nil {
		return nil, fmt.Errorf("turing: generated program failed analysis: %w", err)
	}
	return &Compiled{
		Program:    p,
		Info:       info,
		AcceptPred: "tm_accept",
		StatePred:  "tm_state",
		MaxSteps:   maxSteps,
		TapeSize:   tapeSize,
	}, nil
}

// TapeDB builds the EDB holding the input tape: tape(Pos, Sym).
func TapeDB(input []string) *core.Database {
	db := core.NewDatabase()
	for i, s := range input {
		_ = db.Add("tape", value.Tuple{value.Int(int64(i)), value.Str(s)})
	}
	if len(input) == 0 {
		db.SetRelation("tape", relation.New("tape", 2))
	}
	return db
}

// EvalPath runs the compiled program under one oracle (one guessed
// choice sequence) and reports whether that path accepts.
func (c *Compiled) EvalPath(db *core.Database, oracle relation.Oracle) (bool, *core.Result, error) {
	res, err := core.Eval(c.Info, db, core.Options{Oracle: oracle})
	if err != nil {
		return false, nil, err
	}
	return res.Relation(c.AcceptPred).Len() > 0, res, nil
}

// AcceptanceSummary is the outcome of enumerating every guessed choice
// sequence.
type AcceptanceSummary struct {
	// Answers is the number of distinct answers of the query
	// (tm_accept, tm_state).
	Answers int
	// Accepting is how many of those answers derive tm_accept.
	Accepting int
}

// Accepts reports whether some perfect model derives tm_accept,
// enumerating the guessed sequences (exponential; small budgets only).
func (c *Compiled) Accepts(db *core.Database, maxRuns int) (bool, AcceptanceSummary, error) {
	answers, err := core.Enumerate(c.Info, db, []string{c.AcceptPred, c.StatePred},
		core.EnumerateOptions{MaxRuns: maxRuns})
	if err != nil {
		return false, AcceptanceSummary{}, err
	}
	sum := AcceptanceSummary{Answers: len(answers)}
	for _, a := range answers {
		if a.Relations[c.AcceptPred].Len() > 0 {
			sum.Accepting++
		}
	}
	return sum.Accepting > 0, sum, nil
}
