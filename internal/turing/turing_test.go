package turing

import (
	"math/rand"
	"strings"
	"testing"

	"idlog/internal/relation"
	"idlog/internal/value"
)

const blank = "_"

// flipMachine is deterministic: it flips 0s and 1s left to right and
// accepts upon reaching the first blank.
func flipMachine() *Machine {
	return &Machine{
		Start: "s", Accept: "acc", Blank: blank,
		Rules: []Rule{
			{State: "s", Read: "0", NewState: "s", Write: "1", Move: Right},
			{State: "s", Read: "1", NewState: "s", Write: "0", Move: Right},
			{State: "s", Read: blank, NewState: "acc", Write: blank, Move: Stay},
		},
	}
}

// containsOneMachine is genuinely non-deterministic: in state g on a 1
// it may either keep scanning or accept.
func containsOneMachine() *Machine {
	return &Machine{
		Start: "g", Accept: "acc", Blank: blank,
		Rules: []Rule{
			{State: "g", Read: "0", NewState: "g", Write: "0", Move: Right},
			{State: "g", Read: "1", NewState: "g", Write: "1", Move: Right},
			{State: "g", Read: "1", NewState: "acc", Write: "1", Move: Stay},
		},
	}
}

func tape(s string) []string {
	out := make([]string, len(s))
	for i := range s {
		out[i] = string(s[i])
	}
	return out
}

func TestValidate(t *testing.T) {
	m := flipMachine()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Machine{Start: "s", Accept: "acc", Blank: blank,
		Rules: []Rule{{State: "acc", Read: "0", NewState: "s", Write: "0", Move: Stay}}}
	if err := bad.Validate(); err == nil {
		t.Fatalf("rule leaving accept state not rejected")
	}
	if err := (&Machine{}).Validate(); err == nil {
		t.Fatalf("empty machine not rejected")
	}
}

func TestDeterministicDetection(t *testing.T) {
	if !flipMachine().Deterministic() {
		t.Fatalf("flip machine should be deterministic")
	}
	if containsOneMachine().Deterministic() {
		t.Fatalf("contains-one machine should be non-deterministic")
	}
}

func TestAlphabetAndStates(t *testing.T) {
	m := flipMachine()
	if got := m.Alphabet(); len(got) != 3 {
		t.Fatalf("alphabet = %v", got)
	}
	if got := m.States(); len(got) != 2 {
		t.Fatalf("states = %v", got)
	}
}

func TestFlipMachineRun(t *testing.T) {
	m := flipMachine()
	res := m.Run(tape("0110"), 20, nil)
	if !res.Accepted || res.Steps != 5 {
		t.Fatalf("run = %+v", res)
	}
	got := strings.Join(res.Final.Tape[:4], "")
	if got != "1001" {
		t.Fatalf("final tape = %q, want 1001", got)
	}
}

func TestRunRespectsMaxSteps(t *testing.T) {
	m := flipMachine()
	res := m.Run(tape("000000"), 3, nil)
	if res.Accepted || res.Steps != 3 {
		t.Fatalf("run = %+v", res)
	}
}

func TestLeftEdgeKillsPath(t *testing.T) {
	m := &Machine{Start: "s", Accept: "acc", Blank: blank,
		Rules: []Rule{
			{State: "s", Read: "0", NewState: "t", Write: "0", Move: Left},
			{State: "t", Read: "0", NewState: "acc", Write: "0", Move: Stay},
		}}
	res := m.Run(tape("00"), 10, nil)
	if res.Accepted {
		t.Fatalf("left move at cell 0 should kill the path")
	}
	ok, _ := m.Accepts(tape("00"), 10)
	if ok {
		t.Fatalf("BFS acceptance should agree")
	}
}

func TestBFSAcceptance(t *testing.T) {
	m := containsOneMachine()
	cases := []struct {
		in   string
		want bool
	}{
		{"0001", true}, {"1", true}, {"0000", false}, {"", false}, {"010", true},
	}
	for _, c := range cases {
		got, _ := m.Accepts(tape(c.in), 10)
		if got != c.want {
			t.Fatalf("Accepts(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestNondeterministicChoicesExplored(t *testing.T) {
	m := containsOneMachine()
	// The always-first chooser keeps scanning and never accepts "10".
	res := m.Run(tape("10"), 10, func(step, n int) int { return 0 })
	if res.Accepted {
		t.Fatalf("first-choice path should scan past the 1")
	}
	// The always-last chooser accepts at the first 1.
	res = m.Run(tape("10"), 10, func(step, n int) int { return n - 1 })
	if !res.Accepted || res.Steps != 1 {
		t.Fatalf("last-choice path = %+v", res)
	}
}

func TestCompileFlipAcceptance(t *testing.T) {
	m := flipMachine()
	c, err := Compile(m, 5, 6)
	if err != nil {
		t.Fatal(err)
	}
	ok, sum, err := c.Accepts(TapeDB(tape("01")), 100000)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("compiled flip machine rejects 01 (summary %+v)", sum)
	}
	// Too few steps: cannot reach the blank.
	c2, err := Compile(m, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	ok, _, err = c2.Accepts(TapeDB(tape("01")), 100000)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatalf("compiled machine accepted with insufficient step budget")
	}
}

func TestCompiledMatchesBFSOnContainsOne(t *testing.T) {
	m := containsOneMachine()
	for _, in := range []string{"1", "01", "00", "10", ""} {
		c, err := Compile(m, 4, 5)
		if err != nil {
			t.Fatal(err)
		}
		wantOK, _ := m.Accepts(tape(in), 4)
		gotOK, _, err := c.Accepts(TapeDB(tape(in)), 200000)
		if err != nil {
			t.Fatal(err)
		}
		if gotOK != wantOK {
			t.Fatalf("input %q: compiled=%v direct=%v", in, gotOK, wantOK)
		}
	}
}

func TestCompiledSinglePathIsDeterministicReplay(t *testing.T) {
	// For a deterministic machine, a guessed sequence either replays the
	// real run or stalls early; the SortedOracle path must agree with
	// the direct simulator when it picks applicable rules.
	m := flipMachine()
	c, err := Compile(m, 6, 8)
	if err != nil {
		t.Fatal(err)
	}
	_, res, err := c.EvalPath(TapeDB(tape("01")), relation.SortedOracle{})
	if err != nil {
		t.Fatal(err)
	}
	// Whatever the guessed sequence, every derived tm_state fact must
	// lie on the deterministic trajectory.
	direct := m.Run(tape("01"), 6, nil)
	_ = direct
	states := res.Relation("tm_state")
	for _, tup := range states.Tuples() {
		step := tup[0].Num
		if step > int64(direct.Steps)+1 {
			t.Fatalf("tm_state reaches step %d beyond the %d-step run", step, direct.Steps)
		}
	}
}

func TestCompileRejectsBadBudgets(t *testing.T) {
	if _, err := Compile(flipMachine(), 0, 5); err == nil {
		t.Fatalf("zero step budget accepted")
	}
	if _, err := Compile(flipMachine(), 5, 0); err == nil {
		t.Fatalf("zero tape budget accepted")
	}
}

func TestCompiledRandomMachinesAgreeWithBFS(t *testing.T) {
	// Property: for random small machines and inputs, compiled
	// existential acceptance equals BFS acceptance at the same budget.
	rng := rand.New(rand.NewSource(42))
	symbols := []string{"0", "1"}
	states := []string{"s", "t"}
	for trial := 0; trial < 12; trial++ {
		var rules []Rule
		for len(rules) < 3 {
			rules = append(rules, Rule{
				State:    states[rng.Intn(len(states))],
				Read:     append(symbols, blank)[rng.Intn(3)],
				NewState: append(states, "acc")[rng.Intn(3)],
				Write:    symbols[rng.Intn(len(symbols))],
				Move:     Move(rng.Intn(3)),
			})
		}
		m := &Machine{Start: "s", Accept: "acc", Blank: blank, Rules: rules}
		if err := m.Validate(); err != nil {
			continue
		}
		in := ""
		for i := 0; i < rng.Intn(3); i++ {
			in += symbols[rng.Intn(2)]
		}
		const steps = 3
		c, err := Compile(m, steps, 5)
		if err != nil {
			t.Fatal(err)
		}
		wantOK, _ := m.Accepts(tape(in), steps)
		gotOK, _, err := c.Accepts(TapeDB(tape(in)), 500000)
		if err != nil {
			t.Fatal(err)
		}
		if gotOK != wantOK {
			t.Fatalf("trial %d input %q machine %+v: compiled=%v direct=%v",
				trial, in, m.Rules, gotOK, wantOK)
		}
	}
}

func TestDomainEncoder(t *testing.T) {
	e := NewDomainEncoder([]string{"c", "a", "b"})
	if e.Width() != 2 {
		t.Fatalf("width = %d", e.Width())
	}
	ca, _ := e.Encode("a")
	cb, _ := e.Encode("b")
	if ca == cb {
		t.Fatalf("codes collide")
	}
	if _, err := e.Encode("zz"); err == nil {
		t.Fatalf("unknown constant not rejected")
	}
}

func TestEncodeDatabaseStructure(t *testing.T) {
	db := TapeDB(nil)
	_ = db.AddAll("emp", value.Strs("joe", "toys"), value.Strs("sue", "toys"))
	tp, enc, err := EncodeDatabase(db)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, s := range tp {
		counts[s]++
	}
	// Two relations on the tape (tape itself is empty but still wrapped).
	if counts[SymLParen] != 2 || counts[SymRParen] != 2 {
		t.Fatalf("paren structure wrong: %v", tp)
	}
	if counts[SymLBrack] != 2 || counts[SymRBrack] != 2 {
		t.Fatalf("tuple bracket structure wrong: %v", tp)
	}
	if counts[SymComma] != 2 {
		t.Fatalf("separator count wrong: %v", tp)
	}
	if enc.Width() != 2 { // domain {joe, sue, toys} needs 2 bits
		t.Fatalf("width = %d", enc.Width())
	}
}

func TestEncodingGenericityUnderRenaming(t *testing.T) {
	// Renaming the u-domain (a permutation fixing nothing) must preserve
	// the tape's structure: same length, same positions of punctuation.
	db1 := TapeDB(nil)
	_ = db1.AddAll("r", value.Strs("x", "y"), value.Strs("y", "z"))
	db2 := TapeDB(nil)
	_ = db2.AddAll("r", value.Strs("p", "q"), value.Strs("q", "w"))
	t1, _, err := EncodeDatabase(db1)
	if err != nil {
		t.Fatal(err)
	}
	t2, _, err := EncodeDatabase(db2)
	if err != nil {
		t.Fatal(err)
	}
	if len(t1) != len(t2) {
		t.Fatalf("tape lengths differ: %d vs %d", len(t1), len(t2))
	}
	for i := range t1 {
		p1 := t1[i] == SymLParen || t1[i] == SymRParen || t1[i] == SymLBrack || t1[i] == SymRBrack || t1[i] == SymComma
		p2 := t2[i] == SymLParen || t2[i] == SymRParen || t2[i] == SymLBrack || t2[i] == SymRBrack || t2[i] == SymComma
		if p1 != p2 {
			t.Fatalf("punctuation positions differ at %d", i)
		}
	}
}

func TestEncodeIntegers(t *testing.T) {
	e := NewDomainEncoder(nil)
	tp, err := e.EncodeValue(nil, value.Int(5))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(tp, "") != "#101" {
		t.Fatalf("encoding of 5 = %v", tp)
	}
	tp, err = e.EncodeValue(nil, value.Int(0))
	if err != nil || strings.Join(tp, "") != "#0" {
		t.Fatalf("encoding of 0 = %v (%v)", tp, err)
	}
	if _, err := e.EncodeValue(nil, value.Int(-1)); err == nil {
		t.Fatalf("negative encoding accepted")
	}
}
