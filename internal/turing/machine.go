// Package turing provides the machinery behind §5 of the paper (the
// expressive power of non-deterministic IDLOG): a non-deterministic
// Turing machine simulator, a binary encoding of databases onto tapes in
// the style of generic TMs [HS89], and a compiler from machines to
// stratified IDLOG programs following the guess-and-check structure of
// the Theorem-6 construction — an ID-literal guesses the whole choice
// sequence up front, and a deterministic positive-recursion stratum
// verifies the run.
package turing

import (
	"fmt"
	"sort"
)

// Move is a head movement.
type Move int

// Head movements.
const (
	Left Move = iota
	Stay
	Right
)

// String implements fmt.Stringer.
func (m Move) String() string {
	switch m {
	case Left:
		return "L"
	case Stay:
		return "S"
	case Right:
		return "R"
	default:
		return fmt.Sprintf("Move(%d)", int(m))
	}
}

// Rule is one transition: in state State reading Read, switch to
// NewState, write Write, move the head.
type Rule struct {
	State, Read     string
	NewState, Write string
	Move            Move
}

// Machine is a (possibly non-deterministic) single-tape Turing machine.
// The tape is bounded on the left at cell 0 (a move left from cell 0
// kills the computation path) and unbounded to the right up to the
// simulator's tape budget.
type Machine struct {
	// Start is the initial state.
	Start string
	// Accept is the accepting state; reaching it halts the path.
	Accept string
	// Blank is the blank tape symbol.
	Blank string
	// Rules is the transition table.
	Rules []Rule
}

// Validate checks structural well-formedness.
func (m *Machine) Validate() error {
	if m.Start == "" || m.Accept == "" || m.Blank == "" {
		return fmt.Errorf("turing: Start, Accept and Blank are required")
	}
	if len(m.Rules) == 0 {
		return fmt.Errorf("turing: machine has no rules")
	}
	for i, r := range m.Rules {
		if r.State == "" || r.Read == "" || r.NewState == "" || r.Write == "" {
			return fmt.Errorf("turing: rule %d has empty fields", i)
		}
		if r.Move < Left || r.Move > Right {
			return fmt.Errorf("turing: rule %d has invalid move %d", i, r.Move)
		}
		if r.State == m.Accept {
			return fmt.Errorf("turing: rule %d leaves the accepting state", i)
		}
	}
	return nil
}

// Deterministic reports whether at most one rule applies to every
// (state, symbol) pair.
func (m *Machine) Deterministic() bool {
	seen := map[[2]string]bool{}
	for _, r := range m.Rules {
		k := [2]string{r.State, r.Read}
		if seen[k] {
			return false
		}
		seen[k] = true
	}
	return true
}

// Alphabet returns every tape symbol mentioned by the machine, sorted.
func (m *Machine) Alphabet() []string {
	set := map[string]bool{m.Blank: true}
	for _, r := range m.Rules {
		set[r.Read] = true
		set[r.Write] = true
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// States returns every state mentioned, sorted.
func (m *Machine) States() []string {
	set := map[string]bool{m.Start: true, m.Accept: true}
	for _, r := range m.Rules {
		set[r.State] = true
		set[r.NewState] = true
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Config is an instantaneous description.
type Config struct {
	State string
	Head  int
	Tape  []string // Tape[i] = symbol at cell i; cells beyond are Blank
}

// clone copies the configuration.
func (c Config) clone() Config {
	t := make([]string, len(c.Tape))
	copy(t, c.Tape)
	return Config{State: c.State, Head: c.Head, Tape: t}
}

// symbol reads the tape with blank padding.
func (c Config) symbol(blank string, i int) string {
	if i < len(c.Tape) {
		return c.Tape[i]
	}
	return blank
}

// Key canonically identifies the configuration (trailing blanks
// ignored).
func (c Config) Key(blank string) string {
	end := len(c.Tape)
	for end > 0 && c.Tape[end-1] == blank {
		end--
	}
	s := fmt.Sprintf("%s|%d|", c.State, c.Head)
	for _, sym := range c.Tape[:end] {
		s += sym + ","
	}
	return s
}

// Initial builds the starting configuration for an input tape.
func (m *Machine) Initial(input []string) Config {
	t := make([]string, len(input))
	copy(t, input)
	return Config{State: m.Start, Head: 0, Tape: t}
}

// ApplicableRules returns the indices of rules applicable in c.
func (m *Machine) ApplicableRules(c Config) []int {
	sym := c.symbol(m.Blank, c.Head)
	var out []int
	for i, r := range m.Rules {
		if r.State == c.State && r.Read == sym {
			out = append(out, i)
		}
	}
	return out
}

// Apply fires rule ri in c, returning the successor configuration.
// ok is false when the move would fall off the left end (the path dies)
// or the rule is not applicable.
func (m *Machine) Apply(c Config, ri int) (Config, bool) {
	r := m.Rules[ri]
	if r.State != c.State || r.Read != c.symbol(m.Blank, c.Head) {
		return Config{}, false
	}
	n := c.clone()
	for len(n.Tape) <= n.Head {
		n.Tape = append(n.Tape, m.Blank)
	}
	n.Tape[n.Head] = r.Write
	n.State = r.NewState
	switch r.Move {
	case Left:
		if n.Head == 0 {
			return Config{}, false
		}
		n.Head--
	case Right:
		n.Head++
	}
	return n, true
}

// RunResult reports a single simulated path.
type RunResult struct {
	Accepted bool
	Steps    int
	Final    Config
	// Choices records, per step, which applicable-rule index was taken.
	Choices []int
}

// Run simulates one path. choose selects among the applicable rules at
// each step (it receives their count and returns an index); nil always
// picks the first, which makes deterministic machines run directly.
func (m *Machine) Run(input []string, maxSteps int, choose func(step, n int) int) RunResult {
	c := m.Initial(input)
	res := RunResult{}
	for step := 0; step < maxSteps; step++ {
		if c.State == m.Accept {
			res.Accepted = true
			break
		}
		app := m.ApplicableRules(c)
		if len(app) == 0 {
			break
		}
		pick := 0
		if choose != nil {
			pick = choose(step, len(app))
			if pick < 0 || pick >= len(app) {
				pick = 0
			}
		}
		next, ok := m.Apply(c, app[pick])
		if !ok {
			break
		}
		res.Choices = append(res.Choices, pick)
		res.Steps++
		c = next
	}
	if c.State == m.Accept {
		res.Accepted = true
	}
	res.Final = c
	return res
}

// Accepts explores the configuration graph breadth-first and reports
// whether some path reaches the accepting state within maxSteps steps.
// It also returns the number of distinct configurations visited.
func (m *Machine) Accepts(input []string, maxSteps int) (bool, int) {
	start := m.Initial(input)
	frontier := []Config{start}
	visited := map[string]bool{start.Key(m.Blank): true}
	for step := 0; step <= maxSteps; step++ {
		var next []Config
		for _, c := range frontier {
			if c.State == m.Accept {
				return true, len(visited)
			}
			if step == maxSteps {
				continue
			}
			for _, ri := range m.ApplicableRules(c) {
				n, ok := m.Apply(c, ri)
				if !ok {
					continue
				}
				k := n.Key(m.Blank)
				if !visited[k] {
					visited[k] = true
					next = append(next, n)
				}
			}
		}
		if len(next) == 0 && step < maxSteps {
			// Also scan remaining frontier for acceptance.
			for _, c := range frontier {
				if c.State == m.Accept {
					return true, len(visited)
				}
			}
			return false, len(visited)
		}
		frontier = next
	}
	return false, len(visited)
}
