package choice

import (
	"fmt"
	"sort"

	"idlog/internal/analysis"
	"idlog/internal/ast"
	"idlog/internal/core"
	"idlog/internal/relation"
	"idlog/internal/value"
)

// Options configures DATALOG^C evaluation.
type Options struct {
	// Oracle picks the functional subsets (and any ID-functions the
	// program itself uses); nil defaults to relation.SortedOracle.
	Oracle relation.Oracle
	// Eval configures the underlying fixpoint runs (its Oracle field is
	// overridden by Oracle above).
	Eval core.Options
}

// plan carries the two compiled halves of the KN88 construction.
type plan struct {
	occs []*Occurrence
	// pcInfo evaluates P_c (step 1: the unique minimal model of P_c).
	pcInfo *analysis.Info
	// residualInfo evaluates the non-choice clauses with the chosen
	// functional subsets installed as input relations (step 3).
	residualInfo *analysis.Info
}

func buildPlan(prog *ast.Program) (*plan, error) {
	pc, occs, err := BuildPc(prog)
	if err != nil {
		return nil, err
	}
	pcInfo, err := analysis.Analyze(pc)
	if err != nil {
		return nil, err
	}
	// Residual program: the rewritten original clauses only; the
	// choice-clauses (appended last by BuildPc) are dropped so that each
	// extChoice_i becomes an input predicate holding S_i.
	residual := &ast.Program{Clauses: pc.Clauses[:len(prog.Clauses)]}
	residualInfo, err := analysis.Analyze(residual)
	if err != nil {
		return nil, err
	}
	return &plan{occs: occs, pcInfo: pcInfo, residualInfo: residualInfo}, nil
}

// choiceRelations runs step 1 and returns each choice-predicate's full
// relation (the domain from which functional subsets are drawn). Under
// (C1)+(C2) these relations do not depend on any choice, so they are
// computed once even when enumerating.
func (p *plan) choiceRelations(db *core.Database, opts Options) (map[string]*relation.Relation, error) {
	evalOpts := opts.Eval
	evalOpts.Oracle = opts.Oracle
	res, err := core.Eval(p.pcInfo, db, evalOpts)
	if err != nil {
		return nil, err
	}
	out := map[string]*relation.Relation{}
	for _, occ := range p.occs {
		r := res.Relation(occ.Pred)
		if r == nil {
			return nil, fmt.Errorf("choice: predicate %s missing from P_c model", occ.Pred)
		}
		out[occ.Pred] = r
	}
	return out, nil
}

// functionalSubset picks one tuple per domain-group of ext using the
// oracle: exactly the tuples that receive tid 0 under the oracle's
// ID-function, which is a functional subset w.r.t. domain → range.
func functionalSubset(ext *relation.Relation, domainCols []int, o relation.Oracle) (*relation.Relation, error) {
	idr, err := relation.MaterializeID(ext, ext.Name()+"_id", domainCols, o)
	if err != nil {
		return nil, err
	}
	sel := relation.New(ext.Name(), ext.Arity())
	tidCol := ext.Arity()
	for _, t := range idr.Tuples() {
		if t[tidCol].Equal(value.Int(0)) {
			sel.MustInsert(t[:tidCol])
		}
	}
	return sel, nil
}

// residualRun executes step 3 for the given functional subsets.
func (p *plan) residualRun(db *core.Database, subsets map[string]*relation.Relation, opts Options) (*core.Result, error) {
	rdb := db.Clone()
	for name, s := range subsets {
		rdb.SetRelation(name, s)
	}
	evalOpts := opts.Eval
	evalOpts.Oracle = opts.Oracle
	return core.Eval(p.residualInfo, rdb, evalOpts)
}

// Eval computes one intended model of the DATALOG^C program under the
// oracle's choices and returns its relations.
func Eval(prog *ast.Program, db *core.Database, opts Options) (*core.Result, error) {
	p, err := buildPlan(prog)
	if err != nil {
		return nil, err
	}
	oracle := opts.Oracle
	if oracle == nil {
		oracle = relation.SortedOracle{}
	}
	opts.Oracle = oracle
	exts, err := p.choiceRelations(db, opts)
	if err != nil {
		return nil, err
	}
	subsets := map[string]*relation.Relation{}
	for _, occ := range p.occs {
		s, err := functionalSubset(exts[occ.Pred], occ.DomainCols, oracle)
		if err != nil {
			return nil, err
		}
		subsets[occ.Pred] = s
	}
	return p.residualRun(db, subsets, opts)
}

// EnumerateOptions bounds Enumerate.
type EnumerateOptions struct {
	// MaxRuns caps residual evaluations (0 = 100000 default).
	MaxRuns int
	// Eval configures the underlying runs.
	Eval core.Options
}

// Enumerate computes the full set of intended models of the DATALOG^C
// program restricted to the output predicates preds: every combination
// of functional subsets across all choice-predicates and groups.
// Answers are deduplicated and sorted by fingerprint.
func Enumerate(prog *ast.Program, db *core.Database, preds []string, opts EnumerateOptions) ([]*core.Answer, error) {
	p, err := buildPlan(prog)
	if err != nil {
		return nil, err
	}
	maxRuns := opts.MaxRuns
	if maxRuns == 0 {
		maxRuns = 100000
	}
	evalOpts := Options{Oracle: relation.SortedOracle{}, Eval: opts.Eval}
	exts, err := p.choiceRelations(db, evalOpts)
	if err != nil {
		return nil, err
	}

	// Flatten all (occurrence, group) slots for the odometer.
	type slot struct {
		pred    string
		key     value.Tuple
		members []value.Tuple
	}
	var slots []slot
	for _, occ := range p.occs {
		for _, g := range exts[occ.Pred].Groups(occ.DomainCols) {
			slots = append(slots, slot{pred: occ.Pred, key: g.Key, members: g.Members})
		}
	}
	picks := make([]int, len(slots))
	runs := 0
	seen := map[string]*core.Answer{}

	for {
		if runs >= maxRuns {
			return nil, &core.ErrEnumerationBudget{Runs: maxRuns}
		}
		runs++
		subsets := map[string]*relation.Relation{}
		for _, occ := range p.occs {
			subsets[occ.Pred] = relation.New(occ.Pred, len(occ.Domain)+len(occ.Range))
		}
		for i, s := range slots {
			subsets[s.pred].MustInsert(s.members[picks[i]])
		}
		res, err := p.residualRun(db, subsets, evalOpts)
		if err != nil {
			return nil, err
		}
		ans := &core.Answer{Relations: map[string]*relation.Relation{}}
		for _, q := range preds {
			r := res.Relation(q)
			if r == nil {
				return nil, fmt.Errorf("choice: unknown output predicate %s", q)
			}
			ans.Relations[q] = r
		}
		seen[ans.Fingerprint()] = ans

		// Advance the odometer.
		i := 0
		for ; i < len(slots); i++ {
			picks[i]++
			if picks[i] < len(slots[i].members) {
				break
			}
			picks[i] = 0
		}
		if i == len(slots) {
			break
		}
	}

	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*core.Answer, len(keys))
	for i, k := range keys {
		out[i] = seen[k]
	}
	return out, nil
}
