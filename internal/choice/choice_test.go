package choice

import (
	"reflect"
	"strings"
	"testing"

	"idlog/internal/analysis"
	"idlog/internal/ast"
	"idlog/internal/core"
	"idlog/internal/parser"
	"idlog/internal/relation"
	"idlog/internal/value"
)

func mustParse(t *testing.T, src string) *ast.Program {
	t.Helper()
	p, err := parser.Program(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return p
}

func empDB() *core.Database {
	db := core.NewDatabase()
	for _, e := range [][2]string{
		{"joe", "toys"}, {"sue", "toys"}, {"ann", "toys"},
		{"bob", "shoes"}, {"eve", "shoes"},
	} {
		_ = db.Add("emp", value.Strs(e[0], e[1]))
	}
	return db
}

const selectEmpSrc = `select_emp(Name) :- emp(Name, Dept), choice((Dept), (Name)).`

func TestValidateAcceptsKN88Example(t *testing.T) {
	if err := Validate(mustParse(t, selectEmpSrc)); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestC1TwoChoicesInOneClause(t *testing.T) {
	src := `p(X, Y) :- q(X, Y), choice((X), (Y)), choice((Y), (X)).`
	err := Validate(mustParse(t, src))
	verr, ok := err.(*ValidationError)
	if !ok || verr.Cond != "C1" {
		t.Fatalf("err = %v, want C1 violation", err)
	}
}

func TestC2RelatedChoiceClauses(t *testing.T) {
	// q's choice clause body depends on p, whose clause also has choice:
	// clause for p is in P/q, violating C2.
	src := `
		p(X) :- base(X, Y), choice((X), (Y)).
		q(Y) :- p(X), r(X, Y), choice((X), (Y)).
	`
	err := Validate(mustParse(t, src))
	verr, ok := err.(*ValidationError)
	if !ok || verr.Cond != "C2" {
		t.Fatalf("err = %v, want C2 violation", err)
	}
}

func TestC2IndependentChoiceClausesAllowed(t *testing.T) {
	// Two choice clauses over disjoint subprograms are fine (as in
	// Example 5's pair encoding).
	src := `
		emp1(N, D) :- emp(N, D), choice((D), (N)).
		emp2(N, D) :- emp(N, D), choice((D), (N)).
	`
	if err := Validate(mustParse(t, src)); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestScopeViolation(t *testing.T) {
	src := `p(X) :- q(X), choice((X), (Y)).`
	err := Validate(mustParse(t, src))
	verr, ok := err.(*ValidationError)
	if !ok || verr.Cond != "scope" {
		t.Fatalf("err = %v, want scope violation", err)
	}
}

func TestBuildPc(t *testing.T) {
	pc, occs, err := BuildPc(mustParse(t, selectEmpSrc))
	if err != nil {
		t.Fatal(err)
	}
	if len(occs) != 1 {
		t.Fatalf("occurrences = %d", len(occs))
	}
	if len(pc.Clauses) != 2 {
		t.Fatalf("P_c clauses = %d, want 2", len(pc.Clauses))
	}
	// The rewritten clause references the choice predicate.
	lit := pc.Clauses[0].Body[1]
	if lit.Atom == nil || lit.Atom.Pred != occs[0].Pred {
		t.Fatalf("rewritten literal = %v", lit)
	}
	// The choice clause head is extChoice(Dept, Name) over the body.
	cc := pc.Clauses[1]
	if cc.Head.Pred != occs[0].Pred || len(cc.Head.Args) != 2 || len(cc.Body) != 1 {
		t.Fatalf("choice clause = %v", cc)
	}
}

func TestEvalSelectsOnePerDepartment(t *testing.T) {
	prog := mustParse(t, selectEmpSrc)
	db := empDB()
	for seed := uint64(0); seed < 10; seed++ {
		res, err := Eval(prog, db, Options{Oracle: relation.RandomOracle{Seed: seed}})
		if err != nil {
			t.Fatal(err)
		}
		sel := res.Relation("select_emp")
		if sel.Len() != 2 {
			t.Fatalf("seed %d: selected %d, want 2 (one per dept): %v", seed, sel.Len(), sel)
		}
	}
}

func TestEnumerateAllDeptsFunctionalSubsets(t *testing.T) {
	// 3 toys-employees × 2 shoes-employees = 6 intended models.
	prog := mustParse(t, selectEmpSrc)
	answers, err := Enumerate(prog, empDB(), []string{"select_emp"}, EnumerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 6 {
		t.Fatalf("intended models = %d, want 6", len(answers))
	}
	for _, a := range answers {
		if a.Relations["select_emp"].Len() != 2 {
			t.Fatalf("bad answer %v", a.Relations["select_emp"])
		}
	}
}

func TestTranslateProducesStratifiedIDLOG(t *testing.T) {
	prog := mustParse(t, selectEmpSrc)
	idlog, err := Translate(prog)
	if err != nil {
		t.Fatal(err)
	}
	if idlog.HasChoice() {
		t.Fatalf("translation still contains choice:\n%s", idlog)
	}
	if !idlog.HasID() {
		t.Fatalf("translation contains no ID-literal:\n%s", idlog)
	}
	if _, err := analysis.Analyze(idlog); err != nil {
		t.Fatalf("translated program does not analyze: %v\n%s", err, idlog)
	}
}

// theorem2Check verifies q-equivalence of a DATALOG^C program and its
// IDLOG translation by exhaustive enumeration of both answer sets.
func theorem2Check(t *testing.T, src string, db *core.Database, preds []string) {
	t.Helper()
	prog := mustParse(t, src)
	direct, err := Enumerate(prog, db, preds, EnumerateOptions{})
	if err != nil {
		t.Fatalf("KN88 enumeration: %v", err)
	}
	translated, err := Translate(prog)
	if err != nil {
		t.Fatalf("translate: %v", err)
	}
	info, err := analysis.Analyze(translated)
	if err != nil {
		t.Fatalf("analyze translation: %v", err)
	}
	viaIDLOG, err := core.Enumerate(info, db, preds, core.EnumerateOptions{})
	if err != nil {
		t.Fatalf("IDLOG enumeration: %v", err)
	}
	a := core.AnswerSetFingerprints(direct)
	b := core.AnswerSetFingerprints(viaIDLOG)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("answer sets differ:\nKN88 (%d): %v\nIDLOG (%d): %v",
			len(a), a, len(b), b)
	}
}

func TestTheorem2SelectEmp(t *testing.T) {
	theorem2Check(t, selectEmpSrc, empDB(), []string{"select_emp"})
}

func TestTheorem2SexGuess(t *testing.T) {
	// The paper's DATALOG^C version of Example 2 (§3.2.2).
	src := `
		sex_guess(X, male) :- person(X).
		sex_guess(X, female) :- person(X).
		sex(X, Y) :- sex_guess(X, Y), choice((X), (Y)).
		man(X) :- sex(X, male).
		woman(X) :- sex(X, female).
	`
	db := core.NewDatabase()
	_ = db.AddAll("person", value.Strs("a"), value.Strs("b"))
	theorem2Check(t, src, db, []string{"man", "woman"})
}

func TestTheorem2EmptyDomainChoice(t *testing.T) {
	// choice((), (Y)) picks one Y globally.
	src := `one(Y) :- p(Y), choice((), (Y)).`
	db := core.NewDatabase()
	_ = db.AddAll("p", value.Ints(1), value.Ints(2), value.Ints(3))
	theorem2Check(t, src, db, []string{"one"})
}

func TestTheorem2DownstreamRecursion(t *testing.T) {
	// The chosen edges feed a recursive closure downstream.
	src := `
		pick(X, Y) :- e(X, Y), choice((X), (Y)).
		reach(Y) :- start(X), pick(X, Y).
		reach(Y) :- reach(X), pick(X, Y).
	`
	db := core.NewDatabase()
	_ = db.AddAll("e",
		value.Strs("a", "b"), value.Strs("a", "c"),
		value.Strs("b", "d"), value.Strs("c", "d"))
	_ = db.Add("start", value.Strs("a"))
	theorem2Check(t, src, db, []string{"reach"})
}

func TestExample5PairEncodingIsDefective(t *testing.T) {
	// Example 5: the two-independent-choices encoding of "pick two per
	// department" admits intended models that miss departments, because
	// the two choices may coincide. IDLOG's emp[2] + N<2 never does.
	// (The clause projecting N2 is needed to make two-per-dept possible
	// at all; the paper elides it.)
	src := `
		emp1(N, D) :- emp(N, D), choice((D), (N)).
		emp2(N, D) :- emp(N, D), choice((D), (N)).
		select_two_emp(N1) :- emp1(N1, D), emp2(N2, D), N1 != N2.
		select_two_emp(N2) :- emp1(N1, D), emp2(N2, D), N1 != N2.
	`
	db := empDB()
	answers, err := Enumerate(mustParse(t, src), db, []string{"select_two_emp"}, EnumerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defective := 0
	complete := 0
	for _, a := range answers {
		sel := a.Relations["select_two_emp"]
		perDept := map[string]int{}
		for _, tup := range db.Relation("emp").Tuples() {
			if sel.Contains(value.Tuple{tup[0]}) {
				perDept[tup[1].String()]++
			}
		}
		if perDept["toys"] == 2 && perDept["shoes"] == 2 {
			complete++
		} else {
			defective++
		}
	}
	if defective == 0 {
		t.Fatalf("expected defective intended models (choices may coincide); all %d were complete", len(answers))
	}
	if complete == 0 {
		t.Fatalf("expected at least one complete model too")
	}
}

func TestGeneratedPredNamesAvoidCollisions(t *testing.T) {
	src := `
		ext_choice_0(X) :- p(X).
		q(X, Y) :- r(X, Y), ext_choice_0(X), choice((X), (Y)).
	`
	_, occs, err := BuildPc(mustParse(t, src))
	if err != nil {
		t.Fatal(err)
	}
	if occs[0].Pred == "ext_choice_0" {
		t.Fatalf("generated name collides with user predicate")
	}
}

func TestTranslateNoChoiceIsIdentity(t *testing.T) {
	src := "p(X) :- q(X).\n"
	out, err := Translate(mustParse(t, src))
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != src {
		t.Fatalf("translation of choice-free program changed it: %q", out.String())
	}
}

func TestEnumerateBudget(t *testing.T) {
	prog := mustParse(t, selectEmpSrc)
	_, err := Enumerate(prog, empDB(), []string{"select_emp"}, EnumerateOptions{MaxRuns: 2})
	if _, ok := err.(*core.ErrEnumerationBudget); !ok {
		t.Fatalf("err = %v, want budget error", err)
	}
}

func TestValidationErrorStrings(t *testing.T) {
	e := &ValidationError{Cond: "C1", Msg: "boom"}
	if !strings.Contains(e.Error(), "C1") || !strings.Contains(e.Error(), "boom") {
		t.Fatalf("error text %q", e.Error())
	}
}

func FuzzChoicePipeline(f *testing.F) {
	seeds := []string{
		selectEmpSrc,
		"one(Y) :- p(Y), choice((), (Y)).",
		"p(X, Y) :- q(X, Y), choice((X), (Y)), r(Y).",
		"a(X) :- b(X, Y), choice((X), (Y)).\nc(X) :- a(X).",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := parser.Program(src)
		if err != nil || !prog.HasChoice() {
			return
		}
		// Validate/translate must never panic; when translation
		// succeeds the result must be analyzable or cleanly rejected.
		translated, err := Translate(prog)
		if err != nil {
			return
		}
		if translated.HasChoice() {
			t.Fatalf("translation left a choice literal: %s", translated)
		}
		_, _ = analysis.Analyze(translated)
	})
}
