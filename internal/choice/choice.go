// Package choice implements DATALOG^C — DATALOG with the choice operator
// of Krishnamurthy & Naqvi [KN88] as presented in §3.2.2 of the paper —
// and the Theorem-2 translation of DATALOG^C programs into stratified
// IDLOG programs.
//
// Two evaluation paths are provided:
//
//   - the direct KN88 semantics (Eval/Enumerate): build P_c by replacing
//     each choice operator with a fresh choice-predicate and adding its
//     choice-clause, compute the minimal model of P_c, assign each
//     choice-predicate a functional subset of its relation, and compute
//     the minimal model of the residual program;
//   - the Theorem-2 route (Translate): produce a pure IDLOG program that
//     is q-equivalent, selecting functional subsets with tid-0
//     ID-literals.
//
// Both paths require the syntactic conditions (C1) — at most one choice
// per clause — and (C2) — no choice clause related to the head of
// another choice clause — which Validate checks.
package choice

import (
	"fmt"
	"sort"

	"idlog/internal/arith"
	"idlog/internal/ast"
)

// Occurrence describes one choice operator occurrence in a program.
type Occurrence struct {
	// ClauseIndex is the index of the clause in the program.
	ClauseIndex int
	// LiteralIndex is the position of the choice literal in the body.
	LiteralIndex int
	// Pred is the generated choice-predicate name (extChoice_i).
	Pred string
	// Domain and Range are the choice operator's term lists.
	Domain, Range []ast.Term
	// DomainCols are the argument positions of the domain terms within
	// the choice-predicate (always the leading positions).
	DomainCols []int
}

// Vars returns Domain ++ Range (the choice-predicate's argument list).
func (o *Occurrence) Vars() []ast.Term {
	out := make([]ast.Term, 0, len(o.Domain)+len(o.Range))
	out = append(out, o.Domain...)
	out = append(out, o.Range...)
	return out
}

// ValidationError reports a violated DATALOG^C restriction.
type ValidationError struct {
	Cond string // "C1", "C2", or "scope"
	Msg  string
}

// Error implements the error interface.
func (e *ValidationError) Error() string {
	return fmt.Sprintf("choice: condition %s violated: %s", e.Cond, e.Msg)
}

// Validate checks the conditions (C1) and (C2) of §3.2.2 plus variable
// scoping: every variable of a choice literal must occur in a positive
// non-choice body literal of the same clause.
func Validate(prog *ast.Program) error {
	_, err := occurrences(prog)
	return err
}

// occurrences collects and validates the choice occurrences.
func occurrences(prog *ast.Program) ([]*Occurrence, error) {
	var occs []*Occurrence
	taken := map[string]bool{}
	for _, c := range prog.Clauses {
		taken[c.Head.Pred] = true
		for _, l := range c.Body {
			if l.Atom != nil {
				taken[l.Atom.Pred] = true
			}
		}
	}
	fresh := func(i int) string {
		name := fmt.Sprintf("ext_choice_%d", i)
		for taken[name] {
			name = "x" + name
		}
		taken[name] = true
		return name
	}

	for ci, c := range prog.Clauses {
		var found *Occurrence
		for li, l := range c.Body {
			if !l.IsChoice() {
				continue
			}
			if found != nil {
				return nil, &ValidationError{Cond: "C1", Msg: fmt.Sprintf("clause %q contains more than one choice operator", c)}
			}
			// Scoping: choice variables must be bound by the rest of the
			// body (the choice-clause body must make them safe).
			bodyVars := map[string]bool{}
			for _, bl := range c.Body {
				if bl.Atom != nil && !bl.Neg {
					for _, t := range bl.Atom.Args {
						if v, ok := t.(ast.Var); ok {
							bodyVars[v.Name] = true
						}
					}
				}
			}
			for _, t := range append(append([]ast.Term{}, l.Choice.Domain...), l.Choice.Range...) {
				v, ok := t.(ast.Var)
				if !ok {
					return nil, &ValidationError{Cond: "scope", Msg: fmt.Sprintf("clause %q: choice arguments must be variables, got %s", c, t)}
				}
				if !bodyVars[v.Name] {
					return nil, &ValidationError{Cond: "scope", Msg: fmt.Sprintf("clause %q: choice variable %s does not occur in a positive body literal", c, v.Name)}
				}
			}
			occ := &Occurrence{
				ClauseIndex:  ci,
				LiteralIndex: li,
				Pred:         fresh(len(occs)),
				Domain:       l.Choice.Domain,
				Range:        l.Choice.Range,
			}
			for i := range occ.Domain {
				occ.DomainCols = append(occ.DomainCols, i)
			}
			occs = append(occs, occ)
			found = occ
		}
	}
	if err := checkC2(prog, occs); err != nil {
		return nil, err
	}
	return occs, nil
}

// relatedPreds returns the predicates whose clauses belong to P/q: the
// program portion related to q (§3.1). A clause is related to q if its
// head predicate appears in a clause defining q, or recursively in a
// related clause; this is reachability from q through clause bodies.
func relatedPreds(prog *ast.Program, q string) map[string]bool {
	bodyPreds := map[string][]string{}
	for _, c := range prog.Clauses {
		for _, l := range c.Body {
			if l.Atom != nil && !arith.IsBuiltin(l.Atom.Pred) {
				bodyPreds[c.Head.Pred] = append(bodyPreds[c.Head.Pred], l.Atom.Pred)
			}
		}
	}
	reach := map[string]bool{q: true}
	queue := []string{q}
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		for _, d := range bodyPreds[p] {
			if !reach[d] {
				reach[d] = true
				queue = append(queue, d)
			}
		}
	}
	return reach
}

// checkC2 enforces condition (C2): for any two distinct choice clauses
// with heads p and q, neither clause lies in the program portion related
// to the other's head.
func checkC2(prog *ast.Program, occs []*Occurrence) error {
	for i, a := range occs {
		for j, b := range occs {
			if i == j {
				continue
			}
			headA := prog.Clauses[a.ClauseIndex].Head.Pred
			headB := prog.Clauses[b.ClauseIndex].Head.Pred
			if a.ClauseIndex == b.ClauseIndex {
				continue // same clause handled by C1
			}
			if relatedPreds(prog, headB)[headA] {
				return &ValidationError{
					Cond: "C2",
					Msg: fmt.Sprintf("choice clause with head %s is related to choice clause head %s",
						headA, headB),
				}
			}
		}
	}
	return nil
}

// BuildPc constructs the program P_c of §3.2.2: each choice operator in
// clause r is replaced by a literal extChoice_i(X, Y), and the
// choice-clause extChoice_i(X, Y) :- body(r) (without the choice
// operator) is appended. The occurrences are returned alongside.
func BuildPc(prog *ast.Program) (*ast.Program, []*Occurrence, error) {
	occs, err := occurrences(prog)
	if err != nil {
		return nil, nil, err
	}
	out := prog.Clone()
	for _, occ := range occs {
		c := out.Clauses[occ.ClauseIndex]
		// Replace the choice literal with the choice-predicate literal.
		c.Body[occ.LiteralIndex] = &ast.Literal{Atom: &ast.Atom{Pred: occ.Pred, Args: occ.Vars()}}
		// Append the choice-clause with the original body minus choice.
		var body []*ast.Literal
		for li, l := range prog.Clauses[occ.ClauseIndex].Body {
			if li == occ.LiteralIndex {
				continue
			}
			body = append(body, l.Clone())
		}
		out.Clauses = append(out.Clauses, &ast.Clause{
			Head: &ast.Atom{Pred: occ.Pred, Args: occ.Vars()},
			Body: body,
		})
	}
	return out, occs, nil
}

// Translate implements the Theorem-2 construction: a DATALOG^C program
// satisfying (C1) and (C2) becomes a q-equivalent stratified IDLOG
// program of (at most) four strata:
//
//	(1) ext_choice_i(X, Y) :- body.          — the choice domain
//	(2) chosen_i(X, Y) :- ext_choice_i[s](X, Y, 0).
//	    — one tuple per X-group via the tid-0 ID-literal
//	(3) the original clause with choice((X),(Y)) replaced by
//	    chosen_i(X, Y), plus every untouched clause.
//
// Functional-subset semantics coincide because an ID-function on the
// grouping s = positions(X) assigns tid 0 to exactly one tuple per
// X-group.
func Translate(prog *ast.Program) (*ast.Program, error) {
	pc, occs, err := BuildPc(prog)
	if err != nil {
		return nil, err
	}
	if len(occs) == 0 {
		return pc, nil
	}
	out := pc.Clone()
	for k, occ := range occs {
		chosen := occ.Pred + "_sel"
		// Rewrite the replaced literal in the original clause to use the
		// selection predicate.
		c := out.Clauses[occ.ClauseIndex]
		c.Body[occ.LiteralIndex] = &ast.Literal{Atom: &ast.Atom{Pred: chosen, Args: occ.Vars()}}
		// chosen_i(X, Y) :- ext_choice_i[s](X, Y, 0).
		idArgs := append(append([]ast.Term{}, occ.Vars()...), ast.N(0))
		sel := &ast.Clause{
			Head: &ast.Atom{Pred: chosen, Args: occ.Vars()},
			Body: []*ast.Literal{{
				Atom: &ast.Atom{Pred: occ.Pred, IsID: true, Group: occ.DomainCols, Args: idArgs},
			}},
		}
		// Insert selection clauses after the choice clauses for
		// readability; order does not affect semantics.
		_ = k
		out.Clauses = append(out.Clauses, sel)
	}
	return out, nil
}

// Preds returns the generated choice-predicate names of a program, in
// occurrence order; a helper for tests.
func Preds(occs []*Occurrence) []string {
	out := make([]string, len(occs))
	for i, o := range occs {
		out[i] = o.Pred
	}
	sort.Strings(out)
	return out
}
