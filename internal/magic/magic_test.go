package magic

import (
	"strings"
	"testing"

	"idlog/internal/analysis"
	"idlog/internal/ast"
	"idlog/internal/parser"
)

func analyze(t *testing.T, src string) *analysis.Info {
	t.Helper()
	prog, err := parser.Program(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := analysis.Analyze(prog)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return info
}

const tcSrc = `
	tc(X, Y) :- e(X, Y).
	tc(X, Y) :- e(X, Z), tc(Z, Y).
	ans(Y) :- tc(a, Y).
`

func TestRewriteTransitiveClosure(t *testing.T) {
	info := analyze(t, tcSrc)
	rw, err := Rewrite(info, "ans")
	if err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	if got, want := strings.Join(rw.Adornments, ","), "tc__bf"; got != want {
		t.Fatalf("adornments = %q, want %q", got, want)
	}
	if rw.GuardedRules != 3 { // ans + two tc variants
		t.Fatalf("guarded rules = %d, want 3", rw.GuardedRules)
	}
	// One seed from the goal, one per derived literal in the recursive
	// clause.
	if rw.MagicRules != 2 {
		t.Fatalf("magic rules = %d, want 2", rw.MagicRules)
	}
	var seed *ast.Clause
	preds := map[string]bool{}
	for _, c := range rw.Program.Clauses {
		preds[c.Head.Pred] = true
		if c.IsFact() {
			seed = c
		}
	}
	if seed == nil || seed.Head.Pred != "m__tc__bf" || len(seed.Head.Args) != 1 {
		t.Fatalf("missing ground magic seed, got %v", seed)
	}
	for _, p := range []string{"ans", "tc__bf", "m__tc__bf"} {
		if !preds[p] {
			t.Fatalf("rewritten program lacks %s (have %v)", p, preds)
		}
	}
	if preds["tc"] {
		t.Fatalf("unadorned tc survived the rewrite")
	}
	// The rewritten program must itself analyze (stratify, pass safety).
	if _, err := analysis.Analyze(rw.Program); err != nil {
		t.Fatalf("rewritten program does not analyze: %v", err)
	}
	if rw.Summary() == "" {
		t.Fatal("empty summary")
	}
}

func TestRewriteDropsNonConeClauses(t *testing.T) {
	info := analyze(t, tcSrc+`
		junk(X) :- e(X, X), junk2(X).
		junk2(X) :- e(X, X).
	`)
	rw, err := Rewrite(info, "ans")
	if err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	if rw.DroppedClauses != 2 {
		t.Fatalf("dropped = %d, want 2", rw.DroppedClauses)
	}
	for _, c := range rw.Program.Clauses {
		if strings.HasPrefix(c.Head.Pred, "junk") {
			t.Fatalf("non-cone clause survived: %v", c)
		}
	}
}

func TestRewriteBoundSecondArgument(t *testing.T) {
	// Demand on the second argument (fb-style): the right-linear rule
	// propagates it through the recursive call.
	info := analyze(t, `
		tc(X, Y) :- e(X, Y).
		tc(X, Y) :- tc(X, Z), e(Z, Y).
		ans(X) :- tc(X, b).
	`)
	rw, err := Rewrite(info, "ans")
	if err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	if got, want := strings.Join(rw.Adornments, ","), "tc__fb"; got != want {
		t.Fatalf("adornments = %q, want %q", got, want)
	}
	if _, err := analysis.Analyze(rw.Program); err != nil {
		t.Fatalf("rewritten program does not analyze: %v", err)
	}
}

func TestRewriteInapplicable(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"id-literal", `
			sex_guess(X, male) :- person(X).
			man(X) :- sex_guess[1](X, male, 1).
			ans :- man(a).
		`, "ID-literal"},
		{"negated-idb", `
			q(X) :- e(X, X).
			p(X) :- e(X, Y), not q(Y).
			ans :- p(a).
		`, "negation over derived predicate"},
		{"free-goal", `
			tc(X, Y) :- e(X, Y).
			tc(X, Y) :- e(X, Z), tc(Z, Y).
			ans(X, Y) :- tc(X, Y).
		`, "binds no argument"},
		{"edb-goal", `
			tc(X, Y) :- e(X, Y).
			ans(Y) :- e(a, Y).
		`, "binds no argument"},
		{"name-collision", `
			tc__bf(X, Y) :- e(X, Y).
			tc(X, Y) :- e(X, Y).
			tc(X, Y) :- tc__bf(X, Z), tc(Z, Y).
			ans(Y) :- tc(a, Y).
		`, "collides"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			info := analyze(t, tc.src)
			_, err := Rewrite(info, "ans")
			if err == nil {
				t.Fatal("rewrite unexpectedly applicable")
			}
			if !Inapplicable(err) {
				t.Fatalf("error not inapplicable-typed: %v", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

func TestRewriteNegationOverEDBAllowed(t *testing.T) {
	info := analyze(t, `
		tc(X, Y) :- e(X, Y), not blocked(Y).
		tc(X, Y) :- e(X, Z), not blocked(Z), tc(Z, Y).
		ans(Y) :- tc(a, Y).
	`)
	rw, err := Rewrite(info, "ans")
	if err != nil {
		t.Fatalf("negation over EDB should be applicable: %v", err)
	}
	if _, err := analysis.Analyze(rw.Program); err != nil {
		t.Fatalf("rewritten program does not analyze: %v", err)
	}
}

func TestRewriteBuiltinsAllowed(t *testing.T) {
	info := analyze(t, `
		cost(X, C) :- edge(X, C).
		cost(X, C) :- edge(X, D), cost(X, E), add(D, E, C), C < 100.
		ans(C) :- cost(a, C), C != 3.
	`)
	rw, err := Rewrite(info, "ans")
	if err != nil {
		t.Fatalf("builtins should be applicable: %v", err)
	}
	if _, err := analysis.Analyze(rw.Program); err != nil {
		t.Fatalf("rewritten program does not analyze: %v", err)
	}
}
