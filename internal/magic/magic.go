// Package magic implements the magic-sets rewrite for goal-directed
// evaluation: given an analyzed program and a goal predicate whose
// single defining clause carries the query's constants, it adorns the
// reachable rules with binding patterns (the RBK88 vocabulary of
// internal/adorn), generates magic predicates that seed and propagate
// demand sideways through each rule body, and guards every adorned rule
// variant so the bottom-up evaluators materialize only the goal's
// derivation cone.
//
// The rewrite is deliberately partial. It refuses — returning an
// *InapplicableError so callers fall back to full evaluation — when the
// goal's cone contains ID-literals (the oracle assigns identifiers over
// the whole base relation, so restricting the base changes answers),
// negation over a derived predicate (the complement of a partially
// materialized relation is unsound), or when the goal binds no argument
// of any derived predicate (no demand to propagate). Negation over base
// relations and interpreted built-ins pass through unchanged: base
// relations are fully known regardless of demand.
package magic

import (
	"fmt"
	"sort"
	"strings"

	"idlog/internal/analysis"
	"idlog/internal/arith"
	"idlog/internal/ast"
)

// InapplicableError reports that the program/goal pair is outside the
// rewrite's sound fragment; callers should evaluate the original
// program instead.
type InapplicableError struct {
	// Reason is a one-line human-readable explanation, surfaced by
	// ExplainPlan and the REPL.
	Reason string
}

func (e *InapplicableError) Error() string {
	return "magic: rewrite inapplicable: " + e.Reason
}

func inapplicablef(format string, args ...any) error {
	return &InapplicableError{Reason: fmt.Sprintf(format, args...)}
}

// Inapplicable reports whether err marks a goal the rewrite refuses
// (fall back to full evaluation) rather than an internal failure.
func Inapplicable(err error) bool {
	_, ok := err.(*InapplicableError)
	return ok
}

// Rewritten is the output of Rewrite: the transformed program plus the
// bookkeeping ExplainPlan and the benchmarks render.
type Rewritten struct {
	// Program holds the goal clause, the guarded adorned rule variants,
	// and the magic rules (seeds included), and nothing else — clauses
	// outside the goal's cone are dropped.
	Program *ast.Program
	// Adornments lists the adorned predicate names generated
	// (e.g. "tc__bf"), sorted.
	Adornments []string
	// GoalAdornment summarizes the demand the goal clause injects, as
	// "pred__ad" per derived literal in its body, in sideways order.
	GoalAdornment []string
	// MagicRules counts magic rules emitted, seed facts included.
	MagicRules int
	// GuardedRules counts adorned rule variants (goal clause included).
	GuardedRules int
	// DroppedClauses counts source clauses outside the cone.
	DroppedClauses int
}

// Summary renders a one-line description for plans and logs.
func (r *Rewritten) Summary() string {
	return fmt.Sprintf("goal %s; %d adorned predicate(s), %d magic rule(s), %d guarded rule(s), %d source clause(s) dropped",
		strings.Join(r.GoalAdornment, ","), len(r.Adornments), r.MagicRules, r.GuardedRules, r.DroppedClauses)
}

// adornedName and magicName build the rewrite's predicate namespace.
// Collisions with source predicates are detected and refused rather
// than repaired: programs naming predicates "m__p__bf" are vanishingly
// rare, and falling back to full evaluation is always correct.
func adornedName(pred, ad string) string { return pred + "__" + ad }
func magicName(pred, ad string) string   { return "m__" + pred + "__" + ad }

type rewriter struct {
	info  *analysis.Info
	defs  map[string][]*ast.Clause
	out   []*ast.Clause
	seen  map[string]bool // adorned-name set, doubles as the worklist dedup
	queue []predAd
	names map[string]bool // every source predicate name, for collision checks
	// goalBound records whether the goal clause demands at least one
	// bound argument position of some derived predicate; without that
	// there is no demand to propagate and full evaluation is used.
	goalBound bool
	res       *Rewritten
}

type predAd struct{ pred, ad string }

// Rewrite applies the magic-sets transformation to info's program for
// the goal predicate ansPred (the wrapper predicate Program.Prepare
// synthesizes, carrying the query's constants in its single clause).
// It returns the rewritten program — equivalent to the original on
// ansPred for every database — or an *InapplicableError when the goal
// is outside the sound fragment.
func Rewrite(info *analysis.Info, ansPred string) (*Rewritten, error) {
	prog := info.Program
	rw := &rewriter{
		info:  info,
		defs:  map[string][]*ast.Clause{},
		seen:  map[string]bool{},
		names: map[string]bool{},
		res:   &Rewritten{},
	}
	for _, c := range prog.Clauses {
		rw.defs[c.Head.Pred] = append(rw.defs[c.Head.Pred], c)
		rw.names[c.Head.Pred] = true
		for _, l := range c.Body {
			if l.Atom != nil {
				rw.names[l.Atom.Pred] = true
			}
		}
	}
	goals := rw.defs[ansPred]
	if len(goals) != 1 {
		return nil, inapplicablef("goal predicate %s has %d defining clauses, want 1", ansPred, len(goals))
	}

	cone, err := rw.cone(ansPred)
	if err != nil {
		return nil, err
	}

	// The goal clause itself: unguarded (it IS the demand), head kept as
	// ansPred so callers read the same answer relation.
	if err := rw.clause(goals[0], "", false); err != nil {
		return nil, err
	}
	if !rw.goalBound {
		return nil, inapplicablef("goal binds no argument of any derived predicate")
	}

	for len(rw.queue) > 0 {
		pa := rw.queue[0]
		rw.queue = rw.queue[1:]
		for _, c := range rw.defs[pa.pred] {
			if err := rw.clause(c, pa.ad, true); err != nil {
				return nil, err
			}
		}
	}

	rw.res.Program = &ast.Program{Clauses: rw.out}
	for name := range rw.seen {
		rw.res.Adornments = append(rw.res.Adornments, name)
	}
	sort.Strings(rw.res.Adornments)
	rw.res.DroppedClauses = len(prog.Clauses) - len(cone)
	return rw.res, nil
}

// cone returns the clauses reachable from the goal through rule bodies
// and checks the sound-fragment conditions on every one of them.
func (rw *rewriter) cone(ansPred string) (map[*ast.Clause]bool, error) {
	reached := map[string]bool{ansPred: true}
	stack := []string{ansPred}
	clauses := map[*ast.Clause]bool{}
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range rw.defs[p] {
			clauses[c] = true
			for _, l := range c.Body {
				if l.IsChoice() || l.Atom == nil {
					return nil, inapplicablef("choice literal in the goal's cone (clause %s)", c)
				}
				if l.Atom.IsID {
					return nil, inapplicablef("ID-literal %s in the goal's cone: the oracle assigns identifiers over the full base relation", l.Atom.Pred)
				}
				if l.Neg && rw.info.IDB[l.Atom.Pred] {
					return nil, inapplicablef("negation over derived predicate %s in the goal's cone", l.Atom.Pred)
				}
				if rw.info.IDB[l.Atom.Pred] && !reached[l.Atom.Pred] {
					reached[l.Atom.Pred] = true
					stack = append(stack, l.Atom.Pred)
				}
			}
		}
	}
	return clauses, nil
}

// clause rewrites one source clause under the head adornment ad. For
// the goal clause (guarded=false, ad="") no variables start bound and
// no guard is prepended; otherwise the magic guard binds the head's
// 'b'-position variables. The body is re-ordered by the planner's
// sideways-information-passing heuristic (most bound argument
// positions first, source order on ties), each derived literal is
// renamed to its adorned variant, and a magic rule carrying the bound
// prefix is emitted per derived literal.
func (rw *rewriter) clause(c *ast.Clause, ad string, guarded bool) error {
	bound := map[string]bool{}
	head := c.Head.Clone()
	var body []*ast.Literal
	if guarded {
		if len(ad) != len(c.Head.Args) {
			return inapplicablef("adornment %q does not match arity of %s", ad, c.Head.Pred)
		}
		var margs []ast.Term
		for i, t := range c.Head.Args {
			if ad[i] != 'b' {
				continue
			}
			margs = append(margs, t)
			if v, ok := t.(ast.Var); ok && !v.Anonymous() {
				bound[v.Name] = true
			}
		}
		head.Pred = adornedName(c.Head.Pred, ad)
		body = append(body, &ast.Literal{Atom: &ast.Atom{Pred: magicName(c.Head.Pred, ad), Args: margs}})
	}

	remaining := make([]*ast.Literal, len(c.Body))
	copy(remaining, c.Body)
	for len(remaining) > 0 {
		best, bestScore := -1, -1
		for i, l := range remaining {
			if !analysis.Eligible(l, bound) {
				continue
			}
			if score := analysis.BoundCount(l, bound); score > bestScore {
				best, bestScore = i, score
			}
		}
		if best == -1 {
			// The source order was safe starting from no bound head
			// variables, and binding more never removes eligibility, so
			// this is unreachable; refuse defensively rather than emit an
			// unsafe rule.
			return inapplicablef("no safe sideways order for clause %s under adornment %q", c, ad)
		}
		l := remaining[best]
		remaining = append(remaining[:best], remaining[best+1:]...)
		out := &ast.Literal{Neg: l.Neg, Atom: l.Atom.Clone()}
		if !l.Neg && rw.info.IDB[l.Atom.Pred] && !arith.IsBuiltin(l.Atom.Pred) {
			lad := adornment(l.Atom, bound)
			if err := rw.request(l.Atom.Pred, lad); err != nil {
				return err
			}
			// Magic rule: demand for this literal's bound positions,
			// derived from the guard plus the body prefix evaluated so
			// far. An empty body (first literal, constants only) is a
			// seed fact.
			magicHead := &ast.Atom{Pred: magicName(l.Atom.Pred, lad)}
			for i, t := range l.Atom.Args {
				if lad[i] == 'b' {
					magicHead.Args = append(magicHead.Args, t)
				}
			}
			rw.out = append(rw.out, &ast.Clause{Head: magicHead, Body: cloneLits(body)})
			rw.res.MagicRules++
			out.Atom.Pred = adornedName(l.Atom.Pred, lad)
			if !guarded {
				rw.res.GoalAdornment = append(rw.res.GoalAdornment, adornedName(l.Atom.Pred, lad))
				if strings.ContainsRune(lad, 'b') {
					rw.goalBound = true
				}
			}
		}
		body = append(body, out)
		analysis.Bind(l, bound)
	}
	rw.out = append(rw.out, &ast.Clause{Head: head, Body: body})
	rw.res.GuardedRules++
	return nil
}

// request enqueues (pred, ad) for rewriting if unseen, refusing on a
// namespace collision with a source predicate.
func (rw *rewriter) request(pred, ad string) error {
	an, mn := adornedName(pred, ad), magicName(pred, ad)
	if rw.names[an] || rw.names[mn] {
		return inapplicablef("generated predicate name %s or %s collides with a source predicate", an, mn)
	}
	if rw.seen[an] {
		return nil
	}
	rw.seen[an] = true
	rw.queue = append(rw.queue, predAd{pred, ad})
	return nil
}

// adornment computes the binding pattern of an atom under the current
// bound-variable set: 'b' for constants and bound variables, 'f'
// otherwise.
func adornment(a *ast.Atom, bound map[string]bool) string {
	b := make([]byte, len(a.Args))
	for i, t := range a.Args {
		b[i] = 'f'
		switch t := t.(type) {
		case ast.Const:
			b[i] = 'b'
		case ast.Var:
			if !t.Anonymous() && bound[t.Name] {
				b[i] = 'b'
			}
		}
	}
	return string(b)
}

func cloneLits(ls []*ast.Literal) []*ast.Literal {
	out := make([]*ast.Literal, len(ls))
	for i, l := range ls {
		out[i] = &ast.Literal{Neg: l.Neg, Atom: l.Atom.Clone()}
	}
	return out
}
