package guard

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Parallel is the concurrency-safe face of a Guard for one parallel
// fixpoint phase. The coordinator Forks it before spawning workers and
// Joins it after they exit; in between, workers draw derivation grants
// from a shared atomic ledger (Reserve/Refund), poll the clock and
// context through the lock-free Checkpoint, and publish the phase's
// first error through Fail, which doubles as the cooperative stop
// signal for their siblings.
//
// The derivation ledger counts *reservations*: a worker reserves up to
// CheckInterval derivations, runs them, and refunds what it did not
// use when it exits. Joins therefore settle an exact total; the one
// approximation is that a budget error can fire while sibling workers
// still hold unused grants, so the reported count may exceed the
// derivations actually executed by at most (workers-1)·CheckInterval —
// never the budget itself, which remains a hard ceiling.
type Parallel struct {
	g          *Guard
	max        int64 // derivation budget (0 = unlimited)
	panicAfter int64 // injected-panic threshold (0 = off)

	derivations atomic.Int64
	stopped     atomic.Bool
	mu          sync.Mutex
	err         error
}

// Fork snapshots the guard's exact derivation total into a Parallel
// ledger. The guard must be settled (no outstanding amortized batch)
// and must not be consulted again until Join.
func (g *Guard) Fork() *Parallel {
	p := &Parallel{
		g:          g,
		max:        int64(g.limits.MaxDerivations),
		panicAfter: int64(g.fault.PanicAfter),
	}
	p.derivations.Store(int64(g.derivations))
	return p
}

// Reserve grants up to want derivations from the shared budget. It
// returns the granted count (≥1) or the typed budget error when the
// ledger is exhausted. A PanicAfter fault fires here, in the worker's
// goroutine, exactly as the sequential grant path would; the worker's
// recover converts it into a pool failure.
func (p *Parallel) Reserve(want int, clause string) (int, error) {
	for {
		cur := p.derivations.Load()
		if p.panicAfter > 0 && cur >= p.panicAfter {
			panicAfterFault(cur)
		}
		n := int64(want)
		if p.max > 0 {
			if r := p.max - cur; r < n {
				n = r
			}
			if n <= 0 {
				return 0, Errorf(ResourceExhausted, p.g.op,
					"derivation budget %d exceeded after %d derivations (clause %s)",
					p.max, cur, clause)
			}
		}
		if p.panicAfter > 0 {
			if r := p.panicAfter - cur; r < n {
				n = r
			}
		}
		if p.derivations.CompareAndSwap(cur, cur+n) {
			return int(n), nil
		}
	}
}

func panicAfterFault(n int64) {
	panic(fmt.Sprintf("guard: injected fault after %d derivations", n))
}

// Refund returns a worker's unused reserved derivations to the ledger.
func (p *Parallel) Refund(n int) {
	if n > 0 {
		p.derivations.Add(int64(-n))
	}
}

// Checkpoint is the context + clock check, safe for concurrent use.
func (p *Parallel) Checkpoint() error { return p.g.checkNow() }

// Fail records the phase's first error and raises the stop signal; it
// is safe to call from any worker. Nil errors are ignored.
func (p *Parallel) Fail(err error) {
	if err == nil {
		return
	}
	p.mu.Lock()
	if p.err == nil {
		p.err = err
	}
	p.mu.Unlock()
	p.stopped.Store(true)
}

// Stopped reports whether a sibling has failed; workers poll it at
// grant boundaries and between tasks for cooperative cancellation.
func (p *Parallel) Stopped() bool { return p.stopped.Load() }

// Err returns the phase's first error, if any.
func (p *Parallel) Err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.err
}

// Join settles the ledger back into the guard. Call only after every
// worker has exited (and refunded); the guard resumes sequential
// accounting from the exact total.
func (p *Parallel) Join() {
	p.g.derivations = int(p.derivations.Load())
}
