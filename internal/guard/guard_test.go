package guard

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestInactiveGuardNeverTrips(t *testing.T) {
	g := New(nil, Limits{})
	if g.Active() {
		t.Fatalf("background guard with no limits reported active")
	}
	for i := 0; i < 3*CheckInterval; i++ {
		if err := g.Derivation("c"); err != nil {
			t.Fatalf("derivation %d: %v", i, err)
		}
	}
	if err := g.TryTuples(1 << 20); err != nil {
		t.Fatalf("tuples: %v", err)
	}
	if err := g.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
}

func TestDerivationBudgetExact(t *testing.T) {
	g := New(nil, Limits{MaxDerivations: 5})
	for i := 0; i < 5; i++ {
		if err := g.Derivation("c"); err != nil {
			t.Fatalf("derivation %d tripped early: %v", i, err)
		}
	}
	err := g.Derivation("tc(X, Y) :- e(X, Y).")
	var ge *Error
	if !errors.As(err, &ge) || ge.Code != ResourceExhausted {
		t.Fatalf("want ResourceExhausted, got %v", err)
	}
	if !strings.Contains(err.Error(), "tc(X, Y)") {
		t.Fatalf("error lost the clause context: %v", err)
	}
	if d, _ := g.Usage(); d != 5 {
		t.Fatalf("derivations counted = %d, want exactly 5", d)
	}
}

func TestTupleBudgetExact(t *testing.T) {
	g := New(nil, Limits{MaxTuples: 3})
	for i := 0; i < 3; i++ {
		if err := g.TryTuples(1); err != nil {
			t.Fatalf("tuple %d tripped early: %v", i, err)
		}
	}
	if !g.AtTupleLimit() {
		t.Fatalf("AtTupleLimit false at the limit")
	}
	err := g.TryTuples(1)
	var ge *Error
	if !errors.As(err, &ge) || ge.Code != ResourceExhausted {
		t.Fatalf("want ResourceExhausted, got %v", err)
	}
	if _, n := g.Usage(); n != 3 {
		t.Fatalf("failed reservation was counted: tuples = %d", n)
	}
}

func TestBatchTupleReservation(t *testing.T) {
	g := New(nil, Limits{MaxTuples: 10})
	if err := g.TryTuples(7); err != nil {
		t.Fatal(err)
	}
	if err := g.TryTuples(4); err == nil {
		t.Fatalf("over-budget batch accepted")
	}
	if err := g.TryTuples(3); err != nil {
		t.Fatalf("exact-fit batch rejected: %v", err)
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g := New(ctx, Limits{})
	if !g.Active() {
		t.Fatalf("cancelable guard reported inactive")
	}
	if err := g.Checkpoint(); err != nil {
		t.Fatalf("premature trip: %v", err)
	}
	cancel()
	err := g.Checkpoint()
	var ge *Error
	if !errors.As(err, &ge) || ge.Code != Canceled {
		t.Fatalf("want Canceled, got %v", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("errors.Is(err, context.Canceled) = false")
	}
}

func TestContextDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	err := New(ctx, Limits{}).Checkpoint()
	var ge *Error
	if !errors.As(err, &ge) || ge.Code != DeadlineExceeded {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("errors.Is(err, context.DeadlineExceeded) = false")
	}
}

func TestWallClockTimeout(t *testing.T) {
	g := New(nil, Limits{Timeout: time.Nanosecond})
	time.Sleep(time.Millisecond)
	err := g.Checkpoint()
	var ge *Error
	if !errors.As(err, &ge) || ge.Code != DeadlineExceeded {
		t.Fatalf("want DeadlineExceeded, got %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("wall-clock timeout should wrap context.DeadlineExceeded")
	}
}

func TestDerivationBatchedCheckpoint(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g := New(ctx, Limits{})
	cancel()
	// The trip must surface within one CheckInterval of derivations.
	for i := 0; i < CheckInterval-1; i++ {
		if err := g.Derivation("c"); err != nil {
			t.Fatalf("derivation %d tripped before the batch boundary: %v", i, err)
		}
	}
	if err := g.Derivation("c"); err == nil {
		t.Fatalf("cancellation not observed at the batch boundary")
	}
}

func TestCancelAtStratumFault(t *testing.T) {
	g := New(nil, Limits{})
	g.Inject(CancelAt(2))
	for i := 0; i < 2; i++ {
		if err := g.StartStratum(i); err != nil {
			t.Fatalf("stratum %d tripped early: %v", i, err)
		}
	}
	err := g.StartStratum(2)
	var ge *Error
	if !errors.As(err, &ge) || ge.Code != Canceled {
		t.Fatalf("want Canceled at stratum 2, got %v", err)
	}
	if g.Stratum() != 2 {
		t.Fatalf("stratum context = %d", g.Stratum())
	}
}

func TestFailAfterFaultPanics(t *testing.T) {
	g := New(nil, Limits{})
	g.Inject(FailAfter(3))
	for i := 0; i < 3; i++ {
		if err := g.Derivation("c"); err != nil {
			t.Fatal(err)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("FailAfter fault did not panic")
		}
	}()
	_ = g.Derivation("c")
}

func TestOracleFaultConsumedOnce(t *testing.T) {
	g := New(nil, Limits{})
	want := fmt.Errorf("boom")
	g.Inject(OracleFault(want))
	if got := g.TakeOracleFault(); got != want {
		t.Fatalf("TakeOracleFault = %v", got)
	}
	if got := g.TakeOracleFault(); got != nil {
		t.Fatalf("oracle fault fired twice: %v", got)
	}
}

func TestErrorRendering(t *testing.T) {
	e := WrapErr(Canceled, "enumerate", context.Canceled, "evaluation canceled")
	for _, want := range []string{"idlog:", "enumerate", "canceled"} {
		if !strings.Contains(e.Error(), want) {
			t.Fatalf("error %q missing %q", e.Error(), want)
		}
	}
	if Code(99).String() == "" {
		t.Fatalf("unknown code renders empty")
	}
}
