// Package guard is the engine's resource-governance layer. One Guard
// accompanies each evaluation (or each enumeration walk, whose runs
// share it) and enforces, under one roof: context cancellation and
// deadlines, a wall-clock timeout, a derived-tuple budget (the memory
// proxy), and the derivation budget. The engine checks it cooperatively
// at stratum entries, fixpoint-round boundaries, and every derivation;
// the expensive clock/context checks run only once per CheckInterval
// derivations, so governance costs a counter increment on the hot path.
//
// The package also defines the typed error taxonomy (Error, Code) used
// at the public boundary, and deterministic fault-injection hooks
// (FailAfter, CancelAt, OracleFault) that power the chaos test suite.
package guard

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// CheckInterval is the number of derivations between full context and
// clock checkpoints. Budget counters are exact — they are checked on
// every derivation and tuple — only the clock/context polling is
// batched.
const CheckInterval = 256

// Limits bounds one evaluation; zero values mean unlimited.
type Limits struct {
	// Timeout is the wall-clock budget for the whole run (Enumerate:
	// the whole walk). It combines with any context deadline; the
	// earlier one wins.
	Timeout time.Duration
	// MaxTuples caps the number of newly materialized tuples (derived
	// IDB tuples plus ID-relation rows) — the engine's memory proxy.
	MaxTuples int
	// MaxDerivations caps body instantiations, the engine's work proxy.
	MaxDerivations int
}

// Fault describes a deterministic failure injection for chaos tests.
// The zero value injects nothing; build faults with FailAfter, CancelAt
// and OracleFault.
type Fault struct {
	// PanicAfter panics once this many derivations have completed
	// (0 = off), exercising the recover() path at the entry points.
	PanicAfter int
	// CancelStratum cancels the run's context on entry to this stratum
	// index when CancelSet (a plain int would make stratum 0
	// uninjectable).
	CancelStratum int
	// CancelSet arms CancelStratum.
	CancelSet bool
	// OracleErr fails the next ID-relation materialization with this
	// error.
	OracleErr error
	// TornWriteAfter makes the write-ahead log crash mid-append: the
	// n-th Append (1-based) writes only a prefix of its record and then
	// reports a simulated crash, leaving a torn tail for recovery tests
	// (0 = off).
	TornWriteAfter int
}

// FailAfter returns a fault that panics after n derivations.
func FailAfter(n int) Fault { return Fault{PanicAfter: n} }

// CancelAt returns a fault that cancels the context when evaluation
// enters stratum i.
func CancelAt(i int) Fault { return Fault{CancelStratum: i, CancelSet: true} }

// OracleFault returns a fault that fails the next ID-relation
// materialization with err.
func OracleFault(err error) Fault { return Fault{OracleErr: err} }

// TornWrite returns a fault that tears the n-th WAL append (1-based),
// simulating a crash that persists only part of the record.
func TornWrite(n int) Fault { return Fault{TornWriteAfter: n} }

// Guard carries the governance state of one evaluation. It is not safe
// for concurrent use; the engine is single-threaded by design.
type Guard struct {
	ctx         context.Context
	cancel      context.CancelFunc
	limits      Limits
	fault       Fault
	deadline    time.Time
	hasDeadline bool
	op          string

	derivations int
	tuples      int
	stratum     int
	sinceCheck  int
}

// New builds a guard for ctx (nil means context.Background()) under the
// given limits. The wall-clock deadline is fixed at creation time, so a
// guard shared by an enumeration walk budgets the whole walk.
func New(ctx context.Context, l Limits) *Guard {
	if ctx == nil {
		ctx = context.Background()
	}
	g := &Guard{ctx: ctx, limits: l, op: "eval"}
	if l.Timeout > 0 {
		g.deadline = time.Now().Add(l.Timeout)
		g.hasDeadline = true
	}
	if d, ok := ctx.Deadline(); ok && (!g.hasDeadline || d.Before(g.deadline)) {
		g.deadline = d
		g.hasDeadline = true
	}
	return g
}

// SetOp labels subsequent errors with the public entry point being
// served ("eval", "enumerate", "query").
func (g *Guard) SetOp(op string) { g.op = op }

// Op returns the current entry-point label.
func (g *Guard) Op() string { return g.op }

// Inject arms a fault. CancelAt faults wrap the guard's context with a
// cancelable child so the injection is indistinguishable from a real
// caller cancellation.
func (g *Guard) Inject(f Fault) {
	g.fault = f
	if f.CancelSet {
		g.ctx, g.cancel = context.WithCancel(g.ctx)
	}
}

// Active reports whether any governance check can fire: engines skip
// the per-derivation accounting entirely for inactive guards, keeping
// ungoverned runs at seed speed.
func (g *Guard) Active() bool {
	return g.hasDeadline || g.limits.MaxTuples > 0 || g.limits.MaxDerivations > 0 ||
		g.fault.PanicAfter > 0 || g.fault.CancelSet || g.fault.OracleErr != nil ||
		g.ctx.Done() != nil
}

// StartStratum notes entry into stratum i, fires any CancelAt fault,
// and runs a full checkpoint.
func (g *Guard) StartStratum(i int) error {
	g.stratum = i
	if g.fault.CancelSet && g.fault.CancelStratum == i && g.cancel != nil {
		g.cancel()
	}
	return g.Checkpoint()
}

// Stratum reports the stratum currently under evaluation (for error
// context).
func (g *Guard) Stratum() int { return g.stratum }

// Checkpoint runs the full context + clock check. The engine calls it
// at stratum entries and fixpoint-round boundaries; Derivation calls it
// every CheckInterval derivations.
func (g *Guard) Checkpoint() error {
	g.sinceCheck = 0
	return g.checkNow()
}

// checkNow is the context + clock check without the batching-counter
// reset — the only state Checkpoint writes — so it is safe to call from
// many goroutines at once (Parallel.Checkpoint does).
func (g *Guard) checkNow() error {
	if err := g.ctx.Err(); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			return WrapErr(DeadlineExceeded, g.op, err, "context deadline exceeded")
		}
		return WrapErr(Canceled, g.op, err, "evaluation canceled")
	}
	if g.hasDeadline && time.Now().After(g.deadline) {
		return WrapErr(DeadlineExceeded, g.op, context.DeadlineExceeded,
			fmt.Sprintf("wall-clock budget %s exceeded", g.limits.Timeout))
	}
	return nil
}

// Derivation accounts one body instantiation: it fires PanicAfter
// faults, enforces the derivation budget exactly (the error fires on
// the instantiation after the budget is spent, so a completed run shows
// exactly MaxDerivations derivations), and checkpoints the clock and
// context every CheckInterval calls. clause is the source text of the
// clause being instantiated, for the error message.
//
// This is the engine's hot path: the cold branches live in outlined
// helpers so Derivation itself stays within the inlining budget, and
// governance costs a handful of compares per derivation.
func (g *Guard) Derivation(clause string) error {
	if g.fault.PanicAfter > 0 && g.derivations >= g.fault.PanicAfter {
		g.firePanic()
	}
	if g.limits.MaxDerivations > 0 && g.derivations >= g.limits.MaxDerivations {
		return g.derivationExhausted(clause)
	}
	g.derivations++
	g.sinceCheck++
	if g.sinceCheck >= CheckInterval {
		return g.Checkpoint()
	}
	return nil
}

// DerivationGrant is the amortized form of Derivation used by the
// engine's innermost loop: the engine reports the `used` derivations
// performed since the last grant, the guard settles them (firing any
// due fault, budget error, or checkpoint trip exactly as Derivation
// would), and returns how many further derivations may run before the
// next consultation — the distance to the nearest due event, capped at
// CheckInterval. The engine then only decrements a local counter per
// derivation. Usage may lag by up to one outstanding grant between
// consultations.
func (g *Guard) DerivationGrant(used int, clause string) (int, error) {
	g.derivations += used
	if g.fault.PanicAfter > 0 && g.derivations >= g.fault.PanicAfter {
		g.firePanic()
	}
	if g.limits.MaxDerivations > 0 && g.derivations >= g.limits.MaxDerivations {
		return 0, g.derivationExhausted(clause)
	}
	if err := g.Checkpoint(); err != nil {
		return 0, err
	}
	n := CheckInterval
	if g.limits.MaxDerivations > 0 {
		if r := g.limits.MaxDerivations - g.derivations; r < n {
			n = r
		}
	}
	if g.fault.PanicAfter > 0 {
		if r := g.fault.PanicAfter - g.derivations; r < n {
			n = r
		}
	}
	return n, nil
}

// Settle accounts `used` derivations that ran under an outstanding
// DerivationGrant without issuing a new grant. The engine calls it when
// a clause finishes, so the guard is exact at every clause boundary:
// Usage reports a true total, budget errors report an exact count, and
// a guard shared across runs (Enumerate) or forked for a parallel phase
// starts from the exact total instead of drifting by up to one
// CheckInterval batch per clause.
func (g *Guard) Settle(used int) { g.derivations += used }

func (g *Guard) firePanic() {
	panic(fmt.Sprintf("guard: injected fault after %d derivations", g.derivations))
}

func (g *Guard) derivationExhausted(clause string) error {
	return Errorf(ResourceExhausted, g.op,
		"derivation budget %d exceeded after exactly %d derivations (clause %s)",
		g.limits.MaxDerivations, g.derivations, clause)
}

// TryTuples reserves n newly materialized tuples against the tuple
// budget, erroring — without reserving — when the reservation would
// exceed it. With per-tuple reservations the budget is exact: a tripped
// run holds exactly MaxTuples derived tuples. Called once per stored
// tuple, so the error path is outlined to keep TryTuples inlinable.
func (g *Guard) TryTuples(n int) error {
	held := g.tuples + n
	if m := g.limits.MaxTuples; m > 0 && held > m {
		return g.tuplesExhausted(n)
	}
	g.tuples = held
	return nil
}

func (g *Guard) tuplesExhausted(n int) error {
	return Errorf(ResourceExhausted, g.op,
		"tuple budget %d exceeded (%d held, %d requested)", g.limits.MaxTuples, g.tuples, n)
}

// AtTupleLimit reports whether the tuple budget is fully reserved; the
// engine uses it to reject the next genuinely-new tuple before storing
// it.
func (g *Guard) AtTupleLimit() bool {
	return g.limits.MaxTuples > 0 && g.tuples >= g.limits.MaxTuples
}

// TakeOracleFault consumes and returns an injected oracle fault, or
// nil.
func (g *Guard) TakeOracleFault() error {
	err := g.fault.OracleErr
	g.fault.OracleErr = nil
	return err
}

// TakeTornWrite counts down an injected torn-write fault and reports
// whether the current WAL append should be torn (true exactly once, on
// the TornWriteAfter-th call).
func (g *Guard) TakeTornWrite() bool {
	if g.fault.TornWriteAfter == 0 {
		return false
	}
	g.fault.TornWriteAfter--
	return g.fault.TornWriteAfter == 0
}

// Usage reports the budget counters (for tests and diagnostics).
func (g *Guard) Usage() (derivations, tuples int) { return g.derivations, g.tuples }
