package guard

import "fmt"

// Code classifies an engine error at the public boundary. Callers
// branch on codes (via errors.As on *Error) rather than matching
// message strings.
type Code int

const (
	// OK is the zero code; no *Error carries it.
	OK Code = iota
	// Canceled: the caller's context was canceled mid-evaluation.
	Canceled
	// DeadlineExceeded: the context deadline or the WithTimeout
	// wall-clock budget expired.
	DeadlineExceeded
	// ResourceExhausted: a derivation, tuple, or enumeration-run budget
	// was spent.
	ResourceExhausted
	// ParseError: the program or goal text does not parse.
	ParseError
	// StratificationError: the program parses but is not a valid
	// stratified IDLOG program (negation/ID cycles, choice misuse,
	// arity conflicts).
	StratificationError
	// Internal: an engine invariant broke; a recovered panic converted
	// to an error, carrying the stratum and clause under evaluation.
	Internal
)

// String names the code in snake_case, matching the CLI diagnostics.
func (c Code) String() string {
	switch c {
	case OK:
		return "ok"
	case Canceled:
		return "canceled"
	case DeadlineExceeded:
		return "deadline_exceeded"
	case ResourceExhausted:
		return "resource_exhausted"
	case ParseError:
		return "parse_error"
	case StratificationError:
		return "stratification_error"
	case Internal:
		return "internal"
	}
	return fmt.Sprintf("code(%d)", int(c))
}

// Error is the engine's typed error: a Code for programmatic handling,
// the entry point that failed, a human-readable detail, and the
// underlying cause (context.Canceled, context.DeadlineExceeded, the
// enumeration budget error, ...) reachable through errors.Is/As.
type Error struct {
	// Code classifies the failure.
	Code Code
	// Op is the entry point that returned the error: "parse", "eval",
	// "enumerate", "query".
	Op string
	// Msg is the human-readable detail (budget, stratum, clause).
	Msg string
	// Err is the wrapped cause, or nil.
	Err error
}

// Error implements the error interface.
func (e *Error) Error() string {
	s := "idlog: " + e.Op + ": " + e.Code.String()
	if e.Msg != "" {
		s += ": " + e.Msg
	}
	if e.Err != nil {
		s += ": " + e.Err.Error()
	}
	return s
}

// Unwrap exposes the cause to errors.Is/As chains, so that
// errors.Is(err, context.Canceled) holds for cancellations.
func (e *Error) Unwrap() error { return e.Err }

// Errorf builds an *Error with a formatted message and no cause.
func Errorf(code Code, op, format string, args ...any) *Error {
	return &Error{Code: code, Op: op, Msg: fmt.Sprintf(format, args...)}
}

// WrapErr builds an *Error around a cause.
func WrapErr(code Code, op string, err error, msg string) *Error {
	return &Error{Code: code, Op: op, Msg: msg, Err: err}
}
