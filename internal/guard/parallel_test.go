package guard

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestGrantSettleExact covers the amortized-batch bugfix: derivations
// run under a grant but never followed by another grant (a clause that
// finishes mid-batch) must be settled so the count stays exact.
func TestGrantSettleExact(t *testing.T) {
	g := New(nil, Limits{MaxDerivations: 1000})
	n, err := g.DerivationGrant(0, "c")
	if err != nil {
		t.Fatal(err)
	}
	if n != CheckInterval {
		t.Fatalf("grant = %d, want %d", n, CheckInterval)
	}
	// The clause runs 10 of the granted derivations, then completes.
	g.Settle(10)
	if d, _ := g.Usage(); d != 10 {
		t.Fatalf("Usage after settle = %d, want exactly 10", d)
	}
	// A fresh engine (Enumerate starts one per run) consults again: the
	// ledger must carry the settled 10, not restart from 0.
	n, err = g.DerivationGrant(0, "c")
	if err != nil || n != CheckInterval {
		t.Fatalf("second grant = %d, %v", n, err)
	}
	g.Settle(n)
	if d, _ := g.Usage(); d != 10+CheckInterval {
		t.Fatalf("Usage = %d, want %d", d, 10+CheckInterval)
	}
}

// TestGrantBudgetExactAcrossRuns drives grants the way an enumeration
// walk does — many short runs sharing one guard — and checks the budget
// error fires after exactly MaxDerivations, reporting the exact count.
func TestGrantBudgetExactAcrossRuns(t *testing.T) {
	const max = 600 // not a CheckInterval multiple: the tail grant is short
	g := New(nil, Limits{MaxDerivations: max})
	total := 0
	for run := 0; ; run++ {
		if run > 100 {
			t.Fatalf("budget never tripped")
		}
		// Each run uses at most 7 derivations per grant cycle, like a
		// clause with a small body.
		n, err := g.DerivationGrant(0, "tc(X, Y) :- e(X, Y).")
		if err != nil {
			if total != max {
				t.Fatalf("tripped after %d derivations, want exactly %d", total, max)
			}
			var ge *Error
			if !errors.As(err, &ge) || ge.Code != ResourceExhausted {
				t.Fatalf("want ResourceExhausted, got %v", err)
			}
			if !strings.Contains(err.Error(), "exactly 600 derivations") {
				t.Fatalf("error does not report the exact count: %v", err)
			}
			return
		}
		use := n
		if use > 7 {
			use = 7
		}
		total += use
		g.Settle(use)
	}
}

// TestParallelReserveExact hammers the shared ledger from many
// goroutines: the sum of granted derivations never exceeds the budget,
// and after refunds the joined total equals what was actually used.
func TestParallelReserveExact(t *testing.T) {
	const max = 10_000
	g := New(nil, Limits{MaxDerivations: max})
	p := g.Fork()
	var used atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				n, err := p.Reserve(CheckInterval, "c")
				if err != nil {
					return
				}
				// Use an uneven share and refund the rest, but always
				// consume at least one derivation: a worker that refunds
				// its whole grant models no real engine state (workers
				// only reserve when they have pending derivations) and
				// can spin on the budget's tail forever once the
				// full-consuming workers have exited.
				u := n - w%3
				if u < 1 {
					u = 1
				}
				used.Add(int64(u))
				p.Refund(n - u)
			}
		}(w)
	}
	wg.Wait()
	p.Join()
	d, _ := g.Usage()
	if int64(d) != used.Load() {
		t.Fatalf("joined total %d != used %d", d, used.Load())
	}
	if d > max {
		t.Fatalf("ledger overshot the budget: %d > %d", d, max)
	}
	if _, err := p.Reserve(1, "c"); err == nil {
		t.Fatalf("exhausted ledger granted more work")
	}
}

// TestParallelFailStops checks first-error-wins and the stop signal.
func TestParallelFailStops(t *testing.T) {
	g := New(nil, Limits{})
	p := g.Fork()
	if p.Stopped() {
		t.Fatalf("fresh pool already stopped")
	}
	first := Errorf(ResourceExhausted, "eval", "first")
	p.Fail(first)
	p.Fail(Errorf(Internal, "eval", "second"))
	if !p.Stopped() {
		t.Fatalf("Fail did not raise the stop signal")
	}
	if p.Err() != first {
		t.Fatalf("Err = %v, want the first failure", p.Err())
	}
}

// TestParallelCheckpointConcurrent runs the lock-free checkpoint from
// many goroutines against a canceled context (run under -race).
func TestParallelCheckpointConcurrent(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g := New(ctx, Limits{})
	p := g.Fork()
	cancel()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := p.Checkpoint(); err == nil {
				p.Fail(Errorf(Internal, "eval", "checkpoint missed cancellation"))
			}
		}()
	}
	wg.Wait()
	if p.Err() != nil {
		t.Fatal(p.Err())
	}
}

// TestParallelPanicAfter checks the injected fault fires in Reserve.
func TestParallelPanicAfter(t *testing.T) {
	g := New(nil, Limits{})
	g.Inject(FailAfter(10))
	p := g.Fork()
	n, err := p.Reserve(CheckInterval, "c")
	if err != nil || n != 10 {
		t.Fatalf("capped grant = %d, %v; want 10, nil", n, err)
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("PanicAfter fault did not panic in Reserve")
		}
	}()
	_, _ = p.Reserve(1, "c")
}
