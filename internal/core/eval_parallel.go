package core

import (
	"context"
	"errors"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"

	"idlog/internal/analysis"
	"idlog/internal/guard"
	"idlog/internal/relation"
	"idlog/internal/value"
)

// This file implements the parallel semi-naive fixpoint. Each round of
// a stratum is split into tasks — one (clause, delta-position) pair per
// task, further sharded over the depth-0 literal's enumeration range —
// and the tasks are evaluated by a bounded worker pool against the
// round-start state of the relations. Workers only READ shared state
// (the work relations, materialized ID-relations, and earlier strata);
// all insertion happens afterwards in a single-threaded merge that
// visits tasks in their deterministic planning order. The model is a
// strict read-phase / merge-phase alternation: the WaitGroup barrier
// between the phases is the happens-before edge that makes the lazily
// built relation indexes (atomic copy-on-write) safe to probe from
// many workers at once.
//
// Why answers are byte-identical to sequential evaluation:
//   - The fixpoint SET is the same: both evaluators apply the same
//     monotone immediate-consequence operator under a fair schedule,
//     and every same-stratum literal is a delta position, so a tuple
//     first visible mid-round to the sequential engine is re-derived
//     from the next round's delta here. Strata are evaluated in the
//     same order, and negation/ID-literals read only earlier strata,
//     which are complete and identical in both modes.
//   - ID assignment is insertion-order independent: relation.Groups
//     presents group members in canonical sorted order and oracles
//     draw from the group's content, never from arrival order. Equal
//     sets therefore mean equal ID-relations, equal sampling, and
//     equal C3-equivalence results.
//   - Moreover the merge visits tasks in planning order and each
//     task's derivations arrive in enumeration order, so for a fixed
//     program the insertion order itself is invariant across worker
//     counts ≥ 2 (shard boundaries only cut the enumeration sequence;
//     concatenation restores it).
//
// Partition-parallel evaluation (Options.Partitions > 1) strengthens
// the data layout instead of just sharding ranges: a delta unit whose
// plan carries a partition key (plan.go choosePartition) becomes one
// task per partition, with the delta radix-partitioned on the key
// column and the probed relation's matching partition substituted at
// the probe depth. Partition-local probe indexes are built by whichever
// worker first probes the partition — in parallel, with no shared-index
// contention — and empty delta partitions never run, so unreached
// partitions never pay an index build at all. Determinism weakens by
// exactly one notch and no further: partitioning permutes the delta
// enumeration sequence (tuples are visited partition-by-partition
// instead of in delta order), so the *insertion order* differs from an
// unpartitioned run — but the per-round derivation SET is identical
// (the partition function covers the matches exactly: a probe key
// always pins the partition variable, so every match of a delta tuple
// lives in that tuple's partition), and every observable output —
// answer sets, ID assignment, Fingerprint, Derivations/Inserted/
// Iterations — is insertion-order independent, as argued above. Units
// without a partition key, and clause bodies containing ID-literals or
// negation, fall back to the range-sharded path; both kinds of task
// coexist in one round and merge in the same planning order.
//
// Governance: derivation budgets flow through a guard.Parallel ledger
// (atomic reserve/refund grants, exact after Join); the tuple budget
// stays exact because only the single-threaded merge stores tuples.
// The first failing worker raises the shared stop flag and its typed
// error wins; sibling workers drain cooperatively at the next grant or
// task boundary.

// errPoolStopped unwinds a worker when a sibling has already failed;
// the sibling's error is the one reported.
var errPoolStopped = errors.New("parallel pool stopped")

// minShard is the smallest depth-0 enumeration range worth splitting:
// below it, task dispatch overhead exceeds the join work.
const minShard = 16

// pTask is one unit of parallel work: clause ci with the delta
// relation substituted at position pos (-1 = seed pass), restricted to
// the [lo, hi) shard of the depth-0 enumeration range (hi = -1 means
// the whole range). A partitioned task additionally carries the
// partition-local probe relation substituted at partDepth and its
// partition index (partRel == nil marks a range-sharded task).
type pTask struct {
	ci        int
	pos       int
	lo, hi    int
	deltaRel  *relation.Relation
	partRel   *relation.Relation
	partDepth int
	partIdx   int
}

// pOut is one task's result: candidate head tuples in enumeration
// order (cloned out of worker scratch, deduplicated within the task
// and against the round-start relation) plus private counters.
type pOut struct {
	derived []value.Tuple
	stats   Stats
}

// pWorker is one evaluation goroutine: private compiled-clause copies
// (the per-literal scratch buffers are single-threaded), a runner
// bound to them, and a local slice of the shared derivation grant.
type pWorker struct {
	e       *engine
	pb      *guard.Parallel
	clauses []*compiledClause // private copies, indexed like the shared slice
	rn      runner
	slack   int    // derivations still allowed under the current grant
	cur     string // source text of the clause under evaluation (panic context)

	// Per-task state, rebound by runTask.
	out  *pOut
	full *relation.Relation  // round-start head relation (read-only here)
	seen map[string]struct{} // within-task dedup
}

// derive is the worker's leaf hook: account the derivation against the
// shared ledger, then collect genuinely new candidate tuples.
func (w *pWorker) derive(cc *compiledClause, _ []value.Value, head value.Tuple) error {
	if w.e.governed {
		if w.slack == 0 {
			if err := w.grant(cc); err != nil {
				return err
			}
		}
		w.slack--
	} else if w.out.stats.Derivations&1023 == 1023 && w.pb.Stopped() {
		// Ungoverned runs carry no budgets, but a sibling's internal
		// failure must still stop the pool promptly.
		return errPoolStopped
	}
	w.out.stats.Derivations++
	if w.full.Contains(head) {
		return nil
	}
	var buf [64]byte
	key := head.AppendKey(buf[:0])
	if _, dup := w.seen[string(key)]; dup {
		return nil
	}
	w.seen[string(key)] = struct{}{}
	w.out.derived = append(w.out.derived, head.Clone())
	return nil
}

// grant refreshes the worker's local derivation allowance from the
// shared ledger, checkpointing clock/context and honoring the stop
// flag — the parallel counterpart of Guard.DerivationGrant.
func (w *pWorker) grant(cc *compiledClause) error {
	if w.pb.Stopped() {
		return errPoolStopped
	}
	if err := w.pb.Checkpoint(); err != nil {
		return err
	}
	n, err := w.pb.Reserve(guard.CheckInterval, cc.srcText)
	if err != nil {
		return err
	}
	w.slack = n
	return nil
}

func (w *pWorker) runTask(t pTask, out *pOut) error {
	cc := w.clauses[t.ci]
	w.cur = cc.srcText
	w.out = out
	w.rn.stats = &out.stats
	w.rn.partRel, w.rn.partDepth = t.partRel, t.partDepth
	w.full = w.e.work[cc.headPred]
	clear(w.seen)
	// Label the task for CPU profiles: `idlog -pprof` (and idlogd's
	// /debug/pprof) then attribute time per stratum, clause, and
	// partition, which is how partition skew is diagnosed.
	part := "-"
	if t.partRel != nil {
		part = strconv.Itoa(t.partIdx)
	}
	var err error
	pprof.Do(context.Background(), pprof.Labels(
		"stratum", strconv.Itoa(w.e.g.Stratum()),
		"clause", cc.headPred,
		"partition", part,
	), func(context.Context) {
		err = w.rn.run(cc, t.pos, t.deltaRel, t.lo, t.hi)
	})
	return err
}

// loop pulls tasks off the shared counter until they run out or the
// pool stops. Panics are converted to pool failures (the sequential
// engine's recover lives on another goroutine), and unused grant slack
// is refunded so Join settles an exact count.
func (w *pWorker) loop(pb *guard.Parallel, tasks []pTask, outs []*pOut, next *atomic.Int64, wg *sync.WaitGroup) {
	defer wg.Done()
	defer func() {
		if r := recover(); r != nil {
			pb.Fail(guard.Errorf(guard.Internal, w.e.g.Op(),
				"panic in stratum %d (clause %s): %v", w.e.g.Stratum(), w.cur, r))
		}
		if w.e.governed && w.slack > 0 {
			pb.Refund(w.slack)
			w.slack = 0
		}
	}()
	for {
		if pb.Stopped() {
			return
		}
		i := int(next.Add(1)) - 1
		if i >= len(tasks) {
			return
		}
		out := &pOut{}
		outs[i] = out
		if err := w.runTask(tasks[i], out); err != nil {
			if err != errPoolStopped {
				pb.Fail(err)
			}
			return
		}
	}
}

// parallelFixpoint is seminaiveFixpoint with each round's evaluation
// fanned out over the worker pool and its insertions replayed through
// the deterministic ordered merge.
func (e *engine) parallelFixpoint(s *analysis.Stratum, sp *stratumPlan) error {
	clauses := sp.all // seed clauses first, delta-first variants after
	// Forfeit any outstanding sequential grant: Fork snapshots the
	// settled count and Join overwrites it, so spending pre-fork slack
	// afterwards could overshoot the budget.
	e.gslack = 0
	pb := e.g.Fork()
	defer pb.Join()

	nw := e.workers()
	workers := make([]*pWorker, nw)
	for i := range workers {
		w := &pWorker{e: e, pb: pb, seen: map[string]struct{}{}}
		w.clauses = make([]*compiledClause, len(clauses))
		for j, cc := range clauses {
			w.clauses[j] = cc.clone()
		}
		w.rn = runner{resolve: e.resolve, derive: w.derive, stream: e.opts.streaming()}
		workers[i] = w
	}

	runRound := func(tasks []pTask) []*pOut {
		outs := make([]*pOut, len(tasks))
		var next atomic.Int64
		var wg sync.WaitGroup
		n := nw
		if len(tasks) < n {
			n = len(tasks)
		}
		for i := 0; i < n; i++ {
			wg.Add(1)
			go workers[i].loop(pb, tasks, outs, &next, &wg)
		}
		wg.Wait()
		return outs
	}

	// merge replays every task's derivations in planning order —
	// single-threaded, so insertion order, index maintenance, and the
	// exact tuple budget behave exactly as in a sequential run. Sound
	// tuples from a failed round are still merged (partial models are
	// prefixes of the perfect model), with the round's error taking
	// precedence over a budget trip during the merge itself.
	merge := func(tasks []pTask, outs []*pOut, sink map[string]*relation.Relation) error {
		for i, t := range tasks {
			out := outs[i]
			if out == nil {
				continue
			}
			e.stats.Derivations += out.stats.Derivations
			e.stats.TuplesScanned += out.stats.TuplesScanned
			cc := clauses[t.ci]
			full := e.work[cc.headPred]
			for _, tup := range out.derived {
				if e.governed && e.g.AtTupleLimit() && !full.Contains(tup) {
					return e.g.TryTuples(1)
				}
				added, err := full.Insert(tup) // tup is the worker's private clone
				if err != nil {
					return err
				}
				if !added {
					continue
				}
				if e.governed {
					if err := e.g.TryTuples(1); err != nil {
						return err
					}
				}
				e.stats.Inserted++
				if sink != nil {
					sink[cc.headPred].Append(tup)
				}
			}
		}
		return nil
	}

	// plan appends the task shards for (ci, pos). Sharding applies only
	// when the depth-0 literal is a positive relational scan or
	// constant-key probe (at depth 0 nothing is bound yet, so probe
	// keys are all-constant); other head shapes run as one task.
	plan := func(ci, pos int, deltaRel *relation.Relation, tasks []pTask) []pTask {
		cc := clauses[ci]
		n := -1
		if len(cc.lits) > 0 {
			cl := &cc.lits[0]
			if cl.builtin == nil && !cl.neg {
				if rel, err := e.resolve(cl); err == nil {
					if pos == 0 {
						rel = deltaRel
					}
					if len(cl.probeCols) == 0 {
						n = rel.Len()
					} else {
						key := cl.keyBuf
						for i, a := range cl.probeArgs {
							key[i] = a.val
						}
						n = len(rel.Probe(cl.probeCols, key))
					}
				}
			}
		}
		if n < 0 {
			return append(tasks, pTask{ci: ci, pos: pos, lo: 0, hi: -1, deltaRel: deltaRel})
		}
		if n == 0 {
			return tasks // nothing to enumerate, nothing to derive
		}
		shards := nw
		if most := n / minShard; shards > most {
			shards = most
		}
		if shards < 1 {
			shards = 1
		}
		size := (n + shards - 1) / shards
		for lo := 0; lo < n; lo += size {
			hi := lo + size
			if hi > n {
				hi = n
			}
			tasks = append(tasks, pTask{ci: ci, pos: pos, lo: lo, hi: hi, deltaRel: deltaRel})
		}
		return tasks
	}

	finish := func(tasks []pTask, outs []*pOut, sink map[string]*relation.Relation) error {
		merr := merge(tasks, outs, sink)
		if err := pb.Err(); err != nil {
			return err
		}
		return merr
	}

	// Seed round: every clause once against the full relations. Only
	// recursive strata need the delta sinks for the rounds that follow.
	e.stats.Iterations++
	var delta map[string]*relation.Relation
	if s.Recursive {
		delta = map[string]*relation.Relation{}
		for _, p := range s.Preds {
			delta[p] = relation.NewDelta(p, e.work[p].Arity(), 0)
		}
	}
	var tasks []pTask
	for ci := 0; ci < sp.nseed; ci++ {
		tasks = plan(ci, -1, nil, tasks)
	}
	if err := finish(tasks, runRound(tasks), delta); err != nil {
		return err
	}
	if !s.Recursive {
		return nil
	}

	var recursive []int
	for ci := 0; ci < sp.nseed; ci++ {
		if len(sp.units[ci]) > 0 {
			recursive = append(recursive, ci)
		}
	}

	// Partition-parallel state. probeParts caches each probed relation's
	// partitioning across rounds, keyed by (predicate, key column): the
	// relation identity is stable for the whole stratum, so a cached
	// partitioning only needs Refresh (routing the tuples the previous
	// merge appended) instead of a rebuild. Both NewPartitioned and
	// Refresh run here in the single-threaded planning phase, with the
	// round's WaitGroup barrier ordering them against worker reads.
	nparts := e.partitions()
	type probeKey struct {
		pred string
		col  int
	}
	var probeParts map[probeKey]*relation.Partitioned
	getParts := func(pred string, col int) *relation.Partitioned {
		if probeParts == nil {
			probeParts = map[probeKey]*relation.Partitioned{}
		}
		k := probeKey{pred, col}
		if pp := probeParts[k]; pp != nil {
			pp.Refresh()
			return pp
		}
		pp := relation.NewPartitioned(e.work[pred], []int{col}, nparts)
		probeParts[k] = pp
		return pp
	}

	for {
		total := 0
		for _, d := range delta {
			total += d.Len()
		}
		if total == 0 || len(recursive) == 0 {
			return nil
		}
		if e.governed {
			if err := e.g.Checkpoint(); err != nil {
				return err
			}
		}
		e.stats.Iterations++
		next := map[string]*relation.Relation{}
		for _, p := range s.Preds {
			next[p] = relation.NewDelta(p, e.work[p].Arity(), delta[p].Len())
		}
		tasks = tasks[:0]
		partedRound := false
		for _, ci := range recursive {
			for _, u := range sp.units[ci] {
				cc := clauses[u.idx]
				d := delta[cc.lits[u.pos].pred]
				if d == nil || d.Len() == 0 {
					continue
				}
				if nparts > 1 && u.pos == 0 && u.part != nil {
					// Partitioned unit: one task per non-empty delta
					// partition, each probing the co-placed partition of
					// the probe relation. Skipped partitions are the
					// pruning win — they never build a probe index.
					spec := u.part
					dp := relation.NewPartitioned(d, []int{spec.deltaCol}, nparts)
					pr := getParts(cc.lits[spec.probeDepth].pred, spec.probeCol)
					if sk := dp.Skew(); sk > e.stats.PartitionSkew {
						e.stats.PartitionSkew = sk
					}
					if nparts > e.stats.Partitions {
						e.stats.Partitions = nparts
					}
					partedRound = true
					for k := 0; k < nparts; k++ {
						if dp.PartLen(k) == 0 {
							continue
						}
						tasks = append(tasks, pTask{ci: u.idx, pos: 0, lo: 0, hi: -1,
							deltaRel: dp.Part(k), partRel: pr.Part(k),
							partDepth: spec.probeDepth, partIdx: k})
					}
					continue
				}
				tasks = plan(u.idx, u.pos, d, tasks)
			}
		}
		if partedRound {
			e.stats.PartitionedRounds++
		}
		if err := finish(tasks, runRound(tasks), next); err != nil {
			return err
		}
		delta = next
	}
}
