package core

import (
	"fmt"
	"sort"

	"idlog/internal/relation"
	"idlog/internal/value"
)

// Fact is one ground EDB tuple addressed by predicate name. It is the
// unit of mutation for Database.Apply and the unit of durability for
// the write-ahead log.
type Fact struct {
	Pred  string
	Tuple value.Tuple
}

// String renders the fact as "pred(a, b)".
func (f Fact) String() string { return f.Pred + f.Tuple.String() }

// Delta records the effective change of one Apply: tuples that were
// actually removed and tuples that were actually added, keyed by
// predicate. Requested mutations that were no-ops (deleting an absent
// tuple, inserting a present one) do not appear — the incremental
// maintenance layer depends on that so it never propagates phantom
// changes.
type Delta struct {
	Inserts map[string][]value.Tuple
	Deletes map[string][]value.Tuple
}

// Empty reports whether the delta carries no effective change.
func (d *Delta) Empty() bool { return len(d.Inserts) == 0 && len(d.Deletes) == 0 }

// InsertCount returns the number of tuples effectively inserted.
func (d *Delta) InsertCount() int { return countTuples(d.Inserts) }

// DeleteCount returns the number of tuples effectively deleted.
func (d *Delta) DeleteCount() int { return countTuples(d.Deletes) }

// Preds returns the predicates touched by the delta, sorted.
func (d *Delta) Preds() []string {
	seen := map[string]bool{}
	for p := range d.Inserts {
		seen[p] = true
	}
	for p := range d.Deletes {
		seen[p] = true
	}
	out := make([]string, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

func countTuples(m map[string][]value.Tuple) int {
	n := 0
	for _, ts := range m {
		n += len(ts)
	}
	return n
}

// Apply atomically applies a batch of EDB mutations and returns the
// resulting database snapshot plus the effective delta. The receiver is
// never modified: touched relations are thawed copy-on-write clones,
// untouched relations are shared, and the returned database carries the
// receiver's frozen-ness (frozen in, frozen out), so a server can swap
// the result into its published snapshot slot directly.
//
// Within one batch, deletes apply before inserts: a fact present in
// both ends up present, recorded as a delete plus an insert when it
// pre-existed (the incremental layer treats that as remove-then-add,
// which is semantically the identity for EDB facts).
//
// The whole batch validates before any relation is cloned — an arity
// mismatch or a delete against an unknown predicate rejects the batch
// with no partial application. Inserts may create new relations.
func (db *Database) Apply(inserts, deletes []Fact) (*Database, *Delta, error) {
	arities := map[string]int{}
	arityOf := func(f Fact) (int, bool) {
		if a, ok := arities[f.Pred]; ok {
			return a, true
		}
		if r := db.rels[f.Pred]; r != nil {
			arities[f.Pred] = r.Arity()
			return r.Arity(), true
		}
		return 0, false
	}
	for _, f := range deletes {
		a, ok := arityOf(f)
		if !ok {
			return nil, nil, fmt.Errorf("apply: delete from unknown relation %s", f.Pred)
		}
		if len(f.Tuple) != a {
			return nil, nil, fmt.Errorf("apply: delete arity-%d tuple from arity-%d relation %s", len(f.Tuple), a, f.Pred)
		}
	}
	for _, f := range inserts {
		if a, ok := arityOf(f); ok {
			if len(f.Tuple) != a {
				return nil, nil, fmt.Errorf("apply: insert arity-%d tuple into arity-%d relation %s", len(f.Tuple), a, f.Pred)
			}
		} else {
			// First insert into a fresh relation fixes its arity for the
			// rest of the batch.
			arities[f.Pred] = len(f.Tuple)
		}
	}

	out := db.Clone()
	touched := map[string]*relation.Relation{}
	mutable := func(pred string) *relation.Relation {
		if r, ok := touched[pred]; ok {
			return r
		}
		var r *relation.Relation
		if src := db.rels[pred]; src != nil {
			r = src.Clone()
		} else {
			r = relation.New(pred, arities[pred])
		}
		touched[pred] = r
		out.rels[pred] = r
		return r
	}

	delta := &Delta{Inserts: map[string][]value.Tuple{}, Deletes: map[string][]value.Tuple{}}
	for _, f := range deletes {
		removed, err := mutable(f.Pred).Remove(f.Tuple)
		if err != nil {
			return nil, nil, fmt.Errorf("apply: %w", err)
		}
		if removed {
			delta.Deletes[f.Pred] = append(delta.Deletes[f.Pred], f.Tuple)
		}
	}
	for _, f := range inserts {
		added, err := mutable(f.Pred).Insert(f.Tuple)
		if err != nil {
			return nil, nil, fmt.Errorf("apply: %w", err)
		}
		if added {
			delta.Inserts[f.Pred] = append(delta.Inserts[f.Pred], f.Tuple)
		}
	}
	if db.frozen {
		out.Freeze()
	}
	return out, delta, nil
}
