package core

import (
	"container/list"
	"sync"
	"sync/atomic"

	"idlog/internal/analysis"
)

// PlanCache memoizes compiled stratum plans across evaluations of the
// same program over the same database snapshot, so a repeated query
// skips stratum compilation (cardinality estimation, selectivity
// ordering, delta-variant construction) entirely.
//
// Keying and invalidation. An entry is keyed by the analyzed program
// (pointer identity — *analysis.Info is immutable once built), the
// database's version stamp, and the planner toggle. Database.Add,
// SetRelation, and Apply restamp the database, so any mutation — in
// particular every Database.Apply — makes all previously cached plans
// unreachable: invalidation is by key, never in place. Version stamps
// are globally unique per content-changing operation, so equal keys
// imply plans compiled against identical cardinality snapshots; stale
// entries linger harmlessly until evicted by the LRU bound.
//
// Correctness. A cached plan can only differ from a fresh compile in
// the body orders the planner picked, and the planner picks only among
// eligibility-safe orders, which all compute the identical model (see
// Options.NoPlanner). Cardinality snapshots of later strata depend on
// the oracle's ID assignment, so a hit under a different oracle may
// reuse a plan a fresh compile would not have chosen — the answers are
// byte-identical regardless; only the join order (and thus
// TuplesScanned) may differ. Trace runs bypass the cache: provenance
// capture must see the analysis-order walk.
//
// A PlanCache is safe for concurrent use. Cached plans are immutable
// masters: every hit hands the engine fresh clones (per-clause scratch
// is single-threaded by design), so any number of concurrent
// evaluations may share one cache.
type PlanCache struct {
	mu    sync.Mutex
	cap   int
	items map[planKey]*list.Element
	order *list.List // front = most recently used

	hits   atomic.Uint64
	misses atomic.Uint64
}

// planKey identifies one (program, database snapshot, options) point.
// NoStreaming is deliberately absent: binds/checks are compiled
// unconditionally and the executor choice is made per run, so both
// executors share one cached plan.
type planKey struct {
	info      *analysis.Info
	dbVersion uint64
	planner   bool
}

type planEntry struct {
	key   planKey
	plans []*stratumPlan
}

// DefaultPlanCacheEntries bounds a default-constructed PlanCache. Eight
// entries cover the common server shape — one live database version,
// a handful of option combinations — while keeping worst-case retained
// memory at eight compiled programs.
const DefaultPlanCacheEntries = 8

// NewPlanCache returns a cache holding at most capacity entries
// (capacity <= 0 selects DefaultPlanCacheEntries), evicting the least
// recently used.
func NewPlanCache(capacity int) *PlanCache {
	if capacity <= 0 {
		capacity = DefaultPlanCacheEntries
	}
	return &PlanCache{
		cap:   capacity,
		items: map[planKey]*list.Element{},
		order: list.New(),
	}
}

// Stats returns the cumulative hit and miss counts.
func (p *PlanCache) Stats() (hits, misses uint64) {
	return p.hits.Load(), p.misses.Load()
}

// Len reports the number of cached plans.
func (p *PlanCache) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.order.Len()
}

// Purge drops every cached plan (counters are retained).
func (p *PlanCache) Purge() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.items = map[planKey]*list.Element{}
	p.order.Init()
}

// get returns the cached master plans for k, counting the lookup.
// Callers must clone before evaluating.
func (p *PlanCache) get(k planKey) ([]*stratumPlan, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	el, ok := p.items[k]
	if !ok {
		p.misses.Add(1)
		return nil, false
	}
	p.hits.Add(1)
	p.order.MoveToFront(el)
	return el.Value.(*planEntry).plans, true
}

// put publishes plans as the masters for k. The caller must be done
// mutating their scratch: from here on they are only ever cloned.
func (p *PlanCache) put(k planKey, plans []*stratumPlan) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if el, ok := p.items[k]; ok {
		el.Value.(*planEntry).plans = plans
		p.order.MoveToFront(el)
		return
	}
	p.items[k] = p.order.PushFront(&planEntry{key: k, plans: plans})
	for p.order.Len() > p.cap {
		last := p.order.Back()
		p.order.Remove(last)
		delete(p.items, last.Value.(*planEntry).key)
	}
}

// clone deep-copies the plan's clauses so the caller owns fresh scratch
// buffers; the static unit schedule and seed count are shared (they are
// never mutated after compilation).
func (sp *stratumPlan) clone() *stratumPlan {
	c := &stratumPlan{nseed: sp.nseed, units: sp.units}
	c.all = make([]*compiledClause, len(sp.all))
	for i, cc := range sp.all {
		c.all[i] = cc.clone()
	}
	return c
}
