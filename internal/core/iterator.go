package core

import (
	"fmt"

	"idlog/internal/relation"
	"idlog/internal/value"
)

// This file implements the streaming join executor: the recursive
// closure walk of eval.go rebuilt as a pipeline of composable get-next
// cursors, one per body literal, driven by an explicit depth loop. The
// pipeline is single-use — open positions a cursor under the current
// bindings, next pulls one satisfying tuple, and exhaustion pops back
// to the previous literal — so per-round intermediates are never
// materialized: a body instantiation lives only as the environment
// slots currently pinned by the cursor stack.
//
// The executor is byte-for-byte equivalent to the legacy walk:
//   - Enumeration order is identical. open snapshots exactly what the
//     recursive step snapshotted at the same moment (relation length
//     for scans, the index bucket for probes, the builtin's solutions),
//     and next yields in the same position order.
//   - Stats are identical. Scans and probes count their snapshot range
//     up front, exactly as stepScan did.
//   - Errors are identical, including the builtin wrapping.
// What changes is the evaluation of each tuple:
//   - Selection pushdown: repeated-variable checks (cl.checks) compare
//     positions of the candidate tuple directly, so the scan cursor
//     filters while refilling its block buffer and rejected tuples
//     never surface to the join loop.
//   - Projection pushdown: only live binds (cl.binds) are stored into
//     the environment; a variable read by nothing downstream costs
//     nothing per tuple.
// Trace runs force the legacy walk (provenance snapshots the whole
// environment, which projection pushdown deliberately leaves sparse).

// scanChunk is the scan cursor's refill granularity: small enough to
// stay resident in cache, large enough to amortize the per-call cost of
// Relation.Scan over disk-backed blocks.
const scanChunk = 256

type iterKind uint8

const (
	iterScan iterKind = iota
	iterProbe
	iterOnce // negation (relational or builtin): yields at most once
	iterBuiltin
)

// litIter is one literal's cursor. The zero value is open-able; cursors
// live in compiledClause.iters scratch and are re-opened in place, so a
// clause walk allocates nothing but its environment.
type litIter struct {
	kind iterKind
	cl   *compiledLit
	rel  *relation.Relation

	// Scan state: next refill position, snapshot end, and the buffer of
	// pre-filtered tuples (retained across opens for its capacity).
	pos, hi int
	buf     []value.Tuple
	bufIdx  int

	// Probe state: the index bucket slice and snapshot length.
	positions []int
	idx, n    int

	// Builtin state.
	sols   [][]value.Value
	solIdx int

	// iterOnce state: whether the single yield remains and succeeds.
	armed bool
}

// checksPass evaluates the repeated-variable selections against one
// candidate tuple (or builtin solution), no environment involved.
func checksPass(checks []checkPair, t []value.Value) bool {
	for _, c := range checks {
		if !t[c.pos].Equal(t[c.first]) {
			return false
		}
	}
	return true
}

// openIter positions the cursor for the literal at depth under the
// current environment. lo/hi carry the parallel shard bounds for the
// depth-0 literal (hi = -1 means unrestricted); deeper opens pass 0,-1.
func (rn *runner) openIter(cc *compiledClause, it *litIter, depth int, env []value.Value, deltaPos int, deltaRel *relation.Relation, lo, hi int) error {
	cl := &cc.lits[depth]
	it.cl = cl
	if cl.builtin != nil {
		args, mask := cl.argsBuf, cl.maskBuf
		for i, a := range cl.args {
			switch a.kind {
			case argConst:
				args[i] = a.val
				mask[i] = true
			case argBound:
				args[i] = env[a.slot]
				mask[i] = true
			default:
				args[i] = value.Value{}
				mask[i] = false
			}
		}
		sols, err := cl.builtin.Solve(args, mask)
		if err != nil {
			return fmt.Errorf("clause %s: %w", cc.src.Source, err)
		}
		if cl.neg {
			it.kind = iterOnce
			it.armed = len(sols) == 0
			return nil
		}
		it.kind = iterBuiltin
		it.sols, it.solIdx = sols, 0
		return nil
	}
	rel, err := rn.resolve(cl)
	if err != nil {
		return err
	}
	if depth == deltaPos {
		rel = deltaRel
	} else if rn.partRel != nil && depth == rn.partDepth {
		rel = rn.partRel
	}
	if cl.neg {
		// Negated literals are fully bound (safety), so probeArgs covers
		// every position and keyBuf has full arity.
		t := cl.keyBuf
		if len(t) != len(cl.args) {
			t = make(value.Tuple, len(cl.args))
		}
		for i, a := range cl.args {
			if a.kind == argConst {
				t[i] = a.val
			} else {
				t[i] = env[a.slot]
			}
		}
		it.kind = iterOnce
		it.armed = !rel.Contains(t)
		return nil
	}
	it.rel = rel
	if len(cl.probeCols) == 0 {
		if hi < 0 {
			lo, hi = 0, rel.Len()
		}
		rn.stats.TuplesScanned += hi - lo
		it.kind = iterScan
		it.pos, it.hi = lo, hi
		it.buf, it.bufIdx = it.buf[:0], 0
		return nil
	}
	key := cl.keyBuf
	for i, a := range cl.probeArgs {
		if a.kind == argConst {
			key[i] = a.val
		} else {
			key[i] = env[a.slot]
		}
	}
	// The positions slice is the index's own bucket; the snapshot of its
	// length keeps iteration well-defined if inserts append to it (see
	// stepScan for why appends are always other relations' heads).
	positions := rel.ProbeHint(cl.probeCols, key, cl.cardHint)
	n := len(positions)
	if hi >= 0 {
		positions, n = positions[lo:hi], hi-lo
	}
	rn.stats.TuplesScanned += n
	it.kind = iterProbe
	it.positions, it.idx, it.n = positions, 0, n
	return nil
}

// nextIter pulls the cursor's next satisfying tuple, binding its live
// variables into env, and reports whether one was produced.
func (rn *runner) nextIter(it *litIter, env []value.Value) bool {
	cl := it.cl
	switch it.kind {
	case iterOnce:
		ok := it.armed
		it.armed = false
		return ok
	case iterBuiltin:
		for it.solIdx < len(it.sols) {
			sol := it.sols[it.solIdx]
			it.solIdx++
			if !checksPass(cl.checks, sol) {
				continue
			}
			for _, b := range cl.binds {
				env[b.slot] = sol[b.pos]
			}
			return true
		}
		return false
	case iterProbe:
		for it.idx < it.n {
			t := it.rel.At(it.positions[it.idx])
			it.idx++
			if !checksPass(cl.checks, t) {
				continue
			}
			for _, b := range cl.binds {
				env[b.slot] = t[b.pos]
			}
			return true
		}
		return false
	default: // iterScan
		for {
			if it.bufIdx < len(it.buf) {
				t := it.buf[it.bufIdx]
				it.bufIdx++
				for _, b := range cl.binds {
					env[b.slot] = t[b.pos]
				}
				return true
			}
			if it.pos >= it.hi {
				return false
			}
			it.refill(cl)
		}
	}
}

// refill advances the scan cursor by one chunk, applying the pushed-down
// selections so the buffer holds only matching tuples. Scan streams
// block-at-a-time from disk-backed relations, so a chunked scan keeps
// the legacy walk's bounded-residency property.
func (it *litIter) refill(cl *compiledLit) {
	end := it.pos + scanChunk
	if end > it.hi {
		end = it.hi
	}
	it.buf, it.bufIdx = it.buf[:0], 0
	it.rel.Scan(it.pos, end, func(_ int, t value.Tuple) bool {
		if checksPass(cl.checks, t) {
			it.buf = append(it.buf, t)
		}
		return true
	})
	it.pos = end
}

// streamWalk is the executor's driver: an explicit open/next/pop loop
// over the cursor stack, replacing the legacy walk's recursion. The
// environment may arrive pre-seeded (head-bound rederivation) and is
// never cleared; compilation guarantees every slot read was bound
// earlier in the same walk or by the seed.
func (rn *runner) streamWalk(cc *compiledClause, env []value.Value, deltaPos int, deltaRel *relation.Relation, lo, hi int) error {
	last := len(cc.lits) - 1
	if last < 0 {
		return rn.deriveHead(cc, env)
	}
	if cc.iters == nil {
		cc.iters = make([]litIter, len(cc.lits))
	}
	iters := cc.iters
	if err := rn.openIter(cc, &iters[0], 0, env, deltaPos, deltaRel, lo, hi); err != nil {
		return err
	}
	depth := 0
	for depth >= 0 {
		if !rn.nextIter(&iters[depth], env) {
			depth--
			continue
		}
		if depth == last {
			if err := rn.deriveHead(cc, env); err != nil {
				return err
			}
			continue
		}
		depth++
		if err := rn.openIter(cc, &iters[depth], depth, env, deltaPos, deltaRel, 0, -1); err != nil {
			return err
		}
	}
	return nil
}

// deriveHead assembles the candidate head tuple in scratch and hands it
// to the derive hook (identical to the legacy walk's leaf step).
func (rn *runner) deriveHead(cc *compiledClause, env []value.Value) error {
	head := cc.headBuf
	for i, a := range cc.headArgs {
		if a.kind == argConst {
			head[i] = a.val
		} else {
			head[i] = env[a.slot]
		}
	}
	return rn.derive(cc, env, head)
}
