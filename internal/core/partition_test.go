package core

import (
	"strings"
	"testing"

	"idlog/internal/ast"
	"idlog/internal/parser"
	"idlog/internal/relation"
	"idlog/internal/value"
)

// cardOf builds a cardFn from a pred → estimate table (unknown: 1).
func cardOf(table map[string]float64) cardFn {
	return func(l *ast.Literal) float64 {
		if l.Atom == nil {
			return 0
		}
		if c, ok := table[l.Atom.Pred]; ok {
			return c
		}
		return 1
	}
}

// TestChoosePartition pins the planner's partition-key decision on the
// documented matrix: join-key found, largest-cardinality probe wins,
// and the conservative fallbacks (negation, ID-literals, no shared
// variable) return nil.
func TestChoosePartition(t *testing.T) {
	parse := func(src string) []*ast.Literal {
		t.Helper()
		prog, err := parser.Program(src)
		if err != nil {
			t.Fatal(err)
		}
		return prog.Clauses[0].Body
	}
	card := cardOf(map[string]float64{"e": 100, "f": 500})

	spec := choosePartition(parse(`h(X, Z) :- tc(X, Y), e(Y, Z).`), card)
	if spec == nil || spec.deltaCol != 1 || spec.probeDepth != 1 || spec.probeCol != 0 || spec.pvar != "Y" {
		t.Fatalf("tc ⋈ e: spec = %+v, want delta col 1 ⋈ e col 0 on Y", spec)
	}

	// The largest estimated probe relation wins the key choice.
	spec = choosePartition(parse(`h(X) :- t(X, Y), e(Y, Z), f(Y, W).`), card)
	if spec == nil || spec.probeDepth != 2 || spec.pvar != "Y" {
		t.Fatalf("largest-card probe: spec = %+v, want depth 2 (f)", spec)
	}

	for name, src := range map[string]string{
		"negation":      `h(X) :- t(X, Y), e(Y, Z), not g(Y).`,
		"id-literal":    `h(X) :- t(X, Y), g[1](Y, Z, 1).`,
		"no-shared-var": `h(X, Y) :- t(X), g(Y).`,
		"builtin-only":  `h(X, Y) :- t(X, Y), Y > 3.`,
		"single":        `h(X) :- t(X).`,
	} {
		if got := choosePartition(parse(src), card); got != nil {
			t.Fatalf("%s: spec = %+v, want nil (cross-partition fallback)", name, got)
		}
	}
}

// TestExplainPlanRendersPartitioning checks the "partition:" plan lines:
// present with a fan-out armed (key line for partitionable deltas, the
// fallback note otherwise), absent when partitioning is off.
func TestExplainPlanRendersPartitioning(t *testing.T) {
	info := mustAnalyze(t, `
		tc(X, Y) :- e(X, Y).
		tc(X, Z) :- tc(X, Y), e(Y, Z).
		node(X) :- e(X, _).
		hasout(X) :- e(X, _).
		iso(X) :- node(X), not hasout(X), node(X).
	`)
	db := NewDatabase()
	_ = db.AddAll("e", value.Ints(1, 2), value.Ints(2, 3), value.Ints(3, 1))

	out, err := ExplainPlan(info, db, Options{Partitions: 4, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "partition: 4 ways on Y (delta col 1 ⋈ e col 0)") {
		t.Fatalf("partition key line missing:\n%s", out)
	}

	off, err := ExplainPlan(info, db, Options{Partitions: 1, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(off, "partition:") {
		t.Fatalf("partition lines rendered with partitioning off:\n%s", off)
	}

	neg := mustAnalyze(t, `
		r(X) :- s(X).
		r(Y) :- r(X), e(X, Y), not bad(Y).
	`)
	ndb := NewDatabase()
	_ = ndb.Add("s", value.Ints(1))
	_ = ndb.AddAll("e", value.Ints(1, 2), value.Ints(2, 3))
	_ = ndb.Add("bad", value.Ints(3))
	nout, err := ExplainPlan(neg, ndb, Options{Partitions: 4, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(nout, "partition: none (cross-partition fallback: range-sharded)") {
		t.Fatalf("fallback line missing:\n%s", nout)
	}
}

// TestPartitionedStats checks the merged Stats surface: a partitioned
// run records the fan-out, the partitioned round count, and a sane skew
// ratio; an unpartitioned run records zeros.
func TestPartitionedStats(t *testing.T) {
	info := mustAnalyze(t, parallelPrograms)
	res, err := Eval(info, parallelDB(t), Options{Parallelism: 2, Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Partitions != 4 {
		t.Fatalf("Stats.Partitions = %d, want 4", res.Stats.Partitions)
	}
	if res.Stats.PartitionedRounds == 0 {
		t.Fatal("Stats.PartitionedRounds = 0, want > 0 for a recursive run")
	}
	if res.Stats.PartitionSkew < 1 {
		t.Fatalf("Stats.PartitionSkew = %v, want ≥ 1 (max/mean)", res.Stats.PartitionSkew)
	}
	seq, err := Eval(info, parallelDB(t), Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Stats.Partitions != 0 || seq.Stats.PartitionedRounds != 0 {
		t.Fatalf("sequential run recorded partition stats: %+v", seq.Stats)
	}
	if res.Stats.Inserted != seq.Stats.Inserted {
		t.Fatalf("inserted diverged: partitioned %d, sequential %d", res.Stats.Inserted, seq.Stats.Inserted)
	}
}

// TestPartitionPruningSkipsIndexBuilds is the single-core E19 metric in
// unit form: with the delta reaching only some partitions, the probe
// relation's unreached partitions never build a secondary index, so the
// process-wide indexed-tuple counter grows by less than a full-relation
// build per round.
func TestPartitionPruningSkipsIndexBuilds(t *testing.T) {
	info := mustAnalyze(t, `
		tc(X, Y) :- seed(X, Y).
		tc(X, Z) :- tc(X, Y), big(Y, Z).
	`)
	db := NewDatabase()
	_ = db.Add("seed", value.Strs("a0", "a1"))
	for i := 0; i < 400; i++ {
		_ = db.Add("big", value.Strs(
			"a"+string(rune('0'+i%10)), "b"+string(rune('0'+(i+1)%10))))
	}

	run := func(partitions int) uint64 {
		t.Helper()
		before := relation.IndexedTuplesTotal()
		if _, err := Eval(info, db, Options{Parallelism: 2, Partitions: partitions}); err != nil {
			t.Fatal(err)
		}
		return relation.IndexedTuplesTotal() - before
	}
	whole := run(1)
	pruned := run(8)
	if pruned >= whole {
		t.Fatalf("partition pruning built %d indexed tuples, unpartitioned %d — expected a reduction", pruned, whole)
	}
}
