package core

import (
	"fmt"
	"runtime"

	"idlog/internal/analysis"
	"idlog/internal/guard"
	"idlog/internal/relation"
	"idlog/internal/value"
)

// Options configures a single evaluation run.
type Options struct {
	// Oracle chooses ID-functions; nil defaults to relation.SortedOracle,
	// giving a deterministic canonical run.
	Oracle relation.Oracle
	// Naive disables semi-naive (delta) evaluation; each fixpoint round
	// re-evaluates every clause against the full relations. Used by the
	// E6 ablation benchmark.
	Naive bool
	// MaxDerivations aborts evaluation once the total number of body
	// instantiations exceeds this bound (0 = unlimited); a safety valve
	// for generated programs. Ignored when Guard is set — fold the
	// budget into the guard's limits instead.
	MaxDerivations int
	// Trace records, for every derived tuple, the clause and ground
	// body facts of its first derivation, enabling Result.Explain.
	// Costs memory proportional to the model. Trace forces sequential
	// evaluation (provenance capture is inherently ordered).
	Trace bool
	// NoStreaming disables the streaming get-next executor: clause
	// bodies are evaluated by the legacy recursive walk. The model,
	// insertion order, and statistics are identical either way (the
	// executor only changes how each body instantiation is enumerated
	// and which environment slots are materialized); this is the escape
	// hatch and the ablation baseline. Trace forces the legacy walk —
	// provenance capture snapshots the whole environment, which the
	// executor's projection pushdown deliberately leaves sparse.
	NoStreaming bool
	// NoPlanner disables the cost-based join planner: clause bodies are
	// evaluated in the analysis safety order and semi-naive deltas are
	// substituted in place instead of rotated to depth 0. The model is
	// identical either way (the planner only picks among safe orders);
	// this is the escape hatch and the ablation baseline.
	NoPlanner bool
	// PlanCache, when non-nil, memoizes compiled stratum plans across
	// evaluations keyed by (program, database version, planner toggle);
	// see PlanCache for the invalidation and correctness contract. A
	// fully successful run publishes its plans; a hit skips cardinality
	// estimation and stratum compilation. Trace runs bypass the cache.
	PlanCache *PlanCache
	// Parallelism bounds the worker pool of the semi-naive fixpoint:
	// each round's work is sharded across up to this many goroutines and
	// merged through a deterministic ordered reducer, so answer sets and
	// ID assignment are byte-identical to a sequential run. Zero (the
	// zero value) resolves to DefaultParallelism() — GOMAXPROCS clamped
	// to maxAutoParallelism — so parallel wins show up out of the box on
	// multi-core hardware; set 1 to force sequential evaluation. Values
	// < 0 (and Naive or Trace runs) also evaluate sequentially.
	Parallelism int
	// Partitions is the hash-partition fan-out of partition-parallel
	// evaluation: partitionable delta units (see plan.go choosePartition)
	// radix-partition their delta and probe relation by the join key into
	// this many partitions, each evaluated as one task with
	// partition-local probe indexes. Zero resolves to the worker count
	// when that exceeds 1, else 1; 1 disables partitioning (the
	// differential twin); values above maxPartitions clamp. Answer sets,
	// ID assignment, and fingerprints are byte-identical at every
	// setting. Partitioning applies only with the planner on (delta-first
	// variants); Naive and Trace runs ignore it.
	Partitions int
	// Guard governs the run (cancellation, deadlines, budgets, fault
	// injection). Nil builds a fresh guard carrying only
	// MaxDerivations. An Enumerate walk shares one guard across its
	// runs, so budgets span the whole walk.
	Guard *guard.Guard
}

func (o Options) oracle() relation.Oracle {
	if o.Oracle == nil {
		return relation.SortedOracle{}
	}
	return o.Oracle
}

// streaming reports whether the get-next executor is active; Trace
// forces the legacy walk (provenance reads the whole environment).
func (o Options) streaming() bool { return !o.NoStreaming && !o.Trace }

// StreamingEnabled reports whether these Options run the streaming
// get-next executor; exported for callers that mirror the choice into
// derived configurations (incremental CompileOptions, CLI renderers).
func (o Options) StreamingEnabled() bool { return o.streaming() }

func (o Options) guard() *guard.Guard {
	if o.Guard != nil {
		return o.Guard
	}
	return guard.New(nil, guard.Limits{MaxDerivations: o.MaxDerivations})
}

// Eval computes the perfect model of the analyzed program over db for
// the ID-function assignment drawn from opts.Oracle (Theorem 1: for a
// fixed assignment the stratified program has a unique perfect model,
// computed stratum by stratum as an iterated minimal model).
//
// Eval degrades gracefully under governance: when the run's guard trips
// (cancellation, deadline, budget) the partially computed model is
// returned alongside the typed error, marked Incomplete with
// CompletedStrata set. Because strata are evaluated in dependency order
// and negation only consults earlier strata, every tuple of a partial
// model has a sound derivation — the partial model is a prefix of the
// perfect model for the same oracle. Engine panics are recovered and
// converted to guard.Internal errors carrying the stratum and clause
// under evaluation.
func Eval(info *analysis.Info, db *Database, opts Options) (res *Result, err error) {
	g := opts.guard()
	e := &engine{info: info, opts: opts, g: g, governed: g.Active(),
		work: map[string]*relation.Relation{}, idrels: map[string]*relation.Relation{}}
	if opts.Trace {
		e.prov = map[string]provEntry{}
	}
	defer func() {
		if r := recover(); r != nil {
			ierr := guard.Errorf(guard.Internal, g.Op(),
				"panic in stratum %d (clause %s): %v", g.Stratum(), e.curClause, r)
			res, err = e.partial(ierr), ierr
		}
	}()
	// Input relations: use the database's, or empty ones when absent.
	for p := range info.EDB {
		r := db.Relation(p)
		if r == nil {
			r = relation.New(p, info.Arity[p])
		} else if r.Arity() != info.Arity[p] {
			return nil, fmt.Errorf("eval: input relation %s has arity %d, program expects %d", p, r.Arity(), info.Arity[p])
		}
		e.work[p] = r
	}
	for p := range info.IDB {
		e.work[p] = relation.New(p, info.Arity[p])
	}
	// Consult the plan cache: a hit hands each stratum a fresh clone of
	// its cached plan; a miss collects this run's plans for publication.
	e.plans = make([]*stratumPlan, len(info.Strata))
	pc := opts.PlanCache
	if opts.Trace {
		pc = nil
	}
	var pcKey planKey
	if pc != nil {
		pcKey = planKey{info: info, dbVersion: db.Version(), planner: opts.planner()}
		if cached, ok := pc.get(pcKey); ok {
			for i := range cached {
				e.plans[i] = cached[i].clone()
			}
			pc = nil // already published; this run only consumes
		}
	}
	for i, s := range info.Strata {
		if e.governed {
			if err := e.g.StartStratum(i); err != nil {
				return e.partial(err), err
			}
		}
		if err := e.evalStratum(i, s); err != nil {
			return e.partial(err), err
		}
		e.completed = i + 1
	}
	if pc != nil {
		// Publish only on full success: a tripped run may hold plans for
		// a prefix of the strata.
		pc.put(pcKey, e.plans)
	}
	return &Result{rels: e.work, idrels: e.idrels, Stats: e.stats, prov: e.prov,
		CompletedStrata: e.completed}, nil
}

type engine struct {
	info     *analysis.Info
	opts     Options
	g        *guard.Guard
	governed bool
	work     map[string]*relation.Relation
	idrels   map[string]*relation.Relation
	stats    Stats
	prov     map[string]provEntry
	// plans holds the per-stratum compiled plans — cache-hit clones or
	// the plans compiled by this run (nil slots compile on demand; a nil
	// slice, as in EvalStrata, disables collection entirely).
	plans []*stratumPlan
	// completed counts fully evaluated strata; curClause is the source
	// of the clause being instantiated (panic/error context).
	completed int
	curClause string
	// gslack and gused amortize guard consultations on the derivation
	// hot path: gslack derivations may still run under the current
	// DerivationGrant, gused have run and await settlement.
	gslack int
	gused  int
}

// partial packages the work done so far as an Incomplete result with
// the triggering error attached.
func (e *engine) partial(cause error) *Result {
	return &Result{rels: e.work, idrels: e.idrels, Stats: e.stats, prov: e.prov,
		Incomplete: true, CompletedStrata: e.completed, Err: cause}
}

func (e *engine) evalStratum(si int, s *analysis.Stratum) error {
	// Materialize the ID-relations this stratum references; every base
	// relation is complete by now (stratification guarantees it).
	for _, need := range s.IDNeeds {
		base, ok := e.work[need.Pred]
		if !ok {
			return fmt.Errorf("eval: ID-relation over unknown predicate %s", need.Pred)
		}
		if e.governed {
			if ferr := e.g.TakeOracleFault(); ferr != nil {
				return guard.WrapErr(guard.Internal, e.g.Op(), ferr,
					fmt.Sprintf("oracle failed materializing %s", need.Key()))
			}
		}
		idr, err := relation.MaterializeIDBounded(base, need.Key(), need.Group, e.opts.oracle(), need.Bound)
		if err != nil {
			return err
		}
		e.idrels[need.Key()] = idr
		e.stats.IDRelations++
		// ID-relation rows count against the tuple budget at block
		// granularity (the block is already materialized; derived
		// tuples below are exact).
		if e.governed {
			if err := e.g.TryTuples(idr.Len()); err != nil {
				return err
			}
		}
	}

	inStratum := map[string]bool{}
	for _, p := range s.Preds {
		inStratum[p] = true
	}
	// Compile the stratum's evaluation plan: with the planner on, bodies
	// are selectivity-ordered under a cardinality snapshot taken now
	// (earlier strata are complete, ID-relations just materialized) and
	// recursive clauses get delta-first variants. A plan-cache hit
	// pre-populated e.plans[si] and skips compilation entirely.
	var sp *stratumPlan
	if e.plans != nil {
		sp = e.plans[si]
	}
	if sp == nil {
		card := stratumCard(s, inStratum, e.work, e.idrels)
		var err error
		sp, err = compileStratumPlan(s, func(p string) bool { return inStratum[p] }, card, !e.opts.planner())
		if err != nil {
			return err
		}
		if e.plans != nil {
			e.plans[si] = sp
		}
	}
	if e.opts.Naive {
		return e.naiveFixpoint(sp.all[:sp.nseed])
	}
	// The parallel fixpoint also hosts partition-parallel evaluation, so
	// it is entered whenever either axis exceeds 1: partitions with a
	// single worker still prune index builds (measurable on one core).
	if (e.workers() > 1 || e.partitions() > 1) && !e.opts.Trace {
		return e.parallelFixpoint(s, sp)
	}
	return e.seminaiveFixpoint(s, sp)
}

// maxAutoParallelism caps the GOMAXPROCS-derived default worker count:
// beyond it the single-threaded merge phase dominates and extra
// workers only contend. Explicit Parallelism settings are not clamped.
const maxAutoParallelism = 8

// maxPartitions caps the partition fan-out: each partitioned unit pays
// one task and one position list per partition and round, so an
// absurd setting would drown the join work in bookkeeping.
const maxPartitions = 64

// DefaultParallelism is the worker count used when Options.Parallelism
// is unset: runtime.GOMAXPROCS(0) clamped to maxAutoParallelism.
func DefaultParallelism() int {
	n := runtime.GOMAXPROCS(0)
	if n > maxAutoParallelism {
		n = maxAutoParallelism
	}
	if n < 1 {
		n = 1
	}
	return n
}

// EffectiveParallelism resolves the worker count these Options run
// with (≥ 1): the explicit Parallelism, or DefaultParallelism() when
// unset.
func (o Options) EffectiveParallelism() int {
	n := o.Parallelism
	if n == 0 {
		n = DefaultParallelism()
	}
	if n > 1 {
		return n
	}
	return 1
}

// EffectivePartitions resolves the partition fan-out these Options run
// with (≥ 1): unset follows the worker count, so multi-core runs
// partition by default and sequential runs stay unpartitioned unless
// asked; explicit values clamp to maxPartitions.
func (o Options) EffectivePartitions() int {
	n := o.Partitions
	if n == 0 {
		if w := o.EffectiveParallelism(); w > 1 {
			n = w
		} else {
			n = 1
		}
	}
	if n > maxPartitions {
		n = maxPartitions
	}
	if n < 1 {
		n = 1
	}
	return n
}

// workers resolves the effective parallelism (≥ 1).
func (e *engine) workers() int { return e.opts.EffectiveParallelism() }

// partitions resolves the effective partition fan-out (≥ 1).
func (e *engine) partitions() int { return e.opts.EffectivePartitions() }

// naiveFixpoint repeatedly evaluates every clause against the full
// relations until no clause derives a new tuple.
func (e *engine) naiveFixpoint(clauses []*compiledClause) error {
	for {
		if e.governed {
			if err := e.g.Checkpoint(); err != nil {
				return err
			}
		}
		e.stats.Iterations++
		inserted := 0
		for _, cc := range clauses {
			n, err := e.evalClause(cc, -1, nil, e.work[cc.headPred])
			if err != nil {
				return err
			}
			inserted += n
		}
		if inserted == 0 {
			return nil
		}
	}
}

// seminaiveFixpoint performs one naive round to seed the stratum, then
// iterates only the recursive clauses' delta units: each pass evaluates
// one unit per recursive body position, with the delta position reading
// the previous round's newly derived tuples (via the planner's
// delta-first variant clause when available, in place otherwise).
func (e *engine) seminaiveFixpoint(s *analysis.Stratum, sp *stratumPlan) error {
	clauses := sp.all[:sp.nseed]
	e.stats.Iterations++
	if !s.Recursive {
		// A non-recursive stratum reaches fixpoint in its seed round:
		// skip the delta bookkeeping entirely.
		for _, cc := range clauses {
			if _, err := e.evalClause(cc, -1, nil, e.work[cc.headPred]); err != nil {
				return err
			}
		}
		return nil
	}
	// Deltas are append-only: the derive hook feeds them exactly the
	// tuples the full relation reported new, so they need no duplicate
	// checking and skip the primary hash table entirely.
	delta := map[string]*relation.Relation{}
	for _, p := range s.Preds {
		delta[p] = relation.NewDelta(p, e.work[p].Arity(), 0)
	}
	for _, cc := range clauses {
		if _, err := e.evalClause(cc, -1, delta[cc.headPred], e.work[cc.headPred]); err != nil {
			return err
		}
	}
	var recursive []int
	for ci := range clauses {
		if len(sp.units[ci]) > 0 {
			recursive = append(recursive, ci)
		}
	}
	for {
		total := 0
		for _, d := range delta {
			total += d.Len()
		}
		if total == 0 || len(recursive) == 0 {
			return nil
		}
		if e.governed {
			if err := e.g.Checkpoint(); err != nil {
				return err
			}
		}
		e.stats.Iterations++
		next := map[string]*relation.Relation{}
		for _, p := range s.Preds {
			// The previous round's delta size is the best available prior
			// for this round's.
			next[p] = relation.NewDelta(p, e.work[p].Arity(), delta[p].Len())
		}
		for _, ci := range recursive {
			for _, u := range sp.units[ci] {
				// Substitute the delta relation at exactly one recursive
				// position; other positions read the full relations
				// (which already include the delta).
				cc := sp.all[u.idx]
				d := delta[cc.lits[u.pos].pred]
				if d == nil || d.Len() == 0 {
					continue
				}
				if _, err := e.evalClauseDelta(cc, u.pos, d, next[cc.headPred], e.work[cc.headPred]); err != nil {
					return err
				}
			}
		}
		delta = next
	}
}

// resolve returns the relation a compiled literal reads.
func (e *engine) resolve(cl *compiledLit) (*relation.Relation, error) {
	if cl.isID {
		r, ok := e.idrels[cl.idKey]
		if !ok {
			return nil, fmt.Errorf("eval: ID-relation %s not materialized", cl.idKey)
		}
		return r, nil
	}
	r, ok := e.work[cl.pred]
	if !ok {
		return nil, fmt.Errorf("eval: unknown predicate %s", cl.pred)
	}
	return r, nil
}

// evalClause evaluates cc against the current relations. New head tuples
// are inserted into full; when deltaSink is non-nil they are also added
// there (seeding semi-naive). It returns the number of new tuples.
func (e *engine) evalClause(cc *compiledClause, _ int, deltaSink, full *relation.Relation) (int, error) {
	return e.run(cc, -1, nil, deltaSink, full)
}

// evalClauseDelta is one semi-naive pass: the literal at deltaPos reads
// deltaRel instead of its full relation.
func (e *engine) evalClauseDelta(cc *compiledClause, deltaPos int, deltaRel, deltaSink, full *relation.Relation) (int, error) {
	return e.run(cc, deltaPos, deltaRel, deltaSink, full)
}

func (e *engine) run(cc *compiledClause, deltaPos int, deltaRel, deltaSink, full *relation.Relation) (int, error) {
	inserted := 0
	e.curClause = cc.srcText
	rn := runner{resolve: e.resolve, stats: &e.stats, stream: e.opts.streaming()}
	rn.derive = func(cc *compiledClause, env []value.Value, head value.Tuple) error {
		if e.governed {
			// Amortized governance: consult the guard only when the
			// current grant is spent; in between, one decrement.
			if e.gslack == 0 {
				n, err := e.g.DerivationGrant(e.gused, cc.srcText)
				e.gused = 0
				if err != nil {
					return err
				}
				e.gslack = n
			}
			e.gslack--
			e.gused++
		}
		e.stats.Derivations++
		// At the tuple limit, reject a genuinely new tuple before
		// storing it so a tripped run holds exactly the budget.
		// Duplicates fall through: they cost no memory and
		// InsertShared ignores them.
		if e.governed && e.g.AtTupleLimit() && !full.Contains(head) {
			return e.g.TryTuples(1)
		}
		stored, err := full.InsertShared(head)
		if err != nil {
			return err
		}
		if stored != nil {
			if e.governed {
				if err := e.g.TryTuples(1); err != nil {
					return err
				}
			}
			inserted++
			e.stats.Inserted++
			e.recordProvenance(cc, env, stored)
			if deltaSink != nil {
				deltaSink.Append(stored)
			}
		}
		return nil
	}
	err := rn.run(cc, deltaPos, deltaRel, 0, -1)
	if e.governed && e.gused > 0 {
		// Settle the outstanding amortized batch so the guard is exact at
		// clause boundaries. Without this, derivations run under the last
		// grant were never accounted: Usage underreported, and a guard
		// shared across runs (Enumerate builds a fresh engine per run, so
		// gused restarts at zero) could overshoot MaxDerivations by up to
		// one CheckInterval batch per run.
		e.g.Settle(e.gused)
		e.gused = 0
	}
	return inserted, err
}

// runner executes the join walk of one clause. There is exactly one per
// goroutine: the sequential engine builds one per clause run, and every
// parallel worker owns one bound to its private compiled-clause copies
// (the compiled scratch buffers are single-threaded by design). The
// walk is pure enumeration — each complete body instantiation hands the
// candidate head tuple (scratch; clone to retain) to the derive hook,
// which carries all mutable policy: governance, dedup, insertion. The
// resolve hook maps a compiled literal to the relation it reads, so the
// same walk serves full evaluation (engine state) and incremental
// maintenance (a view's relation maps).
type runner struct {
	resolve func(cl *compiledLit) (*relation.Relation, error)
	stats   *Stats
	derive  func(cc *compiledClause, env []value.Value, head value.Tuple) error
	// stream selects the get-next executor (iterator.go) over the
	// legacy recursive walk below. Both enumerate instantiations in
	// the same order with the same statistics; Trace requires the
	// legacy walk (see Options.NoStreaming).
	stream bool
	// partRel, when non-nil, substitutes for the relation the literal
	// at depth partDepth reads — the partition-local probe relation of
	// a partitioned task (eval_parallel.go). partDepth is never 0 in a
	// partitioned task (depth 0 is the delta), so it cannot collide
	// with the delta substitution.
	partRel   *relation.Relation
	partDepth int
}

// run walks cc with the delta relation substituted at deltaPos (-1 for
// none). lo/hi restrict the depth-0 literal's enumeration range to
// [lo, hi) — the parallel shard bounds; hi = -1 means unrestricted.
func (rn *runner) run(cc *compiledClause, deltaPos int, deltaRel *relation.Relation, lo, hi int) error {
	env := make([]value.Value, cc.nslots)
	return rn.walk(cc, env, deltaPos, deltaRel, lo, hi)
}

// walk is run with a caller-provided environment, which may be
// pre-seeded (head-bound rederivation probes seed the head slots from a
// candidate tuple before walking the body). The env may be reused
// across walks without clearing: compilation guarantees every slot read
// was bound earlier in the same walk or by the seed.
func (rn *runner) walk(cc *compiledClause, env []value.Value, deltaPos int, deltaRel *relation.Relation, lo, hi int) error {
	if rn.stream {
		return rn.streamWalk(cc, env, deltaPos, deltaRel, lo, hi)
	}
	var rec func(depth int) error
	rec = func(depth int) error {
		if depth == len(cc.lits) {
			head := cc.headBuf
			for i, a := range cc.headArgs {
				if a.kind == argConst {
					head[i] = a.val
				} else {
					head[i] = env[a.slot]
				}
			}
			return rn.derive(cc, env, head)
		}
		cl := &cc.lits[depth]
		if cl.builtin != nil {
			return rn.stepBuiltin(cc, cl, env, depth, rec)
		}
		if cl.neg {
			return rn.stepNegated(cl, env, depth, rec)
		}
		rel, err := rn.resolve(cl)
		if err != nil {
			return err
		}
		if depth == deltaPos {
			rel = deltaRel
		} else if rn.partRel != nil && depth == rn.partDepth {
			rel = rn.partRel
		}
		if depth == 0 {
			return rn.stepScan(cl, rel, env, depth, lo, hi, rec)
		}
		return rn.stepScan(cl, rel, env, depth, 0, -1, rec)
	}
	return rec(0)
}

// stepScan matches a positive relational literal by probing the indexed
// columns and binding the rest. A non-negative hi restricts enumeration
// to the [lo, hi) slice of the scan (or of the probed index bucket) —
// the parallel evaluator's shard bounds.
func (rn *runner) stepScan(cl *compiledLit, rel *relation.Relation, env []value.Value, depth, lo, hi int, rec func(int) error) error {
	match := func(t value.Tuple) error {
		ok := true
		for pos, a := range cl.args {
			switch a.kind {
			case argBind:
				env[a.slot] = t[pos]
			case argCheck:
				if !t[pos].Equal(env[a.slot]) {
					ok = false
				}
			}
			if !ok {
				break
			}
		}
		if !ok {
			return nil
		}
		return rec(depth + 1)
	}
	if len(cl.probeCols) == 0 {
		// Scan streams block-at-a-time from disk-backed relations, so a
		// full scan never materializes the relation in memory.
		if hi < 0 {
			lo, hi = 0, rel.Len()
		}
		rn.stats.TuplesScanned += hi - lo
		var merr error
		rel.Scan(lo, hi, func(_ int, t value.Tuple) bool {
			merr = match(t)
			return merr == nil
		})
		return merr
	}
	key := cl.keyBuf
	for i, a := range cl.probeArgs {
		if a.kind == argConst {
			key[i] = a.val
		} else {
			key[i] = env[a.slot]
		}
	}
	// Iterate index positions directly to avoid materializing the
	// candidate slice. The positions slice is the index's own bucket
	// and must not be mutated; inserts during iteration may append to
	// it, but appended tuples are new head derivations of *other*
	// relations (a clause never inserts into a relation it scans in the
	// same instantiation path — recursive clauses read delta copies), so
	// a snapshot of the length keeps iteration well-defined.
	positions := rel.ProbeHint(cl.probeCols, key, cl.cardHint)
	n := len(positions)
	if hi >= 0 {
		positions, n = positions[lo:hi], hi-lo
	}
	rn.stats.TuplesScanned += n
	for i := 0; i < n; i++ {
		if err := match(rel.At(positions[i])); err != nil {
			return err
		}
	}
	return nil
}

// stepNegated checks a fully-bound negated relational literal.
func (rn *runner) stepNegated(cl *compiledLit, env []value.Value, depth int, rec func(int) error) error {
	rel, err := rn.resolve(cl)
	if err != nil {
		return err
	}
	t := make(value.Tuple, len(cl.args))
	for i, a := range cl.args {
		if a.kind == argConst {
			t[i] = a.val
		} else {
			t[i] = env[a.slot]
		}
	}
	if rel.Contains(t) {
		return nil
	}
	return rec(depth + 1)
}

// stepBuiltin evaluates an interpreted literal by enumerating the
// solutions of its relation under the current bindings.
func (rn *runner) stepBuiltin(cc *compiledClause, cl *compiledLit, env []value.Value, depth int, rec func(int) error) error {
	args, mask := cl.argsBuf, cl.maskBuf
	for i, a := range cl.args {
		switch a.kind {
		case argConst:
			args[i] = a.val
			mask[i] = true
		case argBound:
			args[i] = env[a.slot]
			mask[i] = true
		default:
			args[i] = value.Value{}
			mask[i] = false
		}
	}
	sols, err := cl.builtin.Solve(args, mask)
	if err != nil {
		return fmt.Errorf("clause %s: %w", cc.src.Source, err)
	}
	if cl.neg {
		if len(sols) == 0 {
			return rec(depth + 1)
		}
		return nil
	}
	for _, sol := range sols {
		ok := true
		for i, a := range cl.args {
			switch a.kind {
			case argBind:
				env[a.slot] = sol[i]
			case argCheck:
				if !sol[i].Equal(env[a.slot]) {
					ok = false
				}
			}
			if !ok {
				break
			}
		}
		if !ok {
			continue
		}
		if err := rec(depth + 1); err != nil {
			return err
		}
	}
	return nil
}
