package core

import (
	"fmt"

	"idlog/internal/analysis"
	"idlog/internal/relation"
	"idlog/internal/value"
)

// Options configures a single evaluation run.
type Options struct {
	// Oracle chooses ID-functions; nil defaults to relation.SortedOracle,
	// giving a deterministic canonical run.
	Oracle relation.Oracle
	// Naive disables semi-naive (delta) evaluation; each fixpoint round
	// re-evaluates every clause against the full relations. Used by the
	// E6 ablation benchmark.
	Naive bool
	// MaxDerivations aborts evaluation once the total number of body
	// instantiations exceeds this bound (0 = unlimited); a safety valve
	// for generated programs.
	MaxDerivations int
	// Trace records, for every derived tuple, the clause and ground
	// body facts of its first derivation, enabling Result.Explain.
	// Costs memory proportional to the model.
	Trace bool
}

func (o Options) oracle() relation.Oracle {
	if o.Oracle == nil {
		return relation.SortedOracle{}
	}
	return o.Oracle
}

// Eval computes the perfect model of the analyzed program over db for
// the ID-function assignment drawn from opts.Oracle (Theorem 1: for a
// fixed assignment the stratified program has a unique perfect model,
// computed stratum by stratum as an iterated minimal model).
func Eval(info *analysis.Info, db *Database, opts Options) (*Result, error) {
	e := &engine{info: info, opts: opts, work: map[string]*relation.Relation{}, idrels: map[string]*relation.Relation{}}
	if opts.Trace {
		e.prov = map[string]provEntry{}
	}
	// Input relations: use the database's, or empty ones when absent.
	for p := range info.EDB {
		r := db.Relation(p)
		if r == nil {
			r = relation.New(p, info.Arity[p])
		} else if r.Arity() != info.Arity[p] {
			return nil, fmt.Errorf("eval: input relation %s has arity %d, program expects %d", p, r.Arity(), info.Arity[p])
		}
		e.work[p] = r
	}
	for p := range info.IDB {
		e.work[p] = relation.New(p, info.Arity[p])
	}
	for _, s := range info.Strata {
		if err := e.evalStratum(s); err != nil {
			return nil, err
		}
	}
	return &Result{rels: e.work, idrels: e.idrels, Stats: e.stats, prov: e.prov}, nil
}

type engine struct {
	info   *analysis.Info
	opts   Options
	work   map[string]*relation.Relation
	idrels map[string]*relation.Relation
	stats  Stats
	prov   map[string]provEntry
}

func (e *engine) evalStratum(s *analysis.Stratum) error {
	// Materialize the ID-relations this stratum references; every base
	// relation is complete by now (stratification guarantees it).
	for _, need := range s.IDNeeds {
		base, ok := e.work[need.Pred]
		if !ok {
			return fmt.Errorf("eval: ID-relation over unknown predicate %s", need.Pred)
		}
		idr, err := relation.MaterializeIDBounded(base, need.Key(), need.Group, e.opts.oracle(), need.Bound)
		if err != nil {
			return err
		}
		e.idrels[need.Key()] = idr
		e.stats.IDRelations++
	}

	inStratum := map[string]bool{}
	for _, p := range s.Preds {
		inStratum[p] = true
	}
	var compiled []*compiledClause
	for _, oc := range s.Clauses {
		cc, err := compileClause(oc, func(p string) bool { return inStratum[p] })
		if err != nil {
			return err
		}
		compiled = append(compiled, cc)
	}
	if e.opts.Naive {
		return e.naiveFixpoint(compiled)
	}
	return e.seminaiveFixpoint(s, compiled)
}

// naiveFixpoint repeatedly evaluates every clause against the full
// relations until no clause derives a new tuple.
func (e *engine) naiveFixpoint(clauses []*compiledClause) error {
	for {
		e.stats.Iterations++
		inserted := 0
		for _, cc := range clauses {
			n, err := e.evalClause(cc, -1, nil, e.work[cc.headPred])
			if err != nil {
				return err
			}
			inserted += n
		}
		if inserted == 0 {
			return nil
		}
	}
}

// seminaiveFixpoint performs one naive round to seed the stratum, then
// iterates only the recursive clauses with delta substitution: each pass
// evaluates every recursive clause once per recursive body position,
// with that position reading the previous round's newly derived tuples.
func (e *engine) seminaiveFixpoint(s *analysis.Stratum, clauses []*compiledClause) error {
	e.stats.Iterations++
	delta := map[string]*relation.Relation{}
	for _, p := range s.Preds {
		delta[p] = relation.New(p, e.work[p].Arity())
	}
	for _, cc := range clauses {
		if _, err := e.evalClause(cc, -1, delta[cc.headPred], e.work[cc.headPred]); err != nil {
			return err
		}
	}
	var recursive []*compiledClause
	for _, cc := range clauses {
		if len(cc.recPositions) > 0 {
			recursive = append(recursive, cc)
		}
	}
	for {
		total := 0
		for _, d := range delta {
			total += d.Len()
		}
		if total == 0 || len(recursive) == 0 {
			return nil
		}
		e.stats.Iterations++
		next := map[string]*relation.Relation{}
		for _, p := range s.Preds {
			next[p] = relation.New(p, e.work[p].Arity())
		}
		for _, cc := range recursive {
			for _, pos := range cc.recPositions {
				// Substitute the delta relation at exactly one recursive
				// position; other positions read the full relations
				// (which already include the delta).
				d := delta[cc.lits[pos].pred]
				if d == nil || d.Len() == 0 {
					continue
				}
				if _, err := e.evalClauseDelta(cc, pos, d, next[cc.headPred], e.work[cc.headPred]); err != nil {
					return err
				}
			}
		}
		delta = next
	}
}

// resolve returns the relation a compiled literal reads.
func (e *engine) resolve(cl *compiledLit) (*relation.Relation, error) {
	if cl.isID {
		r, ok := e.idrels[cl.idKey]
		if !ok {
			return nil, fmt.Errorf("eval: ID-relation %s not materialized", cl.idKey)
		}
		return r, nil
	}
	r, ok := e.work[cl.pred]
	if !ok {
		return nil, fmt.Errorf("eval: unknown predicate %s", cl.pred)
	}
	return r, nil
}

// evalClause evaluates cc against the current relations. New head tuples
// are inserted into full; when deltaSink is non-nil they are also added
// there (seeding semi-naive). It returns the number of new tuples.
func (e *engine) evalClause(cc *compiledClause, _ int, deltaSink, full *relation.Relation) (int, error) {
	return e.run(cc, -1, nil, deltaSink, full)
}

// evalClauseDelta is one semi-naive pass: the literal at deltaPos reads
// deltaRel instead of its full relation.
func (e *engine) evalClauseDelta(cc *compiledClause, deltaPos int, deltaRel, deltaSink, full *relation.Relation) (int, error) {
	return e.run(cc, deltaPos, deltaRel, deltaSink, full)
}

func (e *engine) run(cc *compiledClause, deltaPos int, deltaRel, deltaSink, full *relation.Relation) (int, error) {
	env := make([]value.Value, cc.nslots)
	inserted := 0
	var rec func(depth int) error
	rec = func(depth int) error {
		if depth == len(cc.lits) {
			e.stats.Derivations++
			if e.opts.MaxDerivations > 0 && e.stats.Derivations > e.opts.MaxDerivations {
				return fmt.Errorf("eval: derivation budget %d exceeded (clause %s)", e.opts.MaxDerivations, cc.src.Source)
			}
			head := cc.headBuf
			for i, a := range cc.headArgs {
				if a.kind == argConst {
					head[i] = a.val
				} else {
					head[i] = env[a.slot]
				}
			}
			stored, err := full.InsertShared(head)
			if err != nil {
				return err
			}
			if stored != nil {
				inserted++
				e.stats.Inserted++
				e.recordProvenance(cc, env, stored)
				if deltaSink != nil {
					deltaSink.MustInsert(stored)
				}
			}
			return nil
		}
		cl := &cc.lits[depth]
		if cl.builtin != nil {
			return e.stepBuiltin(cc, cl, env, depth, rec)
		}
		if cl.neg {
			return e.stepNegated(cl, env, depth, rec)
		}
		rel, err := e.resolve(cl)
		if err != nil {
			return err
		}
		if depth == deltaPos {
			rel = deltaRel
		}
		return e.stepScan(cl, rel, env, depth, rec)
	}
	if err := rec(0); err != nil {
		return inserted, err
	}
	return inserted, nil
}

// stepScan matches a positive relational literal by probing the indexed
// columns and binding the rest.
func (e *engine) stepScan(cl *compiledLit, rel *relation.Relation, env []value.Value, depth int, rec func(int) error) error {
	match := func(t value.Tuple) error {
		ok := true
		for pos, a := range cl.args {
			switch a.kind {
			case argBind:
				env[a.slot] = t[pos]
			case argCheck:
				if !t[pos].Equal(env[a.slot]) {
					ok = false
				}
			}
			if !ok {
				break
			}
		}
		if !ok {
			return nil
		}
		return rec(depth + 1)
	}
	if len(cl.probeCols) == 0 {
		tuples := rel.Tuples()
		e.stats.TuplesScanned += len(tuples)
		for _, t := range tuples {
			if err := match(t); err != nil {
				return err
			}
		}
		return nil
	}
	key := cl.keyBuf
	for i, a := range cl.probeArgs {
		if a.kind == argConst {
			key[i] = a.val
		} else {
			key[i] = env[a.slot]
		}
	}
	// Iterate index positions directly to avoid materializing the
	// candidate slice. The positions slice is the index's own bucket
	// and must not be mutated; inserts during iteration may append to
	// it, but appended tuples are new head derivations of *other*
	// relations (a clause never inserts into a relation it scans in the
	// same instantiation path — recursive clauses read delta copies), so
	// a snapshot of the length keeps iteration well-defined.
	positions := rel.Probe(cl.probeCols, key)
	n := len(positions)
	e.stats.TuplesScanned += n
	for i := 0; i < n; i++ {
		if err := match(rel.At(positions[i])); err != nil {
			return err
		}
	}
	return nil
}

// stepNegated checks a fully-bound negated relational literal.
func (e *engine) stepNegated(cl *compiledLit, env []value.Value, depth int, rec func(int) error) error {
	rel, err := e.resolve(cl)
	if err != nil {
		return err
	}
	t := make(value.Tuple, len(cl.args))
	for i, a := range cl.args {
		if a.kind == argConst {
			t[i] = a.val
		} else {
			t[i] = env[a.slot]
		}
	}
	if rel.Contains(t) {
		return nil
	}
	return rec(depth + 1)
}

// stepBuiltin evaluates an interpreted literal by enumerating the
// solutions of its relation under the current bindings.
func (e *engine) stepBuiltin(cc *compiledClause, cl *compiledLit, env []value.Value, depth int, rec func(int) error) error {
	args, mask := cl.argsBuf, cl.maskBuf
	for i, a := range cl.args {
		switch a.kind {
		case argConst:
			args[i] = a.val
			mask[i] = true
		case argBound:
			args[i] = env[a.slot]
			mask[i] = true
		default:
			args[i] = value.Value{}
			mask[i] = false
		}
	}
	sols, err := cl.builtin.Solve(args, mask)
	if err != nil {
		return fmt.Errorf("clause %s: %w", cc.src.Source, err)
	}
	if cl.neg {
		if len(sols) == 0 {
			return rec(depth + 1)
		}
		return nil
	}
	for _, sol := range sols {
		ok := true
		for i, a := range cl.args {
			switch a.kind {
			case argBind:
				env[a.slot] = sol[i]
			case argCheck:
				if !sol[i].Equal(env[a.slot]) {
					ok = false
				}
			}
			if !ok {
				break
			}
		}
		if !ok {
			continue
		}
		if err := rec(depth + 1); err != nil {
			return err
		}
	}
	return nil
}
