package core

import (
	"errors"
	"fmt"

	"idlog/internal/analysis"
	"idlog/internal/arith"
	"idlog/internal/ast"
	"idlog/internal/guard"
	"idlog/internal/relation"
	"idlog/internal/value"
)

// This file exports the per-stratum operators of incremental view
// maintenance: delta-driven semi-naive propagation for insertions and
// the two delete-phase operators of DRed (overdeletion, rederivation).
// The composition into a full maintenance algorithm — fallback boundary,
// phase ordering, old-view bookkeeping — lives in internal/incremental;
// core only contributes the pieces that must see compiled-clause
// internals (the join walk, head-bound compilation, delta substitution).

// IncrState is the mutable relation state an incremental maintenance
// pass operates on: the materialized full relations (EDB and IDB, keyed
// by predicate), the materialized ID-relations (keyed by need key), the
// guard governing the pass, and the stats sink. Relations are mutated
// in place; the caller owns synchronization.
type IncrState struct {
	Rels   map[string]*relation.Relation
	IDRels map[string]*relation.Relation
	Guard  *guard.Guard
	Stats  *Stats
}

// resolveCur maps a compiled literal to the current full relation.
func (st *IncrState) resolveCur(cl *compiledLit) (*relation.Relation, error) {
	if cl.isID {
		r, ok := st.IDRels[cl.idKey]
		if !ok {
			return nil, fmt.Errorf("incremental: ID-relation %s not materialized", cl.idKey)
		}
		return r, nil
	}
	r, ok := st.Rels[cl.pred]
	if !ok {
		return nil, fmt.Errorf("incremental: unknown predicate %s", cl.pred)
	}
	return r, nil
}

func (st *IncrState) governed() bool { return st.Guard != nil && st.Guard.Active() }

// headBoundClause is a clause compiled with its head variables bound
// first: the rederivation probe of DRed ("does this tuple still have a
// derivation?") seeds the environment from a candidate tuple and walks
// only the matching body instantiations.
type headBoundClause struct {
	cc   *compiledClause
	seed []compiledArg
	env  []value.Value
}

// CompiledStratum holds the incremental evaluation plan for one
// stratum: the ordinary compiled clauses (shared by overdeletion and
// insertion propagation, which differ only in resolver and derive
// hook), their delta-first variants, and the head-bound variants
// grouped by head predicate (for rederivation). Plans are stateful
// (per-literal scratch buffers) and therefore single-threaded; a view
// serializes its applies.
type CompiledStratum struct {
	// Preds are the predicates defined by the stratum, as in
	// analysis.Stratum.
	Preds   []string
	stream  bool
	clauses []*compiledClause
	// variants[i][pos] is the delta-first rotation of clauses[i] for
	// body position pos: the same clause re-planned with that literal
	// pinned at depth 0, so a delta pass enumerates the (small) delta
	// first and probes the rest. Positions without an entry substitute
	// the delta in place; the planner-off plan has no variants at all.
	variants []map[int]*compiledClause
	bound    map[string][]*headBoundClause
}

// CompileOptions configures CompileStratum.
type CompileOptions struct {
	// NoPlanner compiles bodies in the analysis safety order with
	// in-place delta substitution, mirroring Options.NoPlanner.
	NoPlanner bool
	// NoStreaming evaluates the maintenance walks with the legacy
	// recursive executor, mirroring Options.NoStreaming. The streaming
	// executor is safe here because every incremental derive hook reads
	// only the head tuple, never the environment.
	NoStreaming bool
	// Rels / IDRels, when set, are the cardinality snapshot for the
	// planner's selectivity estimates — typically the view's
	// materialized relations at plan time. Missing entries fall back to
	// a coarse default.
	Rels   map[string]*relation.Relation
	IDRels map[string]*relation.Relation
}

// CompileStratum builds the incremental plan for stratum si of info.
// With the planner on (see CompileOptions), clause bodies are
// selectivity-ordered, every positive ordinary body position gets a
// delta-first variant — incremental deltas arrive for EDB and
// lower-stratum predicates too, not just same-stratum ones — and
// rederivation probes are planned with the head variables pre-bound.
func CompileStratum(info *analysis.Info, si int, copts CompileOptions) (*CompiledStratum, error) {
	s := info.Strata[si]
	in := map[string]bool{}
	for _, p := range s.Preds {
		in[p] = true
	}
	inStratum := func(p string) bool { return in[p] }
	// The empty inStratum set makes stratumCard read every predicate's
	// exact current size: unlike at engine time, the view's own stratum
	// relations are already materialized here.
	card := stratumCard(s, map[string]bool{}, copts.Rels, copts.IDRels)
	cs := &CompiledStratum{Preds: s.Preds, stream: !copts.NoStreaming, bound: map[string][]*headBoundClause{}}
	for _, oc := range s.Clauses {
		soc := oc
		if !copts.NoPlanner {
			if body := planBody(oc.Clause.Body, -1, card); body != nil {
				soc = reordered(oc, body, oc.Clause.Body)
			}
		}
		cc, err := compileClause(soc, inStratum)
		if err != nil {
			return nil, err
		}
		cs.clauses = append(cs.clauses, cc)
		var vm map[int]*compiledClause
		if !copts.NoPlanner {
			body := soc.Clause.Body
			for pos, l := range body {
				if l.Neg || l.Atom.IsID || arith.IsBuiltin(l.Atom.Pred) {
					continue
				}
				vbody := planBody(body, pos, card)
				if vbody == nil {
					continue
				}
				voc := reordered(soc, vbody, body)
				if voc == soc {
					continue // delta literal already leads; substitute in place
				}
				vcc, err := compileClause(voc, inStratum)
				if err != nil {
					return nil, err
				}
				if vm == nil {
					vm = map[int]*compiledClause{}
				}
				vm[pos] = vcc
			}
		}
		cs.variants = append(cs.variants, vm)
		hoc := soc
		if !copts.NoPlanner {
			pre := map[string]bool{}
			for _, t := range oc.Clause.Head.Args {
				if v, ok := t.(ast.Var); ok {
					pre[v.Name] = true
				}
			}
			if body := planBodyBound(soc.Clause.Body, pre, -1, card); body != nil {
				hoc = reordered(soc, body, soc.Clause.Body)
			}
		}
		hb, seed, err := compileClauseHeadBound(hoc, inStratum)
		if err != nil {
			return nil, err
		}
		cs.bound[hb.headPred] = append(cs.bound[hb.headPred], &headBoundClause{
			cc: hb, seed: seed, env: make([]value.Value, hb.nslots)})
	}
	return cs, nil
}

// errStop short-circuits a join walk after its first complete
// instantiation (the rederivation probe needs existence, not
// enumeration).
var errStop = errors.New("stop walk")

// deltaUnits yields the delta work of clause i: for every positive,
// ordinary (non-ID, non-builtin) body position whose predicate has a
// non-empty delta, f receives the clause to run, the delta literal's
// position within it, and the delta relation. Positions with a
// delta-first variant dispatch that variant (delta at depth 0); the
// rest substitute into the base clause in place.
func (cs *CompiledStratum) deltaUnits(i int, deltas map[string]*relation.Relation, f func(cc *compiledClause, pos int, d *relation.Relation) error) error {
	cc := cs.clauses[i]
	for pos := range cc.lits {
		cl := &cc.lits[pos]
		if cl.neg || cl.isID || cl.builtin != nil {
			continue
		}
		d := deltas[cl.pred]
		if d == nil || d.Len() == 0 {
			continue
		}
		if v := cs.variants[i][pos]; v != nil {
			if err := f(v, 0, d); err != nil {
				return err
			}
			continue
		}
		if err := f(cc, pos, d); err != nil {
			return err
		}
	}
	return nil
}

// Overdelete computes DRed phase 1 for the stratum: the overestimate of
// tuples that may have lost all derivations. dels carries every
// finalized deletion visible to this stratum (EDB deletions plus
// lower-stratum IDB deletions). oldOf resolves a predicate to its
// PRE-UPDATE relation: for unchanged predicates that is the current
// relation, for changed ones the caller materializes an old view (a
// superset of the old content is sound — it can only grow the
// overestimate, which rederivation then shrinks). Own-stratum
// relations must not have been physically modified yet.
//
// The returned map holds the overdeleted tuples per stratum predicate;
// nothing has been removed from st.Rels — physical removal is the
// caller's phase 2, so rederivation sees a state with the overdeleted
// tuples absent.
func (cs *CompiledStratum) Overdelete(st *IncrState, dels map[string]*relation.Relation, oldOf func(pred string) *relation.Relation) (map[string]*relation.Relation, error) {
	resolveOld := func(cl *compiledLit) (*relation.Relation, error) {
		if cl.isID {
			// The fallback boundary admits only ID-literals whose base
			// predicate is unchanged, so the current ID-relation IS the
			// old one.
			r, ok := st.IDRels[cl.idKey]
			if !ok {
				return nil, fmt.Errorf("incremental: ID-relation %s not materialized", cl.idKey)
			}
			return r, nil
		}
		if r := oldOf(cl.pred); r != nil {
			return r, nil
		}
		return nil, fmt.Errorf("incremental: unknown predicate %s", cl.pred)
	}
	overdel := map[string]*relation.Relation{}
	cur := dels
	for {
		total := 0
		for _, d := range cur {
			total += d.Len()
		}
		if total == 0 {
			return overdel, nil
		}
		if st.governed() {
			if err := st.Guard.Checkpoint(); err != nil {
				return overdel, err
			}
		}
		next := map[string]*relation.Relation{}
		for ci := range cs.clauses {
			rn := runner{resolve: resolveOld, stats: st.Stats, stream: cs.stream}
			rn.derive = func(dcc *compiledClause, _ []value.Value, head value.Tuple) error {
				if st.governed() {
					if err := st.Guard.Derivation(dcc.srcText); err != nil {
						return err
					}
				}
				st.Stats.Derivations++
				full := st.Rels[dcc.headPred]
				if full == nil || !full.Contains(head) {
					return nil
				}
				od := overdel[dcc.headPred]
				if od == nil {
					od = relation.New(dcc.headPred, full.Arity())
					overdel[dcc.headPred] = od
				}
				stored, err := od.InsertShared(head)
				if err != nil || stored == nil {
					return err
				}
				nd := next[dcc.headPred]
				if nd == nil {
					nd = relation.New(dcc.headPred, full.Arity())
					next[dcc.headPred] = nd
				}
				nd.MustInsert(stored)
				return nil
			}
			err := cs.deltaUnits(ci, cur, func(cc *compiledClause, pos int, d *relation.Relation) error {
				return rn.run(cc, pos, d, 0, -1)
			})
			if err != nil {
				return overdel, err
			}
		}
		cur = next
	}
}

// Rederive is DRed phase 3: every overdeleted tuple is probed for an
// alternative derivation against the CURRENT relations (the caller has
// already removed the overdeleted tuples, so self-support is
// impossible). Survivors are reinserted into st.Rels and returned per
// predicate; the caller must feed them into insertion propagation,
// which picks up chains (a tuple wrongly refused here because its
// support was itself overdeleted-then-rederived is rederived by the
// propagation pass).
func (cs *CompiledStratum) Rederive(st *IncrState, overdel map[string]*relation.Relation) (map[string]*relation.Relation, error) {
	redone := map[string]*relation.Relation{}
	for pred, od := range overdel {
		hbs := cs.bound[pred]
		for _, t := range od.Tuples() {
			derivable := false
			for _, hb := range hbs {
				ok, err := hb.derives(st, t, cs.stream)
				if err != nil {
					return redone, err
				}
				if ok {
					derivable = true
					break
				}
			}
			if !derivable {
				continue
			}
			if _, err := st.Rels[pred].Insert(t); err != nil {
				return redone, err
			}
			rd := redone[pred]
			if rd == nil {
				rd = relation.New(pred, od.Arity())
				redone[pred] = rd
			}
			rd.MustInsert(t)
		}
	}
	return redone, nil
}

// derives reports whether t has at least one derivation through hb
// against the current relations.
func (hb *headBoundClause) derives(st *IncrState, t value.Tuple, stream bool) (bool, error) {
	env := hb.env
	for i, a := range hb.seed {
		switch a.kind {
		case argConst:
			if !t[i].Equal(a.val) {
				return false, nil
			}
		case argBind:
			env[a.slot] = t[i]
		case argCheck:
			if !t[i].Equal(env[a.slot]) {
				return false, nil
			}
		}
	}
	found := false
	rn := runner{resolve: st.resolveCur, stats: st.Stats, stream: stream}
	rn.derive = func(dcc *compiledClause, _ []value.Value, _ value.Tuple) error {
		if st.governed() {
			if err := st.Guard.Derivation(dcc.srcText); err != nil {
				return err
			}
		}
		st.Stats.Derivations++
		found = true
		return errStop
	}
	if err := rn.walk(hb.cc, env, -1, nil, 0, -1); err != nil && err != errStop {
		return false, err
	}
	return found, nil
}

// Propagate performs semi-naive insertion propagation through the
// stratum: ins carries every insertion visible to it (EDB insertions,
// lower-stratum IDB insertions, and this stratum's rederived tuples),
// already physically present in st.Rels. Each pass substitutes one
// delta position per clause, with all other positions reading the full
// current relations; newly derived tuples are inserted into st.Rels and
// become the next pass's delta. The returned map holds the tuples this
// stratum newly derived, for the caller to merge into the global
// insertion set.
func (cs *CompiledStratum) Propagate(st *IncrState, ins map[string]*relation.Relation) (map[string]*relation.Relation, error) {
	added := map[string]*relation.Relation{}
	cur := ins
	for {
		total := 0
		for _, d := range cur {
			total += d.Len()
		}
		if total == 0 {
			return added, nil
		}
		if st.governed() {
			if err := st.Guard.Checkpoint(); err != nil {
				return added, err
			}
		}
		next := map[string]*relation.Relation{}
		for ci := range cs.clauses {
			rn := runner{resolve: st.resolveCur, stats: st.Stats, stream: cs.stream}
			rn.derive = func(dcc *compiledClause, _ []value.Value, head value.Tuple) error {
				if st.governed() {
					if err := st.Guard.Derivation(dcc.srcText); err != nil {
						return err
					}
				}
				st.Stats.Derivations++
				full := st.Rels[dcc.headPred]
				stored, err := full.InsertShared(head)
				if err != nil || stored == nil {
					return err
				}
				if st.governed() {
					if err := st.Guard.TryTuples(1); err != nil {
						return err
					}
				}
				st.Stats.Inserted++
				ad := added[dcc.headPred]
				if ad == nil {
					ad = relation.New(dcc.headPred, full.Arity())
					added[dcc.headPred] = ad
				}
				ad.MustInsert(stored)
				nd := next[dcc.headPred]
				if nd == nil {
					nd = relation.New(dcc.headPred, full.Arity())
					next[dcc.headPred] = nd
				}
				nd.MustInsert(stored)
				return nil
			}
			err := cs.deltaUnits(ci, cur, func(cc *compiledClause, pos int, d *relation.Relation) error {
				return rn.run(cc, pos, d, 0, -1)
			})
			if err != nil {
				return added, err
			}
		}
		cur = next
	}
}

// EvalStrata recomputes strata[from:] of info from scratch against the
// current state: IDB relations of those strata are reset to empty, their
// ID-relations re-materialize under opts.Oracle, and the ordinary
// engine loop (semi-naive or parallel per opts) runs them to fixpoint.
// This is the incremental layer's fallback for strata the delta/DRed
// machinery cannot maintain (ID-literals, or negation over a changed
// stratum). Oracle stability for untouched groups is the oracle's
// contract: RandomOracle keys its permutation on group content, so
// groups the update did not touch keep their ID assignment.
func EvalStrata(info *analysis.Info, st *IncrState, from int, opts Options) (err error) {
	g := opts.guard()
	if st.Guard != nil {
		g = st.Guard
	}
	e := &engine{info: info, opts: opts, g: g, governed: g.Active(),
		work: st.Rels, idrels: st.IDRels}
	defer func() {
		st.Stats.Add(e.stats)
		if r := recover(); r != nil {
			err = guard.Errorf(guard.Internal, g.Op(),
				"panic in stratum %d (clause %s): %v", g.Stratum(), e.curClause, r)
		}
	}()
	for i := from; i < len(info.Strata); i++ {
		for _, p := range info.Strata[i].Preds {
			st.Rels[p] = relation.New(p, info.Arity[p])
		}
	}
	for i := from; i < len(info.Strata); i++ {
		if e.governed {
			if err := g.StartStratum(i); err != nil {
				return err
			}
		}
		if err := e.evalStratum(i, info.Strata[i]); err != nil {
			return err
		}
	}
	return nil
}
