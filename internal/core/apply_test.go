package core

import (
	"testing"

	"idlog/internal/value"
)

func TestApplyBasics(t *testing.T) {
	db := NewDatabase()
	_ = db.AddAll("e", value.Strs("a", "b"), value.Strs("b", "c"))
	db.Freeze()

	next, delta, err := db.Apply(
		[]Fact{{Pred: "e", Tuple: value.Strs("c", "d")}, {Pred: "n", Tuple: value.Strs("x")}},
		[]Fact{{Pred: "e", Tuple: value.Strs("a", "b")}})
	if err != nil {
		t.Fatal(err)
	}
	// The receiver is untouched; the result carries the change and the
	// receiver's frozen-ness.
	if db.Relation("e").Len() != 2 || db.Relation("n") != nil {
		t.Fatalf("receiver mutated: e=%s", db.Relation("e"))
	}
	if !next.Frozen() {
		t.Fatal("result of Apply on frozen db is not frozen")
	}
	e := next.Relation("e")
	if e.Len() != 2 || e.Contains(value.Strs("a", "b")) || !e.Contains(value.Strs("c", "d")) {
		t.Fatalf("e after apply: %s", e)
	}
	if next.Relation("n").Len() != 1 {
		t.Fatalf("new relation n: %v", next.Relation("n"))
	}
	if delta.InsertCount() != 2 || delta.DeleteCount() != 1 || delta.Empty() {
		t.Fatalf("delta: +%d -%d", delta.InsertCount(), delta.DeleteCount())
	}
}

func TestApplyEffectiveDeltaExcludesNoops(t *testing.T) {
	db := NewDatabase()
	_ = db.AddAll("p", value.Strs("a"))
	next, delta, err := db.Apply(
		[]Fact{{Pred: "p", Tuple: value.Strs("a")}}, // already present
		[]Fact{{Pred: "p", Tuple: value.Strs("z")}}) // absent
	if err != nil {
		t.Fatal(err)
	}
	if !delta.Empty() {
		t.Fatalf("no-op mutations produced delta +%d -%d", delta.InsertCount(), delta.DeleteCount())
	}
	if next.Relation("p").Len() != 1 {
		t.Fatalf("p: %s", next.Relation("p"))
	}
	if next.Frozen() {
		t.Fatal("unfrozen receiver produced frozen result")
	}
}

func TestApplyDeleteThenInsertSameFact(t *testing.T) {
	db := NewDatabase()
	_ = db.AddAll("p", value.Strs("a"))
	f := []Fact{{Pred: "p", Tuple: value.Strs("a")}}
	next, delta, err := db.Apply(f, f)
	if err != nil {
		t.Fatal(err)
	}
	if !next.Relation("p").Contains(value.Strs("a")) {
		t.Fatal("delete-then-insert lost the fact")
	}
	// Both effects are recorded: remove-then-add.
	if delta.DeleteCount() != 1 || delta.InsertCount() != 1 {
		t.Fatalf("delta: +%d -%d", delta.InsertCount(), delta.DeleteCount())
	}
}

func TestApplyValidatesWholeBatchFirst(t *testing.T) {
	db := NewDatabase()
	_ = db.AddAll("p", value.Strs("a"))
	// Arity mismatch deep in the batch: nothing is applied.
	_, _, err := db.Apply(
		[]Fact{{Pred: "q", Tuple: value.Strs("x")}, {Pred: "p", Tuple: value.Strs("a", "b")}}, nil)
	if err == nil {
		t.Fatal("arity mismatch accepted")
	}
	if db.Relation("q") != nil {
		t.Fatal("partial application before validation failure")
	}
	// Delete from unknown relation.
	if _, _, err := db.Apply(nil, []Fact{{Pred: "nope", Tuple: value.Strs("x")}}); err == nil {
		t.Fatal("delete from unknown relation accepted")
	}
	// New relation's arity is fixed by its first insert in the batch.
	if _, _, err := db.Apply([]Fact{
		{Pred: "r", Tuple: value.Strs("x", "y")},
		{Pred: "r", Tuple: value.Strs("x")},
	}, nil); err == nil {
		t.Fatal("inconsistent arities within batch accepted")
	}
}
