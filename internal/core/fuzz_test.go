package core

import (
	"testing"

	"idlog/internal/analysis"
	"idlog/internal/parser"
	"idlog/internal/relation"
	"idlog/internal/value"
)

// FuzzEval drives the whole pipeline — parse, analyze, evaluate under
// two oracles — on arbitrary program text against a small fixed
// database. Budgets keep runaway programs bounded; the property is
// "no panic, and the two oracles agree on ID-free predicates".
func FuzzEval(f *testing.F) {
	seeds := []string{
		"p(a).",
		"tc(X, Y) :- e(X, Y).\ntc(X, Y) :- e(X, Z), tc(Z, Y).",
		"sel(N) :- emp[2](N, D, T), T < 2.",
		"man(X) :- guess[1](X, m, 1).\nguess(X, m) :- person(X).\nguess(X, f) :- person(X).",
		"nat(0).\nnat(Y) :- nat(X), X < 9, succ(X, Y).",
		"u(X) :- e(X, Y), not e(Y, X).",
		"p2(X, L, M) :- q(X, N), add(L, M, N).",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	db := NewDatabase()
	_ = db.AddAll("e", value.Ints(1, 2), value.Ints(2, 3), value.Ints(3, 1))
	_ = db.AddAll("emp", value.Strs("joe", "toys"), value.Strs("sue", "toys"), value.Strs("bob", "shoes"))
	_ = db.AddAll("person", value.Strs("a"), value.Strs("b"))
	_ = db.AddAll("q", value.Tuple{value.Str("x"), value.Int(4)})

	f.Fuzz(func(t *testing.T, src string) {
		prog, err := parser.Program(src)
		if err != nil {
			return
		}
		if prog.HasChoice() {
			return
		}
		info, err := analysis.Analyze(prog)
		if err != nil {
			return
		}
		// The fuzz DB has fixed relation arities; arity clashes yield
		// clean errors, which are fine.
		opts := Options{MaxDerivations: 20000}
		a, errA := Eval(info, db, opts)
		opts.Oracle = relation.RandomOracle{Seed: 7}
		b, errB := Eval(info, db, opts)
		if (errA == nil) != (errB == nil) {
			// Budget errors can differ across oracles (different
			// ID-assignments change derivation counts); that is the
			// only allowed asymmetry.
			return
		}
		if errA != nil {
			return
		}
		// ID-free derived predicates must not vary with the oracle.
		usesID := prog.HasID()
		if !usesID {
			for p := range info.IDB {
				if !a.Relation(p).Equal(b.Relation(p)) {
					t.Fatalf("oracle changed ID-free predicate %s\nprogram: %s", p, src)
				}
			}
		}
		// Planner differential: with the same (nil) oracle, planner-on
		// and planner-off runs must agree exactly. Budget errors may trip
		// at different points across join orders — that is the only
		// allowed asymmetry.
		offOpts := Options{MaxDerivations: 20000, NoPlanner: true}
		c, errC := Eval(info, db, offOpts)
		if errC != nil {
			return
		}
		for p := range info.IDB {
			if !a.Relation(p).Equal(c.Relation(p)) {
				t.Fatalf("planner changed predicate %s\nprogram: %s", p, src)
			}
		}
	})
}
