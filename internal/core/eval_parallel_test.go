package core

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"idlog/internal/analysis"
	"idlog/internal/guard"
	"idlog/internal/relation"
	"idlog/internal/value"
)

// parallelDB builds a database big enough that every clause shape
// shards: a two-component graph, node table, and employee table.
func parallelDB(t *testing.T) *Database {
	t.Helper()
	db := NewDatabase()
	for i := 0; i < 120; i++ {
		_ = db.Add("e", value.Strs(fmt.Sprintf("n%03d", i), fmt.Sprintf("n%03d", i+1)))
		if i%4 == 0 {
			_ = db.Add("e", value.Strs(fmt.Sprintf("n%03d", i), fmt.Sprintf("m%03d", i)))
		}
	}
	for i := 0; i <= 121; i++ {
		_ = db.Add("node", value.Strs(fmt.Sprintf("n%03d", i)))
	}
	_ = db.Add("start", value.Strs("n000"))
	for d := 0; d < 6; d++ {
		for e := 0; e < 8; e++ {
			_ = db.Add("emp", value.Strs(fmt.Sprintf("e%d_%d", d, e), fmt.Sprintf("dept%d", d)))
		}
	}
	return db
}

const parallelPrograms = `
tc(X, Y) :- e(X, Y).
tc(X, Y) :- e(X, Z), tc(Z, Y).
reach(X) :- start(X).
reach(Y) :- reach(X), e(X, Y).
unreached(X) :- node(X), not reach(X).
pick(N, D) :- emp[2](N, D, 0).
`

// modelFingerprint renders every program relation canonically.
func modelFingerprint(res *Result, info *analysis.Info) string {
	preds := make([]string, 0, len(info.IDB))
	for p := range info.IDB {
		preds = append(preds, p)
	}
	sort.Strings(preds)
	var b strings.Builder
	for _, p := range preds {
		b.WriteString(p)
		b.WriteString("=")
		b.WriteString(res.Relation(p).Fingerprint())
		b.WriteString("\n")
	}
	return b.String()
}

// TestParallelMatchesSequential checks byte-identical models across
// worker counts, including the within-parallel insertion-order
// invariant (Tuples order equal for any workers ≥ 2 at a fixed
// partition fan-out — partitioning permutes the delta enumeration
// sequence per fan-out, so the order invariant is per partition count
// while the model is identical at every setting).
func TestParallelMatchesSequential(t *testing.T) {
	info := mustAnalyze(t, parallelPrograms)
	seqRes, err := Eval(info, parallelDB(t), Options{
		Oracle: relation.RandomOracle{Seed: 42}, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := modelFingerprint(seqRes, info)
	for _, partitions := range []int{1, 2, 3, 8} {
		var order2 []string
		for _, workers := range []int{2, 3, 4, 8} {
			res, err := Eval(info, parallelDB(t), Options{
				Oracle: relation.RandomOracle{Seed: 42}, Parallelism: workers, Partitions: partitions})
			if err != nil {
				t.Fatalf("workers=%d partitions=%d: %v", workers, partitions, err)
			}
			if got := modelFingerprint(res, info); got != want {
				t.Fatalf("workers=%d partitions=%d: model diverged from sequential", workers, partitions)
			}
			var order []string
			for _, tup := range res.Relation("tc").Tuples() {
				order = append(order, tup.String())
			}
			if order2 == nil {
				order2 = order
			} else {
				if len(order) != len(order2) {
					t.Fatalf("workers=%d partitions=%d: insertion-order length diverged", workers, partitions)
				}
				for i := range order {
					if order[i] != order2[i] {
						t.Fatalf("workers=%d partitions=%d: insertion order diverged at %d", workers, partitions, i)
					}
				}
			}
		}
	}
}

// TestParallelStatsConsistent checks the merged counters still satisfy
// the core invariants (inserted ≤ derivations; derivations ≥ model).
func TestParallelStatsConsistent(t *testing.T) {
	info := mustAnalyze(t, parallelPrograms)
	res, err := Eval(info, parallelDB(t), Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Inserted > res.Stats.Derivations {
		t.Fatalf("inserted %d > derivations %d", res.Stats.Inserted, res.Stats.Derivations)
	}
	if res.Stats.Inserted != seqInserted(t, info) {
		t.Fatalf("parallel inserted %d != sequential %d", res.Stats.Inserted, seqInserted(t, info))
	}
}

func seqInserted(t *testing.T, info *analysis.Info) int {
	t.Helper()
	res, err := Eval(info, parallelDB(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	return res.Stats.Inserted
}

// TestParallelBudgets checks governance through the parallel path: the
// tuple budget trips exactly, the derivation budget is a hard ceiling,
// and cancellation surfaces as the typed error with a partial model.
func TestParallelBudgets(t *testing.T) {
	info := mustAnalyze(t, parallelPrograms)

	g := guard.New(nil, guard.Limits{MaxTuples: 50})
	res, err := Eval(info, parallelDB(t), Options{Parallelism: 4, Guard: g})
	if err == nil {
		t.Fatalf("tuple budget did not trip")
	}
	if !res.Incomplete {
		t.Fatalf("tripped run not marked incomplete")
	}
	if _, tuples := g.Usage(); tuples != 50 {
		t.Fatalf("tuple budget inexact under parallelism: %d held, want 50", tuples)
	}

	g = guard.New(nil, guard.Limits{MaxDerivations: 300})
	_, err = Eval(info, parallelDB(t), Options{Parallelism: 4, Guard: g})
	if err == nil {
		t.Fatalf("derivation budget did not trip")
	}
	if d, _ := g.Usage(); d > 300 {
		t.Fatalf("derivation ledger overshot: %d > 300", d)
	}
}

// TestParallelPanicRecovered checks a worker panic (injected fault)
// converts to a typed Internal/ResourceExhausted error, not a crash.
func TestParallelPanicRecovered(t *testing.T) {
	info := mustAnalyze(t, parallelPrograms)
	g := guard.New(nil, guard.Limits{})
	g.Inject(guard.FailAfter(100))
	res, err := Eval(info, parallelDB(t), Options{Parallelism: 4, Guard: g})
	if err == nil {
		t.Fatalf("injected fault vanished")
	}
	if res == nil || !res.Incomplete {
		t.Fatalf("fault did not produce a partial result")
	}
}

// TestParallelNonRecursiveStratum covers the single-round scheduling
// path (Stratum.Recursive false) under parallelism.
func TestParallelNonRecursiveStratum(t *testing.T) {
	info := mustAnalyze(t, `
		big(X, Y) :- e(X, Y).
		pair(X, Y) :- big(X, Y), node(X).
	`)
	seq, err := Eval(info, parallelDB(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Eval(info, parallelDB(t), Options{Parallelism: 3})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Relation("pair").Fingerprint() != par.Relation("pair").Fingerprint() {
		t.Fatalf("non-recursive stratum diverged under parallelism")
	}
	if seq.Stats.Inserted != par.Stats.Inserted {
		t.Fatalf("inserted: seq %d, par %d", seq.Stats.Inserted, par.Stats.Inserted)
	}
}
