package core

import (
	"fmt"
	"strings"

	"idlog/internal/value"
)

// Provenance support: when Options.Trace is set, the engine records,
// for every derived tuple, the clause and the ground body facts of its
// FIRST derivation. First derivations are well-founded (they only use
// tuples that already existed), so the recorded graph is acyclic and
// Explain can always print a finite tree.

// provFact is one ground body literal of a derivation.
type provFact struct {
	pred    string
	neg     bool
	isID    bool
	builtin bool
	tuple   value.Tuple
}

func (f provFact) String() string {
	s := f.pred
	if len(f.tuple) > 0 {
		s += f.tuple.String()
	}
	if f.neg {
		s = "not " + s
	}
	return s
}

// provEntry is the first derivation of one tuple.
type provEntry struct {
	clause string // rendered clause
	body   []provFact
}

// provKey addresses a derived tuple.
func provKey(pred string, t value.Tuple) string {
	return pred + "|" + t.Key()
}

// recordProvenance captures the ground body of the current instantiation.
func (e *engine) recordProvenance(cc *compiledClause, env []value.Value, stored value.Tuple) {
	if e.prov == nil {
		return
	}
	key := provKey(cc.headPred, stored)
	if _, ok := e.prov[key]; ok {
		return
	}
	entry := provEntry{clause: cc.src.Source.String()}
	for i := range cc.lits {
		cl := &cc.lits[i]
		t := make(value.Tuple, len(cl.args))
		for pos, a := range cl.args {
			if a.kind == argConst {
				t[pos] = a.val
			} else {
				t[pos] = env[a.slot]
			}
		}
		entry.body = append(entry.body, provFact{
			pred:    cl.pred,
			neg:     cl.neg,
			isID:    cl.isID,
			builtin: cl.builtin != nil,
			tuple:   t,
		})
	}
	e.prov[key] = entry
}

// Explain renders the derivation tree of a tuple of a derived predicate,
// up to maxDepth levels (0 = default 16). It returns an error when the
// run was not traced or the tuple was not derived.
func (r *Result) Explain(pred string, t value.Tuple, maxDepth int) (string, error) {
	if r.prov == nil {
		return "", fmt.Errorf("explain: evaluation was not traced (set Options.Trace)")
	}
	rel := r.rels[pred]
	if rel == nil || !rel.Contains(t) {
		return "", fmt.Errorf("explain: %s%s is not in the model", pred, t)
	}
	if maxDepth == 0 {
		maxDepth = 16
	}
	var b strings.Builder
	r.explain(&b, pred, t, 0, maxDepth)
	return b.String(), nil
}

func (r *Result) explain(b *strings.Builder, pred string, t value.Tuple, depth, maxDepth int) {
	indent := strings.Repeat("  ", depth)
	entry, ok := r.prov[provKey(pred, t)]
	if !ok {
		// Not derived by a clause: an input fact (or an undived atom).
		fmt.Fprintf(b, "%s%s%s  [input]\n", indent, pred, t)
		return
	}
	fmt.Fprintf(b, "%s%s%s  <=  %s\n", indent, pred, t, entry.clause)
	if depth+1 >= maxDepth {
		fmt.Fprintf(b, "%s  ... (depth limit)\n", indent)
		return
	}
	for _, f := range entry.body {
		switch {
		case f.builtin:
			fmt.Fprintf(b, "%s  %s  [arithmetic]\n", indent, f)
		case f.neg:
			fmt.Fprintf(b, "%s  %s  [absent]\n", indent, f)
		case f.isID:
			fmt.Fprintf(b, "%s  %s  [ID-relation choice]\n", indent, f)
		default:
			r.explain(b, f.pred, f.tuple, depth+1, maxDepth)
		}
	}
}
