package core

import (
	"reflect"
	"testing"

	"idlog/internal/relation"
	"idlog/internal/value"
)

// TestFootnote5GroupedIDFromUngrouped machine-checks Richard Hull's
// observation in the paper's footnote 5: among all ID-predicates, the
// ungrouped p[] is primitive — every grouped ID-predicate can be
// defined through it. The construction derives the within-group rank of
// each tuple from the global tids by counting the same-group tuples
// with smaller global tid (the count itself uses the tid trick):
//
//	pair(N, N2)  — N2 precedes N within N's department
//	rank(N, R)   — R = |{N2 : pair(N, N2)}| via tids over pair[1]
//
// The derived emp_rank(N, D, R) is then a valid ID-relation of emp on
// {Dept}, and as the ungrouped ID-function varies, its answer family
// equals that of the primitive emp[2].
func TestFootnote5GroupedIDFromUngrouped(t *testing.T) {
	derivedSrc := `
		gtid(N, D, T) :- emp[](N, D, T).
		pair(N, N2) :- gtid(N, D, T), gtid(N2, D, T2), T2 < T.
		haspair(N) :- pair(N, N2).
		ptid(N, T) :- pair[1](N, N2, T).
		rank(N, R) :- ptid(N, T), succ(T, R), not ptid(N, R).
		rank(N, 0) :- emp(N, D), not haspair(N).
		sel(N) :- emp(N, D), rank(N, 0).
	`
	primitiveSrc := `sel(N) :- emp[2](N, D, 0).`

	db := NewDatabase()
	_ = db.AddAll("emp",
		value.Strs("joe", "toys"), value.Strs("sue", "toys"), value.Strs("ann", "toys"),
		value.Strs("bob", "shoes"), value.Strs("eve", "shoes"))

	derived, err := Enumerate(mustAnalyze(t, derivedSrc), db, []string{"sel"}, EnumerateOptions{MaxRuns: 2000000})
	if err != nil {
		t.Fatal(err)
	}
	primitive, err := Enumerate(mustAnalyze(t, primitiveSrc), db, []string{"sel"}, EnumerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// The primitive form has 3*2 = 6 answers (one per choice of first
	// employee per dept); the derived form must define the same family.
	if len(primitive) != 6 {
		t.Fatalf("primitive answers = %d, want 6", len(primitive))
	}
	if !reflect.DeepEqual(AnswerSetFingerprints(derived), AnswerSetFingerprints(primitive)) {
		t.Fatalf("footnote-5 construction defines a different family:\nderived  (%d): %v\nprimitive (%d): %v",
			len(derived), AnswerSetFingerprints(derived),
			len(primitive), AnswerSetFingerprints(primitive))
	}
}

// TestRankIsValidIDRelation checks the deterministic core of the
// footnote-5 construction: for any single oracle, the derived
// (emp, rank) relation is a valid ID-relation of emp grouped by Dept.
func TestRankIsValidIDRelation(t *testing.T) {
	src := `
		gtid(N, D, T) :- emp[](N, D, T).
		pair(N, N2) :- gtid(N, D, T), gtid(N2, D, T2), T2 < T.
		haspair(N) :- pair(N, N2).
		ptid(N, T) :- pair[1](N, N2, T).
		rank(N, R) :- ptid(N, T), succ(T, R), not ptid(N, R).
		rank(N, 0) :- emp(N, D), not haspair(N).
		emp_rank(N, D, R) :- emp(N, D), rank(N, R).
	`
	info := mustAnalyze(t, src)
	db := empDB()
	for seed := uint64(0); seed < 10; seed++ {
		res, err := Eval(info, db, Options{Oracle: relation.RandomOracle{Seed: seed}})
		if err != nil {
			t.Fatal(err)
		}
		er := res.Relation("emp_rank")
		if er.Len() != db.Relation("emp").Len() {
			t.Fatalf("seed %d: emp_rank = %v", seed, er)
		}
		// tids form 0..n-1 within each department.
		for _, g := range er.Groups([]int{1}) {
			seen := map[int64]bool{}
			for _, tup := range g.Members {
				r := tup[2].Num
				if r < 0 || r >= int64(len(g.Members)) || seen[r] {
					t.Fatalf("seed %d: bad rank %d in group %v: %v", seed, r, g.Key, g.Members)
				}
				seen[r] = true
			}
		}
	}
}

// TestArithmeticDefinableFromSucc checks §2.2's remark that the
// arithmetic predicates such as + and < can be defined by IDLOG
// programs from succ alone, by comparing the program-defined versions
// with the built-ins over a bounded domain.
func TestArithmeticDefinableFromSucc(t *testing.T) {
	src := `
		nat(0).
		nat(Y) :- nat(X), X < 12, succ(X, Y).
		% my_plus(X, Y, Z) iff X + Y = Z, from succ alone
		my_plus(X, 0, X) :- nat(X).
		my_plus(X, SY, SZ) :- my_plus(X, Y, Z), succ(Y, SY), succ(Z, SZ), nat(SZ).
		% my_lt from succ
		my_lt(X, Y) :- nat(X), succ(X, Y), nat(Y).
		my_lt(X, Z) :- my_lt(X, Y), succ(Y, Z), nat(Z).
		% my_times from my_plus
		my_times(X, 0, 0) :- nat(X).
		my_times(X, SY, Z2) :- my_times(X, Y, Z), succ(Y, SY), nat(SY), my_plus(Z, X, Z2).
	`
	res := mustEval(t, src, NewDatabase(), Options{})
	plus := res.Relation("my_plus")
	lt := res.Relation("my_lt")
	times := res.Relation("my_times")
	const bound = 12
	for x := int64(0); x <= bound; x++ {
		for y := int64(0); y <= bound; y++ {
			if x+y <= bound {
				if !plus.Contains(value.Ints(x, y, x+y)) {
					t.Fatalf("my_plus missing (%d,%d,%d)", x, y, x+y)
				}
			}
			if x*y <= bound && y <= bound {
				if !times.Contains(value.Ints(x, y, x*y)) {
					t.Fatalf("my_times missing (%d,%d,%d)", x, y, x*y)
				}
			}
			if (x < y) != lt.Contains(value.Ints(x, y)) {
				t.Fatalf("my_lt(%d,%d) = %v, want %v", x, y, !(x < y), x < y)
			}
		}
	}
	// Soundness: nothing wrong derived.
	for _, tup := range plus.Tuples() {
		if tup[0].Num+tup[1].Num != tup[2].Num {
			t.Fatalf("unsound my_plus tuple %v", tup)
		}
	}
	for _, tup := range times.Tuples() {
		if tup[0].Num*tup[1].Num != tup[2].Num {
			t.Fatalf("unsound my_times tuple %v", tup)
		}
	}
}
