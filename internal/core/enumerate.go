package core

import (
	"fmt"
	"sort"
	"strings"

	"idlog/internal/analysis"
	"idlog/internal/relation"
)

// Answer is one element of a non-deterministic query's answer set: the
// output relations computed by one perfect model (§3.1: the query maps
// the input database to the set {q^I : I ∈ PERF}).
type Answer struct {
	// Relations maps each requested output predicate to its relation in
	// this perfect model.
	Relations map[string]*relation.Relation
}

// Fingerprint canonically identifies the answer (over the requested
// predicates only).
func (a *Answer) Fingerprint() string {
	names := make([]string, 0, len(a.Relations))
	for n := range a.Relations {
		names = append(names, n)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, n := range names {
		parts[i] = n + "=" + a.Relations[n].Fingerprint()
	}
	return strings.Join(parts, ";")
}

// EnumerateOptions bounds the enumeration walk.
type EnumerateOptions struct {
	// MaxRuns caps the number of evaluation runs (not distinct answers);
	// 0 means the default of 100000. Enumeration is exponential in the
	// sizes of the ID-groups and is meant for small inputs.
	MaxRuns int
	// Eval configures each individual run. Its Oracle field is ignored
	// (the enumerator supplies its own).
	Eval Options
}

// ErrEnumerationBudget is returned when the walk exceeds MaxRuns.
type ErrEnumerationBudget struct{ Runs int }

// Error implements the error interface.
func (e *ErrEnumerationBudget) Error() string {
	return fmt.Sprintf("enumeration exceeded budget of %d runs", e.Runs)
}

// Enumerate computes the full answer set of the query given by the
// output predicates preds: one Answer per distinct restriction of a
// perfect model to preds, over all assignments of ID-functions.
//
// The walk is a depth-first search over ID-function choices. Each run
// uses a relation.FixedOracle that records which (relation, grouping,
// group) triples were consulted; unassigned triples default to choice 0
// and are then expanded recursively. This remains correct even though
// the set of ID-relations consulted can itself depend on earlier
// choices (derived relations change with the oracle).
//
// Answers are returned sorted by fingerprint for determinism.
//
// The walk is governed as one unit: all runs share opts.Eval.Guard (or
// a fresh guard), so timeouts and budgets bound the whole enumeration.
// When the walk is cut short — budget, cancellation, deadline — the
// answers discovered so far are returned alongside the error.
func Enumerate(info *analysis.Info, db *Database, preds []string, opts EnumerateOptions) ([]*Answer, error) {
	maxRuns := opts.MaxRuns
	if maxRuns == 0 {
		maxRuns = 100000
	}
	runs := 0
	seen := map[string]*Answer{}
	g := opts.Eval.guard()
	g.SetOp("enumerate")
	opts.Eval.Guard = g

	var walk func(assign map[string]uint64) error
	walk = func(assign map[string]uint64) error {
		if runs >= maxRuns {
			return &ErrEnumerationBudget{Runs: maxRuns}
		}
		if err := g.Checkpoint(); err != nil {
			return err
		}
		runs++
		oracle := &relation.FixedOracle{Choices: assign, Observed: map[string]int{}}
		evalOpts := opts.Eval
		evalOpts.Oracle = oracle
		res, err := Eval(info, db, evalOpts)
		if err != nil {
			return err
		}
		// Keys consulted in this run but not yet pinned in the current
		// assignment, in sorted order for determinism.
		var unassigned []string
		for k := range oracle.Observed {
			if _, ok := assign[k]; !ok {
				unassigned = append(unassigned, k)
			}
		}
		if len(unassigned) == 0 {
			ans := &Answer{Relations: map[string]*relation.Relation{}}
			for _, p := range preds {
				r := res.Relation(p)
				if r == nil {
					return fmt.Errorf("enumerate: unknown output predicate %s", p)
				}
				ans.Relations[p] = r
			}
			seen[ans.Fingerprint()] = ans
			return nil
		}
		sort.Strings(unassigned)
		k := unassigned[0]
		n := oracle.Observed[k]
		count := relation.Factorial(n)
		for idx := uint64(0); idx < count; idx++ {
			child := make(map[string]uint64, len(assign)+1)
			for kk, vv := range assign {
				child[kk] = vv
			}
			child[k] = idx
			if err := walk(child); err != nil {
				return err
			}
		}
		return nil
	}

	walkErr := walk(map[string]uint64{})
	out := make([]*Answer, 0, len(seen))
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		out = append(out, seen[k])
	}
	return out, walkErr
}

// AnswerSetFingerprints projects an answer list to its sorted
// fingerprints; two queries are equivalent on an input iff these lists
// are equal (used by the Theorem-2 equivalence tests).
func AnswerSetFingerprints(answers []*Answer) []string {
	out := make([]string, len(answers))
	for i, a := range answers {
		out[i] = a.Fingerprint()
	}
	return out
}
