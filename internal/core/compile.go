package core

import (
	"fmt"

	"idlog/internal/analysis"
	"idlog/internal/arith"
	"idlog/internal/ast"
	"idlog/internal/value"
)

// argKind classifies a compiled argument position relative to the static
// binding state at its literal (the body order is fixed by analysis, so
// the binding state of every position is known at compile time).
type argKind uint8

const (
	// argConst is a constant argument.
	argConst argKind = iota
	// argBound is a variable bound by an earlier literal.
	argBound
	// argBind is the first occurrence of a variable: evaluating the
	// literal binds its slot.
	argBind
	// argCheck is a repeated occurrence, within the same literal, of a
	// variable first bound at an earlier position of this literal.
	argCheck
)

type compiledArg struct {
	kind argKind
	slot int         // for argBound/argBind/argCheck
	val  value.Value // for argConst
}

type compiledLit struct {
	neg     bool
	builtin *arith.Builtin // non-nil for interpreted literals
	pred    string         // base predicate for relational literals
	isID    bool
	idKey   string // analysis.IDNeed key for ID-literals
	args    []compiledArg
	// probeCols/probeArgs identify the statically-bound columns used for
	// index probes on relational literals.
	probeCols []int
	probeArgs []compiledArg
	// keyBuf, argsBuf and maskBuf are per-literal scratch space reused
	// across instantiations (clause evaluation is single-threaded).
	keyBuf  value.Tuple
	argsBuf []value.Value
	maskBuf []bool
	// recursive marks positive ordinary literals over same-stratum
	// predicates (the semi-naive delta positions).
	recursive bool
	// cardHint is the planner's cardinality estimate for the literal's
	// relation, set by compileStratumPlan and threaded into probe-time
	// index builds so their bucket maps are pre-sized for the estimated
	// final size rather than the (possibly still tiny) current one.
	// Zero when the planner is off. Static, so clone() shares it.
	cardHint int
	// binds and checks drive the streaming executor's per-tuple match
	// (iterator.go). binds lists the argBind positions whose slot some
	// later literal or the head actually reads — dead binds (variables
	// occurring exactly once) are projected away. checks pairs each
	// argCheck position with the in-literal position that first binds
	// its variable, so repeated-variable selections evaluate against
	// the candidate tuple alone, with no environment round-trip; that
	// is what lets the scan iterator filter during block refill. The
	// legacy recursive walk ignores both and uses args (provenance
	// capture needs every slot bound).
	binds  []bindPos
	checks []checkPair
}

// bindPos binds tuple position pos into environment slot slot.
type bindPos struct{ pos, slot int }

// checkPair requires the tuple values at pos and first to be equal.
type checkPair struct{ pos, first int }

type compiledClause struct {
	src *analysis.OrderedClause
	// srcText is the clause source rendered once at compile time, so
	// guard and panic diagnostics on the hot path cost no formatting.
	srcText  string
	headPred string
	headArgs []compiledArg
	lits     []compiledLit
	nslots   int
	// recPositions are the indices into lits that are recursive; the
	// semi-naive evaluator substitutes the delta relation at exactly one
	// of them per pass.
	recPositions []int
	// headBuf is scratch space for candidate head tuples; the relation
	// clones it on actual insertion (InsertShared).
	headBuf value.Tuple
	// iters is the streaming executor's per-literal cursor scratch,
	// allocated lazily on the first streaming walk. Like the other
	// scratch buffers it is single-threaded; clone() resets it.
	iters []litIter
}

// compileClause translates an ordered clause into slot form. stratumPred
// reports whether a predicate belongs to the stratum being compiled.
func compileClause(oc *analysis.OrderedClause, stratumPred func(string) bool) (*compiledClause, error) {
	cc, _, err := compile(oc, stratumPred, false)
	return cc, err
}

// compileClauseHeadBound compiles oc with every head variable bound
// BEFORE the first body literal: body occurrences of head variables
// become probe-able argBound positions, so the walk restricted to one
// candidate head tuple costs roughly the tuple's join degree instead of
// the clause's full join. The returned seed args describe, per head
// position, how to load a candidate tuple into the environment
// (argConst: the tuple value must equal the constant; argBind: store
// into the slot; argCheck: must equal the slot already stored by an
// earlier head position). This is the rederivation engine of the
// incremental maintenance layer (DRed's "does t still have a
// derivation?" probe).
func compileClauseHeadBound(oc *analysis.OrderedClause, stratumPred func(string) bool) (*compiledClause, []compiledArg, error) {
	return compile(oc, stratumPred, true)
}

func compile(oc *analysis.OrderedClause, stratumPred func(string) bool, headBound bool) (*compiledClause, []compiledArg, error) {
	slots := map[string]int{}
	slotOf := func(name string) int {
		if s, ok := slots[name]; ok {
			return s
		}
		s := len(slots)
		slots[name] = s
		return s
	}
	cc := &compiledClause{src: oc, srcText: oc.Source.String(), headPred: oc.Clause.Head.Pred}

	bound := map[string]bool{}
	var seed []compiledArg
	if headBound {
		for _, t := range oc.Clause.Head.Args {
			switch t := t.(type) {
			case ast.Const:
				seed = append(seed, compiledArg{kind: argConst, val: t.Val})
			case ast.Var:
				if bound[t.Name] {
					seed = append(seed, compiledArg{kind: argCheck, slot: slotOf(t.Name)})
				} else {
					bound[t.Name] = true
					seed = append(seed, compiledArg{kind: argBind, slot: slotOf(t.Name)})
				}
			default:
				return nil, nil, fmt.Errorf("compile %s: unsupported head term %T", oc.Source, t)
			}
		}
	}
	for li, l := range oc.Clause.Body {
		a := l.Atom
		cl := compiledLit{neg: l.Neg, pred: a.Pred, isID: a.IsID}
		if b, ok := arith.Lookup(a.Pred); ok {
			cl.builtin = b
		}
		if a.IsID {
			cl.idKey = analysis.IDNeed{Pred: a.Pred, Group: a.Group}.Key()
		}
		litSeen := map[string]int{} // var -> position of first in-literal binding
		for pos, t := range a.Args {
			switch t := t.(type) {
			case ast.Const:
				cl.args = append(cl.args, compiledArg{kind: argConst, val: t.Val})
			case ast.Var:
				switch {
				case bound[t.Name]:
					cl.args = append(cl.args, compiledArg{kind: argBound, slot: slotOf(t.Name)})
				case litSeen[t.Name] > 0:
					cl.args = append(cl.args, compiledArg{kind: argCheck, slot: slotOf(t.Name)})
				default:
					litSeen[t.Name] = pos + 1
					cl.args = append(cl.args, compiledArg{kind: argBind, slot: slotOf(t.Name)})
				}
			default:
				return nil, nil, fmt.Errorf("compile %s: unsupported term %T", oc.Source, t)
			}
		}
		if cl.builtin == nil {
			for pos, ca := range cl.args {
				if ca.kind == argConst || ca.kind == argBound {
					cl.probeCols = append(cl.probeCols, pos)
					cl.probeArgs = append(cl.probeArgs, ca)
				}
			}
			cl.keyBuf = make(value.Tuple, len(cl.probeArgs))
			if !l.Neg && !a.IsID && stratumPred(a.Pred) {
				cl.recursive = true
				cc.recPositions = append(cc.recPositions, li)
			}
		} else {
			cl.argsBuf = make([]value.Value, len(cl.args))
			cl.maskBuf = make([]bool, len(cl.args))
		}
		// A positive literal binds all its variables for later literals.
		if !l.Neg {
			for _, t := range a.Args {
				if v, ok := t.(ast.Var); ok {
					bound[v.Name] = true
				}
			}
		}
		cc.lits = append(cc.lits, cl)
	}
	for _, t := range oc.Clause.Head.Args {
		switch t := t.(type) {
		case ast.Const:
			cc.headArgs = append(cc.headArgs, compiledArg{kind: argConst, val: t.Val})
		case ast.Var:
			s, ok := slots[t.Name]
			if !ok {
				return nil, nil, fmt.Errorf("compile %s: head variable %s unbound (analysis should have caught this)", oc.Source, t.Name)
			}
			cc.headArgs = append(cc.headArgs, compiledArg{kind: argBound, slot: s})
		default:
			return nil, nil, fmt.Errorf("compile %s: unsupported head term %T", oc.Source, t)
		}
	}
	cc.nslots = len(slots)
	cc.headBuf = make(value.Tuple, len(cc.headArgs))
	compileStreamPlan(cc, seed)
	return cc, seed, nil
}

// compileStreamPlan computes the streaming executor's projection
// pushdown: per literal, the live argBind positions and the
// repeated-variable check pairs. A slot is live when some literal reads
// it as argBound (reads always follow the unique argBind site) or the
// head projects it; an argBind whose slot is never read is dead and the
// streaming walk skips the store. Head-bound clauses additionally keep
// every seed slot live (the rederivation probe seeds them before the
// walk). Safe because the only whole-environment reader, provenance
// capture, runs under Trace, which forces the legacy walk.
func compileStreamPlan(cc *compiledClause, seed []compiledArg) {
	live := make([]bool, cc.nslots)
	for _, a := range cc.headArgs {
		if a.kind != argConst {
			live[a.slot] = true
		}
	}
	for _, a := range seed {
		if a.kind != argConst {
			live[a.slot] = true
		}
	}
	for i := range cc.lits {
		for _, a := range cc.lits[i].args {
			if a.kind == argBound {
				live[a.slot] = true
			}
		}
	}
	for i := range cc.lits {
		cl := &cc.lits[i]
		first := make(map[int]int, len(cl.args))
		for pos, a := range cl.args {
			switch a.kind {
			case argBind:
				if _, ok := first[a.slot]; !ok {
					first[a.slot] = pos
				}
				if live[a.slot] {
					cl.binds = append(cl.binds, bindPos{pos: pos, slot: a.slot})
				}
			case argCheck:
				cl.checks = append(cl.checks, checkPair{pos: pos, first: first[a.slot]})
			}
		}
	}
}

// clone gives a parallel worker its own copy of the clause: the static
// plan (args, probe columns, positions) is shared, but every scratch
// buffer — the only mutable state — is fresh, so two workers can walk
// the same clause concurrently.
func (cc *compiledClause) clone() *compiledClause {
	c := *cc
	c.lits = make([]compiledLit, len(cc.lits))
	copy(c.lits, cc.lits)
	for i := range c.lits {
		cl := &c.lits[i]
		if cl.keyBuf != nil {
			cl.keyBuf = make(value.Tuple, len(cl.keyBuf))
		}
		if cl.argsBuf != nil {
			cl.argsBuf = make([]value.Value, len(cl.argsBuf))
		}
		if cl.maskBuf != nil {
			cl.maskBuf = make([]bool, len(cl.maskBuf))
		}
	}
	c.headBuf = make(value.Tuple, len(cc.headBuf))
	c.iters = nil
	return &c
}
