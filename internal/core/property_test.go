package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"idlog/internal/relation"
	"idlog/internal/value"
)

// bfsClosure computes the transitive closure of edges independently of
// the engine, as a reference.
func bfsClosure(edges [][2]int64) map[[2]int64]bool {
	adj := map[int64][]int64{}
	nodes := map[int64]bool{}
	for _, e := range edges {
		adj[e[0]] = append(adj[e[0]], e[1])
		nodes[e[0]], nodes[e[1]] = true, true
	}
	out := map[[2]int64]bool{}
	for n := range nodes {
		seen := map[int64]bool{}
		frontier := []int64{n}
		for len(frontier) > 0 {
			var next []int64
			for _, u := range frontier {
				for _, v := range adj[u] {
					if !seen[v] {
						seen[v] = true
						out[[2]int64{n, v}] = true
						next = append(next, v)
					}
				}
			}
			frontier = next
		}
	}
	return out
}

// TestTransitiveClosureAgainstBFSProperty cross-checks the engine on
// random graphs against an independent BFS implementation, under both
// evaluation strategies.
func TestTransitiveClosureAgainstBFSProperty(t *testing.T) {
	info := mustAnalyze(t, `
		tc(X, Y) :- e(X, Y).
		tc(X, Y) :- e(X, Z), tc(Z, Y).
	`)
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(7)
		var edges [][2]int64
		db := NewDatabase()
		for i := 0; i < n*n/2; i++ {
			e := [2]int64{int64(rng.Intn(n)), int64(rng.Intn(n))}
			edges = append(edges, e)
			_ = db.Add("e", value.Ints(e[0], e[1]))
		}
		want := bfsClosure(edges)
		for _, naive := range []bool{false, true} {
			res, err := Eval(info, db, Options{Naive: naive})
			if err != nil {
				t.Fatal(err)
			}
			tc := res.Relation("tc")
			if tc.Len() != len(want) {
				t.Fatalf("trial %d naive=%v: |tc| = %d, BFS says %d\nedges: %v",
					trial, naive, tc.Len(), len(want), edges)
			}
			for pair := range want {
				if !tc.Contains(value.Ints(pair[0], pair[1])) {
					t.Fatalf("trial %d: missing %v", trial, pair)
				}
			}
		}
	}
}

// TestEnumerationCoversAllIDFunctionsProperty: on random relations, the
// number of evaluation runs that Enumerate performs for the single-
// ID-literal program equals the number of ID-functions, and every
// enumerated answer is a valid "one per group" selection.
func TestEnumerationCoversAllIDFunctionsProperty(t *testing.T) {
	info := mustAnalyze(t, `pick(X, G) :- r[2](X, G, 0).`)
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 25; trial++ {
		db := NewDatabase()
		rel := relation.New("r", 2)
		groups := 1 + rng.Intn(3)
		for g := 0; g < groups; g++ {
			size := 1 + rng.Intn(3)
			for m := 0; m < size; m++ {
				tup := value.Tuple{value.Str(fmt.Sprintf("m%d_%d", g, m)), value.Str(fmt.Sprintf("g%d", g))}
				rel.MustInsert(tup)
			}
		}
		db.SetRelation("r", rel)
		answers, err := Enumerate(info, db, []string{"pick"}, EnumerateOptions{})
		if err != nil {
			t.Fatal(err)
		}
		// Distinct answers = product over groups of group size (choice
		// of the tid-0 member per group).
		wantAnswers := 1
		for _, g := range rel.Groups([]int{1}) {
			wantAnswers *= len(g.Members)
		}
		if len(answers) != wantAnswers {
			t.Fatalf("trial %d: %d answers, want %d (relation %v)", trial, len(answers), wantAnswers, rel)
		}
		for _, a := range answers {
			pick := a.Relations["pick"]
			if pick.Len() != groups {
				t.Fatalf("trial %d: answer %v does not pick one per group", trial, pick)
			}
			for _, tup := range pick.Tuples() {
				if !rel.Contains(tup) {
					t.Fatalf("trial %d: picked foreign tuple %v", trial, tup)
				}
			}
		}
	}
}

// TestSeminaiveNaiveAgreeOnRandomPrograms instantiates a family of
// small program templates with random data and checks strategy
// agreement on every output predicate.
func TestSeminaiveNaiveAgreeOnRandomPrograms(t *testing.T) {
	templates := []string{
		`p(X, Y) :- e(X, Y).
		 p(X, Y) :- p(X, Z), p(Z, Y).`,
		`odd(Y) :- base(X), succ(X, Y).
		 odd(Y) :- odd(X), succ(X, Z), succ(Z, Y), Y <= 20.`,
		`r(X) :- e(X, Y).
		 s(X) :- r(X), not t(X).
		 t(X) :- e(X, X).`,
	}
	rng := rand.New(rand.NewSource(77))
	for ti, src := range templates {
		info := mustAnalyze(t, src)
		for trial := 0; trial < 10; trial++ {
			db := NewDatabase()
			for i := 0; i < 3+rng.Intn(8); i++ {
				_ = db.Add("e", value.Ints(int64(rng.Intn(5)), int64(rng.Intn(5))))
			}
			_ = db.Add("base", value.Ints(int64(rng.Intn(3))))
			a, err := Eval(info, db, Options{})
			if err != nil {
				t.Fatal(err)
			}
			b, err := Eval(info, db, Options{Naive: true})
			if err != nil {
				t.Fatal(err)
			}
			for p := range info.IDB {
				if !a.Relation(p).Equal(b.Relation(p)) {
					t.Fatalf("template %d trial %d: strategies disagree on %s", ti, trial, p)
				}
			}
		}
	}
}

// TestOracleChoiceNeverChangesDeterministicPredicates: predicates that
// do not depend (transitively) on ID-literals must be identical across
// oracles.
func TestOracleChoiceNeverChangesDeterministicPredicates(t *testing.T) {
	info := mustAnalyze(t, `
		det(X) :- e(X, Y).
		nondet(X) :- e[1](X, Y, 0).
	`)
	rng := rand.New(rand.NewSource(5))
	db := NewDatabase()
	for i := 0; i < 20; i++ {
		_ = db.Add("e", value.Ints(int64(rng.Intn(6)), int64(rng.Intn(6))))
	}
	var detFP string
	for seed := uint64(0); seed < 10; seed++ {
		res, err := Eval(info, db, Options{Oracle: relation.RandomOracle{Seed: seed}})
		if err != nil {
			t.Fatal(err)
		}
		fp := res.Relation("det").Fingerprint()
		if detFP == "" {
			detFP = fp
		} else if fp != detFP {
			t.Fatalf("deterministic predicate varied with the oracle")
		}
	}
}

// TestParallelEvalWithDeepClones runs the same program concurrently on
// deep-cloned databases and checks all goroutines agree; run with
// -race in CI to certify isolation.
func TestParallelEvalWithDeepClones(t *testing.T) {
	info := mustAnalyze(t, `
		tc(X, Y) :- e(X, Y).
		tc(X, Y) :- e(X, Z), tc(Z, Y).
		pick(X) :- tc[1](X, Y, 0).
	`)
	base := NewDatabase()
	for i := int64(0); i < 30; i++ {
		_ = base.Add("e", value.Ints(i, i+1))
	}
	const workers = 8
	results := make([]string, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			db := base.DeepClone()
			res, err := Eval(info, db, Options{})
			if err != nil {
				errs[w] = err
				return
			}
			results[w] = res.Relation("tc").Fingerprint() + res.Relation("pick").Fingerprint()
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatalf("worker %d: %v", w, errs[w])
		}
		if results[w] != results[0] {
			t.Fatalf("worker %d disagrees", w)
		}
	}
}
