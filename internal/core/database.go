// Package core is the IDLOG evaluation engine: it computes the perfect
// model of a stratified IDLOG program (Theorem 1 of the paper) for a
// fixed assignment of ID-functions, and enumerates the answers of
// non-deterministic queries by walking all assignments (§3.1).
//
// The engine consumes the plan produced by internal/analysis: strata are
// evaluated in order; within a stratum, clauses run semi-naively to a
// fixpoint; ID-relations needed by a stratum are materialized from the
// already-computed relations under a pluggable relation.Oracle, which is
// the single source of non-determinism.
package core

import (
	"fmt"
	"sort"
	"sync/atomic"

	"idlog/internal/relation"
	"idlog/internal/value"
)

// dbVersions hands out process-unique database version stamps. Every
// database construction or mutation entry point (NewDatabase, Add,
// AddAll, SetRelation, Thaw, Clone, DeepClone, Apply) takes a fresh
// stamp, so two databases with equal versions are guaranteed to hold
// the same EDB contents — the invariant the plan cache keys on. The
// converse is deliberately not promised: equal contents may carry
// different stamps (a missed cache hit, never a wrong one). Mutating a
// relation directly (db.Relation(p).Insert(...)) bypasses the stamp;
// the supported mutation path is Add/SetRelation/Apply.
var dbVersions atomic.Uint64

func nextDBVersion() uint64 { return dbVersions.Add(1) }

// Database holds the input (EDB) relations for a query: the paper's
// input database r = (u-domain; r1, ..., rn).
//
// A Database is not safe for concurrent mutation. Freeze turns it into
// an immutable snapshot that any number of evaluations may share:
// evaluation never writes to input relations (derived tuples go to
// per-run work relations), and freezing closes the one remaining
// mutable path, the lazy secondary indexes built on first probe.
type Database struct {
	rels    map[string]*relation.Relation
	frozen  bool
	version uint64
}

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	return &Database{rels: make(map[string]*relation.Relation), version: nextDBVersion()}
}

// Version returns the database's content stamp: fresh on construction,
// re-stamped by every mutation through the database API (Add, AddAll,
// SetRelation) and by every derivation of a new database (Thaw, Clone,
// DeepClone, Apply). Equal versions imply equal contents; the plan
// cache uses the stamp to invalidate on Database.Apply without content
// hashing. Freeze does not change the version — it changes sharing,
// not contents.
func (db *Database) Version() uint64 { return db.version }

// Add inserts a tuple into the named relation, creating the relation
// with the tuple's arity on first use. Adding to a frozen database
// fails; Thaw a copy instead.
func (db *Database) Add(name string, t value.Tuple) error {
	if db.frozen {
		return fmt.Errorf("database: add %s to frozen database", name)
	}
	r, ok := db.rels[name]
	if !ok {
		r = relation.New(name, len(t))
		db.rels[name] = r
	}
	db.version = nextDBVersion()
	_, err := r.Insert(t)
	return err
}

// AddAll inserts a batch of tuples into the named relation.
func (db *Database) AddAll(name string, tuples ...value.Tuple) error {
	for _, t := range tuples {
		if err := db.Add(name, t); err != nil {
			return err
		}
	}
	return nil
}

// SetRelation installs (or replaces) a whole relation under name. It
// panics on a frozen database (a programming error: freeze last).
func (db *Database) SetRelation(name string, r *relation.Relation) {
	if db.frozen {
		panic(fmt.Sprintf("database: SetRelation(%s) on frozen database", name))
	}
	db.rels[name] = r
	db.version = nextDBVersion()
}

// Freeze makes the database and every relation in it immutable and
// safe for concurrent readers (see relation.Relation.Freeze). Call it
// once, before sharing the database between goroutines; a frozen
// database rejects Add and panics on SetRelation. It returns db for
// chaining.
func (db *Database) Freeze() *Database {
	if db.frozen {
		return db
	}
	for _, r := range db.rels {
		r.Freeze()
	}
	db.frozen = true
	return db
}

// Frozen reports whether Freeze has been called.
func (db *Database) Frozen() bool { return db.frozen }

// Thaw returns a mutable copy of the database: relation contents are
// shared copy-on-insert (tuples are immutable by convention), the set
// structure and indexes are independent. Use it to derive the next
// snapshot from a frozen one: thaw, add facts, freeze, swap.
func (db *Database) Thaw() *Database {
	c := NewDatabase()
	for n, r := range db.rels {
		c.rels[n] = r.Clone()
	}
	return c
}

// Relation returns the named relation, or nil when absent.
func (db *Database) Relation(name string) *relation.Relation {
	return db.rels[name]
}

// Names returns the relation names present, sorted.
func (db *Database) Names() []string {
	out := make([]string, 0, len(db.rels))
	for n := range db.rels {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Clone returns a database sharing relation contents (relations are not
// mutated by evaluation) but with an independent name table.
func (db *Database) Clone() *Database {
	c := NewDatabase()
	for n, r := range db.rels {
		c.rels[n] = r
	}
	return c
}

// Stats accumulates evaluation counters. The TuplesScanned and
// Derivations counters are the "intermediate redundant tuples" measure
// used by the optimization experiments (§4 of the paper).
type Stats struct {
	// Derivations counts successful body instantiations (head tuples
	// produced, including duplicates of already-known tuples).
	Derivations int
	// Inserted counts genuinely new tuples added to IDB relations.
	Inserted int
	// TuplesScanned counts tuples inspected while matching relational
	// body literals.
	TuplesScanned int
	// Iterations counts fixpoint rounds across all strata.
	Iterations int
	// IDRelations counts materialized ID-relations.
	IDRelations int
	// Partitions is the partition fan-out of the run: the largest
	// partition count any partitioned delta unit evaluated with (0 when
	// no unit was partitioned — cross-partition fallback or partitioning
	// off).
	Partitions int
	// PartitionedRounds counts fixpoint rounds in which at least one
	// delta unit ran partition-parallel.
	PartitionedRounds int
	// PartitionSkew is the worst observed partition imbalance: the
	// largest delta partition's tuple count over the mean, maximized
	// across all partitioned rounds (1.0 = perfectly even, 0 when
	// nothing was partitioned).
	PartitionSkew float64
}

// Add accumulates other into s. The additive counters sum; the
// partition fan-out and skew are high-water marks and take the max, so
// an aggregate over many queries reports the widest fan-out and worst
// imbalance seen.
func (s *Stats) Add(other Stats) {
	s.Derivations += other.Derivations
	s.Inserted += other.Inserted
	s.TuplesScanned += other.TuplesScanned
	s.Iterations += other.Iterations
	s.IDRelations += other.IDRelations
	s.PartitionedRounds += other.PartitionedRounds
	if other.Partitions > s.Partitions {
		s.Partitions = other.Partitions
	}
	if other.PartitionSkew > s.PartitionSkew {
		s.PartitionSkew = other.PartitionSkew
	}
}

// String summarizes the counters.
func (s Stats) String() string {
	out := fmt.Sprintf("derivations=%d inserted=%d scanned=%d iterations=%d idrels=%d",
		s.Derivations, s.Inserted, s.TuplesScanned, s.Iterations, s.IDRelations)
	if s.Partitions > 0 {
		out += fmt.Sprintf(" partitions=%d partitioned_rounds=%d skew=%.2f",
			s.Partitions, s.PartitionedRounds, s.PartitionSkew)
	}
	return out
}

// Result is the computed perfect model: every program relation (EDB and
// IDB) plus the materialized ID-relations, and the run's statistics.
//
// A governed run that trips (cancellation, deadline, budget, injected
// fault) still returns its Result: Incomplete is set, CompletedStrata
// reports how many strata reached fixpoint, and Err carries the typed
// triggering error. Partial models are sound prefixes — every tuple
// they contain is derivable under the run's oracle (stratification
// means negation only ever consults fully computed strata).
type Result struct {
	rels   map[string]*relation.Relation
	idrels map[string]*relation.Relation
	prov   map[string]provEntry
	// Stats holds the evaluation counters for this run.
	Stats Stats
	// Incomplete marks a partial model from a tripped run.
	Incomplete bool
	// CompletedStrata counts the strata evaluated to fixpoint; tuples
	// from the stratum that tripped are present but that stratum is
	// not saturated.
	CompletedStrata int
	// Err is the typed error that stopped an incomplete run, nil for
	// complete ones. The same error is returned by Eval.
	Err error
}

// Relation returns the named relation from the model. IDB predicates
// with no derived tuples yield an empty relation rather than nil.
func (r *Result) Relation(name string) *relation.Relation {
	return r.rels[name]
}

// IDRelation returns a materialized ID-relation by its need key, e.g.
// "emp[1]" (0-based columns); mainly for tests and debugging.
func (r *Result) IDRelation(key string) *relation.Relation {
	return r.idrels[key]
}

// Relations returns the names of all relations in the model, sorted.
func (r *Result) Relations() []string {
	out := make([]string, 0, len(r.rels))
	for n := range r.rels {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// DeepClone returns a database whose relations are rebuilt copies
// sharing no internal state with db; use it to hand inputs to parallel
// evaluations (relations build indexes lazily and are not safe for
// concurrent use).
func (db *Database) DeepClone() *Database {
	c := NewDatabase()
	for n, r := range db.rels {
		c.rels[n] = r.DeepClone()
	}
	return c
}
