package core

import (
	"fmt"
	"math"
	"strings"
	"sync/atomic"

	"idlog/internal/analysis"
	"idlog/internal/arith"
	"idlog/internal/ast"
	"idlog/internal/relation"
)

// This file is the cost-based join planner. Analysis produces a SAFE
// body order (internal/analysis/safety.go); at stratum-compile time,
// when relation cardinalities are known, the planner re-orders each body
// by estimated selectivity under the same eligibility rules, and builds
// the delta-first clause variants that let semi-naive passes enumerate
// the (small) delta at depth 0 instead of a full relation. Correctness
// never depends on the chosen order — any eligibility-respecting order
// computes the same perfect model — so Options.NoPlanner can fall back
// to the analysis order at any time.

// planReorders counts clause compilations whose planned body order
// differs from the analysis safety order (including delta-first
// variants that moved the delta literal). Process-global, exported for
// the idlogd /metrics endpoint.
var planReorders atomic.Uint64

// PlanReordersTotal reports how many compiled clause bodies the cost
// planner has reordered away from the analysis order in this process.
func PlanReordersTotal() uint64 { return planReorders.Load() }

// cardFn snapshots the estimated tuple count of the relation a body
// literal reads at plan time.
type cardFn func(l *ast.Literal) float64

// stratumCard builds the cardinality snapshot for planning stratum s:
// relations of earlier strata (and the EDB) report their exact current
// size, materialized ID-relations their size, and same-stratum
// predicates — empty at plan time — a crude "recursive output outgrows
// its feeders" default of 4x the largest relation the stratum reads.
func stratumCard(s *analysis.Stratum, inStratum map[string]bool, rels, idrels map[string]*relation.Relation) cardFn {
	def := 32.0
	for _, oc := range s.Clauses {
		for _, l := range oc.Clause.Body {
			a := l.Atom
			if a == nil || arith.IsBuiltin(a.Pred) || a.IsID || inStratum[a.Pred] {
				continue
			}
			if r := rels[a.Pred]; r != nil && float64(r.EstimateCard()) > def {
				def = float64(r.EstimateCard())
			}
		}
	}
	def *= 4
	return func(l *ast.Literal) float64 {
		a := l.Atom
		if a.IsID {
			if r := idrels[analysis.IDNeed{Pred: a.Pred, Group: a.Group}.Key()]; r != nil {
				return float64(r.EstimateCard())
			}
			return def
		}
		if inStratum[a.Pred] {
			return def
		}
		if r := rels[a.Pred]; r != nil {
			return float64(r.EstimateCard())
		}
		return def
	}
}

// estCost estimates the number of body instantiations literal l
// contributes when evaluated next under the given bound variables: for
// a relational literal with b of its a argument positions bound, the
// classic card^((a-b)/a) reduction (a full probe key ≈ one membership
// test, a cold scan ≈ the whole relation). Negated literals are pure
// filters and interpreted literals bounded computations, so both are
// scheduled as early as eligibility allows.
func estCost(l *ast.Literal, bound map[string]bool, card cardFn) float64 {
	a := l.Atom
	if arith.IsBuiltin(a.Pred) {
		return 0.5
	}
	if l.Neg {
		return 0.25
	}
	n := card(l)
	if n < 1 {
		n = 1
	}
	arity := len(a.Args)
	if arity == 0 {
		return 1
	}
	b := analysis.BoundCount(l, bound)
	if b > arity {
		b = arity
	}
	return math.Pow(n, float64(arity-b)/float64(arity))
}

// planBody greedily orders body (any safe order) by estimated cost,
// binding variables as it goes. forced, when >= 0, pins body[forced] to
// depth 0 — the delta-first rotation of semi-naive variants (positive
// relational literals are always eligible, so pinning one is safe).
// Returns nil if no eligible literal remains at some step; with the
// upward-closed builtin patterns this cannot happen for an
// analysis-ordered body, but callers fall back defensively.
func planBody(body []*ast.Literal, forced int, card cardFn) []*ast.Literal {
	return planBodyBound(body, nil, forced, card)
}

// planBodyBound is planBody with pre-bound variables: head-bound
// rederivation probes seed their environment from the candidate tuple,
// so every head variable is bound before the body starts and the
// planner may order (and cost) the body under that binding.
func planBodyBound(body []*ast.Literal, pre map[string]bool, forced int, card cardFn) []*ast.Literal {
	bound := map[string]bool{}
	for v := range pre {
		bound[v] = true
	}
	remaining := make([]*ast.Literal, len(body))
	copy(remaining, body)
	ordered := make([]*ast.Literal, 0, len(body))
	if forced >= 0 {
		l := remaining[forced]
		remaining = append(remaining[:forced], remaining[forced+1:]...)
		ordered = append(ordered, l)
		analysis.Bind(l, bound)
	}
	for len(remaining) > 0 {
		best := -1
		bestCost := math.Inf(1)
		for i, l := range remaining {
			if !analysis.Eligible(l, bound) {
				continue
			}
			// Strict < keeps the earliest literal on ties: deterministic,
			// and follows the source order like the analysis tie-break.
			if c := estCost(l, bound, card); c < bestCost {
				best, bestCost = i, c
			}
		}
		if best < 0 {
			return nil
		}
		l := remaining[best]
		remaining = append(remaining[:best], remaining[best+1:]...)
		ordered = append(ordered, l)
		analysis.Bind(l, bound)
	}
	return ordered
}

// sameBody reports whether two body orders are identical.
func sameBody(a, b []*ast.Literal) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// reordered wraps a planned body back into an OrderedClause, counting
// the reorder when the plan differs from the reference order.
func reordered(oc *analysis.OrderedClause, body []*ast.Literal, ref []*ast.Literal) *analysis.OrderedClause {
	if sameBody(body, ref) {
		return oc
	}
	planReorders.Add(1)
	return &analysis.OrderedClause{
		Clause:    &ast.Clause{Head: oc.Clause.Head, Body: body},
		Source:    oc.Source,
		Recursive: oc.Recursive,
	}
}

// planUnit is one semi-naive delta work item: clause all[idx] with the
// delta relation substituted at body position pos. Planner-built
// variants always carry pos == 0 (the delta literal is rotated to depth
// 0, so each pass enumerates the delta and probes the rest). part,
// when non-nil, records the planner's partition key for the unit;
// whether (and how wide) the unit actually partitions is a runtime
// decision (Options.Partitions), so the spec is static and shared by
// plan-cache clones.
type planUnit struct {
	idx  int
	pos  int
	part *partSpec
}

// partSpec is the partitioning decision of one delta-first unit: the
// delta enumerated at depth 0 is radix-partitioned on its column
// deltaCol, and the literal at probeDepth reads a partition of its
// relation on column probeCol instead of the whole thing. Both columns
// hold the same join variable (pvar, kept for ExplainPlan), and the
// probe at probeDepth includes that variable in its key, so every
// probe tuple matching a delta tuple hashes to the same partition —
// the co-placement property that makes per-partition evaluation cover
// exactly the unpartitioned matches. partSpec is immutable after
// compilation (stratumPlan clones share it).
type partSpec struct {
	deltaCol   int
	probeDepth int
	probeCol   int
	pvar       string
}

// choosePartition picks the partition key of a delta-first body (the
// delta literal at position 0), or nil when the unit must fall back to
// the cross-partition (range-sharded) path. Fallback cases:
//   - the body contains a negated or ID-literal (they read shared
//     relations whose semantics partitioning must not touch — the
//     conservative matrix from DESIGN §10);
//   - no variable of the delta literal is probed by a later relational
//     literal (no partitionable join key).
//
// Among the candidates, the probe literal with the largest estimated
// cardinality wins — that relation gains most from partition-local
// indexes — with ties broken toward the earliest depth and column, so
// the choice is deterministic.
func choosePartition(body []*ast.Literal, card cardFn) *partSpec {
	if len(body) < 2 {
		return nil
	}
	d := body[0].Atom
	if body[0].Neg || d == nil || d.IsID || arith.IsBuiltin(d.Pred) {
		return nil
	}
	for _, l := range body {
		if l.Neg || (l.Atom != nil && l.Atom.IsID) {
			return nil
		}
	}
	var best *partSpec
	bestCard := -1.0
	for dc, t := range d.Args {
		v, ok := t.(ast.Var)
		if !ok {
			continue
		}
		if first := firstVarCol(d, v.Name); first != dc {
			continue // partition on the variable's first delta column only
		}
		for depth := 1; depth < len(body); depth++ {
			a := body[depth].Atom
			if a == nil || arith.IsBuiltin(a.Pred) {
				continue
			}
			pc := firstVarCol(a, v.Name)
			if pc < 0 {
				continue
			}
			// v is bound at depth 0, so column pc compiles to a probe key
			// position of this literal: partition-local probing is exact.
			if c := card(body[depth]); c > bestCard {
				bestCard = c
				best = &partSpec{deltaCol: dc, probeDepth: depth, probeCol: pc, pvar: v.Name}
			}
		}
	}
	return best
}

// firstVarCol returns the first argument position of atom a holding
// variable name, or -1.
func firstVarCol(a *ast.Atom, name string) int {
	for i, t := range a.Args {
		if v, ok := t.(ast.Var); ok && v.Name == name {
			return i
		}
	}
	return -1
}

// stratumPlan is the compiled evaluation plan of one stratum: the
// seed-pass clauses (all[:nseed], one per source clause, in source
// order), the delta-first variant clauses appended after them, and the
// per-seed-clause delta units driving semi-naive rounds. Sequential and
// parallel fixpoints iterate units in the same nested order, which keeps
// their insertion orders identical.
type stratumPlan struct {
	all   []*compiledClause
	nseed int
	units [][]planUnit
}

// setCardHints snapshots the planner's cardinality estimate into each
// probed relational literal, so a probe that has to build its index
// mid-fixpoint pre-sizes the bucket map for the relation's estimated
// final size (relation.ProbeHint) instead of its current length.
func setCardHints(cc *compiledClause, card cardFn) {
	body := cc.src.Clause.Body
	if card == nil || len(cc.lits) != len(body) {
		return
	}
	for i := range cc.lits {
		cl := &cc.lits[i]
		if cl.builtin != nil || cl.neg || len(cl.probeCols) == 0 {
			continue
		}
		if est := card(body[i]); est > 0 {
			cl.cardHint = int(est)
		}
	}
}

// compileStratumPlan compiles stratum s. With the planner on, every
// clause body is selectivity-ordered under the cardinality snapshot and
// every recursive position gets a delta-first variant; with it off, the
// analysis order is compiled as-is and deltas substitute in place.
func compileStratumPlan(s *analysis.Stratum, inStratum func(string) bool, card cardFn, noPlanner bool) (*stratumPlan, error) {
	sp := &stratumPlan{}
	for _, oc := range s.Clauses {
		soc := oc
		if !noPlanner {
			if body := planBody(oc.Clause.Body, -1, card); body != nil {
				soc = reordered(oc, body, oc.Clause.Body)
			}
		}
		cc, err := compileClause(soc, inStratum)
		if err != nil {
			return nil, err
		}
		setCardHints(cc, card)
		sp.all = append(sp.all, cc)
	}
	sp.nseed = len(sp.all)
	sp.units = make([][]planUnit, sp.nseed)
	for ci := 0; ci < sp.nseed; ci++ {
		cc := sp.all[ci]
		for _, pos := range cc.recPositions {
			if noPlanner {
				sp.units[ci] = append(sp.units[ci], planUnit{idx: ci, pos: pos})
				continue
			}
			body := cc.src.Clause.Body
			vbody := planBody(body, pos, card)
			if vbody == nil {
				sp.units[ci] = append(sp.units[ci], planUnit{idx: ci, pos: pos})
				continue
			}
			voc := reordered(cc.src, vbody, body)
			if voc == cc.src {
				// The delta literal already sits at depth 0 of the seed
				// plan and nothing else moved: reuse the seed clause.
				u := planUnit{idx: ci, pos: pos}
				if pos == 0 {
					u.part = choosePartition(body, card)
				}
				sp.units[ci] = append(sp.units[ci], u)
				continue
			}
			vcc, err := compileClause(voc, inStratum)
			if err != nil {
				return nil, err
			}
			setCardHints(vcc, card)
			sp.units[ci] = append(sp.units[ci],
				planUnit{idx: len(sp.all), pos: 0, part: choosePartition(vbody, card)})
			sp.all = append(sp.all, vcc)
		}
	}
	return sp, nil
}

// planner reports whether this run compiles with the cost planner.
// Trace runs stick to the analysis order so recorded provenance (and
// Result.Explain output) is independent of cardinalities.
func (o Options) planner() bool { return !o.NoPlanner && !o.Trace }

// PlannerEnabled reports whether these Options compile with the cost
// planner (off when NoPlanner is set, or when Trace records provenance,
// which must stay independent of cardinalities).
func (o Options) PlannerEnabled() bool { return o.planner() }

// ExplainPlan renders the join plans the engine uses for info over db:
// per stratum and clause, the chosen literal order with probe columns
// and estimated cardinalities, plus each recursive clause's delta-first
// variants. It evaluates the program once (same opts) so the rendered
// cardinality snapshots match the ones the planner saw at each
// stratum's start; the result is discarded.
func ExplainPlan(info *analysis.Info, db *Database, opts Options) (string, error) {
	res, err := Eval(info, db, opts)
	if err != nil {
		return "", err
	}
	noPlanner := !opts.planner()
	parts := 0
	if !noPlanner && !opts.Naive {
		if p := opts.EffectivePartitions(); p > 1 {
			parts = p
		}
	}
	var b strings.Builder
	for si, s := range info.Strata {
		inStratum := map[string]bool{}
		for _, p := range s.Preds {
			inStratum[p] = true
		}
		card := stratumCard(s, inStratum, res.rels, res.idrels)
		fmt.Fprintf(&b, "stratum %d: %s\n", si, strings.Join(s.Preds, ", "))
		for _, oc := range s.Clauses {
			explainClause(&b, oc, inStratum, card, noPlanner, parts)
		}
	}
	if noPlanner {
		b.WriteString("(planner off: bodies in analysis order, deltas substituted in place)\n")
	}
	return b.String(), nil
}

// explainClause writes the plan lines of one clause. parts > 1 means
// the run partitions delta units that many ways; each delta variant
// then gets a line showing the chosen partition key, or the fallback.
func explainClause(b *strings.Builder, oc *analysis.OrderedClause, inStratum map[string]bool, card cardFn, noPlanner bool, parts int) {
	if len(oc.Clause.Body) == 0 {
		return // facts have no join to plan
	}
	fmt.Fprintf(b, "  clause %s\n", oc.Source)
	body := oc.Clause.Body
	if !noPlanner {
		if p := planBody(body, -1, card); p != nil {
			body = p
		}
	}
	writePlanLine(b, "plan", body, -1, card)
	for pos, l := range body {
		a := l.Atom
		if l.Neg || a == nil || a.IsID || arith.IsBuiltin(a.Pred) || !inStratum[a.Pred] {
			continue
		}
		label := "delta " + a.Pred
		if noPlanner {
			writePlanLine(b, label, body, pos, card)
			continue
		}
		vbody := planBody(body, pos, card)
		if vbody == nil {
			vbody = body
		}
		writePlanLine(b, label, vbody, 0, card)
		if parts > 1 {
			if spec := choosePartition(vbody, card); spec != nil {
				fmt.Fprintf(b, "      partition: %d ways on %s (delta col %d ⋈ %s col %d)\n",
					parts, spec.pvar, spec.deltaCol, vbody[spec.probeDepth].Atom.Pred, spec.probeCol)
			} else {
				b.WriteString("      partition: none (cross-partition fallback: range-sharded)\n")
			}
		}
	}
}

// writePlanLine renders one literal order: each step shows the literal,
// its access path (delta/scan/probe with the 0-based probe columns, or
// filter/compute for negated and interpreted literals) and the
// estimated rows it contributes.
func writePlanLine(b *strings.Builder, label string, body []*ast.Literal, deltaPos int, card cardFn) {
	fmt.Fprintf(b, "    %s:", label)
	bound := map[string]bool{}
	for i, l := range body {
		if i > 0 {
			b.WriteString(" ;")
		}
		a := l.Atom
		fmt.Fprintf(b, " %s", l)
		switch {
		case arith.IsBuiltin(a.Pred):
			b.WriteString(" [compute]")
		case l.Neg:
			b.WriteString(" [filter]")
		default:
			var probe []int
			for pos, t := range a.Args {
				switch t := t.(type) {
				case ast.Const:
					probe = append(probe, pos)
				case ast.Var:
					if bound[t.Name] {
						probe = append(probe, pos)
					}
				}
			}
			est := estCost(l, bound, card)
			switch {
			case i == deltaPos:
				b.WriteString(" [delta scan]")
			case len(probe) == 0:
				fmt.Fprintf(b, " [scan ~%.0f]", est)
			default:
				cols := make([]string, len(probe))
				for j, c := range probe {
					cols[j] = fmt.Sprintf("%d", c)
				}
				fmt.Fprintf(b, " [probe (%s) ~%.0f]", strings.Join(cols, ","), est)
			}
		}
		analysis.Bind(l, bound)
	}
	b.WriteByte('\n')
}
