package core

import (
	"math/rand"
	"strings"
	"testing"

	"idlog/internal/analysis"
	"idlog/internal/ast"
	"idlog/internal/relation"
	"idlog/internal/value"
)

// planFor analyzes src and returns the planned body order of the first
// clause of the last stratum as a rendered string, under a fixed
// cardinality table (pred -> size).
func planFor(t *testing.T, src string, cards map[string]int, forced int) string {
	t.Helper()
	info := mustAnalyze(t, src)
	var oc *analysis.OrderedClause
	for _, s := range info.Strata {
		for _, c := range s.Clauses {
			if oc == nil || len(c.Clause.Body) > len(oc.Clause.Body) {
				oc = c
			}
		}
	}
	body := planBody(oc.Clause.Body, forced, func(l *ast.Literal) float64 {
		if n, ok := cards[l.Atom.Pred]; ok {
			return float64(n)
		}
		return 1000
	})
	if body == nil {
		return "<nil>"
	}
	parts := make([]string, len(body))
	for i, l := range body {
		parts[i] = l.String()
	}
	return strings.Join(parts, ", ")
}

// TestPlanBodySelectivityOrder: the greedy planner starts with the
// smallest relation, follows bound-variable probes, and schedules
// filters (negation, builtins) as soon as they are eligible.
func TestPlanBodySelectivityOrder(t *testing.T) {
	src := `
		sel(z9).
		big1(a, b). big2(b, c).
		hit(X, Z) :- big1(X, Y), big2(Y, Z), sel(Z).
	`
	got := planFor(t, src, map[string]int{"big1": 100000, "big2": 100000, "sel": 2}, -1)
	want := "sel(Z), big2(Y, Z), big1(X, Y)"
	if got != want {
		t.Fatalf("plan = %s, want %s", got, want)
	}
}

// TestPlanBodyForcedDeltaPin: pinning a literal (the delta-first
// rotation) puts it at depth 0 and replans the rest around its
// bindings.
func TestPlanBodyForcedDeltaPin(t *testing.T) {
	src := `
		sel(z9).
		big1(a, b). big2(b, c).
		hit(X, Z) :- big1(X, Y), big2(Y, Z), sel(Z).
	`
	got := planFor(t, src, map[string]int{"big1": 100000, "big2": 100000, "sel": 2}, 1)
	if !strings.HasPrefix(got, "big2(Y, Z)") {
		t.Fatalf("forced literal not at depth 0: %s", got)
	}
	// With Z bound by big2, sel(Z) is a full-key probe and goes next.
	if got != "big2(Y, Z), sel(Z), big1(X, Y)" {
		t.Fatalf("plan = %s", got)
	}
}

// TestPlanBodyKeepsNegationAndBuiltinsSafe: negated and interpreted
// literals may never run before their variables are bound, whatever
// the cardinalities say.
func TestPlanBodyKeepsNegationAndBuiltinsSafe(t *testing.T) {
	src := `
		blk(a). e(a, b).
		r(X, S) :- e(X, Y), not blk(Y), add(X, Y, S).
	`
	got := planFor(t, src, map[string]int{"e": 1000000, "blk": 1}, -1)
	if !strings.HasPrefix(got, "e(X, Y)") {
		t.Fatalf("ineligible literal scheduled first: %s", got)
	}
}

// TestPlanBodyTieKeepsSourceOrder: equal costs preserve the written
// order, keeping plans deterministic.
func TestPlanBodyTieKeepsSourceOrder(t *testing.T) {
	src := `
		p(a, b). q(a, b).
		r(X, Y) :- p(X, Y), q(X, Y).
	`
	got := planFor(t, src, map[string]int{"p": 50, "q": 50}, -1)
	if got != "p(X, Y), q(X, Y)" {
		t.Fatalf("tie broke source order: %s", got)
	}
}

// TestPlannerOnOffAgreeOnRandomPrograms is the planner's differential
// property test: over random databases and a family of join-heavy
// programs (recursion, negation, builtins, ID-literals under a fixed
// seed), planner-on and planner-off runs — sequential and with 4
// workers — must produce byte-identical relations and fingerprints.
func TestPlannerOnOffAgreeOnRandomPrograms(t *testing.T) {
	programs := []string{
		`tc(X, Y) :- e(X, Y).
		 tc(X, Y) :- e(X, Z), tc(Z, Y).`,
		`hit(X, Z) :- e(X, Y), e(Y, Z), sel(Z).`,
		`reach(X) :- start(X).
		 reach(Y) :- reach(X), e(X, Y).
		 dead(X) :- node(X), not reach(X).`,
		`sum2(X, Z, S) :- e(X, Y), e(Y, Z), add(X, Z, S), S < 9.`,
		`pick(X) :- e[1](X, Y, 0).
		 pair(X, Z) :- pick(X), e(X, Z).`,
	}
	rng := rand.New(rand.NewSource(99))
	for pi, src := range programs {
		info := mustAnalyze(t, src)
		for trial := 0; trial < 6; trial++ {
			db := NewDatabase()
			for i := 0; i < 4+rng.Intn(20); i++ {
				_ = db.Add("e", value.Ints(int64(rng.Intn(6)), int64(rng.Intn(6))))
			}
			_ = db.Add("sel", value.Ints(int64(rng.Intn(6))))
			_ = db.Add("start", value.Ints(0))
			for i := 0; i < 6; i++ {
				_ = db.Add("node", value.Ints(int64(i)))
			}
			db.Freeze()
			oracle := relation.RandomOracle{Seed: uint64(trial)}
			variants := []Options{
				{Oracle: oracle},
				{Oracle: oracle, NoPlanner: true},
				{Oracle: oracle, Parallelism: 4},
				{Oracle: oracle, NoPlanner: true, Parallelism: 4},
			}
			var ref map[string]string
			for vi, opts := range variants {
				res, err := Eval(info, db, opts)
				if err != nil {
					t.Fatalf("program %d trial %d variant %d: %v", pi, trial, vi, err)
				}
				got := map[string]string{}
				for p := range info.IDB {
					got[p] = res.Relation(p).Fingerprint()
				}
				if vi == 0 {
					ref = got
					continue
				}
				for p, fp := range ref {
					if got[p] != fp {
						t.Fatalf("program %d trial %d: variant %d differs on %s\nsrc: %s",
							pi, trial, vi, p, src)
					}
				}
			}
		}
	}
}

// TestExplainPlanRendersProbesAndDeltas exercises the core ExplainPlan
// renderer directly, planner on and off.
func TestExplainPlanRendersProbesAndDeltas(t *testing.T) {
	info := mustAnalyze(t, `
		tc(X, Y) :- e(X, Y).
		tc(X, Z) :- tc(X, Y), e(Y, Z).
	`)
	db := NewDatabase()
	_ = db.AddAll("e", value.Ints(1, 2), value.Ints(2, 3))
	out, err := ExplainPlan(info, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"stratum 0", "plan:", "[delta scan]", "[probe (0) ~", "delta tc:"} {
		if !strings.Contains(out, want) {
			t.Fatalf("ExplainPlan missing %q:\n%s", want, out)
		}
	}
	off, err := ExplainPlan(info, db, Options{NoPlanner: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(off, "(planner off") {
		t.Fatalf("planner-off note missing:\n%s", off)
	}
}

// TestPlanReordersCounter: evaluating an adversarially ordered body
// with the planner on must bump the process-global reorder counter.
func TestPlanReordersCounter(t *testing.T) {
	info := mustAnalyze(t, `hit(X, Z) :- e(X, Y), e(Y, Z), sel(Z).`)
	db := NewDatabase()
	for i := 0; i < 50; i++ {
		_ = db.Add("e", value.Ints(int64(i%7), int64((i+1)%7)))
	}
	_ = db.Add("sel", value.Ints(3))
	before := PlanReordersTotal()
	if _, err := Eval(info, db, Options{}); err != nil {
		t.Fatal(err)
	}
	if PlanReordersTotal() <= before {
		t.Fatal("planner reordered nothing on an adversarial body")
	}
}
