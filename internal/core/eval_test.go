package core

import (
	"strings"
	"testing"

	"idlog/internal/analysis"
	"idlog/internal/parser"
	"idlog/internal/relation"
	"idlog/internal/value"
)

func mustAnalyze(t *testing.T, src string) *analysis.Info {
	t.Helper()
	prog, err := parser.Program(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := analysis.Analyze(prog)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return info
}

func mustEval(t *testing.T, src string, db *Database, opts Options) *Result {
	t.Helper()
	res, err := Eval(mustAnalyze(t, src), db, opts)
	if err != nil {
		t.Fatalf("eval: %v", err)
	}
	return res
}

func empDB() *Database {
	db := NewDatabase()
	for _, e := range [][2]string{
		{"joe", "toys"}, {"sue", "toys"}, {"ann", "toys"},
		{"bob", "shoes"}, {"eve", "shoes"},
	} {
		if err := db.Add("emp", value.Strs(e[0], e[1])); err != nil {
			panic(err)
		}
	}
	return db
}

func chainDB(n int) *Database {
	db := NewDatabase()
	for i := 0; i < n; i++ {
		_ = db.Add("e", value.Tuple{value.Int(int64(i)), value.Int(int64(i + 1))})
	}
	return db
}

func TestFactsOnly(t *testing.T) {
	res := mustEval(t, "p(a). p(b). q(a, 1).", NewDatabase(), Options{})
	if res.Relation("p").Len() != 2 || res.Relation("q").Len() != 1 {
		t.Fatalf("p=%v q=%v", res.Relation("p"), res.Relation("q"))
	}
}

func TestTransitiveClosure(t *testing.T) {
	src := `
		tc(X, Y) :- e(X, Y).
		tc(X, Y) :- e(X, Z), tc(Z, Y).
	`
	res := mustEval(t, src, chainDB(10), Options{})
	tc := res.Relation("tc")
	want := 10 * 11 / 2 // pairs (i,j) with i<j over 0..10
	if tc.Len() != want {
		t.Fatalf("tc has %d tuples, want %d", tc.Len(), want)
	}
	if !tc.Contains(value.Tuple{value.Int(0), value.Int(10)}) {
		t.Fatalf("missing (0,10)")
	}
	if tc.Contains(value.Tuple{value.Int(5), value.Int(3)}) {
		t.Fatalf("contains backwards edge (5,3)")
	}
}

func TestNaiveAndSeminaiveAgree(t *testing.T) {
	src := `
		tc(X, Y) :- e(X, Y).
		tc(X, Y) :- e(X, Z), tc(Z, Y).
	`
	db := chainDB(15)
	a := mustEval(t, src, db, Options{})
	b := mustEval(t, src, db, Options{Naive: true})
	if !a.Relation("tc").Equal(b.Relation("tc")) {
		t.Fatalf("naive and semi-naive disagree")
	}
	if b.Stats.Derivations <= a.Stats.Derivations {
		t.Fatalf("naive should do more work: naive=%d seminaive=%d",
			b.Stats.Derivations, a.Stats.Derivations)
	}
}

func TestNegationStrata(t *testing.T) {
	src := `
		reach(X) :- start(X).
		reach(Y) :- reach(X), e(X, Y).
		node(X) :- e(X, Y).
		node(Y) :- e(X, Y).
		unreach(X) :- node(X), not reach(X).
	`
	db := NewDatabase()
	_ = db.AddAll("e",
		value.Strs("a", "b"), value.Strs("b", "c"), value.Strs("d", "e"))
	_ = db.Add("start", value.Strs("a"))
	res := mustEval(t, src, db, Options{})
	unreach := res.Relation("unreach")
	if unreach.Len() != 2 || !unreach.Contains(value.Strs("d")) || !unreach.Contains(value.Strs("e")) {
		t.Fatalf("unreach = %v", unreach)
	}
}

func TestArithmeticRecursion(t *testing.T) {
	src := `
		nat(0).
		nat(Y) :- nat(X), X < 10, succ(X, Y).
		total(S) :- nat(10), add(5, 5, S).
	`
	res := mustEval(t, src, NewDatabase(), Options{})
	if res.Relation("nat").Len() != 11 {
		t.Fatalf("nat = %v", res.Relation("nat"))
	}
	if !res.Relation("total").Contains(value.Ints(10)) {
		t.Fatalf("total = %v", res.Relation("total"))
	}
}

func TestAddEnumerationInBody(t *testing.T) {
	// The paper's p2: add(L, M, N) with N bound enumerates pairs.
	src := `
		q(a, 1).
		p2(X, L, M) :- q(X, N), add(L, M, N).
	`
	res := mustEval(t, src, NewDatabase(), Options{})
	p2 := res.Relation("p2")
	if p2.Len() != 2 {
		t.Fatalf("p2 = %v, want 2 solutions of L+M=1", p2)
	}
}

func TestSamplingSelectTwoEmp(t *testing.T) {
	// The paper's flagship query (§1, Example 5).
	src := `select_two_emp(Name) :- emp[2](Name, Dept, N), N < 2.`
	info := mustAnalyze(t, src)
	db := empDB()
	for seed := uint64(0); seed < 20; seed++ {
		res, err := Eval(info, db, Options{Oracle: relation.RandomOracle{Seed: seed}})
		if err != nil {
			t.Fatal(err)
		}
		sel := res.Relation("select_two_emp")
		if sel.Len() != 4 {
			t.Fatalf("seed %d: selected %d employees, want 4 (2 per department): %v", seed, sel.Len(), sel)
		}
		// Exactly two per department.
		perDept := map[string]int{}
		for _, tup := range db.Relation("emp").Tuples() {
			if sel.Contains(value.Tuple{tup[0]}) {
				perDept[tup[1].String()]++
			}
		}
		for d, n := range perDept {
			if n != 2 {
				t.Fatalf("seed %d: dept %s has %d selected", seed, d, n)
			}
		}
	}
}

func TestSamplingVariesWithSeed(t *testing.T) {
	src := `select_two_emp(Name) :- emp[2](Name, Dept, N), N < 2.`
	info := mustAnalyze(t, src)
	db := empDB()
	fps := map[string]bool{}
	for seed := uint64(0); seed < 30; seed++ {
		res, err := Eval(info, db, Options{Oracle: relation.RandomOracle{Seed: seed}})
		if err != nil {
			t.Fatal(err)
		}
		fps[res.Relation("select_two_emp").Fingerprint()] = true
	}
	if len(fps) < 2 {
		t.Fatalf("30 seeds produced only %d distinct samples", len(fps))
	}
}

func TestAllDeptsViaIDLiteral(t *testing.T) {
	// §1: all_depts(Dept) :- emp[2](Name, Dept, 0) — considers one
	// employee per department; the result must equal the projection.
	src := `all_depts(Dept) :- emp[2](Name, Dept, 0).`
	res := mustEval(t, src, empDB(), Options{})
	all := res.Relation("all_depts")
	if all.Len() != 2 || !all.Contains(value.Strs("toys")) || !all.Contains(value.Strs("shoes")) {
		t.Fatalf("all_depts = %v", all)
	}
	// The scan should touch at most |emp| tuples once: no join blowup.
	if res.Stats.Derivations != 2 {
		t.Fatalf("derivations = %d, want 2 (one per department)", res.Stats.Derivations)
	}
}

func TestExample2ManWomanEnumeration(t *testing.T) {
	// Example 2: man(r) = {∅, {a}, {b}, {a,b}}.
	src := `
		sex_guess(X, male) :- person(X).
		sex_guess(X, female) :- person(X).
		man(X) :- sex_guess[1](X, male, 1).
		woman(X) :- sex_guess[1](X, female, 1).
	`
	db := NewDatabase()
	_ = db.AddAll("person", value.Strs("a"), value.Strs("b"))
	answers, err := Enumerate(mustAnalyze(t, src), db, []string{"man"}, EnumerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 4 {
		t.Fatalf("man has %d possible answers, want 4", len(answers))
	}
	sizes := map[int]int{}
	for _, a := range answers {
		sizes[a.Relations["man"].Len()]++
	}
	if sizes[0] != 1 || sizes[1] != 2 || sizes[2] != 1 {
		t.Fatalf("answer size distribution = %v, want {0:1, 1:2, 2:1}", sizes)
	}
}

func TestExample2ManWomanComplementary(t *testing.T) {
	// In every single perfect model, man and woman partition person.
	src := `
		sex_guess(X, male) :- person(X).
		sex_guess(X, female) :- person(X).
		man(X) :- sex_guess[1](X, male, 1).
		woman(X) :- sex_guess[1](X, female, 1).
	`
	db := NewDatabase()
	_ = db.AddAll("person", value.Strs("a"), value.Strs("b"), value.Strs("c"))
	answers, err := Enumerate(mustAnalyze(t, src), db, []string{"man", "woman"}, EnumerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 8 {
		t.Fatalf("joint answers = %d, want 2^3", len(answers))
	}
	for _, a := range answers {
		man, woman := a.Relations["man"], a.Relations["woman"]
		if man.Len()+woman.Len() != 3 {
			t.Fatalf("man+woman = %d+%d, want 3", man.Len(), woman.Len())
		}
		for _, tup := range man.Tuples() {
			if woman.Contains(tup) {
				t.Fatalf("%v is both man and woman", tup)
			}
		}
	}
}

func TestExample7NonDeterministicQ1(t *testing.T) {
	// Example 7's P2: q1 may return TRUE or FALSE on non-empty input
	// depending on which tuple gets tid 0; q2 always returns FALSE.
	src := `
		q1 :- x(c).
		q2 :- x(a).
		x(Y) :- p[](Y, 0).
		p(b) :- u(X).
		p(c) :- y(X).
	`
	db := NewDatabase()
	_ = db.Add("u", value.Strs("something"))
	_ = db.Add("y", value.Strs("anything"))
	answers, err := Enumerate(mustAnalyze(t, src), db, []string{"q1", "q2"}, EnumerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 2 {
		t.Fatalf("answers = %d, want 2 (q1 TRUE and q1 FALSE)", len(answers))
	}
	for _, a := range answers {
		if a.Relations["q2"].Len() != 0 {
			t.Fatalf("q2 should always be FALSE")
		}
	}
	q1True := 0
	for _, a := range answers {
		if a.Relations["q1"].Len() == 1 {
			q1True++
		}
	}
	if q1True != 1 {
		t.Fatalf("q1 true in %d answers, want exactly 1", q1True)
	}
}

func TestNegatedIDLiteral(t *testing.T) {
	// rest = employees that did NOT get tid 0 in their department.
	src := `
		first(N) :- emp[2](N, D, 0).
		rest(N) :- emp(N, D), not emp[2](N, D, 0).
	`
	res := mustEval(t, src, empDB(), Options{})
	if res.Relation("first").Len() != 2 {
		t.Fatalf("first = %v", res.Relation("first"))
	}
	if res.Relation("rest").Len() != 3 {
		t.Fatalf("rest = %v", res.Relation("rest"))
	}
}

func TestMissingEDBIsEmpty(t *testing.T) {
	res := mustEval(t, "p(X) :- q(X).", NewDatabase(), Options{})
	if res.Relation("p").Len() != 0 {
		t.Fatalf("p = %v", res.Relation("p"))
	}
}

func TestEDBArityMismatch(t *testing.T) {
	db := NewDatabase()
	_ = db.Add("q", value.Strs("a", "b"))
	_, err := Eval(mustAnalyze(t, "p(X) :- q(X)."), db, Options{})
	if err == nil || !strings.Contains(err.Error(), "arity") {
		t.Fatalf("err = %v", err)
	}
}

func TestMaxDerivationsGuard(t *testing.T) {
	src := `
		tc(X, Y) :- e(X, Y).
		tc(X, Y) :- e(X, Z), tc(Z, Y).
	`
	_, err := Eval(mustAnalyze(t, src), chainDB(50), Options{MaxDerivations: 10})
	if err == nil || !strings.Contains(err.Error(), "budget") {
		t.Fatalf("err = %v", err)
	}
}

func TestEnumerationBudget(t *testing.T) {
	src := `one(N) :- big[](N, 0).`
	db := NewDatabase()
	for i := 0; i < 10; i++ {
		_ = db.Add("big", value.Ints(int64(i)))
	}
	_, err := Enumerate(mustAnalyze(t, src), db, []string{"one"}, EnumerateOptions{MaxRuns: 5})
	if _, ok := err.(*ErrEnumerationBudget); !ok {
		t.Fatalf("err = %v, want budget error", err)
	}
}

func TestEnumerateUngroupedChoice(t *testing.T) {
	// one(N) :- p[](N, 0): 3! assignments but only 3 distinct answers.
	src := `one(N) :- p[](N, 0).`
	db := NewDatabase()
	_ = db.AddAll("p", value.Ints(1), value.Ints(2), value.Ints(3))
	answers, err := Enumerate(mustAnalyze(t, src), db, []string{"one"}, EnumerateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(answers) != 3 {
		t.Fatalf("answers = %d, want 3", len(answers))
	}
	for _, a := range answers {
		if a.Relations["one"].Len() != 1 {
			t.Fatalf("each answer should pick exactly one tuple: %v", a.Relations["one"])
		}
	}
}

func TestIDRelationAccessibleOnResult(t *testing.T) {
	src := `all_depts(D) :- emp[2](N, D, 0).`
	res := mustEval(t, src, empDB(), Options{})
	idr := res.IDRelation("emp[1]")
	if idr == nil {
		t.Fatalf("ID-relation emp[1] not recorded; have %v", res.Relations())
	}
	// The constant tid 0 lets the engine prune to one tuple per
	// department (footnote 6 of the paper).
	if idr.Len() != 2 {
		t.Fatalf("pruned ID-relation has %d tuples, want 2 (one per dept): %v", idr.Len(), idr)
	}
	for _, tup := range idr.Tuples() {
		if tup[2].Num != 0 {
			t.Fatalf("pruned ID-relation contains tid %d", tup[2].Num)
		}
		if !empDB().Relation("emp").Contains(tup[:2]) {
			t.Fatalf("pruned tuple %v not from base relation", tup)
		}
	}
	if res.Stats.IDRelations != 1 {
		t.Fatalf("IDRelations stat = %d", res.Stats.IDRelations)
	}
}

func TestTidPruningStillUnboundedWhenShared(t *testing.T) {
	// One clause bounds T, another does not: the shared materialization
	// must stay full.
	src := `
		firsts(N) :- emp[2](N, D, 0).
		all(N, T) :- emp[2](N, D, T).
	`
	res := mustEval(t, src, empDB(), Options{})
	if got := res.IDRelation("emp[1]").Len(); got != 5 {
		t.Fatalf("shared ID-relation has %d tuples, want full 5", got)
	}
	if res.Relation("all").Len() != 5 || res.Relation("firsts").Len() != 2 {
		t.Fatalf("answers wrong: all=%v firsts=%v", res.Relation("all"), res.Relation("firsts"))
	}
}

func TestTidPruningWithComparison(t *testing.T) {
	// T < 2 prunes to two tuples per group, and the answers are the
	// same as with full materialization (verified against enumeration
	// semantics by the sampling tests; here we check the prune size).
	src := `sel(N) :- emp[2](N, D, T), T < 2.`
	res := mustEval(t, src, empDB(), Options{})
	if got := res.IDRelation("emp[1]").Len(); got != 4 {
		t.Fatalf("pruned ID-relation has %d tuples, want 4 (2 per dept)", got)
	}
	if res.Relation("sel").Len() != 4 {
		t.Fatalf("sel = %v", res.Relation("sel"))
	}
}

func TestRepeatedVariableInLiteral(t *testing.T) {
	src := `loop(X) :- e(X, X).`
	db := NewDatabase()
	_ = db.AddAll("e", value.Strs("a", "a"), value.Strs("a", "b"), value.Strs("c", "c"))
	res := mustEval(t, src, db, Options{})
	loop := res.Relation("loop")
	if loop.Len() != 2 || !loop.Contains(value.Strs("a")) || !loop.Contains(value.Strs("c")) {
		t.Fatalf("loop = %v", loop)
	}
}

func TestConstantsInBodyProbe(t *testing.T) {
	src := `toys_emp(N) :- emp(N, toys).`
	res := mustEval(t, src, empDB(), Options{})
	if res.Relation("toys_emp").Len() != 3 {
		t.Fatalf("toys_emp = %v", res.Relation("toys_emp"))
	}
	// Probing on the constant column must avoid scanning shoes tuples.
	if res.Stats.TuplesScanned != 3 {
		t.Fatalf("scanned %d tuples, want 3 (index probe on constant)", res.Stats.TuplesScanned)
	}
}

func TestMutualRecursion(t *testing.T) {
	src := `
		even(0).
		even(Y) :- odd(X), succ(X, Y), Y <= 10.
		odd(Y) :- even(X), succ(X, Y), Y <= 10.
	`
	res := mustEval(t, src, NewDatabase(), Options{})
	if res.Relation("even").Len() != 6 || res.Relation("odd").Len() != 5 {
		t.Fatalf("even=%v odd=%v", res.Relation("even"), res.Relation("odd"))
	}
}

func TestStatsInsertedMatchesRelationSizes(t *testing.T) {
	src := `
		tc(X, Y) :- e(X, Y).
		tc(X, Y) :- e(X, Z), tc(Z, Y).
	`
	res := mustEval(t, src, chainDB(12), Options{})
	if res.Stats.Inserted != res.Relation("tc").Len() {
		t.Fatalf("Inserted=%d, relation size=%d", res.Stats.Inserted, res.Relation("tc").Len())
	}
}

func TestDeterministicDefaultOracle(t *testing.T) {
	src := `pick(N) :- emp[2](N, D, 0).`
	info := mustAnalyze(t, src)
	a, err := Eval(info, empDB(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Eval(info, empDB(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Relation("pick").Equal(b.Relation("pick")) {
		t.Fatalf("default oracle is not deterministic")
	}
}

// The companion paper [She90b] shows tuple-identifiers also enhance
// DETERMINISTIC expressive power: with an ungrouped ID-relation the
// cardinality of a relation is max tid + 1 — a query pure DATALOG
// cannot express. The result must be invariant across oracles.
func TestCardinalityViaTupleIdentifiers(t *testing.T) {
	src := `
		has_tid(T) :- item[](X, T).
		card(C) :- has_tid(T), succ(T, C), not has_tid(C).
		even :- card(C), mod(C, 2, 0).
	`
	info := mustAnalyze(t, src)
	for n := 1; n <= 7; n++ {
		db := NewDatabase()
		for i := 0; i < n; i++ {
			_ = db.Add("item", value.Strs(string(rune('a'+i))))
		}
		var first string
		for seed := uint64(0); seed < 8; seed++ {
			res, err := Eval(info, db, Options{Oracle: relation.RandomOracle{Seed: seed}})
			if err != nil {
				t.Fatal(err)
			}
			card := res.Relation("card")
			if card.Len() != 1 || !card.Contains(value.Ints(int64(n))) {
				t.Fatalf("n=%d seed=%d: card = %v", n, seed, card)
			}
			evenHolds := res.Relation("even").Len() == 1
			if evenHolds != (n%2 == 0) {
				t.Fatalf("n=%d: even = %v", n, evenHolds)
			}
			fp := card.Fingerprint() + res.Relation("even").Fingerprint()
			if first == "" {
				first = fp
			} else if fp != first {
				t.Fatalf("n=%d: counting query varied with the oracle", n)
			}
		}
	}
}

// Group-wise counting: the tid within each group enumerates the group,
// so per-group cardinalities are also deterministic.
func TestGroupCardinalityViaTupleIdentifiers(t *testing.T) {
	src := `
		dept_tid(D, T) :- emp[2](N, D, T).
		dept_size(D, C) :- dept_tid(D, T), succ(T, C), not dept_tid(D, C).
	`
	res := mustEval(t, src, empDB(), Options{Oracle: relation.RandomOracle{Seed: 3}})
	sizes := res.Relation("dept_size")
	if sizes.Len() != 2 {
		t.Fatalf("dept_size = %v", sizes)
	}
	if !sizes.Contains(value.Tuple{value.Str("toys"), value.Int(3)}) ||
		!sizes.Contains(value.Tuple{value.Str("shoes"), value.Int(2)}) {
		t.Fatalf("dept_size = %v", sizes)
	}
}
