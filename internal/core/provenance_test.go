package core

import (
	"strings"
	"testing"

	"idlog/internal/value"
)

func TestExplainTransitiveClosure(t *testing.T) {
	src := `
		tc(X, Y) :- e(X, Y).
		tc(X, Y) :- e(X, Z), tc(Z, Y).
	`
	res := mustEval(t, src, chainDB(4), Options{Trace: true})
	out, err := res.Explain("tc", value.Ints(0, 3), 0)
	if err != nil {
		t.Fatal(err)
	}
	// The tree must bottom out at input edges and mention the recursive
	// clause.
	if !strings.Contains(out, "[input]") {
		t.Fatalf("no input leaves:\n%s", out)
	}
	if !strings.Contains(out, "tc(X, Y) :- e(X, Z), tc(Z, Y).") {
		t.Fatalf("recursive clause missing:\n%s", out)
	}
	// Depth: tc(0,3) <- e(0,1), tc(1,3) <- e(1,2), tc(2,3) <- e(2,3).
	for _, node := range []string{"tc(0, 3)", "tc(1, 3)", "tc(2, 3)", "e(0, 1)", "e(1, 2)", "e(2, 3)"} {
		if !strings.Contains(out, node) {
			t.Fatalf("node %s missing:\n%s", node, out)
		}
	}
	if got := strings.Count(out, "<="); got != 3 {
		t.Fatalf("expected 3 derivation nodes, got %d:\n%s", got, out)
	}
}

func TestExplainWithIDAndNegationAndArith(t *testing.T) {
	src := `
		first(N) :- emp[2](N, D, 0).
		lonely(N) :- emp(N, D), not crowd(D), succ(0, K), K = 1.
		crowd(D) :- emp(N, D), emp(N2, D), N != N2.
	`
	res := mustEval(t, src, empDB(), Options{Trace: true})
	firstTuple := res.Relation("first").Sorted()[0]
	out, err := res.Explain("first", firstTuple, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "[ID-relation choice]") {
		t.Fatalf("ID leaf missing:\n%s", out)
	}
}

func TestExplainErrors(t *testing.T) {
	src := `p(a).`
	res := mustEval(t, src, NewDatabase(), Options{})
	if _, err := res.Explain("p", value.Strs("a"), 0); err == nil {
		t.Fatalf("untraced run should refuse Explain")
	}
	traced := mustEval(t, src, NewDatabase(), Options{Trace: true})
	if _, err := traced.Explain("p", value.Strs("zzz"), 0); err == nil {
		t.Fatalf("absent tuple should error")
	}
	out, err := traced.Explain("p", value.Strs("a"), 0)
	if err != nil || !strings.Contains(out, "p(a)") {
		t.Fatalf("fact explanation: %q %v", out, err)
	}
}

func TestExplainDepthLimit(t *testing.T) {
	src := `
		tc(X, Y) :- e(X, Y).
		tc(X, Y) :- e(X, Z), tc(Z, Y).
	`
	res := mustEval(t, src, chainDB(30), Options{Trace: true})
	out, err := res.Explain("tc", value.Ints(0, 30), 3)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "depth limit") {
		t.Fatalf("depth limit not applied:\n%s", out)
	}
}

func TestTraceDoesNotChangeResults(t *testing.T) {
	src := `
		tc(X, Y) :- e(X, Y).
		tc(X, Y) :- e(X, Z), tc(Z, Y).
	`
	db := chainDB(12)
	plain := mustEval(t, src, db, Options{})
	traced := mustEval(t, src, db, Options{Trace: true})
	if !plain.Relation("tc").Equal(traced.Relation("tc")) {
		t.Fatalf("tracing changed the model")
	}
}
