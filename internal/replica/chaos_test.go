package replica_test

// The chaos harness: one primary and one follower (both WAL-backed)
// under a randomized schedule of torn streams, partitions, stalled
// frames, forced checkpoints, follower crashes/restarts, and primary
// crashes/restarts — with mutations flowing the whole time. After the
// dust settles the suite asserts the replication contract:
//
//  1. the follower's state fingerprint equals the primary's, and
//  2. every mutation the primary ACKNOWLEDGED is present — across any
//     combination of kills, partitions, and catch-up paths, no
//     acknowledged write is ever lost.
//
// Run with -race (CI does): the suite doubles as a concurrency test of
// the whole replication path.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"idlog/internal/fault"
	"idlog/internal/replica"
	"idlog/internal/server"
)

func TestChaos(t *testing.T) {
	seed := time.Now().UnixNano()
	t.Logf("chaos seed %d", seed)
	rng := rand.New(rand.NewSource(seed))

	dir := t.TempDir()
	pwal := filepath.Join(dir, "primary.wal")
	fwal := filepath.Join(dir, "follower.wal")
	pFaults := fault.New()
	fFaults := fault.New()

	// Small thresholds so checkpoints, tail trims, and snapshot
	// catch-ups all happen organically under the traffic below.
	pCfg := server.Config{
		Faults:               pFaults,
		WALCheckpointEntries: 16,
		MaxReplLogEntries:    24,
		ReplHeartbeat:        25 * time.Millisecond,
	}
	fCfg := server.Config{ReadOnly: true, WALCheckpointEntries: 16}

	primary := startNode(t, pwal, pCfg)
	follower := startNode(t, fwal, fCfg)
	fol := replica.New(follower.srv, replica.Config{
		Primary:    primary.ts.URL,
		Lease:      500 * time.Millisecond,
		MinBackoff: 5 * time.Millisecond,
		MaxBackoff: 50 * time.Millisecond,
		Faults:     fFaults,
		Logf:       t.Logf,
	})
	fol.Start()
	primary.createSession("s1")

	// acked tracks every fact the primary acknowledged; the final state
	// must contain all of them.
	type ackedFact struct{ session, fact string }
	var acked []ackedFact
	n := 0
	mutate := func() {
		n++
		if rng.Intn(4) == 0 {
			fact := fmt.Sprintf("emp(e%d, d%d)", n, n%3)
			if primary.insert("s1", fact+".") {
				acked = append(acked, ackedFact{"s1", fact})
			}
			return
		}
		fact := fmt.Sprintf("edge(n%d, n%d)", n, n+1)
		if primary.insert("", fact+".") {
			acked = append(acked, ackedFact{"", fact})
		}
	}

	const rounds = 25
	for round := 0; round < rounds; round++ {
		switch rng.Intn(8) {
		case 0: // torn stream: the primary's send dies mid-frame
			pFaults.Arm(fault.ReplStreamSend, fault.Fault{After: rng.Intn(4), Count: 1 + rng.Intn(2)})
		case 1: // partition: the follower cannot dial the primary
			fFaults.Arm(fault.ReplicaConnect, fault.Fault{Count: 1 + rng.Intn(3)})
		case 2: // partition mid-catch-up: stream reads die
			fFaults.Arm(fault.ReplicaStreamRead, fault.Fault{After: rng.Intn(6), Count: 1 + rng.Intn(2)})
		case 3: // slow primary: frames delayed (sometimes past the lease)
			pFaults.Arm(fault.ReplStreamDelay, fault.Fault{
				DelayOnly: true, Delay: time.Duration(rng.Intn(40)) * time.Millisecond, Count: 2 + rng.Intn(4)})
		case 4: // forced checkpoint racing the stream
			if err := primary.srv.Checkpoint(); err != nil {
				t.Fatalf("round %d: primary checkpoint: %v", round, err)
			}
		case 5: // follower crash + restart from its WAL
			fol.Stop()
			follower.stop(false)
			follower = startNode(t, fwal, fCfg)
			fol = replica.New(follower.srv, replica.Config{
				Primary:    primary.ts.URL,
				Lease:      500 * time.Millisecond,
				MinBackoff: 5 * time.Millisecond,
				MaxBackoff: 50 * time.Millisecond,
				Faults:     fFaults,
				Logf:       t.Logf,
			})
			fol.Start()
		case 6: // primary crash + restart from its WAL (new incarnation)
			primary.stop(rng.Intn(2) == 0) // sometimes graceful, sometimes not
			primary = startNode(t, pwal, pCfg)
			fol.SetPrimary(primary.ts.URL)
		case 7: // quiet round: just traffic
		}
		for i, burst := 0, 2+rng.Intn(6); i < burst; i++ {
			mutate()
		}
		time.Sleep(time.Duration(rng.Intn(20)) * time.Millisecond)
	}

	// Let the dust settle: no more faults, no more mutations.
	pFaults.DisarmAll()
	fFaults.DisarmAll()
	waitConverged(t, primary, follower, fol, 30*time.Second)

	pFP, fFP := primary.srv.StateFingerprint(), follower.srv.StateFingerprint()
	if pFP != fFP {
		t.Fatalf("fingerprints diverged after settle: primary %s follower %s", pFP, fFP)
	}

	// No acknowledged mutation may be missing. Fingerprints are equal,
	// so checking the primary covers the follower too. The tuple text
	// is anchored by its opening paren, and every generated tuple is
	// unique, so containment is exact.
	baseRel := primary.srv.BaseDB().Relation("edge")
	if baseRel == nil {
		t.Fatal("edge relation missing entirely")
	}
	baseText := baseRel.String()
	var qr struct {
		Relations map[string]struct {
			Text string `json:"text"`
		} `json:"relations"`
	}
	q := []byte(`{"source": "r(X) :- emp(X, Y).", "session": "s1", "predicates": ["emp"]}`)
	resp, err := http.Post(primary.ts.URL+"/v1/query", "application/json", bytes.NewReader(q))
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(resp.Body).Decode(&qr)
	resp.Body.Close()
	sessText := qr.Relations["emp"].Text
	baseCount, sessCount := 0, 0
	for _, af := range acked {
		tuple := af.fact[strings.Index(af.fact, "("):]
		if af.session == "" {
			baseCount++
			if !strings.Contains(baseText, tuple) {
				t.Fatalf("acknowledged base fact %s lost", af.fact)
			}
		} else {
			sessCount++
			if !strings.Contains(sessText, tuple) {
				t.Fatalf("acknowledged session fact %s lost", af.fact)
			}
		}
	}
	t.Logf("chaos done: %d mutations acknowledged (%d base, %d session), final LSN %d, follower resyncs %d reconnects %d",
		len(acked), baseCount, sessCount, primary.srv.LastLSN(), fol.Status().Resyncs, fol.Status().Reconnects)

	fol.Stop()
	follower.stop(true)
	primary.stop(true)
}
