package replica_test

// Directed follower tests: catch-up, resume, torn streams, snapshot
// bootstrap, checkpoint racing a live stream, stalled-primary leases,
// drain, and primary failover. The randomized chaos suite is in
// chaos_test.go; both share the harness here.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"idlog/internal/fault"
	"idlog/internal/replica"
	"idlog/internal/server"
	"idlog/internal/wal"
)

// node is one idlogd instance under test: server + HTTP listener +
// (optionally) a WAL directory it can be restarted from.
type node struct {
	t   *testing.T
	srv *server.Server
	ts  *httptest.Server
	wal string
}

func startNode(t *testing.T, walPath string, cfg server.Config) *node {
	t.Helper()
	srv := server.New(cfg)
	if walPath != "" {
		if err := srv.OpenWAL(walPath); err != nil {
			t.Fatalf("open wal %s: %v", walPath, err)
		}
	}
	return &node{t: t, srv: srv, ts: httptest.NewServer(srv.Handler())}
}

// stop terminates the node. graceful drains first (streams end with a
// clean EOS); hard severs client connections mid-frame, like a crash.
func (n *node) stop(graceful bool) {
	if graceful {
		n.srv.Drain()
	} else {
		n.ts.CloseClientConnections()
	}
	n.ts.Close()
	n.srv.Close()
}

// insert posts facts to the base database (or session when named),
// reporting whether the mutation was acknowledged.
func (n *node) insert(session, facts string) bool {
	url := n.ts.URL + "/v1/facts"
	if session != "" {
		url = n.ts.URL + "/v1/sessions/" + session + "/facts"
	}
	body, _ := json.Marshal(map[string]string{"inserts": facts})
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode == http.StatusOK
}

func (n *node) delete(session, facts string) bool {
	url := n.ts.URL + "/v1/facts"
	if session != "" {
		url = n.ts.URL + "/v1/sessions/" + session + "/facts"
	}
	body, _ := json.Marshal(map[string]string{"deletes": facts})
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode == http.StatusOK
}

func (n *node) createSession(name string) bool {
	body, _ := json.Marshal(map[string]string{"name": name})
	resp, err := http.Post(n.ts.URL+"/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode == http.StatusOK
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		json.NewDecoder(resp.Body).Decode(out)
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return resp.StatusCode
}

// followerCfg are quick-reacting follower settings for tests.
func followerCfg(primaryURL string, faults *fault.Registry, logf func(string, ...any)) replica.Config {
	return replica.Config{
		Primary:    primaryURL,
		Lease:      2 * time.Second,
		MinBackoff: 10 * time.Millisecond,
		MaxBackoff: 200 * time.Millisecond,
		Faults:     faults,
		Logf:       logf,
	}
}

// waitConverged polls until the follower has applied the primary's last
// LSN and both state fingerprints agree. Mutations must be quiesced.
func waitConverged(t *testing.T, primary, follower *node, f *replica.Follower, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		st := f.Status()
		if st.AppliedLSN == primary.srv.LastLSN() &&
			primary.srv.StateFingerprint() == follower.srv.StateFingerprint() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("no convergence within %s:\n  follower %+v\n  primary LSN %d\n  primary fp  %s\n  follower fp %s",
		timeout, f.Status(), primary.srv.LastLSN(),
		primary.srv.StateFingerprint(), follower.srv.StateFingerprint())
}

func TestBasicReplication(t *testing.T) {
	dir := t.TempDir()
	primary := startNode(t, filepath.Join(dir, "primary.wal"), server.Config{})
	defer primary.stop(true)

	if !primary.insert("", "edge(a, b). edge(b, c).") {
		t.Fatal("primary insert failed")
	}
	if !primary.createSession("s1") || !primary.insert("s1", "emp(ann, sales).") {
		t.Fatal("primary session setup failed")
	}

	follower := startNode(t, "", server.Config{ReadOnly: true})
	defer follower.stop(true)
	f := replica.New(follower.srv, followerCfg(primary.ts.URL, nil, t.Logf))
	f.Start()
	defer f.Stop()

	waitConverged(t, primary, follower, f, 5*time.Second)

	// Mutations after catch-up stream live, including deletes.
	primary.insert("", "edge(c, d).")
	primary.delete("", "edge(a, b).")
	primary.insert("s1", "emp(bob, dev).")
	waitConverged(t, primary, follower, f, 5*time.Second)

	// The follower is read-only for clients...
	body, _ := json.Marshal(map[string]string{"inserts": "edge(x, y)."})
	resp, err := http.Post(follower.ts.URL+"/v1/facts", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("follower mutation: status %d, want 403", resp.StatusCode)
	}
	// ...ready within its lag bound...
	if code := getJSON(t, follower.ts.URL+"/readyz", nil); code != 200 {
		t.Fatalf("follower readyz: %d", code)
	}
	// ...and serves reads: the replicated session answers queries.
	var qr struct {
		Relations map[string]struct {
			Text string `json:"text"`
		} `json:"relations"`
	}
	q, _ := json.Marshal(map[string]any{
		"source": "r(X) :- emp(X, Y).", "session": "s1", "predicates": []string{"emp"},
	})
	resp, err = http.Post(follower.ts.URL+"/v1/query", "application/json", bytes.NewReader(q))
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(resp.Body).Decode(&qr)
	resp.Body.Close()
	if qr.Relations["emp"].Text != "emp{(ann, sales), (bob, dev)}" {
		t.Fatalf("follower session read: %+v", qr.Relations)
	}
}

// TestFollowerResume: a follower with its own WAL restarts and resumes
// from its durable position — no snapshot resync needed.
func TestFollowerResume(t *testing.T) {
	dir := t.TempDir()
	primary := startNode(t, filepath.Join(dir, "primary.wal"), server.Config{})
	defer primary.stop(true)
	for i := 0; i < 5; i++ {
		primary.insert("", fmt.Sprintf("edge(n%d, n%d).", i, i+1))
	}

	fwal := filepath.Join(dir, "follower.wal")
	follower := startNode(t, fwal, server.Config{ReadOnly: true})
	f := replica.New(follower.srv, followerCfg(primary.ts.URL, nil, t.Logf))
	f.Start()
	waitConverged(t, primary, follower, f, 5*time.Second)
	f.Stop()
	follower.stop(false) // crash the follower

	// The primary moves on while the follower is down.
	for i := 5; i < 10; i++ {
		primary.insert("", fmt.Sprintf("edge(n%d, n%d).", i, i+1))
	}

	follower2 := startNode(t, fwal, server.Config{ReadOnly: true})
	defer follower2.stop(true)
	f2 := replica.New(follower2.srv, followerCfg(primary.ts.URL, nil, t.Logf))
	f2.Start()
	defer f2.Stop()
	waitConverged(t, primary, follower2, f2, 5*time.Second)
	if st := f2.Status(); st.Resyncs != 0 {
		t.Fatalf("resume took %d snapshot resyncs, want 0 (tail was long enough)", st.Resyncs)
	}
}

// TestTornStreamReconnect: the primary's connection dies mid-frame; the
// follower discards the torn frame whole, reconnects, and converges.
func TestTornStreamReconnect(t *testing.T) {
	dir := t.TempDir()
	pFaults := fault.New()
	primary := startNode(t, filepath.Join(dir, "primary.wal"), server.Config{Faults: pFaults})
	defer primary.stop(true)
	primary.insert("", "edge(a, b).")

	follower := startNode(t, "", server.Config{ReadOnly: true})
	defer follower.stop(true)
	f := replica.New(follower.srv, followerCfg(primary.ts.URL, nil, t.Logf))
	f.Start()
	defer f.Stop()
	waitConverged(t, primary, follower, f, 5*time.Second)

	// The next two frames tear mid-send (half the bytes go out).
	pFaults.Arm(fault.ReplStreamSend, fault.Fault{Count: 2})
	for i := 0; i < 6; i++ {
		primary.insert("", fmt.Sprintf("edge(t%d, t%d).", i, i+1))
	}
	waitConverged(t, primary, follower, f, 10*time.Second)
	if got := pFaults.Fired(fault.ReplStreamSend); got != 2 {
		t.Fatalf("torn-send fault fired %d times, want 2", got)
	}
	if st := f.Status(); st.Reconnects == 0 {
		t.Fatalf("no reconnects recorded after torn stream: %+v", st)
	}
}

// TestSnapshotCatchup: a follower whose position predates the primary's
// retained tail bootstraps via snapshot+replay.
func TestSnapshotCatchup(t *testing.T) {
	dir := t.TempDir()
	// Tiny tail: 4 entries. Anything older forces the snapshot path.
	primary := startNode(t, filepath.Join(dir, "primary.wal"), server.Config{MaxReplLogEntries: 4})
	defer primary.stop(true)
	primary.createSession("s1")
	for i := 0; i < 20; i++ {
		primary.insert("", fmt.Sprintf("edge(n%d, n%d).", i, i+1))
		if i%3 == 0 {
			primary.insert("s1", fmt.Sprintf("emp(e%d, d%d).", i, i%2))
		}
	}
	primary.delete("", "edge(n0, n1). edge(n1, n2).")

	follower := startNode(t, "", server.Config{ReadOnly: true})
	defer follower.stop(true)
	f := replica.New(follower.srv, followerCfg(primary.ts.URL, nil, t.Logf))
	f.Start()
	defer f.Stop()
	waitConverged(t, primary, follower, f, 10*time.Second)
	if st := f.Status(); st.Resyncs == 0 {
		t.Fatalf("catch-up took no snapshot resync: %+v", st)
	}
}

// TestCheckpointRacesStream: checkpoint-and-truncate runs concurrently
// with a live replication stream and random follower kill points; the
// follower must converge after every combination (resync when its
// position was truncated away, plain tail otherwise).
func TestCheckpointRacesStream(t *testing.T) {
	dir := t.TempDir()
	fFaults := fault.New()
	// Aggressive checkpointing: every 4 entries the log is rewritten.
	primary := startNode(t, filepath.Join(dir, "primary.wal"),
		server.Config{WALCheckpointEntries: 4, MaxReplLogEntries: 8})
	defer primary.stop(true)
	primary.createSession("s1")

	follower := startNode(t, "", server.Config{ReadOnly: true})
	defer follower.stop(true)
	f := replica.New(follower.srv, followerCfg(primary.ts.URL, fFaults, t.Logf))
	f.Start()
	defer f.Stop()

	for round := 0; round < 8; round++ {
		// Kill the follower's stream read at a pseudo-random point in
		// this round's traffic; checkpoints fire underneath via the
		// entry threshold.
		fFaults.Arm(fault.ReplicaStreamRead, fault.Fault{After: (round * 7) % 11, Count: 1})
		for i := 0; i < 6; i++ {
			n := round*6 + i
			if !primary.insert("", fmt.Sprintf("edge(c%d, c%d).", n, n+1)) {
				t.Fatalf("round %d: insert %d not acknowledged", round, n)
			}
			if i%2 == 0 {
				primary.insert("s1", fmt.Sprintf("emp(r%d_%d, x).", round, i))
			}
		}
		if err := primary.srv.Checkpoint(); err != nil {
			t.Fatalf("round %d: checkpoint: %v", round, err)
		}
	}
	fFaults.DisarmAll()
	waitConverged(t, primary, follower, f, 15*time.Second)
}

// TestStalledPrimaryLease: a primary that stops sending frames loses
// the follower's lease — readiness drops, the watchdog severs the
// stream, and the follower recovers once the primary resumes.
func TestStalledPrimaryLease(t *testing.T) {
	dir := t.TempDir()
	pFaults := fault.New()
	primary := startNode(t, filepath.Join(dir, "primary.wal"),
		server.Config{Faults: pFaults, ReplHeartbeat: 50 * time.Millisecond})
	defer primary.stop(true)
	primary.insert("", "edge(a, b).")

	follower := startNode(t, "", server.Config{ReadOnly: true})
	defer follower.stop(true)
	cfg := followerCfg(primary.ts.URL, nil, t.Logf)
	cfg.Lease = 300 * time.Millisecond
	f := replica.New(follower.srv, cfg)
	f.Start()
	defer f.Stop()
	waitConverged(t, primary, follower, f, 5*time.Second)

	// Stall: every frame (heartbeats included) is delayed past the
	// lease. The follower must flip not-ready.
	pFaults.Arm(fault.ReplStreamDelay, fault.Fault{DelayOnly: true, Delay: 600 * time.Millisecond})
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st := f.Status(); !st.Ready {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("follower stayed ready under a stalled primary")
		}
		time.Sleep(20 * time.Millisecond)
	}
	if code := getJSON(t, follower.ts.URL+"/readyz", nil); code != 503 {
		t.Fatalf("readyz under stalled primary: %d, want 503", code)
	}

	pFaults.DisarmAll()
	primary.insert("", "edge(b, c).")
	waitConverged(t, primary, follower, f, 10*time.Second)
	deadline = time.Now().Add(5 * time.Second)
	for {
		if st := f.Status(); st.Ready {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never recovered readiness: %+v", f.Status())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestDrainEndsStreamWithEOS: a draining primary terminates replication
// streams with a clean EOS frame carrying a resumable LSN — no torn
// frames, no hung shutdown.
func TestDrainEndsStreamWithEOS(t *testing.T) {
	dir := t.TempDir()
	primary := startNode(t, filepath.Join(dir, "primary.wal"), server.Config{})
	defer func() { primary.ts.Close(); primary.srv.Close() }()
	primary.insert("", "edge(a, b). edge(b, c).")

	resp, err := http.Get(primary.ts.URL + "/v1/replication/stream?from=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("stream: HTTP %d", resp.StatusCode)
	}

	done := make(chan error, 1)
	var last wal.Frame
	go func() {
		sr := wal.NewStreamReader(resp.Body)
		for {
			fr, err := sr.Next()
			if err != nil {
				done <- err
				return
			}
			last = fr
			if fr.Type == wal.FrameEOS {
				done <- nil
				return
			}
		}
	}()

	time.Sleep(100 * time.Millisecond) // let the entries flow
	primary.srv.Drain()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("stream did not end with EOS: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stream did not terminate after drain")
	}
	if last.Type != wal.FrameEOS || last.LSN != primary.srv.LastLSN() {
		t.Fatalf("EOS frame %+v, want LSN %d", last, primary.srv.LastLSN())
	}
}

// TestPrimaryFailover: the primary is killed and restarted from its WAL
// under a new address and incarnation id; the retargeted follower
// detects the new incarnation, resyncs, and converges.
func TestPrimaryFailover(t *testing.T) {
	dir := t.TempDir()
	pwal := filepath.Join(dir, "primary.wal")
	primary := startNode(t, pwal, server.Config{})
	for i := 0; i < 5; i++ {
		primary.insert("", fmt.Sprintf("edge(n%d, n%d).", i, i+1))
	}

	follower := startNode(t, "", server.Config{ReadOnly: true})
	defer follower.stop(true)
	f := replica.New(follower.srv, followerCfg(primary.ts.URL, nil, t.Logf))
	f.Start()
	defer f.Stop()
	waitConverged(t, primary, follower, f, 5*time.Second)

	primary.stop(false) // crash the primary

	primary2 := startNode(t, pwal, server.Config{})
	defer primary2.stop(true)
	for i := 5; i < 8; i++ {
		primary2.insert("", fmt.Sprintf("edge(n%d, n%d).", i, i+1))
	}
	f.SetPrimary(primary2.ts.URL)
	waitConverged(t, primary2, follower, f, 10*time.Second)
}
