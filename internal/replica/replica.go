// Package replica implements the follower half of idlogd's hot-standby
// replication: a retry loop that tails a primary's WAL stream over
// HTTP, applies every entry through the server's incremental mutation
// path, and falls back to snapshot+replay whenever its position
// predates what the primary still holds.
//
// The follower's local server runs read-only (server.Config.ReadOnly):
// clients may query it freely, but its state changes only through this
// loop, so a follower that has applied LSN L holds exactly the
// primary's state at L — evaluation is deterministic, equal EDBs mean
// equal models, and the chaos tests assert it by fingerprint.
//
// Failure handling:
//
//   - torn stream / dead connection / partition → capped exponential
//     backoff with jitter, then reconnect from the last applied LSN
//   - stream silent past the lease (stalled primary) → the lease
//     watchdog severs the connection and the loop reconnects; readiness
//     drops the moment the lease goes stale, before the watchdog fires
//   - 409 snapshot_required, a RESYNC frame, a primary whose
//     incarnation id changed, or a primary whose LSN is behind ours
//     (restarted without history) → wholesale snapshot+replay resync
//   - EOS frame (primary draining) → clean end; reconnect and resume
//     from the LSN the frame carried
package replica

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"idlog/internal/fault"
	"idlog/internal/server"
	"idlog/internal/wal"
)

// Config tunes a follower. Zero values take the documented defaults.
type Config struct {
	// Primary is the primary's base URL ("http://host:port").
	Primary string
	// Lease bounds how long the stream may stay silent before the
	// follower treats the primary as stalled: readiness drops and the
	// watchdog severs the connection. Must comfortably exceed the
	// primary's heartbeat cadence (server.Config.ReplHeartbeat).
	// Default 10s.
	Lease time.Duration
	// MaxLag is the readiness bound: a follower more than this many
	// entries behind the primary's last LSN reports not ready.
	// Default 1024.
	MaxLag uint64
	// MinBackoff/MaxBackoff bound the reconnect backoff (defaults
	// 100ms / 5s); jitter is added on top.
	MinBackoff time.Duration
	MaxBackoff time.Duration
	// Client issues the HTTP requests (default: a client with no
	// overall timeout — streams are long-lived; the lease watchdog
	// bounds silence instead).
	Client *http.Client
	// Faults, when set, arms chaos injection on the connect/read/apply
	// path (see internal/fault).
	Faults *fault.Registry
	// Logf receives retry-loop diagnostics (default: discard).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Lease <= 0 {
		c.Lease = 10 * time.Second
	}
	if c.MaxLag == 0 {
		c.MaxLag = 1024
	}
	if c.MinBackoff <= 0 {
		c.MinBackoff = 100 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 5 * time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{}
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// errResync asks the caller to run a snapshot+replay resync.
var errResync = errors.New("replica: resync required")

// Follower tails one primary into a local (read-only) server. Create
// with New, start the loop with Start, stop it with Stop.
type Follower struct {
	srv *server.Server
	cfg Config

	mu            sync.Mutex
	primary       string
	primaryID     string
	appliedLSN    uint64
	primaryLSN    uint64
	lastBeat      time.Time
	connected     bool
	everConnected bool
	resyncs       uint64
	reconnects    uint64
	cancel        context.CancelFunc // severs the in-flight stream

	stop chan struct{}
	done chan struct{}
}

// New builds a follower feeding srv from cfg.Primary and registers its
// status as srv's follower probe (readiness + lag metrics).
func New(srv *server.Server, cfg Config) *Follower {
	cfg = cfg.withDefaults()
	f := &Follower{
		srv:     srv,
		cfg:     cfg,
		primary: cfg.Primary,
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	srv.SetFollowerProbe(f.Status)
	return f
}

// Start launches the replication loop. The follower resumes from the
// last LSN its local server holds (its own replayed WAL, when armed).
func (f *Follower) Start() {
	f.mu.Lock()
	f.appliedLSN = f.srv.LastLSN()
	f.mu.Unlock()
	go f.run()
}

// Stop terminates the loop and severs any in-flight stream.
func (f *Follower) Stop() {
	select {
	case <-f.stop:
	default:
		close(f.stop)
	}
	f.mu.Lock()
	if f.cancel != nil {
		f.cancel()
	}
	f.mu.Unlock()
	<-f.done
}

// SetPrimary retargets the follower (failover to a promoted standby or
// a restarted primary). The in-flight stream is severed; the loop
// reconnects to the new address.
func (f *Follower) SetPrimary(url string) {
	f.mu.Lock()
	f.primary = url
	if f.cancel != nil {
		f.cancel()
	}
	f.mu.Unlock()
}

// Status reports the follower's replication position and readiness:
// ready iff connected, the lease is fresh, and the applied LSN is
// within MaxLag of the primary's.
func (f *Follower) Status() server.FollowerStatus {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := server.FollowerStatus{
		Connected:     f.connected,
		PrimaryID:     f.primaryID,
		AppliedLSN:    f.appliedLSN,
		PrimaryLSN:    f.primaryLSN,
		LastHeartbeat: f.lastBeat,
		Resyncs:       f.resyncs,
		Reconnects:    f.reconnects,
	}
	if f.primaryLSN > f.appliedLSN {
		st.LagEntries = f.primaryLSN - f.appliedLSN
	}
	switch {
	case !f.connected:
		st.Reason = "disconnected"
	case time.Since(f.lastBeat) > f.cfg.Lease:
		st.Reason = "lease_expired"
	case st.LagEntries > f.cfg.MaxLag:
		st.Reason = "lagging"
	default:
		st.Ready = true
	}
	return st
}

// run is the retry loop: connect, stream until something breaks, back
// off (capped exponential + jitter), repeat.
func (f *Follower) run() {
	defer close(f.done)
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	backoff := f.cfg.MinBackoff
	for {
		select {
		case <-f.stop:
			return
		default:
		}
		progressed, err := f.runOnce()
		f.setConnected(false)
		if progressed || err == nil {
			backoff = f.cfg.MinBackoff
		}
		if err != nil {
			f.cfg.Logf("replica: stream ended: %v (retry in ~%s)", err, backoff)
		}
		wait := backoff + time.Duration(rng.Int63n(int64(backoff/2)+1))
		backoff *= 2
		if backoff > f.cfg.MaxBackoff {
			backoff = f.cfg.MaxBackoff
		}
		select {
		case <-f.stop:
			return
		case <-time.After(wait):
		}
	}
}

// runOnce is one connection attempt: probe the primary, resync when its
// incarnation changed or our position is impossible, then stream.
// progressed reports whether any frame was applied (resets backoff).
func (f *Follower) runOnce() (progressed bool, err error) {
	if err := f.cfg.Faults.Hit(fault.ReplicaConnect); err != nil {
		return false, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	f.mu.Lock()
	f.cancel = cancel
	primary := f.primary
	knownID := f.primaryID
	applied := f.appliedLSN
	f.mu.Unlock()

	id, primaryLSN, err := f.fetchStatus(ctx, primary)
	if err != nil {
		return false, err
	}
	f.mu.Lock()
	f.primaryLSN = primaryLSN
	f.primaryID = id
	f.mu.Unlock()

	// A changed incarnation id means the primary we knew is gone; a
	// primary whose LSN is BEHIND ours restarted without its history.
	// Either way our position lives in a dead LSN space: resync.
	if (knownID != "" && knownID != id) || applied > primaryLSN {
		if err := f.resync(ctx, primary); err != nil {
			return false, err
		}
		progressed = true
	}

	for {
		f.mu.Lock()
		from := f.appliedLSN + 1
		f.mu.Unlock()
		n, err := f.stream(ctx, primary, from)
		progressed = progressed || n > 0
		if errors.Is(err, errResync) {
			if rerr := f.resync(ctx, primary); rerr != nil {
				return progressed, rerr
			}
			progressed = true
			continue
		}
		return progressed, err
	}
}

// statusBody is the slice of /v1/replication/status the follower needs.
type statusBody struct {
	PrimaryID string `json:"primary_id"`
	LastLSN   uint64 `json:"last_lsn"`
}

func (f *Follower) fetchStatus(ctx context.Context, primary string) (string, uint64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, primary+"/v1/replication/status", nil)
	if err != nil {
		return "", 0, err
	}
	resp, err := f.cfg.Client.Do(req)
	if err != nil {
		return "", 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", 0, fmt.Errorf("replica: status probe: HTTP %d", resp.StatusCode)
	}
	var st statusBody
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return "", 0, fmt.Errorf("replica: status probe: %w", err)
	}
	if st.PrimaryID == "" {
		return "", 0, errors.New("replica: status probe: no primary id")
	}
	return st.PrimaryID, st.LastLSN, nil
}

// stream tails /v1/replication/stream from the given LSN, applying
// entries until the stream ends. n counts applied entries. errResync
// reports that the primary no longer covers our position.
func (f *Follower) stream(ctx context.Context, primary string, from uint64) (n int, err error) {
	url := fmt.Sprintf("%s/v1/replication/stream?from=%d", primary, from)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, err
	}
	resp, err := f.cfg.Client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusConflict:
		io.Copy(io.Discard, resp.Body)
		return 0, errResync
	default:
		return 0, fmt.Errorf("replica: stream: HTTP %d", resp.StatusCode)
	}
	f.setConnected(true)

	// Lease watchdog: if no frame (entry OR heartbeat) arrives within
	// the lease, sever the connection so the blocked read returns and
	// the loop reconnects. Readiness goes stale independently, the
	// moment time.Since(lastBeat) exceeds the lease.
	watchdog := time.AfterFunc(f.cfg.Lease, func() {
		f.cfg.Logf("replica: lease expired with no frames; severing stream")
		// The context cancel aborts the in-flight body read.
		f.mu.Lock()
		cancel := f.cancel
		f.mu.Unlock()
		if cancel != nil {
			cancel()
		}
	})
	defer watchdog.Stop()

	sr := wal.NewStreamReader(resp.Body)
	for {
		if err := f.cfg.Faults.Hit(fault.ReplicaStreamRead); err != nil {
			return n, err
		}
		fr, err := sr.Next()
		if err != nil {
			if err == io.EOF {
				// Closed between frames without EOS: the primary died or
				// the watchdog severed us. Reconnect.
				return n, errors.New("replica: stream closed without EOS")
			}
			return n, err
		}
		watchdog.Reset(f.cfg.Lease)
		switch fr.Type {
		case wal.FrameEntry:
			if err := f.cfg.Faults.Hit(fault.ReplicaApply); err != nil {
				return n, err
			}
			if err := f.srv.ApplyReplicated(fr.Rec); err != nil {
				return n, err
			}
			n++
			f.mu.Lock()
			f.appliedLSN = fr.Rec.LSN
			if fr.Rec.LSN > f.primaryLSN {
				f.primaryLSN = fr.Rec.LSN
			}
			f.lastBeat = time.Now()
			f.mu.Unlock()
		case wal.FrameHeartbeat:
			f.mu.Lock()
			f.primaryLSN = fr.LSN
			f.lastBeat = time.Now()
			f.mu.Unlock()
		case wal.FrameEOS:
			// Primary draining: clean end, resumable. Treat as a normal
			// disconnect (backoff resets because we made progress or the
			// end was clean).
			return n, nil
		case wal.FrameResync:
			return n, errResync
		default:
			return n, fmt.Errorf("replica: unexpected frame type %q", fr.Type)
		}
	}
}

// resync wholesale-replaces local state from the primary's snapshot
// stream: every entry frame up to EOS, installed at the EOS frame's
// LSN. Used when our position predates the primary's retained tail or
// lives in a dead incarnation's LSN space.
func (f *Follower) resync(ctx context.Context, primary string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, primary+"/v1/replication/snapshot", nil)
	if err != nil {
		return err
	}
	resp, err := f.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("replica: snapshot: HTTP %d", resp.StatusCode)
	}
	sr := wal.NewStreamReader(resp.Body)
	var recs []wal.Record
	for {
		if err := f.cfg.Faults.Hit(fault.ReplicaStreamRead); err != nil {
			return err
		}
		fr, err := sr.Next()
		if err != nil {
			if err == io.EOF {
				return errors.New("replica: snapshot stream closed without EOS")
			}
			return err
		}
		switch fr.Type {
		case wal.FrameEntry:
			recs = append(recs, fr.Rec)
		case wal.FrameEOS:
			if err := f.srv.ResetReplicatedState(fr.LSN, recs); err != nil {
				return err
			}
			f.mu.Lock()
			f.appliedLSN = fr.LSN
			if fr.LSN > f.primaryLSN {
				f.primaryLSN = fr.LSN
			}
			f.lastBeat = time.Now()
			f.resyncs++
			f.mu.Unlock()
			f.cfg.Logf("replica: resynced from snapshot at LSN %d (%d records)", fr.LSN, len(recs))
			return nil
		default:
			return fmt.Errorf("replica: unexpected snapshot frame %q", fr.Type)
		}
	}
}

// setConnected flips the connection flag, counting reconnects.
func (f *Follower) setConnected(up bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if up && !f.connected {
		if f.everConnected {
			f.reconnects++
		}
		f.everConnected = true
		f.lastBeat = time.Now()
	}
	f.connected = up
}
