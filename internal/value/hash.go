package value

// 64-bit hashing over interned values. The engine's tuple store keys its
// primary and secondary indexes on these hashes instead of marshaled
// byte strings, so the functions here are the hot path of every insert,
// duplicate check, and probe. Requirements:
//
//   - Equal values (tuples) hash equal; the sort tag is mixed in so the
//     u-constant with symbol ID 7 and the integer 7 hash differently
//     (mirroring the keyU/keyI tags of the string encoding).
//   - ProjectHash(cols) equals Project(cols).Hash() without materializing
//     the projection, so probe keys can be hashed allocation-free.
//   - Hashes are deterministic across processes (no per-run seed): they
//     feed Fingerprint, which snapshots and logs compare textually.
//
// Collisions are possible in principle (the store resolves them with
// Tuple.Equal checks and counts them), but the mixer is a full-period
// splitmix64 finalizer, so they are vanishingly rare in practice.

// hash tags separate the two sorts and seed the per-length tuple basis.
const (
	hashTagU   uint64 = 0x9E3779B97F4A7C15 // golden-ratio increment
	hashTagI   uint64 = 0xC2B2AE3D27D4EB4F
	hashLenMul uint64 = 0xFF51AFD7ED558CCD
	hashBasis  uint64 = 0x2545F4914F6CDD1D
)

// mix64 is the splitmix64 finalizer: a bijective mixer whose output bits
// all depend on all input bits.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// Hash returns a 64-bit hash of v. Equal values hash equal; the two
// sorts are tagged apart.
func (v Value) Hash() uint64 {
	if v.Sort == I {
		return mix64(uint64(v.Num) ^ hashTagI)
	}
	return mix64(uint64(v.Sym) ^ hashTagU)
}

// tupleHashSeed gives every tuple length its own basis so that the empty
// tuple, (0), and (0, 0) all hash apart, and a relation containing the
// nullary tuple is distinguishable from an empty one.
func tupleHashSeed(n int) uint64 {
	return uint64(n)*hashLenMul + hashBasis
}

// Hash returns an order-dependent 64-bit hash of the tuple. Equal tuples
// hash equal.
func (t Tuple) Hash() uint64 {
	h := tupleHashSeed(len(t))
	for _, v := range t {
		h = mix64(h ^ v.Hash())
	}
	return h
}

// ProjectHash hashes the projection of t onto cols without materializing
// it: t.ProjectHash(cols) == t.Project(cols).Hash().
func (t Tuple) ProjectHash(cols []int) uint64 {
	h := tupleHashSeed(len(cols))
	for _, c := range cols {
		h = mix64(h ^ t[c].Hash())
	}
	return h
}

// CombineHash folds x into a running order-dependent hash h; the
// building block for set fingerprints built from sorted element hashes.
func CombineHash(h, x uint64) uint64 {
	return mix64(h ^ x)
}

// SetHashSeed returns the basis for combining n sorted element hashes
// with CombineHash; seeding with the cardinality keeps the empty set,
// {()} and {(0)} apart.
func SetHashSeed(n int) uint64 {
	return tupleHashSeed(n) ^ hashLenMul
}
