package value

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSortString(t *testing.T) {
	if U.String() != "u" || I.String() != "i" {
		t.Fatalf("Sort.String: got %q %q", U.String(), I.String())
	}
	if Sort(9).String() == "" {
		t.Fatalf("unknown sort should render diagnostically")
	}
}

func TestEqualRespectsSorts(t *testing.T) {
	// The u-constant whose symbol ID happens to equal an integer must not
	// compare equal to that integer.
	u := Str("seven")
	i := Int(int64(u.Sym))
	if u.Equal(i) || i.Equal(u) {
		t.Fatalf("cross-sort values compared equal: %v vs %v", u, i)
	}
	if !Str("x").Equal(Str("x")) {
		t.Fatalf("same u-constant unequal")
	}
	if !Int(3).Equal(Int(3)) || Int(3).Equal(Int(4)) {
		t.Fatalf("integer equality broken")
	}
}

func TestCompareTotalOrder(t *testing.T) {
	vals := []Value{Str("b"), Int(2), Str("a"), Int(-1), Str("c"), Int(0)}
	sort.Slice(vals, func(i, j int) bool { return vals[i].Compare(vals[j]) < 0 })
	// All u-constants (alphabetical) precede all integers (numeric).
	want := []string{"a", "b", "c", "-1", "0", "2"}
	for i, v := range vals {
		if v.String() != want[i] {
			t.Fatalf("sorted order %v, want %v at %d", vals, want, i)
		}
	}
}

func TestCompareConsistentWithEqual(t *testing.T) {
	pool := []Value{Str("a"), Str("b"), Int(0), Int(1), Int(-5)}
	for _, v := range pool {
		for _, w := range pool {
			if (v.Compare(w) == 0) != v.Equal(w) {
				t.Errorf("Compare(%v,%v)==0 disagrees with Equal", v, w)
			}
			if v.Compare(w) != -w.Compare(v) {
				t.Errorf("Compare(%v,%v) not antisymmetric", v, w)
			}
		}
	}
}

func TestTupleKeyInjective(t *testing.T) {
	// Adjacent-boundary cases that a sloppy encoding would conflate.
	tuples := []Tuple{
		{Str("a"), Str("b")},
		{Str("ab")},
		{Int(1), Int(2)},
		{Int(1)},
		{Str("a"), Int(2)},
		{Int(1), Str("b")},
		{},
		{Int(-1)},
		{Int(0)},
	}
	seen := make(map[string]Tuple)
	for _, tp := range tuples {
		k := tp.Key()
		if prev, ok := seen[k]; ok {
			t.Fatalf("key collision between %v and %v", prev, tp)
		}
		seen[k] = tp
	}
}

func TestTupleKeyQuickInjective(t *testing.T) {
	gen := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		mk := func() Tuple {
			n := r.Intn(5)
			tp := make(Tuple, n)
			for i := range tp {
				if r.Intn(2) == 0 {
					tp[i] = Int(int64(r.Intn(8) - 2))
				} else {
					tp[i] = Str(string(rune('a' + r.Intn(4))))
				}
			}
			return tp
		}
		a, b := mk(), mk()
		return (a.Key() == b.Key()) == a.Equal(b)
	}
	if err := quick.Check(gen, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestTupleCompareLexicographic(t *testing.T) {
	a := Tuple{Str("a"), Int(1)}
	b := Tuple{Str("a"), Int(2)}
	c := Tuple{Str("a")}
	if a.Compare(b) >= 0 {
		t.Fatalf("(a,1) should precede (a,2)")
	}
	if c.Compare(a) >= 0 {
		t.Fatalf("shorter prefix should precede longer tuple")
	}
	if a.Compare(a) != 0 {
		t.Fatalf("tuple unequal to itself")
	}
}

func TestProject(t *testing.T) {
	tp := Tuple{Str("a"), Str("b"), Int(3)}
	got := tp.Project([]int{2, 0})
	want := Tuple{Int(3), Str("a")}
	if !got.Equal(want) {
		t.Fatalf("Project = %v, want %v", got, want)
	}
	if len(tp.Project(nil)) != 0 {
		t.Fatalf("empty projection should be empty tuple")
	}
}

func TestProjectKeyMatchesProjectThenKey(t *testing.T) {
	gen := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(5)
		tp := make(Tuple, n)
		for i := range tp {
			if r.Intn(2) == 0 {
				tp[i] = Int(int64(r.Intn(10)))
			} else {
				tp[i] = Str(string(rune('a' + r.Intn(5))))
			}
		}
		var cols []int
		for c := 0; c < n; c++ {
			if r.Intn(2) == 0 {
				cols = append(cols, c)
			}
		}
		return tp.ProjectKey(cols) == tp.Project(cols).Key()
	}
	if err := quick.Check(gen, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIndependence(t *testing.T) {
	tp := Tuple{Str("a"), Int(1)}
	c := tp.Clone()
	c[0] = Str("z")
	if tp[0].String() != "a" {
		t.Fatalf("Clone shares storage with original")
	}
}

func TestStringRendering(t *testing.T) {
	tp := Tuple{Str("joe"), Str("toys"), Int(0)}
	if got := tp.String(); got != "(joe, toys, 0)" {
		t.Fatalf("Tuple.String = %q", got)
	}
	if got := (Tuple{}).String(); got != "()" {
		t.Fatalf("empty Tuple.String = %q", got)
	}
}

func TestConvenienceConstructors(t *testing.T) {
	if got := Ints(1, 2, 3); len(got) != 3 || !got[2].Equal(Int(3)) {
		t.Fatalf("Ints = %v", got)
	}
	if got := Strs("x", "y"); len(got) != 2 || !got[1].Equal(Str("y")) {
		t.Fatalf("Strs = %v", got)
	}
}
