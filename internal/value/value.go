// Package value defines the two-sorted constants of IDLOG (§2.1 of the
// paper) and the tuples built from them.
//
// Sort u values are uninterpreted constants from the universal domain,
// represented by interned symbol IDs. Sort i values are the natural numbers
// used for tuple-identifiers and arithmetic.
package value

import (
	"encoding/binary"
	"fmt"
	"strings"

	"idlog/internal/symbol"
)

// Sort distinguishes the two sorts of the logic (§2.2).
type Sort uint8

const (
	// U is the uninterpreted sort (elements of the universal domain).
	U Sort = iota
	// I is the interpreted sort: the natural numbers.
	I
)

// String implements fmt.Stringer using the paper's 0/1 type notation
// (0 = uninterpreted, 1 = interpreted).
func (s Sort) String() string {
	switch s {
	case U:
		return "u"
	case I:
		return "i"
	default:
		return fmt.Sprintf("Sort(%d)", uint8(s))
	}
}

// Value is one constant of either sort. The zero Value is the invalid
// u-constant (symbol.None) and compares unequal to any parsed constant.
type Value struct {
	// Num holds the natural number when Sort == I.
	Num int64
	// Sym holds the interned constant when Sort == U.
	Sym symbol.ID
	// Sort selects which field is meaningful.
	Sort Sort
}

// Sym returns the sort-u value for an interned symbol.
func Sym(id symbol.ID) Value { return Value{Sort: U, Sym: id} }

// Str interns name in the default symbol table and returns its value.
func Str(name string) Value { return Sym(symbol.Intern(name)) }

// Int returns the sort-i value n. Negative numbers are permitted at this
// layer (the arithmetic built-ins enforce natural-number semantics where
// the paper requires it).
func Int(n int64) Value { return Value{Sort: I, Num: n} }

// IsInt reports whether v is of the interpreted sort.
func (v Value) IsInt() bool { return v.Sort == I }

// Equal reports sort-respecting equality.
func (v Value) Equal(w Value) bool {
	if v.Sort != w.Sort {
		return false
	}
	if v.Sort == I {
		return v.Num == w.Num
	}
	return v.Sym == w.Sym
}

// Compare imposes a total order: all sort-u values (by name) precede all
// sort-i values (by magnitude). The order on u-constants is by interned
// name so that canonical (sorted) ID-functions are independent of
// interning order.
func (v Value) Compare(w Value) int {
	if v.Sort != w.Sort {
		if v.Sort == U {
			return -1
		}
		return 1
	}
	if v.Sort == I {
		switch {
		case v.Num < w.Num:
			return -1
		case v.Num > w.Num:
			return 1
		default:
			return 0
		}
	}
	return strings.Compare(symbol.Name(v.Sym), symbol.Name(w.Sym))
}

// String renders the value in concrete syntax.
func (v Value) String() string {
	if v.Sort == I {
		return fmt.Sprintf("%d", v.Num)
	}
	return symbol.Name(v.Sym)
}

// Tuple is a fixed-arity sequence of values.
type Tuple []Value

// Clone returns a copy of t that shares no storage with it.
func (t Tuple) Clone() Tuple {
	c := make(Tuple, len(t))
	copy(c, t)
	return c
}

// Equal reports element-wise equality.
func (t Tuple) Equal(u Tuple) bool {
	if len(t) != len(u) {
		return false
	}
	for i := range t {
		if !t[i].Equal(u[i]) {
			return false
		}
	}
	return true
}

// Compare orders tuples lexicographically (shorter tuples first on ties).
func (t Tuple) Compare(u Tuple) int {
	n := len(t)
	if len(u) < n {
		n = len(u)
	}
	for i := 0; i < n; i++ {
		if c := t[i].Compare(u[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(t) < len(u):
		return -1
	case len(t) > len(u):
		return 1
	default:
		return 0
	}
}

// String renders the tuple as "(v1, v2, ...)".
func (t Tuple) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range t {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Project returns the sub-tuple at the given 0-based column positions.
func (t Tuple) Project(cols []int) Tuple {
	p := make(Tuple, len(cols))
	for i, c := range cols {
		p[i] = t[c]
	}
	return p
}

// keyByte tags distinguish sorts inside encoded keys so that, e.g., the
// u-constant with symbol ID 7 never collides with the integer 7.
const (
	keyU byte = 0x01
	keyI byte = 0x02
)

// AppendValueKey appends the canonical binary encoding of one value to
// dst; the building block of tuple keys.
func AppendValueKey(dst []byte, v Value) []byte {
	var buf [9]byte
	if v.Sort == I {
		buf[0] = keyI
		binary.BigEndian.PutUint64(buf[1:], uint64(v.Num))
		return append(dst, buf[:9]...)
	}
	buf[0] = keyU
	binary.BigEndian.PutUint32(buf[1:], uint32(v.Sym))
	return append(dst, buf[:5]...)
}

// AppendKey appends a canonical binary encoding of t to dst and returns
// the extended slice. Two tuples encode to the same bytes iff Equal.
func (t Tuple) AppendKey(dst []byte) []byte {
	for _, v := range t {
		dst = AppendValueKey(dst, v)
	}
	return dst
}

// Key returns the canonical encoding of t as a string, suitable for use
// as a map key.
func (t Tuple) Key() string { return string(t.AppendKey(nil)) }

// ProjectKey encodes only the listed 0-based columns of t.
func (t Tuple) ProjectKey(cols []int) string {
	var dst []byte
	for _, c := range cols {
		dst = AppendValueKey(dst, t[c])
	}
	return string(dst)
}

// Ints builds a sort-i tuple from the given numbers; a test convenience.
func Ints(ns ...int64) Tuple {
	t := make(Tuple, len(ns))
	for i, n := range ns {
		t[i] = Int(n)
	}
	return t
}

// Strs builds a sort-u tuple by interning the given names; a test
// convenience.
func Strs(names ...string) Tuple {
	t := make(Tuple, len(names))
	for i, n := range names {
		t[i] = Str(n)
	}
	return t
}
