package value

import (
	"math/rand"
	"testing"

	"idlog/internal/symbol"
)

func TestHashSortTagsDistinct(t *testing.T) {
	// The u-constant with symbol ID n must not collide with the integer n.
	for n := int64(0); n < 64; n++ {
		u := Sym(symbol.ID(n))
		i := Int(n)
		if u.Hash() == i.Hash() {
			t.Fatalf("sort-u %d and sort-i %d hash equal", n, n)
		}
	}
}

func TestProjectHashMatchesProjection(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(6)
		tup := make(Tuple, n)
		for i := range tup {
			if rng.Intn(2) == 0 {
				tup[i] = Int(rng.Int63n(50))
			} else {
				tup[i] = Str(string(rune('a' + rng.Intn(26))))
			}
		}
		cols := rng.Perm(n)[:1+rng.Intn(n)]
		if tup.ProjectHash(cols) != tup.Project(cols).Hash() {
			t.Fatalf("ProjectHash(%v, %v) disagrees with projection hash", tup, cols)
		}
	}
}

func TestTupleHashRespectsOrderAndLength(t *testing.T) {
	if (Tuple{Int(1), Int(2)}).Hash() == (Tuple{Int(2), Int(1)}).Hash() {
		t.Fatal("hash is order-independent")
	}
	if (Tuple{}).Hash() == (Tuple{Int(0)}).Hash() {
		t.Fatal("empty tuple collides with (0)")
	}
	if (Tuple{Int(0)}).Hash() == (Tuple{Int(0), Int(0)}).Hash() {
		t.Fatal("(0) collides with (0, 0)")
	}
	a := Tuple{Str("x"), Int(3)}
	b := Tuple{Str("x"), Int(3)}
	if a.Hash() != b.Hash() {
		t.Fatal("equal tuples hash apart")
	}
}
