package relation

import (
	"fmt"
	"math/rand"
	"testing"

	"idlog/internal/value"
)

func emp() *Relation {
	// The running example of the paper: employees with departments.
	return FromTuples("emp", 2,
		value.Strs("joe", "toys"),
		value.Strs("sue", "toys"),
		value.Strs("ann", "toys"),
		value.Strs("bob", "shoes"),
		value.Strs("eve", "shoes"),
	)
}

func TestInsertDeduplicates(t *testing.T) {
	r := New("p", 2)
	added, err := r.Insert(value.Strs("a", "b"))
	if err != nil || !added {
		t.Fatalf("first insert: %v %v", added, err)
	}
	added, err = r.Insert(value.Strs("a", "b"))
	if err != nil || added {
		t.Fatalf("duplicate insert reported added=%v err=%v", added, err)
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d, want 1", r.Len())
	}
}

func TestInsertArityMismatch(t *testing.T) {
	r := New("p", 2)
	if _, err := r.Insert(value.Strs("a")); err == nil {
		t.Fatalf("arity mismatch not rejected")
	}
	defer func() {
		if recover() == nil {
			t.Fatalf("MustInsert did not panic on arity mismatch")
		}
	}()
	r.MustInsert(value.Strs("a", "b", "c"))
}

func TestContains(t *testing.T) {
	r := emp()
	if !r.Contains(value.Strs("joe", "toys")) {
		t.Fatalf("missing inserted tuple")
	}
	if r.Contains(value.Strs("joe", "shoes")) {
		t.Fatalf("contains absent tuple")
	}
	if r.Contains(value.Strs("joe")) {
		t.Fatalf("contains tuple of wrong arity")
	}
}

func TestEqualIgnoresOrderAndName(t *testing.T) {
	a := FromTuples("a", 1, value.Strs("x"), value.Strs("y"))
	b := FromTuples("b", 1, value.Strs("y"), value.Strs("x"))
	if !a.Equal(b) {
		t.Fatalf("set-equal relations reported unequal")
	}
	b.MustInsert(value.Strs("z"))
	if a.Equal(b) {
		t.Fatalf("different relations reported equal")
	}
}

func TestProjectCollapsesDuplicates(t *testing.T) {
	depts := emp().Project("depts", []int{1})
	if depts.Len() != 2 {
		t.Fatalf("projection has %d tuples, want 2: %v", depts.Len(), depts)
	}
	if !depts.Contains(value.Strs("toys")) || !depts.Contains(value.Strs("shoes")) {
		t.Fatalf("projection content wrong: %v", depts)
	}
}

func TestProbeFindsMatches(t *testing.T) {
	r := emp()
	hits := r.ProbeTuples([]int{1}, value.Strs("toys"))
	if len(hits) != 3 {
		t.Fatalf("probe toys: %d hits, want 3", len(hits))
	}
	for _, h := range hits {
		if h[1].String() != "toys" {
			t.Fatalf("probe returned non-matching tuple %v", h)
		}
	}
	if got := r.ProbeTuples([]int{1}, value.Strs("books")); len(got) != 0 {
		t.Fatalf("probe books: %d hits, want 0", len(got))
	}
}

func TestProbeStaysInSyncAfterInsert(t *testing.T) {
	r := emp()
	_ = r.ProbeTuples([]int{1}, value.Strs("toys")) // force index build
	r.MustInsert(value.Strs("kim", "toys"))
	hits := r.ProbeTuples([]int{1}, value.Strs("toys"))
	if len(hits) != 4 {
		t.Fatalf("after insert probe returned %d hits, want 4", len(hits))
	}
}

func TestProbeEmptyColumnsMatchesAll(t *testing.T) {
	r := emp()
	if got := len(r.Probe(nil, value.Tuple{})); got != r.Len() {
		t.Fatalf("empty-column probe returned %d, want %d", got, r.Len())
	}
}

func TestUnionInto(t *testing.T) {
	a := FromTuples("a", 1, value.Strs("x"))
	b := FromTuples("b", 1, value.Strs("x"), value.Strs("y"))
	n, err := a.UnionInto(b)
	if err != nil || n != 1 {
		t.Fatalf("UnionInto added %d (%v), want 1", n, err)
	}
	if a.Len() != 2 {
		t.Fatalf("union result has %d tuples", a.Len())
	}
	if _, err := a.UnionInto(New("c", 2)); err == nil {
		t.Fatalf("arity-mismatched union not rejected")
	}
	if n, err := a.UnionInto(nil); n != 0 || err != nil {
		t.Fatalf("nil union should be a no-op")
	}
}

func TestGroups(t *testing.T) {
	r := emp()
	groups := r.Groups([]int{1})
	if len(groups) != 2 {
		t.Fatalf("got %d groups, want 2", len(groups))
	}
	// Canonical order: "shoes" < "toys".
	if groups[0].Key.String() != "(shoes)" || groups[1].Key.String() != "(toys)" {
		t.Fatalf("group order wrong: %v, %v", groups[0].Key, groups[1].Key)
	}
	if len(groups[0].Members) != 2 || len(groups[1].Members) != 3 {
		t.Fatalf("group sizes wrong: %d, %d", len(groups[0].Members), len(groups[1].Members))
	}
	// Members are sorted canonically.
	ms := groups[1].Members
	for i := 1; i < len(ms); i++ {
		if ms[i-1].Compare(ms[i]) >= 0 {
			t.Fatalf("group members not sorted: %v", ms)
		}
	}
}

func TestGroupsEmptyColumnSet(t *testing.T) {
	r := emp()
	groups := r.Groups(nil)
	if len(groups) != 1 || len(groups[0].Members) != r.Len() {
		t.Fatalf("p[] grouping should yield one whole-relation group, got %d groups", len(groups))
	}
}

func TestFingerprintOrderIndependent(t *testing.T) {
	a := FromTuples("a", 1, value.Strs("x"), value.Strs("y"), value.Strs("z"))
	b := FromTuples("a", 1, value.Strs("z"), value.Strs("x"), value.Strs("y"))
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatalf("fingerprints of set-equal relations differ")
	}
	b.MustInsert(value.Strs("w"))
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatalf("fingerprints of different relations coincide")
	}
}

func TestFilter(t *testing.T) {
	r := emp()
	toys := r.Filter("toys_only", func(tp value.Tuple) bool { return tp[1].Equal(value.Str("toys")) })
	if toys.Len() != 3 {
		t.Fatalf("filter kept %d tuples, want 3", toys.Len())
	}
}

func TestCloneIsIndependent(t *testing.T) {
	r := emp()
	c := r.Clone()
	c.MustInsert(value.Strs("new", "dept"))
	if r.Len() == c.Len() {
		t.Fatalf("clone shares set structure with original")
	}
}

func TestSortedIsCanonical(t *testing.T) {
	r := emp()
	s := r.Sorted()
	for i := 1; i < len(s); i++ {
		if s[i-1].Compare(s[i]) >= 0 {
			t.Fatalf("Sorted not in canonical order at %d: %v", i, s)
		}
	}
}

func TestStringRendering(t *testing.T) {
	r := FromTuples("p", 1, value.Strs("b"), value.Strs("a"))
	if got := r.String(); got != "p{(a), (b)}" {
		t.Fatalf("String = %q", got)
	}
}

// randomRelation builds a relation with tuples drawn from a small domain,
// giving a good chance of duplicate group keys.
func randomRelation(r *rand.Rand, name string, arity, n int) *Relation {
	rel := New(name, arity)
	for i := 0; i < n; i++ {
		tp := make(value.Tuple, arity)
		for j := range tp {
			if r.Intn(3) == 0 {
				tp[j] = value.Int(int64(r.Intn(4)))
			} else {
				tp[j] = value.Str(fmt.Sprintf("c%d", r.Intn(5)))
			}
		}
		rel.MustInsert(tp)
	}
	return rel
}

func TestGroupsPartitionProperty(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		arity := 1 + r.Intn(3)
		rel := randomRelation(r, "p", arity, r.Intn(30))
		var cols []int
		for c := 0; c < arity; c++ {
			if r.Intn(2) == 0 {
				cols = append(cols, c)
			}
		}
		groups := rel.Groups(cols)
		total := 0
		for _, g := range groups {
			total += len(g.Members)
			for _, m := range g.Members {
				if !m.Project(cols).Equal(g.Key) {
					t.Fatalf("member %v not matching group key %v", m, g.Key)
				}
			}
		}
		if total != rel.Len() {
			t.Fatalf("groups cover %d tuples, relation has %d", total, rel.Len())
		}
	}
}
