package relation

import (
	"sync/atomic"

	"idlog/internal/value"
)

// indexedTuples counts tuples entered into secondary indexes during
// one-shot index builds, process-wide. Partition-pruned evaluation
// shows up here: a partition whose delta part stays empty never probes
// and therefore never pays its index build, so the counter measures
// the index-volume reduction the E19 benchmark reports on single-core
// hardware (where wall-clock parallel speedup is unobservable).
var indexedTuples atomic.Uint64

// IndexedTuplesTotal reports how many tuples have been entered into
// secondary indexes by index builds in this process.
func IndexedTuplesTotal() uint64 { return indexedTuples.Load() }

// secondary is a hash index over a subset of columns, mapping the 64-bit
// hash of the projection onto those columns to the positions of matching
// tuples. Buckets carry a representative projection and chain on genuine
// hash collisions, so probes never confuse distinct keys; probe keys are
// hashed in place (ProjectHash) with no marshaling or allocation.
type secondary struct {
	cols    []int
	buckets map[uint64]*ibucket
}

// ibucket holds the positions of the tuples sharing one projection. key
// is an owned representative copy of that projection; next chains
// buckets whose distinct projections share a 64-bit hash.
type ibucket struct {
	key       value.Tuple
	positions []int
	next      *ibucket
}

// matches reports whether t's projection onto cols equals the bucket key.
func (b *ibucket) matches(t value.Tuple, cols []int) bool {
	for i, c := range cols {
		if !t[c].Equal(b.key[i]) {
			return false
		}
	}
	return true
}

func (ix *secondary) add(t value.Tuple, pos int) {
	h := t.ProjectHash(ix.cols)
	head := ix.buckets[h]
	for b := head; b != nil; b = b.next {
		if b.matches(t, ix.cols) {
			b.positions = append(b.positions, pos)
			return
		}
		secondaryHashCollisions.Add(1)
	}
	ix.buckets[h] = &ibucket{key: t.Project(ix.cols), positions: []int{pos}, next: head}
}

// remove deletes tuple position pos (holding tuple t) from the index,
// unlinking the bucket if it empties.
func (ix *secondary) remove(t value.Tuple, pos int) {
	h := t.ProjectHash(ix.cols)
	var prev *ibucket
	for b := ix.buckets[h]; b != nil; prev, b = b, b.next {
		if !b.matches(t, ix.cols) {
			continue
		}
		for i, p := range b.positions {
			if p == pos {
				b.positions = append(b.positions[:i], b.positions[i+1:]...)
				break
			}
		}
		if len(b.positions) == 0 {
			if prev == nil {
				if b.next == nil {
					delete(ix.buckets, h)
				} else {
					ix.buckets[h] = b.next
				}
			} else {
				prev.next = b.next
			}
		}
		return
	}
}

// update re-points tuple t's entry from oldPos to newPos after a
// swap-remove moved it.
func (ix *secondary) update(t value.Tuple, oldPos, newPos int) {
	h := t.ProjectHash(ix.cols)
	for b := ix.buckets[h]; b != nil; b = b.next {
		if !b.matches(t, ix.cols) {
			continue
		}
		for i, p := range b.positions {
			if p == oldPos {
				b.positions[i] = newPos
				return
			}
		}
		return
	}
}

func sameCols(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ensureIndex builds (or fetches) the secondary index on cols. All
// relations — frozen or not — share one publication path: concurrent
// probes read the published index list with one atomic load (a linear
// scan over the few indexes, no allocation on the hot probe path); a
// miss builds the index under buildMu and publishes a fresh copy of
// the list, never mutating a slice another goroutine may be scanning.
// Published indexes are maintained by store() on every later insert and
// patched by Remove on every deletion.
func (r *Relation) ensureIndex(cols []int, hint int) *secondary {
	if cur := r.shared.Load(); cur != nil {
		for _, ix := range *cur {
			if sameCols(ix.cols, cols) {
				return ix
			}
		}
	}
	r.buildMu.Lock()
	defer r.buildMu.Unlock()
	var have []*secondary
	if cur := r.shared.Load(); cur != nil {
		have = *cur
		for _, ix := range have {
			if sameCols(ix.cols, cols) {
				return ix // lost the build race; reuse the winner's index
			}
		}
	}
	ix := r.buildIndex(cols, hint)
	next := make([]*secondary, len(have), len(have)+1)
	copy(next, have)
	next = append(next, ix)
	r.shared.Store(&next)
	return ix
}

// buildIndex scans the relation once and constructs the index on cols.
func (r *Relation) buildIndex(cols []int, hint int) *secondary {
	// Pre-size the bucket map for the expected cardinality: an upper
	// bound on distinct keys, saving incremental map growth during the
	// one-shot build scan — and, when the caller's hint exceeds the
	// current length (a derived relation probed mid-fixpoint, whose
	// planner estimate anticipates its final size), during the
	// maintenance inserts that follow.
	size := r.Len()
	if hint > size {
		size = hint
	}
	ix := &secondary{cols: append([]int(nil), cols...), buckets: make(map[uint64]*ibucket, size)}
	r.Scan(0, -1, func(pos int, t value.Tuple) bool {
		ix.add(t, pos)
		return true
	})
	indexedTuples.Add(uint64(r.Len()))
	return ix
}

// Probe returns the positions of the tuples whose projection onto cols
// equals key (a tuple of len(cols) values). An index on cols is built on
// first use and maintained by subsequent inserts and removals.
func (r *Relation) Probe(cols []int, key value.Tuple) []int {
	return r.ProbeHint(cols, key, 0)
}

// ProbeHint is Probe carrying a cardinality hint: if the index on cols
// must be built, its bucket map is pre-sized for hint tuples when that
// exceeds the relation's current length. The hint only affects
// allocation, never results.
func (r *Relation) ProbeHint(cols []int, key value.Tuple, hint int) []int {
	if len(cols) == 0 {
		// Degenerate probe: every tuple matches.
		all := make([]int, r.Len())
		for i := range all {
			all[i] = i
		}
		return all
	}
	ix := r.ensureIndex(cols, hint)
	for b := ix.buckets[key.Hash()]; b != nil; b = b.next {
		if key.Equal(b.key) {
			return b.positions
		}
	}
	return nil
}

// ProbeTuples is Probe but materializes the matching tuples.
func (r *Relation) ProbeTuples(cols []int, key value.Tuple) []value.Tuple {
	pos := r.Probe(cols, key)
	out := make([]value.Tuple, len(pos))
	for i, p := range pos {
		out[i] = r.At(p)
	}
	return out
}

func identityCols(n int) []int {
	cols := make([]int, n)
	for i := range cols {
		cols[i] = i
	}
	return cols
}
