package relation

import (
	"fmt"
	"strings"

	"idlog/internal/value"
)

// secondary is a hash index over a subset of columns, mapping the encoded
// projection onto those columns to the positions of matching tuples.
type secondary struct {
	cols    []int
	buckets map[string][]int
	scratch []byte
}

func (ix *secondary) add(t value.Tuple, pos int) {
	ix.scratch = ix.scratch[:0]
	for _, c := range ix.cols {
		ix.scratch = value.AppendValueKey(ix.scratch, t[c])
	}
	bucket, ok := ix.buckets[string(ix.scratch)]
	if !ok {
		ix.buckets[string(ix.scratch)] = []int{pos}
		return
	}
	ix.buckets[string(ix.scratch)] = append(bucket, pos)
}

func colsSig(cols []int) string {
	var b strings.Builder
	for i, c := range cols {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", c)
	}
	return b.String()
}

func sameCols(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ensureIndex builds (or fetches) the secondary index on cols. All
// relations — frozen or not — share one publication path: concurrent
// probes read the published index list with one atomic load (a linear
// scan over the few indexes, no allocation on the hot probe path); a
// miss builds the index under buildMu and publishes a fresh copy of
// the list, never mutating a slice another goroutine may be scanning.
// Published indexes are maintained by store() on every later insert.
func (r *Relation) ensureIndex(cols []int) *secondary {
	if cur := r.shared.Load(); cur != nil {
		for _, ix := range *cur {
			if sameCols(ix.cols, cols) {
				return ix
			}
		}
	}
	r.buildMu.Lock()
	defer r.buildMu.Unlock()
	var have []*secondary
	if cur := r.shared.Load(); cur != nil {
		have = *cur
		for _, ix := range have {
			if sameCols(ix.cols, cols) {
				return ix // lost the build race; reuse the winner's index
			}
		}
	}
	ix := r.buildIndex(cols)
	next := make([]*secondary, len(have), len(have)+1)
	copy(next, have)
	next = append(next, ix)
	r.shared.Store(&next)
	return ix
}

// buildIndex scans the relation once and constructs the index on cols.
func (r *Relation) buildIndex(cols []int) *secondary {
	ix := &secondary{cols: append([]int(nil), cols...), buckets: make(map[string][]int)}
	for pos, t := range r.tuples {
		ix.add(t, pos)
	}
	return ix
}

// Probe returns the positions of the tuples whose projection onto cols
// equals key (a tuple of len(cols) values). An index on cols is built on
// first use and maintained by subsequent inserts.
func (r *Relation) Probe(cols []int, key value.Tuple) []int {
	if len(cols) == 0 {
		// Degenerate probe: every tuple matches.
		all := make([]int, len(r.tuples))
		for i := range all {
			all[i] = i
		}
		return all
	}
	ix := r.ensureIndex(cols)
	var buf [keyBufSize]byte
	k := key.AppendKey(buf[:0])
	return ix.buckets[string(k)]
}

// ProbeTuples is Probe but materializes the matching tuples.
func (r *Relation) ProbeTuples(cols []int, key value.Tuple) []value.Tuple {
	pos := r.Probe(cols, key)
	out := make([]value.Tuple, len(pos))
	for i, p := range pos {
		out[i] = r.tuples[p]
	}
	return out
}

func identityCols(n int) []int {
	cols := make([]int, n)
	for i := range cols {
		cols[i] = i
	}
	return cols
}
