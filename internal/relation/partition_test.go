package relation

import (
	"fmt"
	"testing"

	"idlog/internal/value"
)

// TestPartitionedRoutesEveryTupleOnce: the partition views form an
// exact disjoint cover of the parent, and each tuple sits where its key
// hash says.
func TestPartitionedRoutesEveryTupleOnce(t *testing.T) {
	r := New("e", 2)
	for i := 0; i < 200; i++ {
		r.MustInsert(value.Strs(fmt.Sprintf("a%d", i%17), fmt.Sprintf("b%d", i)))
	}
	p := NewPartitioned(r, []int{0}, 4)
	total := 0
	for i := 0; i < p.N(); i++ {
		part := p.Part(i)
		if part.Len() != p.PartLen(i) {
			t.Fatalf("partition %d: Len %d != PartLen %d", i, part.Len(), p.PartLen(i))
		}
		total += part.Len()
		part.Scan(0, -1, func(_ int, tup value.Tuple) bool {
			if want := int(tup.ProjectHash([]int{0}) % 4); want != i {
				t.Fatalf("tuple %v in partition %d, hash says %d", tup, i, want)
			}
			return true
		})
	}
	if total != r.Len() {
		t.Fatalf("partitions hold %d tuples, parent %d", total, r.Len())
	}
}

// TestPartitionedCoPlacement: two relations partitioned on matching key
// columns with the same fan-out agree on placement, so a per-partition
// join covers exactly the unpartitioned matches.
func TestPartitionedCoPlacement(t *testing.T) {
	delta := New("d", 2)
	probe := New("e", 2)
	for i := 0; i < 120; i++ {
		delta.MustInsert(value.Strs(fmt.Sprintf("x%d", i), fmt.Sprintf("k%d", i%11)))
		probe.MustInsert(value.Strs(fmt.Sprintf("k%d", i%11), fmt.Sprintf("y%d", i)))
	}
	dp := NewPartitioned(delta, []int{1}, 8) // join var at delta col 1
	pp := NewPartitioned(probe, []int{0}, 8) // same var at probe col 0

	unpartitioned := 0
	delta.Scan(0, -1, func(_ int, d value.Tuple) bool {
		unpartitioned += len(probe.Probe([]int{0}, value.Tuple{d[1]}))
		return true
	})
	partitioned := 0
	for k := 0; k < 8; k++ {
		dp.Part(k).Scan(0, -1, func(_ int, d value.Tuple) bool {
			partitioned += len(pp.Part(k).Probe([]int{0}, value.Tuple{d[1]}))
			return true
		})
	}
	if partitioned != unpartitioned {
		t.Fatalf("per-partition join found %d matches, unpartitioned %d", partitioned, unpartitioned)
	}
}

// TestPartitionedRefresh: tuples appended to the parent after
// construction are routed by Refresh, and partition-local indexes
// already built absorb them incrementally (no rebuild, no stale probes).
func TestPartitionedRefresh(t *testing.T) {
	r := New("e", 2)
	for i := 0; i < 50; i++ {
		r.MustInsert(value.Strs(fmt.Sprintf("k%d", i%5), fmt.Sprintf("v%d", i)))
	}
	p := NewPartitioned(r, []int{0}, 3)

	// Build an index on every partition by probing once.
	before := 0
	for k := 0; k < 3; k++ {
		before += len(p.Part(k).Probe([]int{0}, value.Strs("k1")))
	}

	for i := 50; i < 90; i++ {
		r.MustInsert(value.Strs(fmt.Sprintf("k%d", i%5), fmt.Sprintf("v%d", i)))
	}
	p.Refresh()

	total := 0
	for k := 0; k < 3; k++ {
		total += p.PartLen(k)
	}
	if total != r.Len() {
		t.Fatalf("after refresh partitions hold %d tuples, parent %d", total, r.Len())
	}
	after := 0
	for k := 0; k < 3; k++ {
		after += len(p.Part(k).Probe([]int{0}, value.Strs("k1")))
	}
	want := len(r.Probe([]int{0}, value.Strs("k1")))
	if after != want || after <= before {
		t.Fatalf("post-refresh probes found %d matches, parent %d (pre-refresh %d)", after, want, before)
	}
	// Refresh with nothing new is a no-op.
	p.Refresh()
	again := 0
	for k := 0; k < 3; k++ {
		again += p.PartLen(k)
	}
	if again != r.Len() {
		t.Fatalf("idempotent refresh changed coverage: %d vs %d", again, r.Len())
	}
}

// TestPartitionedSkew: even keys → ratio near 1; all tuples on one key
// → ratio n; empty → 0.
func TestPartitionedSkew(t *testing.T) {
	r := New("e", 1)
	p := NewPartitioned(r, []int{0}, 4)
	if got := p.Skew(); got != 0 {
		t.Fatalf("empty skew = %v, want 0", got)
	}
	for i := 0; i < 64; i++ {
		r.MustInsert(value.Strs("same"))
	}
	p.Refresh()
	if got := p.Skew(); got != 4 {
		t.Fatalf("single-key skew = %v, want 4 (everything in one of 4 partitions)", got)
	}
}

// TestPartitionedCounter: routing bumps the process-wide counter by the
// number of tuples routed.
func TestPartitionedCounter(t *testing.T) {
	r := New("e", 1)
	for i := 0; i < 33; i++ {
		r.MustInsert(value.Strs(fmt.Sprintf("v%d", i)))
	}
	before := PartitionedTuplesTotal()
	NewPartitioned(r, []int{0}, 4)
	if got := PartitionedTuplesTotal() - before; got != 33 {
		t.Fatalf("counter grew by %d, want 33", got)
	}
}
