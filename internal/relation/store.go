package relation

import "idlog/internal/value"

// Store is the storage-engine contract of the evaluator: everything the
// engine (join walk, planner, incremental maintenance, servers) needs
// from a relation, independent of where its tuples live. The in-memory
// *Relation — a 64-bit-hash open-addressing table over a tuple slice —
// is the canonical implementation; disk-backed relations created with
// NewStored over a segment TupleSource satisfy it through the very same
// index machinery, so every access path (probe, scan, containment,
// fingerprint) behaves identically across engines.
//
// The Freeze/COW contract, shared by all implementations:
//
//   - While unfrozen, a Store is single-goroutine: Insert extends it in
//     place and published secondary indexes are maintained per insert.
//   - Freeze makes it immutable and safe for any number of concurrent
//     readers; Insert then fails. Lazy secondary indexes build under a
//     lock and publish atomically (copy-on-write), never mutating a
//     list a reader may be scanning.
//   - Clone/Thaw derive the next snapshot copy-on-write: tuple storage
//     is shared (disk-backed bases stay on disk; new inserts accumulate
//     in a private in-memory overlay) while the set structure is
//     independent. Removing a tuple from a disk-backed relation
//     promotes the base into the overlay first (segments are
//     immutable), so deletions are correct but cost a materialization.
type Store interface {
	// Name returns the predicate name, Arity the number of columns.
	Name() string
	Arity() int
	// Len is the exact cardinality; EstimateCard is the planner's
	// cost-model input, which an implementation may serve from cheap
	// metadata (both engines here happen to know the exact count).
	Len() int
	EstimateCard() int
	// Insert adds t if absent, reporting whether it was added. Frozen
	// stores reject it.
	Insert(t value.Tuple) (bool, error)
	// Contains reports membership, At returns the tuple at a position,
	// and Scan streams positions [lo, hi) (hi = -1 for the end) without
	// materializing the relation; it reports whether the scan ran to
	// completion (fn returning false stops it early).
	Contains(t value.Tuple) bool
	At(i int) value.Tuple
	Scan(lo, hi int, fn func(pos int, t value.Tuple) bool) bool
	// ProbeIndex returns the positions whose projection onto cols
	// equals key, building (and thereafter maintaining) a secondary
	// index on cols on first use.
	ProbeIndex(cols []int, key value.Tuple) []int
	// Fingerprint is the canonical set identity: equal tuple sets have
	// equal fingerprints regardless of engine, insertion order, or
	// storage layout. The cross-engine differential tests rely on it.
	Fingerprint() string
	// Frozen reports whether Freeze has been called (see the contract
	// above; Freeze itself returns the concrete type for chaining).
	Frozen() bool
}

var _ Store = (*Relation)(nil)

// TupleSource is the plug point for alternative tuple storage: an
// immutable, position-addressed tuple sequence that a Relation built
// with NewStored reads through instead of its in-memory slice. The
// primary hash table and all secondary indexes stay in the Relation and
// address tuples by position, so one index implementation serves every
// backing. internal/segment provides the disk-backed implementation
// (CRC-checksummed block files behind an LRU block cache).
//
// Implementations must be safe for concurrent readers: a frozen
// disk-backed relation is shared across evaluation goroutines exactly
// like an in-memory one.
type TupleSource interface {
	// Len is the number of tuples; positions are 0..Len()-1.
	Len() int
	// At returns the tuple at position i. The returned tuple must not
	// be mutated.
	At(i int) value.Tuple
	// HashAt returns value.Tuple.Hash() of the tuple at position i
	// without necessarily decoding it (segments store the hash array in
	// their footer), which makes index construction and fingerprints
	// metadata-only operations.
	HashAt(i int) uint64
	// Scan streams positions [lo, hi) in order; fn returning false
	// stops the scan and makes Scan report false. Implementations
	// should decode block-at-a-time rather than calling At per
	// position.
	Scan(lo, hi int, fn func(pos int, t value.Tuple) bool) bool
}

// NewStored builds a relation whose first src.Len() positions are
// served by src: the primary hash table is constructed from the
// source's hash array (no tuple decoding), later Inserts accumulate in
// a private in-memory overlay at positions ≥ src.Len(), and Remove
// promotes the source into the overlay first (sources are immutable).
// The relation starts unfrozen so WAL-tail replay can extend it; Freeze
// it before sharing, like any other relation.
func NewStored(name string, arity int, src TupleSource) *Relation {
	r := &Relation{name: name, arity: arity, src: src, nsrc: src.Len()}
	// Genuine hash collisions land as separate entries; lookup resolves
	// them with full Tuple.Equal checks, same as the in-memory path.
	for i := 0; i < r.nsrc; i++ {
		r.primary.insert(src.HashAt(i), i)
	}
	return r
}

// EstimateCard returns the planner's cardinality estimate for r; both
// engines know the exact count, so it equals Len. It exists so the
// cost model consumes the Store contract rather than a concrete field.
func (r *Relation) EstimateCard() int { return r.Len() }

// ProbeIndex is Probe under its Store-contract name.
func (r *Relation) ProbeIndex(cols []int, key value.Tuple) []int {
	return r.Probe(cols, key)
}

// SourceLen reports how many of r's tuples are served by a pluggable
// TupleSource (0 for purely in-memory relations). Len() - SourceLen()
// is the in-memory overlay; observability surfaces (REPL :db, idlogd
// /metrics) use the split to show where a relation's bytes live.
func (r *Relation) SourceLen() int { return r.nsrc }

// materialize promotes the source tuples into the in-memory overlay,
// preserving positions, and detaches the source. Positions are stable,
// so the primary table and every published secondary index stay valid
// untouched. Called by Remove (sources are immutable) — the documented
// cost of deleting from a disk-backed relation.
func (r *Relation) materialize() {
	if r.src == nil {
		return
	}
	all := make([]value.Tuple, 0, r.nsrc+len(r.tuples))
	r.src.Scan(0, r.nsrc, func(_ int, t value.Tuple) bool {
		all = append(all, t)
		return true
	})
	all = append(all, r.tuples...)
	r.tuples = all
	r.src = nil
	r.nsrc = 0
}
