package relation

import (
	"sync/atomic"

	"idlog/internal/value"
)

// The tuple store resolves 64-bit hash collisions with full Tuple.Equal
// checks; these counters record how often an equal hash turned out to be
// an unequal tuple (primary table) or an unequal projection (secondary
// index buckets). They are process-global, exported for the idlogd
// /metrics endpoint, and expected to stay at zero essentially forever.
var (
	primaryHashCollisions   atomic.Uint64
	secondaryHashCollisions atomic.Uint64
)

// CollisionCounts returns the process-wide number of observed 64-bit
// hash collisions in primary tables and secondary index buckets.
func CollisionCounts() (primary, secondary uint64) {
	return primaryHashCollisions.Load(), secondaryHashCollisions.Load()
}

// table is the primary index of a Relation: an open-addressing hash
// table mapping tuple hashes to positions in the tuple slice. Entries
// store the full 64-bit hash so growth never rehashes tuples and probe
// chains can skip mismatched slots without touching tuple memory.
//
// Slot encoding: pos == 0 is an empty slot, pos == -1 a tombstone left
// by Remove, pos >= 1 holds tuple position pos-1. Linear probing; the
// table grows (or compacts tombstones in place) at 3/4 load.
type table struct {
	entries []tableEntry
	mask    uint64
	live    int // occupied slots holding tuples
	used    int // live + tombstones (governs load factor)
}

type tableEntry struct {
	hash uint64
	pos  int32
}

const tableMinSize = 8

// lookup returns the position of the tuple equal to t (hash h) in r,
// or -1 when absent. Positions resolve through r.At, so one table
// serves both in-memory and source-backed tuple storage; the stored
// 64-bit hash filters probe chains, so a tuple is only fetched (and,
// for source-backed positions, decoded) on an exact hash match.
func (tb *table) lookup(r *Relation, t value.Tuple, h uint64) int {
	if len(tb.entries) == 0 {
		return -1
	}
	i := h & tb.mask
	for {
		e := tb.entries[i]
		if e.pos == 0 {
			return -1
		}
		if e.pos > 0 && e.hash == h {
			p := int(e.pos) - 1
			if r.At(p).Equal(t) {
				return p
			}
			primaryHashCollisions.Add(1)
		}
		i = (i + 1) & tb.mask
	}
}

// insert records hash h at tuple position pos. The caller must have
// established absence via lookup (tombstone reuse relies on it).
func (tb *table) insert(h uint64, pos int) {
	if (tb.used+1)*4 > len(tb.entries)*3 {
		tb.rehash()
	}
	i := h & tb.mask
	for {
		e := &tb.entries[i]
		if e.pos == 0 {
			e.hash, e.pos = h, int32(pos)+1
			tb.live++
			tb.used++
			return
		}
		if e.pos == -1 {
			e.hash, e.pos = h, int32(pos)+1
			tb.live++ // reusing a tombstone leaves used unchanged
			return
		}
		i = (i + 1) & tb.mask
	}
}

// remove tombstones the entry holding tuple position pos under hash h.
func (tb *table) remove(h uint64, pos int) {
	i := h & tb.mask
	for {
		e := &tb.entries[i]
		if e.pos == 0 {
			return // absent; nothing to do
		}
		if e.hash == h && e.pos == int32(pos)+1 {
			e.pos = -1
			tb.live--
			return
		}
		i = (i + 1) & tb.mask
	}
}

// updatePos re-points the entry for (h, oldPos) at newPos; used when
// swap-remove moves the last tuple into a vacated position.
func (tb *table) updatePos(h uint64, oldPos, newPos int) {
	i := h & tb.mask
	for {
		e := &tb.entries[i]
		if e.pos == 0 {
			return
		}
		if e.hash == h && e.pos == int32(oldPos)+1 {
			e.pos = int32(newPos) + 1
			return
		}
		i = (i + 1) & tb.mask
	}
}

// presize allocates the entry array for about n tuples so bulk
// insertion avoids growth rehashes. Only valid on an empty table (a
// construction-time hint); a smaller-than-current size is ignored.
func (tb *table) presize(n int) {
	if tb.used != 0 {
		return
	}
	size := tableMinSize
	for size*3 < n*4 {
		size *= 2
	}
	if size <= len(tb.entries) {
		return
	}
	tb.entries = make([]tableEntry, size)
	tb.mask = uint64(size - 1)
}

// rehash grows the table (doubling while genuinely loaded) or compacts
// it at the current size when the load is mostly tombstones.
func (tb *table) rehash() {
	n := len(tb.entries)
	switch {
	case n == 0:
		n = tableMinSize
	case (tb.live+1)*2 > n:
		n *= 2
	}
	old := tb.entries
	tb.entries = make([]tableEntry, n)
	tb.mask = uint64(n - 1)
	tb.used = tb.live
	for _, e := range old {
		if e.pos <= 0 {
			continue
		}
		i := e.hash & tb.mask
		for tb.entries[i].pos != 0 {
			i = (i + 1) & tb.mask
		}
		tb.entries[i] = e
	}
}

// clone returns an independent copy of the table.
func (tb *table) clone() table {
	c := *tb
	c.entries = append([]tableEntry(nil), tb.entries...)
	return c
}
