package relation

import (
	"math/rand"
	"testing"

	"idlog/internal/value"
)

func TestRemoveBasic(t *testing.T) {
	r := FromTuples("e", 2,
		value.Strs("a", "b"), value.Strs("b", "c"), value.Strs("c", "d"))
	ok, err := r.Remove(value.Strs("b", "c"))
	if err != nil || !ok {
		t.Fatalf("Remove = %v, %v; want true, nil", ok, err)
	}
	if r.Len() != 2 || r.Contains(value.Strs("b", "c")) {
		t.Fatalf("after remove: %s", r)
	}
	if !r.Contains(value.Strs("a", "b")) || !r.Contains(value.Strs("c", "d")) {
		t.Fatalf("swap-remove lost a survivor: %s", r)
	}
	// Absent tuple: no-op.
	ok, err = r.Remove(value.Strs("x", "y"))
	if err != nil || ok {
		t.Fatalf("Remove absent = %v, %v; want false, nil", ok, err)
	}
	// Arity mismatch and frozen relation: errors.
	if _, err := r.Remove(value.Strs("a")); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	r.Freeze()
	if _, err := r.Remove(value.Strs("a", "b")); err == nil {
		t.Fatal("remove from frozen relation accepted")
	}
}

// TestRemoveLastAndReinsert covers the swap-remove edge cases: removing
// the final tuple, removing the last position, and reuse after empties.
func TestRemoveLastAndReinsert(t *testing.T) {
	r := FromTuples("p", 1, value.Strs("a"), value.Strs("b"))
	if ok, _ := r.Remove(value.Strs("b")); !ok {
		t.Fatal("remove last position failed")
	}
	if ok, _ := r.Remove(value.Strs("a")); !ok {
		t.Fatal("remove only tuple failed")
	}
	if r.Len() != 0 {
		t.Fatalf("len = %d after emptying", r.Len())
	}
	r.MustInsert(value.Strs("c"))
	if r.Len() != 1 || !r.Contains(value.Strs("c")) {
		t.Fatalf("reinsert after emptying: %s", r)
	}
}

// TestRemoveInvalidatesIndexes checks that probes after a removal never
// see stale positions: published indexes are patched in place for the
// removed tuple and the tuple moved by swap-remove.
func TestRemoveInvalidatesIndexes(t *testing.T) {
	r := New("e", 2)
	for i := 0; i < 50; i++ {
		r.MustInsert(value.Tuple{value.Int(int64(i % 5)), value.Int(int64(i))})
	}
	// Build (publish) an index on column 0.
	key := value.Tuple{value.Int(3)}
	before := len(r.Probe([]int{0}, key))
	if before == 0 {
		t.Fatal("probe found nothing")
	}
	for i := 0; i < 50; i += 2 {
		if _, err := r.Remove(value.Tuple{value.Int(int64(i % 5)), value.Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	for _, pos := range r.Probe([]int{0}, key) {
		tup := r.At(pos)
		if !tup[0].Equal(value.Int(3)) {
			t.Fatalf("stale index position %d -> %s", pos, tup)
		}
	}
}

// TestRemoveRandomized cross-checks a long random insert/remove
// sequence against a map-based model.
func TestRemoveRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	r := New("p", 2)
	model := map[[2]int64]bool{}
	for step := 0; step < 5000; step++ {
		a, b := rng.Int63n(20), rng.Int63n(20)
		tup := value.Tuple{value.Int(a), value.Int(b)}
		if rng.Intn(2) == 0 {
			added, err := r.Insert(tup)
			if err != nil {
				t.Fatal(err)
			}
			if added == model[[2]int64{a, b}] {
				t.Fatalf("step %d: insert added=%v but model has=%v", step, added, model[[2]int64{a, b}])
			}
			model[[2]int64{a, b}] = true
		} else {
			removed, err := r.Remove(tup)
			if err != nil {
				t.Fatal(err)
			}
			if removed != model[[2]int64{a, b}] {
				t.Fatalf("step %d: remove removed=%v but model has=%v", step, removed, model[[2]int64{a, b}])
			}
			delete(model, [2]int64{a, b})
		}
	}
	if r.Len() != len(model) {
		t.Fatalf("len=%d model=%d", r.Len(), len(model))
	}
	for k := range model {
		if !r.Contains(value.Tuple{value.Int(k[0]), value.Int(k[1])}) {
			t.Fatalf("missing %v", k)
		}
	}
}
