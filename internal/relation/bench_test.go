package relation

import (
	"fmt"
	"testing"

	"idlog/internal/value"
)

func benchRelation(n int) *Relation {
	r := New("bench", 3)
	for i := 0; i < n; i++ {
		r.MustInsert(value.Tuple{
			value.Int(int64(i)),
			value.Str(fmt.Sprintf("g%d", i%16)),
			value.Int(int64(i % 7)),
		})
	}
	return r
}

func BenchmarkInsert(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := New("t", 2)
		for j := 0; j < 1000; j++ {
			r.MustInsert(value.Ints(int64(j), int64(j%10)))
		}
	}
}

func BenchmarkInsertDuplicates(b *testing.B) {
	r := New("t", 2)
	for j := 0; j < 1000; j++ {
		r.MustInsert(value.Ints(int64(j), int64(j%10)))
	}
	t := value.Ints(500, 0)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if added, _ := r.Insert(t); added {
			b.Fatalf("duplicate inserted")
		}
	}
}

func BenchmarkContains(b *testing.B) {
	r := benchRelation(10000)
	probe := value.Tuple{value.Int(5000), value.Str("g8"), value.Int(2)}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Contains(probe)
	}
}

func BenchmarkProbeIndexed(b *testing.B) {
	r := benchRelation(10000)
	key := value.Tuple{value.Str("g3")}
	r.Probe([]int{1}, key) // build index outside the loop
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if got := r.Probe([]int{1}, key); len(got) == 0 {
			b.Fatalf("empty probe")
		}
	}
}

func BenchmarkMaterializeID(b *testing.B) {
	r := benchRelation(10000)
	for _, o := range []struct {
		name   string
		oracle Oracle
	}{{"sorted", SortedOracle{}}, {"random", RandomOracle{Seed: 1}}} {
		b.Run(o.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := MaterializeID(r, "id", []int{1}, o.oracle); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	b.Run("sorted-bounded", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := MaterializeIDBounded(r, "id", []int{1}, SortedOracle{}, 2); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkFingerprint(b *testing.B) {
	r := benchRelation(2000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Fingerprint()
	}
}
