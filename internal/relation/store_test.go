package relation

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"idlog/internal/value"
)

// TestRemoveKeepsIndexesPublished is the regression test for the old
// behavior of dropping every secondary index on every deletion: after a
// Remove, published indexes must stay published (patched, not rebuilt)
// and keep answering probes exactly.
func TestRemoveKeepsIndexesPublished(t *testing.T) {
	r := New("e", 2)
	for i := 0; i < 40; i++ {
		r.MustInsert(value.Tuple{value.Int(int64(i % 7)), value.Int(int64(i))})
	}
	// Publish indexes on both columns.
	r.Probe([]int{0}, value.Tuple{value.Int(3)})
	r.Probe([]int{1}, value.Tuple{value.Int(9)})
	published := r.shared.Load()
	if published == nil || len(*published) != 2 {
		t.Fatalf("expected 2 published indexes, got %v", published)
	}
	if _, err := r.Remove(value.Tuple{value.Int(3), value.Int(3)}); err != nil {
		t.Fatal(err)
	}
	if got := r.shared.Load(); got != published {
		t.Fatalf("Remove dropped or republished the index list")
	}
	for _, pos := range r.Probe([]int{0}, value.Tuple{value.Int(3)}) {
		if !r.At(pos)[0].Equal(value.Int(3)) {
			t.Fatalf("patched index returned wrong tuple %s", r.At(pos))
		}
	}
}

// TestInterleavedInsertRemoveProbes cross-checks probe answers on live
// (patched) indexes against a brute-force scan through a long random
// interleaving of inserts and removals.
func TestInterleavedInsertRemoveProbes(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	r := New("p", 3)
	tup := func() value.Tuple {
		return value.Tuple{
			value.Int(rng.Int63n(6)), value.Int(rng.Int63n(6)), value.Int(rng.Int63n(6)),
		}
	}
	colSets := [][]int{{0}, {2}, {0, 1}, {1, 2}}
	for step := 0; step < 4000; step++ {
		x := tup()
		if rng.Intn(3) > 0 {
			if _, err := r.Insert(x); err != nil {
				t.Fatal(err)
			}
		} else if _, err := r.Remove(x); err != nil {
			t.Fatal(err)
		}
		if step%97 != 0 {
			continue
		}
		for _, cols := range colSets {
			probe := tup()
			key := probe.Project(cols)
			got := map[string]int{}
			for _, pos := range r.Probe(cols, key) {
				got[r.At(pos).String()]++
			}
			want := map[string]int{}
			for _, u := range r.Tuples() {
				if u.Project(cols).Equal(key) {
					want[u.String()]++
				}
			}
			if len(got) != len(want) {
				t.Fatalf("step %d cols %v key %s: probe %v, scan %v", step, cols, key, got, want)
			}
			for k, n := range want {
				if got[k] != n {
					t.Fatalf("step %d cols %v key %s: probe %v, scan %v", step, cols, key, got, want)
				}
			}
		}
	}
}

// TestFingerprintEqualityIffProperty checks the fingerprint contract on
// random relation pairs: set-equal relations (built in different orders,
// through different insert/remove histories) fingerprint equal, and
// unequal sets fingerprint apart.
func TestFingerprintEqualityIffProperty(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		tuples := make([]value.Tuple, n)
		for i := range tuples {
			tuples[i] = value.Tuple{value.Int(rng.Int63n(25)), value.Int(rng.Int63n(25))}
		}
		a := New("a", 2)
		for _, tp := range tuples {
			a.MustInsert(tp)
		}
		// b holds the same set, built in shuffled order with remove/reinsert
		// churn mixed in.
		b := New("b", 2)
		perm := rng.Perm(n)
		for i, j := range perm {
			b.MustInsert(tuples[j])
			if i%3 == 0 {
				if _, err := b.Remove(tuples[j]); err != nil {
					t.Fatal(err)
				}
				b.MustInsert(tuples[j])
			}
		}
		if !a.Equal(b) {
			t.Fatalf("seed %d: construction should be set-equal", seed)
		}
		if a.Fingerprint() != b.Fingerprint() {
			t.Fatalf("seed %d: set-equal relations fingerprint apart", seed)
		}
		// Any single-tuple difference must change the fingerprint.
		c := a.Clone()
		victim := tuples[rng.Intn(n)]
		if _, err := c.Remove(victim); err != nil {
			t.Fatal(err)
		}
		if c.Fingerprint() == a.Fingerprint() {
			t.Fatalf("seed %d: removing %s left fingerprint unchanged", seed, victim)
		}
		c.MustInsert(value.Tuple{value.Int(100 + seed), value.Int(100)})
		if c.Fingerprint() == a.Fingerprint() {
			t.Fatalf("seed %d: swapped tuple left fingerprint unchanged", seed)
		}
	}
}

// TestFingerprintEmptyVsNullary preserves the historical distinction
// between an empty relation and a 0-arity relation holding the empty
// tuple (the boolean "true" relation).
func TestFingerprintEmptyVsNullary(t *testing.T) {
	empty := New("p", 0)
	full := New("p", 0)
	full.MustInsert(value.Tuple{})
	if empty.Fingerprint() == full.Fingerprint() {
		t.Fatal("empty relation and {()} share a fingerprint")
	}
	if New("q", 2).Fingerprint() != empty.Fingerprint() {
		t.Fatal("empty relations of different arity should share the empty fingerprint")
	}
}

// TestPrimaryTableChurn stresses the open-addressing table through
// growth, tombstone accumulation, and compaction.
func TestPrimaryTableChurn(t *testing.T) {
	r := New("p", 1)
	alive := map[int64]bool{}
	rng := rand.New(rand.NewSource(3))
	for step := 0; step < 20000; step++ {
		v := rng.Int63n(500)
		if rng.Intn(2) == 0 {
			r.MustInsert(value.Tuple{value.Int(v)})
			alive[v] = true
		} else {
			if _, err := r.Remove(value.Tuple{value.Int(v)}); err != nil {
				t.Fatal(err)
			}
			delete(alive, v)
		}
	}
	if r.Len() != len(alive) {
		t.Fatalf("len=%d want %d", r.Len(), len(alive))
	}
	for v := range alive {
		if !r.Contains(value.Tuple{value.Int(v)}) {
			t.Fatalf("lost %d", v)
		}
	}
	keys := make([]int64, 0, len(alive))
	for v := range alive {
		keys = append(keys, v)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	want := make([]string, len(keys))
	for i, v := range keys {
		want[i] = fmt.Sprintf("(%d)", v)
	}
	got := r.Sorted()
	for i := range got {
		if got[i].String() != want[i] {
			t.Fatalf("sorted[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}
