package relation

import (
	"sort"
	"sync"
	"testing"

	"idlog/internal/value"
)

func strs(ss ...string) value.Tuple {
	t := make(value.Tuple, len(ss))
	for i, s := range ss {
		t[i] = value.Str(s)
	}
	return t
}

func probeStrings(t *testing.T, r *Relation, cols []int, key value.Tuple) []string {
	t.Helper()
	var out []string
	for _, tup := range r.ProbeTuples(cols, key) {
		out = append(out, tup.String())
	}
	sort.Strings(out)
	return out
}

// TestIndexMaintainedAcrossInserts is the regression test for the
// insert-path audit: a secondary index built by an early probe must see
// tuples inserted after it was built (insert → probe → insert → probe).
func TestIndexMaintainedAcrossInserts(t *testing.T) {
	r := New("edge", 2)
	r.MustInsert(strs("a", "b"))
	r.MustInsert(strs("a", "c"))
	r.MustInsert(strs("x", "y"))

	// First probe builds the index on column 0.
	got := probeStrings(t, r, []int{0}, strs("a"))
	want := []string{`(a, b)`, `(a, c)`}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("first probe = %v, want %v", got, want)
	}

	// Inserts AFTER the index exists must be visible to later probes.
	r.MustInsert(strs("a", "d"))
	r.MustInsert(strs("z", "w"))
	got = probeStrings(t, r, []int{0}, strs("a"))
	want = []string{`(a, b)`, `(a, c)`, `(a, d)`}
	if len(got) != len(want) {
		t.Fatalf("post-insert probe = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("post-insert probe = %v, want %v", got, want)
		}
	}

	// A brand-new key inserted after the build must be probeable too.
	if got := probeStrings(t, r, []int{0}, strs("z")); len(got) != 1 || got[0] != `(z, w)` {
		t.Fatalf("new-key probe = %v, want [(z, w)]", got)
	}

	// And a second index on a different column subset follows the same
	// rules independently.
	if got := probeStrings(t, r, []int{1}, strs("d")); len(got) != 1 || got[0] != `(a, d)` {
		t.Fatalf("col-1 probe = %v, want [(a, d)]", got)
	}
	r.MustInsert(strs("q", "d"))
	if got := probeStrings(t, r, []int{1}, strs("d")); len(got) != 2 {
		t.Fatalf("col-1 probe after insert = %v, want 2 matches", got)
	}
	// The column-0 index must have been maintained by that insert as well.
	if got := probeStrings(t, r, []int{0}, strs("q")); len(got) != 1 {
		t.Fatalf("col-0 probe after col-1 insert = %v, want 1 match", got)
	}
}

// TestIndexMaintainedThroughUnion covers the bulk-insert path: UnionInto
// after an index was built must keep the index current.
func TestIndexMaintainedThroughUnion(t *testing.T) {
	r := New("p", 2)
	r.MustInsert(strs("k", "1"))
	if got := probeStrings(t, r, []int{0}, strs("k")); len(got) != 1 {
		t.Fatalf("initial probe = %v, want 1 match", got)
	}
	s := New("p", 2)
	s.MustInsert(strs("k", "2"))
	s.MustInsert(strs("k", "1")) // duplicate: must not double-count
	s.MustInsert(strs("m", "3"))
	added, err := r.UnionInto(s)
	if err != nil || added != 2 {
		t.Fatalf("UnionInto = %d, %v; want 2, nil", added, err)
	}
	if got := probeStrings(t, r, []int{0}, strs("k")); len(got) != 2 {
		t.Fatalf("probe after union = %v, want 2 matches", got)
	}
	if got := probeStrings(t, r, []int{0}, strs("m")); len(got) != 1 {
		t.Fatalf("probe after union = %v, want 1 match", got)
	}
}

// TestIndexSurvivesFreeze checks that indexes built before Freeze stay
// usable after it, and that post-freeze concurrent probes (which build
// additional indexes through the copy-on-write slot) see every tuple.
func TestIndexSurvivesFreeze(t *testing.T) {
	r := New("edge", 2)
	r.MustInsert(strs("a", "b"))
	if got := probeStrings(t, r, []int{0}, strs("a")); len(got) != 1 {
		t.Fatalf("pre-freeze probe = %v, want 1 match", got)
	}
	r.MustInsert(strs("a", "c"))
	r.Freeze()
	if got := probeStrings(t, r, []int{0}, strs("a")); len(got) != 2 {
		t.Fatalf("post-freeze probe = %v, want 2 matches", got)
	}
	var wg sync.WaitGroup
	errs := make(chan string, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if got := probeStrings(t, r, []int{1}, strs("c")); len(got) != 1 {
				errs <- "concurrent col-1 probe missed a tuple"
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

// TestConcurrentProbeReadOnlyPhase models the parallel evaluator's read
// phase: many goroutines probe an UNFROZEN relation (no writer active),
// racing to build indexes on several column subsets at once.
func TestConcurrentProbeReadOnlyPhase(t *testing.T) {
	r := New("t", 3)
	r.MustInsert(strs("a", "b", "c"))
	r.MustInsert(strs("a", "d", "c"))
	r.MustInsert(strs("e", "b", "f"))
	colSets := [][]int{{0}, {1}, {2}, {0, 2}}
	keys := []value.Tuple{strs("a"), strs("b"), strs("c"), strs("a", "c")}
	wants := []int{2, 2, 2, 2}
	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			i := g % len(colSets)
			if got := r.Probe(colSets[i], keys[i]); len(got) != wants[i] {
				errs <- "concurrent unfrozen probe returned wrong match count"
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
	// A subsequent single-threaded insert maintains every index the
	// racing probes built.
	r.MustInsert(strs("a", "b", "z"))
	if got := r.Probe([]int{0}, strs("a")); len(got) != 3 {
		t.Fatalf("col-0 probe after insert = %d matches, want 3", len(got))
	}
	if got := r.Probe([]int{1}, strs("b")); len(got) != 3 {
		t.Fatalf("col-1 probe after insert = %d matches, want 3", len(got))
	}
}
