package relation

import (
	"fmt"

	"idlog/internal/value"
)

// MaterializeID builds the ID-relation of r on the 0-based grouping
// columns under the given oracle (§2.1): an (arity+1)-column relation in
// which every tuple of r is extended with its tuple-identifier, a sort-i
// value that is unique within the tuple's sub-relation.
//
// The resulting relation is named name (conventionally "p[s]" for
// predicate p grouped by s).
func MaterializeID(r *Relation, name string, cols []int, o Oracle) (*Relation, error) {
	return MaterializeIDBounded(r, name, cols, o, 0)
}

// MaterializeIDBounded is MaterializeID with tid pruning: when bound is
// positive, only tuples receiving a tid < bound are materialized. This
// implements the optimization of the paper's footnote 6: a query such
// as "emp[2](N, D, T), T < 2" provably never reads tids ≥ 2, so only
// two tuples per group need to exist. bound = 0 materializes the full
// ID-relation. The oracle still sees whole groups, so the pruned
// relation is exactly the restriction of the full one to tids < bound.
func MaterializeIDBounded(r *Relation, name string, cols []int, o Oracle, bound int) (*Relation, error) {
	for _, c := range cols {
		if c < 0 || c >= r.arity {
			return nil, fmt.Errorf("ID-relation of %s: grouping column %d out of range for arity %d", r.name, c+1, r.arity)
		}
	}
	out := New(name, r.arity+1)
	for _, g := range r.Groups(cols) {
		perm := o.Permutation(r.name, cols, g)
		if err := checkPerm(perm, len(g.Members)); err != nil {
			return nil, fmt.Errorf("ID-relation of %s on %v: %w", r.name, cols, err)
		}
		for i, t := range g.Members {
			if bound > 0 && perm[i] >= bound {
				continue
			}
			ext := make(value.Tuple, 0, len(t)+1)
			ext = append(ext, t...)
			ext = append(ext, value.Int(int64(perm[i])))
			out.MustInsert(ext)
		}
	}
	return out, nil
}

// ValidateID checks that idrel is an ID-relation of base on cols: its
// projection onto the first arity columns is exactly base, and within
// every sub-relation the tids form a bijection onto {0..n-1}. It returns
// nil if the invariant holds. Used by tests and by property-based checks.
func ValidateID(idrel, base *Relation, cols []int) error {
	if idrel.arity != base.arity+1 {
		return fmt.Errorf("ID-relation arity %d, want %d", idrel.arity, base.arity+1)
	}
	if idrel.Len() != base.Len() {
		return fmt.Errorf("ID-relation has %d tuples, base has %d", idrel.Len(), base.Len())
	}
	baseCols := identityCols(base.arity)
	proj := idrel.Project(base.name, baseCols)
	if !proj.Equal(base) {
		return fmt.Errorf("ID-relation projection differs from base relation")
	}
	// Per group, tids must be a bijection onto {0..n-1}.
	for _, g := range idrel.Groups(cols) {
		seen := make(map[int64]bool, len(g.Members))
		for _, t := range g.Members {
			tid := t[len(t)-1]
			if !tid.IsInt() {
				return fmt.Errorf("tid %v is not of sort i", tid)
			}
			if tid.Num < 0 || tid.Num >= int64(len(g.Members)) {
				return fmt.Errorf("tid %d out of range for group of %d", tid.Num, len(g.Members))
			}
			if seen[tid.Num] {
				return fmt.Errorf("tid %d repeated within group %v", tid.Num, g.Key)
			}
			seen[tid.Num] = true
		}
	}
	return nil
}

// CountIDFunctions returns the number of distinct ID-relations of r on
// cols, i.e. the product over groups of |group|! (Example 1 of the paper
// has two). Saturates at MaxUint64.
func CountIDFunctions(r *Relation, cols []int) uint64 {
	total := uint64(1)
	for _, g := range r.Groups(cols) {
		f := Factorial(len(g.Members))
		next := total * f
		if f != 0 && next/f != total {
			return ^uint64(0)
		}
		total = next
	}
	return total
}
