// Package relation implements relations for the IDLOG engine:
// duplicate-free tuple sets with hash lookup, lazily built secondary
// indexes, grouping into sub-relations, and the materialization of
// ID-relations under pluggable ID-function oracles (§2.1 of the paper).
// Tuples live in memory by default, or behind a pluggable TupleSource
// (see store.go) for disk-backed relations; the index machinery is
// shared by both backings.
package relation

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"idlog/internal/value"
)

// Relation is a finite, duplicate-free set of same-arity tuples.
// Iteration order (Scan, Tuples) is insertion order, which keeps
// deterministic runs reproducible; use Sorted for a canonical order.
//
// A Relation is not safe for concurrent mutation. Freeze converts it
// into an immutable value that IS safe for concurrent readers: inserts
// are rejected, and any number of goroutines may probe (and thereby
// build indexes on) a frozen relation at once.
//
// Secondary indexes — frozen or not — live behind a single atomic
// copy-on-write publication slot: probes read the index list with one
// atomic load, a miss builds under buildMu and publishes a fresh list,
// and every insert maintains every published index. Unfrozen relations
// therefore also tolerate concurrent *read-only* phases (probes from
// many goroutines while no insert is running), which the parallel
// evaluator relies on: its rounds alternate a barriered read phase
// (workers probe) with a single-threaded merge phase (coordinator
// inserts), with the phase barrier providing the happens-before edge.
//
// Tuple storage is position-addressed and split in two: positions
// [0, nsrc) read from an immutable TupleSource (disk segments), and
// positions ≥ nsrc from the in-memory overlay slice. Purely in-memory
// relations have src == nil and nsrc == 0, so the overlay IS the
// relation and every accessor below short-circuits to the original
// slice paths.
type Relation struct {
	name  string
	arity int
	// tuples is the in-memory overlay: tuple at overlay index i has
	// position nsrc+i. For mem-backed relations (src == nil) it holds
	// everything.
	tuples []value.Tuple
	// src serves positions [0, nsrc) when non-nil. It is immutable and
	// shared across Clone/Freeze/Thaw generations; Remove detaches it
	// by materializing (see materialize in store.go).
	src  TupleSource
	nsrc int
	// primary maps 64-bit tuple hashes to positions (open addressing,
	// Tuple.Equal on hash hits), replacing the former map[string]int
	// over marshaled keys: no per-operation key bytes.
	primary table

	// appendOnly marks a delta relation (NewDelta): tuples arrive only
	// through Append, which skips the primary hash table entirely. The
	// set-membership operations (Insert/Contains/Remove/Equal) panic on
	// such relations — the caller has contracted to feed distinct tuples
	// and to read only through Len/Scan/At/Probe.
	appendOnly bool

	// frozen (set before sharing by Freeze) rejects further inserts.
	// Secondary indexes are published through shared: written only
	// under buildMu, read with a single atomic load on the probe hot
	// path, and kept current by store() on every insert and Remove on
	// every deletion.
	frozen  bool
	buildMu sync.Mutex
	shared  atomic.Pointer[[]*secondary]
	// mat caches the materialized tuple slice of a frozen source-backed
	// relation, so repeated Tuples() calls (snapshot writers, JSON
	// renderers) decode the source once.
	mat atomic.Pointer[[]value.Tuple]
}

// New returns an empty relation with the given name and arity.
func New(name string, arity int) *Relation {
	return &Relation{name: name, arity: arity}
}

// NewSized is New with a capacity hint: the tuple slice and the primary
// hash table are pre-sized for about hint tuples, so bulk insertion
// skips the growth-doubling rehashes. The hint is advisory — the
// relation grows past it normally.
func NewSized(name string, arity, hint int) *Relation {
	r := New(name, arity)
	if hint > 0 {
		r.tuples = make([]value.Tuple, 0, hint)
		r.primary.presize(hint)
	}
	return r
}

// NewDelta returns an append-only relation for semi-naive per-round
// deltas: Append stores a tuple without consulting or maintaining the
// primary hash table, so a round's delta costs one slice append per
// genuinely new tuple instead of a hash insert. The caller contracts
// to Append only distinct tuples (the engine's delta sinks receive a
// tuple exactly when the full relation's insert reported it new) and
// to read the relation only through Len/Scan/At/Probe — Probe works
// because secondary indexes build from Scan, never from the primary
// table. Set-membership operations panic. hint pre-sizes the tuple
// slice (0 = no hint).
func NewDelta(name string, arity, hint int) *Relation {
	r := &Relation{name: name, arity: arity, appendOnly: true}
	if hint > 0 {
		r.tuples = make([]value.Tuple, 0, hint)
	}
	return r
}

// Append adds t to an append-only relation (see NewDelta). It panics on
// a set-semantics relation: Append skipping the primary table there
// would silently corrupt membership checks.
func (r *Relation) Append(t value.Tuple) {
	if !r.appendOnly {
		panic(fmt.Sprintf("relation %s: Append on a set-semantics relation", r.name))
	}
	pos := len(r.tuples)
	r.tuples = append(r.tuples, t)
	if idxs := r.shared.Load(); idxs != nil {
		for _, idx := range *idxs {
			idx.add(t, pos)
		}
	}
}

// setOp panics when a set-membership operation reaches an append-only
// relation — its primary table is empty, so the operation would
// silently report every tuple absent.
func (r *Relation) setOp(op string) {
	if r.appendOnly {
		panic(fmt.Sprintf("relation %s: %s on an append-only delta relation", r.name, op))
	}
}

// FromTuples builds a relation containing the given tuples (duplicates
// collapse). It panics if a tuple has the wrong arity, since that is a
// programming error in test or generator code.
func FromTuples(name string, arity int, tuples ...value.Tuple) *Relation {
	r := New(name, arity)
	for _, t := range tuples {
		r.MustInsert(t)
	}
	return r
}

// Name returns the relation's predicate name.
func (r *Relation) Name() string { return r.name }

// Arity returns the number of columns.
func (r *Relation) Arity() int { return r.arity }

// Len returns the number of tuples.
func (r *Relation) Len() int { return r.nsrc + len(r.tuples) }

// Insert adds t if absent and reports whether it was added.
// The tuple is stored as-is; callers that reuse buffers must Clone first
// or use InsertShared.
func (r *Relation) Insert(t value.Tuple) (bool, error) {
	r.setOp("Insert")
	if r.frozen {
		return false, fmt.Errorf("relation %s: insert into frozen relation", r.name)
	}
	if len(t) != r.arity {
		return false, fmt.Errorf("relation %s: inserting arity-%d tuple into arity-%d relation", r.name, len(t), r.arity)
	}
	h := t.Hash()
	if r.primary.lookup(r, t, h) >= 0 {
		return false, nil
	}
	r.store(h, t)
	return true, nil
}

// InsertShared is Insert for callers that reuse t's backing array: the
// duplicate check reads t in place and only a fresh copy is stored when
// the tuple is new. It returns the stored tuple (nil when duplicate) so
// callers can propagate the canonical copy.
func (r *Relation) InsertShared(t value.Tuple) (value.Tuple, error) {
	r.setOp("InsertShared")
	if r.frozen {
		return nil, fmt.Errorf("relation %s: insert into frozen relation", r.name)
	}
	if len(t) != r.arity {
		return nil, fmt.Errorf("relation %s: inserting arity-%d tuple into arity-%d relation", r.name, len(t), r.arity)
	}
	h := t.Hash()
	if r.primary.lookup(r, t, h) >= 0 {
		return nil, nil
	}
	c := t.Clone()
	r.store(h, c)
	return c, nil
}

func (r *Relation) store(h uint64, t value.Tuple) {
	pos := r.nsrc + len(r.tuples)
	r.tuples = append(r.tuples, t)
	r.primary.insert(h, pos)
	// Maintain every published secondary index so probes issued after
	// this insert see the new tuple (insert → probe → insert → probe).
	if idxs := r.shared.Load(); idxs != nil {
		for _, idx := range *idxs {
			idx.add(t, pos)
		}
	}
}

// Remove deletes t if present and reports whether it was removed.
// Removal uses swap-remove: the last tuple moves into the vacated
// position, so insertion order is perturbed. That is safe for the
// engine because every order-sensitive consumer (oracles, Fingerprint,
// Sorted, Equal) works from canonical or set semantics, never from
// insertion order. Published secondary indexes are patched in place —
// only the removed tuple's entry and the moved tuple's position change —
// so incremental churn keeps its indexes instead of rebuilding them per
// mutation. Frozen relations reject Remove; source-backed relations
// materialize their source first (segments are immutable), so the first
// deletion from a disk-backed relation pays a full promotion to memory.
func (r *Relation) Remove(t value.Tuple) (bool, error) {
	r.setOp("Remove")
	if r.frozen {
		return false, fmt.Errorf("relation %s: remove from frozen relation", r.name)
	}
	if len(t) != r.arity {
		return false, fmt.Errorf("relation %s: removing arity-%d tuple from arity-%d relation", r.name, len(t), r.arity)
	}
	h := t.Hash()
	pos := r.primary.lookup(r, t, h)
	if pos < 0 {
		return false, nil
	}
	// materialize keeps positions stable, so pos remains valid after the
	// source (if any) is promoted into the overlay.
	r.materialize()
	removed := r.tuples[pos]
	last := len(r.tuples) - 1
	r.primary.remove(h, pos)
	var moved value.Tuple
	if pos != last {
		moved = r.tuples[last]
		r.tuples[pos] = moved
		r.primary.updatePos(moved.Hash(), last, pos)
	}
	r.tuples[last] = nil
	r.tuples = r.tuples[:last]
	if idxs := r.shared.Load(); idxs != nil {
		for _, idx := range *idxs {
			idx.remove(removed, pos)
			if moved != nil {
				idx.update(moved, last, pos)
			}
		}
	}
	return true, nil
}

// MustInsert is Insert for static data; it panics on arity mismatch.
func (r *Relation) MustInsert(t value.Tuple) bool {
	added, err := r.Insert(t)
	if err != nil {
		panic(err)
	}
	return added
}

// Contains reports whether t is in the relation.
func (r *Relation) Contains(t value.Tuple) bool {
	r.setOp("Contains")
	if len(t) != r.arity {
		return false
	}
	return r.primary.lookup(r, t, t.Hash()) >= 0
}

// Tuples returns the tuples in position order. For in-memory relations
// this is the underlying slice; source-backed relations materialize it
// (cached when frozen). The returned slice must not be mutated. Hot
// paths should prefer Scan, which streams without materializing.
func (r *Relation) Tuples() []value.Tuple {
	if r.src == nil {
		return r.tuples
	}
	if !r.frozen {
		return r.materialized()
	}
	if p := r.mat.Load(); p != nil {
		return *p
	}
	r.buildMu.Lock()
	defer r.buildMu.Unlock()
	if p := r.mat.Load(); p != nil {
		return *p
	}
	all := r.materialized()
	r.mat.Store(&all)
	return all
}

// materialized builds the full position-ordered tuple slice.
func (r *Relation) materialized() []value.Tuple {
	all := make([]value.Tuple, 0, r.Len())
	r.src.Scan(0, r.nsrc, func(_ int, t value.Tuple) bool {
		all = append(all, t)
		return true
	})
	return append(all, r.tuples...)
}

// At returns the tuple at position i.
func (r *Relation) At(i int) value.Tuple {
	if i < r.nsrc {
		return r.src.At(i)
	}
	return r.tuples[i-r.nsrc]
}

// hashAt returns the stored hash of the tuple at position i, reading it
// from source metadata (no tuple decode) when i is source-resident.
func (r *Relation) hashAt(i int) uint64 {
	if i < r.nsrc {
		return r.src.HashAt(i)
	}
	return r.tuples[i-r.nsrc].Hash()
}

// Scan streams positions [lo, hi) in order (hi = -1 means Len) without
// materializing source-backed tuples; fn returning false stops the scan
// and makes Scan report false. This is the engine's bulk read path: the
// full-scan join step, index construction, grouping, and snapshot
// writing all iterate through it.
func (r *Relation) Scan(lo, hi int, fn func(pos int, t value.Tuple) bool) bool {
	if hi < 0 || hi > r.Len() {
		hi = r.Len()
	}
	if lo < 0 {
		lo = 0
	}
	if lo < r.nsrc {
		shi := hi
		if shi > r.nsrc {
			shi = r.nsrc
		}
		if !r.src.Scan(lo, shi, fn) {
			return false
		}
		lo = r.nsrc
	}
	for i := lo; i < hi; i++ {
		if !fn(i, r.tuples[i-r.nsrc]) {
			return false
		}
	}
	return true
}

// Sorted returns a new slice of the tuples in canonical order.
func (r *Relation) Sorted() []value.Tuple {
	out := make([]value.Tuple, 0, r.Len())
	r.Scan(0, -1, func(_ int, t value.Tuple) bool {
		out = append(out, t)
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	return out
}

// Clone returns a deep-enough copy: tuple storage is shared (tuples are
// immutable by convention, sources by construction) but the set
// structure is independent.
func (r *Relation) Clone() *Relation {
	c := New(r.name, r.arity)
	c.src = r.src
	c.nsrc = r.nsrc
	c.tuples = append(c.tuples, r.tuples...)
	c.primary = r.primary.clone()
	return c
}

// Rename returns a shallow view of r under a different predicate name.
func (r *Relation) Rename(name string) *Relation {
	c := r.Clone()
	c.name = name
	return c
}

// Equal reports set equality with s (names are ignored).
func (r *Relation) Equal(s *Relation) bool {
	if r.arity != s.arity || r.Len() != s.Len() {
		return false
	}
	return r.Scan(0, -1, func(_ int, t value.Tuple) bool {
		return s.primary.lookup(s, t, t.Hash()) >= 0
	})
}

// UnionInto inserts every tuple of s into r, reporting how many were new.
func (r *Relation) UnionInto(s *Relation) (int, error) {
	if s == nil {
		return 0, nil
	}
	if s.arity != r.arity {
		return 0, fmt.Errorf("relation %s: union with arity-%d relation %s", r.name, s.arity, s.name)
	}
	added := 0
	var ierr error
	s.Scan(0, -1, func(_ int, t value.Tuple) bool {
		ok, err := r.Insert(t)
		if err != nil {
			ierr = err
			return false
		}
		if ok {
			added++
		}
		return true
	})
	return added, ierr
}

// Project returns a new relation containing the projection of r onto the
// given 0-based columns (duplicates collapse).
func (r *Relation) Project(name string, cols []int) *Relation {
	out := New(name, len(cols))
	r.Scan(0, -1, func(_ int, t value.Tuple) bool {
		out.MustInsert(t.Project(cols))
		return true
	})
	return out
}

// Filter returns a new relation with the tuples satisfying keep.
func (r *Relation) Filter(name string, keep func(value.Tuple) bool) *Relation {
	out := New(name, r.arity)
	r.Scan(0, -1, func(_ int, t value.Tuple) bool {
		if keep(t) {
			out.MustInsert(t)
		}
		return true
	})
	return out
}

// String renders the relation as "name{(..), (..)}" in canonical order;
// intended for tests and debugging.
func (r *Relation) String() string {
	var b strings.Builder
	b.WriteString(r.name)
	b.WriteByte('{')
	for i, t := range r.Sorted() {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.String())
	}
	b.WriteByte('}')
	return b.String()
}

// Fingerprint returns a canonical string identifying the tuple set,
// independent of insertion order: the hex rendering of a combine over
// the sorted 64-bit tuple hashes, seeded with the cardinality (so an
// empty relation differs from a 0-arity relation containing the empty
// tuple). Set-equal relations have equal fingerprints; unequal sets
// collide only with the ~2^-64 probability of the underlying hash.
// Source-backed relations read the hashes from source metadata without
// decoding any tuple, so engines agree byte-for-byte at metadata cost.
// Used to deduplicate enumerated answers.
func (r *Relation) Fingerprint() string {
	n := r.Len()
	hs := make([]uint64, n)
	for i := 0; i < n; i++ {
		hs[i] = r.hashAt(i)
	}
	sort.Slice(hs, func(i, j int) bool { return hs[i] < hs[j] })
	h := value.SetHashSeed(len(hs))
	for _, x := range hs {
		h = value.CombineHash(h, x)
	}
	return strconv.FormatUint(h, 16)
}

// DeepClone rebuilds the relation from scratch: unlike Clone, the
// result shares no internal state (indexes, hash table, tuple source)
// with r, so it is safe to hand to another goroutine and is always
// purely in-memory. (An unfrozen Relation is not safe for concurrent
// use because secondary indexes build lazily on first probe; Freeze is
// the cheaper alternative when the relation no longer needs to change.)
func (r *Relation) DeepClone() *Relation {
	c := New(r.name, r.arity)
	r.Scan(0, -1, func(_ int, t value.Tuple) bool {
		c.MustInsert(t.Clone())
		return true
	})
	return c
}

// Freeze makes the relation immutable and safe for concurrent readers.
// After Freeze, Insert/InsertShared/UnionInto fail, and Probe builds
// its lazy secondary indexes through an atomic copy-on-write protocol
// instead of mutating shared slices in place. Freeze must be called
// before the relation is shared between goroutines (it is not itself a
// synchronization point); freezing twice is a no-op. It returns r for
// chaining.
//
// This is the engine's sharing contract: a server keeps one frozen EDB
// and evaluates any number of programs against it concurrently, with
// all per-run mutable state (IDB work relations, ID-relations,
// compiled clauses, guards) private to each evaluation.
func (r *Relation) Freeze() *Relation {
	if r.frozen {
		return r
	}
	// Indexes built during the mutable phase already live in the shared
	// publication slot and stay usable after the switch.
	r.frozen = true
	return r
}

// Frozen reports whether the relation has been frozen.
func (r *Relation) Frozen() bool { return r.frozen }
