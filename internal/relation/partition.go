package relation

import (
	"fmt"
	"sync/atomic"

	"idlog/internal/value"
)

// This file implements radix hash-partitioning of relations: a
// Partitioned splits a parent relation into n disjoint partition views
// by the 64-bit hash of selected key columns. The partition views are
// lightweight: each holds only a position list into the parent (tuple
// storage is never copied, so disk-backed parents keep their bounded
// residency), exposed as a read-only *Relation through a delegating
// TupleSource. Because a partition view is a real Relation, the whole
// probe machinery — lazy secondary indexes, ProbeHint pre-sizing,
// collision-checked buckets — works per partition unchanged: each
// partition owns partition-local indexes covering only its tuples,
// built independently (and therefore in parallel, by whichever worker
// owns the partition) and only for partitions that are actually
// probed.
//
// The partition function is pure content hashing (ProjectHash of the
// key columns), so two relations partitioned on matching columns with
// the same count agree on placement: a delta tuple in partition p can
// only join probe tuples in partition p when the join variable is the
// partition key on both sides. That co-placement is the correctness
// argument of the partitioned semi-naive rounds in internal/core.
//
// Concurrency contract: Refresh (and NewPartitioned) mutate the
// position lists and must run single-threaded — the parallel
// evaluator calls them only from its merge/planning phase, whose
// WaitGroup barrier provides the happens-before edge to the worker
// reads of the next round. Between refreshes any number of goroutines
// may Scan/Probe distinct partitions; probing the same partition from
// two goroutines is safe too (ensureIndex publishes atomically), the
// evaluator just never needs it.

// partitionedTuples counts tuples routed into partition views
// process-wide. Together with IndexedTuplesTotal (index.go) the E19
// bench uses it to show that partition-pruned probing indexes only the
// partitions a query's deltas actually reach.
var partitionedTuples atomic.Uint64

// PartitionedTuplesTotal reports how many tuples have been routed into
// partition views in this process.
func PartitionedTuplesTotal() uint64 { return partitionedTuples.Load() }

// partView is the TupleSource of one partition: position-addressed
// reads delegate to the parent relation through the partition's
// position list. It grows under Refresh (single-threaded, see the
// contract above); TupleSource immutability holds between refreshes,
// which is all the readers ever observe.
type partView struct {
	parent *Relation
	pos    []int
}

func (v *partView) Len() int             { return len(v.pos) }
func (v *partView) At(i int) value.Tuple { return v.parent.At(v.pos[i]) }
func (v *partView) HashAt(i int) uint64  { return v.parent.hashAt(v.pos[i]) }
func (v *partView) Scan(lo, hi int, fn func(pos int, t value.Tuple) bool) bool {
	if hi < 0 || hi > len(v.pos) {
		hi = len(v.pos)
	}
	for i := lo; i < hi; i++ {
		if !fn(i, v.parent.At(v.pos[i])) {
			return false
		}
	}
	return true
}

// Partitioned is a radix partitioning of a relation by key columns:
// tuple t belongs to partition ProjectHash(t, cols) % n. The parent
// may keep growing (a same-stratum relation mid-fixpoint); Refresh
// routes the positions appended since the last call.
type Partitioned struct {
	parent  *Relation
	cols    []int
	views   []*partView
	parts   []*Relation
	scanned int // parent positions routed so far
}

// NewPartitioned partitions r by cols into n ≥ 1 partitions, routing
// every current tuple. r must not shrink afterwards (Remove would
// invalidate positions); the evaluator only ever partitions relations
// it appends to.
func NewPartitioned(r *Relation, cols []int, n int) *Partitioned {
	if n < 1 {
		n = 1
	}
	p := &Partitioned{parent: r, cols: append([]int(nil), cols...)}
	p.views = make([]*partView, n)
	p.parts = make([]*Relation, n)
	for i := range p.parts {
		v := &partView{parent: r}
		p.views[i] = v
		// The partition view is probe/scan-only: appendOnly forbids the
		// set-membership operations (their primary table would be empty)
		// and src-backed positions delegate to the parent.
		p.parts[i] = &Relation{name: r.name, arity: r.arity, appendOnly: true, src: v}
	}
	p.Refresh()
	return p
}

// N returns the partition count.
func (p *Partitioned) N() int { return len(p.parts) }

// Cols returns the partition key columns.
func (p *Partitioned) Cols() []int { return p.cols }

// Part returns partition i as a read-only relation (Scan, At, Probe;
// set-membership operations panic, as on any append-only relation).
func (p *Partitioned) Part(i int) *Relation { return p.parts[i] }

// PartLen returns the tuple count of partition i without touching
// tuple storage.
func (p *Partitioned) PartLen(i int) int { return len(p.views[i].pos) }

// Refresh routes the parent positions appended since the last
// Refresh/NewPartitioned into their partitions, maintaining any
// partition-local indexes already built. Single-threaded; see the
// concurrency contract above.
func (p *Partitioned) Refresh() {
	n := p.parent.Len()
	if p.scanned >= n {
		return
	}
	routed := uint64(n - p.scanned)
	nparts := uint64(len(p.parts))
	p.parent.Scan(p.scanned, n, func(_ int, t value.Tuple) bool {
		k := int(t.ProjectHash(p.cols) % nparts)
		v := p.views[k]
		local := len(v.pos)
		v.pos = append(v.pos, p.scanned)
		part := p.parts[k]
		part.nsrc = len(v.pos)
		if idxs := part.shared.Load(); idxs != nil {
			for _, idx := range *idxs {
				idx.add(t, local)
			}
		}
		p.scanned++
		return true
	})
	partitionedTuples.Add(routed)
}

// Skew reports the imbalance of the current partitioning: the largest
// partition's tuple count over the mean (1.0 = perfectly even, 0 when
// empty).
func (p *Partitioned) Skew() float64 {
	total, max := 0, 0
	for _, v := range p.views {
		total += len(v.pos)
		if len(v.pos) > max {
			max = len(v.pos)
		}
	}
	if total == 0 {
		return 0
	}
	mean := float64(total) / float64(len(p.views))
	return float64(max) / mean
}

// String renders the partition sizes, for tests and debugging.
func (p *Partitioned) String() string {
	sizes := make([]int, len(p.views))
	for i, v := range p.views {
		sizes[i] = len(v.pos)
	}
	return fmt.Sprintf("partitioned(%s by %v into %v)", p.parent.Name(), p.cols, sizes)
}
