package relation

import (
	"fmt"
	"sync"
	"testing"

	"idlog/internal/value"
)

func buildEmp(n int) *Relation {
	r := New("emp", 2)
	for i := 0; i < n; i++ {
		r.MustInsert(value.Tuple{value.Str(fmt.Sprintf("e%03d", i)), value.Str(fmt.Sprintf("d%d", i%7))})
	}
	return r
}

func TestFreezeRejectsInserts(t *testing.T) {
	r := buildEmp(10).Freeze()
	if !r.Frozen() {
		t.Fatal("Frozen() = false after Freeze")
	}
	if _, err := r.Insert(value.Strs("x", "y")); err == nil {
		t.Error("Insert on frozen relation succeeded")
	}
	if _, err := r.InsertShared(value.Strs("x", "y")); err == nil {
		t.Error("InsertShared on frozen relation succeeded")
	}
	if _, err := r.UnionInto(buildEmp(2)); err == nil {
		t.Error("UnionInto on frozen relation succeeded")
	}
	// Freezing twice is a no-op.
	if r.Freeze() != r {
		t.Error("double Freeze did not return the receiver")
	}
}

func TestFreezeKeepsPrebuiltIndexes(t *testing.T) {
	r := buildEmp(20)
	key := value.Tuple{value.Str("d1")}
	before := len(r.ProbeTuples([]int{1}, key)) // builds the index pre-freeze
	r.Freeze()
	after := len(r.ProbeTuples([]int{1}, key))
	if before == 0 || before != after {
		t.Fatalf("probe before freeze found %d, after %d", before, after)
	}
}

// TestFrozenConcurrentProbe hammers a frozen relation with concurrent
// probes on several distinct column sets, forcing racing lazy index
// builds. Run with -race; correctness check: every goroutine sees the
// same match counts a sequential probe sees.
func TestFrozenConcurrentProbe(t *testing.T) {
	r := buildEmp(200).Freeze()
	seq := buildEmp(200)
	type probe struct {
		cols []int
		key  value.Tuple
	}
	probes := []probe{
		{[]int{1}, value.Tuple{value.Str("d3")}},
		{[]int{0}, value.Tuple{value.Str("e007")}},
		{[]int{0, 1}, value.Tuple{value.Str("e010"), value.Str("d3")}},
	}
	want := make([]int, len(probes))
	for i, p := range probes {
		want[i] = len(seq.ProbeTuples(p.cols, p.key))
		if i == 0 && want[i] == 0 {
			t.Fatal("bad test setup: probe 0 matches nothing")
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 50; iter++ {
				i := (g + iter) % len(probes)
				got := len(r.Probe(probes[i].cols, probes[i].key))
				if got != want[i] {
					errs <- fmt.Errorf("probe %d: got %d matches, want %d", i, got, want[i])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestFrozenConcurrentGroups checks the other shared read path used by
// ID-relation materialization.
func TestFrozenConcurrentGroups(t *testing.T) {
	r := buildEmp(100).Freeze()
	wantGroups := len(buildEmp(100).Groups([]int{1}))
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 20; iter++ {
				if got := len(r.Groups([]int{1})); got != wantGroups {
					t.Errorf("Groups: got %d, want %d", got, wantGroups)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestCloneOfFrozenIsMutable(t *testing.T) {
	r := buildEmp(5).Freeze()
	c := r.Clone()
	if c.Frozen() {
		t.Fatal("clone inherited frozen state")
	}
	if ok, err := c.Insert(value.Strs("new", "d9")); err != nil || !ok {
		t.Fatalf("insert into clone: ok=%v err=%v", ok, err)
	}
	if r.Len() != 5 || c.Len() != 6 {
		t.Fatalf("clone insert leaked into original: orig=%d clone=%d", r.Len(), c.Len())
	}
	if r.Contains(value.Strs("new", "d9")) {
		t.Error("frozen original contains the clone's tuple")
	}
}
