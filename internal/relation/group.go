package relation

import (
	"sort"

	"idlog/internal/value"
)

// Group is one sub-relation of a relation grouped by a set of attributes
// (§2.1): all tuples sharing the same values on the grouping columns.
type Group struct {
	// Key is the projection of the members onto the grouping columns.
	Key value.Tuple
	// Members holds the group's tuples in canonical (sorted) order, so
	// that ID-function oracles see a stable presentation regardless of
	// insertion order.
	Members []value.Tuple
}

// Groups partitions r into its sub-relations grouped by the 0-based
// columns. Groups are returned in canonical order of their keys. An empty
// column set yields a single group containing the whole relation (the
// "most primitive" ID-predicate p[] of the paper's footnote 5).
func (r *Relation) Groups(cols []int) []Group {
	byKey := make(map[string]*Group)
	var order []string
	r.Scan(0, -1, func(_ int, t value.Tuple) bool {
		k := t.ProjectKey(cols)
		g, ok := byKey[k]
		if !ok {
			g = &Group{Key: t.Project(cols)}
			byKey[k] = g
			order = append(order, k)
		}
		g.Members = append(g.Members, t)
		return true
	})
	out := make([]Group, 0, len(order))
	for _, k := range order {
		out = append(out, *byKey[k])
	}
	for i := range out {
		ms := out[i].Members
		sort.Slice(ms, func(a, b int) bool { return ms[a].Compare(ms[b]) < 0 })
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Key.Compare(out[b].Key) < 0 })
	return out
}
