package relation

import (
	"math/rand"
	"testing"

	"idlog/internal/value"
)

// example1 is the relation r = {(a,c),(a,d),(b,c)} of Example 1.
func example1() *Relation {
	return FromTuples("r", 2,
		value.Strs("a", "c"),
		value.Strs("a", "d"),
		value.Strs("b", "c"),
	)
}

func TestExample1HasTwoIDRelations(t *testing.T) {
	// Example 1: grouping by the first attribute yields sub-relations
	// {(a,c),(a,d)} and {(b,c)}, hence exactly two ID-relations.
	r := example1()
	if got := CountIDFunctions(r, []int{0}); got != 2 {
		t.Fatalf("CountIDFunctions = %d, want 2", got)
	}
	// Enumerate both and check they are the two sets from the paper.
	want := map[string]bool{
		FromTuples("r", 3,
			append(value.Strs("a", "c"), value.Int(1)),
			append(value.Strs("a", "d"), value.Int(0)),
			append(value.Strs("b", "c"), value.Int(0)),
		).Fingerprint(): false,
		FromTuples("r", 3,
			append(value.Strs("a", "c"), value.Int(0)),
			append(value.Strs("a", "d"), value.Int(1)),
			append(value.Strs("b", "c"), value.Int(0)),
		).Fingerprint(): false,
	}
	oracles := []Oracle{SortedOracle{}, ReverseOracle{}}
	for _, o := range oracles {
		idr, err := MaterializeID(r, "r[1]", []int{0}, o)
		if err != nil {
			t.Fatal(err)
		}
		fp := idr.Fingerprint()
		if _, ok := want[fp]; !ok {
			t.Fatalf("materialized ID-relation %v is not one of Example 1's", idr)
		}
		want[fp] = true
	}
	for fp, seen := range want {
		if !seen {
			t.Fatalf("one of Example 1's ID-relations was never produced (%q)", fp)
		}
	}
}

func TestMaterializeValidates(t *testing.T) {
	r := emp()
	for _, o := range []Oracle{SortedOracle{}, ReverseOracle{}, RandomOracle{Seed: 42}} {
		idr, err := MaterializeID(r, "emp[2]", []int{1}, o)
		if err != nil {
			t.Fatal(err)
		}
		if err := ValidateID(idr, r, []int{1}); err != nil {
			t.Fatalf("oracle %T produced invalid ID-relation: %v", o, err)
		}
	}
}

func TestMaterializeRejectsBadColumns(t *testing.T) {
	if _, err := MaterializeID(emp(), "x", []int{5}, SortedOracle{}); err == nil {
		t.Fatalf("out-of-range grouping column not rejected")
	}
}

type brokenOracle struct{}

func (brokenOracle) Permutation(string, []int, Group) []int { return []int{0, 0, 0} }

func TestMaterializeRejectsBrokenOracle(t *testing.T) {
	if _, err := MaterializeID(emp(), "x", []int{1}, brokenOracle{}); err == nil {
		t.Fatalf("non-bijective oracle output not rejected")
	}
}

func TestRandomOracleIsSeedDeterministic(t *testing.T) {
	r := emp()
	a, err := MaterializeID(r, "e", []int{1}, RandomOracle{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := MaterializeID(r, "e", []int{1}, RandomOracle{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatalf("same seed produced different ID-relations")
	}
	// Different seeds should (for this input) differ at least sometimes.
	diff := false
	for seed := uint64(0); seed < 16; seed++ {
		c, err := MaterializeID(r, "e", []int{1}, RandomOracle{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if !a.Equal(c) {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatalf("16 different seeds all produced the identical ID-relation; oracle is not mixing")
	}
}

func TestPermByIndexEnumeratesAllPermutations(t *testing.T) {
	for n := 0; n <= 5; n++ {
		f := Factorial(n)
		seen := make(map[string]bool)
		for idx := uint64(0); idx < f; idx++ {
			perm := PermByIndex(n, idx)
			if err := checkPerm(perm, n); err != nil {
				t.Fatalf("PermByIndex(%d,%d): %v", n, idx, err)
			}
			key := ""
			for _, p := range perm {
				key += string(rune('0' + p))
			}
			if seen[key] {
				t.Fatalf("PermByIndex(%d,%d) repeated permutation %s", n, idx, key)
			}
			seen[key] = true
		}
		if uint64(len(seen)) != f {
			t.Fatalf("n=%d: enumerated %d permutations, want %d", n, len(seen), f)
		}
	}
}

func TestPermByIndexWrapsModuloFactorial(t *testing.T) {
	a := PermByIndex(3, 1)
	b := PermByIndex(3, 1+6)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("PermByIndex should wrap mod n!: %v vs %v", a, b)
		}
	}
}

func TestFactorial(t *testing.T) {
	cases := map[int]uint64{0: 1, 1: 1, 2: 2, 5: 120, 10: 3628800}
	for n, want := range cases {
		if got := Factorial(n); got != want {
			t.Fatalf("Factorial(%d) = %d, want %d", n, got, want)
		}
	}
	if Factorial(30) != ^uint64(0) {
		t.Fatalf("Factorial should saturate on overflow")
	}
}

func TestCountIDFunctions(t *testing.T) {
	r := emp() // groups of size 3 (toys) and 2 (shoes): 3! * 2! = 12
	if got := CountIDFunctions(r, []int{1}); got != 12 {
		t.Fatalf("CountIDFunctions = %d, want 12", got)
	}
	// Ungrouped: 5! = 120 assignments.
	if got := CountIDFunctions(r, nil); got != 120 {
		t.Fatalf("CountIDFunctions(p[]) = %d, want 120", got)
	}
}

func TestFixedOracleWalksDistinctIDRelations(t *testing.T) {
	r := example1()
	o := &FixedOracle{Choices: map[string]uint64{}, Observed: map[string]int{}}
	// First run to observe groups.
	if _, err := MaterializeID(r, "r", []int{0}, o); err != nil {
		t.Fatal(err)
	}
	if len(o.Observed) != 2 {
		t.Fatalf("observed %d groups, want 2", len(o.Observed))
	}
	// Walk the full odometer: product of factorials = 2.
	fps := make(map[string]bool)
	key := GroupKey("r", []int{0}, value.Strs("a"))
	for idx := uint64(0); idx < 2; idx++ {
		o.Choices[key] = idx
		idr, err := MaterializeID(r, "r", []int{0}, o)
		if err != nil {
			t.Fatal(err)
		}
		if err := ValidateID(idr, r, []int{0}); err != nil {
			t.Fatal(err)
		}
		fps[idr.Fingerprint()] = true
	}
	if len(fps) != 2 {
		t.Fatalf("FixedOracle odometer visited %d distinct ID-relations, want 2", len(fps))
	}
}

func TestValidateIDCatchesCorruption(t *testing.T) {
	r := emp()
	idr, err := MaterializeID(r, "e", []int{1}, SortedOracle{})
	if err != nil {
		t.Fatal(err)
	}
	// Wrong arity.
	if err := ValidateID(r, r, []int{1}); err == nil {
		t.Fatalf("arity corruption not caught")
	}
	// Tamper: shift a tid out of range.
	bad := New("e", 3)
	for i, tp := range idr.Tuples() {
		c := tp.Clone()
		if i == 0 {
			c[2] = value.Int(99)
		}
		bad.MustInsert(c)
	}
	if err := ValidateID(bad, r, []int{1}); err == nil {
		t.Fatalf("out-of-range tid not caught")
	}
}

func TestMaterializeIDPropertyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 60; trial++ {
		arity := 1 + rng.Intn(3)
		rel := randomRelation(rng, "p", arity, rng.Intn(40))
		var cols []int
		for c := 0; c < arity; c++ {
			if rng.Intn(2) == 0 {
				cols = append(cols, c)
			}
		}
		for _, o := range []Oracle{SortedOracle{}, RandomOracle{Seed: uint64(trial)}} {
			idr, err := MaterializeID(rel, "p_id", cols, o)
			if err != nil {
				t.Fatal(err)
			}
			if err := ValidateID(idr, rel, cols); err != nil {
				t.Fatalf("trial %d oracle %T: %v", trial, o, err)
			}
		}
	}
}
