package relation

import (
	"fmt"
	"strings"

	"idlog/internal/value"
)

// colsSig renders a column list as a stable signature string; part of
// oracle group keys, so its format must not change across releases.
func colsSig(cols []int) string {
	var b strings.Builder
	for i, c := range cols {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", c)
	}
	return b.String()
}

// An Oracle chooses ID-functions (§2.1): for every sub-relation it yields
// a permutation assigning tuple-identifiers 0..n-1 to the group's members.
//
// Permutation receives the relation name, the grouping columns, the
// group's key and its members in canonical order, and must return a slice
// perm of length len(members) that is a permutation of 0..n-1; member i
// gets tid perm[i]. The IDLOG query's non-determinism is exactly the
// oracle's freedom here.
type Oracle interface {
	Permutation(rel string, cols []int, g Group) []int
}

// SortedOracle assigns tids in canonical tuple order (member i gets tid
// i). This is the engine's deterministic default: every run of a program
// under SortedOracle computes the same perfect model.
type SortedOracle struct{}

// Permutation implements Oracle with the identity permutation.
func (SortedOracle) Permutation(rel string, cols []int, g Group) []int {
	return identityPerm(len(g.Members))
}

// ReverseOracle assigns tids in reverse canonical order. It is mainly
// useful in tests that need a second, different deterministic assignment.
type ReverseOracle struct{}

// Permutation implements Oracle.
func (ReverseOracle) Permutation(rel string, cols []int, g Group) []int {
	n := len(g.Members)
	perm := make([]int, n)
	for i := range perm {
		perm[i] = n - 1 - i
	}
	return perm
}

// RandomOracle draws a pseudo-random ID-function per group, deterministically
// derived from (seed, relation, columns, group key) so that a run is
// reproducible from its seed and independent of evaluation order. This is
// the oracle behind sampling queries (§3.3).
type RandomOracle struct {
	Seed uint64
}

// Permutation implements Oracle with a Fisher–Yates shuffle seeded from a
// hash of the group's identity.
func (o RandomOracle) Permutation(rel string, cols []int, g Group) []int {
	h := splitmix64(o.Seed ^ hashString(rel))
	h ^= hashString(colsSig(cols))
	h = splitmix64(h ^ hashString(g.Key.Key()))
	perm := identityPerm(len(g.Members))
	// Fisher–Yates driven by a splitmix64 stream.
	state := h
	for i := len(perm) - 1; i > 0; i-- {
		state = splitmix64(state)
		j := int(state % uint64(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	return perm
}

// FixedOracle replays explicitly chosen permutations and is used by the
// model enumerator: each group's choice is addressed by a stable key.
// Groups without an entry fall back to the identity permutation.
type FixedOracle struct {
	// Choices maps GroupKey(rel, cols, key) to a permutation index in the
	// factorial-number-system order (see PermByIndex).
	Choices map[string]uint64
	// Observed, when non-nil, records the group sizes encountered during a
	// run, keyed like Choices. The enumerator uses it to learn the choice
	// space before walking it.
	Observed map[string]int
}

// GroupKey builds the stable addressing key used by FixedOracle.
func GroupKey(rel string, cols []int, key value.Tuple) string {
	return fmt.Sprintf("%s[%s]%s", rel, colsSig(cols), key.Key())
}

// Permutation implements Oracle.
func (o *FixedOracle) Permutation(rel string, cols []int, g Group) []int {
	k := GroupKey(rel, cols, g.Key)
	if o.Observed != nil {
		o.Observed[k] = len(g.Members)
	}
	idx := o.Choices[k]
	return PermByIndex(len(g.Members), idx)
}

// PermByIndex returns the idx-th permutation of 0..n-1 in Lehmer-code
// (factorial number system) order; idx is taken modulo n!.
func PermByIndex(n int, idx uint64) []int {
	if n == 0 {
		return nil
	}
	// Compute the Lehmer digits of idx.
	digits := make([]uint64, n)
	for i := 2; i <= n; i++ {
		digits[n-i] = idx % uint64(i)
		idx /= uint64(i)
	}
	avail := identityPerm(n)
	perm := make([]int, n)
	for i := 0; i < n; i++ {
		d := int(digits[i])
		perm[i] = avail[d]
		avail = append(avail[:d], avail[d+1:]...)
	}
	return perm
}

// Factorial returns n! saturating at math.MaxUint64 (adequate for the
// enumerator's bound checks; enumeration is only feasible for tiny n).
func Factorial(n int) uint64 {
	f := uint64(1)
	for i := uint64(2); i <= uint64(n); i++ {
		next := f * i
		if next/i != f {
			return ^uint64(0)
		}
		f = next
	}
	return f
}

func identityPerm(n int) []int {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	return perm
}

// splitmix64 is the SplitMix64 mixing function; a tiny, well-distributed
// PRNG step that keeps RandomOracle free of math/rand global state.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func hashString(s string) uint64 {
	// FNV-1a, inlined to avoid importing hash/fnv in the hot path.
	h := uint64(1469598103934665603)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// checkPerm validates an oracle's output; the engine calls it so that a
// misbehaving Oracle implementation surfaces as an error, not corruption.
func checkPerm(perm []int, n int) error {
	if len(perm) != n {
		return fmt.Errorf("oracle returned %d tids for group of %d", len(perm), n)
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if p < 0 || p >= n || seen[p] {
			return fmt.Errorf("oracle permutation %v is not a bijection onto 0..%d", perm, n-1)
		}
		seen[p] = true
	}
	return nil
}
