package ast

import "fmt"

// Subst maps variable names to replacement terms. Program transformations
// (choice translation, adornment rewriting, clause instantiation) apply
// substitutions over atoms and clauses.
type Subst map[string]Term

// ApplyTerm returns t with s applied (one level; substitutions into
// constants are identities, variables map through or stay put).
func (s Subst) ApplyTerm(t Term) Term {
	if v, ok := t.(Var); ok {
		if r, ok := s[v.Name]; ok {
			return r
		}
	}
	return t
}

// ApplyAtom returns a copy of a with s applied to every argument.
func (s Subst) ApplyAtom(a *Atom) *Atom {
	c := a.Clone()
	for i, t := range c.Args {
		c.Args[i] = s.ApplyTerm(t)
	}
	return c
}

// ApplyLiteral returns a copy of l with s applied.
func (s Subst) ApplyLiteral(l *Literal) *Literal {
	c := l.Clone()
	if c.Atom != nil {
		for i, t := range c.Atom.Args {
			c.Atom.Args[i] = s.ApplyTerm(t)
		}
	}
	if c.Choice != nil {
		for i, t := range c.Choice.Domain {
			c.Choice.Domain[i] = s.ApplyTerm(t)
		}
		for i, t := range c.Choice.Range {
			c.Choice.Range[i] = s.ApplyTerm(t)
		}
	}
	return c
}

// ApplyClause returns a copy of c with s applied throughout.
func (s Subst) ApplyClause(c *Clause) *Clause {
	n := &Clause{Head: s.ApplyAtom(c.Head)}
	for _, l := range c.Body {
		n.Body = append(n.Body, s.ApplyLiteral(l))
	}
	return n
}

// RenameApart returns a copy of the clause with every named variable
// replaced by a fresh variable "name@suffix"; used when transformations
// splice clauses together and must avoid capture.
func RenameApart(c *Clause, suffix string) *Clause {
	s := Subst{}
	for _, v := range ClauseVars(c) {
		s[v.Name] = Var{Name: fmt.Sprintf("%s@%s", v.Name, suffix)}
	}
	return s.ApplyClause(c)
}

// FreshAnonCounter rewrites anonymous variables "_" into distinct fresh
// variables "_Gn" so downstream analyses can treat every variable
// occurrence uniformly. It returns the rewritten clause.
func FreshAnonCounter(c *Clause, counter *int) *Clause {
	fresh := func(t Term) Term {
		if v, ok := t.(Var); ok && v.Anonymous() {
			*counter++
			return Var{Name: fmt.Sprintf("_G%d", *counter)}
		}
		return t
	}
	n := c.Clone()
	for i, t := range n.Head.Args {
		n.Head.Args[i] = fresh(t)
	}
	for _, l := range n.Body {
		if l.Atom != nil {
			for i, t := range l.Atom.Args {
				l.Atom.Args[i] = fresh(t)
			}
		}
		if l.Choice != nil {
			for i, t := range l.Choice.Domain {
				l.Choice.Domain[i] = fresh(t)
			}
			for i, t := range l.Choice.Range {
				l.Choice.Range[i] = fresh(t)
			}
		}
	}
	return n
}
