package ast

import (
	"testing"

	"idlog/internal/value"
)

func sampleClause() *Clause {
	// p(X, 3) :- q[1](X, Y, T), not r(Y), choice((X), (Y)).
	return &Clause{
		Head: &Atom{Pred: "p", Args: []Term{V("X"), N(3)}},
		Body: []*Literal{
			{Atom: &Atom{Pred: "q", IsID: true, Group: []int{0}, Args: []Term{V("X"), V("Y"), V("T")}}},
			{Neg: true, Atom: &Atom{Pred: "r", Args: []Term{V("Y")}}},
			{Choice: &Choice{Domain: []Term{V("X")}, Range: []Term{V("Y")}}},
		},
	}
}

func TestBaseArity(t *testing.T) {
	ord := &Atom{Pred: "p", Args: []Term{V("X"), V("Y")}}
	if ord.BaseArity() != 2 {
		t.Fatalf("ordinary BaseArity = %d", ord.BaseArity())
	}
	id := &Atom{Pred: "p", IsID: true, Group: []int{0}, Args: []Term{V("X"), V("Y"), V("T")}}
	if id.BaseArity() != 2 {
		t.Fatalf("ID BaseArity = %d", id.BaseArity())
	}
}

func TestCloneIsDeep(t *testing.T) {
	c := sampleClause()
	d := c.Clone()
	d.Head.Pred = "zzz"
	d.Body[0].Atom.Args[0] = V("W")
	d.Body[2].Choice.Domain[0] = V("Q")
	if c.Head.Pred != "p" || c.Body[0].Atom.Args[0].(Var).Name != "X" {
		t.Fatalf("Clone shares structure with original")
	}
	if c.Body[2].Choice.Domain[0].(Var).Name != "X" {
		t.Fatalf("Choice clone shares structure")
	}
}

func TestClauseVarsOrderAndDedup(t *testing.T) {
	c := sampleClause()
	vars := ClauseVars(c)
	want := []string{"X", "Y", "T"}
	if len(vars) != len(want) {
		t.Fatalf("vars = %v, want %v", vars, want)
	}
	for i, v := range vars {
		if v.Name != want[i] {
			t.Fatalf("vars[%d] = %s, want %s", i, v.Name, want[i])
		}
	}
}

func TestClauseVarsSkipsAnonymous(t *testing.T) {
	c := &Clause{
		Head: &Atom{Pred: "p", Args: []Term{V("X")}},
		Body: []*Literal{{Atom: &Atom{Pred: "q", Args: []Term{V("X"), V("_")}}}},
	}
	vars := ClauseVars(c)
	if len(vars) != 1 || vars[0].Name != "X" {
		t.Fatalf("vars = %v", vars)
	}
}

func TestSubstApply(t *testing.T) {
	c := sampleClause()
	s := Subst{"X": S("a"), "Y": V("Z")}
	d := s.ApplyClause(c)
	if d.Head.Args[0].(Const).Val.String() != "a" {
		t.Fatalf("head subst failed: %v", d.Head)
	}
	if d.Body[1].Atom.Args[0].(Var).Name != "Z" {
		t.Fatalf("body subst failed: %v", d.Body[1])
	}
	if d.Body[2].Choice.Range[0].(Var).Name != "Z" {
		t.Fatalf("choice subst failed: %v", d.Body[2])
	}
	// Original untouched.
	if c.Head.Args[0].(Var).Name != "X" {
		t.Fatalf("Apply mutated the original clause")
	}
}

func TestRenameApart(t *testing.T) {
	c := sampleClause()
	r := RenameApart(c, "1")
	if r.Head.Args[0].(Var).Name != "X@1" {
		t.Fatalf("RenameApart head = %v", r.Head)
	}
	vars := ClauseVars(r)
	for _, v := range vars {
		if v.Name == "X" || v.Name == "Y" || v.Name == "T" {
			t.Fatalf("RenameApart left original variable %s", v.Name)
		}
	}
}

func TestFreshAnonCounter(t *testing.T) {
	c := &Clause{
		Head: &Atom{Pred: "p", Args: []Term{V("X")}},
		Body: []*Literal{{Atom: &Atom{Pred: "q", Args: []Term{V("_"), V("_")}}}},
	}
	n := 0
	d := FreshAnonCounter(c, &n)
	a := d.Body[0].Atom.Args[0].(Var).Name
	b := d.Body[0].Atom.Args[1].(Var).Name
	if a == b || a == "_" || b == "_" {
		t.Fatalf("anonymous variables not freshened: %s %s", a, b)
	}
}

func TestAtomStringForms(t *testing.T) {
	cases := map[string]string{
		(&Atom{Pred: "p", Args: []Term{S("a"), V("X")}}).String():                                        "p(a, X)",
		(&Atom{Pred: "emp", IsID: true, Group: []int{1}, Args: []Term{V("N"), V("D"), V("T")}}).String(): "emp[2](N, D, T)",
		(&Atom{Pred: "q", IsID: true, Group: []int{}, Args: []Term{V("X"), V("T")}}).String():            "q[](X, T)",
		(&Atom{Pred: "lt", Args: []Term{V("N"), N(2)}}).String():                                         "N < 2",
		(&Atom{Pred: "rain"}).String():                                                                   "rain()",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("Atom.String = %q, want %q", got, want)
		}
	}
}

func TestClauseString(t *testing.T) {
	c := sampleClause()
	want := "p(X, 3) :- q[1](X, Y, T), not r(Y), choice((X), (Y))."
	if got := c.String(); got != want {
		t.Fatalf("Clause.String = %q, want %q", got, want)
	}
	fact := &Clause{Head: &Atom{Pred: "emp", Args: []Term{S("joe"), S("toys")}}}
	if got := fact.String(); got != "emp(joe, toys)." {
		t.Fatalf("fact String = %q", got)
	}
}

func TestHasIDAndHasChoice(t *testing.T) {
	p := &Program{Clauses: []*Clause{sampleClause()}}
	if !p.HasID() || !p.HasChoice() {
		t.Fatalf("HasID/HasChoice false on sample")
	}
	plain := &Program{Clauses: []*Clause{{
		Head: &Atom{Pred: "p", Args: []Term{V("X")}},
		Body: []*Literal{{Atom: &Atom{Pred: "q", Args: []Term{V("X")}}}},
	}}}
	if plain.HasID() || plain.HasChoice() {
		t.Fatalf("HasID/HasChoice true on plain program")
	}
}

func TestConstructorsProduceRightSorts(t *testing.T) {
	if S("x").Val.Sort != value.U {
		t.Fatalf("S not sort u")
	}
	if N(1).Val.Sort != value.I {
		t.Fatalf("N not sort i")
	}
}

func TestPredSigString(t *testing.T) {
	if got := (PredSig{"emp", 2}).String(); got != "emp/2" {
		t.Fatalf("PredSig.String = %q", got)
	}
}

func TestProgramCloneIsDeep(t *testing.T) {
	p := &Program{Clauses: []*Clause{sampleClause()}}
	q := p.Clone()
	q.Clauses[0].Head.Pred = "zzz"
	if p.Clauses[0].Head.Pred != "p" {
		t.Fatalf("Program.Clone shares clauses")
	}
}

func TestHeadAndInputPreds(t *testing.T) {
	p := &Program{Clauses: []*Clause{
		{Head: &Atom{Pred: "out", Args: []Term{V("X")}},
			Body: []*Literal{
				{Atom: &Atom{Pred: "in", Args: []Term{V("X"), V("Y")}}},
				{Atom: &Atom{Pred: "lt", Args: []Term{V("Y"), N(3)}}},
			}},
		{Head: &Atom{Pred: "aux", Args: []Term{V("X")}},
			Body: []*Literal{{Atom: &Atom{Pred: "out", Args: []Term{V("X")}}}}},
	}}
	heads := p.HeadPreds()
	if len(heads) != 2 || heads[0].String() != "aux/1" || heads[1].String() != "out/1" {
		t.Fatalf("heads = %v", heads)
	}
	isBuiltin := func(n string) bool { return n == "lt" }
	ins := p.InputPreds(isBuiltin)
	if len(ins) != 1 || ins[0].Name != "in" || ins[0].Arity != 2 {
		t.Fatalf("inputs = %v", ins)
	}
}

func TestVarsHelper(t *testing.T) {
	vs := Vars(nil, V("X"), S("a"), V("_"), V("X"))
	if len(vs) != 3 {
		t.Fatalf("Vars = %v", vs)
	}
}

func TestProgramString(t *testing.T) {
	p := &Program{Clauses: []*Clause{
		{Head: &Atom{Pred: "p", Args: []Term{S("a")}}},
		{Head: &Atom{Pred: "q", Args: []Term{V("X")}},
			Body: []*Literal{{Atom: &Atom{Pred: "p", Args: []Term{V("X")}}}}},
	}}
	want := "p(a).\nq(X) :- p(X).\n"
	if p.String() != want {
		t.Fatalf("Program.String = %q", p.String())
	}
}

func TestConstQuoting(t *testing.T) {
	cases := map[string]string{
		"plain":       "plain",
		"with space":  "'with space'",
		"it's":        "'it''s'",
		"":            "''",
		"Upper":       "'Upper'",
		"_underscore": "'_underscore'",
		"a_b9":        "a_b9",
		"né":          "né",
	}
	for name, want := range cases {
		if got := S(name).String(); got != want {
			t.Errorf("S(%q).String = %q, want %q", name, got, want)
		}
	}
	if N(42).String() != "42" {
		t.Fatalf("N(42) renders wrong")
	}
}
