package ast

import (
	"fmt"
	"strings"
)

// infixNames maps built-in predicate names back to their infix comparison
// rendering; the parser accepts both forms, the printer emits the sugar.
var infixNames = map[string]string{
	"lt":  "<",
	"le":  "<=",
	"gt":  ">",
	"ge":  ">=",
	"eq":  "=",
	"neq": "!=",
}

// String renders the atom in concrete syntax: p(a, X), p[1,2](a, X, T),
// or the infix comparison form for binary comparison built-ins.
func (a *Atom) String() string {
	if op, ok := infixNames[a.Pred]; ok && !a.IsID && len(a.Args) == 2 {
		return fmt.Sprintf("%s %s %s", a.Args[0], op, a.Args[1])
	}
	var b strings.Builder
	b.WriteString(a.Pred)
	if a.IsID {
		b.WriteByte('[')
		for i, g := range a.Group {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(&b, "%d", g+1) // groups print 1-based as in the paper
		}
		b.WriteByte(']')
	}
	b.WriteByte('(')
	for i, t := range a.Args {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.String())
	}
	b.WriteByte(')')
	return b.String()
}

// String renders the choice literal as choice((X...),(Y...)).
func (c *Choice) String() string {
	return fmt.Sprintf("choice((%s), (%s))", termList(c.Domain), termList(c.Range))
}

func termList(ts []Term) string {
	parts := make([]string, len(ts))
	for i, t := range ts {
		parts[i] = t.String()
	}
	return strings.Join(parts, ", ")
}

// String renders the literal, prefixing "not " when negated.
func (l *Literal) String() string {
	var body string
	switch {
	case l.Choice != nil:
		body = l.Choice.String()
	case l.Atom != nil:
		body = l.Atom.String()
	default:
		body = "<invalid literal>"
	}
	if l.Neg {
		return "not " + body
	}
	return body
}

// String renders the clause, with a trailing period.
func (c *Clause) String() string {
	if c.IsFact() {
		return c.Head.String() + "."
	}
	parts := make([]string, len(c.Body))
	for i, l := range c.Body {
		parts[i] = l.String()
	}
	return fmt.Sprintf("%s :- %s.", c.Head, strings.Join(parts, ", "))
}

// String renders the whole program, one clause per line.
func (p *Program) String() string {
	var b strings.Builder
	for _, c := range p.Clauses {
		b.WriteString(c.String())
		b.WriteByte('\n')
	}
	return b.String()
}
